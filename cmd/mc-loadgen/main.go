// mc-loadgen drives a simulated deployment with a YCSB preset or a custom
// mix and reports latency percentiles, throughput and server statistics —
// the workhorse for exploring configurations beyond the paper's figures.
//
// Usage:
//
//	mc-loadgen -ycsb A -design H-RDMA-Opt-NonB-i -servers 4 -clients 8
//	mc-loadgen -reads 0.9 -zipf 0.7 -value 8192 -ops 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/trace"
	"hybridkv/internal/workload"
)

func main() {
	designName := flag.String("design", "H-RDMA-Opt-NonB-i", "cluster design")
	servers := flag.Int("servers", 1, "server count")
	clients := flag.Int("clients", 1, "client count")
	mem := flag.Int64("mem", 256<<20, "slab memory per server, bytes")
	nvme := flag.Bool("nvme", false, "use the NVMe testbed profile")
	ycsb := flag.String("ycsb", "", "YCSB preset: A, B, C, D or F (overrides -reads/-zipf)")
	reads := flag.Float64("reads", 0.5, "read fraction of the custom mix")
	zipfS := flag.Float64("zipf", 0.99, "zipfian exponent of the custom mix")
	value := flag.Int("value", 32*1024, "value size, bytes")
	keys := flag.Int("keys", 0, "keyspace size (default: 1.5x server memory)")
	ops := flag.Int("ops", 10000, "operations per client")
	window := flag.Int("window", 32, "non-blocking issue window")
	seed := flag.Int64("seed", 42, "workload seed")
	traceFile := flag.String("trace", "", "write a per-op trace (CSV by extension .csv, else JSON lines)")
	flag.Parse()

	var design cluster.Design
	found := false
	for _, d := range cluster.Designs {
		if strings.EqualFold(d.String(), *designName) {
			design, found = d, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "mc-loadgen: unknown design %q\n", *designName)
		os.Exit(2)
	}
	prof := cluster.ClusterA()
	if *nvme {
		prof = cluster.ClusterB()
	}
	cl := cluster.New(cluster.Config{
		Design:    design,
		Profile:   prof,
		Servers:   *servers,
		Clients:   *clients,
		ServerMem: *mem / int64(*servers),
	})

	nkeys := *keys
	if nkeys <= 0 {
		nkeys = int(*mem * 3 / 2 / int64(*value))
	}
	fmt.Printf("%s on %s: %d server(s), %d client(s), %d keys × %d B\n",
		design, prof.Name, *servers, *clients, nkeys, *value)
	cl.Preload(nkeys, *value, func(i int) string { return fmt.Sprintf("obj:%010d", i) })

	mkGen := func(ci int) (*workload.Generator, bool) {
		if *ycsb != "" {
			cfg, rmw, err := workload.YCSBConfig(workload.YCSB((*ycsb)[0]), nkeys, *value, *seed+int64(ci))
			if err != nil {
				fmt.Fprintf(os.Stderr, "mc-loadgen: %v\n", err)
				os.Exit(2)
			}
			return workload.New(cfg), rmw
		}
		return workload.New(workload.Config{
			Keys: nkeys, ValueSize: *value, ReadFraction: *reads,
			Pattern: workload.Zipf, ZipfS: *zipfS, Seed: *seed + int64(ci),
		}), false
	}

	lat := metrics.NewHist()
	var rec *trace.Recorder
	if *traceFile != "" {
		rec = trace.New(0)
	}
	var misses int64
	start := cl.Env.Now()
	for ci := range cl.Clients {
		ci := ci
		c := cl.Clients[ci]
		gen, rmw := mkGen(ci)
		cl.Env.Spawn(fmt.Sprintf("loadgen-%d", ci), func(p *sim.Proc) {
			runClient(p, cl, c, ci, gen, design, *ops, *window, rmw, lat, &misses, rec)
		})
	}
	cl.Env.Run()
	elapsed := cl.Env.Now() - start

	total := int64(*ops) * int64(*clients)
	fmt.Printf("\n%d ops in %v of virtual time\n", total, elapsed)
	fmt.Printf("  throughput   %12.0f ops/s\n", metrics.Throughput(total, elapsed))
	fmt.Printf("  latency      mean=%v p50=%v p95=%v p99=%v max=%v\n",
		lat.Mean(), lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99), lat.Max())
	fmt.Printf("  cache misses %d\n", misses)
	if rec != nil {
		if err := writeTrace(*traceFile, rec); err != nil {
			fmt.Fprintf(os.Stderr, "mc-loadgen: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %s -> %s\n", rec.Summary(), *traceFile)
	}
	for i, srv := range cl.Servers {
		st := srv.Store().Stats()
		fmt.Printf("  server %d: items=%d (ram=%d ssd=%d) flushes=%d drops=%d hit-rate=%.1f%%\n",
			i, st.Items, st.RAMItems, st.SSDItems, st.FlushPages, st.DropEvictions,
			100*float64(st.GetHits)/float64(max64(st.GetOps, 1)))
	}
}

// runClient drives one client: blocking designs loop round trips (with
// read-modify-write via Gets+CAS when the preset asks for it); non-blocking
// designs pipeline iset/iget in windows.
func runClient(p *sim.Proc, cl *cluster.Cluster, c *core.Client, ci int, gen *workload.Generator,
	design cluster.Design, ops, window int, rmw bool, lat *metrics.Hist, misses *int64, rec *trace.Recorder) {
	vs := gen.ValueSize()
	record := func(kind workload.OpKind, key string, t0 sim.Time, status string, bytes int) {
		if rec == nil {
			return
		}
		k := "get"
		if kind == workload.OpSet {
			k = "set"
		}
		rec.Add(trace.Op{
			Client: ci, Kind: k, Key: key,
			Issued: t0, Completed: p.Now(), Status: status, Bytes: bytes,
		})
	}
	if !design.NonBlocking() {
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			t0 := p.Now()
			status := "STORED"
			if kind == workload.OpGet {
				_, _, st := c.Get(p, key)
				status = st.String()
				if st == protocol.StatusNotFound {
					*misses++
					v := cl.Backend.Fetch(p, key)
					c.Set(p, key, vs, v, 0, 0)
				}
			} else if rmw {
				// YCSB F: read-modify-write via Gets + CAS; on conflict or
				// miss, fall back to a plain Set.
				_, _, cas, st := c.Gets(p, key)
				if st != protocol.StatusOK ||
					c.CompareAndSet(p, key, vs, key, 0, 0, cas) != protocol.StatusStored {
					c.Set(p, key, vs, key, 0, 0)
				}
			} else {
				c.Set(p, key, vs, key, 0, 0)
			}
			lat.Add(p.Now() - t0)
			record(kind, key, t0, status, vs)
		}
		return
	}
	left := ops
	for left > 0 {
		n := window
		if n > left {
			n = left
		}
		reqs := make([]*core.Req, 0, n)
		kinds := make([]workload.OpKind, 0, n)
		t0 := p.Now()
		for i := 0; i < n; i++ {
			kind, key := gen.Next()
			var req *core.Req
			var err error
			if kind == workload.OpGet {
				req, err = c.IGet(p, key)
			} else {
				req, err = c.ISet(p, key, vs, key, 0, 0)
			}
			if err != nil {
				panic(err)
			}
			reqs = append(reqs, req)
			kinds = append(kinds, kind)
		}
		c.WaitAll(p, reqs)
		per := (p.Now() - t0) / sim.Time(n)
		for i, r := range reqs {
			lat.Add(per)
			if r.Status == protocol.StatusNotFound {
				*misses++
			}
			if rec != nil {
				k := "iget"
				if kinds[i] == workload.OpSet {
					k = "iset"
				}
				rec.Add(trace.Op{
					Client: ci, Kind: k, Key: r.Key,
					Issued: r.IssuedAt, Completed: r.CompletedAt,
					Status: r.Status.String(), Bytes: r.ValueSize,
				})
			}
		}
		left -= n
	}
}

// writeTrace dumps the recorder to path (CSV if the extension is .csv).
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return rec.WriteCSV(f)
	}
	return rec.WriteJSONL(f)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
