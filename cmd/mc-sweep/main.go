// mc-sweep runs the ablation studies: parameter sweeps that isolate each
// design lever (workload skew, storage workers, buffer bound, adaptive
// cutoff, issue window) while holding the rest of the system at the paper's
// configuration.
//
// Usage:
//
//	mc-sweep -list
//	mc-sweep [-full] abl-zipf abl-workers ...
//	mc-sweep [-full] all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybridkv/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available ablations and exit")
	full := flag.Bool("full", false, "use the paper's full sizes")
	ops := flag.Int("ops", 0, "override the measured operation count")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mc-sweep [-list] [-full] [-ops N] <ablation-id>... | all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Ablations {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{Full: *full, Ops: *ops}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.Ablations {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	exit := 0
	for _, id := range ids {
		e := bench.AblationByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "mc-sweep: unknown ablation %q (try -list)\n", id)
			exit = 1
			continue
		}
		t0 := time.Now()
		r := e.Run(opts)
		fmt.Printf("==> %s — %s   [%v wall]\n%s\n", r.ID, e.Title, time.Since(t0).Round(time.Millisecond), r.Output)
	}
	os.Exit(exit)
}
