// mc-server boots one simulated hybrid Memcached deployment and executes a
// simple operation script against it, printing per-operation results with
// virtual timestamps and a final server report. It is the quickest way to
// poke at a design end to end.
//
// Usage:
//
//	mc-server [-design H-RDMA-Opt-NonB-i] [-servers N] [-mem BYTES] [-nvme] [-script FILE]
//
// Script lines (default script demonstrates overflow to SSD):
//
//	set <key> <valueBytes>
//	get <key>
//	del <key>
//	sleep <duration>     e.g. sleep 2ms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hybridkv/internal/cluster"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

func designByName(name string) (cluster.Design, bool) {
	for _, d := range cluster.Designs {
		if strings.EqualFold(d.String(), name) {
			return d, true
		}
	}
	return 0, false
}

// defaultScript overflows a small server and reads back both RAM- and
// SSD-resident keys.
const defaultScript = `
set hot:1 32768
set hot:2 32768
set big:filler-a 1048576
set big:filler-b 1048576
set big:filler-c 1048576
set big:filler-d 1048576
get hot:1
sleep 1ms
get big:filler-a
get missing:key
del hot:2
get hot:2
`

func main() {
	designName := flag.String("design", "H-RDMA-Opt-NonB-i", "design: IPoIB-Mem, RDMA-Mem, H-RDMA-Def, H-RDMA-Opt-Block, H-RDMA-Opt-NonB-b, H-RDMA-Opt-NonB-i")
	servers := flag.Int("servers", 1, "number of Memcached servers")
	mem := flag.Int64("mem", 4<<20, "slab memory per server, bytes")
	nvme := flag.Bool("nvme", false, "use Cluster B (NVMe) instead of Cluster A (SATA)")
	script := flag.String("script", "", "operation script file (default: built-in demo)")
	flag.Parse()

	design, ok := designByName(*designName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mc-server: unknown design %q\n", *designName)
		os.Exit(2)
	}
	prof := cluster.ClusterA()
	if *nvme {
		prof = cluster.ClusterB()
	}
	cl := cluster.New(cluster.Config{
		Design:  design,
		Profile: prof,
		Servers: *servers,
		ServerMem: func() int64 {
			if *mem > 0 {
				return *mem
			}
			return 4 << 20
		}(),
	})
	fmt.Printf("booted %d × %s server(s) on %s\n", *servers, design, prof.Name)

	text := defaultScript
	if *script != "" {
		b, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mc-server: %v\n", err)
			os.Exit(1)
		}
		text = string(b)
	}

	c := cl.Clients[0]
	cl.Env.Spawn("script", func(p *sim.Proc) {
		sc := bufio.NewScanner(strings.NewReader(text))
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
				continue
			}
			t0 := p.Now()
			switch fields[0] {
			case "set":
				if len(fields) != 3 {
					fmt.Printf("?? bad set line: %v\n", fields)
					continue
				}
				size, err := strconv.Atoi(fields[2])
				if err != nil {
					fmt.Printf("?? bad size: %v\n", err)
					continue
				}
				st := c.Set(p, fields[1], size, "value:"+fields[1], 0, 0)
				fmt.Printf("[%12v] SET %-16s %6d B -> %-8v (%v)\n", p.Now(), fields[1], size, st, p.Now()-t0)
			case "get":
				if len(fields) != 2 {
					fmt.Printf("?? bad get line: %v\n", fields)
					continue
				}
				v, size, st := c.Get(p, fields[1])
				if st == protocol.StatusOK {
					fmt.Printf("[%12v] GET %-16s %6d B -> %v (%v)\n", p.Now(), fields[1], size, v, p.Now()-t0)
				} else {
					fmt.Printf("[%12v] GET %-16s -> %-8v (%v)\n", p.Now(), fields[1], st, p.Now()-t0)
				}
			case "del":
				st := c.Delete(p, fields[1])
				fmt.Printf("[%12v] DEL %-16s -> %-8v (%v)\n", p.Now(), fields[1], st, p.Now()-t0)
			case "sleep":
				d, err := time.ParseDuration(fields[1])
				if err != nil {
					fmt.Printf("?? bad duration: %v\n", err)
					continue
				}
				p.Sleep(d)
			default:
				fmt.Printf("?? unknown op %q\n", fields[0])
			}
		}
	})
	cl.Env.Run()

	fmt.Printf("\n-- final state (virtual time %v) --\n", cl.Env.Now())
	for i, srv := range cl.Servers {
		st := srv.Store()
		mgr := st.Manager()
		fmt.Printf("server %d: keys=%d ram_items=%d ssd_items=%d flush_pages=%d drops=%d\n",
			i, st.Len(), mgr.RAMItems(), mgr.SSDItems(), mgr.FlushPages, mgr.DropEvictions)
	}
}
