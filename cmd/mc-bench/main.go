// mc-bench reproduces the paper's tables and figures: it builds the
// requested simulated cluster designs, preloads them, runs the measurement
// phase, and prints the same rows/series the paper reports.
//
// Usage:
//
//	mc-bench -list
//	mc-bench [-full] [-ops N] fig1a fig6b ...
//	mc-bench [-full] all
//	mc-bench -smoke          (whole registry at tiny op counts)
//
// Experiment ids follow the paper's figure numbering (fig1a..fig8b); see
// DESIGN.md §5 for the per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybridkv/internal/bench"
)

// writeJSON dumps every run experiment's metric records to path.
func writeJSON(path string, results []*bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteJSON(f, results)
}

// writeCSV dumps one experiment's tables to <dir>/<id>.csv.
func writeCSV(dir string, r *bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	full := flag.Bool("full", false, "use the paper's full sizes (1 GB server memory) instead of the 4x-scaled default")
	ops := flag.Int("ops", 0, "override the measured operation count")
	smoke := flag.Bool("smoke", false, "run every registered experiment at a tiny operation count (registry smoke test)")
	csvDir := flag.String("csv", "", "also write each experiment's tables as CSV into this directory")
	jsonPath := flag.String("json", "", "also write every run experiment's metrics as JSON records to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mc-bench [-list] [-full] [-ops N] [-smoke] <experiment-id>... | all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	args := flag.Args()
	if *smoke && len(args) == 0 {
		args = []string{"all"}
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{Full: *full, Ops: *ops}
	if *smoke && opts.Ops == 0 {
		opts.Ops = 300
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range bench.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	exit := 0
	var results []*bench.Result
	for _, id := range ids {
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "mc-bench: unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		t0 := time.Now()
		r := e.Run(opts)
		results = append(results, r)
		fmt.Printf("==> %s — %s   [%v wall]\n%s\n", r.ID, e.Title, time.Since(t0).Round(time.Millisecond), r.Output)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "mc-bench: csv: %v\n", err)
				exit = 1
			}
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "mc-bench: json: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}
