package verbs

import (
	"testing"

	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// rig builds two connected RC QPs on an FDR fabric.
type rig struct {
	env          *sim.Env
	fabric       *simnet.Fabric
	devA, devB   *Device
	pdA, pdB     *PD
	qpA, qpB     *QP
	sendA, recvA *CQ
	sendB, recvB *CQ
}

func newRig() *rig {
	env := sim.NewEnv()
	f := simnet.New(env, simnet.FDRInfiniBand())
	r := &rig{env: env, fabric: f}
	r.devA = OpenDevice(f.AddNode("a"))
	r.devB = OpenDevice(f.AddNode("b"))
	r.pdA, r.pdB = r.devA.AllocPD(), r.devB.AllocPD()
	r.sendA, r.recvA = r.devA.CreateCQ(0), r.devA.CreateCQ(0)
	r.sendB, r.recvB = r.devB.CreateCQ(0), r.devB.CreateCQ(0)
	r.qpA = r.devA.CreateQP(r.sendA, r.recvA)
	r.qpB = r.devB.CreateQP(r.sendB, r.recvB)
	Connect(r.qpA, r.qpB)
	return r
}

func TestSendRecvDeliversPayload(t *testing.T) {
	r := newRig()
	r.qpB.PostRecv(RecvWR{WRID: 9})
	var got Completion
	r.env.Spawn("server", func(p *sim.Proc) {
		got = r.recvB.WaitPoll(p)
	})
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{WRID: 1, Op: OpSend, Size: 128, Payload: "req"})
	})
	r.env.Run()
	if got.WRID != 9 || got.Op != OpRecv || got.Bytes != 128 || got.Payload != "req" {
		t.Errorf("recv completion %+v", got)
	}
}

func TestSendWithoutRecvPanics(t *testing.T) {
	r := newRig()
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{WRID: 1, Op: OpSend, Size: 64})
	})
	defer func() {
		if recover() == nil {
			t.Errorf("RNR condition did not panic")
		}
	}()
	r.env.Run()
}

func TestSignaledSendCompletionAfterAck(t *testing.T) {
	r := newRig()
	r.qpB.PostRecv(RecvWR{})
	var compAt sim.Time
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{WRID: 7, Op: OpSend, Size: 4096, Signaled: true})
		c := r.sendA.WaitPoll(p)
		if c.WRID != 7 || c.Op != OpSend {
			t.Errorf("send completion %+v", c)
		}
		compAt = p.Now()
	})
	r.env.Run()
	spec := r.fabric.Spec()
	min := spec.SerializeTime(4096) + 2*spec.PropDelay
	if compAt < min {
		t.Errorf("send completion at %v, before ack can arrive (%v)", compAt, min)
	}
}

func TestRDMAWriteDepositsIntoMR(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(64 * 1024)
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{
			WRID: 3, Op: OpWrite, Size: 32 * 1024,
			Payload: "value-bytes", RemoteMR: mr.LKey(),
		})
	})
	r.env.Run()
	v, n := mr.Payload()
	if v != "value-bytes" || n != 32*1024 {
		t.Errorf("MR contents (%v,%d), want (value-bytes,32768)", v, n)
	}
	if r.recvB.Len() != 0 {
		t.Errorf("plain WRITE generated a remote completion")
	}
}

func TestRDMAWriteImmConsumesRecv(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(4096)
	r.qpB.PostRecv(RecvWR{WRID: 20})
	var got Completion
	r.env.Spawn("server", func(p *sim.Proc) { got = r.recvB.WaitPoll(p) })
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{
			Op: OpWriteImm, Size: 512, Payload: "x",
			RemoteMR: mr.LKey(), Imm: 0xbeef,
		})
	})
	r.env.Run()
	if got.WRID != 20 || got.Op != OpWriteImm || got.Imm != 0xbeef {
		t.Errorf("WRITE_IMM completion %+v", got)
	}
	if v, _ := mr.Payload(); v != "x" {
		t.Errorf("WRITE_IMM did not deposit payload")
	}
	if r.qpB.RecvDepth() != 0 {
		t.Errorf("WRITE_IMM did not consume the RECV")
	}
}

func TestRDMAReadFetchesRemoteMR(t *testing.T) {
	r := newRig()
	remote := r.pdB.RegisterMRSetup(1 << 20)
	remote.SetPayload("remote-data", 100*1024)
	local := r.pdA.RegisterMRSetup(1 << 20)
	var comp Completion
	var doneAt sim.Time
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{
			WRID: 11, Op: OpRead, RemoteMR: remote.LKey(),
			LocalMR: local, Signaled: true,
		})
		comp = r.sendA.WaitPoll(p)
		doneAt = p.Now()
	})
	r.env.Run()
	if comp.WRID != 11 || comp.Op != OpRead || comp.Bytes != 100*1024 {
		t.Errorf("READ completion %+v", comp)
	}
	if v, n := local.Payload(); v != "remote-data" || n != 100*1024 {
		t.Errorf("local MR after READ: (%v,%d)", v, n)
	}
	spec := r.fabric.Spec()
	min := 2*spec.PropDelay + spec.SerializeTime(100*1024)
	if doneAt < min {
		t.Errorf("READ completed at %v, faster than a round trip + data (%v)", doneAt, min)
	}
}

func TestInlineSendBufferReusableImmediately(t *testing.T) {
	r := newRig()
	r.qpB.PostRecv(RecvWR{})
	var reusableAt sim.Time = -1
	r.env.Spawn("client", func(p *sim.Proc) {
		ev := r.qpA.PostSendReusable(p, SendWR{Op: OpSend, Size: 128, Inline: true})
		p.Wait(ev)
		reusableAt = p.Now()
	})
	r.env.Run()
	if reusableAt != doorbellCost {
		t.Errorf("inline buffer reusable at %v, want doorbell cost %v", reusableAt, doorbellCost)
	}
}

func TestNonInlineReusableAfterSerialization(t *testing.T) {
	r := newRig()
	r.qpB.PostRecv(RecvWR{})
	size := 1 << 20
	var reusableAt sim.Time
	r.env.Spawn("client", func(p *sim.Proc) {
		ev := r.qpA.PostSendReusable(p, SendWR{Op: OpSend, Size: size})
		p.Wait(ev)
		reusableAt = p.Now()
	})
	r.env.Run()
	min := r.fabric.Spec().SerializeTime(size)
	if reusableAt < min {
		t.Errorf("1MB buffer reusable at %v, before DMA completes (%v)", reusableAt, min)
	}
}

func TestOversizeInlinePanics(t *testing.T) {
	r := newRig()
	defer func() {
		if recover() == nil {
			t.Errorf("oversize inline send did not panic")
		}
	}()
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{Op: OpSend, Size: MaxInline + 1, Inline: true})
	})
	r.env.Run()
}

func TestMRRegistrationCostScalesWithPages(t *testing.T) {
	env := sim.NewEnv()
	f := simnet.New(env, simnet.FDRInfiniBand())
	dev := OpenDevice(f.AddNode("n"))
	pd := dev.AllocPD()
	var small, large sim.Time
	env.Spawn("reg", func(p *sim.Proc) {
		t0 := p.Now()
		pd.RegisterMR(p, 4096)
		small = p.Now() - t0
		t0 = p.Now()
		pd.RegisterMR(p, 4096*1024)
		large = p.Now() - t0
	})
	env.Run()
	if small < regBaseCost {
		t.Errorf("small registration %v below base %v", small, regBaseCost)
	}
	if large <= small {
		t.Errorf("1024-page registration (%v) not costlier than 1-page (%v)", large, small)
	}
	if want := regBaseCost + 1024*regPerPageCost; large != want {
		t.Errorf("large registration %v, want %v", large, want)
	}
}

func TestMRDeregisterInvalidatesWrites(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(4096)
	mr.Deregister()
	defer func() {
		if recover() == nil {
			t.Errorf("WRITE to deregistered MR did not panic")
		}
	}()
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{Op: OpWrite, Size: 8, RemoteMR: mr.LKey()})
	})
	r.env.Run()
}

func TestCQNotify(t *testing.T) {
	r := newRig()
	r.qpB.PostRecv(RecvWR{WRID: 1})
	var notified sim.Time = -1
	r.env.Spawn("poller", func(p *sim.Proc) {
		ev := r.recvB.Notify()
		p.Wait(ev)
		notified = p.Now()
		if _, ok := r.recvB.Poll(); !ok {
			t.Errorf("notify fired with empty CQ")
		}
	})
	r.env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(30 * sim.Microsecond)
		r.qpA.PostSend(p, SendWR{Op: OpSend, Size: 64})
	})
	r.env.Run()
	if notified < 30*sim.Microsecond {
		t.Errorf("notified at %v, before the send", notified)
	}
}

func TestQPOrderingPreserved(t *testing.T) {
	r := newRig()
	for i := 0; i < 10; i++ {
		r.qpB.PostRecv(RecvWR{WRID: uint64(i)})
	}
	var got []uint64
	r.env.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c := r.recvB.WaitPoll(p)
			got = append(got, c.Payload.(uint64))
		}
	})
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r.qpA.PostSend(p, SendWR{Op: OpSend, Size: 64, Payload: uint64(i)})
		}
	})
	r.env.Run()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("RC ordering violated: %v", got)
		}
	}
}

func TestIPoIBStreamRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	f := simnet.New(env, simnet.IPoIB())
	hA := NewHost(f.AddNode("client"))
	hB := NewHost(f.AddNode("server"))
	var reply StreamMsg
	var rtt sim.Time
	env.Spawn("server", func(p *sim.Proc) {
		s, ok := hB.Accept(p)
		if !ok {
			return
		}
		m, _ := s.Recv(p)
		s.Send(p, m.Size, "pong:"+m.Payload.(string))
	})
	env.Spawn("client", func(p *sim.Proc) {
		s := hA.Dial(hB)
		t0 := p.Now()
		s.Send(p, 1024, "ping")
		reply, _ = s.Recv(p)
		rtt = p.Now() - t0
	})
	env.Run()
	if reply.Payload != "pong:ping" {
		t.Errorf("reply %+v", reply)
	}
	// Kernel-stack round trip must exceed 2× the IPoIB per-side costs.
	spec := simnet.IPoIB()
	min := 2 * (spec.SendCPU + spec.SegCPU + spec.PropDelay + spec.RecvCPU)
	if rtt < min {
		t.Errorf("IPoIB RTT %v below floor %v", rtt, min)
	}
}

func TestIPoIBOrderedDelivery(t *testing.T) {
	env := sim.NewEnv()
	f := simnet.New(env, simnet.IPoIB())
	hA := NewHost(f.AddNode("a"))
	hB := NewHost(f.AddNode("b"))
	var got []int
	env.Spawn("server", func(p *sim.Proc) {
		s, _ := hB.Accept(p)
		for i := 0; i < 20; i++ {
			m, _ := s.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		s := hA.Dial(hB)
		for i := 0; i < 20; i++ {
			s.Send(p, 100, i)
		}
	})
	env.Run()
	if len(got) != 20 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("stream reordered: %v", got)
		}
	}
}

func TestDeviceStats(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(4096)
	r.qpB.PostRecv(RecvWR{})
	r.env.Spawn("client", func(p *sim.Proc) {
		r.qpA.PostSend(p, SendWR{Op: OpSend, Size: 64})
		r.qpA.PostSend(p, SendWR{Op: OpWrite, Size: 64, RemoteMR: mr.LKey()})
		r.qpA.PostSend(p, SendWR{Op: OpRead, RemoteMR: mr.LKey()})
	})
	r.env.Run()
	if r.devA.SendsPosted != 1 || r.devA.WritesPosted != 1 || r.devA.ReadsPosted != 1 {
		t.Errorf("stats sends=%d writes=%d reads=%d, want 1/1/1",
			r.devA.SendsPosted, r.devA.WritesPosted, r.devA.ReadsPosted)
	}
}
