// Package verbs provides an ibverbs-shaped RDMA interface over the simnet
// fabric, plus an IP-over-IB stream emulation for the default Memcached
// path.
//
// The client and server runtimes in this repository are written against this
// API the same way RDMA-Memcached is written against libibverbs: protection
// domains, registered memory regions (with realistic registration cost),
// reliable-connected queue pairs, completion queues that are polled, two-sided
// SEND/RECV and one-sided RDMA WRITE / WRITE-with-immediate / READ. Only the
// wire underneath is simulated.
//
// Semantics modeled:
//
//   - SEND consumes a pre-posted RECV at the responder and generates a
//     completion on the responder's receive CQ. The requester's send
//     completion fires when the RC ACK returns (serialization + 2×prop),
//     at which point the source buffer is reusable. Inline sends copy at
//     post time, so the buffer is reusable immediately.
//   - RDMA WRITE deposits the payload into the remote MR with no remote CPU
//     involvement and no remote completion. WRITE_IMM additionally consumes
//     a RECV and completes on the responder's receive CQ.
//   - RDMA READ fetches the remote MR's current contents with no remote CPU
//     involvement; the local completion carries the data.
//   - Posting any WR charges the caller a doorbell cost; the NIC performs
//     the transfer asynchronously (this is what non-blocking iset/iget
//     exploit).
package verbs

import (
	"fmt"

	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// Op identifies a work-request / completion opcode.
type Op int

const (
	OpSend Op = iota
	OpRecv
	OpWrite
	OpWriteImm
	OpRead
	OpAtomic
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpAtomic:
		return "ATOMIC"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Registration cost model: pinning pages and programming the HCA's MTT is
// expensive; this is why reusable pre-registered buffers (bset/bget) matter.
const (
	regBaseCost    = 35 * sim.Microsecond
	regPerPageCost = 300 * sim.Nanosecond
	regPageSize    = 4096
	doorbellCost   = 200 * sim.Nanosecond
	readReqBytes   = 16 // RDMA READ request packet size on the wire
)

// Device is the HCA attached to one fabric node.
type Device struct {
	env    *sim.Env
	node   *simnet.Node
	qps    map[int]*QP
	mrs    map[int]*MR
	nextQP int
	nextMR int

	// Stats
	SendsPosted, WritesPosted, ReadsPosted int64
	AtomicsPosted                          int64
}

// OpenDevice attaches an HCA to node and installs its packet demultiplexer.
func OpenDevice(node *simnet.Node) *Device {
	d := &Device{
		env:  node.Fabric().Env(),
		node: node,
		qps:  make(map[int]*QP),
		mrs:  make(map[int]*MR),
	}
	node.SetReceiver(d.deliver)
	return d
}

// Env returns the simulation environment.
func (d *Device) Env() *sim.Env { return d.env }

// Node returns the fabric node under this device.
func (d *Device) Node() *simnet.Node { return d.node }

// PD is a protection domain.
type PD struct{ dev *Device }

// AllocPD allocates a protection domain (free in sim time, as in practice).
func (d *Device) AllocPD() *PD { return &PD{dev: d} }

// MR is a registered memory region. Contents are modeled as an opaque
// payload slot that RDMA WRITEs deposit into and RDMA READs fetch from.
// Regions that serve offset-addressed READs (the server-bypass directory)
// additionally carry a segment map keyed by byte offset; a READ with a
// remote offset fetches the segment at that offset instead of the whole
// payload slot.
type MR struct {
	pd       *PD
	lkey     int
	size     int
	payload  any
	plen     int
	segments map[int64]mrSegment
	atomic   uint64
	valid    bool
}

// mrSegment is one offset-addressed region of an MR's contents.
type mrSegment struct {
	v any
	n int
}

// RegisterMR registers size bytes, charging p the pin+MTT-programming cost.
func (pd *PD) RegisterMR(p *sim.Proc, size int) *MR {
	pages := (size + regPageSize - 1) / regPageSize
	p.Sleep(regBaseCost + sim.Time(pages)*regPerPageCost)
	return pd.registerMRFree(size)
}

// registerMRFree registers without charging time (used for pre-run setup).
func (pd *PD) registerMRFree(size int) *MR {
	d := pd.dev
	d.nextMR++
	mr := &MR{pd: pd, lkey: d.nextMR, size: size, valid: true}
	d.mrs[mr.lkey] = mr
	return mr
}

// RegisterMRSetup registers a region with no time charge; for simulation
// setup outside any process.
func (pd *PD) RegisterMRSetup(size int) *MR { return pd.registerMRFree(size) }

// LKey returns the region's local key (also used as its remote key).
func (mr *MR) LKey() int { return mr.lkey }

// Size returns the registered length.
func (mr *MR) Size() int { return mr.size }

// Payload returns the last contents deposited in the region and its length.
func (mr *MR) Payload() (any, int) { return mr.payload, mr.plen }

// SetPayload stores contents into the region locally (memcpy cost is the
// caller's to model).
func (mr *MR) SetPayload(v any, n int) {
	if n > mr.size {
		panic(fmt.Sprintf("verbs: payload %d exceeds MR size %d", n, mr.size))
	}
	mr.payload, mr.plen = v, n
}

// SetSegment stores contents at a byte offset inside the region, making it
// addressable by RDMA READs carrying that offset. Offsets are opaque to the
// HCA model; the caller owns the allocation discipline.
func (mr *MR) SetSegment(off int64, v any, n int) {
	if off < 0 || off+int64(n) > int64(mr.size) {
		panic(fmt.Sprintf("verbs: segment [%d,%d) exceeds MR size %d", off, off+int64(n), mr.size))
	}
	if mr.segments == nil {
		mr.segments = make(map[int64]mrSegment)
	}
	mr.segments[off] = mrSegment{v: v, n: n}
}

// ClearSegment removes the segment at off; READs of it then return empty.
func (mr *MR) ClearSegment(off int64) {
	delete(mr.segments, off)
}

// ClearSegments drops every segment but keeps the region segment-addressed,
// so in-flight READs observe emptiness rather than the whole-payload slot.
func (mr *MR) ClearSegments() {
	mr.segments = make(map[int64]mrSegment)
}

// Segment returns the local contents at off (zero value if absent).
func (mr *MR) Segment(off int64) (any, int) {
	seg := mr.segments[off]
	return seg.v, seg.n
}

// Deregister invalidates the region.
func (mr *MR) Deregister() {
	mr.valid = false
	delete(mr.pd.dev.mrs, mr.lkey)
}

// Completion is one CQ entry.
type Completion struct {
	WRID    uint64
	Op      Op
	QPN     int // local QP number
	Bytes   int
	Payload any
	Imm     uint64
}

// CQ is a completion queue.
type CQ struct {
	dev *Device
	q   *sim.Queue[Completion]
	ev  *sim.Event // fired when the CQ becomes non-empty; re-armed on drain
}

// CreateCQ allocates a completion queue. Depth ≤ 0 means unbounded (the
// simulated HCA never overruns; overrun modeling is out of scope).
func (d *Device) CreateCQ(depth int) *CQ {
	return &CQ{dev: d, q: sim.NewQueue[Completion](d.env, depth), ev: d.env.NewEvent()}
}

// Poll removes one completion without blocking.
func (cq *CQ) Poll() (Completion, bool) { return cq.q.TryGet() }

// Len reports queued completions.
func (cq *CQ) Len() int { return cq.q.Len() }

// WaitPoll blocks the process until a completion is available and returns it.
func (cq *CQ) WaitPoll(p *sim.Proc) Completion {
	c, _ := cq.q.Get(p)
	return c
}

func (cq *CQ) push(c Completion) {
	cq.q.TryPut(c)
	if !cq.ev.Fired() {
		cq.ev.Fire()
	}
	cq.ev = cq.dev.env.NewEvent()
}

// Notify returns an event that fires on the next completion arrival.
// A completion may already be pending; callers must Poll first.
func (cq *CQ) Notify() *sim.Event {
	if cq.q.Len() > 0 {
		ev := cq.dev.env.NewEvent()
		ev.Fire()
		return ev
	}
	return cq.ev
}

// SendWR is a send-queue work request.
type SendWR struct {
	WRID uint64
	Op   Op // OpSend, OpWrite, OpWriteImm, OpRead
	// Size is the wire size in bytes (header + value for SEND).
	Size int
	// Payload travels to the responder (SEND/WRITE*) or names the local
	// destination MR (READ: payload ignored).
	Payload any
	// RemoteMR is the remote region targeted by WRITE/WRITE_IMM/READ.
	RemoteMR int
	// RemoteOff addresses a segment inside the remote region (READ of a
	// segment-addressed MR only; ignored for whole-region operations).
	RemoteOff int64
	// LocalMR receives RDMA READ data.
	LocalMR *MR
	// Imm is delivered with WRITE_IMM.
	Imm uint64
	// Signaled requests a local completion.
	Signaled bool
	// Inline copies the payload at post time: the source buffer is
	// reusable immediately, allowed only for small payloads.
	Inline bool
}

// MaxInline is the largest inline send the simulated HCA accepts.
const MaxInline = 256

// RecvWR is a receive-queue work request.
type RecvWR struct {
	WRID uint64
}

// QP is a reliable-connected queue pair.
type QP struct {
	srq        *SRQ
	dev        *Device
	qpn        int
	remoteNode string
	remoteQPN  int
	sendCQ     *CQ
	recvCQ     *CQ
	recvQ      []RecvWR
	connected  bool

	pendingReads map[uint64]*SendWR
}

// CreateQP allocates a queue pair bound to the given CQs.
func (d *Device) CreateQP(sendCQ, recvCQ *CQ) *QP {
	d.nextQP++
	qp := &QP{
		dev: d, qpn: d.nextQP,
		sendCQ: sendCQ, recvCQ: recvCQ,
		pendingReads: make(map[uint64]*SendWR),
	}
	d.qps[qp.qpn] = qp
	return qp
}

// QPN returns the local queue pair number.
func (qp *QP) QPN() int { return qp.qpn }

// Connect transitions both QPs to RTS against each other (out-of-band
// connection management; no simulated cost, as setup is not measured).
func Connect(a, b *QP) {
	a.remoteNode, a.remoteQPN = b.dev.node.Name(), b.qpn
	b.remoteNode, b.remoteQPN = a.dev.node.Name(), a.qpn
	a.connected, b.connected = true, true
}

// PostRecv posts a receive work request (no time cost; pre-posted buffers).
func (qp *QP) PostRecv(wr RecvWR) { qp.recvQ = append(qp.recvQ, wr) }

// RecvDepth reports outstanding receive WRs.
func (qp *QP) RecvDepth() int { return len(qp.recvQ) }

// wire is the fabric payload for verbs traffic.
type wire struct {
	kind      Op
	srcQPN    int
	dstQPN    int
	wrid      uint64 // requester's WRID (for READ responses)
	payload   any
	size      int
	remoteMR  int
	remoteOff int64
	imm       uint64
	signaled  bool
	ackFor    bool // this is a READ response
}

// PostSend posts a send-queue WR, charging the caller only the doorbell
// cost. The HCA performs the transfer asynchronously.
func (qp *QP) PostSend(p *sim.Proc, wr SendWR) {
	if !qp.connected {
		panic("verbs: PostSend on unconnected QP")
	}
	if wr.Inline && wr.Size > MaxInline {
		panic(fmt.Sprintf("verbs: inline send of %d bytes exceeds MaxInline", wr.Size))
	}
	p.Sleep(doorbellCost)
	qp.start(wr)
}

// PostSendList posts a chain of send-queue WRs under a single doorbell —
// the verbs linked-WR idiom batching multi-GET READ windows: the caller
// pays one MMIO write regardless of chain length, and the HCA walks the
// list asynchronously.
func (qp *QP) PostSendList(p *sim.Proc, wrs []SendWR) {
	if !qp.connected {
		panic("verbs: PostSendList on unconnected QP")
	}
	if len(wrs) == 0 {
		return
	}
	for _, wr := range wrs {
		if wr.Inline && wr.Size > MaxInline {
			panic(fmt.Sprintf("verbs: inline send of %d bytes exceeds MaxInline", wr.Size))
		}
	}
	p.Sleep(doorbellCost)
	for _, wr := range wrs {
		qp.start(wr)
	}
}

// PostSendSetup posts without charging time; for simulation setup.
func (qp *QP) PostSendSetup(wr SendWR) { qp.start(wr) }

func (qp *QP) start(wr SendWR) *simnet.Outgoing {
	d := qp.dev
	switch wr.Op {
	case OpSend:
		d.SendsPosted++
	case OpWrite, OpWriteImm:
		d.WritesPosted++
	case OpRead:
		d.ReadsPosted++
	default:
		panic("verbs: bad send opcode " + wr.Op.String())
	}
	if wr.Op == OpRead {
		// A small request packet travels out; the data comes back on the
		// reverse link driven by the remote HCA, no remote CPU.
		wrCopy := wr
		qp.pendingReads[wr.WRID] = &wrCopy
		return qp.post(readReqBytes, &wire{
			kind: OpRead, srcQPN: qp.qpn, dstQPN: qp.remoteQPN,
			wrid: wr.WRID, remoteMR: wr.RemoteMR, remoteOff: wr.RemoteOff,
			size: wr.Size, signaled: wr.Signaled,
		})
	}
	out := qp.post(wr.Size, &wire{
		kind: wr.Op, srcQPN: qp.qpn, dstQPN: qp.remoteQPN,
		wrid: wr.WRID, payload: wr.Payload, size: wr.Size,
		remoteMR: wr.RemoteMR, imm: wr.Imm, signaled: wr.Signaled,
	})
	if wr.Signaled {
		// RC send completion: generated when the ACK returns, i.e. one
		// propagation delay after full delivery.
		prop := qp.dev.node.Fabric().Spec().PropDelay
		wrID, op, size := wr.WRID, wr.Op, wr.Size
		localQPN := qp.qpn
		sendCQ := qp.sendCQ
		d.env.Spawn("ack-wait", func(p *sim.Proc) {
			p.Wait(out.Delivered)
			p.Sleep(prop)
			sendCQ.push(Completion{WRID: wrID, Op: op, QPN: localQPN, Bytes: size})
		})
	}
	return out
}

// post hands a wire message to the local NIC towards the connected peer.
func (qp *QP) post(size int, w *wire) *simnet.Outgoing {
	return qp.dev.node.Post(qp.remoteNode, size, w)
}

// PostSendReusable is PostSend that additionally returns an event firing
// when the caller's buffers are reusable (DMA has read them out of host
// memory). This is the primitive under memcached_bset/bget.
func (qp *QP) PostSendReusable(p *sim.Proc, wr SendWR) *sim.Event {
	if !qp.connected {
		panic("verbs: PostSendReusable on unconnected QP")
	}
	if wr.Op == OpRead {
		panic("verbs: PostSendReusable does not apply to READ")
	}
	p.Sleep(doorbellCost)
	out := qp.start(wr)
	if wr.Inline && wr.Size <= MaxInline {
		ev := qp.dev.env.NewEvent()
		ev.Fire()
		return ev
	}
	return out.Sent
}

// deliver demultiplexes an arriving fabric message to verbs semantics.
func (d *Device) deliver(m *simnet.Message) {
	if aw, ok := m.Payload.(*atomicWire); ok {
		d.deliverAtomic(m.Src, aw)
		return
	}
	w, ok := m.Payload.(*wire)
	if !ok {
		panic("verbs: non-verbs payload on device node")
	}
	qp := d.qps[w.dstQPN]
	if qp == nil {
		panic(fmt.Sprintf("verbs: delivery to unknown QP %d on %s", w.dstQPN, d.node.Name()))
	}
	if w.kind == OpRead && w.ackFor {
		// READ response arriving back at the requester.
		rd := qp.pendingReads[w.wrid]
		if rd == nil {
			panic("verbs: READ response with no pending request")
		}
		delete(qp.pendingReads, w.wrid)
		if rd.LocalMR != nil {
			rd.LocalMR.SetPayload(w.payload, w.size)
		}
		if w.signaled {
			qp.sendCQ.push(Completion{
				WRID: w.wrid, Op: OpRead, QPN: qp.qpn,
				Bytes: w.size, Payload: w.payload,
			})
		}
		return
	}
	switch w.kind {
	case OpSend:
		rwr, ok := qp.consumeRecv()
		if !ok {
			panic(fmt.Sprintf("verbs: RNR — SEND with no posted RECV on %s qp%d", d.node.Name(), qp.qpn))
		}
		qp.recvCQ.push(Completion{
			WRID: rwr.WRID, Op: OpRecv, QPN: qp.qpn,
			Bytes: w.size, Payload: w.payload,
		})
	case OpWrite:
		mr := d.mrs[w.remoteMR]
		if mr == nil || !mr.valid {
			panic(fmt.Sprintf("verbs: WRITE to invalid MR %d on %s", w.remoteMR, d.node.Name()))
		}
		mr.SetPayload(w.payload, w.size)
	case OpWriteImm:
		mr := d.mrs[w.remoteMR]
		if mr == nil || !mr.valid {
			panic(fmt.Sprintf("verbs: WRITE_IMM to invalid MR %d on %s", w.remoteMR, d.node.Name()))
		}
		mr.SetPayload(w.payload, w.size)
		rwr, ok := qp.consumeRecv()
		if !ok {
			panic(fmt.Sprintf("verbs: RNR — WRITE_IMM with no posted RECV on %s qp%d", d.node.Name(), qp.qpn))
		}
		qp.recvCQ.push(Completion{
			WRID: rwr.WRID, Op: OpWriteImm, QPN: qp.qpn,
			Bytes: w.size, Payload: w.payload, Imm: w.imm,
		})
	case OpRead:
		// Responder HCA streams the MR contents back; zero remote CPU.
		mr := d.mrs[w.remoteMR]
		if mr == nil || !mr.valid {
			panic(fmt.Sprintf("verbs: READ of invalid MR %d on %s", w.remoteMR, d.node.Name()))
		}
		payload, plen := mr.payload, mr.plen
		if mr.segments != nil {
			seg := mr.segments[w.remoteOff]
			payload, plen = seg.v, seg.n
		}
		if w.size > 0 && w.size < plen {
			plen = w.size
		}
		d.node.Post(m.Src, plen, &wire{
			kind: OpRead, srcQPN: w.dstQPN, dstQPN: w.srcQPN,
			wrid: w.wrid, payload: payload, size: plen,
			signaled: w.signaled, ackFor: true,
		})
	}
}
