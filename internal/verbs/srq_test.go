package verbs

import (
	"testing"

	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// srqRig wires two client QPs into one server device sharing an SRQ.
type srqRig struct {
	env          *sim.Env
	server       *Device
	srq          *SRQ
	serverRecvCQ *CQ
	clients      [2]*QP
}

func newSRQRig() *srqRig {
	env := sim.NewEnv()
	f := simnet.New(env, simnet.FDRInfiniBand())
	r := &srqRig{env: env}
	r.server = OpenDevice(f.AddNode("server"))
	r.serverRecvCQ = r.server.CreateCQ(0)
	sendCQ := r.server.CreateCQ(0)
	r.srq = r.server.CreateSRQ()
	for i := 0; i < 2; i++ {
		cdev := OpenDevice(f.AddNode([]string{"c0", "c1"}[i]))
		cq1, cq2 := cdev.CreateCQ(0), cdev.CreateCQ(0)
		cqp := cdev.CreateQP(cq1, cq2)
		sqp := r.server.CreateQP(sendCQ, r.serverRecvCQ)
		sqp.AttachSRQ(r.srq)
		Connect(cqp, sqp)
		r.clients[i] = cqp
	}
	return r
}

func TestSRQSharedAcrossQPs(t *testing.T) {
	r := newSRQRig()
	for i := 0; i < 8; i++ {
		r.srq.PostRecv(RecvWR{WRID: uint64(i)})
	}
	var got []any
	r.env.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			c := r.serverRecvCQ.WaitPoll(p)
			got = append(got, c.Payload)
		}
	})
	r.env.Spawn("c0", func(p *sim.Proc) {
		r.clients[0].PostSend(p, SendWR{Op: OpSend, Size: 64, Payload: "a"})
		r.clients[0].PostSend(p, SendWR{Op: OpSend, Size: 64, Payload: "b"})
	})
	r.env.Spawn("c1", func(p *sim.Proc) {
		r.clients[1].PostSend(p, SendWR{Op: OpSend, Size: 64, Payload: "x"})
		r.clients[1].PostSend(p, SendWR{Op: OpSend, Size: 64, Payload: "y"})
	})
	r.env.Run()
	if len(got) != 4 {
		t.Fatalf("received %d messages via SRQ", len(got))
	}
	if r.srq.Depth() != 4 || r.srq.Consumed != 4 || r.srq.Posted != 8 {
		t.Errorf("SRQ accounting depth=%d consumed=%d posted=%d", r.srq.Depth(), r.srq.Consumed, r.srq.Posted)
	}
}

func TestSRQExhaustionPanics(t *testing.T) {
	r := newSRQRig()
	r.srq.PostRecv(RecvWR{})
	defer func() {
		if recover() == nil {
			t.Errorf("SEND beyond SRQ depth did not panic (RNR)")
		}
	}()
	r.env.Spawn("c0", func(p *sim.Proc) {
		r.clients[0].PostSend(p, SendWR{Op: OpSend, Size: 64})
		r.clients[0].PostSend(p, SendWR{Op: OpSend, Size: 64})
	})
	r.env.Run()
}

func TestAttachForeignSRQPanics(t *testing.T) {
	r := newSRQRig()
	defer func() {
		if recover() == nil {
			t.Errorf("cross-device SRQ attach did not panic")
		}
	}()
	r.clients[0].AttachSRQ(r.srq) // clients[0] belongs to another device
}

func TestFetchAddAtomic(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(4096)
	mr.SetAtomicQword(100)
	var olds []uint64
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.qpA.FetchAdd(p, uint64(i), mr.LKey(), 7)
			c := r.sendA.WaitPoll(p)
			if c.Op != OpAtomic {
				t.Errorf("completion op %v", c.Op)
			}
			olds = append(olds, c.Payload.(uint64))
		}
	})
	r.env.Run()
	want := []uint64{100, 107, 114}
	for i, v := range olds {
		if v != want[i] {
			t.Errorf("fetch-add %d returned %d, want %d", i, v, want[i])
		}
	}
	if mr.AtomicQword() != 121 {
		t.Errorf("final atomic %d, want 121", mr.AtomicQword())
	}
}

func TestCompareSwapAtomic(t *testing.T) {
	r := newRig()
	mr := r.pdB.RegisterMRSetup(4096)
	mr.SetAtomicQword(5)
	var first, second uint64
	r.env.Spawn("client", func(p *sim.Proc) {
		// Succeeds: 5 -> 9.
		r.qpA.CompareSwap(p, 1, mr.LKey(), 5, 9)
		first = r.sendA.WaitPoll(p).Payload.(uint64)
		// Fails: expects 5, finds 9.
		r.qpA.CompareSwap(p, 2, mr.LKey(), 5, 77)
		second = r.sendA.WaitPoll(p).Payload.(uint64)
	})
	r.env.Run()
	if first != 5 || second != 9 {
		t.Errorf("CAS observed (%d,%d), want (5,9)", first, second)
	}
	if mr.AtomicQword() != 9 {
		t.Errorf("final atomic %d, want 9 (second CAS must fail)", mr.AtomicQword())
	}
}

func TestAtomicContendersSerialize(t *testing.T) {
	// Two requesters fetch-add concurrently; the responder HCA serializes,
	// so no increment is lost.
	env := sim.NewEnv()
	f := simnet.New(env, simnet.FDRInfiniBand())
	sdev := OpenDevice(f.AddNode("s"))
	spd := sdev.AllocPD()
	mr := spd.RegisterMRSetup(4096)
	for i := 0; i < 2; i++ {
		cdev := OpenDevice(f.AddNode([]string{"a", "b"}[i]))
		cq1, cq2 := cdev.CreateCQ(0), cdev.CreateCQ(0)
		cqp := cdev.CreateQP(cq1, cq2)
		sqp := sdev.CreateQP(sdev.CreateCQ(0), sdev.CreateCQ(0))
		Connect(cqp, sqp)
		env.Spawn("adder", func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				cqp.FetchAdd(p, uint64(j), mr.LKey(), 1)
				cq1.WaitPoll(p)
			}
		})
	}
	env.Run()
	if mr.AtomicQword() != 100 {
		t.Errorf("atomic counter %d after 100 concurrent adds, want 100", mr.AtomicQword())
	}
}
