package verbs

import (
	"fmt"

	"hybridkv/internal/sim"
)

// SRQ is a shared receive queue: many QPs draw receive WRs from one pool,
// the standard way an RDMA Memcached server scales its receive buffers
// with hundreds of client connections (per-QP pools waste memory as
// depth × connections).
type SRQ struct {
	dev   *Device
	recvQ []RecvWR

	// Posted counts lifetime posted WRs; Consumed counts deliveries.
	Posted   int64
	Consumed int64
}

// CreateSRQ allocates a shared receive queue.
func (d *Device) CreateSRQ() *SRQ {
	return &SRQ{dev: d}
}

// PostRecv adds a receive WR to the shared pool.
func (s *SRQ) PostRecv(wr RecvWR) {
	s.recvQ = append(s.recvQ, wr)
	s.Posted++
}

// Depth reports outstanding shared receive WRs.
func (s *SRQ) Depth() int { return len(s.recvQ) }

func (s *SRQ) pop() (RecvWR, bool) {
	if len(s.recvQ) == 0 {
		return RecvWR{}, false
	}
	wr := s.recvQ[0]
	s.recvQ = s.recvQ[1:]
	s.Consumed++
	return wr, true
}

// AttachSRQ binds the QP's receive side to a shared receive queue; SENDs
// and WRITE_IMMs arriving on this QP consume WRs from the SRQ instead of
// the per-QP pool.
func (qp *QP) AttachSRQ(s *SRQ) {
	if s != nil && s.dev != qp.dev {
		panic("verbs: SRQ and QP belong to different devices")
	}
	qp.srq = s
}

// consumeRecv takes the next receive WR from the SRQ when attached, else
// from the per-QP queue.
func (qp *QP) consumeRecv() (RecvWR, bool) {
	if qp.srq != nil {
		return qp.srq.pop()
	}
	if len(qp.recvQ) == 0 {
		return RecvWR{}, false
	}
	wr := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	return wr, true
}

// --- One-sided atomics ---
//
// RC QPs support 64-bit remote atomics executed by the responder's HCA
// with no remote CPU involvement. The simulated MR carries an atomic
// qword per region (the common usage: a counter or sequence lock at a
// known offset).

// AtomicQword returns the MR's current atomic value.
func (mr *MR) AtomicQword() uint64 { return mr.atomic }

// SetAtomicQword initializes the MR's atomic value (setup side).
func (mr *MR) SetAtomicQword(v uint64) { mr.atomic = v }

// atomicWR describes an in-flight atomic operation.
type atomicWire struct {
	srcQPN  int
	dstQPN  int
	wrid    uint64
	remote  int
	add     uint64
	compare uint64
	swap    uint64
	isCAS   bool
	// response
	isResp bool
	old    uint64
}

// atomicReqBytes is the wire size of an atomic request/response packet.
const atomicReqBytes = 28

// FetchAdd posts a one-sided atomic fetch-and-add on the remote MR's
// qword. The completion on the send CQ carries the value before the add
// in its Payload (as uint64).
func (qp *QP) FetchAdd(p *sim.Proc, wrid uint64, remoteMR int, add uint64) {
	qp.postAtomic(p, &atomicWire{
		srcQPN: qp.qpn, dstQPN: qp.remoteQPN, wrid: wrid,
		remote: remoteMR, add: add,
	})
}

// CompareSwap posts a one-sided atomic compare-and-swap: the remote qword
// becomes swap iff it equals compare. The completion payload carries the
// observed prior value.
func (qp *QP) CompareSwap(p *sim.Proc, wrid uint64, remoteMR int, compare, swap uint64) {
	qp.postAtomic(p, &atomicWire{
		srcQPN: qp.qpn, dstQPN: qp.remoteQPN, wrid: wrid,
		remote: remoteMR, compare: compare, swap: swap, isCAS: true,
	})
}

func (qp *QP) postAtomic(p *sim.Proc, w *atomicWire) {
	if !qp.connected {
		panic("verbs: atomic on unconnected QP")
	}
	p.Sleep(doorbellCost)
	qp.dev.AtomicsPosted++
	qp.dev.node.Post(qp.remoteNode, atomicReqBytes, w)
}

// deliverAtomic executes an atomic at the responder or completes one at
// the requester.
func (d *Device) deliverAtomic(src string, w *atomicWire) {
	qp := d.qps[w.dstQPN]
	if qp == nil {
		panic(fmt.Sprintf("verbs: atomic for unknown QP %d on %s", w.dstQPN, d.node.Name()))
	}
	if w.isResp {
		qp.sendCQ.push(Completion{
			WRID: w.wrid, Op: OpAtomic, QPN: qp.qpn,
			Bytes: 8, Payload: w.old,
		})
		return
	}
	mr := d.mrs[w.remote]
	if mr == nil || !mr.valid {
		panic(fmt.Sprintf("verbs: atomic on invalid MR %d on %s", w.remote, d.node.Name()))
	}
	old := mr.atomic
	if w.isCAS {
		if mr.atomic == w.compare {
			mr.atomic = w.swap
		}
	} else {
		mr.atomic += w.add
	}
	// The responder HCA serializes the 8-byte result back; no remote CPU.
	d.node.Post(src, atomicReqBytes, &atomicWire{
		dstQPN: w.srcQPN, wrid: w.wrid, old: old, isResp: true,
	})
}
