package verbs

import (
	"fmt"

	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// This file emulates the IP-over-IB path used by default Memcached +
// libmemcached: kernel TCP sockets running over the InfiniBand fabric.
// Messages are delivered in order per connection; Send blocks the caller for
// the kernel copy/segmentation cost and returns once the source buffer is
// reusable (BSD socket semantics). The fabric's IPoIB LinkSpec supplies the
// per-message and per-segment stack costs.

// StreamMsg is one application message on an IPoIB stream.
type StreamMsg struct {
	Size    int
	Payload any
}

// Stream is one direction-pair (full duplex) connection between two nodes.
type Stream struct {
	env    *sim.Env
	local  *Host
	remote *Host
	id     int
	inbox  *sim.Queue[StreamMsg]
	peer   *Stream
}

// Host is the socket endpoint demultiplexer on one node. At most one Host or
// one verbs Device may own a node's receiver.
type Host struct {
	env     *sim.Env
	node    *simnet.Node
	streams map[int]*Stream
	nextID  int
	accept  *sim.Queue[*Stream]
}

// NewHost installs a socket stack on node.
func NewHost(node *simnet.Node) *Host {
	h := &Host{
		env:     node.Fabric().Env(),
		node:    node,
		streams: make(map[int]*Stream),
		accept:  sim.NewQueue[*Stream](node.Fabric().Env(), 0),
	}
	node.SetReceiver(h.deliver)
	return h
}

// Node returns the underlying fabric node.
func (h *Host) Node() *simnet.Node { return h.node }

type streamWire struct {
	dstStream int
	msg       StreamMsg
	// connect handshake
	connReq   bool
	srcStream int
	srcHost   *Host
}

// Dial opens a connection to the remote host (out-of-band handshake with no
// simulated cost; connection setup is not part of the measured path).
func (h *Host) Dial(remote *Host) *Stream {
	h.nextID++
	local := &Stream{env: h.env, local: h, remote: remote, id: h.nextID,
		inbox: sim.NewQueue[StreamMsg](h.env, 0)}
	h.streams[local.id] = local

	remote.nextID++
	rs := &Stream{env: h.env, local: remote, remote: h, id: remote.nextID,
		inbox: sim.NewQueue[StreamMsg](h.env, 0)}
	remote.streams[rs.id] = rs

	local.peer, rs.peer = rs, local
	remote.accept.TryPut(rs)
	return local
}

// Accept blocks until an inbound connection arrives.
func (h *Host) Accept(p *sim.Proc) (*Stream, bool) {
	return h.accept.Get(p)
}

// TryAccept returns a pending inbound connection without blocking.
func (h *Host) TryAccept() (*Stream, bool) {
	return h.accept.TryGet()
}

// Send writes one message to the stream. The caller blocks for the kernel
// stack cost and until the bytes have left the NIC (source buffer reusable),
// per blocking-socket semantics.
func (s *Stream) Send(p *sim.Proc, size int, payload any) {
	out := s.local.node.Send(p, s.remote.node.Name(), size, &streamWire{
		dstStream: s.peer.id,
		msg:       StreamMsg{Size: size, Payload: payload},
	})
	p.Wait(out.Sent)
}

// Recv blocks until a message arrives on the stream.
func (s *Stream) Recv(p *sim.Proc) (StreamMsg, bool) {
	return s.inbox.Get(p)
}

// RecvTimeout is Recv bounded by d of virtual time (SO_RCVTIMEO semantics).
// timedOut=true means nothing arrived before the deadline.
func (s *Stream) RecvTimeout(p *sim.Proc, d sim.Time) (msg StreamMsg, ok bool, timedOut bool) {
	return s.inbox.GetTimeout(p, d)
}

// TryRecv returns a pending message without blocking.
func (s *Stream) TryRecv() (StreamMsg, bool) {
	return s.inbox.TryGet()
}

// Pending reports queued inbound messages.
func (s *Stream) Pending() int { return s.inbox.Len() }

func (h *Host) deliver(m *simnet.Message) {
	w, ok := m.Payload.(*streamWire)
	if !ok {
		panic("verbs: non-stream payload on IPoIB host")
	}
	s := h.streams[w.dstStream]
	if s == nil {
		panic(fmt.Sprintf("verbs: delivery to unknown stream %d on %s", w.dstStream, h.node.Name()))
	}
	s.inbox.TryPut(w.msg)
}
