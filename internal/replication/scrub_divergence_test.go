package replication_test

import (
	"testing"

	"hybridkv/internal/cluster"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// The same-epoch content-divergence repair: one replica's applied value
// flips silently in RAM — bytes and recorded sum change together, the
// epoch does not. An epoch-only digest calls the pair converged forever;
// the content fold must flag it, the coordinator rule must pick a winner,
// and the repair write must converge the loser onto the winner's bytes.
// These two tests pin both directions of that rule and the
// scrub-corruptions-found / scrub-corruptions-repaired counters the bitrot
// experiment reports.

// divergeSetup drives one replicated SET and returns the key's replica
// pair split into the epoch's coordinator and the other member.
func divergeSetup(t *testing.T, p *sim.Proc, cl *cluster.Cluster, key string) (coord, other int, goodSum uint64, ok bool) {
	t.Helper()
	c := cl.Clients[0]
	if st := c.Set(p, key, itValue, uint64(1), 0, 0); st != protocol.StatusStored {
		t.Errorf("set %q: %v", key, st)
		return 0, 0, 0, false
	}
	reps := itRing(3).Replicas(key, 2)
	epoch, goodSum, okS := cl.Replicators[reps[0]].AppliedStateForTest(key)
	if !okS {
		t.Errorf("primary holds no confirmed record of %q after an acked SET", key)
		return 0, 0, 0, false
	}
	coord = int(epoch & 0xff)
	if coord != reps[0] && coord != reps[1] {
		t.Errorf("epoch %#x of %q minted outside the replica set %v; pick another key", epoch, key, reps)
		return 0, 0, 0, false
	}
	return coord, reps[0] + reps[1] - coord, goodSum, true
}

// corruptApplied flips server id's applied copy of key in place: the store
// bytes and the replicator's recorded sum change together; the epoch
// stands. This is the state at-rest rot can never reach (foreground
// verification retires it first) — only silent RAM corruption can.
func corruptApplied(t *testing.T, p *sim.Proc, cl *cluster.Cluster, id int, key string) {
	t.Helper()
	bad := uint64(999)
	if st := cl.Servers[id].Store().Set(p, key, itValue, bad, 0, 0); st != protocol.StatusStored {
		t.Errorf("direct corrupting set on server %d: %v", id, st)
	}
	if !cl.Replicators[id].SilentlyCorruptForTest(key, protocol.ValueSum(bad)) {
		t.Errorf("corruption hook found no confirmed record of %q on server %d", key, id)
	}
}

// Corrupting the NON-coordinator: the scrub must detect the divergence and
// the coordinator's clean copy must win — the loser ends up holding the
// original bytes again, on both the store and the epoch record.
func TestScrubRepairsSameEpochContentDivergence(t *testing.T) {
	cl := itCluster()
	key := "diverge:loser"

	cl.Env.Spawn("it-diverge", func(p *sim.Proc) {
		coord, other, goodSum, ok := divergeSetup(t, p, cl, key)
		if !ok {
			return
		}
		corruptApplied(t, p, cl, other, key)
		p.Sleep(30 * sim.Millisecond)
		for _, id := range []int{coord, other} {
			v, _, _, _, okR := cl.Servers[id].Store().ReadItem(p, key)
			if !okR {
				t.Errorf("replica %d lost %q during repair", id, key)
				continue
			}
			if seq, _ := v.(uint64); seq != 1 {
				t.Errorf("replica %d holds %v, want the coordinator's seq 1", id, v)
			}
			if _, sum, okS := cl.Replicators[id].AppliedStateForTest(key); !okS || sum != goodSum {
				t.Errorf("replica %d records sum %#x (ok=%v), want the clean %#x", id, sum, okS, goodSum)
			}
		}
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if total.Get("scrub-corruptions-found") == 0 {
		t.Error("same-epoch divergence never detected: the content fold is dead")
	}
	if total.Get("scrub-corruptions-repaired") == 0 {
		t.Error("detected divergence never repaired")
	}
}

// Corrupting the COORDINATOR: with R=2 there is no quorum to vote with, so
// the rule is deterministic, not clairvoyant — the epoch's coordinator
// keeps its copy and the other member converges onto it. Both ends must
// agree afterwards (no push-pull oscillation), and the repair is still
// found and counted.
func TestScrubCoordinatorWinsSameEpochDivergence(t *testing.T) {
	cl := itCluster()
	key := "diverge:coord"
	badSum := protocol.ValueSum(uint64(999))

	cl.Env.Spawn("it-diverge", func(p *sim.Proc) {
		coord, other, _, ok := divergeSetup(t, p, cl, key)
		if !ok {
			return
		}
		corruptApplied(t, p, cl, coord, key)
		p.Sleep(30 * sim.Millisecond)
		for _, id := range []int{coord, other} {
			v, _, _, _, okR := cl.Servers[id].Store().ReadItem(p, key)
			if !okR {
				t.Errorf("replica %d lost %q during repair", id, key)
				continue
			}
			if seq, _ := v.(uint64); seq != 999 {
				t.Errorf("replica %d holds %v, want the coordinator's (corrupt) 999", id, v)
			}
			if _, sum, okS := cl.Replicators[id].AppliedStateForTest(key); !okS || sum != badSum {
				t.Errorf("replica %d records sum %#x (ok=%v), want the coordinator's %#x", id, sum, okS, badSum)
			}
		}
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if total.Get("scrub-corruptions-found") == 0 {
		t.Error("same-epoch divergence never detected")
	}
	if total.Get("scrub-corruptions-repaired") == 0 {
		t.Error("the non-coordinator never took the coordinator's copy")
	}
}
