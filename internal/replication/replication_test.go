package replication

import (
	"testing"

	"hybridkv/internal/metrics"
	"hybridkv/internal/sim"
)

// Replica sets must be stable, the right size, duplicate-free, and led by
// the ring's primary: the client's replica-aware routing and the server's
// membership checks both assume exactly this shape.
func TestRingReplicaSets(t *testing.T) {
	ring := NewRing()
	for i := 0; i < 5; i++ {
		ring.Add(i)
	}
	keys := []string{"a", "bb", "repl:0001", "chaos:w2:k1", "flood:0042", "x:y:z"}
	for _, key := range keys {
		set := ring.Replicas(key, 3)
		if len(set) != 3 {
			t.Fatalf("Replicas(%q, 3) returned %d ids: %v", key, len(set), set)
		}
		seen := map[int]bool{}
		for _, id := range set {
			if id < 0 || id >= 5 {
				t.Errorf("Replicas(%q) produced out-of-range id %d", key, id)
			}
			if seen[id] {
				t.Errorf("Replicas(%q) repeats id %d: %v", key, id, set)
			}
			seen[id] = true
		}
		if set[0] != ring.Pick(key) {
			t.Errorf("Replicas(%q)[0] = %d, want the primary %d", key, set[0], ring.Pick(key))
		}
		again := ring.Replicas(key, 3)
		for i := range set {
			if set[i] != again[i] {
				t.Errorf("Replicas(%q) unstable: %v then %v", key, set, again)
			}
		}
		if one := ring.Replicas(key, 1); len(one) != 1 || one[0] != ring.Pick(key) {
			t.Errorf("Replicas(%q, 1) = %v, want just the primary", key, one)
		}
	}
}

// Epochs are the replication protocol's whole ordering story: two
// coordinators minting concurrently must never collide, every mint must
// exceed what it was minted above, and the coordinator id must be
// recoverable from the low byte.
func TestNextEpochOrdering(t *testing.T) {
	r1 := &Replicator{cfg: Config{ID: 1}}
	r2 := &Replicator{cfg: Config{ID: 2}}

	e1, e2 := r1.nextEpoch(0), r2.nextEpoch(0)
	if e1 == e2 {
		t.Fatalf("concurrent coordinators minted the same epoch %d", e1)
	}
	if e1&0xff != 1 || e2&0xff != 2 {
		t.Errorf("coordinator ids not recoverable: %x, %x", e1, e2)
	}
	if e1 == 0 || e2 == 0 {
		t.Error("a minted epoch must be nonzero (zero means unconfirmed)")
	}
	// Re-coordinating above a conflicting epoch must actually get above it.
	above := r1.nextEpoch(e2)
	if above <= e2 {
		t.Errorf("nextEpoch(%x) = %x does not exceed its floor", e2, above)
	}
	// Chains are strictly monotonic per coordinator.
	cur := uint64(0)
	for i := 0; i < 100; i++ {
		next := r2.nextEpoch(cur)
		if next <= cur {
			t.Fatalf("epoch chain stalled: %x then %x", cur, next)
		}
		cur = next
	}
}

// A duplicated framePullMiss (the fault injector duplicates frames) must
// not count as two peers missing — that would conclude "all peers missed"
// and drop a suspect key another peer actually holds. One peer's answer is
// consumed once, and answers from peers that were never asked are ignored.
func TestPullMissDeduplicatesByPeer(t *testing.T) {
	env := sim.NewEnv()
	r := &Replicator{env: env, keys: make(map[string]*keyState), Counters: metrics.NewCounters()}
	ks := &keyState{suspect: true, pull: env.NewEvent(), pullFrom: map[int]bool{1: true, 2: true}}
	r.keys["k"] = ks

	r.handlePullMiss(nil, &frame{Kind: framePullMiss, Key: "k", From: 1})
	r.handlePullMiss(nil, &frame{Kind: framePullMiss, Key: "k", From: 1}) // injector duplicate
	r.handlePullMiss(nil, &frame{Kind: framePullMiss, Key: "k", From: 9}) // never asked

	if ks.pull == nil || ks.pull.Fired() {
		t.Fatal("pull concluded after one peer's duplicated miss; peer 2 never answered")
	}
	if len(ks.pullFrom) != 1 || !ks.pullFrom[2] {
		t.Errorf("outstanding peer set = %v, want just peer 2", ks.pullFrom)
	}
	if n := r.Counters.Get("suspect-drops"); n != 0 {
		t.Errorf("suspect-drops = %d, want 0 while a peer is outstanding", n)
	}
}

// The digest must be insensitive to iteration order (XOR fold) and
// sensitive to every component: epoch, tombstone flag, key, and the
// value-content checksum.
func TestDigestEntryDistinguishes(t *testing.T) {
	base := digestEntry("k", 0x100, false, 7)
	if digestEntry("k", 0x100, false, 7) != base {
		t.Error("digestEntry is not deterministic")
	}
	if digestEntry("k", 0x200, false, 7) == base {
		t.Error("digest ignores the epoch")
	}
	if digestEntry("k", 0x100, true, 7) == base {
		t.Error("digest ignores the tombstone flag")
	}
	if digestEntry("j", 0x100, false, 7) == base {
		t.Error("digest ignores the key")
	}
	if digestEntry("k", 0x100, false, 8) == base {
		t.Error("digest ignores the value content checksum")
	}
}
