package replication

import (
	"fmt"
	"sort"

	"hybridkv/internal/sim"
)

// Dynamic membership
//
// A Membership is the shared, epoch-versioned membership state machine that
// turns the static ketama ring into a dynamic one. Exactly like the static
// ring it is a control-plane object shared by every server replicator and
// every client runtime (all parties agree on the epoch and both rings by
// construction); everything that moves data — segment manifests, key pulls,
// repair pushes — travels over the replicators' QP mesh and pays real
// fabric latency under fault injection.
//
// A transition (join, leave, decommission) bumps the epoch and swaps in a
// new current ring while keeping the previous ring alive for the duration
// of the migration. While both rings exist:
//
//   - Writes replicate to the UNION of the old and new replica sets, so an
//     acked write is durable under either ring no matter how it interleaves
//     with sealing. ReplicaSet returns that union, new-ring primary first.
//
//   - Reads on a server that is gaining a key (in the new set, not the old)
//     go through a double-read window: until the server seals the key's
//     segment it must confirm the key against the old owners before
//     answering, and answers retryable rather than fabricate a miss when it
//     cannot (see Replicator.executeGet).
//
//   - Every current member migrates the hash space segment by segment:
//     it asks each old owner for a manifest of the segment's keys it now
//     owns, pulls whatever it lacks, and seals the segment with SealFor.
//     When every current member has sealed every segment the transition
//     finalizes: the previous ring is dropped, joining nodes become active,
//     leaving nodes become dead, and subscribers (clients, the cluster)
//     are notified so they can invalidate bypass location caches, hot
//     sets, and per-server breaker state.
//
// Transitions are serialized: Begin* panics if a migration is in flight.
// "Concurrent rebalances" at the benchmark level are back-to-back epochs,
// each racing live traffic, kills, and recoveries.

// NodeState is one server's place in the membership lifecycle.
type NodeState int

const (
	// NodeActive serves and owns its ring range.
	NodeActive NodeState = iota
	// NodeJoining is on the current ring but still pulling its key range.
	NodeJoining
	// NodeLeaving was decommissioned: off the current ring but still a pull
	// source until the migration finalizes.
	NodeLeaving
	// NodeDead left the cluster (abrupt leave, or a finalized decommission).
	NodeDead
)

// Segments is the number of fixed hash-space segments ownership handoff is
// chunked into. Each (member, segment) pair seals independently, so the
// double-read window narrows as migration progresses instead of covering
// the whole key space until the end.
const Segments = 32

// SegmentOf maps a key to its migration segment.
func SegmentOf(key string) int { return int(HashKey(key) % Segments) }

// Membership is the shared epoch-versioned view of the server fleet.
type Membership struct {
	env    *sim.Env
	factor int

	epoch  uint64
	cur    *Ring
	prev   *Ring // non-nil while a migration is in flight
	states map[int]NodeState

	sources []int                 // pull sources for the in-flight transition
	sealed  map[int][]bool        // current member -> per-segment seal bits
	open    int                   // unsealed (member, segment) pairs remaining
	done    map[uint64]*sim.Event // transition epoch -> finalize event

	subs []func(epoch uint64, final bool)

	// Transitions counts Begin* calls; bench snapshots read it.
	Transitions int
}

// NewMembership builds the bootstrap membership: every id active on the
// ring at epoch 1, no migration in flight.
func NewMembership(env *sim.Env, factor int, ids []int) *Membership {
	m := &Membership{
		env: env, factor: factor, epoch: 1,
		cur:    NewRing(),
		states: make(map[int]NodeState, len(ids)),
		done:   make(map[uint64]*sim.Event),
	}
	for _, id := range ids {
		m.cur.Add(id)
		m.states[id] = NodeActive
	}
	return m
}

// Epoch returns the current membership epoch. It bumps at every transition
// begin; clients stamp it into their bypass/hot-set state so a stale epoch
// is detectable on the wire (protocol.DirectoryInfo.MemberEpoch).
func (m *Membership) Epoch() uint64 { return m.epoch }

// Factor returns the replication factor the membership routes for.
func (m *Membership) Factor() int { return m.factor }

// Ring returns the current ring (the new ring during a migration).
func (m *Membership) Ring() *Ring { return m.cur }

// Migrating reports whether a transition is mid-migration.
func (m *Membership) Migrating() bool { return m.prev != nil }

// State returns id's lifecycle state (NodeDead for unknown ids).
func (m *Membership) State(id int) NodeState { return m.states[id] }

// Members returns the current ring's members, sorted ascending.
func (m *Membership) Members() []int { return m.cur.Members() }

// Sources returns the pull sources of the in-flight transition: the
// previous ring's members minus nodes already dead. Empty when stable.
func (m *Membership) Sources() []int { return m.sources }

// DoneOf returns the finalize event of the transition that began at epoch,
// or nil if no such transition was started.
func (m *Membership) DoneOf(epoch uint64) *sim.Event { return m.done[epoch] }

// Subscribe registers fn to run at every transition begin (final=false)
// and finalize (final=true). Callbacks run synchronously inside Begin* /
// SealFor in whatever proc context drove the transition, so they must not
// block.
func (m *Membership) Subscribe(fn func(epoch uint64, final bool)) {
	m.subs = append(m.subs, fn)
}

func (m *Membership) notify(final bool) {
	for _, fn := range m.subs {
		fn(m.epoch, final)
	}
}

// BeginJoin starts a join transition: id enters the current ring as
// NodeJoining and every current member re-seals the hash space. Returns the
// finalize event. Panics if a migration is already in flight — transitions
// are serialized by design.
func (m *Membership) BeginJoin(id int) *sim.Event {
	if m.prev != nil {
		panic("membership: transition already in flight")
	}
	if st, known := m.states[id]; known && st != NodeDead {
		panic(fmt.Sprintf("membership: server %d already a member", id))
	}
	next := m.cur.Clone()
	next.Add(id)
	m.states[id] = NodeJoining
	return m.begin(next, nil)
}

// BeginLeave starts a leave transition: id drops off the current ring. A
// graceful leave (decommission) keeps id as a pull source until finalize;
// an abrupt leave marks it dead immediately, so migration re-replicates its
// range from the surviving replicas only. Returns the finalize event.
func (m *Membership) BeginLeave(id int, graceful bool) *sim.Event {
	if m.prev != nil {
		panic("membership: transition already in flight")
	}
	if st := m.states[id]; st != NodeActive {
		panic(fmt.Sprintf("membership: server %d not active (state %d)", id, st))
	}
	next := m.cur.Clone()
	next.Remove(id)
	if len(next.Members()) == 0 {
		panic("membership: cannot remove the last member")
	}
	if graceful {
		m.states[id] = NodeLeaving
		return m.begin(next, nil)
	}
	m.states[id] = NodeDead
	return m.begin(next, map[int]bool{id: true})
}

// begin swaps in the next ring, arms the seal bookkeeping, and notifies
// subscribers. exclude drops ids from the source set (abrupt leavers).
func (m *Membership) begin(next *Ring, exclude map[int]bool) *sim.Event {
	m.prev, m.cur = m.cur, next
	m.epoch++
	m.Transitions++
	m.sources = m.sources[:0]
	for _, id := range m.prev.Members() {
		if m.states[id] != NodeDead && !exclude[id] {
			m.sources = append(m.sources, id)
		}
	}
	sort.Ints(m.sources)
	members := m.cur.Members()
	m.sealed = make(map[int][]bool, len(members))
	for _, id := range members {
		m.sealed[id] = make([]bool, Segments)
	}
	m.open = len(members) * Segments
	ev := m.env.NewEvent()
	m.done[m.epoch] = ev
	m.notify(false)
	return ev
}

// SealFor records that member id finished migrating segment seg of the
// transition begun at epoch. Sealing the last open (member, segment) pair
// finalizes the transition. Stale epochs are ignored.
func (m *Membership) SealFor(epoch uint64, id, seg int) {
	if m.prev == nil || epoch != m.epoch {
		return
	}
	bits := m.sealed[id]
	if bits == nil || bits[seg] {
		return
	}
	bits[seg] = true
	m.open--
	if m.open == 0 {
		m.finalize()
	}
}

// SealedFor reports whether member id has sealed seg in the in-flight
// transition. Outside a migration everything is sealed.
func (m *Membership) SealedFor(id, seg int) bool {
	if m.prev == nil {
		return true
	}
	bits := m.sealed[id]
	return bits != nil && bits[seg]
}

// finalize drops the previous ring and settles node states: joiners become
// active, leavers become dead. Subscribers are notified before the done
// event fires so client invalidation is visible to whoever awaited the
// transition.
func (m *Membership) finalize() {
	epoch := m.epoch
	m.prev = nil
	m.sources = m.sources[:0]
	m.sealed = nil
	for id, st := range m.states {
		switch st {
		case NodeJoining:
			m.states[id] = NodeActive
		case NodeLeaving:
			m.states[id] = NodeDead
		}
	}
	m.notify(true)
	if ev := m.done[epoch]; ev != nil && !ev.Fired() {
		ev.Fire()
	}
}

// ReplicaSet returns key's replica set under the current epoch: the new
// ring's set (primary first) extended, while migrating, with whatever the
// previous ring adds — so writes dual-apply and client failover can still
// reach an old owner holding the data mid-migration.
func (m *Membership) ReplicaSet(key string, n int) []int {
	set := m.cur.Replicas(key, n)
	if m.prev == nil {
		return set
	}
	for _, id := range m.prev.Replicas(key, n) {
		if !containsID(set, id) {
			set = append(set, id)
		}
	}
	return set
}

// OldOwners returns key's replica set under the previous ring, minus dead
// nodes and minus self — the pull sources of a double-read. Nil when no
// migration is in flight.
func (m *Membership) OldOwners(key string, self int) []int {
	if m.prev == nil {
		return nil
	}
	var out []int
	for _, id := range m.prev.Replicas(key, m.factor) {
		if id != self && m.states[id] != NodeDead {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// NeedsDoubleRead reports whether server id, asked for key, is inside the
// double-read window: a migration is in flight, id has not sealed the
// key's segment, and id is gaining the key (in the new replica set but not
// the old one, so its local miss proves nothing).
func (m *Membership) NeedsDoubleRead(id int, key string) bool {
	if m.prev == nil || m.SealedFor(id, SegmentOf(key)) {
		return false
	}
	return containsID(m.cur.Replicas(key, m.factor), id) &&
		!containsID(m.prev.Replicas(key, m.factor), id)
}

func containsID(set []int, id int) bool {
	for _, have := range set {
		if have == id {
			return true
		}
	}
	return false
}
