package replication

import (
	"testing"

	"hybridkv/internal/sim"
)

// State-machine contracts of the membership layer, independent of any
// fabric: epochs, union replica sets, seal-driven finalize, and the
// graceful/abrupt source distinction that decides who migration pulls from.

func memIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestMembershipBootstrap(t *testing.T) {
	m := NewMembership(sim.NewEnv(), 2, memIDs(3))
	if m.Epoch() != 1 || m.Migrating() {
		t.Fatalf("bootstrap: epoch %d migrating %v", m.Epoch(), m.Migrating())
	}
	if got := m.Members(); len(got) != 3 {
		t.Fatalf("bootstrap members: %v", got)
	}
	for id := 0; id < 3; id++ {
		if m.State(id) != NodeActive {
			t.Errorf("server %d state %d, want NodeActive", id, m.State(id))
		}
	}
	// Stable: replica sets come straight off the single ring, everything
	// sealed, no double reads anywhere.
	if set := m.ReplicaSet("k", 2); len(set) != 2 {
		t.Errorf("stable ReplicaSet: %v", set)
	}
	if !m.SealedFor(0, 5) {
		t.Error("stable membership reports an unsealed segment")
	}
	if m.NeedsDoubleRead(0, "k") {
		t.Error("stable membership demands a double read")
	}
}

// During a join the union replica set covers both rings, the joiner's reads
// are double-read gated until its segments seal, and sealing every
// (member, segment) pair finalizes: prev dropped, joiner active.
func TestMembershipJoinLifecycle(t *testing.T) {
	env := sim.NewEnv()
	m := NewMembership(env, 2, memIDs(3))
	done := m.BeginJoin(3)
	if m.Epoch() != 2 || !m.Migrating() {
		t.Fatalf("post-begin: epoch %d migrating %v", m.Epoch(), m.Migrating())
	}
	if m.State(3) != NodeJoining {
		t.Fatalf("joiner state %d", m.State(3))
	}
	if got := m.Sources(); len(got) != 3 {
		t.Fatalf("join sources %v, want all three old members", got)
	}

	// The union: every key's set includes the new ring's replicas first and
	// any old-ring-only holder after.
	sawUnion, sawDouble := false, false
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		set := m.ReplicaSet(key, 2)
		if len(set) < 2 {
			t.Errorf("union set for %q too small: %v", key, set)
		}
		if len(set) > 2 {
			sawUnion = true
		}
		if m.NeedsDoubleRead(3, key) && !containsID(m.OldOwners(key, 3), 3) {
			sawDouble = true
			if len(m.OldOwners(key, 3)) == 0 {
				t.Errorf("double-read window for %q with no old owners to consult", key)
			}
		}
		// A node that held the key under the old ring never double-reads it.
		for _, id := range m.prev.Replicas(key, 2) {
			if m.NeedsDoubleRead(id, key) {
				t.Errorf("old owner %d forced to double-read %q", id, key)
			}
		}
	}
	if !sawUnion {
		t.Error("no key's union set ever exceeded the factor — join moved nothing")
	}
	if !sawDouble {
		t.Error("no key ever entered the joiner's double-read window")
	}

	// Seal everything; the last seal finalizes and fires done.
	finals := 0
	m.Subscribe(func(epoch uint64, final bool) {
		if final && epoch == 2 {
			finals++
		}
	})
	for _, id := range m.Members() {
		for seg := 0; seg < Segments; seg++ {
			m.SealFor(2, id, seg)
			m.SealFor(2, id, seg) // duplicate seals are idempotent
		}
	}
	if m.Migrating() {
		t.Fatal("still migrating after every pair sealed")
	}
	if finals != 1 {
		t.Errorf("finalize notified %d times, want 1", finals)
	}
	if !done.Fired() {
		t.Error("done event did not fire on finalize")
	}
	if m.State(3) != NodeActive {
		t.Errorf("joiner state %d after finalize, want NodeActive", m.State(3))
	}
	if set := m.ReplicaSet("a", 2); len(set) != 2 {
		t.Errorf("post-finalize ReplicaSet still a union: %v", set)
	}
}

// Graceful vs abrupt leave: the leaver stays a pull source only when
// graceful, and lands on NodeDead either way once the transition settles.
func TestMembershipLeaveSources(t *testing.T) {
	env := sim.NewEnv()

	g := NewMembership(env, 2, memIDs(4))
	g.BeginLeave(2, true)
	if g.State(2) != NodeLeaving {
		t.Errorf("graceful leaver state %d, want NodeLeaving", g.State(2))
	}
	if !containsID(g.Sources(), 2) {
		t.Errorf("graceful leaver missing from sources %v", g.Sources())
	}

	a := NewMembership(env, 2, memIDs(4))
	a.BeginLeave(2, false)
	if a.State(2) != NodeDead {
		t.Errorf("abrupt leaver state %d, want NodeDead", a.State(2))
	}
	if containsID(a.Sources(), 2) {
		t.Errorf("abrupt leaver still in sources %v", a.Sources())
	}
	for _, m := range []*Membership{g, a} {
		if containsID(m.Members(), 2) {
			t.Error("leaver still on the current ring")
		}
		// OldOwners never proposes a dead node as a double-read source.
		for _, key := range []string{"a", "b", "c", "d"} {
			if m == a && containsID(m.OldOwners(key, 0), 2) {
				t.Errorf("dead node offered as old owner of %q", key)
			}
		}
	}
}

// Transitions serialize: a second Begin* during a migration panics, and a
// stale-epoch seal is ignored rather than corrupting the new transition.
func TestMembershipSerializesTransitions(t *testing.T) {
	env := sim.NewEnv()
	m := NewMembership(env, 2, memIDs(3))
	m.BeginJoin(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Begin mid-migration did not panic")
			}
		}()
		m.BeginLeave(0, true)
	}()
	// A seal stamped with a bogus epoch must not count.
	m.SealFor(99, 0, 0)
	if m.SealedFor(0, 0) {
		t.Error("stale-epoch seal was accepted")
	}
}
