package replication

import (
	"sort"

	"hybridkv/internal/sim"
)

// Migration engine
//
// Every replicator with a Membership attached runs a migrator proc. When a
// transition begins it walks the hash space segment by segment: for each
// segment it asks every pull source (the previous ring's live members) for
// a manifest of the keys it now owns there, compares the manifest against
// local epochs, and issues the ordinary anti-entropy framePull for every
// key it lacks — the source answers with the same repair push a scrub diff
// would trigger, so migration literally reuses the anti-entropy frames and
// inherits their epoch-guarded, idempotent apply path. Only when every
// source has answered and every wanted key arrived (or proved gone
// everywhere) does the migrator seal the segment with Membership.SealFor.
//
// The pull-based design is what makes sealing safe under chaos: a dropped
// push can never silently count as delivered, because the want it left
// open keeps the segment unsealed and the retry loop re-pulls it. A source
// that is down (killed mid-migration) simply doesn't answer; the loop
// re-sends its SegPull until the node cold-restarts and pushes whatever
// its recovery confirmed, while the other sources cover the overlap.
//
// After the transition finalizes, each node garbage-collects the keys it
// no longer replicates (deleting them also unpublishes their bypass
// directory slots, so one-sided READs cannot land on a moved key's stale
// slot past the seqlock check).

// migWant is one key the migrator still owes itself: the freshest epoch
// any manifest promised, and which sources might still push it.
type migWant struct {
	epoch uint64
	from  map[int]bool
}

// segPull is the in-flight migration state of one segment.
type segPull struct {
	seg     int
	epoch   uint64       // membership epoch of the transition
	waiting map[int]bool // sources yet to answer with a manifest
	wants   map[string]*migWant
	done    *sim.Event
}

func (st *segPull) maybeDone() {
	if len(st.waiting) == 0 && len(st.wants) == 0 &&
		st.done != nil && !st.done.Fired() {
		st.done.Fire()
	}
}

// SetMembership attaches the shared membership state machine. Must be
// called before Interconnect/Join starts the engines. Ring lookups route
// through the membership from then on, returning the union of old and new
// replica sets while a migration is in flight.
func (r *Replicator) SetMembership(m *Membership) {
	r.mem = m
	m.Subscribe(func(epoch uint64, final bool) {
		if !final && r.memWake != nil && !r.memWake.Fired() {
			r.memWake.Fire()
		}
	})
}

// MembershipEpoch returns the attached membership's epoch (0 when static).
// The server stamps it into directory query answers so bypass clients can
// detect a stale location cache on the wire.
func (r *Replicator) MembershipEpoch() uint64 {
	if r.mem == nil {
		return 0
	}
	return r.mem.Epoch()
}

// replicaSet is the routing primitive: the membership's epoch-aware union
// when dynamic, the static ring otherwise.
func (r *Replicator) replicaSet(key string) []int {
	if r.mem != nil {
		return r.mem.ReplicaSet(key, r.cfg.Factor)
	}
	return r.ring.Replicas(key, r.cfg.Factor)
}

// migrator drives this node's side of every membership transition. It
// parks between transitions (no timers, so a stable cluster drains), and
// on each epoch: pulls and seals every segment if this node is a current
// member, waits for the global finalize, then garbage-collects keys this
// node no longer replicates.
func (r *Replicator) migrator(p *sim.Proc) {
	if r.mem == nil {
		return
	}
	var seen uint64
	for {
		for !r.mem.Migrating() || r.mem.Epoch() == seen {
			ev := r.env.NewEvent()
			r.memWake = ev
			p.Wait(ev)
			r.memWake = nil
		}
		epoch := r.mem.Epoch()
		seen = epoch
		if containsID(r.mem.Members(), r.cfg.ID) {
			for seg := 0; seg < Segments; seg++ {
				if !r.migrateSegment(p, epoch, seg) {
					break // transition superseded
				}
			}
		}
		if done := r.mem.DoneOf(epoch); done != nil {
			p.Wait(done)
		}
		r.gcMoved(p)
	}
}

// migrateSegment pulls one segment from every source and seals it. Returns
// false if the transition was superseded before the seal.
func (r *Replicator) migrateSegment(p *sim.Proc, epoch uint64, seg int) bool {
	st := &segPull{
		seg: seg, epoch: epoch,
		waiting: make(map[int]bool),
		wants:   make(map[string]*migWant),
	}
	for _, id := range r.mem.Sources() {
		if id != r.cfg.ID {
			st.waiting[id] = true
		}
	}
	for {
		if !r.mem.Migrating() || r.mem.Epoch() != epoch {
			delete(r.migPulls, seg)
			return false
		}
		if r.isDown() {
			// A dead node neither pulls nor seals; keep checking until the
			// cold restart brings us back.
			p.Sleep(4 * r.cfg.PullTimeout)
			continue
		}
		if len(st.waiting) == 0 && len(st.wants) == 0 {
			delete(r.migPulls, seg)
			r.mem.SealFor(epoch, r.cfg.ID, seg)
			r.Counters.Add("migrate-seals", 1)
			return true
		}
		// Background pacing: one token per pull round. Deferred rounds are
		// re-sent later, never dropped, so a paced rebalance still seals
		// every segment; the loop re-checks supersession after the wait.
		r.pace(p)
		if !r.mem.Migrating() || r.mem.Epoch() != epoch {
			delete(r.migPulls, seg)
			return false
		}
		if r.isDown() {
			continue
		}
		st.done = r.env.NewEvent()
		// (Re)install: a Wipe between rounds cleared r.migPulls, and with it
		// every satisfied want's local state — the resent pulls rebuild both.
		r.migPulls[seg] = st
		for _, pid := range sortedIDSet(st.waiting) {
			r.send(p, pid, &frame{Kind: frameSegPull, Seg: seg, Epoch: epoch})
		}
		for _, key := range sortedWantKeys(st.wants) {
			for _, pid := range sortedIDSet(st.wants[key].from) {
				r.send(p, pid, &frame{Kind: framePull, Key: key})
			}
		}
		p.WaitTimeout(st.done, 4*r.cfg.PullTimeout)
	}
}

// handleSegPull answers a migration manifest request: every confirmed key
// in the segment that the requester owns under the new ring. An empty
// manifest is still sent — "answered, nothing for you" seals faster than a
// timeout.
func (r *Replicator) handleSegPull(p *sim.Proc, f *frame) {
	if r.mem == nil || !r.mem.Migrating() || r.mem.Epoch() != f.Epoch {
		return
	}
	resp := &frame{Kind: frameSegManifest, Seg: f.Seg, Epoch: f.Epoch}
	newRing := r.mem.Ring()
	for _, key := range r.sortedConfirmedKeys() {
		if SegmentOf(key) != f.Seg || !containsID(newRing.Replicas(key, r.cfg.Factor), f.From) {
			continue
		}
		ks := r.keys[key]
		resp.Entries = append(resp.Entries, KeyEpoch{Key: key, Epoch: ks.epoch, Del: ks.del})
	}
	r.Counters.Add("migrate-manifests", 1)
	r.send(p, f.From, resp)
}

// handleSegManifest records a source's answer: pull every listed key we do
// not hold at the promised epoch yet.
func (r *Replicator) handleSegManifest(p *sim.Proc, f *frame) {
	st := r.migPulls[f.Seg]
	if st == nil || st.epoch != f.Epoch {
		return
	}
	delete(st.waiting, f.From)
	for _, e := range f.Entries {
		if ks := r.keys[e.Key]; ks != nil && !ks.suspect && ks.epoch >= e.Epoch {
			continue // already current (or fresher) locally
		}
		w := st.wants[e.Key]
		if w == nil {
			w = &migWant{epoch: e.Epoch, from: make(map[int]bool)}
			st.wants[e.Key] = w
			r.Counters.Add("migrate-keys-wanted", 1)
		}
		if e.Epoch > w.epoch {
			w.epoch = e.Epoch
		}
		w.from[f.From] = true
		r.send(p, f.From, &frame{Kind: framePull, Key: e.Key})
	}
	st.maybeDone()
}

// migSatisfy retires an open migration want once the key's local epoch
// reached what a manifest promised. Called on every local epoch advance.
func (r *Replicator) migSatisfy(key string, epoch uint64) {
	st := r.migPulls[SegmentOf(key)]
	if st == nil {
		return
	}
	w := st.wants[key]
	if w == nil || epoch < w.epoch {
		return
	}
	delete(st.wants, key)
	r.Counters.Add("migrate-keys-moved", 1)
	st.maybeDone()
}

// migPullMissed records a source's "don't have it" for an open migration
// want. Only when every source that promised (or was asked for) the key
// missed is the want dropped: the key is then gone everywhere reachable,
// and a miss is legal — sealing cannot lose what no longer exists.
func (r *Replicator) migPullMissed(key string, from int) {
	st := r.migPulls[SegmentOf(key)]
	if st == nil {
		return
	}
	w := st.wants[key]
	if w == nil || !w.from[from] {
		return
	}
	delete(w.from, from)
	if len(w.from) > 0 {
		return
	}
	delete(st.wants, key)
	r.Counters.Add("migrate-want-vanished", 1)
	st.maybeDone()
}

// doubleRead confirms a key this node is gaining against the old owners
// before a read-path decision: the first confirmed push (or a prior
// confirm) returns true, an all-miss returns true with the key legally
// absent, and a timeout returns false — the caller then answers retryable
// so the client fails over to an old owner instead of eating a fabricated
// miss. Shares the suspect-pull machinery (ks.pull / ks.pullFrom), so a
// concurrent suspect confirmation and a double-read coalesce.
func (r *Replicator) doubleRead(p *sim.Proc, key string) bool {
	srcs := r.mem.OldOwners(key, r.cfg.ID)
	if len(srcs) == 0 {
		return true // nobody left to consult; serve local state
	}
	ks := r.state(key)
	if ks.epoch != 0 && !ks.suspect {
		return true
	}
	if ks.pull == nil {
		ks.pull = r.env.NewEvent()
		ks.pullFrom = make(map[int]bool, len(srcs))
		for _, pid := range srcs {
			ks.pullFrom[pid] = true
			r.send(p, pid, &frame{Kind: framePull, Key: key})
		}
		r.Counters.Add("migrate-double-reads", 1)
	}
	ev := ks.pull
	p.WaitTimeout(ev, r.cfg.PullTimeout)
	if !ev.Fired() {
		if ks.pull == ev {
			ks.pull, ks.pullFrom = nil, nil
		}
		return false
	}
	return true
}

// gcMoved drops every key this node no longer replicates after a finalized
// transition. Deleting through the store also unpublishes the key's bypass
// directory slot, closing the one-sided-READ staleness window. The replica
// check goes through replicaSet, so if a newer transition is already in
// flight the union keeps anything still owed.
func (r *Replicator) gcMoved(p *sim.Proc) {
	if r.isDown() {
		return
	}
	keys := make([]string, 0, len(r.keys))
	for key := range r.keys {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ks := r.keys[key]
		if ks == nil || containsID(r.replicaSet(key), r.cfg.ID) {
			continue
		}
		delete(r.keys, key)
		if !ks.del {
			r.st.Delete(p, key)
		}
		r.Counters.Add("migrate-gc-keys", 1)
	}
}

// sortedConfirmedKeys lists confirmed (non-suspect, epoch > 0) keys in
// sorted order for deterministic manifest emission.
func (r *Replicator) sortedConfirmedKeys() []string {
	keys := make([]string, 0, len(r.keys))
	for key, ks := range r.keys {
		if ks.suspect || ks.epoch == 0 {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

func sortedIDSet(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func sortedWantKeys(wants map[string]*migWant) []string {
	out := make([]string, 0, len(wants))
	for key := range wants {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}
