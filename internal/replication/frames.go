package replication

import "hybridkv/internal/protocol"

// Frame kinds of the server-to-server replication protocol. Frames travel
// as verbs SENDs over the replicators' dedicated QP mesh, so they pay real
// fabric latency and are subject to fault injection like any other traffic.
type frameKind int

const (
	// frameWrite carries a write: a coordinator forward (acked) or an
	// anti-entropy / read-repair / pull-reply push (Repair, unacked).
	frameWrite frameKind = iota
	// frameAck answers a coordinator forward: applied, or stale-rejected
	// with the replica's newer epoch.
	frameAck
	// framePull asks a peer to push its confirmed copy of a key.
	framePull
	// framePullMiss answers a pull when the peer has no confirmed copy.
	framePullMiss
	// frameProbe is the read-repair rendezvous: "I just served this key at
	// this epoch" — a lagging peer asks for a push, a fresher one pushes.
	frameProbe
	// frameDigest carries a scrubber's bucketed epoch digest.
	frameDigest
	// frameDiff answers a digest with the receiver's entries for every
	// bucket that differed.
	frameDiff
	// frameSegPull asks an old-epoch owner for a manifest of one hash-space
	// segment: every key the sender owns under the new ring that the
	// receiver holds confirmed. Sent (and re-sent) by the migration engine.
	frameSegPull
	// frameSegManifest answers a segment pull with (key, epoch) entries;
	// the requester compares against local state and issues framePulls for
	// whatever it lacks. An empty manifest still counts the source as
	// answered.
	frameSegManifest
)

// KeyEpoch is one digest-diff entry. Sum carries the sender's per-key
// value-content checksum so the receiver can tell same-epoch/different-
// bytes divergence (silent corruption) from convergence.
type KeyEpoch struct {
	Key   string
	Epoch uint64
	Del   bool
	Sum   uint64
}

// frame is the single wire message of the replication protocol; Kind
// selects which fields are meaningful.
type frame struct {
	Kind frameKind
	From int    // sender's server id
	ID   uint64 // forward round id (frameWrite/frameAck)

	Key    string
	Epoch  uint64
	Del    bool
	Repair bool // frameWrite: unacked repair push

	Applied bool // frameAck: false = stale-rejected, Epoch holds the newer one

	Value     any
	ValueSize int
	Flags     uint32
	Expire    uint32
	// Sum is the end-to-end content checksum of Value (frameWrite): the
	// receiver re-derives it and silently rejects a frame whose value was
	// corrupted in flight. Zero means "not stamped" (deletes).
	Sum uint64

	Buckets []uint64   // frameDigest: digest; frameDiff: differing bucket ids
	Entries []KeyEpoch // frameDiff, frameSegManifest

	Seg int // frameSegPull/frameSegManifest: hash-space segment id
}

// CorruptCopy implements simnet.Corruptible: the fault injector's in-flight
// corruption delivers this instead of the original. Only a write's value
// payload garbles — header fields are covered by link-layer CRC in any real
// fabric, so a corrupt header is a dropped frame, already modeled by drop
// injection. The stamped Sum is deliberately left as the sender computed it,
// which is exactly how the receiver detects the mismatch.
func (f *frame) CorruptCopy() any {
	g := *f
	if g.Kind == frameWrite && !g.Del && g.Value != nil {
		g.Value = protocol.Garbled{Inner: g.Value}
	}
	return &g
}

// frameHeaderBytes is the modeled fixed overhead of one replication frame
// (kind, ids, epoch, lengths) — deliberately roomy, like a real RPC header.
const frameHeaderBytes = 64

// wireSize is the modeled fabric size of the frame.
func (f *frame) wireSize() int {
	n := frameHeaderBytes + len(f.Key) + f.ValueSize + 8*len(f.Buckets)
	for _, e := range f.Entries {
		n += len(e.Key) + 17 // key + epoch + del bit + content sum
	}
	return n
}
