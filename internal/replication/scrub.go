package replication

import (
	"sort"

	"hybridkv/internal/sim"
)

// Anti-entropy scrubber: write forwards and read repair fix divergence on
// keys that clients keep touching; the scrubber fixes everything else. Each
// scrub round the lower-id member of every replica pair sends the peer a
// bucketed digest of the epochs it holds for the keys they share; the peer
// answers with its own entries for every bucket that differs, and the
// initiator reconciles — pushing keys it holds fresher, pulling keys the
// peer holds fresher. The digest is Merkle-style in spirit (compare
// summaries, recurse only into differences) flattened to one level: with
// simulation-scale key counts a single layer of buckets is already a
// large traffic reduction over shipping full key lists every round.

// digestEntry folds one key's epoch record — and the content checksum of
// the value applied at that epoch — into a digest bucket. Folding the sum
// is what lets the scrub see *silent corruption*: two replicas at the same
// epoch whose bytes differ produce different digests and reconcile, where
// an epoch-only digest would call them converged forever.
func digestEntry(key string, epoch uint64, del bool, sum uint64) uint64 {
	e := epoch << 1
	if del {
		e |= 1
	}
	return Mix64(HashKey(key) ^ Mix64(e) ^ Mix64(sum*0x9e3779b97f4a7c15+1))
}

// digestEntry2 is the second, independent fold of the same record. An
// XOR-folded bucket has a blind spot: two entries whose digestEntry values
// collide cancel out, masking real divergence (most simply, two different
// records hashing to the same value XOR to zero, indistinguishable from
// holding neither). A second fold built from different primitives — an
// alternate key hash and alternate mixing constants — would only mask the
// same pair if it collided under both, which independent hashes don't do.
// Buckets carry both folds; a mismatch in either flags the bucket.
func digestEntry2(key string, epoch uint64, del bool, sum uint64) uint64 {
	e := epoch << 1
	if del {
		e |= 1
	}
	return mixAlt(hashKeyAlt(key) ^ mixAlt(e) ^ mixAlt(sum*0xff51afd7ed558ccd+1))
}

// hashKeyAlt is the alternate key hash of the second digest fold: FNV-1
// (not 1a: multiply-then-xor, a genuinely different diffusion order)
// finished with the alternate mixer.
func hashKeyAlt(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = h * 1099511628211
		h ^= uint64(s[i])
	}
	return mixAlt(h)
}

// mixAlt is the murmur3 finalizer — same shape as Mix64, independent
// constants, so a collision under one does not survive the other.
func mixAlt(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sharedWith reports whether key is replicated on both this server and pid.
// During a migration the union replica set applies, so digests also cover
// keys mid-handoff between an old and a new owner.
func (r *Replicator) sharedWith(pid int, key string) bool {
	both := 0
	for _, id := range r.replicaSet(key) {
		if id == r.cfg.ID || id == pid {
			both++
		}
	}
	return both == 2
}

// digestFor computes the bucketed epoch+content digest over keys shared
// with pid: bucket b occupies slots [2b] and [2b+1] — the two independent
// folds of its keys. Suspect and epoch-0 keys are excluded: they are
// unconfirmed and must not be claimed. XOR folding makes the digest
// independent of iteration order, preserving determinism over Go's
// randomized map iteration.
func (r *Replicator) digestFor(pid int) []uint64 {
	buckets := make([]uint64, 2*r.cfg.ScrubBuckets)
	for key, ks := range r.keys {
		if ks.suspect || ks.epoch == 0 || !r.sharedWith(pid, key) {
			continue
		}
		b := HashKey(key) % uint64(r.cfg.ScrubBuckets)
		buckets[2*b] ^= digestEntry(key, ks.epoch, ks.del, ks.sum)
		buckets[2*b+1] ^= digestEntry2(key, ks.epoch, ks.del, ks.sum)
	}
	return buckets
}

// scrubber exchanges digests with every peer while armed. It is
// kick-driven: every genuine local epoch advance (a coordinated write, an
// accepted forward, a repair apply, a cold restart) grants a burst of
// scrubBurst rounds at ScrubInterval cadence, after which the scrubber
// parks on an event until the next kick. Receiving a digest or diff does
// NOT re-arm the receiver — only real state changes do — so a converged
// cluster stops exchanging digests, schedules no timers, and the
// simulation drains. Every armed replicator initiates toward all of its
// peers (not just higher ids): a freshly restarted node must be able to
// start reconciliation toward lower-id survivors.
func (r *Replicator) scrubber(p *sim.Proc) {
	if len(r.peerIDs) == 0 || r.cfg.ScrubInterval < 0 {
		return
	}
	for {
		for r.scrubLeft == 0 {
			ev := r.env.NewEvent()
			r.scrubWake = ev
			p.Wait(ev)
			r.scrubWake = nil
		}
		p.Sleep(r.cfg.ScrubInterval)
		r.scrubLeft--
		if r.isDown() {
			continue
		}
		// Background pacing: one token per digest round, deferred while
		// the host serves queued foreground work.
		r.pace(p)
		if r.isDown() {
			continue // crashed while the pacer held the round back
		}
		for _, pid := range r.peerIDs {
			r.Counters.Add("scrub-rounds", 1)
			r.send(p, pid, &frame{Kind: frameDigest, Buckets: r.digestFor(pid)})
		}
		// The scrub pass is also when quarantined SSD media is drained and
		// returned to service: live slots on suspect regions are re-read,
		// re-verified, and either moved to fresh media or retired into a
		// repair-pull (EvacuateQuarantined); the reclaim then releases the
		// fully-dead regions back to the free pool.
		if moved, dropped := r.st.EvacuateQuarantined(p); moved > 0 || dropped > 0 {
			r.Counters.Add("quarantine-evacuated", int64(moved))
			r.Counters.Add("quarantine-evac-drops", int64(dropped))
		}
		if r.isDown() {
			continue // crashed during the evacuation I/O
		}
		if n := r.st.Manager().ReclaimQuarantined(); n > 0 {
			r.Counters.Add("quarantine-reclaims", int64(n))
		}
	}
}

// handleDigest compares a peer's digest with our own view of the shared
// keys and answers with our entries for every differing bucket.
func (r *Replicator) handleDigest(p *sim.Proc, f *frame) {
	mine := r.digestFor(f.From)
	n := len(mine) / 2
	if m := len(f.Buckets) / 2; m < n {
		n = m
	}
	var diff []uint64
	for b := 0; b < n; b++ {
		// Each bucket carries two independent folds; a mismatch in either
		// flags it (the second fold is what defeats colliding-pair masking
		// in the first).
		if mine[2*b] != f.Buckets[2*b] || mine[2*b+1] != f.Buckets[2*b+1] {
			diff = append(diff, uint64(b))
		}
	}
	if len(diff) == 0 {
		return
	}
	resp := &frame{Kind: frameDiff, Buckets: diff}
	for _, key := range r.sortedSharedKeys(f.From) {
		ks := r.keys[key]
		b := HashKey(key) % uint64(r.cfg.ScrubBuckets)
		for _, db := range diff {
			if b == db {
				resp.Entries = append(resp.Entries, KeyEpoch{Key: key, Epoch: ks.epoch, Del: ks.del, Sum: ks.sum})
				break
			}
		}
	}
	r.send(p, f.From, resp)
}

// sortedSharedKeys lists confirmed keys shared with pid in sorted order
// (map iteration order is random per run; reconciliation emission order
// must be deterministic).
func (r *Replicator) sortedSharedKeys(pid int) []string {
	keys := make([]string, 0, len(r.keys))
	for key, ks := range r.keys {
		if ks.suspect || ks.epoch == 0 || !r.sharedWith(pid, key) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// handleDiff reconciles against the peer's entries for the differing
// buckets: push what we hold fresher, pull what the peer holds fresher,
// push what the peer does not hold at all.
func (r *Replicator) handleDiff(p *sim.Proc, f *frame) {
	theirs := make(map[string]KeyEpoch, len(f.Entries))
	for _, e := range f.Entries {
		theirs[e.Key] = e
	}
	inDiff := make(map[uint64]bool, len(f.Buckets))
	for _, b := range f.Buckets {
		inDiff[b] = true
	}
	// Peer-listed keys: compare epochs, then content at equal epochs.
	for _, e := range f.Entries {
		ks := r.keys[e.Key]
		var epoch uint64
		if ks != nil && !ks.suspect {
			epoch = ks.epoch
		}
		switch {
		case epoch < e.Epoch:
			r.Counters.Add("repair-pulls", 1)
			r.send(p, f.From, &frame{Kind: framePull, Key: e.Key})
		case epoch > e.Epoch:
			r.pushKey(p, f.From, e.Key, ks)
		case epoch != 0 && !ks.del && !e.Del && ks.sum != e.Sum:
			// Same epoch, different bytes: silent corruption on one side.
			// The epoch's coordinator keeps its copy; the loser takes the
			// winner's. Either push our copy (we win — the peer's
			// handleWrite applies it under the same rule) or pull the
			// peer's (it wins).
			r.Counters.Add("scrub-corruptions-found", 1)
			if winsSameEpoch(r.cfg.ID, f.From, epoch) {
				r.pushKey(p, f.From, e.Key, ks)
			} else {
				r.Counters.Add("repair-pulls", 1)
				r.send(p, f.From, &frame{Kind: framePull, Key: e.Key})
			}
		}
	}
	// Keys we hold in a differing bucket that the peer did not list at all.
	for _, key := range r.sortedSharedKeys(f.From) {
		if _, listed := theirs[key]; listed {
			continue
		}
		if !inDiff[HashKey(key)%uint64(r.cfg.ScrubBuckets)] {
			continue
		}
		r.pushKey(p, f.From, key, r.keys[key])
	}
}
