package replication

import (
	"sort"

	"hybridkv/internal/sim"
)

// Anti-entropy scrubber: write forwards and read repair fix divergence on
// keys that clients keep touching; the scrubber fixes everything else. Each
// scrub round the lower-id member of every replica pair sends the peer a
// bucketed digest of the epochs it holds for the keys they share; the peer
// answers with its own entries for every bucket that differs, and the
// initiator reconciles — pushing keys it holds fresher, pulling keys the
// peer holds fresher. The digest is Merkle-style in spirit (compare
// summaries, recurse only into differences) flattened to one level: with
// simulation-scale key counts a single layer of buckets is already a
// large traffic reduction over shipping full key lists every round.

// digestEntry folds one key's epoch record into a digest bucket.
func digestEntry(key string, epoch uint64, del bool) uint64 {
	e := epoch << 1
	if del {
		e |= 1
	}
	return Mix64(HashKey(key) ^ Mix64(e))
}

// sharedWith reports whether key is replicated on both this server and pid.
// During a migration the union replica set applies, so digests also cover
// keys mid-handoff between an old and a new owner.
func (r *Replicator) sharedWith(pid int, key string) bool {
	both := 0
	for _, id := range r.replicaSet(key) {
		if id == r.cfg.ID || id == pid {
			both++
		}
	}
	return both == 2
}

// digestFor computes the bucketed epoch digest over keys shared with pid.
// Suspect and epoch-0 keys are excluded: they are unconfirmed and must not
// be claimed. XOR folding makes the digest independent of iteration order,
// preserving determinism over Go's randomized map iteration.
func (r *Replicator) digestFor(pid int) []uint64 {
	buckets := make([]uint64, r.cfg.ScrubBuckets)
	for key, ks := range r.keys {
		if ks.suspect || ks.epoch == 0 || !r.sharedWith(pid, key) {
			continue
		}
		b := HashKey(key) % uint64(len(buckets))
		buckets[b] ^= digestEntry(key, ks.epoch, ks.del)
	}
	return buckets
}

// scrubber exchanges digests with every peer while armed. It is
// kick-driven: every genuine local epoch advance (a coordinated write, an
// accepted forward, a repair apply, a cold restart) grants a burst of
// scrubBurst rounds at ScrubInterval cadence, after which the scrubber
// parks on an event until the next kick. Receiving a digest or diff does
// NOT re-arm the receiver — only real state changes do — so a converged
// cluster stops exchanging digests, schedules no timers, and the
// simulation drains. Every armed replicator initiates toward all of its
// peers (not just higher ids): a freshly restarted node must be able to
// start reconciliation toward lower-id survivors.
func (r *Replicator) scrubber(p *sim.Proc) {
	if len(r.peerIDs) == 0 {
		return
	}
	for {
		for r.scrubLeft == 0 {
			ev := r.env.NewEvent()
			r.scrubWake = ev
			p.Wait(ev)
			r.scrubWake = nil
		}
		p.Sleep(r.cfg.ScrubInterval)
		r.scrubLeft--
		if r.isDown() {
			continue
		}
		// Background pacing: one token per digest round, deferred while
		// the host serves queued foreground work.
		r.pace(p)
		if r.isDown() {
			continue // crashed while the pacer held the round back
		}
		for _, pid := range r.peerIDs {
			r.Counters.Add("scrub-rounds", 1)
			r.send(p, pid, &frame{Kind: frameDigest, Buckets: r.digestFor(pid)})
		}
	}
}

// handleDigest compares a peer's digest with our own view of the shared
// keys and answers with our entries for every differing bucket.
func (r *Replicator) handleDigest(p *sim.Proc, f *frame) {
	mine := r.digestFor(f.From)
	n := len(mine)
	if len(f.Buckets) < n {
		n = len(f.Buckets)
	}
	var diff []uint64
	for b := 0; b < n; b++ {
		if mine[b] != f.Buckets[b] {
			diff = append(diff, uint64(b))
		}
	}
	if len(diff) == 0 {
		return
	}
	resp := &frame{Kind: frameDiff, Buckets: diff}
	for _, key := range r.sortedSharedKeys(f.From) {
		ks := r.keys[key]
		b := HashKey(key) % uint64(len(mine))
		for _, db := range diff {
			if b == db {
				resp.Entries = append(resp.Entries, KeyEpoch{Key: key, Epoch: ks.epoch, Del: ks.del})
				break
			}
		}
	}
	r.send(p, f.From, resp)
}

// sortedSharedKeys lists confirmed keys shared with pid in sorted order
// (map iteration order is random per run; reconciliation emission order
// must be deterministic).
func (r *Replicator) sortedSharedKeys(pid int) []string {
	keys := make([]string, 0, len(r.keys))
	for key, ks := range r.keys {
		if ks.suspect || ks.epoch == 0 || !r.sharedWith(pid, key) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// handleDiff reconciles against the peer's entries for the differing
// buckets: push what we hold fresher, pull what the peer holds fresher,
// push what the peer does not hold at all.
func (r *Replicator) handleDiff(p *sim.Proc, f *frame) {
	theirs := make(map[string]KeyEpoch, len(f.Entries))
	for _, e := range f.Entries {
		theirs[e.Key] = e
	}
	inDiff := make(map[uint64]bool, len(f.Buckets))
	for _, b := range f.Buckets {
		inDiff[b] = true
	}
	// Peer-listed keys: compare epochs.
	for _, e := range f.Entries {
		ks := r.keys[e.Key]
		var epoch uint64
		if ks != nil && !ks.suspect {
			epoch = ks.epoch
		}
		switch {
		case epoch < e.Epoch:
			r.Counters.Add("repair-pulls", 1)
			r.send(p, f.From, &frame{Kind: framePull, Key: e.Key})
		case epoch > e.Epoch:
			r.pushKey(p, f.From, e.Key, ks)
		}
	}
	// Keys we hold in a differing bucket that the peer did not list at all.
	for _, key := range r.sortedSharedKeys(f.From) {
		if _, listed := theirs[key]; listed {
			continue
		}
		if !inDiff[HashKey(key)%uint64(r.cfg.ScrubBuckets)] {
			continue
		}
		r.pushKey(p, f.From, key, r.keys[key])
	}
}
