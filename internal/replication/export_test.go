package replication

// Test-only hooks for the same-epoch content-divergence repair path. The
// scrub's content fold exists to catch *silent* corruption — an applied
// value whose bytes changed without an epoch advance — which no public
// operation can produce (the write path checksums frames and the store
// path verifies media). Tests reach in here to create exactly that state.

// SilentlyCorruptForTest models silent in-RAM corruption of an applied
// value: the key's recorded content sum is overwritten while its epoch,
// tombstone, and suspect state stand, and the scrubber is kicked as if a
// periodic round were due. Returns false if the key has no confirmed live
// record here (nothing to corrupt).
func (r *Replicator) SilentlyCorruptForTest(key string, sum uint64) bool {
	ks := r.keys[key]
	if ks == nil || ks.epoch == 0 || ks.del || ks.suspect {
		return false
	}
	ks.sum = sum
	r.kick()
	return true
}

// AppliedStateForTest exposes a key's confirmed (epoch, content-sum)
// record for convergence assertions.
func (r *Replicator) AppliedStateForTest(key string) (epoch, sum uint64, ok bool) {
	ks := r.keys[key]
	if ks == nil || ks.epoch == 0 {
		return 0, 0, false
	}
	return ks.epoch, ks.sum, true
}
