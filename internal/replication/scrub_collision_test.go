package replication

import "testing"

// modInverse64 computes the multiplicative inverse of an odd v mod 2^64 by
// Newton iteration (each step doubles the correct low bits).
func modInverse64(v uint64) uint64 {
	inv := v
	for i := 0; i < 6; i++ {
		inv *= 2 - v*inv
	}
	return inv
}

// unshiftRight inverts x ^= x >> s.
func unshiftRight(y uint64, s uint) uint64 {
	x := y
	for i := 0; i < 8; i++ {
		x = y ^ (x >> s)
	}
	return x
}

// mix64Inverse inverts Mix64 step by step — the finalizer is a bijection,
// which is exactly why a single XOR-folded digest is attackable: any target
// fold value can be solved for.
func mix64Inverse(y uint64) uint64 {
	x := unshiftRight(y, 31)
	x *= modInverse64(0x94d049bb133111eb)
	x = unshiftRight(x, 27)
	x *= modInverse64(0xbf58476d1ce4e5b9)
	x = unshiftRight(x, 30)
	return x
}

// Satellite hardening proof: construct two DIFFERENT key/epoch records whose
// digestEntry values are equal — under the original single-fold XOR digest
// they would cancel in a shared bucket, masking real divergence as
// convergence. The second, independently-built fold (digestEntry2) must
// still tell them apart, which is why buckets now carry both.
func TestDigestCollisionPairCaughtBySecondFold(t *testing.T) {
	if Mix64(mix64Inverse(0xdeadbeefcafef00d)) != 0xdeadbeefcafef00d {
		t.Fatal("mix64Inverse is not the inverse of Mix64; the construction below is void")
	}
	const (
		k1, k2 = "k-000017", "k-000042"
		epoch1 = uint64(0x300) | 2 // some coordinator-2 epoch
		sum    = uint64(7)         // same content sum on both records
	)
	// digestEntry = Mix64(HashKey(k) ^ Mix64(e) ^ Mix64(sum·φ+1)) with
	// e = epoch<<1|del. Equal sums cancel; solve for the e2 that makes the
	// Mix64 inputs — hence the outputs — equal:
	//   Mix64(e2) = Mix64(e1) ^ HashKey(k1) ^ HashKey(k2)
	e1 := epoch1 << 1 // del = false
	e2 := mix64Inverse(Mix64(e1) ^ HashKey(k1) ^ HashKey(k2))
	epoch2, del2 := e2>>1, e2&1 == 1

	d1 := digestEntry(k1, epoch1, false, sum)
	d2 := digestEntry(k2, epoch2, del2, sum)
	if d1 != d2 {
		t.Fatalf("constructed pair does not collide under digestEntry: %#x vs %#x", d1, d2)
	}
	if d1^d2 != 0 {
		t.Fatal("colliding pair does not cancel under XOR fold") // by construction
	}
	// The whole point: the alternate fold, built from a different key hash
	// and different mixing constants, refuses to collide on the same pair.
	a1 := digestEntry2(k1, epoch1, false, sum)
	a2 := digestEntry2(k2, epoch2, del2, sum)
	if a1 == a2 {
		t.Fatalf("second fold also collides (%#x): the paired digest adds nothing", a1)
	}
}

// winsSameEpoch is the same-epoch/different-bytes tiebreak: the epoch's
// coordinator (recoverable from the low byte) always keeps its copy, and
// between two non-coordinators the lower id wins — a deterministic total
// order, so two diverged replicas can never both think they win (which
// would oscillate pushes forever).
func TestWinsSameEpochTotalOrder(t *testing.T) {
	epoch := uint64(0x500) | 2 // coordinator id 2
	cases := []struct {
		sender, me int
		want       bool
	}{
		{2, 0, true},  // sender is the coordinator: wins
		{2, 4, true},  //   …regardless of the other id
		{0, 2, false}, // I am the coordinator: sender loses
		{4, 2, false},
		{1, 3, true},  // neither is coordinator: lower id wins
		{3, 1, false},
	}
	for _, tc := range cases {
		if got := winsSameEpoch(tc.sender, tc.me, epoch); got != tc.want {
			t.Errorf("winsSameEpoch(%d, %d, %#x) = %v, want %v", tc.sender, tc.me, epoch, got, tc.want)
		}
	}
	// Antisymmetry over all pairs: exactly one side wins.
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			if winsSameEpoch(a, b, epoch) == winsSameEpoch(b, a, epoch) {
				t.Errorf("ids %d and %d both %v at epoch %#x — divergence would oscillate",
					a, b, winsSameEpoch(a, b, epoch), epoch)
			}
		}
	}
}
