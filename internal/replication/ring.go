// Package replication implements synchronous primary–backup replication
// with anti-entropy repair for the hybrid key-value store: the consistent-
// hash ring maps each key to a primary plus R−1 backups, servers forward
// admitted writes along the chain with per-key version epochs before acking,
// and a background scrubber walks per-server epoch digests to reconcile
// divergence after partitions heal. The package is wired by
// cluster.Config.ReplicationFactor; with R ≤ 1 nothing here is constructed
// and every hot path is byte- and virtual-time-identical to the
// unreplicated system.
package replication

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a ketama-style consistent-hash ring distributing keys across
// server ids: each server contributes vnodesPerServer virtual points; a key
// maps to the first point clockwise from its hash, and its replica set is
// the first N distinct servers clockwise. Consistent hashing keeps most
// keys (and replica sets) in place when the server pool changes, matching
// libmemcached's MEMCACHED_DISTRIBUTION_CONSISTENT_KETAMA. The client
// runtime and every server replicator build their rings with the same Add
// sequence, so all parties agree on each key's replica set.
type Ring struct {
	points []ringPoint
	dirty  bool
}

type ringPoint struct {
	hash     uint64
	serverID int
}

// Real ketama derives 4 ring points from each of 40 MD5 digests per server,
// i.e. 160 points; we take two 64-bit points per digest over 80 digests.
const digestsPerServer = 80

// NewRing returns an empty ring.
func NewRing() *Ring { return &Ring{} }

// HashKey hashes a key onto the ring's 64-bit space.
func HashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return Mix64(h.Sum64())
}

// Mix64 is the splitmix64 finalizer: it decorrelates the structured vnode
// and key strings that make raw FNV cluster on a ring.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a server's virtual nodes.
func (r *Ring) Add(serverID int) {
	for v := 0; v < digestsPerServer; v++ {
		d := md5.Sum([]byte(fmt.Sprintf("server-%d-%d", serverID, v)))
		h1 := binary.LittleEndian.Uint64(d[0:8])
		h2 := binary.LittleEndian.Uint64(d[8:16])
		r.points = append(r.points,
			ringPoint{hash: h1, serverID: serverID},
			ringPoint{hash: h2, serverID: serverID})
	}
	r.dirty = true
}

// Clone returns an independent copy of the ring. Membership transitions
// clone the current ring and Add/Remove on the copy, so the previous
// epoch's ring stays intact for the double-read window.
func (r *Ring) Clone() *Ring {
	return &Ring{points: append([]ringPoint(nil), r.points...), dirty: r.dirty}
}

// Members returns the distinct server ids on the ring, sorted ascending.
func (r *Ring) Members() []int {
	seen := make(map[int]bool)
	var out []int
	for _, pt := range r.points {
		if !seen[pt.serverID] {
			seen[pt.serverID] = true
			out = append(out, pt.serverID)
		}
	}
	sort.Ints(out)
	return out
}

// Remove drops a server's virtual nodes.
func (r *Ring) Remove(serverID int) {
	out := r.points[:0]
	for _, pt := range r.points {
		if pt.serverID != serverID {
			out = append(out, pt)
		}
	}
	r.points = out
	r.dirty = true
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.dirty = false
}

func (r *Ring) search(key string) int {
	if len(r.points) == 0 {
		panic("replication: empty hash ring")
	}
	if r.dirty {
		r.sortPoints()
	}
	h := HashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Pick returns the server id owning key (the key's primary).
func (r *Ring) Pick(key string) int {
	return r.points[r.search(key)].serverID
}

// Replicas returns the key's replica set: the first n distinct server ids
// clockwise from the key's hash, primary first. Fewer than n distinct
// servers on the ring shortens the set.
func (r *Ring) Replicas(key string, n int) []int {
	start := r.search(key)
	set := make([]int, 0, n)
	for i := 0; i < len(r.points) && len(set) < n; i++ {
		id := r.points[(start+i)%len(r.points)].serverID
		dup := false
		for _, have := range set {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, id)
		}
	}
	return set
}
