package replication

import (
	"sort"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/store"
	"hybridkv/internal/verbs"
)

// Replication protocol overview
//
// Every server hosts a Replicator sharing the server's verbs Device, so
// replication frames traverse the same simulated fabric as client traffic
// and are subject to the same fault injection (drops, duplicates, delay
// spikes, link-down windows, asymmetric partitions).
//
// Writes: the coordinator (whichever server admitted the request — the
// primary in the common case, a backup or even a non-replica after client
// failover) assigns the key a fresh version epoch and forwards the
// post-image to every other replica BEFORE the acknowledgement, overlapping
// the peers' applies with its own slab phase. The response (and the
// buffered early-ack, when requested) is withheld until every replica
// acknowledged, so a completed write is durable on R nodes: that is the
// invariant that lets the history checker demand "no acked write lost"
// across whole-node kills.
//
// Epochs are per-key and totally ordered across coordinators: the high 56
// bits count coordination rounds, the low byte is the coordinator's server
// id, so two concurrent coordinators can never mint the same epoch and
// last-write-wins resolution is deterministic. A replica holding a newer
// epoch rejects the apply and returns its epoch in the ack; the coordinator
// re-coordinates above it (counted as an epoch-conflict) unless its own
// store has already been superseded by the newer write, in which case the
// older write completes as overwritten.
//
// Reads: any replica may serve a GET. Completed writes are on all replicas,
// so replica reads never serve stale data while nodes are merely slow or
// partitioned. The dangerous window is a cold restart after a whole-node
// kill: the SSD resurrects old values whose RAM epoch table died with the
// node. All recovered keys are therefore marked *suspect*; a suspect key
// must be confirmed against its peer replicas (a synchronous pull) before
// it is served. If no peer can confirm within the pull timeout the server
// answers a miss rather than risk resurrecting a superseded value — the
// stale-reads-prevented counter tracks exactly those refusals.
//
// Anti-entropy: a background scrubber periodically exchanges bucketed
// epoch digests with each peer and pushes/pulls whatever diverged, so
// replicas reconverge after partitions heal even for keys no client
// touches again (repair-pushes counts the repair traffic, shared with the
// read-repair probes piggybacked on served GETs).

// Config parameterizes one server's replicator.
type Config struct {
	// ID is the server id (the client ring's connection index).
	ID int
	// Factor is the replication factor R: each key lives on its primary
	// plus R−1 backups.
	Factor int
	// ReadRepairEvery probes the peer replicas for epoch divergence on
	// every Nth served GET hit. Zero selects the default (8); a negative
	// value disables read repair.
	ReadRepairEvery int
	// ScrubInterval is the anti-entropy digest exchange period. Zero
	// selects the default (2 ms); a negative value disables the scrubber
	// entirely (the bitrot experiment's verify-without-scrub cells).
	ScrubInterval sim.Time
	// ScrubBuckets is the digest width: keys fold into this many buckets.
	ScrubBuckets int
	// AckTimeout bounds one wait-for-acks round of a write forward; unacked
	// peers are re-sent the frame after each round.
	AckTimeout sim.Time
	// AckRetries is the number of resend rounds before the coordinator
	// gives up and fails the write with StatusNoReplica.
	AckRetries int
	// PullTimeout bounds a synchronous suspect-confirmation pull.
	PullTimeout sim.Time
	// Pacer throttles background traffic (scrub digest rounds and
	// migration pull rounds) behind a token bucket that yields to the host
	// server's foreground load. The zero value disables pacing: background
	// rounds run exactly as before.
	Pacer PacerConfig
}

// PacerConfig is the background-traffic token bucket. When Enabled, every
// anti-entropy digest round and every migration pull round first takes a
// token; tokens refill one per RefillEvery up to Burst. A round that finds
// the bucket empty — or the host server's foreground-busy probe (SetBusy)
// asserted — is deferred, never dropped: it sleeps a refill interval and
// retries, so convergence and rebalance finalization are delayed but never
// lost. MaxDefer bounds how long the busy probe alone can hold a round
// back, so a permanently-loaded server still scrubs and migrates.
type PacerConfig struct {
	Enabled bool
	// Burst is the bucket capacity (default 4 rounds).
	Burst int
	// RefillEvery is the per-token refill interval (default 200 µs).
	RefillEvery sim.Time
	// MaxDefer caps busy-probe deferral of a single round (default 5 ms).
	MaxDefer sim.Time
}

func (pc *PacerConfig) fill() {
	if pc.Burst <= 0 {
		pc.Burst = 4
	}
	if pc.RefillEvery <= 0 {
		pc.RefillEvery = 200 * sim.Microsecond
	}
	if pc.MaxDefer <= 0 {
		pc.MaxDefer = 5 * sim.Millisecond
	}
}

func (c *Config) fill() {
	if c.ReadRepairEvery == 0 {
		c.ReadRepairEvery = 8
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = 2 * sim.Millisecond
	}
	if c.ScrubBuckets == 0 {
		c.ScrubBuckets = 32
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 300 * sim.Microsecond
	}
	if c.AckRetries == 0 {
		c.AckRetries = 3
	}
	if c.PullTimeout == 0 {
		c.PullTimeout = 300 * sim.Microsecond
	}
	if c.Pacer.Enabled {
		c.Pacer.fill()
	}
}

// recvDepth is the receive-WR pool pre-posted per peer QP. The engine
// re-posts after every completion; the pool only bounds frames in flight
// while the engine is busy applying.
const recvDepth = 4096

// maxCoordRounds bounds epoch-conflict re-coordination attempts per write.
const maxCoordRounds = 3

// keyState is the RAM-resident epoch record for one key. It dies with the
// node on a whole-node kill — which is exactly why cold-recovered keys come
// back suspect.
type keyState struct {
	epoch   uint64
	del     bool // tombstone: the latest epoch deleted the key
	suspect bool // cold-recovered or corrupt-read, unconfirmed by any peer
	// sum is the content checksum of the value applied at epoch, folded
	// into the scrub digest so two replicas at the same epoch holding
	// different bytes (silent corruption) still diverge and get repaired.
	sum uint64

	// Open synchronous pull, shared by concurrent readers of the key.
	pull     *sim.Event
	pullFrom map[int]bool // peers yet to answer; data or all-miss fires the event
}

// Forward is one write's replication round, opened at admission time so the
// peer forwards overlap the coordinator's local storage phase.
type Forward struct {
	id    uint64
	key   string
	epoch uint64
	del   bool
	proxy bool // coordinator is not in the replica set: no local apply

	value     any
	valueSize int
	flags     uint32
	expire    uint32

	waiting  map[int]bool // peer ids still owing an ack
	conflict uint64       // highest epoch seen in stale-reject acks
	done     *sim.Event   // fired when waiting drains
}

type peerLink struct {
	id int
	qp *verbs.QP
}

// Replicator is one server's replication engine.
type Replicator struct {
	env  *sim.Env
	cfg  Config
	ring *Ring
	st   *store.Store
	dev  *verbs.Device
	down func() bool // host server crashed or recovering: drop frames
	busy func() bool // host server has queued foreground work: pacer yields

	// Token-bucket state for the background-traffic pacer (Config.Pacer).
	paceInit   bool
	paceTokens int
	paceLast   sim.Time

	sendCQ  *verbs.CQ
	recvCQ  *verbs.CQ
	peers   map[int]*peerLink
	peerIDs []int // sorted; all sends iterate this for determinism
	qpByQPN map[int]*verbs.QP

	keys   map[string]*keyState
	fwds   map[uint64]*Forward
	nextID uint64
	gets   uint64 // served GET hits, drives the read-repair cadence

	// Scrubber arming: every local epoch advance grants the scrubber a
	// fresh burst of digest rounds, after which it blocks until the next
	// kick. A quiescent cluster therefore schedules no timers and the
	// simulation can drain (Env.Run terminates).
	scrubWake *sim.Event
	scrubLeft int

	// Dynamic membership (nil for static fleets): the shared epoch state
	// machine, the migrator's park event, and the per-segment pull state of
	// the in-flight transition (see migrate.go).
	mem      *Membership
	memWake  *sim.Event
	migPulls map[int]*segPull

	// Counters: forwards, forward-resends, epoch-conflicts, repair-pushes,
	// repair-pulls, stale-reads-prevented, suspect-drops, pull-confirms.
	Counters *metrics.Counters
}

// New creates a replicator for server cfg.ID over its store and device.
// Interconnect must be called on the full set before the simulation runs.
func New(env *sim.Env, cfg Config, ring *Ring, st *store.Store, dev *verbs.Device) *Replicator {
	cfg.fill()
	return &Replicator{
		env: env, cfg: cfg, ring: ring, st: st, dev: dev,
		peers:    make(map[int]*peerLink),
		qpByQPN:  make(map[int]*verbs.QP),
		keys:     make(map[string]*keyState),
		fwds:     make(map[uint64]*Forward),
		migPulls: make(map[int]*segPull),
		Counters: metrics.NewCounters(),
	}
}

// ID returns the replicator's server id.
func (r *Replicator) ID() int { return r.cfg.ID }

// SetDown installs the host server's liveness probe: while it reports true
// the engine discards incoming frames (a crashed node neither applies nor
// acks).
func (r *Replicator) SetDown(fn func() bool) { r.down = fn }

// isDown reports whether the host server is crashed.
func (r *Replicator) isDown() bool { return r.down != nil && r.down() }

// SetBusy installs the host server's foreground-load probe. Only consulted
// while the pacer is enabled; attaching it is otherwise free.
func (r *Replicator) SetBusy(fn func() bool) { r.busy = fn }

// pace takes one background-round token, blocking the calling proc while
// the bucket is empty or the host server reports foreground load. Rounds
// are deferred, never dropped: when pacing is disabled this returns
// immediately, and under pacing the caller always proceeds eventually —
// the busy probe can hold a round back at most MaxDefer, and the bucket
// refills on a fixed schedule.
func (r *Replicator) pace(p *sim.Proc) {
	pc := &r.cfg.Pacer
	if !pc.Enabled {
		return
	}
	if !r.paceInit {
		// First use: start with a full bucket so pacing never delays the
		// initial convergence burst of a fresh cluster.
		r.paceInit = true
		r.paceTokens = pc.Burst
		r.paceLast = p.Now()
	}
	deadline := p.Now() + pc.MaxDefer
	for {
		now := p.Now()
		if refill := int((now - r.paceLast) / pc.RefillEvery); refill > 0 {
			r.paceTokens += refill
			if r.paceTokens > pc.Burst {
				r.paceTokens = pc.Burst
			}
			r.paceLast += sim.Time(refill) * pc.RefillEvery
		}
		if r.paceTokens > 0 {
			isBusy := r.busy != nil && r.busy()
			if !isBusy || now >= deadline {
				r.paceTokens--
				return
			}
		}
		r.Counters.Add(string(metrics.CPacerDeferrals), 1)
		p.Sleep(pc.RefillEvery)
	}
}

// Interconnect creates the pairwise QPs between every replicator over their
// servers' devices, pre-posts receive pools, and starts each engine and
// scrubber. Call once after all replicators are constructed, before the
// simulation runs. Servers added later join the running mesh via Join.
func Interconnect(repls []*Replicator) {
	for _, r := range repls {
		r.initCQs()
	}
	for i := 0; i < len(repls); i++ {
		for j := i + 1; j < len(repls); j++ {
			link(repls[i], repls[j])
		}
	}
	for _, r := range repls {
		r.start()
	}
}

// Join wires a freshly constructed replicator into a running mesh: pairwise
// QPs to every existing replicator, then engine start for the newcomer.
// The existing engines pick the new peer up on their next send — peer maps
// are re-read on every round, never snapshotted.
func Join(existing []*Replicator, nr *Replicator) {
	nr.initCQs()
	for _, r := range existing {
		link(r, nr)
	}
	nr.start()
}

func (r *Replicator) initCQs() {
	r.sendCQ = r.dev.CreateCQ(0)
	r.recvCQ = r.dev.CreateCQ(0)
}

// link connects one replicator pair: a QP on each side, pre-posted receive
// pools, and refreshed peer id lists.
func link(a, b *Replicator) {
	qa := a.dev.CreateQP(a.sendCQ, a.recvCQ)
	qb := b.dev.CreateQP(b.sendCQ, b.recvCQ)
	verbs.Connect(qa, qb)
	for n := 0; n < recvDepth; n++ {
		qa.PostRecv(verbs.RecvWR{})
		qb.PostRecv(verbs.RecvWR{})
	}
	a.peers[b.cfg.ID] = &peerLink{id: b.cfg.ID, qp: qa}
	b.peers[a.cfg.ID] = &peerLink{id: a.cfg.ID, qp: qb}
	a.qpByQPN[qa.QPN()] = qa
	b.qpByQPN[qb.QPN()] = qb
	a.refreshPeerIDs()
	b.refreshPeerIDs()
}

func (r *Replicator) refreshPeerIDs() {
	ids := make([]int, 0, len(r.peers))
	for id := range r.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r.peerIDs = ids
}

func (r *Replicator) start() {
	rr := r
	r.env.Spawn("repl-engine", func(p *sim.Proc) { rr.engine(p) })
	r.env.Spawn("repl-scrub", func(p *sim.Proc) { rr.scrubber(p) })
	r.env.Spawn("repl-migrate", func(p *sim.Proc) { rr.migrator(p) })
}

// scrubBurst is how many digest rounds one kick arms. Repair writes that
// genuinely apply re-kick the receiving node, so convergence propagates
// transitively; exchanges that find nothing to fix do not, so a converged
// cluster goes quiet within one burst.
const scrubBurst = 8

// kick arms the anti-entropy scrubber: local replicated state changed, so
// it owes the peers a burst of digest exchanges.
func (r *Replicator) kick() {
	r.scrubLeft = scrubBurst
	if r.scrubWake != nil && !r.scrubWake.Fired() {
		r.scrubWake.Fire()
	}
}

// nextEpoch mints an epoch above cur: round counter in the high bits, the
// coordinator id in the low byte so concurrent coordinators never collide
// and comparison breaks ties deterministically.
func (r *Replicator) nextEpoch(cur uint64) uint64 {
	return ((cur>>8)+1)<<8 | uint64(r.cfg.ID&0xff)
}

func (r *Replicator) state(key string) *keyState {
	ks := r.keys[key]
	if ks == nil {
		ks = &keyState{}
		r.keys[key] = ks
	}
	return ks
}

// replicaPeers returns the key's replica set minus self (sorted ascending,
// which Replicas already guarantees per-position; we re-sort for send
// determinism) and whether self is a member. With a membership attached
// the set is the union of the old and new rings while a migration is in
// flight, so forwards dual-apply and no interleaving with sealing can
// lose an acked write.
func (r *Replicator) replicaPeers(key string) (peers []int, member bool) {
	set := r.replicaSet(key)
	for _, id := range set {
		if id == r.cfg.ID {
			member = true
		} else {
			peers = append(peers, id)
		}
	}
	sort.Ints(peers)
	return peers, member
}

// send posts one frame to a peer replicator over the verbs fabric.
func (r *Replicator) send(p *sim.Proc, pid int, f *frame) {
	pl := r.peers[pid]
	if pl == nil {
		return
	}
	f.From = r.cfg.ID
	pl.qp.PostSend(p, verbs.SendWR{Op: verbs.OpSend, Size: f.wireSize(), Payload: f})
}

// Begin opens a replication round for an admitted SET or DELETE and posts
// the forward frames, so the peer applies overlap the local storage phase.
// Returns nil for any other opcode (RMW post-images replicate inside
// Execute, after the local apply decides the outcome).
func (r *Replicator) Begin(p *sim.Proc, req *protocol.Request) *Forward {
	switch req.Op {
	case protocol.OpSet:
		return r.begin(p, req.Key, false, req.Value, req.ValueSize, req.Flags, req.Expire)
	case protocol.OpDelete:
		return r.begin(p, req.Key, true, nil, 0, 0, 0)
	}
	return nil
}

func (r *Replicator) begin(p *sim.Proc, key string, del bool, value any, valueSize int, flags, expire uint32) *Forward {
	peers, member := r.replicaPeers(key)
	ks := r.state(key)
	r.nextID++
	fwd := &Forward{
		id: r.nextID, key: key, del: del, proxy: !member,
		epoch: r.nextEpoch(ks.epoch),
		value: value, valueSize: valueSize, flags: flags, expire: expire,
		waiting: make(map[int]bool, len(peers)),
		done:    r.env.NewEvent(),
	}
	for _, pid := range peers {
		fwd.waiting[pid] = true
	}
	r.fwds[fwd.id] = fwd
	if len(fwd.waiting) == 0 {
		fwd.done.Fire()
	}
	r.Counters.Add("forwards", 1)
	r.sendWrite(p, fwd)
	return fwd
}

func (r *Replicator) sendWrite(p *sim.Proc, fwd *Forward) {
	pids := make([]int, 0, len(fwd.waiting))
	for pid := range fwd.waiting {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var sum uint64
	if !fwd.del {
		// End-to-end content checksum: the receiver re-derives it and
		// rejects the frame if the value was corrupted in flight.
		sum = protocol.ValueSum(fwd.value)
	}
	for _, pid := range pids {
		r.send(p, pid, &frame{
			Kind: frameWrite, ID: fwd.id, Key: fwd.key, Epoch: fwd.epoch,
			Del: fwd.del, Value: fwd.value, ValueSize: fwd.valueSize,
			Flags: fwd.flags, Expire: fwd.expire, Sum: sum,
		})
	}
}

// Execute runs one request through the replicated storage phase: it is the
// drop-in replacement for store.Handle on servers with a replicator
// attached. fwd is the round opened by Begin at admission time (nil for
// reads, RMW ops, and unreplicated opcodes).
func (r *Replicator) Execute(p *sim.Proc, req *protocol.Request, fwd *Forward) *protocol.Response {
	resp := r.applyPhase(p, req, fwd)
	return r.finishPhase(p, req, resp, fwd)
}

// ExecuteBatch is the replicated HandleBatch: the whole batch's applies run
// inside one eviction-coalescing window (forwards for the batch were opened
// back-to-back at admission), then the coordinator waits for every member's
// replication round.
func (r *Replicator) ExecuteBatch(p *sim.Proc, reqs []*protocol.Request, fwds []*Forward) []*protocol.Response {
	mgr := r.st.Manager()
	mgr.BeginEvictionBatch(p)
	resps := make([]*protocol.Response, len(reqs))
	for i, req := range reqs {
		resps[i] = r.applyPhase(p, req, fwds[i])
	}
	mgr.EndEvictionBatch(p)
	for i, req := range reqs {
		resps[i] = r.finishPhase(p, req, resps[i], fwds[i])
	}
	return resps
}

// applyPhase performs the local storage work for one request. For SET and
// DELETE the ack wait is deferred to finishPhase so batch members overlap;
// GETs and RMW opcodes complete entirely here.
func (r *Replicator) applyPhase(p *sim.Proc, req *protocol.Request, fwd *Forward) *protocol.Response {
	switch req.Op {
	case protocol.OpSet, protocol.OpDelete:
		return r.applyLocalWrite(p, req, fwd)
	case protocol.OpGet:
		return r.executeGet(p, req)
	case protocol.OpFlushAll:
		// flush_all is a cache-wide administrative wipe, not a keyed write;
		// it is deliberately not replicated (each server is flushed by the
		// operator individually, as with real memcached pools).
		return r.st.Handle(p, req)
	default:
		return r.executeRMW(p, req)
	}
}

// finishPhase completes a SET/DELETE round: wait for every replica ack and
// fail the write with StatusNoReplica if the chain cannot be completed.
func (r *Replicator) finishPhase(p *sim.Proc, req *protocol.Request, resp *protocol.Response, fwd *Forward) *protocol.Response {
	if fwd == nil || resp == nil {
		return resp
	}
	if resp.Status != protocol.StatusStored && resp.Status != protocol.StatusDeleted &&
		resp.Status != protocol.StatusNotFound {
		// Local apply failed outright (recovering, too large): the client
		// sees that failure; peers that applied anyway reconverge via
		// anti-entropy.
		delete(r.fwds, fwd.id)
		return resp
	}
	if !r.await(p, fwd) {
		resp.Status = protocol.StatusNoReplica
		resp.Value, resp.ValueSize = nil, 0
	}
	return resp
}

// applyLocalWrite applies a SET/DELETE on the coordinator under the epoch
// guard and updates the key's epoch record.
func (r *Replicator) applyLocalWrite(p *sim.Proc, req *protocol.Request, fwd *Forward) *protocol.Response {
	resp := &protocol.Response{Op: protocol.OpResponse, ReqID: req.ReqID}
	if fwd == nil {
		return r.st.Handle(p, req)
	}
	if fwd.proxy {
		// Pure coordinator: this server is not in the key's replica set
		// (the client failed over here). It forwards but must not keep a
		// local copy that nothing would ever repair.
		if fwd.del {
			resp.Status = protocol.StatusDeleted
		} else {
			resp.Status = protocol.StatusStored
		}
		return resp
	}
	ks := r.state(fwd.key)
	if fwd.epoch <= ks.epoch {
		// A concurrent coordinator already applied a newer epoch locally:
		// last-write-wins, this write completes as overwritten.
		if fwd.del {
			resp.Status = protocol.StatusDeleted
		} else {
			resp.Status = protocol.StatusStored
		}
		return resp
	}
	if fwd.del {
		resp.Status = r.st.Delete(p, req.Key)
		if resp.Status == protocol.StatusDeleted || resp.Status == protocol.StatusNotFound {
			ks.epoch, ks.del, ks.suspect, ks.sum = fwd.epoch, true, false, 0
			r.kick()
			r.migSatisfy(req.Key, ks.epoch)
		}
		return resp
	}
	resp.Status = r.st.Set(p, req.Key, req.ValueSize, req.Value, req.Flags, req.Expire)
	if resp.Status == protocol.StatusStored {
		ks.epoch, ks.del, ks.suspect = fwd.epoch, false, false
		ks.sum = protocol.ValueSum(req.Value)
		r.kick()
		r.migSatisfy(req.Key, ks.epoch)
	}
	return resp
}

// await blocks until every replica acked the forward, re-sending to
// laggards and re-coordinating above conflicting epochs. Returns false when
// the chain cannot be completed within the retry budget.
func (r *Replicator) await(p *sim.Proc, fwd *Forward) bool {
	defer delete(r.fwds, fwd.id)
	coordRounds := 0
	for round := 0; ; round++ {
		if len(fwd.waiting) > 0 {
			p.WaitTimeout(fwd.done, r.cfg.AckTimeout)
		}
		if len(fwd.waiting) == 0 {
			if fwd.conflict <= fwd.epoch {
				return true
			}
			// A replica rejected the apply holding a newer epoch.
			if ks := r.keys[fwd.key]; ks != nil && ks.epoch >= fwd.conflict {
				// The newer write is already applied locally too: this
				// write completed and was overwritten, which is fine.
				return true
			}
			r.Counters.Add("epoch-conflicts", 1)
			coordRounds++
			if coordRounds > maxCoordRounds {
				return false
			}
			// Re-assert this write above the conflicting epoch so every
			// replica converges on it (deterministic last-write-wins).
			r.recoordinate(p, fwd)
			round = -1 // fresh resend budget for the new epoch
			continue
		}
		if round >= r.cfg.AckRetries {
			return false
		}
		r.Counters.Add("forward-resends", 1)
		r.sendWrite(p, fwd)
	}
}

// recoordinate re-opens the round under a fresh epoch above the highest
// conflict seen, re-applies locally, and re-sends to every peer.
func (r *Replicator) recoordinate(p *sim.Proc, fwd *Forward) {
	delete(r.fwds, fwd.id)
	base := fwd.conflict
	if ks := r.keys[fwd.key]; ks != nil && ks.epoch > base {
		base = ks.epoch
	}
	fwd.epoch = r.nextEpoch(base)
	fwd.conflict = 0
	r.nextID++
	fwd.id = r.nextID
	fwd.done = r.env.NewEvent()
	peers, member := r.replicaPeers(fwd.key)
	fwd.waiting = make(map[int]bool, len(peers))
	for _, pid := range peers {
		fwd.waiting[pid] = true
	}
	r.fwds[fwd.id] = fwd
	if !fwd.proxy && member {
		ks := r.state(fwd.key)
		if fwd.del {
			r.st.Delete(p, fwd.key)
			ks.epoch, ks.del, ks.suspect, ks.sum = fwd.epoch, true, false, 0
		} else if r.st.Set(p, fwd.key, fwd.valueSize, fwd.value, fwd.flags, fwd.expire) == protocol.StatusStored {
			ks.epoch, ks.del, ks.suspect = fwd.epoch, false, false
			ks.sum = protocol.ValueSum(fwd.value)
		}
		r.kick()
		r.migSatisfy(fwd.key, ks.epoch)
	}
	if len(fwd.waiting) == 0 {
		fwd.done.Fire()
	}
	r.sendWrite(p, fwd)
}

// executeGet serves a replicated GET: suspect keys are confirmed against
// peer replicas first, and served hits periodically probe the peers for
// epoch divergence (read repair).
func (r *Replicator) executeGet(p *sim.Proc, req *protocol.Request) *protocol.Response {
	resp := &protocol.Response{Op: protocol.OpResponse, ReqID: req.ReqID}
	peers, member := r.replicaPeers(req.Key)
	if !member {
		// Not a replica for this key: this server holds nothing
		// authoritative, so the only honest answer is a miss.
		resp.Status = protocol.StatusNotFound
		return resp
	}
	if r.mem != nil && r.mem.NeedsDoubleRead(r.cfg.ID, req.Key) {
		// Double-read window: this server is gaining the key and has not
		// sealed its segment, so a local miss proves nothing. Consult the
		// old owners; if none answers in time, fail retryable — the client
		// fails over to an old owner rather than eat a fabricated miss.
		if !r.doubleRead(p, req.Key) {
			r.Counters.Add("migrate-read-redirects", 1)
			resp.Status = protocol.StatusRecovering
			return resp
		}
	}
	ks := r.keys[req.Key]
	if ks != nil && ks.suspect {
		if !r.syncPull(p, req.Key, ks, peers) {
			// Unconfirmed cold-recovered value and no peer reachable:
			// refuse to serve it rather than resurrect a superseded epoch.
			r.Counters.Add("stale-reads-prevented", 1)
			resp.Status = protocol.StatusNotFound
			return resp
		}
	}
	resp = r.st.Handle(p, req)
	if resp.Status == protocol.StatusCorrupt {
		// The local copy failed integrity verification mid-read (the store
		// already quarantined it and marked us suspect via OnCorrupt).
		// Treat it exactly like a suspect miss: confirm against the peer
		// replicas, and serve the repaired copy instead of garbage. Only
		// when no peer can help does this degrade to an honest miss.
		ks := r.state(req.Key)
		if r.syncPull(p, req.Key, ks, peers) {
			resp = r.st.Handle(p, req)
			if resp.Status == protocol.StatusOK {
				r.Counters.Add("corrupt-read-repairs", 1)
			}
		}
		if resp.Status == protocol.StatusCorrupt {
			resp.Status = protocol.StatusNotFound
			resp.Value, resp.ValueSize = nil, 0
		}
	}
	if resp.Status == protocol.StatusOK && r.cfg.ReadRepairEvery > 0 {
		r.gets++
		if r.gets%uint64(r.cfg.ReadRepairEvery) == 0 {
			var epoch uint64
			if ks := r.keys[req.Key]; ks != nil {
				epoch = ks.epoch
			}
			for _, pid := range peers {
				r.send(p, pid, &frame{Kind: frameProbe, Key: req.Key, Epoch: epoch})
			}
		}
	}
	return resp
}

// executeRMW handles the conditional/mutating command set (add, replace,
// cas, append, prepend, incr, decr, touch): the local store decides the
// outcome, then the post-image is replicated like a SET.
func (r *Replicator) executeRMW(p *sim.Proc, req *protocol.Request) *protocol.Response {
	peers, member := r.replicaPeers(req.Key)
	resp := &protocol.Response{Op: protocol.OpResponse, ReqID: req.ReqID}
	if !member {
		// Read-modify-write needs the authoritative copy; a non-replica
		// coordinator cannot decide it. Answer retryable so the client
		// fails over to a real replica.
		resp.Status = protocol.StatusRecovering
		return resp
	}
	if r.mem != nil && r.mem.NeedsDoubleRead(r.cfg.ID, req.Key) {
		// Deciding an RMW before the old owners were consulted could decide
		// against a phantom miss; confirm first, else fail retryable.
		if !r.doubleRead(p, req.Key) {
			r.Counters.Add("migrate-read-redirects", 1)
			resp.Status = protocol.StatusRecovering
			return resp
		}
	}
	ks := r.keys[req.Key]
	if ks != nil && ks.suspect {
		if !r.syncPull(p, req.Key, ks, peers) {
			// The current value is unconfirmed; deciding an RMW on it could
			// resurrect a superseded epoch. Fail retryable instead.
			r.Counters.Add("stale-reads-prevented", 1)
			resp.Status = protocol.StatusRecovering
			return resp
		}
	}
	resp = r.st.Handle(p, req)
	if resp.Status == protocol.StatusCorrupt {
		// The RMW's read phase hit a quarantined copy. Repair from the
		// peers and decide the RMW on the repaired value; if nobody can
		// confirm one, fail retryable rather than decide against garbage.
		ks := r.state(req.Key)
		if r.syncPull(p, req.Key, ks, peers) {
			resp = r.st.Handle(p, req)
			if resp.Status == protocol.StatusOK || resp.Status == protocol.StatusStored {
				r.Counters.Add("corrupt-read-repairs", 1)
			}
		}
		if resp.Status == protocol.StatusCorrupt {
			resp.Status = protocol.StatusRecovering
			resp.Value, resp.ValueSize = nil, 0
		}
	}
	switch resp.Status {
	case protocol.StatusStored, protocol.StatusOK:
	default:
		return resp
	}
	// Replicate the post-image just applied (it may already live on SSD —
	// ReadItem loads it back without disturbing LRU or stats).
	value, size, flags, expireAt, ok := r.st.ReadItem(p, req.Key)
	if !ok {
		// Evicted-and-dropped in the same instant: nothing replicable; the
		// key is now a legal miss everywhere.
		return resp
	}
	fwd := r.begin(p, req.Key, false, value, size, flags, expireSeconds(r.env.Now(), expireAt))
	if !fwd.proxy {
		// The local copy was applied by Handle; record it like a SET so a
		// prior tombstone or suspicion on the key cannot outlive it.
		ks := r.state(req.Key)
		ks.epoch, ks.del, ks.suspect = fwd.epoch, false, false
		ks.sum = protocol.ValueSum(value)
		r.kick()
		r.migSatisfy(req.Key, ks.epoch)
	}
	if !r.await(p, fwd) {
		resp.Status = protocol.StatusNoReplica
		resp.Value, resp.ValueSize = nil, 0
	}
	return resp
}

// expireSeconds converts an absolute expiry back to the wire's relative
// seconds, rounding up so a nearly-expired item does not become immortal.
func expireSeconds(now, expireAt sim.Time) uint32 {
	if expireAt == 0 {
		return 0
	}
	remaining := expireAt - now
	if remaining <= 0 {
		return 1
	}
	secs := uint32(remaining / sim.Second)
	if secs == 0 {
		secs = 1
	}
	return secs
}

// syncPull confirms a suspect key against its peer replicas: the first
// peer pushing a confirmed copy (any epoch ≥ 1) clears the suspicion; if
// every peer answers "don't have it" the local recovered value is dropped
// (a miss is always legal; serving an unconfirmable resurrected value is
// not). Returns false on timeout with the key still suspect.
func (r *Replicator) syncPull(p *sim.Proc, key string, ks *keyState, peers []int) bool {
	if len(peers) == 0 {
		// Degenerate single-replica set: nobody can confirm; keep serving
		// the recovered value as the unreplicated system would.
		ks.suspect = false
		return true
	}
	if ks.pull == nil {
		ks.pull = r.env.NewEvent()
		ks.pullFrom = make(map[int]bool, len(peers))
		for _, pid := range peers {
			ks.pullFrom[pid] = true
			r.send(p, pid, &frame{Kind: framePull, Key: key})
		}
		r.Counters.Add("repair-pulls", 1)
	}
	ev := ks.pull
	p.WaitTimeout(ev, r.cfg.PullTimeout)
	if !ev.Fired() {
		// Abandon this round so the next reader restarts the pull (the
		// frames may have been lost to a partition).
		if ks.pull == ev {
			ks.pull, ks.pullFrom = nil, nil
		}
		return false
	}
	return !ks.suspect
}

// Wipe models whole-node RAM loss: every epoch record, open forward, and
// pending pull — including per-segment migration state — dies with the
// node. Called by Server.Kill. The migrator re-installs its segment state
// on its next retry round and re-pulls whatever the wipe destroyed.
func (r *Replicator) Wipe() {
	r.keys = make(map[string]*keyState)
	r.fwds = make(map[uint64]*Forward)
	r.migPulls = make(map[int]*segPull)
}

// OnColdRecovery marks every cold-recovered key suspect: the SSD resurrects
// values, but the epoch table proving their freshness died with the node,
// so each must be re-confirmed against a peer before it is served. The
// server calls this at the end of the recovery scan, before accepting
// requests again.
func (r *Replicator) OnColdRecovery(keys []string) {
	for _, key := range keys {
		ks := r.state(key)
		ks.epoch, ks.del, ks.suspect, ks.sum = 0, false, true, 0
		ks.pull, ks.pullFrom = nil, nil
	}
	// Arm the scrubber even when nothing was recovered (wiped SSD): the
	// digest exchange is how this node learns what the survivors hold.
	r.kick()
}

// OnCorrupt is the store's corrupt-read hook: a foreground read just
// failed integrity verification and the local copy is gone (quarantined).
// Mark the key suspect — keeping its epoch, so peers' same-epoch pushes
// still apply — and open a background pull immediately, so the key is
// repaired even if no client ever retries it. The reader that tripped the
// corruption joins this same pull through executeGet's syncPull.
func (r *Replicator) OnCorrupt(p *sim.Proc, key string) {
	r.Counters.Add("corrupt-local-reads", 1)
	ks := r.state(key)
	ks.suspect = true
	peers, member := r.replicaPeers(key)
	if !member || len(peers) == 0 {
		return
	}
	if ks.pull == nil {
		ks.pull = r.env.NewEvent()
		ks.pullFrom = make(map[int]bool, len(peers))
		for _, pid := range peers {
			ks.pullFrom[pid] = true
			r.send(p, pid, &frame{Kind: framePull, Key: key})
		}
		r.Counters.Add("repair-pulls", 1)
	}
	r.kick()
}

// winsSameEpoch decides which of two replicas holding the same epoch with
// different bytes keeps its copy: the epoch's coordinator (the minting
// server, encoded in the epoch's low byte) wins; between two backups the
// lower id wins, purely for determinism. Exactly one side of any pair wins,
// so divergence repair converges instead of oscillating.
func winsSameEpoch(senderID, myID int, epoch uint64) bool {
	coord := int(epoch & 0xff)
	if senderID == coord {
		return true
	}
	if myID == coord {
		return false
	}
	return senderID < myID
}

// engine drains the replicator's receive CQ, dispatching peer frames.
func (r *Replicator) engine(p *sim.Proc) {
	for {
		c := r.recvCQ.WaitPoll(p)
		if qp := r.qpByQPN[c.QPN]; qp != nil {
			qp.PostRecv(verbs.RecvWR{}) // replenish the pool
		}
		f, ok := c.Payload.(*frame)
		if !ok {
			continue
		}
		if r.isDown() {
			continue // a dead node neither applies nor acks
		}
		r.handle(p, f)
	}
}

func (r *Replicator) handle(p *sim.Proc, f *frame) {
	switch f.Kind {
	case frameWrite:
		r.handleWrite(p, f)
	case frameAck:
		r.handleAck(f)
	case framePull:
		r.handlePull(p, f)
	case framePullMiss:
		r.handlePullMiss(p, f)
	case frameProbe:
		r.handleProbe(p, f)
	case frameDigest:
		r.handleDigest(p, f)
	case frameDiff:
		r.handleDiff(p, f)
	case frameSegPull:
		r.handleSegPull(p, f)
	case frameSegManifest:
		r.handleSegManifest(p, f)
	}
}

// handleWrite applies a forwarded or repair write under the epoch guard.
func (r *Replicator) handleWrite(p *sim.Proc, f *frame) {
	if !f.Del && f.Sum != 0 && protocol.ValueSum(f.Value) != f.Sum {
		// The frame's value no longer matches the checksum the sender
		// stamped: it was corrupted in flight. Reject silently — never
		// apply, never ack — and let the coordinator's resend rounds (or
		// anti-entropy) deliver a clean copy.
		r.Counters.Add("corrupt-frames-rejected", 1)
		return
	}
	ks := r.state(f.Key)
	switch {
	case f.Epoch < ks.epoch:
		// Stale: reject, telling the coordinator the newer epoch.
		if !f.Repair {
			r.send(p, f.From, &frame{Kind: frameAck, ID: f.ID, Applied: false, Epoch: ks.epoch, Key: f.Key})
		}
		return
	case f.Epoch == ks.epoch && f.Epoch != 0:
		// Same epoch at both ends normally means duplicate delivery: ack
		// idempotently without re-applying. Two exceptions genuinely need
		// the apply below. A suspect local copy (corrupt read, cold
		// recovery) lost its value: any confirmed same-epoch push restores
		// it. And a content-divergence repair — same epoch, different
		// bytes — applies when the sender's copy wins the coordinator
		// rule, which is how the scrub fixes silent corruption that an
		// epoch comparison alone would never see.
		diverged := f.Repair && !f.Del && !ks.del &&
			protocol.ValueSum(f.Value) != ks.sum &&
			winsSameEpoch(f.From, r.cfg.ID, f.Epoch)
		if !ks.suspect && ks.pull == nil && !diverged {
			if !f.Repair {
				r.send(p, f.From, &frame{Kind: frameAck, ID: f.ID, Applied: true, Epoch: ks.epoch, Key: f.Key})
			}
			return
		}
		if diverged && !ks.suspect {
			r.Counters.Add("scrub-corruptions-repaired", 1)
		}
	}
	var applied bool
	if f.Del {
		st := r.st.Delete(p, f.Key)
		applied = st == protocol.StatusDeleted || st == protocol.StatusNotFound
	} else {
		applied = r.st.Set(p, f.Key, f.ValueSize, f.Value, f.Flags, f.Expire) == protocol.StatusStored
	}
	if !applied {
		// Recovering or allocation failure: stay silent; the coordinator's
		// resend rounds (or anti-entropy) will retry once we can apply.
		return
	}
	ks.epoch, ks.del, ks.suspect = f.Epoch, f.Del, false
	if f.Del {
		ks.sum = 0
	} else {
		ks.sum = protocol.ValueSum(f.Value)
	}
	r.kick()
	r.migSatisfy(f.Key, ks.epoch)
	if ks.pull != nil {
		// An open suspect pull is satisfied by any confirmed write.
		ks.pull.Fire()
		ks.pull, ks.pullFrom = nil, nil
	}
	if !f.Repair {
		r.send(p, f.From, &frame{Kind: frameAck, ID: f.ID, Applied: true, Epoch: f.Epoch, Key: f.Key})
	}
}

func (r *Replicator) handleAck(f *frame) {
	fwd := r.fwds[f.ID]
	if fwd == nil || !fwd.waiting[f.From] {
		return // stale or duplicate ack
	}
	delete(fwd.waiting, f.From)
	if !f.Applied && f.Epoch > fwd.epoch && f.Epoch > fwd.conflict {
		fwd.conflict = f.Epoch
	}
	if len(fwd.waiting) == 0 && !fwd.done.Fired() {
		fwd.done.Fire()
	}
}

// handlePull answers a peer's confirmation request: push our confirmed copy
// (value or tombstone) or admit we do not have one.
func (r *Replicator) handlePull(p *sim.Proc, f *frame) {
	ks := r.keys[f.Key]
	if ks == nil || ks.suspect || ks.epoch == 0 {
		// Nothing confirmed here — never propagate an unconfirmed value.
		r.send(p, f.From, &frame{Kind: framePullMiss, Key: f.Key})
		return
	}
	r.pushKey(p, f.From, f.Key, ks)
}

// pushKey sends our confirmed copy of key to a peer as a repair write.
// Returns false when the local value turned out to be gone (evicted and
// dropped), in which case the epoch record is retired too.
func (r *Replicator) pushKey(p *sim.Proc, pid int, key string, ks *keyState) bool {
	if ks.del {
		r.Counters.Add("repair-pushes", 1)
		r.send(p, pid, &frame{Kind: frameWrite, Repair: true, Key: key, Epoch: ks.epoch, Del: true})
		return true
	}
	value, size, flags, expireAt, ok := r.st.ReadItem(p, key)
	if !ok {
		// The slab layer dropped the value (eviction under pressure): stop
		// claiming the epoch in digests; a peer's copy can repair us later.
		delete(r.keys, key)
		r.send(p, pid, &frame{Kind: framePullMiss, Key: key})
		return false
	}
	r.Counters.Add("repair-pushes", 1)
	r.send(p, pid, &frame{
		Kind: frameWrite, Repair: true, Key: key, Epoch: ks.epoch,
		Value: value, ValueSize: size, Flags: flags,
		Expire: expireSeconds(r.env.Now(), expireAt),
		Sum:    protocol.ValueSum(value),
	})
	return true
}

// handlePullMiss records a peer's "don't have it" answer to an open pull;
// when every peer missed, the local recovered value is dropped — a miss is
// legal, resurrecting an unconfirmable value is not.
func (r *Replicator) handlePullMiss(p *sim.Proc, f *frame) {
	// An open migration want is bookkept independently of the suspect pull:
	// the same framePull serves both, so a miss answers both.
	r.migPullMissed(f.Key, f.From)
	ks := r.keys[f.Key]
	if ks == nil || ks.pull == nil || !ks.pullFrom[f.From] {
		// No open pull, or this peer already answered: the fault injector
		// duplicates frames, and one peer missing twice must not count as
		// two peers missing.
		return
	}
	delete(ks.pullFrom, f.From)
	if len(ks.pullFrom) > 0 {
		return
	}
	if ks.suspect {
		r.st.Delete(p, f.Key)
		delete(r.keys, f.Key)
		r.Counters.Add("suspect-drops", 1)
	}
	if !ks.pull.Fired() {
		ks.pull.Fire()
	}
	ks.pull, ks.pullFrom = nil, nil
}

// handleProbe is the read-repair rendezvous: a replica that served a GET
// tells us the epoch it served. If we are behind we ask it to push; if we
// are ahead we push our fresher copy back.
func (r *Replicator) handleProbe(p *sim.Proc, f *frame) {
	ks := r.keys[f.Key]
	var epoch uint64
	if ks != nil && !ks.suspect {
		epoch = ks.epoch
	}
	switch {
	case epoch < f.Epoch:
		r.send(p, f.From, &frame{Kind: framePull, Key: f.Key})
	case epoch > f.Epoch:
		r.pushKey(p, f.From, f.Key, ks)
	}
}
