package replication_test

import (
	"fmt"
	"testing"

	"hybridkv/internal/cluster"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
)

// The cluster-level contracts: these drive real writes through a three
// server, R=2 cluster and then inspect the servers' stores directly, so
// they pin down what "replicated" means independently of the client path.

const (
	itKeys  = 32
	itValue = 512
)

func itKey(i int) string { return fmt.Sprintf("it:%04d", i) }

// itRing rebuilds the replica mapping the cluster used: NewRing over the
// same ids is deterministic, so the test knows each key's replica set
// without reaching into unexported state.
func itRing(servers int) *replication.Ring {
	ring := replication.NewRing()
	for i := 0; i < servers; i++ {
		ring.Add(i)
	}
	return ring
}

func itCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           cluster.ClusterA(),
		Servers:           3,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 2,
	})
}

// A completed SET must be on every member of the key's replica set — that
// is the ack's durability promise — and on no one else (a proxy
// coordinator forwards, it does not hoard).
func TestWriteReplicatesToAllMembers(t *testing.T) {
	cl := itCluster()
	c := cl.Clients[0]
	ring := itRing(3)

	cl.Env.Spawn("it-driver", func(p *sim.Proc) {
		for i := 0; i < itKeys; i++ {
			c.Set(p, itKey(i), itValue, uint64(i+1), 0, 0)
		}
		for i := 0; i < itKeys; i++ {
			key := itKey(i)
			member := map[int]bool{}
			for _, id := range ring.Replicas(key, 2) {
				member[id] = true
			}
			for sid, s := range cl.Servers {
				v, _, _, _, ok := s.Store().ReadItem(p, key)
				if member[sid] && !ok {
					t.Errorf("server %d is a replica of %q but does not hold it", sid, key)
				}
				if !member[sid] && ok {
					t.Errorf("server %d holds %q without being a replica", sid, key)
				}
				if ok {
					if seq, _ := v.(uint64); seq != uint64(i+1) {
						t.Errorf("server %d holds %q at seq %d, want %d", sid, key, seq, i+1)
					}
				}
			}
		}
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if total.Get("forwards") == 0 {
		t.Error("no write was ever forwarded")
	}
}

// A coordinator outside the key's replica set must still drive the chain —
// forward to both members, wait for their acks — without applying locally.
func TestProxyCoordinatorForwardsWithoutApplying(t *testing.T) {
	cl := itCluster()
	ring := itRing(3)

	// Find a key whose replica set excludes server 2.
	key, member := "", map[int]bool{}
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("proxy:%04d", i)
		m := map[int]bool{}
		for _, id := range ring.Replicas(k, 2) {
			m[id] = true
		}
		if !m[2] {
			key, member = k, m
			break
		}
	}
	if key == "" {
		t.Fatal("no key maps away from server 2")
	}

	cl.Env.Spawn("it-proxy", func(p *sim.Proc) {
		r := cl.Replicators[2]
		req := &protocol.Request{Op: protocol.OpSet, Key: key, ValueSize: itValue, Value: uint64(7)}
		resp := r.Execute(p, req, r.Begin(p, req))
		if resp.Status != protocol.StatusStored {
			t.Fatalf("proxy-coordinated SET answered %v", resp.Status)
		}
		for sid, s := range cl.Servers {
			_, _, _, _, ok := s.Store().ReadItem(p, key)
			if member[sid] && !ok {
				t.Errorf("replica %d missing proxy-coordinated write of %q", sid, key)
			}
			if !member[sid] && ok {
				t.Errorf("non-member %d applied proxy-coordinated write of %q", sid, key)
			}
		}
	})
	cl.Env.Run()
}

// Whole-node kill with the SSD wiped: the restarted node comes back owning
// nothing, and the anti-entropy scrubber — kicked by the cold recovery —
// must re-fetch every key the node shares from the surviving replicas,
// without any client traffic driving it.
func TestWipedNodeReconvergesViaScrub(t *testing.T) {
	cl := itCluster()
	c := cl.Clients[0]
	ring := itRing(3)
	victim := 1

	cl.Env.Spawn("it-kill", func(p *sim.Proc) {
		for i := 0; i < itKeys; i++ {
			c.Set(p, itKey(i), itValue, uint64(i+1), 0, 0)
		}
		s := cl.Servers[victim]
		s.Kill(true)
		p.Sleep(300 * sim.Microsecond)
		s.RestartCold()
		for s.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		// Let the scrub bursts run; repair applies re-kick, so convergence
		// does not depend on the first burst finishing the job.
		p.Sleep(30 * sim.Millisecond)
		for i := 0; i < itKeys; i++ {
			key := itKey(i)
			shared := false
			for _, id := range ring.Replicas(key, 2) {
				if id == victim {
					shared = true
				}
			}
			if !shared {
				continue
			}
			v, _, _, _, ok := s.Store().ReadItem(p, key)
			if !ok {
				t.Errorf("wiped node never re-fetched its replica of %q", key)
				continue
			}
			if seq, _ := v.(uint64); seq != uint64(i+1) {
				t.Errorf("wiped node re-fetched %q at seq %d, want %d", key, seq, i+1)
			}
		}
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if total.Get("repair-pushes") == 0 {
		t.Error("reconvergence without a single repair push — scrub never ran")
	}
	if total.Get("scrub-rounds") == 0 {
		t.Error("no scrub round after a cold recovery kick")
	}
}

// An RMW that follows a DELETE must clear the coordinator's tombstone
// record along with advancing the epoch: otherwise the coordinator
// "repairs" a cold-restarted replica with a tombstone at the RMW's epoch,
// the live value is deleted there, and the acked RMW write would die with
// the coordinator — the exact durability promise R=2 makes.
func TestRMWAfterDeleteSurvivesReplicaRestart(t *testing.T) {
	cl := itCluster()
	c := cl.Clients[0]
	ring := itRing(3)
	key := "rmw:after:del"
	backup := ring.Replicas(key, 2)[1]

	cl.Env.Spawn("it-rmw", func(p *sim.Proc) {
		if st := c.Set(p, key, itValue, uint64(1), 0, 0); st != protocol.StatusStored {
			t.Errorf("set: %v", st)
			return
		}
		if st := c.Delete(p, key); st != protocol.StatusDeleted {
			t.Errorf("delete: %v", st)
			return
		}
		if st := c.Add(p, key, itValue, uint64(2), 0, 0); st != protocol.StatusStored {
			t.Errorf("add after delete: %v", st)
			return
		}
		s := cl.Servers[backup]
		s.Kill(false)
		p.Sleep(300 * sim.Microsecond)
		s.RestartCold()
		for s.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		p.Sleep(30 * sim.Millisecond)
		v, _, _, _, ok := s.Store().ReadItem(p, key)
		if !ok {
			t.Error("restarted backup lost the post-RMW value: repaired with a stale tombstone")
		} else if seq, _ := v.(uint64); seq != 2 {
			t.Errorf("restarted backup holds seq %d, want 2", seq)
		}
		if v2, _, status := c.Get(p, key); status != protocol.StatusOK {
			t.Errorf("get after restart: %v", status)
		} else if seq, _ := v2.(uint64); seq != 2 {
			t.Errorf("get observed seq %d, want 2", seq)
		}
	})
	cl.Env.Run()
}

// Whole-node kill with the SSD intact: recovery resurrects the values but
// marks them suspect; the scrubber confirms them against the peers. After
// the settle every suspect is resolved — served values match the freshest
// epoch — and the run records confirmations, not stale serves.
func TestColdRestartSuspectsConfirmed(t *testing.T) {
	cl := itCluster()
	c := cl.Clients[0]
	victim := 0

	cl.Env.Spawn("it-restart", func(p *sim.Proc) {
		for i := 0; i < itKeys; i++ {
			c.Set(p, itKey(i), itValue, uint64(i+1), 0, 0)
		}
		s := cl.Servers[victim]
		s.Kill(false)
		p.Sleep(300 * sim.Microsecond)
		s.RestartCold()
		for s.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		p.Sleep(30 * sim.Millisecond)
		// Client reads must still see the latest value for every key, no
		// matter which replica serves them.
		for i := 0; i < itKeys; i++ {
			v, _, status := c.Get(p, itKey(i))
			if status != protocol.StatusOK {
				t.Errorf("get %q after restart: %v", itKey(i), status)
				continue
			}
			if seq, _ := v.(uint64); seq != uint64(i+1) {
				t.Errorf("get %q observed seq %d, want %d", itKey(i), seq, i+1)
			}
		}
	})
	cl.Env.Run()
}
