// Package simnet models a cluster interconnect fabric under the sim kernel.
//
// The fabric is a set of named nodes joined by a non-blocking switch with
// full bisection bandwidth (the topology of SDSC Comet's rack-level fabric,
// which the paper's experiments fit inside). Each node has one NIC; the
// endpoint link is the only contended resource. A message transfer costs:
//
//	caller CPU   : SendCPU + ceil(size/SegSize)·SegCPU   (blocks the sender)
//	serialization: size / BytesPerSec                     (occupies the TX link)
//	propagation  : PropDelay                              (wire + switch)
//	receiver CPU : RecvCPU                                (delays delivery)
//
// Two LinkSpec presets are provided: FDR InfiniBand for native RDMA verbs
// and IP-over-IB for the kernel TCP/IP path. The verbs package builds both
// transports on this fabric.
package simnet

import (
	"fmt"

	"hybridkv/internal/sim"
)

// LinkSpec is the first-order cost model of one transport over the fabric.
type LinkSpec struct {
	// PropDelay is the one-way wire + switch propagation latency.
	PropDelay sim.Time
	// BytesPerSec is the effective link bandwidth for payload bytes.
	BytesPerSec int64
	// SendCPU is the fixed caller-side cost to hand a message to the NIC
	// (doorbell write for RDMA; syscall + socket locking for IPoIB).
	SendCPU sim.Time
	// SegSize is the segmentation unit; 0 disables per-segment costs.
	SegSize int
	// SegCPU is the caller-side cost per segment (kernel copy + header
	// build for the TCP path).
	SegCPU sim.Time
	// RecvCPU is the receiver-side per-message cost (interrupt + stack
	// traversal) added before delivery.
	RecvCPU sim.Time
}

// FDRInfiniBand models a 56 Gb/s FDR HCA driven by native verbs: ~1.2 µs
// small-message latency and ~6 GB/s payload bandwidth (PCIe Gen3 limited).
func FDRInfiniBand() LinkSpec {
	return LinkSpec{
		PropDelay:   1200 * sim.Nanosecond,
		BytesPerSec: 6_000_000_000,
		SendCPU:     200 * sim.Nanosecond,
		SegSize:     0,
		SegCPU:      0,
		RecvCPU:     150 * sim.Nanosecond,
	}
}

// IPoIB models TCP/IP over the same FDR fabric: kernel stack on both sides,
// 64 KB segmentation, and much lower effective bandwidth (~2 GB/s).
func IPoIB() LinkSpec {
	return LinkSpec{
		PropDelay:   1200 * sim.Nanosecond,
		BytesPerSec: 2_000_000_000,
		SendCPU:     8 * sim.Microsecond,
		SegSize:     64 * 1024,
		SegCPU:      2 * sim.Microsecond,
		RecvCPU:     8 * sim.Microsecond,
	}
}

// SendCost returns the caller-side CPU cost to hand a size-byte message to
// the NIC under this spec.
func (s LinkSpec) SendCost(size int) sim.Time {
	c := s.SendCPU
	if s.SegSize > 0 && size > 0 {
		segs := (size + s.SegSize - 1) / s.SegSize
		c += sim.Time(segs) * s.SegCPU
	}
	return c
}

// SerializeTime returns how long size bytes occupy the TX link.
func (s LinkSpec) SerializeTime(size int) sim.Time {
	if s.BytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(s.BytesPerSec) * float64(sim.Second))
}

// Message is one fabric transfer. Payload is opaque to the fabric.
type Message struct {
	Src, Dst string
	Size     int
	Payload  any
}

// Outgoing tracks the lifecycle of a message handed to the NIC.
type Outgoing struct {
	// Sent fires when the message has fully left the sender's NIC — the
	// source buffer is reusable from this point.
	Sent *sim.Event
	// Delivered fires when the receiver has been handed the message.
	Delivered *sim.Event
}

// Verdict is a fault injector's decision about one message.
type Verdict struct {
	// Drop loses the message after serialization: the sender's Sent event
	// still fires (it cannot tell), but no delivery happens.
	Drop bool
	// Duplicate delivers the message a second time shortly after the first.
	Duplicate bool
	// ExtraDelay postpones delivery beyond normal propagation (a latency
	// spike).
	ExtraDelay sim.Time
	// Corrupt flips bits in the payload in flight: a Corruptible payload
	// is delivered as its CorruptCopy; other payloads deliver intact (their
	// transports checksum-and-drop below this layer).
	Corrupt bool
}

// FaultInjector is consulted once per message at serialization end.
// internal/fault provides the standard seeded implementation.
type FaultInjector interface {
	Transmit(src, dst string, size int, now sim.Time) Verdict
}

// Corruptible is a payload that knows how to present itself bit-flipped:
// the fabric delivers CorruptCopy's result in place of the original when
// the injector's verdict says Corrupt. Payloads that don't implement it
// are delivered intact — corrupting a message the receiver would CRC-drop
// anyway is indistinguishable from Drop, which the injector already models.
type Corruptible interface {
	CorruptCopy() any
}

// Fabric is the switch plus its attached nodes.
type Fabric struct {
	env    *sim.Env
	spec   LinkSpec
	nodes  map[string]*Node
	faults FaultInjector

	// Stats
	MsgCount  int64
	ByteCount int64
	// Dropped counts messages lost to fault injection (random drops plus
	// link-down windows).
	Dropped int64
	// Corrupted counts payloads delivered bit-flipped by fault injection.
	Corrupted int64
}

// New creates a fabric on env with the given default link spec.
func New(env *sim.Env, spec LinkSpec) *Fabric {
	return &Fabric{env: env, spec: spec, nodes: make(map[string]*Node)}
}

// Env returns the simulation environment.
func (f *Fabric) Env() *sim.Env { return f.env }

// Spec returns the fabric's link spec.
func (f *Fabric) Spec() LinkSpec { return f.spec }

// SetFaults installs (or, with nil, removes) a fault injector. Safe to call
// between phases of a run; it affects messages serialized from then on.
func (f *Fabric) SetFaults(fi FaultInjector) { f.faults = fi }

// Node returns the named node, or nil.
func (f *Fabric) Node(name string) *Node { return f.nodes[name] }

// AddNode attaches a new node to the fabric. Node names must be unique.
func (f *Fabric) AddNode(name string) *Node {
	if _, dup := f.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	n := &Node{fabric: f, name: name}
	n.tx = sim.NewQueue[*outMsg](f.env, 0)
	f.nodes[name] = n
	f.env.Spawn("nic-tx:"+name, n.txEngine)
	return n
}

type outMsg struct {
	msg *Message
	out *Outgoing
}

// Node is one host with a single NIC attached to the fabric.
type Node struct {
	fabric   *Fabric
	name     string
	tx       *sim.Queue[*outMsg]
	receiver func(m *Message)

	// Stats
	TxBytes, RxBytes int64
	TxMsgs, RxMsgs   int64
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Fabric returns the owning fabric.
func (n *Node) Fabric() *Fabric { return n.fabric }

// SetReceiver installs the delivery callback. It runs in a fresh process at
// delivery time and must not block for long (spawn work elsewhere).
func (n *Node) SetReceiver(fn func(m *Message)) { n.receiver = fn }

// txEngine drains the NIC transmit queue, charging serialization time per
// message and scheduling remote delivery.
func (n *Node) txEngine(p *sim.Proc) {
	f := n.fabric
	for {
		om, ok := n.tx.Get(p)
		if !ok {
			return
		}
		p.Sleep(f.spec.SerializeTime(om.msg.Size))
		om.out.Sent.Fire()
		n.TxBytes += int64(om.msg.Size)
		n.TxMsgs++
		f.MsgCount++
		f.ByteCount += int64(om.msg.Size)
		dst := f.nodes[om.msg.Dst]
		if dst == nil {
			panic(fmt.Sprintf("simnet: send to unknown node %q", om.msg.Dst))
		}
		deliverAt := p.Now() + f.spec.PropDelay + f.spec.RecvCPU
		msg, out := om.msg, om.out
		copies := 1
		if f.faults != nil {
			v := f.faults.Transmit(msg.Src, msg.Dst, msg.Size, p.Now())
			if v.Drop {
				f.Dropped++
				continue
			}
			deliverAt += v.ExtraDelay
			if v.Duplicate {
				copies = 2
			}
			if v.Corrupt {
				if c, ok := msg.Payload.(Corruptible); ok {
					cm := *msg
					cm.Payload = c.CorruptCopy()
					msg = &cm
					f.Corrupted++
				}
			}
		}
		for i := 0; i < copies; i++ {
			// A duplicate trails the original by one receiver-CPU slot.
			at := deliverAt + sim.Time(i)*f.spec.RecvCPU
			f.env.SpawnAt(at, "deliver:"+dst.name, func(dp *sim.Proc) {
				dst.RxBytes += int64(msg.Size)
				dst.RxMsgs++
				out.Delivered.Fire()
				if dst.receiver != nil {
					dst.receiver(msg)
				}
			})
		}
	}
}

// Post hands a message to the NIC without charging caller CPU time (the
// caller models its own cost, e.g. the verbs layer charging doorbell cost).
func (n *Node) Post(dst string, size int, payload any) *Outgoing {
	out := &Outgoing{Sent: n.fabric.env.NewEvent(), Delivered: n.fabric.env.NewEvent()}
	m := &Message{Src: n.name, Dst: dst, Size: size, Payload: payload}
	n.tx.TryPut(&outMsg{msg: m, out: out}) // unbounded queue: always succeeds
	return out
}

// Send charges the caller the host-side CPU cost, then posts the message.
func (n *Node) Send(p *sim.Proc, dst string, size int, payload any) *Outgoing {
	p.Sleep(n.fabric.spec.SendCost(size))
	return n.Post(dst, size, payload)
}

// SendWait is Send followed by blocking until the message has fully left
// the NIC (kernel-copy semantics: buffer reusable on return).
func (n *Node) SendWait(p *sim.Proc, dst string, size int, payload any) *Outgoing {
	out := n.Send(p, dst, size, payload)
	p.Wait(out.Sent)
	return out
}
