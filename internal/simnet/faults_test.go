package simnet

import (
	"testing"

	"hybridkv/internal/sim"
)

// scriptedInjector returns pre-programmed verdicts in message order.
type scriptedInjector struct {
	verdicts []Verdict
	n        int
}

func (si *scriptedInjector) Transmit(src, dst string, size int, now sim.Time) Verdict {
	if si.n >= len(si.verdicts) {
		return Verdict{}
	}
	v := si.verdicts[si.n]
	si.n++
	return v
}

func TestFaultDropLosesDeliveryButFiresSent(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	f.SetFaults(&scriptedInjector{verdicts: []Verdict{{Drop: true}}})
	delivered := 0
	b.SetReceiver(func(m *Message) { delivered++ })
	var sentFired bool
	env.Spawn("s", func(p *sim.Proc) {
		out := a.Post("b", 4096, nil)
		p.Wait(out.Sent)
		sentFired = true
	})
	env.Run()
	if delivered != 0 {
		t.Errorf("dropped message delivered %d times", delivered)
	}
	if !sentFired {
		t.Error("sender's Sent event did not fire for a dropped message")
	}
	if f.Dropped != 1 {
		t.Errorf("Fabric.Dropped = %d, want 1", f.Dropped)
	}
	if f.MsgCount != 1 {
		t.Errorf("MsgCount = %d: drops happen after send accounting", f.MsgCount)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	f.SetFaults(&scriptedInjector{verdicts: []Verdict{{Duplicate: true}}})
	var times []sim.Time
	b.SetReceiver(func(m *Message) { times = append(times, env.Now()) })
	env.Spawn("s", func(p *sim.Proc) { a.Post("b", 4096, nil) })
	env.Run()
	if len(times) != 2 {
		t.Fatalf("duplicated message delivered %d times, want 2", len(times))
	}
	if gap := times[1] - times[0]; gap != f.Spec().RecvCPU {
		t.Errorf("duplicate trails original by %v, want one RecvCPU (%v)", gap, f.Spec().RecvCPU)
	}
}

func TestFaultExtraDelayPostponesDelivery(t *testing.T) {
	const spike = 250 * sim.Microsecond
	measure := func(v Verdict) sim.Time {
		env := sim.NewEnv()
		f := New(env, FDRInfiniBand())
		a, b := f.AddNode("a"), f.AddNode("b")
		f.SetFaults(&scriptedInjector{verdicts: []Verdict{v}})
		var at sim.Time
		b.SetReceiver(func(m *Message) { at = env.Now() })
		env.Spawn("s", func(p *sim.Proc) { a.Post("b", 4096, nil) })
		env.Run()
		return at
	}
	clean := measure(Verdict{})
	spiked := measure(Verdict{ExtraDelay: spike})
	if spiked-clean != spike {
		t.Errorf("spiked delivery %v vs clean %v: delta %v, want %v",
			spiked, clean, spiked-clean, spike)
	}
}

func TestNilFaultsLeaveTrafficUntouched(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	f.SetFaults(&scriptedInjector{verdicts: []Verdict{{Drop: true}}})
	f.SetFaults(nil) // disarm
	delivered := 0
	b.SetReceiver(func(m *Message) { delivered++ })
	env.Spawn("s", func(p *sim.Proc) { a.Post("b", 64, nil) })
	env.Run()
	if delivered != 1 || f.Dropped != 0 {
		t.Errorf("delivered=%d dropped=%d after disarming faults", delivered, f.Dropped)
	}
}
