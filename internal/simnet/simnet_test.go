package simnet

import (
	"testing"

	"hybridkv/internal/sim"
)

func rdmaPair(t *testing.T) (*sim.Env, *Fabric, *Node, *Node) {
	t.Helper()
	env := sim.NewEnv()
	f := New(env, FDRInfiniBand())
	return env, f, f.AddNode("a"), f.AddNode("b")
}

func TestSmallMessageLatency(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	var deliveredAt sim.Time = -1
	b.SetReceiver(func(m *Message) { deliveredAt = env.Now() })
	env.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, "b", 64, "hdr")
	})
	env.Run()
	spec := f.Spec()
	want := spec.SendCPU + spec.SerializeTime(64) + spec.PropDelay + spec.RecvCPU
	if deliveredAt != want {
		t.Errorf("64B delivery at %v, want %v", deliveredAt, want)
	}
	if deliveredAt <= 0 || deliveredAt > 2*sim.Microsecond {
		t.Errorf("FDR small-message latency %v outside (0,2µs]", deliveredAt)
	}
}

func TestBandwidthDominatesLargeTransfers(t *testing.T) {
	env, _, a, b := rdmaPair(t)
	var deliveredAt sim.Time
	b.SetReceiver(func(m *Message) { deliveredAt = env.Now() })
	size := 32 << 20 // 32 MB
	env.Spawn("sender", func(p *sim.Proc) { a.Send(p, "b", size, nil) })
	env.Run()
	// 32 MB at 6 GB/s ≈ 5.59 ms; latency terms are negligible.
	lo, hi := 5*sim.Millisecond, 7*sim.Millisecond
	if deliveredAt < lo || deliveredAt > hi {
		t.Errorf("32MB delivery at %v, want within [%v,%v]", deliveredAt, lo, hi)
	}
}

func TestIPoIBSlowerThanRDMA(t *testing.T) {
	measure := func(spec LinkSpec, size int) sim.Time {
		env := sim.NewEnv()
		f := New(env, spec)
		a, b := f.AddNode("a"), f.AddNode("b")
		var at sim.Time
		b.SetReceiver(func(m *Message) { at = env.Now() })
		env.Spawn("s", func(p *sim.Proc) { a.Send(p, "b", size, nil) })
		env.Run()
		return at
	}
	for _, size := range []int{64, 4096, 32 * 1024, 512 * 1024} {
		rdma := measure(FDRInfiniBand(), size)
		ipoib := measure(IPoIB(), size)
		ratio := float64(ipoib) / float64(rdma)
		if ratio < 2 {
			t.Errorf("size %d: IPoIB/RDMA latency ratio %.2f, want ≥ 2", size, ratio)
		}
	}
}

func TestLinkSerializationIsSequential(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	var deliveries []sim.Time
	b.SetReceiver(func(m *Message) { deliveries = append(deliveries, env.Now()) })
	size := 6 << 20 // 6 MB ≈ 1 ms serialization each
	env.Spawn("sender", func(p *sim.Proc) {
		a.Post("b", size, 1)
		a.Post("b", size, 2)
	})
	env.Run()
	if len(deliveries) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(deliveries))
	}
	gap := deliveries[1] - deliveries[0]
	want := f.Spec().SerializeTime(size)
	if gap != want {
		t.Errorf("back-to-back delivery gap %v, want one serialization time %v", gap, want)
	}
}

func TestSentFiresBeforeDelivered(t *testing.T) {
	env, f, a, _ := rdmaPair(t)
	var sentAt, delivAt sim.Time
	env.Spawn("sender", func(p *sim.Proc) {
		out := a.Post("b", 4096, nil)
		p.Wait(out.Sent)
		sentAt = p.Now()
		p.Wait(out.Delivered)
		delivAt = p.Now()
	})
	env.Run()
	if sentAt <= 0 || delivAt <= sentAt {
		t.Errorf("sent=%v delivered=%v, want 0 < sent < delivered", sentAt, delivAt)
	}
	if d := delivAt - sentAt; d != f.Spec().PropDelay+f.Spec().RecvCPU {
		t.Errorf("delivered-sent = %v, want prop+recv = %v", d, f.Spec().PropDelay+f.Spec().RecvCPU)
	}
}

func TestSendWaitBlocksForSerialization(t *testing.T) {
	env, f, a, _ := rdmaPair(t)
	size := 6 << 20
	var done sim.Time
	env.Spawn("sender", func(p *sim.Proc) {
		a.SendWait(p, "b", size, nil)
		done = p.Now()
	})
	env.Run()
	min := f.Spec().SerializeTime(size)
	if done < min {
		t.Errorf("SendWait returned at %v, before serialization completes (%v)", done, min)
	}
}

func TestIndependentLinksDoNotContend(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, FDRInfiniBand())
	a, b := f.AddNode("a"), f.AddNode("b")
	c := f.AddNode("c")
	var times []sim.Time
	c.SetReceiver(func(m *Message) { times = append(times, env.Now()) })
	size := 6 << 20
	env.Spawn("s1", func(p *sim.Proc) { a.Post("c", size, nil) })
	env.Spawn("s2", func(p *sim.Proc) { b.Post("c", size, nil) })
	env.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d, want 2", len(times))
	}
	// Full bisection: both senders serialize in parallel; deliveries land
	// at (almost) the same instant rather than back to back.
	if gap := times[1] - times[0]; gap > 10*sim.Microsecond {
		t.Errorf("independent senders gap %v, want ≈0 (parallel links)", gap)
	}
}

func TestBidirectionalFullDuplex(t *testing.T) {
	env, _, a, b := rdmaPair(t)
	var got []string
	a.SetReceiver(func(m *Message) { got = append(got, "a<-"+m.Src) })
	b.SetReceiver(func(m *Message) { got = append(got, "b<-"+m.Src) })
	size := 6 << 20
	var aDone, bDone sim.Time
	env.Spawn("sa", func(p *sim.Proc) {
		out := a.Post("b", size, nil)
		p.Wait(out.Delivered)
		aDone = p.Now()
	})
	env.Spawn("sb", func(p *sim.Proc) {
		out := b.Post("a", size, nil)
		p.Wait(out.Delivered)
		bDone = p.Now()
	})
	env.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries %v", got)
	}
	if d := aDone - bDone; d > 10*sim.Microsecond || d < -10*sim.Microsecond {
		t.Errorf("duplex transfers finished %v apart, want ≈0", d)
	}
}

func TestStatsAccumulate(t *testing.T) {
	env, f, a, b := rdmaPair(t)
	b.SetReceiver(func(m *Message) {})
	env.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			out := a.Send(p, "b", 1000, nil)
			p.Wait(out.Delivered)
		}
	})
	env.Run()
	if f.MsgCount != 4 || f.ByteCount != 4000 {
		t.Errorf("fabric stats %d msgs/%d bytes, want 4/4000", f.MsgCount, f.ByteCount)
	}
	if a.TxMsgs != 4 || b.RxMsgs != 4 || a.TxBytes != 4000 || b.RxBytes != 4000 {
		t.Errorf("node stats tx=%d/%d rx=%d/%d", a.TxMsgs, a.TxBytes, b.RxMsgs, b.RxBytes)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate AddNode did not panic")
		}
	}()
	env := sim.NewEnv()
	f := New(env, FDRInfiniBand())
	f.AddNode("x")
	f.AddNode("x")
}

func TestSendCostSegmentation(t *testing.T) {
	spec := IPoIB()
	oneSeg := spec.SendCost(1000)
	threeSegs := spec.SendCost(3*64*1024 - 1)
	if oneSeg != spec.SendCPU+spec.SegCPU {
		t.Errorf("1-segment cost %v, want %v", oneSeg, spec.SendCPU+spec.SegCPU)
	}
	if threeSegs != spec.SendCPU+3*spec.SegCPU {
		t.Errorf("3-segment cost %v, want %v", threeSegs, spec.SendCPU+3*spec.SegCPU)
	}
	if FDRInfiniBand().SendCost(1<<20) != FDRInfiniBand().SendCPU {
		t.Errorf("RDMA SendCost should be size-independent")
	}
}
