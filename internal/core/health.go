package core

import (
	"sort"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// Latency-aware connection health: the gray-failure defense. Error-count
// breakers (breaker.go) catch servers that stop answering; they are blind
// to a server that keeps answering, slowly — a limping SSD, a degraded
// link, a stalled storage worker. This file tracks per-connection service
// time (EWMA plus a windowed quantile, split by op class and read path)
// and compares each connection against the fleet's fastest peer. A
// connection whose windowed tail exceeds DegradedFactor times the best
// peer's EWMA enters BROWN-OUT: not open — requests sent to it still
// complete, writes it coordinates still route to it — but deprioritized.
// GETs prefer a healthy replica when one exists (pickRead), hot-key
// fanout skips browned members while any healthy one remains, bypass
// fallbacks redirect to a faster replica's RPC path, and hedge thresholds
// shrink toward the measured healthy baseline instead of waiting out a
// fixed fraction of the deadline.
//
// Two guards keep brown-out strictly weaker than the breaker:
//
//   - last-live: a browned connection is never blocked when it is the
//     only routable replica (single-replica sets return it untouched,
//     mirroring failoverNext), so brown-out can never turn a slow fleet
//     into an unavailable one;
//   - probe trickle: every ProbeEvery'th GET that would have been routed
//     around a browned connection is sent to it anyway, so service-time
//     samples keep flowing and recovery (RecoverFactor hysteresis) is
//     observable even while the connection is deprioritized.
//
// Crash visibility is untouched: brown-out only reorders preferences
// inside allows()-gated candidate walks, so a browned server that then
// cold-crashes still trips its breaker and still gets failed over exactly
// as an un-tracked one would.
//
// The zero value disables everything: no state is allocated, no samples
// are taken, routing and virtual time are byte-identical to a client
// without health tracking.

// HealthConfig tunes latency-aware health scoring (Config.Health). The
// zero value disables it entirely.
type HealthConfig struct {
	// Enabled turns health tracking on. Off, the client takes no samples
	// and routing is unchanged.
	Enabled bool
	// Window is the per-class service-time window compared against the
	// fleet baseline (default 64 samples).
	Window int
	// Alpha is the EWMA smoothing factor for the per-class baseline each
	// connection publishes to its peers (default 0.125).
	Alpha float64
	// Quantile is the windowed quantile judged against the baseline
	// (default 0.9: the window's p90).
	Quantile float64
	// MinSamples is how many samples a class needs — on the judged
	// connection and on at least one peer — before brown-out decisions
	// are made (default 16).
	MinSamples int
	// DegradedFactor enters brown-out when the windowed quantile exceeds
	// this multiple of the best peer EWMA (default 3).
	DegradedFactor float64
	// RecoverFactor exits brown-out when the quantile drops back under
	// this multiple (default 1.5; the gap to DegradedFactor is the
	// hysteresis band).
	RecoverFactor float64
	// ProbeEvery admits every Nth otherwise-rerouted GET to a browned
	// connection as a probe, keeping recovery observable (default 16).
	ProbeEvery int
}

func (h *HealthConfig) fill() {
	if h.Window <= 0 {
		h.Window = 64
	}
	if h.Alpha <= 0 {
		h.Alpha = 0.125
	}
	if h.Quantile <= 0 {
		h.Quantile = 0.9
	}
	if h.MinSamples <= 0 {
		h.MinSamples = 16
	}
	if h.DegradedFactor <= 0 {
		h.DegradedFactor = 3
	}
	if h.RecoverFactor <= 0 {
		h.RecoverFactor = 1.5
	}
	if h.ProbeEvery <= 0 {
		h.ProbeEvery = 16
	}
}

// Op classes tracked separately: a slow SSD hurts writes long before
// memory-resident GETs notice, and one-sided bypass READs bypass the
// server CPU entirely — mixing them would blur every signal.
const (
	hcGet = iota
	hcWrite
	hcBypass
	hcClasses
)

// classOfOp maps an opcode to its health class. Control-plane ops
// (OpDirQuery and friends) are unclassified: their latencies are not
// representative of serving.
func classOfOp(op protocol.Opcode) (int, bool) {
	switch op {
	case protocol.OpGet:
		return hcGet, true
	case protocol.OpSet, protocol.OpAdd, protocol.OpReplace, protocol.OpAppend,
		protocol.OpPrepend, protocol.OpCAS, protocol.OpIncr, protocol.OpDecr,
		protocol.OpDelete, protocol.OpTouch:
		return hcWrite, true
	}
	return 0, false
}

// classHealth is one (connection, op class) service-time track.
type classHealth struct {
	ewma float64 // smoothed service time, ns — the baseline peers see
	win  []float64
	pos  int
	n    int64 // lifetime samples
}

func (ch *classHealth) add(v float64, hc *HealthConfig) {
	if ch.ewma == 0 {
		ch.ewma = v
	} else {
		ch.ewma += hc.Alpha * (v - ch.ewma)
	}
	if len(ch.win) < hc.Window {
		ch.win = append(ch.win, v)
	} else {
		ch.win[ch.pos] = v
		ch.pos = (ch.pos + 1) % hc.Window
	}
	ch.n++
}

// quantile returns the windowed quantile (nearest-rank on the sorted
// window copy; the window is small by construction).
func (ch *classHealth) quantile(q float64) float64 {
	if len(ch.win) == 0 {
		return 0
	}
	tmp := append([]float64(nil), ch.win...)
	sort.Float64s(tmp)
	return tmp[int(q*float64(len(tmp)-1))]
}

// connHealth is one connection's health state. Allocated only when
// Config.Health.Enabled; a nil connHealth means "healthy, untracked".
//
// Brown-out is PER CLASS, not per connection: a coordinator whose chain
// writes crawl because its replication partner is the limping node has a
// perfectly fast GET path, and marking the whole connection degraded
// would misattribute the blame — worst case both members of a replica set
// look browned and the last-live guard pins reads onto the genuinely slow
// one. Read routing therefore consults only the read classes
// (readHealthy); a write-class brown-out is recorded and counted but
// reorders nothing, because chain writes cannot be routed around without
// giving up the replication guarantee.
type connHealth struct {
	classes [hcClasses]classHealth
	// browned marks the per-class brown-out state; recovery is judged on
	// the same class that tripped.
	browned [hcClasses]bool
	// probeSeq paces the probe trickle through a brown-out.
	probeSeq uint64
}

// admitProbe reports whether this otherwise-rerouted GET should go to the
// browned connection anyway, keeping its sample stream alive.
func (h *connHealth) admitProbe(hc *HealthConfig) bool {
	h.probeSeq++
	return h.probeSeq%uint64(hc.ProbeEvery) == 0
}

// readHealthy reports whether cn's RPC GET path is routable at full
// preference: untracked connections (health disabled) are always healthy.
func (cn *conn) readHealthy() bool {
	return cn.health == nil || !cn.health.browned[hcGet]
}

// noteServiceTime records one completed operation's service time on cn and
// re-evaluates its brown-out state. d is the full attempt latency as the
// client observed it (issue-to-response for RPC, resolve time for bypass).
func (c *Client) noteServiceTime(cn *conn, class int, d sim.Time) {
	h := cn.health
	if h == nil || d < 0 {
		return
	}
	hc := &c.cfg.Health
	c.Faults.Inc(metrics.CHealthSamples)
	ch := &h.classes[class]
	ch.add(float64(d), hc)
	if !h.browned[class] {
		if ch.n < int64(hc.MinSamples) {
			return
		}
		base := c.fleetBaseline(class, cn)
		if base > 0 && ch.quantile(hc.Quantile) > hc.DegradedFactor*base {
			h.browned[class] = true
			c.Faults.Inc(metrics.CBrownoutsEntered)
		}
		return
	}
	base := c.fleetBaseline(class, cn)
	if base > 0 && ch.quantile(hc.Quantile) < hc.RecoverFactor*base {
		h.browned[class] = false
		c.Faults.Inc(metrics.CBrownoutsExited)
	}
}

// fleetBaseline is the best (lowest) peer EWMA for a class across live
// tracked connections, excluding the one under judgment. Zero means no
// peer has enough samples yet — no verdict is possible, which fails safe
// (no brown-out without evidence of a faster alternative).
func (c *Client) fleetBaseline(class int, exclude *conn) float64 {
	hc := &c.cfg.Health
	best := 0.0
	for _, cn := range c.conns {
		if cn == exclude || cn.retired || cn.health == nil {
			continue
		}
		ch := &cn.health.classes[class]
		if ch.n < int64(hc.MinSamples) || ch.ewma <= 0 {
			continue
		}
		if best == 0 || ch.ewma < best {
			best = ch.ewma
		}
	}
	return best
}

// pickRead routes one GET with brown-out awareness: pick's choice stands
// unless it is browned AND the key has a healthy, breaker-admitted
// alternative replica. Single-replica sets and fully-degraded sets return
// pick's choice untouched (last-live guard), and a paced probe trickle
// still reaches the browned server so its recovery is observable.
func (c *Client) pickRead(key string) *conn {
	cn := c.pick(key)
	if cn.readHealthy() || c.cfg.Replicas <= 1 {
		return cn
	}
	set := c.replicas(key)
	if len(set) < 2 {
		return cn
	}
	if cn.health.admitProbe(&c.cfg.Health) {
		return cn
	}
	for _, id := range set {
		alt := c.conns[id]
		if alt == cn || !alt.allows() || !alt.readHealthy() {
			continue
		}
		c.Faults.Inc(metrics.CSlowRoutedGets)
		return alt
	}
	return cn
}

// readAlternative returns a healthy, breaker-admitted replica of key other
// than cur, or nil when none exists (single replica, unreplicated client,
// or a fully-degraded set — the caller then stays on cur).
func (c *Client) readAlternative(cur *conn, key string) *conn {
	if c.cfg.Replicas <= 1 {
		return nil
	}
	set := c.replicas(key)
	if len(set) < 2 {
		return nil
	}
	for _, id := range set {
		alt := c.conns[id]
		if alt != cur && alt.allows() && alt.readHealthy() {
			return alt
		}
	}
	return nil
}

// hedgeAfter adapts a GET's hedge threshold to the measured healthy
// baseline: with health tracking live, the hedge fires at DegradedFactor
// times the fleet's best GET EWMA — "longer than a healthy replica would
// plausibly take" — instead of the caller's fixed delay, clamped to
// [d/8, d] so a cold tracker or a noisy baseline can neither hedge-storm
// nor defer past the configured threshold.
func (c *Client) hedgeAfter(d sim.Time) sim.Time {
	hc := &c.cfg.Health
	if !hc.Enabled || d <= 0 {
		return d
	}
	base := c.fleetBaseline(hcGet, nil)
	if base <= 0 {
		return d
	}
	ad := sim.Time(base * hc.DegradedFactor)
	if lo := d / 8; ad < lo {
		ad = lo
	}
	if ad > d {
		ad = d
	}
	return ad
}
