package core

import (
	"errors"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// TestBatchWindowCoalesces locks the happy path: N ops issued inside a
// BeginBatch/Flush window leave as one frame — one wire send, one credit —
// and every member still completes into its own slot.
func TestBatchWindowCoalesces(t *testing.T) {
	for _, pl := range []server.Pipeline{server.Sync, server.Async} {
		r := newTestRig(rigOpts{transport: RDMA, pipeline: pl})
		c := r.client
		var reqs []*Req
		r.env.Spawn("bench", func(p *sim.Proc) {
			c.Set(p, "k", 4096, "v0", 0, 0)
			sends0, frames0 := c.Sends, c.Frames
			if err := c.BeginBatch(); err != nil {
				t.Errorf("BeginBatch: %v", err)
				return
			}
			for i := 0; i < 4; i++ {
				req, err := c.IGet(p, "k")
				if err != nil {
					t.Errorf("IGet: %v", err)
					return
				}
				reqs = append(reqs, req)
			}
			if err := c.Flush(p); err != nil {
				t.Errorf("Flush: %v", err)
				return
			}
			c.WaitAll(p, reqs)
			if got := c.Sends - sends0; got != 1 {
				t.Errorf("pipeline %v: %d wire sends for the window, want 1", pl, got)
			}
			if got := c.Frames - frames0; got != 1 {
				t.Errorf("pipeline %v: %d frames, want 1", pl, got)
			}
		})
		r.env.Run()
		if len(reqs) != 4 {
			t.Fatalf("pipeline %v: issued %d reqs", pl, len(reqs))
		}
		for i, req := range reqs {
			if err := req.Err(); err != nil {
				t.Errorf("pipeline %v: req %d: %v", pl, i, err)
			}
			if req.Value != "v0" {
				t.Errorf("pipeline %v: req %d value %v", pl, i, req.Value)
			}
		}
		if r.servers[0].Batches != 1 {
			t.Errorf("pipeline %v: server saw %d batches, want 1", pl, r.servers[0].Batches)
		}
	}
}

// TestDroppedBatchFrameRetriesAndConverges: losing a whole coalesced frame
// must look to every member like its own lost attempt — each retries under
// WithRetry and converges, even though the original send was shared.
func TestDroppedBatchFrameRetriesAndConverges(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	c := r.client
	var reqs []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		c.Set(p, "k", 4096, "v0", 0, 0)
		// Drop exactly the next client message: the BatchFrame.
		r.fabric.SetFaults(&filterInjector{pick: func(n int) bool { return n == 1 }})
		c.BeginBatch()
		for i := 0; i < 4; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithRetry(RetryPolicy{
					MaxAttempts: 3, AttemptTimeout: 100 * sim.Microsecond,
					Backoff: sim.Microsecond, Jitter: -1,
				}))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		c.Flush(p)
		c.WaitAll(p, reqs)
	})
	r.env.Run()
	for i, req := range reqs {
		if err := req.Err(); err != nil {
			t.Errorf("req %d did not converge: %v", i, err)
		}
		if req.Attempts != 2 {
			t.Errorf("req %d attempts = %d, want 2 (frame lost, retry delivered)", i, req.Attempts)
		}
	}
	if got := c.Faults.Get("retries"); got != 4 {
		t.Errorf("retries counter = %d, want 4 (one per member)", got)
	}
}

// TestCancelInsideBatchSparesSiblings: canceling one member of an in-flight
// frame tombstones only its slot; the siblings retry and complete normally.
func TestCancelInsideBatchSparesSiblings(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	c := r.client
	var reqs []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		c.Set(p, "k", 4096, "v0", 0, 0)
		// Lose the frame so the batch is still unresolved when we cancel.
		r.fabric.SetFaults(&filterInjector{pick: func(n int) bool { return n == 1 }})
		c.BeginBatch()
		for i := 0; i < 4; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithRetry(RetryPolicy{
					MaxAttempts: 3, AttemptTimeout: 200 * sim.Microsecond,
					Backoff: sim.Microsecond, Jitter: -1,
				}))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		c.Flush(p)
		p.Sleep(50 * sim.Microsecond) // frame is lost, timers not yet fired
		c.Cancel(reqs[2])
		c.WaitAll(p, reqs)
	})
	r.env.Run()
	for i, req := range reqs {
		if i == 2 {
			if !errors.Is(req.Err(), ErrCanceled) {
				t.Errorf("canceled req err = %v, want ErrCanceled", req.Err())
			}
			continue
		}
		if err := req.Err(); err != nil {
			t.Errorf("sibling %d disturbed by cancel: %v", i, err)
		}
		if req.Value != "v0" {
			t.Errorf("sibling %d value %v", i, req.Value)
		}
	}
	if got := c.Faults.Get("cancels"); got != 1 {
		t.Errorf("cancels counter = %d, want 1", got)
	}
}

// TestBatchBufferAckCoversWholeFrame: against the async server, a frame of
// WithBufferAck stores gets ONE early BufferAck that marks every member's
// buffers reusable and server-buffered.
func TestBatchBufferAckCoversWholeFrame(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	c := r.client
	var reqs []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		acks0 := r.servers[0].Acks
		c.BeginBatch()
		for i := 0; i < 4; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpSet, Key: "k", ValueSize: 4096, Value: i},
				WithBufferAck())
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		c.Flush(p)
		c.WaitAll(p, reqs)
		if got := r.servers[0].Acks - acks0; got != 1 {
			t.Errorf("server sent %d acks for the frame, want 1", got)
		}
	})
	r.env.Run()
	for i, req := range reqs {
		if err := req.Err(); err != nil {
			t.Errorf("req %d: %v", i, err)
		}
		if !req.Acked() {
			t.Errorf("req %d not marked acked by the batch-wide BufferAck", i)
		}
	}
}

// TestBatchOnIPoIBRejected: the explicit window is an RDMA feature; the
// socket path keeps libmemcached-style SetBuffering.
func TestBatchOnIPoIBRejected(t *testing.T) {
	r := newTestRig(rigOpts{transport: IPoIB})
	if err := r.client.BeginBatch(); !errors.Is(err, ErrTransport) {
		t.Errorf("BeginBatch on IPoIB = %v, want ErrTransport", err)
	}
}
