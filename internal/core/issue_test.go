package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// filterInjector drops client→server messages selected by pick (which sees
// the 1-based count of client-originated messages so far). Responses and
// acks flow untouched.
type filterInjector struct {
	pick func(n int) bool
	n    int
}

func (fi *filterInjector) Transmit(src, dst string, size int, now sim.Time) simnet.Verdict {
	if !strings.HasPrefix(src, "client") {
		return simnet.Verdict{}
	}
	fi.n++
	return simnet.Verdict{Drop: fi.pick(fi.n)}
}

func dropAllRequests() *filterInjector {
	return &filterInjector{pick: func(int) bool { return true }}
}

// TestIssueOutcomes is the table-driven outcome matrix for the unified
// issue API: success, protocol errors, deadline expiry, and retry
// convergence, each checked via Err() and the fault counters.
func TestIssueOutcomes(t *testing.T) {
	cases := []struct {
		name string
		// drop selects client messages to lose (nil = clean fabric).
		drop func(n int) bool
		// preload stores key k before the measured issue.
		preload bool
		op      Op
		opts    []IssueOption
		wantErr error
		// wantAttempts is checked when > 0.
		wantAttempts int
		wantTimeouts int64
		wantRetries  int64
	}{
		{
			name:    "clean set succeeds",
			op:      Op{Code: protocol.OpSet, Key: "k", ValueSize: 4096, Value: "v"},
			wantErr: nil,
		},
		{
			name:    "get of missing key maps to ErrNotFound",
			op:      Op{Code: protocol.OpGet, Key: "nope"},
			wantErr: ErrNotFound,
		},
		{
			name:    "add over existing key maps to ErrNotStored",
			preload: true,
			op:      Op{Code: protocol.OpAdd, Key: "k", ValueSize: 64, Value: "w"},
			wantErr: ErrNotStored,
		},
		{
			name:         "dropped request with deadline only expires",
			drop:         func(int) bool { return true },
			op:           Op{Code: protocol.OpGet, Key: "k"},
			opts:         []IssueOption{WithDeadline(200 * sim.Microsecond)},
			wantErr:      ErrDeadlineExceeded,
			wantAttempts: 1,
			wantTimeouts: 1,
		},
		{
			name:    "dropped request retries and converges",
			drop:    func(n int) bool { return n == 1 },
			preload: true,
			op:      Op{Code: protocol.OpGet, Key: "k"},
			opts: []IssueOption{WithRetry(RetryPolicy{
				MaxAttempts: 3, AttemptTimeout: 100 * sim.Microsecond,
				Backoff: sim.Microsecond, Jitter: -1,
			})},
			wantErr:      nil,
			wantAttempts: 2,
			wantRetries:  1,
		},
		{
			name: "every attempt dropped exhausts retries",
			drop: func(int) bool { return true },
			op:   Op{Code: protocol.OpGet, Key: "k"},
			opts: []IssueOption{WithRetry(RetryPolicy{
				MaxAttempts: 3, AttemptTimeout: 50 * sim.Microsecond,
				Backoff: sim.Microsecond, Jitter: -1,
			})},
			wantErr:      ErrDeadlineExceeded,
			wantAttempts: 3,
			wantTimeouts: 1,
			wantRetries:  2,
		},
		{
			name: "deadline cuts retry loop short",
			drop: func(int) bool { return true },
			op:   Op{Code: protocol.OpGet, Key: "k"},
			opts: []IssueOption{
				WithDeadline(120 * sim.Microsecond),
				WithRetry(RetryPolicy{
					MaxAttempts: 100, AttemptTimeout: 50 * sim.Microsecond,
					Backoff: sim.Microsecond, Jitter: -1,
				}),
			},
			wantErr:      ErrDeadlineExceeded,
			wantAttempts: 3, // two 50µs attempts fit; the third is cut at 120µs
			wantTimeouts: 1,
			wantRetries:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
			var req *Req
			r.env.Spawn("bench", func(p *sim.Proc) {
				if tc.preload {
					r.client.Set(p, "k", 4096, "v0", 0, 0)
				}
				if tc.drop != nil {
					r.fabric.SetFaults(&filterInjector{pick: tc.drop})
				}
				var err error
				req, err = r.client.Issue(p, tc.op, tc.opts...)
				if err != nil {
					t.Errorf("issue: %v", err)
					return
				}
				r.client.Wait(p, req)
			})
			r.env.Run()
			if req == nil {
				t.Fatal("no request issued")
			}
			if err := req.Err(); !errors.Is(err, tc.wantErr) {
				t.Errorf("Err() = %v, want %v", err, tc.wantErr)
			}
			if tc.wantAttempts > 0 && req.Attempts != tc.wantAttempts {
				t.Errorf("attempts = %d, want %d", req.Attempts, tc.wantAttempts)
			}
			if got := r.client.Faults.Get("timeouts"); got != tc.wantTimeouts {
				t.Errorf("timeouts counter = %d, want %d", got, tc.wantTimeouts)
			}
			if got := r.client.Faults.Get("retries"); got != tc.wantRetries {
				t.Errorf("retries counter = %d, want %d", got, tc.wantRetries)
			}
			if tc.wantErr == ErrDeadlineExceeded && !req.TimedOut() {
				t.Error("TimedOut() = false after deadline expiry")
			}
		})
	}
}

// A deadline must complete the request exactly once even when the guard's
// expiry races a WaitTimeout caller and a later stale response.
func TestDeadlineFiresExactlyOnce(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	var req *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.fabric.SetFaults(dropAllRequests())
		var err error
		req, err = r.client.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithDeadline(100*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		// Both the guard and this wait observe the timeout; expiry must
		// still be recorded once.
		if r.client.WaitTimeout(p, req, 100*sim.Microsecond) {
			t.Error("WaitTimeout reported completion for a dropped request")
		}
		p.Sleep(sim.Millisecond)
	})
	r.env.Run()
	if n := r.client.Faults.Get("timeouts"); n != 1 {
		t.Errorf("timeouts counter = %d, want exactly 1", n)
	}
	if !errors.Is(req.Err(), ErrDeadlineExceeded) {
		t.Errorf("Err() = %v", req.Err())
	}
	if r.client.Completed != 0 {
		t.Errorf("Completed = %d for a request that never got a response", r.client.Completed)
	}
}

// Canceling in-flight requests must return their flow-control credits:
// after filling the server's entire receive depth with doomed requests and
// canceling them, a fresh blocking op must still complete.
func TestCancelReturnsCredit(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	depth := r.servers[0].RecvDepth()
	var st protocol.Status
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.fabric.SetFaults(dropAllRequests())
		reqs := make([]*Req, 0, depth)
		for i := 0; i < depth; i++ {
			req, err := r.client.Issue(p, Op{Code: protocol.OpGet, Key: fmt.Sprintf("k%d", i)})
			if err != nil {
				t.Errorf("issue %d: %v", i, err)
				return
			}
			reqs = append(reqs, req)
		}
		p.Sleep(100 * sim.Microsecond) // let every attempt consume its credit
		for _, req := range reqs {
			r.client.Cancel(req)
		}
		for _, req := range reqs {
			if !errors.Is(req.Err(), ErrCanceled) {
				t.Errorf("Err() = %v, want ErrCanceled", req.Err())
			}
			if !req.Canceled() {
				t.Error("Canceled() = false")
			}
		}
		r.fabric.SetFaults(nil)
		// Would deadlock here if any credit leaked.
		st = r.client.Set(p, "after", 4096, "v", 0, 0)
	})
	r.env.Run()
	if st != protocol.StatusStored {
		t.Errorf("post-cancel set status %v", st)
	}
	if n := r.client.Faults.Get("cancels"); n != int64(depth) {
		t.Errorf("cancels counter = %d, want %d", n, depth)
	}
	if r.client.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (only the post-cancel set)", r.client.Completed)
	}
}

// Cancel after completion is a no-op and Err keeps the real outcome.
func TestCancelAfterDoneIsNoop(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	r.env.Spawn("bench", func(p *sim.Proc) {
		req, _ := r.client.Issue(p, Op{Code: protocol.OpSet, Key: "k", ValueSize: 512, Value: "v"})
		r.client.Wait(p, req)
		r.client.Cancel(req)
		if err := req.Err(); err != nil {
			t.Errorf("Err() = %v after post-completion cancel", err)
		}
	})
	r.env.Run()
	if n := r.client.Faults.Get("cancels"); n != 0 {
		t.Errorf("cancels counter = %d for a no-op cancel", n)
	}
}

// Failover retransmits must land on the other server and complete there —
// as a fast miss if the fallback lacks the key (cache semantics: a miss on
// the live server beats blocking on the dead one).
func TestRetryFailsOverToSecondServer(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 2})
	var req *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		req0, _ := r.client.Issue(p, Op{Code: protocol.OpSet, Key: "k", ValueSize: 512, Value: "v"})
		r.client.Wait(p, req0)
		home := req0.conn.serverID
		// Drop every request to the home server; the fallback must answer.
		r.fabric.SetFaults(&serverFilter{dst: fmt.Sprintf("server%d", home)})
		var err error
		req, err = r.client.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithRetry(RetryPolicy{
				MaxAttempts: 3, AttemptTimeout: 100 * sim.Microsecond,
				Backoff: sim.Microsecond, Jitter: -1, Failover: true,
			}))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		r.client.Wait(p, req)
	})
	r.env.Run()
	if err := req.Err(); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatalf("failover get: %v", err)
	}
	if !req.Done() {
		t.Fatal("failover get never completed")
	}
	if req.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥2", req.Attempts)
	}
	if n := r.client.Faults.Get("failovers"); n == 0 {
		t.Error("failovers counter = 0")
	}
}

// serverFilter drops client requests addressed to one server.
type serverFilter struct{ dst string }

func (sf *serverFilter) Transmit(src, dst string, size int, now sim.Time) simnet.Verdict {
	return simnet.Verdict{Drop: strings.HasPrefix(src, "client") && dst == sf.dst}
}

// A WaitAny batch with one doomed and one healthy request must return the
// healthy index first; WaitAll must drain both and surface the error.
func TestWaitAnyAndWaitAllWithFailures(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.client.Set(p, "k", 512, "v", 0, 0)
		r.fabric.SetFaults(&filterInjector{pick: func(n int) bool { return n == 1 }})
		doomed, _ := r.client.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithDeadline(300*sim.Microsecond))
		healthy, _ := r.client.Issue(p, Op{Code: protocol.OpGet, Key: "k"})
		reqs := []*Req{doomed, healthy}
		if i := r.client.WaitAny(p, reqs); i != 1 {
			t.Errorf("WaitAny = %d, want 1 (healthy request)", i)
		}
		err := r.client.WaitAll(p, reqs)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("WaitAll = %v, want ErrDeadlineExceeded", err)
		}
		for i, req := range reqs {
			if !req.Done() {
				t.Errorf("req %d not drained by WaitAll", i)
			}
		}
	})
	r.env.Run()
}

// The response to a pre-retransmit attempt must be absorbed as stale, not
// double-complete the request.
func TestLateResponseAfterRetransmitIsStale(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	var req *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.client.Set(p, "k", 512, "v", 0, 0)
		// Delay (not drop) the first request enough that the guard
		// retransmits; the original response then arrives late.
		r.fabric.SetFaults(&delayFirst{d: 500 * sim.Microsecond})
		var err error
		req, err = r.client.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithRetry(RetryPolicy{
				MaxAttempts: 2, AttemptTimeout: 100 * sim.Microsecond,
				Backoff: sim.Microsecond, Jitter: -1,
			}))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		r.client.Wait(p, req)
		p.Sleep(2 * sim.Millisecond) // let the delayed original land
	})
	r.env.Run()
	if err := req.Err(); err != nil {
		t.Fatalf("retried get: %v", err)
	}
	if req.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", req.Attempts)
	}
	if n := r.client.Faults.Get("stale-responses"); n != 1 {
		t.Errorf("stale-responses = %d, want 1 (the late original reply)", n)
	}
	if r.client.Completed != 2 { // preload set + the retried get
		t.Errorf("Completed = %d, want 2", r.client.Completed)
	}
}

// delayFirst adds a large delay to the first client request only.
type delayFirst struct {
	d sim.Time
	n int
}

func (df *delayFirst) Transmit(src, dst string, size int, now sim.Time) simnet.Verdict {
	if !strings.HasPrefix(src, "client") {
		return simnet.Verdict{}
	}
	df.n++
	if df.n == 1 {
		return simnet.Verdict{ExtraDelay: df.d}
	}
	return simnet.Verdict{}
}
