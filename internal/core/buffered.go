package core

import (
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// Default libmemcached's buffering behaviour
// (MEMCACHED_BEHAVIOR_BUFFER_REQUESTS), which the paper contrasts with its
// non-blocking extensions in Section IV-A: Set requests are queued inside
// the client and flushed when a data-returning action (a Get) arrives, when
// the queue fills, or on an explicit Flush. The crucial differences the
// paper calls out, reproduced here:
//
//   - The behaviour applies to the whole connection — every Set is deferred
//     once enabled, unlike iset/bset which coexist with blocking calls.
//   - A Get must first push out the queued Sets and wait for their
//     responses, so reads absorb the deferred write cost.
//   - There is no per-operation completion handle: nothing like
//     memcached_test/wait exists for a buffered Set.
//
// Buffered mode is an IPoIB-transport feature (it emulates classic
// libmemcached over sockets).

// bufferFlushThreshold is the queued-Set count that forces a flush, as
// libmemcached's output buffer would.
const bufferFlushThreshold = 64

// SetBuffering toggles libmemcached-style request buffering on an IPoIB
// client. Enabling on an RDMA client returns ErrTransport (use the
// non-blocking extensions there instead).
func (c *Client) SetBuffering(on bool) error {
	if c.cfg.Transport != IPoIB {
		return ErrTransport
	}
	c.buffering = on
	return nil
}

// Buffering reports whether request buffering is enabled.
func (c *Client) Buffering() bool { return c.buffering }

// BufferedSets reports Sets currently queued client-side.
func (c *Client) BufferedSets() int {
	n := 0
	for _, cn := range c.conns {
		n += len(cn.buffered)
	}
	return n
}

// bufferedSet queues the Set locally; the caller regains control (and its
// buffers — the queue copies) immediately.
func (c *Client) bufferedSet(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	cn := c.pick(key)
	p.Sleep(c.cfg.PrepCost)
	p.Sleep(memcpyTime(valueSize)) // copy into the output buffer
	c.nextID++
	cn.buffered = append(cn.buffered, &protocol.Request{
		Op: protocol.OpSet, ReqID: c.nextID, Key: key,
		ValueSize: valueSize, Value: value, Flags: flags, Expire: expire,
	})
	c.Issued++
	if len(cn.buffered) >= bufferFlushThreshold {
		c.flushConn(p, cn)
	}
	return protocol.StatusStored // libmemcached reports BUFFERED/SUCCESS
}

// FlushBuffers pushes out every queued Set and waits for the responses.
func (c *Client) FlushBuffers(p *sim.Proc) {
	for _, cn := range c.conns {
		c.flushConn(p, cn)
	}
}

// flushConn drains one connection's queue: the queued Sets leave as one
// vectored BatchFrame — a single kernel send (writev) instead of one syscall
// and stream message per op — then their responses are awaited in order. A
// queue of one skips the frame overhead and sends the bare request.
func (c *Client) flushConn(p *sim.Proc, cn *conn) {
	if len(cn.buffered) == 0 {
		return
	}
	batch := cn.buffered
	cn.buffered = nil
	t0 := p.Now()
	c.Sends++
	if len(batch) == 1 {
		cn.stream.Send(p, batch[0].WireSize(), batch[0])
	} else {
		c.nextID++
		frame := &protocol.BatchFrame{BatchID: c.nextID, Reqs: batch}
		c.Frames++
		c.FrameOps += int64(len(batch))
		cn.stream.Send(p, frame.WireSize(), frame)
	}
	for range batch {
		msg, ok := cn.stream.Recv(p)
		if !ok {
			break
		}
		resp := msg.Payload.(*protocol.Response)
		_ = resp // statuses of deferred sets are not reported per-op
		c.Completed++
	}
	c.Prof.Add(metrics.StageClientWait, p.Now()-t0)
}
