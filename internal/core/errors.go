package core

import (
	"errors"

	"hybridkv/internal/protocol"
)

// Sentinel errors for Req.Err: one Go error per operation outcome, so
// callers use errors.Is instead of switching on raw protocol.Status.
var (
	// ErrNotFound reports a Get/Delete/Incr/Decr/Touch on a missing key.
	ErrNotFound = errors.New("core: key not found")
	// ErrNotStored reports an Add on an existing key, or a
	// Replace/Append/Prepend on a missing one.
	ErrNotStored = errors.New("core: not stored")
	// ErrExists reports a CAS store with a stale token.
	ErrExists = errors.New("core: CAS token stale")
	// ErrBadValue reports Incr/Decr on a non-counter value.
	ErrBadValue = errors.New("core: value is not a counter")
	// ErrTooLarge reports a value over the server's item size limit.
	ErrTooLarge = errors.New("core: value too large")
	// ErrServer reports a generic server-side failure.
	ErrServer = errors.New("core: server error")
	// ErrDeadlineExceeded reports an operation that timed out (its deadline
	// or retry budget ran out before a response arrived).
	ErrDeadlineExceeded = errors.New("core: deadline exceeded")
	// ErrCanceled reports an operation abandoned by Cancel.
	ErrCanceled = errors.New("core: request canceled")
	// ErrRecovering reports a request rejected while the server rebuilds
	// its store from the SSD after a cold restart. WithRetry treats it as
	// retryable: guarded requests back off and retransmit instead of
	// completing with this error.
	ErrRecovering = errors.New("core: server recovering")
	// ErrBusy reports a request shed by the server's bounded-admission
	// layer: buffer memory or storage-queue depth was over the op class's
	// watermark. Retryable; the busy response's retry-after hint floors
	// the guard's next backoff.
	ErrBusy = errors.New("core: server busy")
	// ErrNoReplica reports a replicated write whose coordinator could not
	// complete the replication chain (peer replicas dead or partitioned
	// beyond the retry budget). Retryable: a later attempt — possibly
	// coordinated by another replica — may find the chain whole again. The
	// write may have landed on a subset of replicas; anti-entropy
	// reconverges them either way.
	ErrNoReplica = errors.New("core: replication chain incomplete")
	// ErrInFlight reports Err called before the operation completed.
	ErrInFlight = errors.New("core: request still in flight")
)

// statusErr maps a protocol status to its sentinel error (nil for the
// success statuses).
func statusErr(s protocol.Status) error {
	switch s {
	case protocol.StatusOK, protocol.StatusStored, protocol.StatusDeleted:
		return nil
	case protocol.StatusNotFound:
		return ErrNotFound
	case protocol.StatusNotStored:
		return ErrNotStored
	case protocol.StatusExists:
		return ErrExists
	case protocol.StatusBadValue:
		return ErrBadValue
	case protocol.StatusTooLarge:
		return ErrTooLarge
	case protocol.StatusRecovering:
		return ErrRecovering
	case protocol.StatusBusy:
		return ErrBusy
	case protocol.StatusNoReplica:
		return ErrNoReplica
	default:
		return ErrServer
	}
}

// The retryable classification used everywhere a rejection can trigger a
// retransmit — the progress engine's nudge path, the retry guard's backoff
// loop, and failover — lives in this one table so a new retryable status
// cannot be half-wired.

// RetryableStatus reports whether a response status is transient
// backpressure: the server refused the request but another attempt (after
// backoff, possibly on another replica) may succeed.
func RetryableStatus(s protocol.Status) bool {
	return s == protocol.StatusRecovering || s == protocol.StatusBusy ||
		s == protocol.StatusNoReplica
}

// Retryable reports whether err is transient: a rejection or timeout that
// WithRetry may absorb. Definite outcomes (ErrNotFound, ErrExists, ...)
// are not retryable — retrying cannot change them.
func Retryable(err error) bool {
	return errors.Is(err, ErrRecovering) || errors.Is(err, ErrBusy) ||
		errors.Is(err, ErrNoReplica) || errors.Is(err, ErrDeadlineExceeded)
}

// Err returns the operation outcome as an error: nil on success,
// ErrCanceled / ErrDeadlineExceeded for local abandonment, ErrInFlight
// before completion, and the protocol status's sentinel otherwise. A
// guarded request whose budget ran out right after a retryable rejection
// surfaces that rejection's sentinel (ErrBusy, ErrRecovering) rather than
// the generic deadline error: the caller learns *why* the attempts failed.
func (r *Req) Err() error {
	switch {
	case r.canceled:
		return ErrCanceled
	case r.timedOut:
		if r.rejected != nil {
			return r.rejected
		}
		return ErrDeadlineExceeded
	case !r.done.Fired():
		return ErrInFlight
	}
	return statusErr(r.Status)
}
