package core

import (
	"errors"

	"hybridkv/internal/protocol"
)

// Sentinel errors for Req.Err: one Go error per operation outcome, so
// callers use errors.Is instead of switching on raw protocol.Status.
var (
	// ErrNotFound reports a Get/Delete/Incr/Decr/Touch on a missing key.
	ErrNotFound = errors.New("core: key not found")
	// ErrNotStored reports an Add on an existing key, or a
	// Replace/Append/Prepend on a missing one.
	ErrNotStored = errors.New("core: not stored")
	// ErrExists reports a CAS store with a stale token.
	ErrExists = errors.New("core: CAS token stale")
	// ErrBadValue reports Incr/Decr on a non-counter value.
	ErrBadValue = errors.New("core: value is not a counter")
	// ErrTooLarge reports a value over the server's item size limit.
	ErrTooLarge = errors.New("core: value too large")
	// ErrServer reports a generic server-side failure.
	ErrServer = errors.New("core: server error")
	// ErrDeadlineExceeded reports an operation that timed out (its deadline
	// or retry budget ran out before a response arrived).
	ErrDeadlineExceeded = errors.New("core: deadline exceeded")
	// ErrCanceled reports an operation abandoned by Cancel.
	ErrCanceled = errors.New("core: request canceled")
	// ErrRecovering reports a request rejected while the server rebuilds
	// its store from the SSD after a cold restart. WithRetry treats it as
	// retryable: guarded requests back off and retransmit instead of
	// completing with this error.
	ErrRecovering = errors.New("core: server recovering")
	// ErrInFlight reports Err called before the operation completed.
	ErrInFlight = errors.New("core: request still in flight")
)

// statusErr maps a protocol status to its sentinel error (nil for the
// success statuses).
func statusErr(s protocol.Status) error {
	switch s {
	case protocol.StatusOK, protocol.StatusStored, protocol.StatusDeleted:
		return nil
	case protocol.StatusNotFound:
		return ErrNotFound
	case protocol.StatusNotStored:
		return ErrNotStored
	case protocol.StatusExists:
		return ErrExists
	case protocol.StatusBadValue:
		return ErrBadValue
	case protocol.StatusTooLarge:
		return ErrTooLarge
	case protocol.StatusRecovering:
		return ErrRecovering
	default:
		return ErrServer
	}
}

// Err returns the operation outcome as an error: nil on success,
// ErrCanceled / ErrDeadlineExceeded for local abandonment, ErrInFlight
// before completion, and the protocol status's sentinel otherwise.
func (r *Req) Err() error {
	switch {
	case r.canceled:
		return ErrCanceled
	case r.timedOut:
		return ErrDeadlineExceeded
	case !r.done.Fired():
		return ErrInFlight
	}
	return statusErr(r.Status)
}
