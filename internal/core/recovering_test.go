package core

import (
	"errors"
	"fmt"
	"testing"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// TestRetryRidesOutColdRestart: a guarded request issued while the server's
// recovery scan is running is rejected with StatusRecovering per attempt —
// each rejection nudges the guard into a prompt retransmit — and completes
// with the recovered value once the scan finishes. An unguarded request
// fails fast with ErrRecovering instead of blocking on the outage.
func TestRetryRidesOutColdRestart(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		hybrid: true, memLimit: 1 << 20, policy: hybridslab.PolicyDirect,
	})
	c := r.client
	srv := r.servers[0]
	var bare, guarded *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < 40; i++ { // 40 × 32 KB into 1 MB: most keys flush
			if st := c.Set(p, fmt.Sprintf("k%02d", i), 32<<10, i, 0, 0); st != protocol.StatusStored {
				t.Errorf("fill set %d status %v", i, st)
			}
		}
		srv.Crash()
		p.Sleep(100 * sim.Microsecond)
		srv.RestartCold()

		// Unguarded: the recovering rejection is final.
		var err error
		bare, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k00"})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, bare)

		// Guarded: rides out the whole scan.
		guarded, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k00"},
			WithRetry(RetryPolicy{
				MaxAttempts: 60, AttemptTimeout: 200 * sim.Microsecond,
				Backoff: 50 * sim.Microsecond, MaxBackoff: 400 * sim.Microsecond,
				Jitter: -1,
			}))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, guarded)
	})
	r.env.Run()

	if bare == nil || guarded == nil {
		t.Fatal("requests never issued")
	}
	if !errors.Is(bare.Err(), ErrRecovering) {
		t.Errorf("unguarded err = %v, want ErrRecovering", bare.Err())
	}
	if err := guarded.Err(); err != nil {
		t.Fatalf("guarded get did not ride out recovery: %v", err)
	}
	if guarded.Value != 0 {
		t.Errorf("guarded get value = %v, want 0 (the recovered k00)", guarded.Value)
	}
	if guarded.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥2 (at least one recovering rejection)", guarded.Attempts)
	}
	if n := c.Faults.Get("recovering"); n == 0 {
		t.Error("recovering counter = 0; nudge path never exercised")
	}
	if srv.Rejected < 2 {
		t.Errorf("server Rejected = %d, want ≥2", srv.Rejected)
	}
}

// TestCrashMidBatchFrameFailsAllMembers: a server crash while a coalesced
// BatchFrame is in flight must fail every member with the deadline sentinel
// — no member may hang or complete against the dead server — and the same
// idempotent members converge under WithRetry failover to the live replica.
func TestCrashMidBatchFrameFailsAllMembers(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 2})
	c := r.client
	var doomed, retried []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		req0, _ := c.Issue(p, Op{Code: protocol.OpSet, Key: "k", ValueSize: 4096, Value: "v"})
		c.Wait(p, req0)
		home := r.servers[req0.conn.serverID]

		// The frame is built, then its server dies before it can be served.
		c.BeginBatch()
		for i := 0; i < 4; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithDeadline(300*sim.Microsecond))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			doomed = append(doomed, req)
		}
		home.Crash()
		c.Flush(p)
		c.WaitAll(p, doomed)

		// Same shape under a guard: every member retries individually and
		// fails over to the surviving server (which answers, if only with a
		// miss — cache semantics beat blocking on the dead replica).
		c.BeginBatch()
		for i := 0; i < 4; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithRetry(RetryPolicy{
					MaxAttempts: 3, AttemptTimeout: 100 * sim.Microsecond,
					Backoff: sim.Microsecond, Jitter: -1, Failover: true,
				}))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			retried = append(retried, req)
		}
		c.Flush(p)
		c.WaitAll(p, retried)
	})
	r.env.Run()

	if len(doomed) != 4 || len(retried) != 4 {
		t.Fatalf("issued %d+%d members, want 4+4", len(doomed), len(retried))
	}
	for i, req := range doomed {
		if !errors.Is(req.Err(), ErrDeadlineExceeded) {
			t.Errorf("doomed member %d err = %v, want ErrDeadlineExceeded", i, req.Err())
		}
	}
	for i, req := range retried {
		if err := req.Err(); err != nil && !errors.Is(err, ErrNotFound) {
			t.Errorf("guarded member %d did not converge: %v", i, err)
		}
		if !req.Done() {
			t.Errorf("guarded member %d never completed", i)
		}
		if req.Attempts < 2 {
			t.Errorf("guarded member %d attempts = %d, want ≥2", i, req.Attempts)
		}
	}
	if n := c.Faults.Get("failovers"); n == 0 {
		t.Error("failovers counter = 0")
	}
}
