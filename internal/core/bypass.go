package core

import (
	"fmt"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/verbs"
)

// This file is the client half of the server-bypass GET path: GET hits are
// resolved with one-sided RDMA READs against the server's published
// directory (see internal/store/directory.go) and never touch the server
// CPU. The resolution protocol:
//
//	bootstrap — one OpDirQuery RPC per connection learns the directory
//	            geometry (single-flight, cached for the connection's life).
//	fast path — a key resolved before has a cached value-segment location;
//	            one READ fetches the snapshot, validated by its embedded
//	            digest. Value offsets are never reused, so a live matching
//	            segment at the cached offset IS the key's current value.
//	probe     — otherwise two READs: the key's directory slot, then the
//	            value segment it names, validated digest+version.
//
// Validation failures split two ways. Definitive ones — empty slot,
// foreign digest, SSD-resident flag, expiry — mean one-sided resolution
// cannot succeed and fall back to the ordinary RPC GET immediately.
// Transient ones — an odd (mid-mutation) seqlock version, version skew
// between slot and segment, a segment superseded between the two READs —
// mean a writer was mid-flight: the resolver re-probes the slot (RFP-style
// self-verifying read) within a small budget before surrendering to RPC,
// since the mutation window is hundreds of nanoseconds while the fallback
// costs a full server round trip. Either way a racing SET, eviction, or
// crash can never produce a torn or stale-after-ack value. Bypass READs
// consume no flow-control credits (they are not requests the server must
// buffer); concurrent resolvers' READs are swept into a single
// doorbell-batched post by the connection's read engine, and completions
// arrive on the otherwise-idle send CQ, drained by a dedicated demux
// engine.

// ReadPath selects how a GET is resolved; see WithReadPath.
type ReadPath int

const (
	// ReadAuto resolves via bypass when the client has it enabled
	// (Config.Bypass) and the connection's server publishes a directory;
	// otherwise plain RPC. The default.
	ReadAuto ReadPath = iota
	// ReadBypass insists on attempting bypass resolution first, re-probing
	// the directory bootstrap even after a server reported none. Validation
	// failures still fall back to RPC — correctness is never negotiable.
	ReadBypass
	// ReadRPC forces the ordinary request/response path.
	ReadRPC
)

func (rp ReadPath) String() string {
	switch rp {
	case ReadBypass:
		return "bypass"
	case ReadRPC:
		return "rpc"
	}
	return "auto"
}

// WithReadPath selects the read path for one GET (see ReadPath). Non-GET
// opcodes ignore it: only reads have a one-sided resolution.
func WithReadPath(rp ReadPath) IssueOption {
	return func(o *issueOpts) { o.readPath = rp }
}

// Bootstrap / READ-completion budgets. Generous: they only bound how long a
// resolver can be wedged by a dead fabric before falling back to RPC (whose
// own guard machinery handles the dead server).
const (
	dirQueryTimeout   = 200 * sim.Microsecond
	bypassReadTimeout = 100 * sim.Microsecond
)

// Re-probe budgets: how many transient seqlock doubts a resolver retries
// before falling back to RPC. Hot keys get a bigger budget — they are both
// the likeliest to be mid-mutation (every writer wants them too) and the
// most expensive to bounce to a server already melting under their load.
const (
	bypassProbeRetries    = 1
	bypassHotProbeRetries = 3
)

// Directory bootstrap states, per connection.
const (
	dirUnknown = iota // never asked, or last ask failed retryably
	dirReady          // geometry cached in conn.dir
	dirNone           // server answered "no directory attached"
)

// locEntry caches one key's value-segment location for the single-READ fast
// path.
type locEntry struct {
	off int64
	n   int
}

// readWait parks one resolver until its READ completion is demuxed.
type readWait struct {
	ev   *sim.Event
	comp verbs.Completion
}

// bypassEligible reports whether this Issue should resolve via bypass.
func (c *Client) bypassEligible(op Op, o *issueOpts) bool {
	if op.Code != protocol.OpGet || c.cfg.Transport != RDMA || !c.cfg.Bypass {
		return false
	}
	switch o.readPath {
	case ReadRPC:
		return false
	case ReadBypass:
		return true
	}
	// One-sided READs never touch the server CPU, so its hot-key sketch is
	// blind to bypass read heat. Route a fixed 1-in-hotSampleEvery sample of
	// auto-path GETs through RPC: the sketch sees an unbiased thumbnail of
	// the read distribution at a bounded dispatch cost.
	c.hotSampleSeq++
	if c.hotSampleSeq%hotSampleEvery == 0 {
		c.Faults.Inc(metrics.CHotSamples)
		return false
	}
	return true
}

// spawnBypass runs the resolution as its own process so Issue keeps
// iset/iget semantics (return once the operation is in flight).
func (c *Client) spawnBypass(req *Req, o issueOpts) {
	force := o.readPath == ReadBypass
	c.env.Spawn(fmt.Sprintf("client/bypass%d", req.ID), func(p *sim.Proc) {
		if !c.resolveBypass(p, req, force) {
			c.bypassFallback(p, req)
		}
	})
}

// resolveBypass attempts one-sided resolution; true means the request needs
// no fallback (completed via bypass, or already completed by racing
// guard/cancel machinery).
func (c *Client) resolveBypass(p *sim.Proc, req *Req, force bool) bool {
	cn := req.conn
	if cn.dir == nil && !c.bootstrapDir(p, cn, force) {
		return req.done.Fired()
	}
	if req.done.Fired() {
		return true
	}
	digest := protocol.KeyDigest(req.Key)

	// Fast path: single READ of the cached segment location.
	if loc, ok := cn.locs[req.Key]; ok {
		comp, ok := cn.postRead(p, cn.dir.ValMR, loc.off, loc.n)
		if req.done.Fired() {
			return true
		}
		if ok && comp.Bytes > 0 {
			if seg, isSeg := comp.Payload.(protocol.DirSegment); isSeg &&
				seg.Digest == digest && seg.Version%2 == 0 &&
				!segExpired(seg.ExpireAt, c.env.Now()) {
				c.completeBypass(p, req, &seg, true)
				return true
			}
		}
		delete(cn.locs, req.Key) // superseded: the cached location is dead
	}

	// Probe path: slot READ, then the segment it names. Transient doubts
	// (a writer mid-flight in the seqlock window) re-probe within the
	// budget; definitive ones surrender to RPC immediately.
	budget := bypassProbeRetries
	if c.isHot(digest) {
		budget = bypassHotProbeRetries
	}
	for attempt := 0; ; attempt++ {
		switch c.probeOnce(p, req, digest) {
		case probeResolved:
			return true
		case probeFallback:
			return false
		}
		if attempt >= budget {
			return false
		}
		c.Faults.Inc(metrics.CBypassReprobes)
	}
}

// probeOnce outcomes.
type probeOutcome int

const (
	probeResolved  probeOutcome = iota // request completed (bypass, or raced done)
	probeFallback                      // definitive: one-sided resolution impossible
	probeTransient                     // mutation window observed: worth re-probing
)

// probeOnce runs one slot+segment probe round for req.
func (c *Client) probeOnce(p *sim.Proc, req *Req, digest uint64) probeOutcome {
	cn := req.conn
	b := int64(digest % uint64(cn.dir.Buckets))
	comp, ok := cn.postRead(p, cn.dir.DirMR, b*protocol.DirSlotBytes, protocol.DirSlotBytes)
	if req.done.Fired() {
		return probeResolved
	}
	if !ok {
		return probeFallback // READ wedged: let the guarded RPC path cope
	}
	if comp.Bytes == 0 {
		return probeFallback // empty slot: the key is not published
	}
	slot, isSlot := comp.Payload.(protocol.DirSlot)
	if !isSlot || slot.Digest != digest || slot.SSD {
		// Foreign or colliding key, or SSD-resident: resolve via RPC.
		return probeFallback
	}
	if slot.Version%2 == 1 || slot.Off < 0 {
		return probeTransient // seqlock held: a publish is in flight
	}
	comp, ok = cn.postRead(p, cn.dir.ValMR, slot.Off, slot.Len)
	if req.done.Fired() {
		return probeResolved
	}
	if !ok {
		return probeFallback
	}
	if comp.Bytes == 0 {
		return probeTransient // segment superseded between the two READs
	}
	seg, isSeg := comp.Payload.(protocol.DirSegment)
	if !isSeg || seg.Digest != digest || seg.Version != slot.Version {
		return probeTransient // torn against a racing republish
	}
	if segExpired(seg.ExpireAt, c.env.Now()) {
		return probeFallback
	}
	cn.locs[req.Key] = locEntry{off: slot.Off, n: slot.Len}
	c.completeBypass(p, req, &seg, false)
	return probeResolved
}

func segExpired(expireAt int64, now sim.Time) bool {
	return expireAt != 0 && now >= sim.Time(expireAt)
}

// completeBypass lands a validated snapshot in the request.
func (c *Client) completeBypass(p *sim.Proc, req *Req, seg *protocol.DirSegment, fast bool) {
	p.Sleep(memcpyTime(seg.ValueSize))
	if req.done.Fired() {
		return
	}
	req.bypassed = true
	req.Status = protocol.StatusOK
	req.Value = seg.Value
	req.ValueSize = seg.ValueSize
	req.Flags = seg.Flags
	req.CAS = seg.CAS
	req.CompletedAt = p.Now()
	c.Faults.Inc(metrics.CBypassHits)
	if fast {
		c.Faults.Inc(metrics.CBypassFastPath)
	}
	req.conn.noteSuccess()
	// Bypass resolutions are their own health class: one-sided READs never
	// touch the server CPU, so their tail degrades with the fabric and the
	// host memory system, not the storage path.
	c.noteServiceTime(req.conn, hcBypass, req.CompletedAt-req.IssuedAt)
	req.done.Fire()
	req.reusable.Fire()
	c.Completed++
}

// bypassFallback hands the request to the ordinary RPC path after a failed
// resolution. The guard/hedge machinery attached at Issue time keeps
// working unchanged: the RPC attempt registered here is just the request's
// next attempt.
func (c *Client) bypassFallback(p *sim.Proc, req *Req) {
	c.Faults.Inc(metrics.CBypassFallbacks)
	if req.done.Fired() {
		return
	}
	p.Sleep(c.cfg.PrepCost)
	if req.done.Fired() {
		return
	}
	cn := req.conn
	if !cn.readHealthy() {
		// The resolving connection browned out (or surrendered because it
		// is slow): fall back onto a healthy replica's RPC path instead of
		// queueing behind the limping server, when one exists.
		if alt := c.readAlternative(cn, req.Key); alt != nil {
			c.Faults.Inc(metrics.CSlowRoutedGets)
			cn = alt
		}
	}
	c.nextID++
	c.enqueueWire(req, cn, c.wireFor(req, cn, c.nextID))
}

// bootstrapDir learns cn's directory geometry with a single-flight
// OpDirQuery RPC. force re-asks a server that previously reported no
// directory (ReadBypass semantics).
func (c *Client) bootstrapDir(p *sim.Proc, cn *conn, force bool) bool {
	for cn.dirFetch != nil {
		// Another resolver's bootstrap is in flight: share its outcome.
		p.Wait(cn.dirFetch)
	}
	switch cn.dirState {
	case dirReady:
		return true
	case dirNone:
		if !force {
			return false
		}
	}
	cn.dirFetch = c.env.NewEvent()
	defer func() {
		ev := cn.dirFetch
		cn.dirFetch = nil
		ev.Fire()
	}()
	c.Faults.Inc(metrics.CBypassBootstraps)
	qreq := c.newReq(protocol.OpDirQuery, "", cn)
	c.Issued++
	c.enqueueWire(qreq, cn, c.wireFor(qreq, cn, qreq.ID))
	if !p.WaitTimeout(qreq.done, dirQueryTimeout) {
		c.abandon(qreq.cur)
		return false
	}
	if qreq.Status != protocol.StatusOK {
		if qreq.Status == protocol.StatusNotFound {
			// Definitive: no directory attached server-side.
			cn.dirState = dirNone
		}
		return false
	}
	info, ok := qreq.Value.(*protocol.DirectoryInfo)
	if !ok {
		cn.dirState = dirNone
		return false
	}
	cn.dir = info
	cn.dirState = dirReady
	c.noteMemberEpoch(cn, info)
	c.noteHot(cn, info)
	return true
}

// noteMemberEpoch applies a directory answer's membership epoch: seeing it
// advance past what this connection last observed invalidates the location
// cache — placement learned under an older epoch must not steer one-sided
// READs. Clients with Config.Membership attached are normally invalidated
// by the subscription first; this is the wire-observable fallback.
func (c *Client) noteMemberEpoch(cn *conn, info *protocol.DirectoryInfo) {
	if info.MemberEpoch <= cn.memEpoch {
		return
	}
	cn.memEpoch = info.MemberEpoch
	if cn.locs != nil && len(cn.locs) > 0 {
		cn.locs = make(map[string]locEntry)
	}
	c.Faults.Inc(metrics.CEpochInvalidations)
}

// postRead hands one signaled one-sided READ to the connection's read
// engine and blocks until its completion arrives via the demux engine. No
// flow-control credit is consumed: the server never buffers anything for a
// READ.
func (cn *conn) postRead(p *sim.Proc, mr int, off int64, n int) (verbs.Completion, bool) {
	c := cn.c
	c.nextID++
	id := c.nextID
	w := &readWait{ev: c.env.NewEvent()}
	cn.readWaits[id] = w
	cn.readq.TryPut(verbs.SendWR{
		WRID: id, Op: verbs.OpRead, Size: n,
		RemoteMR: mr, RemoteOff: off, Signaled: true,
	})
	if !p.WaitTimeout(w.ev, bypassReadTimeout) {
		delete(cn.readWaits, id)
		return verbs.Completion{}, false
	}
	return w.comp, true
}

// readEngine sweeps queued bypass READs onto the QP: a lone READ posts as
// before (one doorbell), but when concurrent resolvers — a zipf read burst
// probing co-resident hot slots — have stacked a backlog, the whole window
// posts as one linked WR chain under a single doorbell, reusing the
// doorbell-batching idea the TX engine applies to request frames.
func (cn *conn) readEngine(p *sim.Proc) {
	c := cn.c
	for {
		wr, ok := cn.readq.Get(p)
		if !ok {
			return
		}
		wrs := append(make([]verbs.SendWR, 0, 4), wr)
		for len(wrs) < MaxBatchOps {
			next, ok := cn.readq.TryGet()
			if !ok {
				break
			}
			wrs = append(wrs, next)
		}
		c.Faults.Inc(metrics.CBypassReadDoorbells)
		c.Faults.Add(string(metrics.CBypassReads), int64(len(wrs)))
		cn.qp.PostSendList(p, wrs)
	}
}

// bypassEngine demultiplexes READ completions from the connection's send
// CQ (requests are posted unsignaled, so bypass READs are its only
// traffic) to the resolvers parked on them. Spawned only on bypass-enabled
// clients.
func (cn *conn) bypassEngine(p *sim.Proc) {
	for {
		comp := cn.sendCQ.WaitPoll(p)
		w := cn.readWaits[comp.WRID]
		if w == nil {
			continue // resolver gave up on this READ
		}
		delete(cn.readWaits, comp.WRID)
		w.comp = comp
		w.ev.Fire()
	}
}
