package core

import (
	"fmt"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/verbs"
)

// This file is the client half of the server-bypass GET path: GET hits are
// resolved with one-sided RDMA READs against the server's published
// directory (see internal/store/directory.go) and never touch the server
// CPU. The resolution protocol:
//
//	bootstrap — one OpDirQuery RPC per connection learns the directory
//	            geometry (single-flight, cached for the connection's life).
//	fast path — a key resolved before has a cached value-segment location;
//	            one READ fetches the snapshot, validated by its embedded
//	            digest. Value offsets are never reused, so a live matching
//	            segment at the cached offset IS the key's current value.
//	probe     — otherwise two READs: the key's directory slot, then the
//	            value segment it names, validated digest+version.
//
// Any validation failure — empty or mismatched slot, odd (mid-mutation)
// version, SSD-resident flag, version skew between slot and segment,
// expiry — falls back to the ordinary RPC GET, so a racing SET, eviction,
// or crash can never produce a torn or stale-after-ack value: it produces
// a fallback. Bypass READs consume no flow-control credits (they are not
// requests the server must buffer), and their completions arrive on the
// connection's otherwise-idle send CQ, drained by a dedicated demux engine.

// ReadPath selects how a GET is resolved; see WithReadPath.
type ReadPath int

const (
	// ReadAuto resolves via bypass when the client has it enabled
	// (Config.Bypass) and the connection's server publishes a directory;
	// otherwise plain RPC. The default.
	ReadAuto ReadPath = iota
	// ReadBypass insists on attempting bypass resolution first, re-probing
	// the directory bootstrap even after a server reported none. Validation
	// failures still fall back to RPC — correctness is never negotiable.
	ReadBypass
	// ReadRPC forces the ordinary request/response path.
	ReadRPC
)

func (rp ReadPath) String() string {
	switch rp {
	case ReadBypass:
		return "bypass"
	case ReadRPC:
		return "rpc"
	}
	return "auto"
}

// WithReadPath selects the read path for one GET (see ReadPath). Non-GET
// opcodes ignore it: only reads have a one-sided resolution.
func WithReadPath(rp ReadPath) IssueOption {
	return func(o *issueOpts) { o.readPath = rp }
}

// Bootstrap / READ-completion budgets. Generous: they only bound how long a
// resolver can be wedged by a dead fabric before falling back to RPC (whose
// own guard machinery handles the dead server).
const (
	dirQueryTimeout   = 200 * sim.Microsecond
	bypassReadTimeout = 100 * sim.Microsecond
)

// Directory bootstrap states, per connection.
const (
	dirUnknown = iota // never asked, or last ask failed retryably
	dirReady          // geometry cached in conn.dir
	dirNone           // server answered "no directory attached"
)

// locEntry caches one key's value-segment location for the single-READ fast
// path.
type locEntry struct {
	off int64
	n   int
}

// readWait parks one resolver until its READ completion is demuxed.
type readWait struct {
	ev   *sim.Event
	comp verbs.Completion
}

// bypassEligible reports whether this Issue should resolve via bypass.
func (c *Client) bypassEligible(op Op, o *issueOpts) bool {
	if op.Code != protocol.OpGet || c.cfg.Transport != RDMA || !c.cfg.Bypass {
		return false
	}
	return o.readPath != ReadRPC
}

// spawnBypass runs the resolution as its own process so Issue keeps
// iset/iget semantics (return once the operation is in flight).
func (c *Client) spawnBypass(req *Req, o issueOpts) {
	force := o.readPath == ReadBypass
	c.env.Spawn(fmt.Sprintf("client/bypass%d", req.ID), func(p *sim.Proc) {
		if !c.resolveBypass(p, req, force) {
			c.bypassFallback(p, req)
		}
	})
}

// resolveBypass attempts one-sided resolution; true means the request needs
// no fallback (completed via bypass, or already completed by racing
// guard/cancel machinery).
func (c *Client) resolveBypass(p *sim.Proc, req *Req, force bool) bool {
	cn := req.conn
	if cn.dir == nil && !c.bootstrapDir(p, cn, force) {
		return req.done.Fired()
	}
	if req.done.Fired() {
		return true
	}
	digest := protocol.KeyDigest(req.Key)

	// Fast path: single READ of the cached segment location.
	if loc, ok := cn.locs[req.Key]; ok {
		comp, ok := cn.postRead(p, cn.dir.ValMR, loc.off, loc.n)
		if req.done.Fired() {
			return true
		}
		if ok && comp.Bytes > 0 {
			if seg, isSeg := comp.Payload.(protocol.DirSegment); isSeg &&
				seg.Digest == digest && seg.Version%2 == 0 &&
				!segExpired(seg.ExpireAt, c.env.Now()) {
				c.completeBypass(p, req, &seg, true)
				return true
			}
		}
		delete(cn.locs, req.Key) // superseded: the cached location is dead
	}

	// Probe path: slot READ, then the segment it names.
	b := int64(digest % uint64(cn.dir.Buckets))
	comp, ok := cn.postRead(p, cn.dir.DirMR, b*protocol.DirSlotBytes, protocol.DirSlotBytes)
	if req.done.Fired() {
		return true
	}
	if !ok || comp.Bytes == 0 {
		return false // empty slot, or READ wedged
	}
	slot, isSlot := comp.Payload.(protocol.DirSlot)
	if !isSlot || slot.Digest != digest || slot.Version%2 == 1 || slot.SSD || slot.Off < 0 {
		// Foreign or colliding key, mutation in progress, or SSD-resident:
		// all resolve via RPC.
		return false
	}
	comp, ok = cn.postRead(p, cn.dir.ValMR, slot.Off, slot.Len)
	if req.done.Fired() {
		return true
	}
	if !ok || comp.Bytes == 0 {
		return false // segment superseded between the two READs
	}
	seg, isSeg := comp.Payload.(protocol.DirSegment)
	if !isSeg || seg.Digest != digest || seg.Version != slot.Version ||
		segExpired(seg.ExpireAt, c.env.Now()) {
		return false
	}
	cn.locs[req.Key] = locEntry{off: slot.Off, n: slot.Len}
	c.completeBypass(p, req, &seg, false)
	return true
}

func segExpired(expireAt int64, now sim.Time) bool {
	return expireAt != 0 && now >= sim.Time(expireAt)
}

// completeBypass lands a validated snapshot in the request.
func (c *Client) completeBypass(p *sim.Proc, req *Req, seg *protocol.DirSegment, fast bool) {
	p.Sleep(memcpyTime(seg.ValueSize))
	if req.done.Fired() {
		return
	}
	req.bypassed = true
	req.Status = protocol.StatusOK
	req.Value = seg.Value
	req.ValueSize = seg.ValueSize
	req.Flags = seg.Flags
	req.CAS = seg.CAS
	req.CompletedAt = p.Now()
	c.Faults.Inc(metrics.CBypassHits)
	if fast {
		c.Faults.Inc(metrics.CBypassFastPath)
	}
	req.conn.noteSuccess()
	req.done.Fire()
	req.reusable.Fire()
	c.Completed++
}

// bypassFallback hands the request to the ordinary RPC path after a failed
// resolution. The guard/hedge machinery attached at Issue time keeps
// working unchanged: the RPC attempt registered here is just the request's
// next attempt.
func (c *Client) bypassFallback(p *sim.Proc, req *Req) {
	c.Faults.Inc(metrics.CBypassFallbacks)
	if req.done.Fired() {
		return
	}
	p.Sleep(c.cfg.PrepCost)
	if req.done.Fired() {
		return
	}
	cn := req.conn
	c.nextID++
	c.enqueueWire(req, cn, c.wireFor(req, cn, c.nextID))
}

// bootstrapDir learns cn's directory geometry with a single-flight
// OpDirQuery RPC. force re-asks a server that previously reported no
// directory (ReadBypass semantics).
func (c *Client) bootstrapDir(p *sim.Proc, cn *conn, force bool) bool {
	for cn.dirFetch != nil {
		// Another resolver's bootstrap is in flight: share its outcome.
		p.Wait(cn.dirFetch)
	}
	switch cn.dirState {
	case dirReady:
		return true
	case dirNone:
		if !force {
			return false
		}
	}
	cn.dirFetch = c.env.NewEvent()
	defer func() {
		ev := cn.dirFetch
		cn.dirFetch = nil
		ev.Fire()
	}()
	c.Faults.Inc(metrics.CBypassBootstraps)
	qreq := c.newReq(protocol.OpDirQuery, "", cn)
	c.Issued++
	c.enqueueWire(qreq, cn, c.wireFor(qreq, cn, qreq.ID))
	if !p.WaitTimeout(qreq.done, dirQueryTimeout) {
		c.abandon(qreq.cur)
		return false
	}
	if qreq.Status != protocol.StatusOK {
		if qreq.Status == protocol.StatusNotFound {
			// Definitive: no directory attached server-side.
			cn.dirState = dirNone
		}
		return false
	}
	info, ok := qreq.Value.(*protocol.DirectoryInfo)
	if !ok {
		cn.dirState = dirNone
		return false
	}
	cn.dir = info
	cn.dirState = dirReady
	return true
}

// postRead posts one signaled one-sided READ and blocks until its
// completion arrives via the demux engine. No flow-control credit is
// consumed: the server never buffers anything for a READ.
func (cn *conn) postRead(p *sim.Proc, mr int, off int64, n int) (verbs.Completion, bool) {
	c := cn.c
	c.nextID++
	id := c.nextID
	w := &readWait{ev: c.env.NewEvent()}
	cn.readWaits[id] = w
	cn.qp.PostSend(p, verbs.SendWR{
		WRID: id, Op: verbs.OpRead, Size: n,
		RemoteMR: mr, RemoteOff: off, Signaled: true,
	})
	if !p.WaitTimeout(w.ev, bypassReadTimeout) {
		delete(cn.readWaits, id)
		return verbs.Completion{}, false
	}
	return w.comp, true
}

// bypassEngine demultiplexes READ completions from the connection's send
// CQ (requests are posted unsignaled, so bypass READs are its only
// traffic) to the resolvers parked on them. Spawned only on bypass-enabled
// clients.
func (cn *conn) bypassEngine(p *sim.Proc) {
	for {
		comp := cn.sendCQ.WaitPoll(p)
		w := cn.readWaits[comp.WRID]
		if w == nil {
			continue // resolver gave up on this READ
		}
		delete(cn.readWaits, comp.WRID)
		w.comp = comp
		w.ev.Fire()
	}
}
