package core

import "hybridkv/internal/replication"

// The ketama consistent-hash ring moved to internal/replication so the
// client runtime and the server-side replicators share one implementation
// (all parties must agree on each key's replica set). The client keeps
// using it through these thin aliases.
type ring = replication.Ring

func newRing() *ring { return replication.NewRing() }

func hashKey(s string) uint64 { return replication.HashKey(s) }
