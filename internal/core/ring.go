package core

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a ketama-style consistent-hash ring distributing keys across
// server connections: each server contributes vnodesPerServer virtual
// points; a key maps to the first point clockwise from its hash. Consistent
// hashing keeps most keys in place when the server pool changes, matching
// libmemcached's MEMCACHED_DISTRIBUTION_CONSISTENT_KETAMA.
type ring struct {
	points []ringPoint
	dirty  bool
}

type ringPoint struct {
	hash     uint64
	serverID int
}

// Real ketama derives 4 ring points from each of 40 MD5 digests per server,
// i.e. 160 points; we take two 64-bit points per digest over 80 digests.
const digestsPerServer = 80

func newRing() *ring { return &ring{} }

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: it decorrelates the structured vnode
// and key strings that make raw FNV cluster on a ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add inserts a server's virtual nodes.
func (r *ring) add(serverID int) {
	for v := 0; v < digestsPerServer; v++ {
		d := md5.Sum([]byte(fmt.Sprintf("server-%d-%d", serverID, v)))
		h1 := binary.LittleEndian.Uint64(d[0:8])
		h2 := binary.LittleEndian.Uint64(d[8:16])
		r.points = append(r.points,
			ringPoint{hash: h1, serverID: serverID},
			ringPoint{hash: h2, serverID: serverID})
	}
	r.dirty = true
}

// remove drops a server's virtual nodes.
func (r *ring) remove(serverID int) {
	out := r.points[:0]
	for _, pt := range r.points {
		if pt.serverID != serverID {
			out = append(out, pt)
		}
	}
	r.points = out
	r.dirty = true
}

func (r *ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.dirty = false
}

// pick returns the server id owning key.
func (r *ring) pick(key string) int {
	if len(r.points) == 0 {
		panic("core: empty hash ring")
	}
	if r.dirty {
		r.sortPoints()
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].serverID
}
