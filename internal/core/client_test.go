package core

import (
	"fmt"
	"math"
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/slab"
	"hybridkv/internal/store"
)

// testRig wires one client to n servers on a fresh fabric.
type testRig struct {
	env     *sim.Env
	fabric  *simnet.Fabric
	servers []*server.Server
	client  *Client
}

type rigOpts struct {
	transport Transport
	pipeline  server.Pipeline
	servers   int
	memLimit  int64
	hybrid    bool
	policy    hybridslab.IOPolicy
	// serverCfg / clientCfg optionally tweak the configs beyond the
	// defaults (overload admission, breakers, buffer sizes).
	serverCfg func(*server.Config)
	clientCfg func(*Config)
}

func newTestRig(o rigOpts) *testRig {
	if o.servers <= 0 {
		o.servers = 1
	}
	if o.memLimit <= 0 {
		o.memLimit = 64 << 20
	}
	env := sim.NewEnv()
	spec := simnet.FDRInfiniBand()
	if o.transport == IPoIB {
		spec = simnet.IPoIB()
	}
	fab := simnet.New(env, spec)
	r := &testRig{env: env, fabric: fab}
	for i := 0; i < o.servers; i++ {
		node := fab.AddNode(fmt.Sprintf("server%d", i))
		var file *pagecache.File
		if o.hybrid {
			dev := blockdev.New(env, blockdev.SATA(), 16<<30)
			file = pagecache.New(env, dev, pagecache.DefaultParams()).OpenFile(0, 8<<30)
		}
		mgr := hybridslab.New(env, hybridslab.Config{
			Slab:   slab.Config{MemLimit: o.memLimit},
			Policy: o.policy,
		}, file)
		st := store.New(env, mgr)
		scfg := server.Config{Pipeline: o.pipeline}
		if o.serverCfg != nil {
			o.serverCfg(&scfg)
		}
		var srv *server.Server
		if o.transport == RDMA {
			srv = server.NewRDMA(env, node, st, scfg)
		} else {
			srv = server.NewIPoIB(env, node, st, scfg)
		}
		srv.Start()
		r.servers = append(r.servers, srv)
	}
	cnode := fab.AddNode("client0")
	ccfg := Config{Transport: o.transport}
	if o.clientCfg != nil {
		o.clientCfg(&ccfg)
	}
	r.client = New(env, cnode, ccfg)
	for _, srv := range r.servers {
		if o.transport == RDMA {
			r.client.ConnectRDMA(srv)
		} else {
			r.client.ConnectIPoIB(srv)
		}
	}
	return r
}

func TestBlockingSetGetRDMA(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	var got any
	var size int
	var setSt, getSt protocol.Status
	var setLat, getLat sim.Time
	r.env.Spawn("bench", func(p *sim.Proc) {
		t0 := p.Now()
		setSt = r.client.Set(p, "user:1", 32*1024, "profile-1", 9, 0)
		setLat = p.Now() - t0
		t0 = p.Now()
		got, size, getSt = r.client.Get(p, "user:1")
		getLat = p.Now() - t0
	})
	r.env.Run()
	if setSt != protocol.StatusStored || getSt != protocol.StatusOK {
		t.Fatalf("statuses set=%v get=%v", setSt, getSt)
	}
	if got != "profile-1" || size != 32*1024 {
		t.Errorf("get returned (%v,%d)", got, size)
	}
	// 32KB on FDR: a handful of µs each way plus host costs.
	for _, lat := range []sim.Time{setLat, getLat} {
		if lat < 5*sim.Microsecond || lat > 60*sim.Microsecond {
			t.Errorf("blocking 32KB latency %v outside [5µs,60µs]", lat)
		}
	}
}

func TestGetMissReturnsNotFound(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	var st protocol.Status
	r.env.Spawn("bench", func(p *sim.Proc) {
		_, _, st = r.client.Get(p, "never-set")
	})
	r.env.Run()
	if st != protocol.StatusNotFound {
		t.Errorf("status %v", st)
	}
}

func TestDelete(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	var st1, st2 protocol.Status
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.client.Set(p, "k", 100, "v", 0, 0)
		st1 = r.client.Delete(p, "k")
		_, _, st2 = r.client.Get(p, "k")
	})
	r.env.Run()
	if st1 != protocol.StatusDeleted || st2 != protocol.StatusNotFound {
		t.Errorf("delete=%v get-after=%v", st1, st2)
	}
}

func TestBlockingIPoIBSlowerThanRDMA(t *testing.T) {
	measure := func(tr Transport) sim.Time {
		r := newTestRig(rigOpts{transport: tr})
		var total sim.Time
		r.env.Spawn("bench", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i)
				r.client.Set(p, key, 32*1024, i, 0, 0)
				r.client.Get(p, key)
			}
			total = p.Now() - t0
		})
		r.env.Run()
		return total
	}
	rdma, ipoib := measure(RDMA), measure(IPoIB)
	ratio := float64(ipoib) / float64(rdma)
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("IPoIB/RDMA blocking ratio %.2f, want within [2.5,8] (paper ≈3.6x)", ratio)
	}
}

func TestNonBlockingBatchCompletes(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	const n = 200
	var reqs []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			req, err := r.client.ISet(p, fmt.Sprintf("k%04d", i), 8*1024, i, 0, 0)
			if err != nil {
				t.Errorf("iset: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		r.client.WaitAll(p, reqs)
		for i := 0; i < n; i++ {
			req, _ := r.client.IGet(p, fmt.Sprintf("k%04d", i))
			reqs = append(reqs, req)
		}
		r.client.WaitAll(p, reqs[n:])
	})
	r.env.Run()
	for i, req := range reqs[:n] {
		if !req.Done() || req.Status != protocol.StatusStored {
			t.Fatalf("set %d incomplete: done=%v status=%v", i, req.Done(), req.Status)
		}
	}
	for i, req := range reqs[n:] {
		if req.Status != protocol.StatusOK || req.Value != i {
			t.Fatalf("get %d: status=%v value=%v", i, req.Status, req.Value)
		}
	}
	if r.client.Issued != 2*n || r.client.Completed != 2*n {
		t.Errorf("issued=%d completed=%d", r.client.Issued, r.client.Completed)
	}
}

func TestNonBlockingFasterThanBlocking(t *testing.T) {
	// The core claim: amortized per-op latency of pipelined iset/iget is
	// far below blocking set/get.
	const n = 200
	blocking := func() sim.Time {
		r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Sync})
		var total sim.Time
		r.env.Spawn("bench", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < n; i++ {
				r.client.Set(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
			}
			total = p.Now() - t0
		})
		r.env.Run()
		return total / n
	}()
	nonblocking := func() sim.Time {
		r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
		var total sim.Time
		r.env.Spawn("bench", func(p *sim.Proc) {
			t0 := p.Now()
			var reqs []*Req
			for i := 0; i < n; i++ {
				req, _ := r.client.ISet(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
				reqs = append(reqs, req)
			}
			r.client.WaitAll(p, reqs)
			total = p.Now() - t0
		})
		r.env.Run()
		return total / n
	}()
	if float64(blocking)/float64(nonblocking) < 2 {
		t.Errorf("blocking %v vs non-blocking %v per op: want ≥2x", blocking, nonblocking)
	}
}

func TestBSetBuffersReusableBeforeCompletion(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	var reusableAt, doneAt sim.Time
	r.env.Spawn("bench", func(p *sim.Proc) {
		req, err := r.client.BSet(p, "k", 512*1024, "big", 0, 0)
		if err != nil {
			t.Errorf("bset: %v", err)
			return
		}
		reusableAt = p.Now() // BSet returns when buffers are reusable
		r.client.Wait(p, req)
		doneAt = p.Now()
	})
	r.env.Run()
	if reusableAt <= 0 || doneAt <= reusableAt {
		t.Errorf("reusable at %v, done at %v: want 0 < reusable < done", reusableAt, doneAt)
	}
}

func TestISetReturnsBeforeDataLeavesNIC(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	var isetRet, bsetRet sim.Time
	r.env.Spawn("bench", func(p *sim.Proc) {
		t0 := p.Now()
		req, _ := r.client.ISet(p, "k1", 1<<20, "v", 0, 0)
		isetRet = p.Now() - t0
		r.client.Wait(p, req)
		t0 = p.Now()
		req2, _ := r.client.BSet(p, "k2", 1<<20, "v", 0, 0)
		bsetRet = p.Now() - t0
		r.client.Wait(p, req2)
	})
	r.env.Run()
	// 1MB serialization on FDR ≈ 175µs; iset must return in well under that.
	if isetRet > 10*sim.Microsecond {
		t.Errorf("iset returned in %v, want ≤10µs", isetRet)
	}
	if bsetRet < 100*sim.Microsecond {
		t.Errorf("bset returned in %v, want ≥100µs (waits for DMA)", bsetRet)
	}
}

func TestTestSemantics(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	r.env.Spawn("bench", func(p *sim.Proc) {
		req, _ := r.client.ISet(p, "k", 32*1024, "v", 0, 0)
		if r.client.Test(req) {
			t.Errorf("Test true immediately after issue")
		}
		for !r.client.Test(req) {
			p.Sleep(sim.Microsecond)
		}
		if req.Status != protocol.StatusStored {
			t.Errorf("status %v after completion", req.Status)
		}
	})
	r.env.Run()
}

func TestNonBlockingUnsupportedOnIPoIB(t *testing.T) {
	r := newTestRig(rigOpts{transport: IPoIB})
	r.env.Spawn("bench", func(p *sim.Proc) {
		if _, err := r.client.ISet(p, "k", 100, "v", 0, 0); err != ErrTransport {
			t.Errorf("ISet on IPoIB err=%v", err)
		}
		if _, err := r.client.IGet(p, "k"); err != ErrTransport {
			t.Errorf("IGet on IPoIB err=%v", err)
		}
		if _, err := r.client.BSet(p, "k", 100, "v", 0, 0); err != ErrTransport {
			t.Errorf("BSet on IPoIB err=%v", err)
		}
		if _, err := r.client.BGet(p, "k"); err != ErrTransport {
			t.Errorf("BGet on IPoIB err=%v", err)
		}
	})
	r.env.Run()
}

func TestMultiServerDistribution(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 4})
	const n = 2000
	r.env.Spawn("bench", func(p *sim.Proc) {
		var reqs []*Req
		for i := 0; i < n; i++ {
			req, _ := r.client.ISet(p, fmt.Sprintf("key-%05d", i), 4096, i, 0, 0)
			reqs = append(reqs, req)
		}
		r.client.WaitAll(p, reqs)
	})
	r.env.Run()
	total := int64(0)
	for i, srv := range r.servers {
		got := srv.Store().SetOps
		total += got
		frac := float64(got) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("server %d holds %.0f%% of keys; ring badly unbalanced", i, frac*100)
		}
	}
	if total != n {
		t.Errorf("servers saw %d sets, want %d", total, n)
	}
	// All keys retrievable (routing is stable).
	var wrong int
	r.env.Spawn("verify", func(p *sim.Proc) {
		for i := 0; i < n; i += 37 {
			v, _, st := r.client.Get(p, fmt.Sprintf("key-%05d", i))
			if st != protocol.StatusOK || v != i {
				wrong++
			}
		}
	})
	r.env.Run()
	if wrong != 0 {
		t.Errorf("%d keys misrouted", wrong)
	}
}

func TestCreditsBoundOutstanding(t *testing.T) {
	// A sync hybrid server with slow storage: the client may issue
	// thousands of isets; credits must bound in-flight requests without
	// deadlock, and everything must complete.
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Sync,
		memLimit: 4 << 20, hybrid: true, policy: hybridslab.PolicyDirect,
	})
	const n = 500
	var reqs []*Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			req, _ := r.client.ISet(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
			reqs = append(reqs, req)
		}
		r.client.WaitAll(p, reqs)
	})
	r.env.Run()
	for i, req := range reqs {
		if !req.Done() {
			t.Fatalf("request %d never completed (deadlock?)", i)
		}
	}
}

func TestRingBalanceAndStability(t *testing.T) {
	rg := newRing()
	for i := 0; i < 4; i++ {
		rg.Add(i)
	}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[rg.Pick(fmt.Sprintf("object-%d", i))]++
	}
	for i, c := range counts {
		frac := float64(c) / 40000
		if math.Abs(frac-0.25) > 0.12 {
			t.Errorf("server %d owns %.1f%% of keys", i, frac*100)
		}
	}
	// Consistency: removing one server must keep other keys mostly stable.
	before := make(map[int]int)
	for i := 0; i < 1000; i++ {
		before[i] = rg.Pick(fmt.Sprintf("object-%d", i))
	}
	rg.Remove(3)
	moved := 0
	for i := 0; i < 1000; i++ {
		after := rg.Pick(fmt.Sprintf("object-%d", i))
		if before[i] != 3 && after != before[i] {
			moved++
		}
	}
	if moved > 50 {
		t.Errorf("%d of ~750 stable keys moved after removing one server", moved)
	}
}

func TestClientWaitStageRecorded(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.client.Set(p, "k", 32*1024, "v", 0, 0)
	})
	r.env.Run()
	if r.client.Prof.Total("client-wait") == 0 {
		t.Errorf("client-wait stage not recorded for blocking set")
	}
}
