package core

import (
	"errors"
	"fmt"
	"testing"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// TestWaitAnyWithConcurrentCancel: Cancel fires the request's completion
// event, so a WaitAny parked on the batch must wake immediately with the
// canceled index — not deadlock waiting for a response that will never come.
func TestWaitAnyWithConcurrentCancel(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	c := r.client
	srv := r.servers[0]
	var reqs []*Req
	var woke int
	r.env.Spawn("bench", func(p *sim.Proc) {
		srv.Crash() // nothing will ever answer
		for i := 0; i < 3; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: fmt.Sprintf("k%d", i)})
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			reqs = append(reqs, req)
		}
		r.env.Spawn("canceler", func(q *sim.Proc) {
			q.Sleep(10 * sim.Microsecond)
			c.Cancel(reqs[1])
		})
		woke = c.WaitAny(p, reqs)
		for _, req := range reqs {
			c.Cancel(req) // cleanup so the sim drains
		}
	})
	r.env.Run()

	if woke != 1 {
		t.Errorf("WaitAny woke on index %d, want 1 (the canceled request)", woke)
	}
	if !errors.Is(reqs[1].Err(), ErrCanceled) {
		t.Errorf("canceled request err = %v, want ErrCanceled", reqs[1].Err())
	}
	if n := c.Faults.Get("cancels"); n != 3 {
		t.Errorf("cancels counter = %d, want 3", n)
	}
}

// TestBudgetExhaustionSurfacesBusy: a guarded SET whose every attempt is
// shed with StatusBusy must fail with ErrBusy — the last attempt's sentinel
// — not the generic deadline error, so the caller learns the server was
// saturated rather than unreachable.
func TestBudgetExhaustionSurfacesBusy(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		serverCfg: func(sc *server.Config) {
			sc.BufferBytes = 4096
			sc.Overload = server.OverloadConfig{Enabled: true}
		},
	})
	c := r.client
	var req *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		var err error
		// 8 KB value against a 4 KB buffer with a 0.5 SET watermark:
		// every attempt is over the limit and shed.
		req, err = c.Issue(p, Op{Code: protocol.OpSet, Key: "big", ValueSize: 8192, Value: "v"},
			WithRetry(RetryPolicy{
				MaxAttempts: 3, AttemptTimeout: 100 * sim.Microsecond,
				Backoff: 10 * sim.Microsecond, Jitter: -1,
			}))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, req)
	})
	r.env.Run()

	if req == nil {
		t.Fatal("request never issued")
	}
	if !errors.Is(req.Err(), ErrBusy) {
		t.Errorf("err = %v, want ErrBusy", req.Err())
	}
	if req.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", req.Attempts)
	}
	if n := c.Faults.Get("busy"); n != 3 {
		t.Errorf("busy counter = %d, want 3", n)
	}
	if r.servers[0].ShedSets != 3 {
		t.Errorf("server ShedSets = %d, want 3", r.servers[0].ShedSets)
	}
}

// TestBudgetExhaustionSurfacesRecovering: the same exhaustion against a
// server mid-recovery surfaces ErrRecovering; pure silence (a crashed
// server) still surfaces ErrDeadlineExceeded. The three exhaustion flavors
// are distinguishable.
func TestBudgetExhaustionSurfacesRecovering(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		hybrid: true, memLimit: 1 << 20, policy: hybridslab.PolicyDirect,
	})
	c := r.client
	srv := r.servers[0]
	var recovering, silent *Req
	rp := RetryPolicy{
		MaxAttempts: 2, AttemptTimeout: 50 * sim.Microsecond,
		Backoff: 5 * sim.Microsecond, Jitter: -1,
	}
	r.env.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < 40; i++ { // overcommit so the recovery scan has work
			c.Set(p, fmt.Sprintf("k%02d", i), 32<<10, i, 0, 0)
		}
		srv.Crash()
		p.Sleep(50 * sim.Microsecond)

		// Crashed and silent: deadline sentinel.
		var err error
		silent, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k00"}, WithRetry(rp))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, silent)

		// Recovering and rejecting: the rejection sentinel.
		srv.RestartCold()
		recovering, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k00"}, WithRetry(rp))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, recovering)
	})
	r.env.Run()

	if silent == nil || recovering == nil {
		t.Fatal("requests never issued")
	}
	if !errors.Is(silent.Err(), ErrDeadlineExceeded) {
		t.Errorf("silent exhaustion err = %v, want ErrDeadlineExceeded", silent.Err())
	}
	if !errors.Is(recovering.Err(), ErrRecovering) {
		t.Errorf("recovering exhaustion err = %v, want ErrRecovering", recovering.Err())
	}
}

// TestDeadlineDuringOpenBreaker: consecutive timeouts trip the per-server
// breaker; with every connection open the client still issues (degraded, to
// the home server) and the deadline expires cleanly. After restart and
// cooldown a half-open probe closes the breaker again.
func TestDeadlineDuringOpenBreaker(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		clientCfg: func(cc *Config) {
			cc.Breaker = BreakerConfig{Threshold: 2, Cooldown: 300 * sim.Microsecond}
		},
	})
	c := r.client
	srv := r.servers[0]
	var during *Req
	var probe protocol.Status
	r.env.Spawn("bench", func(p *sim.Proc) {
		if st := c.Set(p, "k", 4096, "v", 0, 0); st != protocol.StatusStored {
			t.Errorf("seed set status %v", st)
		}
		srv.Crash()
		for i := 0; i < 2; i++ { // trip the breaker: two consecutive timeouts
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithDeadline(100*sim.Microsecond))
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			c.Wait(p, req)
		}
		if n := c.Faults.Get("breaker-open"); n != 1 {
			t.Errorf("breaker-open = %d after two timeouts, want 1", n)
		}

		// Breaker open, server still down: a new deadline-guarded request
		// expires cleanly instead of wedging.
		var err error
		during, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithDeadline(100*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, during)

		// Recovery: restart, wait out the cooldown, and let the half-open
		// probe re-close the breaker.
		srv.Restart()
		p.Sleep(400 * sim.Microsecond)
		_, _, probe = c.Get(p, "k")
	})
	r.env.Run()

	if during == nil {
		t.Fatal("request never issued")
	}
	if !errors.Is(during.Err(), ErrDeadlineExceeded) {
		t.Errorf("open-breaker deadline err = %v, want ErrDeadlineExceeded", during.Err())
	}
	if probe != protocol.StatusOK {
		t.Errorf("post-recovery get status = %v, want OK", probe)
	}
	if n := c.Faults.Get("breaker-halfopen"); n == 0 {
		t.Error("no half-open probe recorded")
	}
	if n := c.Faults.Get("breaker-close"); n == 0 {
		t.Error("breaker never closed after recovery")
	}
}

// TestBreakerReroutesAroundOpenServer: with a second replica available, an
// open breaker steers new requests to the next ring server instead of the
// saturated one.
func TestBreakerReroutesAroundOpenServer(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Breaker = BreakerConfig{Threshold: 2, Cooldown: 10 * sim.Millisecond}
		},
	})
	c := r.client
	var rerouted *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		probe, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, probe)
		home := r.servers[probe.conn.serverID]
		home.Crash()
		for i := 0; i < 2; i++ {
			req, _ := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithDeadline(100*sim.Microsecond))
			c.Wait(p, req)
		}
		rerouted, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithDeadline(500*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, rerouted)
	})
	r.env.Run()

	if rerouted == nil {
		t.Fatal("request never issued")
	}
	// The live replica answers (a miss: the key was never stored there —
	// cache semantics beat wedging on the saturated home).
	if !errors.Is(rerouted.Err(), ErrNotFound) {
		t.Errorf("rerouted err = %v, want ErrNotFound from the live replica", rerouted.Err())
	}
	if n := c.Faults.Get("breaker-reroutes"); n == 0 {
		t.Error("no reroute recorded")
	}
}

// TestHedgedGetBeatsDeadServer: a hedged GET mirrors to the next ring
// server when the home replica stays silent, and the first answer — even a
// miss — completes the request well before the deadline.
func TestHedgedGetBeatsDeadServer(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 2})
	c := r.client
	var req *Req
	var took sim.Time
	r.env.Spawn("bench", func(p *sim.Proc) {
		probe, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "h"})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, probe)
		r.servers[probe.conn.serverID].Crash()

		t0 := p.Now()
		req, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "h"},
			WithDeadline(2*sim.Millisecond), WithHedge(20*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, req)
		took = p.Now() - t0
	})
	r.env.Run()

	if req == nil {
		t.Fatal("request never issued")
	}
	if !errors.Is(req.Err(), ErrNotFound) {
		t.Errorf("hedged get err = %v, want ErrNotFound (the live server's miss)", req.Err())
	}
	if took >= 2*sim.Millisecond {
		t.Errorf("hedged get took the full deadline (%v); hedge never fired", took)
	}
	if n := c.Faults.Get("hedges"); n != 1 {
		t.Errorf("hedges counter = %d, want 1", n)
	}
}

// TestHedgedGetSingleServerNoPanic: on a single-connection client there is
// no distinct replica to hedge onto, so the hedge timer must degrade to a
// no-op — no panic in failoverNext, no hedges counted — and the request
// simply runs to its deadline.
func TestHedgedGetSingleServerNoPanic(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	c := r.client
	var req *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.servers[0].Crash() // silence the only server so the hedge timer fires
		var err error
		req, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "solo"},
			WithDeadline(500*sim.Microsecond), WithHedge(20*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, req)
	})
	r.env.Run()

	if req == nil {
		t.Fatal("request never issued")
	}
	if !errors.Is(req.Err(), ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded (nowhere to hedge)", req.Err())
	}
	if n := c.Faults.Get("hedges"); n != 0 {
		t.Errorf("hedges counter = %d, want 0 on a single-server client", n)
	}
}

// TestServerAdmissionClassesAndAckedDrain: with the buffer past the SET
// watermark but under the GET watermark, new SETs shed while GETs are still
// admitted — and every SET the server acked before the squeeze completes.
func TestServerAdmissionClassesAndAckedDrain(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		hybrid: true, memLimit: 1 << 20, policy: hybridslab.PolicyDirect,
		serverCfg: func(sc *server.Config) {
			sc.BufferBytes = 128 << 10
			sc.StorageWorkers = 1
			sc.Overload = server.OverloadConfig{Enabled: true}
		},
	})
	c := r.client
	srv := r.servers[0]
	var sets []*Req
	var getReq *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		// Overcommit memory so the early keys live on the SSD.
		for i := 0; i < 40; i++ {
			if st := c.Set(p, fmt.Sprintf("k%02d", i), 32<<10, i, 0, 0); st != protocol.StatusStored {
				t.Errorf("fill set %d status %v", i, st)
			}
		}
		// Occupy the single storage worker: a salvo of direct-I/O GETs for
		// SSD-resident keys. Their wire footprint is tiny (admission cost
		// ~60 bytes each) but each costs an SSD read, so the request queue
		// backs up behind them.
		var stalls []*Req
		for i := 0; i < 8; i++ {
			req, err := c.Issue(p, Op{Code: protocol.OpGet, Key: fmt.Sprintf("k%02d", i)})
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			stalls = append(stalls, req)
		}
		// Now 12 × 32 KB acked SETs back to back. They buffer behind the
		// stalled worker, so the first two cross the 64 KB SET watermark
		// and the rest shed with StatusBusy.
		for i := 0; i < 12; i++ {
			req, err := c.Issue(p, Op{
				Code: protocol.OpSet, Key: fmt.Sprintf("s%02d", i),
				ValueSize: 32 << 10, Value: i,
			}, WithBufferAck())
			if err != nil {
				t.Errorf("issue: %v", err)
				return
			}
			sets = append(sets, req)
		}
		// A GET in the middle of the squeeze: small, under the 0.9 GET
		// watermark, admitted.
		var err error
		getReq, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k00"})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.WaitAll(p, append(append(stalls, sets...), getReq))
	})
	r.env.Run()

	if srv.ShedSets == 0 {
		t.Fatal("no SETs shed")
	}
	if srv.ShedGets != 0 {
		t.Errorf("ShedGets = %d, want 0 (GETs stay under their watermark)", srv.ShedGets)
	}
	var admitted int
	for i, req := range sets {
		switch err := req.Err(); {
		case err == nil:
			admitted++
			if !req.Acked() {
				t.Errorf("admitted set %d completed without its BufferAck", i)
			}
		case errors.Is(err, ErrBusy):
			// shed: the only other legal outcome
		default:
			t.Errorf("set %d err = %v, want nil or ErrBusy", i, err)
		}
	}
	if admitted == 0 {
		t.Fatal("every SET was shed: watermark admits nothing")
	}
	if int64(admitted)+srv.ShedSets < int64(len(sets)) {
		t.Errorf("admitted %d + shed %d < %d issued: sets vanished",
			admitted, srv.ShedSets, len(sets))
	}
	if getReq == nil || getReq.Err() != nil {
		t.Errorf("mid-squeeze GET failed: %v", getReq.Err())
	}
}

// TestHedgedGetRacesConcurrentCancel: on a replica-aware client, a hedged
// GET whose home replica is dead races a concurrent Cancel two ways. A
// cancel before the hedge threshold must stand the hedger down entirely; a
// cancel after the hedge fired but before the mirrored answer lands must
// win the completion race, with the late response absorbed as stale — no
// deadlock, no double completion, and the sim drains cleanly.
func TestHedgedGetRacesConcurrentCancel(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) { cc.Replicas = 2 },
	})
	c := r.client
	var early, late *Req
	r.env.Spawn("bench", func(p *sim.Proc) {
		probe, err := c.Issue(p, Op{Code: protocol.OpGet, Key: "hr"})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		c.Wait(p, probe)
		r.servers[probe.conn.serverID].Crash()

		// Race 1: cancel well before the hedge threshold.
		early, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "hr"},
			WithDeadline(2*sim.Millisecond), WithHedge(50*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		r.env.Spawn("cancel-early", func(q *sim.Proc) {
			q.Sleep(10 * sim.Microsecond)
			c.Cancel(early)
		})
		c.Wait(p, early)
		if n := c.Faults.Get("hedges"); n != 0 {
			t.Errorf("hedger fired despite the pre-threshold cancel (hedges = %d)", n)
		}

		// Race 2: cancel just after the hedge fires, before the live
		// replica's answer can land.
		late, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "hr"},
			WithDeadline(2*sim.Millisecond), WithHedge(20*sim.Microsecond))
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		r.env.Spawn("cancel-late", func(q *sim.Proc) {
			q.Sleep(21 * sim.Microsecond)
			c.Cancel(late)
		})
		c.Wait(p, late)
	})
	r.env.Run()

	if early == nil || late == nil {
		t.Fatal("requests never issued")
	}
	if !errors.Is(early.Err(), ErrCanceled) {
		t.Errorf("pre-threshold cancel err = %v, want ErrCanceled", early.Err())
	}
	if !errors.Is(late.Err(), ErrCanceled) {
		t.Errorf("post-hedge cancel err = %v, want ErrCanceled", late.Err())
	}
	if n := c.Faults.Get("hedges"); n != 1 {
		t.Errorf("hedges counter = %d, want exactly the post-threshold one", n)
	}
	if n := c.Faults.Get("cancels"); n != 2 {
		t.Errorf("cancels counter = %d, want 2", n)
	}
}

// TestWaitAnyAcrossReplicas: WaitAny parked over GETs in flight to distinct
// replicas wakes on whichever server answers first — here the only live
// one — while the request to the crashed replica stays pending until it is
// explicitly canceled.
func TestWaitAnyAcrossReplicas(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) { cc.Replicas = 2 },
	})
	c := r.client

	// Two keys homed on different primaries, so the two GETs go to
	// distinct replicas of the two-server set.
	var keyA, keyB string
	for i := 0; i < 64 && (keyA == "" || keyB == ""); i++ {
		k := fmt.Sprintf("wa:%02d", i)
		if c.ring.Pick(k) == 0 && keyA == "" {
			keyA = k
		}
		if c.ring.Pick(k) == 1 && keyB == "" {
			keyB = k
		}
	}
	if keyA == "" || keyB == "" {
		t.Fatal("could not find keys on both primaries")
	}

	var reqs []*Req
	woke := -1
	r.env.Spawn("bench", func(p *sim.Proc) {
		r.servers[0].Crash()
		ra, err := c.Issue(p, Op{Code: protocol.OpGet, Key: keyA})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		rb, err := c.Issue(p, Op{Code: protocol.OpGet, Key: keyB})
		if err != nil {
			t.Errorf("issue: %v", err)
			return
		}
		reqs = []*Req{ra, rb}
		woke = c.WaitAny(p, reqs)
		c.Cancel(ra) // the dead replica will never answer; drain the sim
	})
	r.env.Run()

	if woke != 1 {
		t.Fatalf("WaitAny woke on index %d, want 1 (the live replica's answer)", woke)
	}
	if reqs[0].conn.serverID == reqs[1].conn.serverID {
		t.Error("both GETs routed to the same server; the test never spanned replicas")
	}
	if !errors.Is(reqs[1].Err(), ErrNotFound) {
		t.Errorf("live replica err = %v, want ErrNotFound (clean miss)", reqs[1].Err())
	}
	if !errors.Is(reqs[0].Err(), ErrCanceled) {
		t.Errorf("dead replica err = %v, want ErrCanceled after cleanup", reqs[0].Err())
	}
}
