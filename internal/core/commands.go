package core

import (
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// This file adds the remaining libmemcached commands as blocking calls on
// both transports: memcached_add/replace/cas/append/prepend/
// incr/decr/touch, plus multi-get. The paper's non-blocking extensions
// apply to Set/Get; everything else keeps classic blocking semantics.

// do runs one blocking command round trip, building the wire request from
// the template.
func (c *Client) do(p *sim.Proc, wire *protocol.Request) *Req {
	if c.cfg.Transport == IPoIB {
		return c.ipoibDo(p, wire)
	}
	cn := c.pick(wire.Key)
	p.Sleep(c.cfg.PrepCost)
	req := c.newReq(wire.Op, wire.Key, cn)
	wire.ReqID = req.ID
	wire.RespMR = cn.respMR.LKey()
	c.enqueueWire(req, cn, wire)
	c.Issued++
	c.Wait(p, req)
	return req
}

// ipoibDo is the socket-transport command round trip.
func (c *Client) ipoibDo(p *sim.Proc, wire *protocol.Request) *Req {
	return c.ipoibDoOn(p, c.pick(wire.Key), wire)
}

// ipoibDoOn is ipoibDo against a specific connection.
func (c *Client) ipoibDoOn(p *sim.Proc, cn *conn, wire *protocol.Request) *Req {
	p.Sleep(c.cfg.PrepCost)
	req := c.newReq(wire.Op, wire.Key, cn)
	wire.ReqID = req.ID
	c.Issued++
	c.ipoibExchange(p, cn, req, wire)
	return req
}

// Add stores a value only if the key does not exist (memcached_add).
func (c *Client) Add(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpAdd, Key: key,
		ValueSize: valueSize, Value: value, Flags: flags, Expire: expire,
	}).Status
}

// Replace stores a value only if the key exists (memcached_replace).
func (c *Client) Replace(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpReplace, Key: key,
		ValueSize: valueSize, Value: value, Flags: flags, Expire: expire,
	}).Status
}

// CompareAndSet stores a value only if cas matches the item's current token
// (memcached_cas). Fetch the token with Gets.
func (c *Client) CompareAndSet(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32, cas uint64) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpCAS, Key: key, CAS: cas,
		ValueSize: valueSize, Value: value, Flags: flags, Expire: expire,
	}).Status
}

// Gets fetches a value together with its CAS token (memcached_gets).
func (c *Client) Gets(p *sim.Proc, key string) (value any, size int, cas uint64, status protocol.Status) {
	req := c.do(p, &protocol.Request{Op: protocol.OpGet, Key: key})
	return req.Value, req.ValueSize, req.CAS, req.Status
}

// Append concatenates extra bytes after the stored value (memcached_append).
func (c *Client) Append(p *sim.Proc, key string, extraSize int, extra any) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpAppend, Key: key, ValueSize: extraSize, Value: extra,
	}).Status
}

// Prepend concatenates extra bytes before the stored value
// (memcached_prepend).
func (c *Client) Prepend(p *sim.Proc, key string, extraSize int, extra any) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpPrepend, Key: key, ValueSize: extraSize, Value: extra,
	}).Status
}

// Incr adds delta to a counter and returns the new value
// (memcached_increment). Store counters with SetCounter.
func (c *Client) Incr(p *sim.Proc, key string, delta uint64) (uint64, protocol.Status) {
	req := c.do(p, &protocol.Request{Op: protocol.OpIncr, Key: key, Delta: delta})
	v, _ := req.Value.(uint64)
	return v, req.Status
}

// Decr subtracts delta from a counter, flooring at zero
// (memcached_decrement).
func (c *Client) Decr(p *sim.Proc, key string, delta uint64) (uint64, protocol.Status) {
	req := c.do(p, &protocol.Request{Op: protocol.OpDecr, Key: key, Delta: delta})
	v, _ := req.Value.(uint64)
	return v, req.Status
}

// CounterSize is the stored size of a numeric counter value.
const CounterSize = 20

// SetCounter initializes a counter key (a Set whose value is a uint64, the
// form Incr/Decr require).
func (c *Client) SetCounter(p *sim.Proc, key string, initial uint64) protocol.Status {
	return c.do(p, &protocol.Request{
		Op: protocol.OpSet, Key: key, ValueSize: CounterSize, Value: initial,
	}).Status
}

// Touch updates a key's expiration without moving data (memcached_touch).
func (c *Client) Touch(p *sim.Proc, key string, expire uint32) protocol.Status {
	return c.do(p, &protocol.Request{Op: protocol.OpTouch, Key: key, Expire: expire}).Status
}

// FlushAll invalidates every item on every connected server
// (memcached_flush). Blocking; returns the first non-OK status.
func (c *Client) FlushAll(p *sim.Proc) protocol.Status {
	out := protocol.StatusOK
	for i := range c.conns {
		cn := c.conns[i]
		var req *Req
		if c.cfg.Transport == IPoIB {
			req = c.ipoibDoOn(p, cn, &protocol.Request{Op: protocol.OpFlushAll})
		} else {
			p.Sleep(c.cfg.PrepCost)
			req = c.newReq(protocol.OpFlushAll, "", cn)
			wire := &protocol.Request{Op: protocol.OpFlushAll, ReqID: req.ID, RespMR: cn.respMR.LKey()}
			c.enqueueWire(req, cn, wire)
			c.Issued++
			c.Wait(p, req)
		}
		if req.Status != protocol.StatusOK && out == protocol.StatusOK {
			out = req.Status
		}
	}
	return out
}

// MGet fetches many keys at once (memcached_mget + fetch): on RDMA it
// issues every Get non-blockingly — the requests fan out across the server
// pool in parallel — and waits for the full batch; on IPoIB it degrades to
// sequential round trips. Results are returned in key order; missing keys
// have Status NotFound.
func (c *Client) MGet(p *sim.Proc, keys []string) []*Req {
	out := make([]*Req, 0, len(keys))
	if c.cfg.Transport == IPoIB {
		for _, k := range keys {
			out = append(out, c.ipoibDo(p, &protocol.Request{Op: protocol.OpGet, Key: k}))
		}
		return out
	}
	for _, k := range keys {
		req := c.issue(p, protocol.OpGet, k, 0, nil, 0, 0, false)
		out = append(out, req)
	}
	c.WaitAll(p, out)
	return out
}
