// Package core implements the paper's primary contribution: a
// libmemcached-style client with the proposed non-blocking API extensions
// (Section IV, Listing 1) and the enhanced runtime that supports them
// (Section V-A, Figure 3).
//
// The non-blocking surface is one descriptor API:
//
//	req, err := c.Issue(p, Op{Code: protocol.OpSet, Key: k, ...},
//	        WithBufferAck(),                  // bset/bget buffer semantics
//	        WithDeadline(5*sim.Millisecond),  // bound completion
//	        WithRetry(RetryPolicy{Failover: true}))
//
// Issue returns once the request is handed to the RDMA communication
// engine (iset/iget semantics); WithBufferAck additionally blocks until
// the key/value buffers are reusable (bset/bget). Completion is observed
// with Test / Wait / WaitTimeout / WaitDeadline / WaitAny / WaitAll, or
// abandoned with Cancel. Outcomes are read as errors: Req.Err() maps the
// protocol status plus local timeout/cancel outcomes onto sentinel errors
// (ErrNotFound, ErrDeadlineExceeded, ErrCanceled, …).
//
// API mapping from the paper's C extensions to Go:
//
//	memcached_set/get/delete → Client.Set / Client.Get / Client.Delete
//	memcached_iset/iget      → Issue(p, Op{...})            (wrappers:
//	    Client.ISet / Client.IGet; key/value buffers NOT yet reusable)
//	memcached_bset/bget      → Issue(p, Op{...}, WithBufferAck())
//	    (wrappers: Client.BSet / Client.BGet)
//	memcached_test/wait      → Client.Test / Client.Wait (+ WaitAny/WaitAll)
//	memcached_req            → Req (completion flag, response buffer,
//	    status, Err, timing)
//
// Runtime structure per connection (violet/red/green paths of Figure 3):
// a TX engine process drains an issue queue, respecting per-connection
// flow-control credits (the server's pre-posted receive depth), posts the
// work request, and fires the request's buffer-reusable event at DMA-sent
// time; a progress engine process polls the receive CQ, returns credits on
// BufferAck/Response, copies fetched values into the user's buffer, and
// fires the completion flag. Recovery runs beside them: requests issued
// with a deadline or retry policy get a guard process that expires,
// retransmits (idempotency-aware, with exponential backoff + jitter), or
// fails the operation over to another connection; every retransmission is
// a fresh attempt with a fresh wire id, and late or duplicate responses to
// old attempts are absorbed as stale.
package core

import (
	"errors"
	"fmt"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/verbs"
)

// Transport selects the wire protocol stack.
type Transport int

const (
	RDMA Transport = iota
	IPoIB
)

func (t Transport) String() string {
	if t == IPoIB {
		return "ipoib"
	}
	return "rdma"
}

// Config tunes a client.
type Config struct {
	// Transport selects RDMA verbs or IPoIB sockets.
	Transport Transport
	// MaxValue sizes the registered response region (default 1 MB + 4 KB).
	MaxValue int
	// PrepCost is the library-side cost to build a request header
	// (default 300 ns).
	PrepCost sim.Time
	// AckWanted forces BufferAcks for i-variants too; normally only
	// b-variants request acks, and sync servers ignore the flag.
	AckWanted bool
	// RecvTimeout bounds each blocking IPoIB receive (SO_RCVTIMEO); 0 waits
	// forever. On timeout the request is resent up to RecvRetries times,
	// then fails with ErrDeadlineExceeded.
	RecvTimeout sim.Time
	// RecvRetries is the resend budget per IPoIB operation when RecvTimeout
	// is set.
	RecvRetries int
	// Breaker attaches a per-server circuit breaker to every connection
	// (see BreakerConfig). Zero value = no breakers, routing unchanged.
	Breaker BreakerConfig
	// Replicas is the cluster's replication factor R. With R > 1 the
	// client routes each key within its R-member replica set: reads go to
	// the first live replica (primary first), and failover/hedging stays
	// inside the set so a rerouted request always lands on a server that
	// actually holds the key. 0 or 1 leaves routing exactly as before.
	Replicas int
	// Bypass enables the server-bypass read path: GETs resolve via
	// one-sided RDMA READs against the server's published directory (see
	// WithReadPath and internal/core/bypass.go), falling back to RPC on any
	// validation failure. RDMA transport only; requires the servers to have
	// a directory attached (server.Extensions.BypassDirectory). Zero value
	// = every GET takes the request/response path, exactly as before.
	Bypass bool
	// HotFanout routes GETs for server-detected hot keys across the key's
	// full replica set (round-robin, breaker-aware) instead of pinning them
	// to the primary, spreading a celebrity key over R servers. The hot-key
	// set piggybacks on the OpDirQuery bootstrap and is refreshed
	// periodically from issue activity; requires Bypass (the transport for
	// the hot set) and Replicas > 1 to have any effect. Safe with
	// replication: writes ack only after every replica applied, and
	// cold-recovered replicas withhold unconfirmed keys.
	HotFanout bool
	// Health attaches latency-aware health scoring to every connection
	// (see HealthConfig and health.go): per-op-class service-time tracking
	// that puts persistently slow servers in a brown-out — deprioritized
	// for GETs while a healthy replica exists, never blocked. Zero value =
	// no tracking, routing byte-identical to before.
	Health HealthConfig
	// Membership attaches the cluster's dynamic membership state machine
	// (nil for static fleets: routing is byte-identical to before). With it
	// set, replica-set routing goes through the shared epoch-versioned view
	// — during a migration that is the union of the old and new rings, so
	// failover can still reach an old owner holding a mid-handoff key — and
	// every epoch change invalidates the client's bypass location caches
	// and hot sets (a one-sided READ must never hit a moved key's stale
	// slot on the strength of a pre-transition cache).
	Membership *replication.Membership
}

func (c *Config) fill() {
	if c.MaxValue <= 0 {
		c.MaxValue = 1<<20 + 4096
	}
	if c.PrepCost <= 0 {
		c.PrepCost = 300 * sim.Nanosecond
	}
	if c.Health.Enabled {
		c.Health.fill()
	}
}

// Host-side copy bandwidth for landing fetched values in user buffers.
const memcpyBps = 8_000_000_000

func memcpyTime(size int) sim.Time {
	if size <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(memcpyBps) * float64(sim.Second))
}

// Req is the memcached_req analog: the handle for one in-flight operation.
type Req struct {
	// ID is the request id on the wire.
	ID uint64
	// Op is the issued opcode.
	Op protocol.Opcode
	// Key is the requested key.
	Key string
	// Status is valid once Done fires.
	Status protocol.Status
	// Value / ValueSize hold the fetched value for Gets once Done fires.
	Value     any
	ValueSize int
	// Flags / CAS are the item metadata from the response.
	Flags uint32
	CAS   uint64
	// IssuedAt / CompletedAt are virtual timestamps.
	IssuedAt    sim.Time
	CompletedAt sim.Time
	// Attempts counts transmissions (1 without retries).
	Attempts int

	done     *sim.Event // server response received ("completion flag")
	reusable *sim.Event // user buffers reusable
	nudge    *sim.Event // guard wakeup: attempt rejected as retryable (recovering/busy)
	c        *Client
	conn     *conn    // connection of the current attempt
	cur      *attempt // current (latest) attempt

	// retryable marks a request issued under WithRetry: a retryable
	// rejection (StatusRecovering, StatusBusy) nudges its guard instead of
	// completing the request.
	retryable bool
	// rejected is the sentinel of the current attempt's retryable
	// rejection (ErrBusy, ErrRecovering); cleared on retransmit. When the
	// retry budget runs out right after such a rejection, Err surfaces it
	// instead of the generic deadline error.
	rejected error
	// retryAfter is the server's busy hint: it floors the guard's next
	// backoff. Cleared on retransmit.
	retryAfter sim.Time

	// Outcome flags behind Err.
	timedOut bool
	canceled bool
	acked    bool // BufferAck received: the server holds the request
	bypassed bool // completed via one-sided bypass READ, no server CPU

	// Wire template retained for retransmission.
	txValueSize       int
	txValue           any
	txFlags, txExpire uint32
	txCAS, txDelta    uint64
	ackWanted         bool
}

// Done reports whether the operation has completed (memcached_test).
func (r *Req) Done() bool { return r.done.Fired() }

// TimedOut reports whether the operation ended by deadline expiry.
func (r *Req) TimedOut() bool { return r.timedOut }

// Canceled reports whether the operation was abandoned by Cancel.
func (r *Req) Canceled() bool { return r.canceled }

// Acked reports whether the server acknowledged buffering the request (a
// BufferAck arrived, individually or covering the request's whole batch).
func (r *Req) Acked() bool { return r.acked }

// Bypassed reports whether the GET resolved on the server-bypass path —
// one-sided READs, zero server CPU — rather than request/response.
func (r *Req) Bypassed() bool { return r.bypassed }

// Client is the libmemcached handle (memcached_st analog).
type Client struct {
	env *sim.Env
	cfg Config

	// RDMA mode
	dev *verbs.Device
	pd  *verbs.PD

	// IPoIB mode
	host *verbs.Host

	conns     []*conn
	ring      *ring
	nextID    uint64
	buffering bool
	batching  int // explicit BeginBatch/Flush window depth

	// Hot-key serving state (Config.HotFanout; see hotread.go): the union
	// of the per-connection hot sets, a round-robin cursor spreading hot
	// GETs across replica sets, and the issue counter that paces hot-set
	// refresh queries.
	hot          map[uint64]struct{}
	hotRR        uint64
	hotGets      uint64
	hotSampleSeq uint64 // auto-path GETs seen, for the 1-in-N RPC heat sample

	// Prof accumulates the client-side stages (client wait, miss penalty
	// is recorded by the workload driver).
	Prof *metrics.Breakdown

	// Faults counts recovery activity under the typed counters in
	// internal/metrics (metrics.CRetries, CTimeouts, …). Read individual
	// counters with Faults.Val, or take a whole snapshot with Stats.
	Faults *metrics.Counters

	// integrityStats, when set (SetIntegrityStats), supplies the
	// cluster-wide integrity counters folded into Stats.
	integrityStats func() (found, repaired, quarantined int64)

	// Stats
	Issued, Completed int64
	// Doorbell accounting: Sends counts wire sends — also the flow-control
	// credits consumed; Frames counts coalesced BatchFrames among them and
	// FrameOps the operations those frames carried.
	Sends, Frames, FrameOps int64
}

// ClientStats is a point-in-time snapshot of a client's operation and fault
// counters, taken with Client.Stats. It replaces reaching into the Faults
// counter map with string keys.
type ClientStats struct {
	// Operation flow.
	Issued, Completed       int64
	Sends, Frames, FrameOps int64
	// Recovery machinery.
	Retries, Timeouts, Cancels             int64
	Failovers, FailoverSkips, AckedRetries int64
	Hedges, HedgesSuppressed               int64
	StaleResponses                         int64
	// Server rejections.
	Busy, Recovering, NoReplica int64
	// Circuit breakers.
	BreakerOpen, BreakerHalfOpen, BreakerClose, BreakerReroutes int64
	// Server-bypass read path.
	BypassHits, BypassFastPath, BypassFallbacks, BypassBootstraps int64
	// Hot-key serving: seqlock re-probes that avoided an RPC fallback,
	// one-sided READs posted vs the doorbells they cost after coalescing,
	// hot GETs fanned out across replica sets, and hot-set refreshes.
	BypassReprobes, BypassReads, BypassReadDoorbells int64
	HotFanouts, HotRefreshes, HotSamples             int64
	// Gray-failure defense: service-time samples taken, brown-out state
	// transitions, and GETs routed around a browned connection. (Pacer
	// deferrals — the server-side half of the defense — count on the
	// replicators' counter sets under metrics.CPacerDeferrals.)
	HealthSamples                     int64
	BrownoutsEntered, BrownoutsExited int64
	SlowRoutedGets                    int64
	// Data integrity (cluster-wide, summed over the servers via the
	// integrity hook installed with SetIntegrityStats; all zero without it).
	ScrubCorruptionsFound    int64
	ScrubCorruptionsRepaired int64
	QuarantinedPages         int64
}

// SetIntegrityStats installs the hook Stats consults for the cluster-wide
// data-integrity counters: scrub-detected content divergences, repairs, and
// quarantined SSD pages. These live on the servers, not the client, so the
// harness (internal/cluster) wires a summing hook here; without one the
// integrity fields of ClientStats stay zero.
func (c *Client) SetIntegrityStats(fn func() (found, repaired, quarantined int64)) {
	c.integrityStats = fn
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	f := c.Faults
	var found, repaired, quarantined int64
	if c.integrityStats != nil {
		found, repaired, quarantined = c.integrityStats()
	}
	return ClientStats{
		ScrubCorruptionsFound:    found,
		ScrubCorruptionsRepaired: repaired,
		QuarantinedPages:         quarantined,
		Issued: c.Issued, Completed: c.Completed,
		Sends: c.Sends, Frames: c.Frames, FrameOps: c.FrameOps,
		Retries:   f.Val(metrics.CRetries),
		Timeouts:  f.Val(metrics.CTimeouts),
		Cancels:   f.Val(metrics.CCancels),
		Failovers: f.Val(metrics.CFailovers), FailoverSkips: f.Val(metrics.CFailoverSkip),
		AckedRetries: f.Val(metrics.CAckedRetries),
		Hedges:       f.Val(metrics.CHedges), HedgesSuppressed: f.Val(metrics.CHedgesSuppressed),
		StaleResponses: f.Val(metrics.CStaleResponses),
		Busy:           f.Val(metrics.CBusy),
		Recovering:     f.Val(metrics.CRecovering),
		NoReplica:      f.Val(metrics.CNoReplica),
		BreakerOpen:    f.Val(metrics.CBreakerOpen), BreakerHalfOpen: f.Val(metrics.CBreakerHalfOpen),
		BreakerClose: f.Val(metrics.CBreakerClose), BreakerReroutes: f.Val(metrics.CBreakerReroutes),
		BypassHits: f.Val(metrics.CBypassHits), BypassFastPath: f.Val(metrics.CBypassFastPath),
		BypassFallbacks: f.Val(metrics.CBypassFallbacks), BypassBootstraps: f.Val(metrics.CBypassBootstraps),
		BypassReprobes: f.Val(metrics.CBypassReprobes), BypassReads: f.Val(metrics.CBypassReads),
		BypassReadDoorbells: f.Val(metrics.CBypassReadDoorbells),
		HotFanouts:          f.Val(metrics.CHotFanouts), HotRefreshes: f.Val(metrics.CHotRefreshes),
		HotSamples:       f.Val(metrics.CHotSamples),
		HealthSamples:    f.Val(metrics.CHealthSamples),
		BrownoutsEntered: f.Val(metrics.CBrownoutsEntered), BrownoutsExited: f.Val(metrics.CBrownoutsExited),
		SlowRoutedGets: f.Val(metrics.CSlowRoutedGets),
	}
}

type conn struct {
	c        *Client
	serverID int
	// RDMA state
	qp           *verbs.QP
	sendCQ       *verbs.CQ
	recvCQ       *verbs.CQ
	respMR       *verbs.MR
	credits      *sim.Resource
	txq          *sim.Queue[*txItem]
	pending      map[uint64]*attempt
	pendingBatch map[uint64]*txBatch // in-flight coalesced frames by batch id
	window       []*txItem           // ops parked by an open BeginBatch window
	// IPoIB state
	stream   *verbs.Stream
	buffered []*protocol.Request // libmemcached-style deferred Sets
	// brk is the per-server circuit breaker (nil when Config.Breaker is
	// zero: no state, no routing change). Released on Retire.
	brk *breaker
	// health is the latency-aware health tracker (nil when Config.Health
	// is zero: no samples, no brown-outs). Released on Retire.
	health *connHealth
	// retired marks a decommissioned server's connection: it takes no new
	// traffic and its routing/bypass/breaker state has been released.
	retired bool
	// memEpoch is the last membership epoch observed on this connection's
	// directory answers; a newer one invalidates the location cache.
	memEpoch uint64
	// Bypass read-path state (Config.Bypass only; see bypass.go): the
	// bootstrapped directory geometry, the single-flight bootstrap latch,
	// resolvers parked on READ completions, and the per-key location cache
	// behind the single-READ fast path.
	dir       *protocol.DirectoryInfo
	dirState  int
	dirFetch  *sim.Event
	readWaits map[uint64]*readWait
	locs      map[string]locEntry
	// readq feeds the READ-coalescing engine: concurrent resolvers enqueue
	// WRs here and the engine sweeps the backlog under one doorbell.
	readq *sim.Queue[verbs.SendWR]
	// Hot-key state: this server's published hot set and version, and the
	// single-flight latch for in-progress refresh queries.
	hotSet     []uint64
	hotVersion uint64
	hotRefresh bool
}

// New creates a client on node. Connections are added with ConnectRDMA or
// ConnectIPoIB, one per server, before issuing operations.
func New(env *sim.Env, node *simnet.Node, cfg Config) *Client {
	cfg.fill()
	c := &Client{env: env, cfg: cfg, Prof: metrics.NewBreakdown(), Faults: metrics.NewCounters()}
	if cfg.Transport == RDMA {
		c.dev = verbs.OpenDevice(node)
		c.pd = c.dev.AllocPD()
	} else {
		c.host = verbs.NewHost(node)
	}
	c.ring = newRing()
	if cfg.Membership != nil {
		// Every epoch change — transition begin and finalize — invalidates
		// the per-connection bypass location caches and hot sets: both were
		// computed against the old placement.
		cfg.Membership.Subscribe(func(epoch uint64, final bool) {
			c.invalidatePlacement(epoch)
		})
	}
	return c
}

// replicas returns key's routing replica set: the membership's epoch-aware
// union when dynamic, the client's static ring otherwise.
func (c *Client) replicas(key string) []int {
	if c.cfg.Membership != nil {
		return c.cfg.Membership.ReplicaSet(key, c.cfg.Replicas)
	}
	return c.ring.Replicas(key, c.cfg.Replicas)
}

// invalidatePlacement drops every placement-derived cache: per-connection
// bypass location entries and hot sets, plus the hot union. Directory
// geometry (MR keys, bucket counts) stays — it is a server property, not a
// placement one, and the seqlock validation path catches individual slots
// that move afterwards.
func (c *Client) invalidatePlacement(epoch uint64) {
	for _, cn := range c.conns {
		if cn.memEpoch >= epoch {
			continue
		}
		cn.memEpoch = epoch
		if cn.locs != nil && len(cn.locs) > 0 {
			cn.locs = make(map[string]locEntry)
		}
		cn.hotSet, cn.hotVersion = nil, 0
	}
	c.rebuildHot()
	c.Faults.Inc(metrics.CEpochInvalidations)
}

// Retire releases every piece of client state held for a decommissioned
// server: the connection stops taking traffic, and its circuit breaker,
// bypass directory/location cache, and hot-set contribution are dropped —
// none of them may outlive the node they describe. The engines stay parked
// on their queues; a retired connection simply never gets new work.
func (c *Client) Retire(serverID int) {
	if serverID < 0 || serverID >= len(c.conns) {
		return
	}
	cn := c.conns[serverID]
	if cn.retired {
		return
	}
	cn.retired = true
	cn.brk = nil
	cn.health = nil
	cn.dir, cn.dirState = nil, dirNone
	if cn.locs != nil {
		cn.locs = make(map[string]locEntry)
	}
	cn.hotSet, cn.hotVersion = nil, 0
	c.rebuildHot()
	if c.cfg.Membership == nil {
		// Static-ring client: take the server out of routing ourselves (a
		// membership-backed client already routes via the shared rings).
		c.ring.Remove(serverID)
	}
	c.Faults.Inc(metrics.CRetiredConns)
}

// Env returns the simulation environment.
func (c *Client) Env() *sim.Env { return c.env }

// Conns returns the number of server connections.
func (c *Client) Conns() int { return len(c.conns) }

// ErrTransport reports an API unavailable on this transport.
var ErrTransport = errors.New("core: operation not supported on this transport")

// RDMAServer is the server-side hookup surface the client needs: it accepts
// the client's QP and states its receive depth (flow-control credits).
type RDMAServer interface {
	AcceptQP(clientQP *verbs.QP) *verbs.QP
	RecvDepth() int
}

// ConnectRDMA establishes a verbs connection to the server: creates the QP,
// registers the response region, pre-posts receives, and starts the TX and
// progress engines. Setup is free in simulated time (connection setup is
// not a measured path).
func (c *Client) ConnectRDMA(srv RDMAServer) {
	if c.cfg.Transport != RDMA {
		panic("core: ConnectRDMA on an IPoIB client")
	}
	sendCQ := c.dev.CreateCQ(0)
	recvCQ := c.dev.CreateCQ(0)
	qp := c.dev.CreateQP(sendCQ, recvCQ)
	cn := &conn{
		c:            c,
		serverID:     len(c.conns),
		qp:           qp,
		sendCQ:       sendCQ,
		recvCQ:       recvCQ,
		respMR:       c.pd.RegisterMRSetup(c.cfg.MaxValue),
		credits:      sim.NewResource(c.env, srv.RecvDepth()),
		txq:          sim.NewQueue[*txItem](c.env, 0),
		pending:      make(map[uint64]*attempt),
		pendingBatch: make(map[uint64]*txBatch),
	}
	if c.cfg.Breaker.Threshold > 0 {
		cn.brk = newBreaker(c, c.cfg.Breaker)
	}
	if c.cfg.Health.Enabled {
		cn.health = &connHealth{}
	}
	if c.cfg.Membership != nil {
		// Seed with the current epoch: learning it from the first directory
		// answer is bootstrap, not an invalidation.
		cn.memEpoch = c.cfg.Membership.Epoch()
	}
	srv.AcceptQP(qp)
	// The client consumes one local receive per inbound WRITE_IMM; keep a
	// generous pool re-posted by the progress engine.
	for i := 0; i < 2*srv.RecvDepth(); i++ {
		qp.PostRecv(verbs.RecvWR{})
	}
	c.conns = append(c.conns, cn)
	c.ring.Add(cn.serverID)
	name := fmt.Sprintf("client/conn%d", cn.serverID)
	c.env.Spawn(name+"/tx", cn.txEngine)
	c.env.Spawn(name+"/progress", cn.progressEngine)
	if c.cfg.Bypass {
		cn.readWaits = make(map[uint64]*readWait)
		cn.locs = make(map[string]locEntry)
		cn.readq = sim.NewQueue[verbs.SendWR](c.env, 0)
		c.env.Spawn(name+"/bypass", cn.bypassEngine)
		c.env.Spawn(name+"/reads", cn.readEngine)
	}
}

// IPoIBServer is the stream-transport hookup surface.
type IPoIBServer interface {
	Host() *verbs.Host
}

// ConnectIPoIB dials a default-Memcached server over the socket stack.
func (c *Client) ConnectIPoIB(srv IPoIBServer) {
	if c.cfg.Transport != IPoIB {
		panic("core: ConnectIPoIB on an RDMA client")
	}
	cn := &conn{c: c, serverID: len(c.conns), stream: c.host.Dial(srv.Host())}
	if c.cfg.Breaker.Threshold > 0 {
		cn.brk = newBreaker(c, c.cfg.Breaker)
	}
	if c.cfg.Health.Enabled {
		cn.health = &connHealth{}
	}
	c.conns = append(c.conns, cn)
	c.ring.Add(cn.serverID)
}

// pick selects the connection for a key via the ketama-style ring. With
// breakers attached, a key whose home server's breaker is open is routed
// around the saturated replica in failover-ring order; when every breaker
// is open, the home server takes the traffic anyway (failing through beats
// failing everything locally). On a replicated cluster (Config.Replicas >
// 1) the candidates are the key's replica set, primary first — any member
// can serve reads and coordinate writes, so rerouting never leaves the set.
func (c *Client) pick(key string) *conn {
	if len(c.conns) == 0 {
		panic("core: no server connections")
	}
	if c.cfg.Replicas > 1 {
		set := c.replicas(key)
		cn := c.conns[set[0]]
		if cn.allows() {
			return cn
		}
		for _, id := range set[1:] {
			if alt := c.conns[id]; alt.allows() {
				c.Faults.Inc(metrics.CBreakerReroutes)
				return alt
			}
		}
		return cn
	}
	cn := c.conns[c.ring.Pick(key)]
	if cn.allows() {
		return cn
	}
	for i := 1; i < len(c.conns); i++ {
		alt := c.conns[(cn.serverID+i)%len(c.conns)]
		if alt.allows() {
			c.Faults.Inc(metrics.CBreakerReroutes)
			return alt
		}
	}
	return cn
}

// newReq builds a request handle.
func (c *Client) newReq(op protocol.Opcode, key string, cn *conn) *Req {
	c.nextID++
	return &Req{
		ID:       c.nextID,
		Op:       op,
		Key:      key,
		c:        c,
		conn:     cn,
		done:     c.env.NewEvent(),
		reusable: c.env.NewEvent(),
		nudge:    c.env.NewEvent(),
		IssuedAt: c.env.Now(),
	}
}

// issue hands a request to the connection's TX engine (violet path).
// Internal form of Issue for the blocking wrappers.
func (c *Client) issue(p *sim.Proc, op protocol.Opcode, key string, valueSize int, value any, flags, expire uint32, ack bool) *Req {
	opts := []IssueOption(nil)
	if ack {
		opts = append(opts, WithBufferAck())
	}
	req, err := c.Issue(p, Op{
		Code: op, Key: key,
		ValueSize: valueSize, Value: value,
		Flags: flags, Expire: expire,
	}, opts...)
	if err != nil {
		panic("core: issue on non-RDMA transport")
	}
	return req
}

// --- Non-blocking API extensions (Listing 1) ---
//
// These are thin wrappers over Issue, kept for source compatibility with
// the paper's iset/iget/bset/bget names.

// ISet issues a non-blocking Set. The key/value buffers must NOT be reused
// until Wait/Test report completion (memcached_iset).
func (c *Client) ISet(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) (*Req, error) {
	return c.Issue(p, Op{Code: protocol.OpSet, Key: key, ValueSize: valueSize, Value: value, Flags: flags, Expire: expire})
}

// IGet issues a non-blocking Get. The key buffer must NOT be reused until
// Wait/Test report completion (memcached_iget).
func (c *Client) IGet(p *sim.Proc, key string) (*Req, error) {
	return c.Issue(p, Op{Code: protocol.OpGet, Key: key})
}

// BSet issues a non-blocking Set and returns once the key/value buffers are
// reusable (memcached_bset): when the value has left the NIC, or — against
// an async server — when the server acknowledges it is buffered.
func (c *Client) BSet(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) (*Req, error) {
	return c.Issue(p, Op{Code: protocol.OpSet, Key: key, ValueSize: valueSize, Value: value, Flags: flags, Expire: expire}, WithBufferAck())
}

// BGet issues a non-blocking Get and returns once the key buffer is
// reusable (memcached_bget).
func (c *Client) BGet(p *sim.Proc, key string) (*Req, error) {
	return c.Issue(p, Op{Code: protocol.OpGet, Key: key}, WithBufferAck())
}

// Test reports whether the operation has completed without blocking
// (memcached_test).
func (c *Client) Test(req *Req) bool { return req.done.Fired() }

// Wait blocks until the operation completes (memcached_wait) and records
// the blocked duration as the client-wait stage.
func (c *Client) Wait(p *sim.Proc, req *Req) {
	t0 := p.Now()
	p.Wait(req.done)
	c.Prof.Add(metrics.StageClientWait, p.Now()-t0)
}

// WaitTimeout waits up to d of virtual time for the operation. On timeout
// the request completes locally with ErrDeadlineExceeded (its flow-control
// credit is reclaimed) and false is returned.
func (c *Client) WaitTimeout(p *sim.Proc, req *Req, d sim.Time) bool {
	t0 := p.Now()
	ok := p.WaitTimeout(req.done, d)
	c.Prof.Add(metrics.StageClientWait, p.Now()-t0)
	if !ok {
		c.expire(req)
	}
	return ok
}

// WaitDeadline is WaitTimeout against an absolute virtual time.
func (c *Client) WaitDeadline(p *sim.Proc, req *Req, at sim.Time) bool {
	return c.WaitTimeout(p, req, at-p.Now())
}

// WaitAny blocks until any request in the batch completes and returns its
// index (first-completed dispatch for overlap patterns).
func (c *Client) WaitAny(p *sim.Proc, reqs []*Req) int {
	if len(reqs) == 0 {
		return -1
	}
	t0 := p.Now()
	evs := make([]*sim.Event, len(reqs))
	for i, r := range reqs {
		evs[i] = r.done
	}
	i := p.WaitAny(evs...)
	c.Prof.Add(metrics.StageClientWait, p.Now()-t0)
	return i
}

// WaitAll waits for a batch of requests (block-by-block completion of the
// bursty I/O pattern). Every request is drained even when one fails; the
// first non-nil Err in batch order is returned.
func (c *Client) WaitAll(p *sim.Proc, reqs []*Req) error {
	var first error
	for _, r := range reqs {
		c.Wait(p, r)
		if err := r.Err(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- Blocking API (default libmemcached semantics) ---

// Set stores a value and blocks for the server's reply (memcached_set).
// With buffering enabled (SetBuffering), the Set is deferred client-side
// instead, as classic libmemcached does.
func (c *Client) Set(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	if c.cfg.Transport == IPoIB {
		if c.buffering {
			return c.bufferedSet(p, key, valueSize, value, flags, expire)
		}
		return c.ipoibRoundTrip(p, protocol.OpSet, key, valueSize, value, flags, expire).Status
	}
	req := c.issue(p, protocol.OpSet, key, valueSize, value, flags, expire, false)
	c.Wait(p, req)
	return req.Status
}

// Get fetches a value and blocks for the reply (memcached_get). With
// buffering enabled, the Get first pushes out the queued Sets — the
// overhead the paper's Section IV-A attributes to the behaviour-based mode.
func (c *Client) Get(p *sim.Proc, key string) (value any, size int, status protocol.Status) {
	if c.cfg.Transport == IPoIB {
		if c.buffering {
			c.flushConn(p, c.pick(key))
		}
		r := c.ipoibRoundTrip(p, protocol.OpGet, key, 0, nil, 0, 0)
		return r.Value, r.ValueSize, r.Status
	}
	req := c.issue(p, protocol.OpGet, key, 0, nil, 0, 0, false)
	c.Wait(p, req)
	return req.Value, req.ValueSize, req.Status
}

// Delete removes a key and blocks for the reply (memcached_delete).
func (c *Client) Delete(p *sim.Proc, key string) protocol.Status {
	if c.cfg.Transport == IPoIB {
		return c.ipoibRoundTrip(p, protocol.OpDelete, key, 0, nil, 0, 0).Status
	}
	req := c.issue(p, protocol.OpDelete, key, 0, nil, 0, 0, false)
	c.Wait(p, req)
	return req.Status
}

// ipoibRoundTrip performs one blocking request/response over the socket
// stack: the send blocks for the kernel copy (buffers reusable on return),
// then the client waits for the reply — bounded by Config.RecvTimeout when
// set, resending up to Config.RecvRetries times before failing with
// ErrDeadlineExceeded.
func (c *Client) ipoibRoundTrip(p *sim.Proc, op protocol.Opcode, key string, valueSize int, value any, flags, expire uint32) *Req {
	var cn *conn
	if op == protocol.OpGet {
		cn = c.pickRead(key) // brown-out aware; identical to pick when untracked
	} else {
		cn = c.pick(key)
	}
	p.Sleep(c.cfg.PrepCost)
	req := c.newReq(op, key, cn)
	wire := &protocol.Request{
		Op: op, ReqID: req.ID, Key: key,
		Flags: flags, Expire: expire,
		ValueSize: valueSize, Value: value,
	}
	c.Issued++
	c.ipoibExchange(p, cn, req, wire)
	return req
}

// ipoibExchange sends wire on cn and fills req from the matching reply,
// applying the socket-path timeout/resend policy. Shared by the blocking
// API and the command helpers.
func (c *Client) ipoibExchange(p *sim.Proc, cn *conn, req *Req, wire *protocol.Request) {
	req.Attempts = 1
	c.Sends++
	cn.stream.Send(p, wire.WireSize(), wire)
	t0 := p.Now()
	for {
		var msg verbs.StreamMsg
		var ok, timedOut bool
		if c.cfg.RecvTimeout > 0 {
			msg, ok, timedOut = cn.stream.RecvTimeout(p, c.cfg.RecvTimeout)
		} else {
			msg, ok = cn.stream.Recv(p)
		}
		if timedOut {
			if req.Attempts <= c.cfg.RecvRetries {
				req.Attempts++
				c.Faults.Inc(metrics.CRetries)
				c.Sends++
				cn.stream.Send(p, wire.WireSize(), wire)
				continue
			}
			req.timedOut = true
			req.Status = protocol.StatusError
			c.Faults.Inc(metrics.CTimeouts)
			cn.noteFailure()
			break
		}
		if !ok {
			req.Status = protocol.StatusError
			break
		}
		resp := msg.Payload.(*protocol.Response)
		if resp.ReqID != req.ID {
			continue // stale reply from an abandoned request
		}
		cn.noteSuccess()
		if class, ok := classOfOp(req.Op); ok {
			c.noteServiceTime(cn, class, p.Now()-t0)
		}
		p.Sleep(memcpyTime(resp.ValueSize))
		req.Status = resp.Status
		req.Value = resp.Value
		req.ValueSize = resp.ValueSize
		req.Flags = resp.Flags
		req.CAS = resp.CAS
		break
	}
	c.Prof.Add(metrics.StageClientWait, p.Now()-t0)
	req.CompletedAt = p.Now()
	req.done.Fire()
	req.reusable.Fire()
	c.Completed++
}
