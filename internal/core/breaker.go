package core

import (
	"hybridkv/internal/metrics"
	"hybridkv/internal/sim"
)

// Per-server circuit breaker. A connection whose server answers consecutive
// busy rejections or attempt timeouts trips open: pick() then routes its
// keys around the saturated replica via the failover ring instead of
// feeding it more load. After a cooldown the breaker half-opens and admits
// a single probe request; a real response re-closes it, another failure
// re-opens it. State transitions are counted in Client.Faults
// (metrics.CBreakerOpen, CBreakerHalfOpen, CBreakerClose) and reroutes in
// CBreakerReroutes.

// BreakerConfig configures the per-connection circuit breaker. The zero
// value disables it entirely: no breaker is attached and routing is
// byte-identical to a breaker-less client.
type BreakerConfig struct {
	// Threshold opens the breaker after this many consecutive busy
	// rejections or attempt timeouts from one server (0 disables).
	Threshold int
	// Cooldown is how long an open breaker deflects traffic before
	// half-opening to admit one probe (default 1 ms).
	Cooldown sim.Time
}

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

type breaker struct {
	c        *Client
	cfg      BreakerConfig
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt sim.Time
	probing  bool // half-open: the single probe is in flight
}

func newBreaker(c *Client, cfg BreakerConfig) *breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = sim.Millisecond
	}
	return &breaker{c: c, cfg: cfg}
}

// allow reports whether new traffic may be sent to this server, moving an
// open breaker to half-open (single probe) once the cooldown has elapsed.
func (b *breaker) allow() bool {
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if b.c.env.Now()-b.openedAt < b.cfg.Cooldown {
			return false
		}
		b.state = bkHalfOpen
		b.probing = true
		b.c.Faults.Inc(metrics.CBreakerHalfOpen)
		return true
	default: // half-open: exactly one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a real response: the server is serving, so any
// half-open probe (or lingering failure streak) resets to closed.
func (b *breaker) onSuccess() {
	if b.state != bkClosed {
		b.c.Faults.Inc(metrics.CBreakerClose)
	}
	b.state = bkClosed
	b.fails = 0
	b.probing = false
}

// onFailure records a busy rejection or attempt timeout. A failed half-open
// probe re-opens immediately; while closed, Threshold consecutive failures
// trip the breaker.
func (b *breaker) onFailure() {
	switch b.state {
	case bkHalfOpen:
		b.trip()
	case bkClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	}
}

func (b *breaker) trip() {
	b.state = bkOpen
	b.openedAt = b.c.env.Now()
	b.fails = 0
	b.probing = false
	b.c.Faults.Inc(metrics.CBreakerOpen)
}

// noteSuccess / noteFailure feed the connection's breaker, if one is
// attached. Kept on conn so every caller tolerates a disabled breaker.
func (cn *conn) noteSuccess() {
	if cn.brk != nil {
		cn.brk.onSuccess()
	}
}

func (cn *conn) noteFailure() {
	if cn.brk != nil {
		cn.brk.onFailure()
	}
}

// allows reports whether cn accepts new traffic: not retired, and no
// breaker (or the breaker lets it through).
func (cn *conn) allows() bool {
	if cn.retired {
		return false
	}
	return cn.brk == nil || cn.brk.allow()
}
