package core

import (
	"fmt"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// This file is the client half of hot-key serving: servers detect their
// hottest keys with a space-saving sketch (internal/store/hotkeys.go) and
// publish the digests on the OpDirQuery bootstrap; the client unions the
// per-server sets and, with Config.HotFanout on a replicated cluster,
// routes hot GETs round-robin across the key's whole replica set instead
// of pinning them to the primary. Consistency holds because replicated
// writes ack only after every replica applied (chain forwarding), and a
// cold-recovered replica withholds unconfirmed keys from both its RPC path
// (suspect gating) and its bypass directory (republish is deferred until
// confirmation) — so any replica a hot GET lands on serves a value at
// least as new as the last acked write.

// hotRefreshEvery paces hot-set refresh: one piggybacked OpDirQuery per
// this many bypass-eligible GETs per client. Ops-triggered, never a timer:
// an idle client learns nothing and costs nothing, and the simulation's
// Run still drains.
const hotRefreshEvery = 256

// hotSampleEvery routes every Nth auto-path GET via RPC instead of bypass,
// feeding the server-side sketch a read-heat sample the one-sided path would
// otherwise hide (see bypassEligible).
const hotSampleEvery = 64

// noteHot installs a server's published hot set on its connection and
// rebuilds the client's union. Sets shrink as keys cool, so the union is
// recomputed from scratch rather than accumulated.
func (c *Client) noteHot(cn *conn, info *protocol.DirectoryInfo) {
	if info.HotVersion == cn.hotVersion && len(info.Hot) == len(cn.hotSet) {
		return
	}
	cn.hotSet = info.Hot
	cn.hotVersion = info.HotVersion
	c.rebuildHot()
}

// rebuildHot recomputes the hot-set union from the per-connection sets.
// Sets shrink as keys cool (and vanish on retire/epoch invalidation), so
// the union is rebuilt from scratch rather than accumulated.
func (c *Client) rebuildHot() {
	union := make(map[uint64]struct{})
	for _, other := range c.conns {
		for _, d := range other.hotSet {
			union[d] = struct{}{}
		}
	}
	c.hot = union
}

// isHot reports whether a key digest is in the client's current hot set.
func (c *Client) isHot(digest uint64) bool {
	if len(c.hot) == 0 {
		return false
	}
	_, ok := c.hot[digest]
	return ok
}

// pickGet routes one GET: hot keys on a fanout-enabled replicated client
// spread round-robin across the key's replica set (breaker- and
// health-aware, like pick/pickRead); everything else routes as pickRead
// does — pick's choice, unless it is browned and a healthy replica
// exists. With health tracking off, healthy() is uniformly true and both
// paths are byte-identical to the pre-health client.
func (c *Client) pickGet(key string) *conn {
	if !c.cfg.HotFanout || c.cfg.Replicas <= 1 || !c.isHot(protocol.KeyDigest(key)) {
		return c.pickRead(key)
	}
	set := c.replicas(key)
	start := int(c.hotRR % uint64(len(set)))
	c.hotRR++
	// First pass wants a breaker-admitted AND healthy member; a skip past
	// an admitted-but-browned head is a slow-route, a skip past a tripped
	// breaker is the usual reroute.
	for i := 0; i < len(set); i++ {
		cn := c.conns[set[(start+i)%len(set)]]
		if cn.allows() && cn.readHealthy() {
			if i > 0 {
				if c.conns[set[start]].allows() {
					c.Faults.Inc(metrics.CSlowRoutedGets)
				} else {
					c.Faults.Inc(metrics.CBreakerReroutes)
				}
			}
			c.Faults.Inc(metrics.CHotFanouts)
			return cn
		}
	}
	// Every healthy member is breaker-blocked (or the whole set is
	// browned): fall back to breaker-only preference — a slow replica
	// still beats none (last-live guard).
	for i := 0; i < len(set); i++ {
		cn := c.conns[set[(start+i)%len(set)]]
		if cn.allows() {
			if i > 0 {
				c.Faults.Inc(metrics.CBreakerReroutes)
			}
			c.Faults.Inc(metrics.CHotFanouts)
			return cn
		}
	}
	return c.conns[set[start]]
}

// maybeRefreshHot paces the piggybacked hot-set refresh from GET issue
// activity: every hotRefreshEvery bypass-eligible GETs, one OpDirQuery is
// re-issued on the GET's connection and the hot set updated from the
// response. Single-flight per connection.
func (c *Client) maybeRefreshHot(cn *conn) {
	if !c.cfg.Bypass {
		return
	}
	c.hotGets++
	if c.hotGets%hotRefreshEvery != 0 || cn.hotRefresh || cn.dirState != dirReady {
		return
	}
	cn.hotRefresh = true
	c.env.Spawn(fmt.Sprintf("client/hotrefresh%d", cn.serverID), func(p *sim.Proc) {
		defer func() { cn.hotRefresh = false }()
		c.Faults.Inc(metrics.CHotRefreshes)
		qreq := c.newReq(protocol.OpDirQuery, "", cn)
		c.Issued++
		c.enqueueWire(qreq, cn, c.wireFor(qreq, cn, qreq.ID))
		if !p.WaitTimeout(qreq.done, dirQueryTimeout) {
			c.abandon(qreq.cur)
			return
		}
		if qreq.Status != protocol.StatusOK {
			return
		}
		if info, ok := qreq.Value.(*protocol.DirectoryInfo); ok {
			cn.dir = info
			c.noteMemberEpoch(cn, info)
			c.noteHot(cn, info)
		}
	})
}
