package core

import (
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/verbs"
)

// Doorbell batching (RFP-style coalescing): operations that pile up while a
// connection's send credits are exhausted, or that are issued inside an
// explicit BeginBatch/Flush window, are merged per connection into a single
// BatchFrame — one doorbell, one wire send, one flow-control credit, and one
// server receive-repost for N operations. Responses are untouched: each
// member keeps its own request id and registered response slot, so the
// server still scatters one response per op.

const (
	// MaxBatchOps caps the operations coalesced into one BatchFrame.
	MaxBatchOps = 64
	// BatchInlineMax is the largest value carried inline in a frame;
	// bigger stores are posted as their own doorbell so one fat value
	// cannot stall a frame of small ops behind its DMA.
	BatchInlineMax = 64 << 10
)

// txBatch is the client-side record of one coalesced frame in flight. The
// whole frame consumed a single flow-control credit; the record arbitrates
// who returns it across batch acks, member responses, and per-op
// deadline/cancel tombstones.
type txBatch struct {
	id             uint64
	cn             *conn
	members        []*attempt
	live           int // members not yet responded or abandoned
	sent           bool
	creditReturned bool
}

// returnCredit releases the frame's single credit, exactly once.
func (b *txBatch) returnCredit() {
	if b.sent && !b.creditReturned {
		b.creditReturned = true
		b.cn.credits.Release()
	}
}

// resolveOne marks one member settled. When the last member settles the
// credit is reclaimed (if no response or ack beat us to it) and the batch
// record is dropped.
func (b *txBatch) resolveOne() {
	b.live--
	if b.live <= 0 {
		b.returnCredit()
		delete(b.cn.pendingBatch, b.id)
	}
}

// resolve settles a batched attempt's slot, idempotently; no-op for
// unbatched attempts.
func (att *attempt) resolve() {
	if att.batch == nil || att.resolved {
		return
	}
	att.resolved = true
	att.batch.resolveOne()
}

// BeginBatch opens an explicit coalescing window: subsequent Issue calls on
// this client park their wire messages per connection instead of posting
// them, and Flush pushes each connection's parked ops out as one BatchFrame
// per doorbell. Windows nest; only the outermost Flush sends.
//
// Inside a window, WithBufferAck does not block Issue (nothing is on the
// wire yet): the buffers become reusable after Flush, at DMA-sent time or —
// against an async server — at the single batch-wide BufferAck. RDMA
// transport only; on IPoIB use SetBuffering, the classic libmemcached mode.
func (c *Client) BeginBatch() error {
	if c.cfg.Transport != RDMA {
		return ErrTransport
	}
	c.batching++
	return nil
}

// Flush closes the innermost batch window. Closing the outermost window
// hands every connection's parked operations to its TX engine: values up to
// BatchInlineMax ride inline in coalesced frames of at most MaxBatchOps;
// larger stores are posted as individual doorbells. Flush does not wait for
// completions — use Wait/WaitAll as usual. Flushing with no open window is
// a no-op.
func (c *Client) Flush(p *sim.Proc) error {
	if c.cfg.Transport != RDMA {
		return ErrTransport
	}
	if c.batching == 0 {
		return nil
	}
	c.batching--
	if c.batching > 0 {
		return nil
	}
	for _, cn := range c.conns {
		if len(cn.window) == 0 {
			continue
		}
		items := cn.window
		cn.window = nil
		var inline, alone []*txItem
		for _, it := range items {
			if it.att.abandoned {
				delete(cn.pending, it.att.id)
				continue
			}
			if it.wire.ValueSize > BatchInlineMax {
				alone = append(alone, it)
			} else {
				inline = append(inline, it)
			}
		}
		for len(inline) > 0 {
			n := len(inline)
			if n > MaxBatchOps {
				n = MaxBatchOps
			}
			chunk := inline[:n]
			inline = inline[n:]
			if n == 1 {
				cn.txq.TryPut(chunk[0])
			} else {
				cn.txq.TryPut(&txItem{frame: chunk})
			}
		}
		for _, it := range alone {
			cn.txq.TryPut(it)
		}
	}
	return nil
}

// liveItems filters abandoned members out of a frame, tombstoning their
// never-sent pending entries.
func (cn *conn) liveItems(items []*txItem) []*txItem {
	out := items[:0]
	for _, it := range items {
		if it.att.abandoned {
			delete(cn.pending, it.att.id)
			continue
		}
		out = append(out, it)
	}
	return out
}

// drainBatch pulls whatever queued up behind the head item into one frame,
// up to MaxBatchOps, skipping abandoned attempts and flattening any explicit
// frames encountered. Oversized values are left to their own doorbells.
func (cn *conn) drainBatch(head *txItem) (batch, alone []*txItem) {
	batch = []*txItem{head}
	for len(batch) < MaxBatchOps {
		next, ok := cn.txq.TryGet()
		if !ok {
			break
		}
		if next.frame != nil {
			batch = append(batch, cn.liveItems(next.frame)...)
			continue
		}
		if next.att.abandoned {
			delete(cn.pending, next.att.id)
			continue
		}
		if next.wire.ValueSize > BatchInlineMax {
			alone = append(alone, next)
			continue
		}
		batch = append(batch, next)
	}
	return batch, alone
}

// postBatch sends one coalesced frame. The caller already holds the frame's
// single credit. Buffer-reusable events for every member fire at DMA-sent,
// exactly as for a single op.
func (cn *conn) postBatch(p *sim.Proc, items []*txItem) {
	c := cn.c
	c.nextID++
	frame := &protocol.BatchFrame{BatchID: c.nextID}
	b := &txBatch{id: frame.BatchID, cn: cn, live: len(items), sent: true}
	for _, it := range items {
		frame.Reqs = append(frame.Reqs, it.wire)
		it.att.sent = true
		it.att.batch = b
		b.members = append(b.members, it.att)
		if it.att.req.ackWanted {
			frame.AckWanted = true
		}
	}
	cn.pendingBatch[b.id] = b
	c.Sends++
	c.Frames++
	c.FrameOps += int64(len(items))
	sent := cn.qp.PostSendReusable(p, verbs.SendWR{
		WRID:    b.id,
		Op:      verbs.OpSend,
		Size:    frame.WireSize(),
		Payload: frame,
	})
	p.Wait(sent)
	for _, it := range items {
		it.att.req.reusable.Fire()
	}
}

// batchAcked handles the server's single early BufferAck covering a whole
// frame: the shared credit comes back and every live member is marked
// buffered server-side (so stores are not retransmitted) with its buffers
// reusable.
func (cn *conn) batchAcked(b *txBatch) {
	b.returnCredit()
	for _, att := range b.members {
		if att.abandoned || att.req.done.Fired() {
			continue
		}
		att.req.acked = true
		att.req.reusable.Fire()
	}
}
