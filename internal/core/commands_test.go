package core

import (
	"fmt"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

func TestClientAddReplace(t *testing.T) {
	for _, tr := range []Transport{RDMA, IPoIB} {
		r := newTestRig(rigOpts{transport: tr})
		r.env.Spawn("app", func(p *sim.Proc) {
			if st := r.client.Add(p, "k", 10, "a", 0, 0); st != protocol.StatusStored {
				t.Errorf("%v: add fresh: %v", tr, st)
			}
			if st := r.client.Add(p, "k", 10, "b", 0, 0); st != protocol.StatusNotStored {
				t.Errorf("%v: add dup: %v", tr, st)
			}
			if st := r.client.Replace(p, "k", 10, "c", 0, 0); st != protocol.StatusStored {
				t.Errorf("%v: replace: %v", tr, st)
			}
			if st := r.client.Replace(p, "missing", 10, "d", 0, 0); st != protocol.StatusNotStored {
				t.Errorf("%v: replace missing: %v", tr, st)
			}
			v, _, _ := r.client.Get(p, "k")
			if v != "c" {
				t.Errorf("%v: final value %v", tr, v)
			}
		})
		r.env.Run()
	}
}

func TestClientCASCycle(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async})
	r.env.Spawn("app", func(p *sim.Proc) {
		r.client.Set(p, "k", 10, "v1", 0, 0)
		_, _, cas, st := r.client.Gets(p, "k")
		if st != protocol.StatusOK || cas == 0 {
			t.Fatalf("gets: (%d,%v)", cas, st)
		}
		if st := r.client.CompareAndSet(p, "k", 10, "v2", 0, 0, cas); st != protocol.StatusStored {
			t.Errorf("cas current: %v", st)
		}
		if st := r.client.CompareAndSet(p, "k", 10, "v3", 0, 0, cas); st != protocol.StatusExists {
			t.Errorf("cas stale: %v", st)
		}
	})
	r.env.Run()
}

func TestClientCounters(t *testing.T) {
	for _, tr := range []Transport{RDMA, IPoIB} {
		r := newTestRig(rigOpts{transport: tr})
		r.env.Spawn("app", func(p *sim.Proc) {
			if st := r.client.SetCounter(p, "hits", 100); st != protocol.StatusStored {
				t.Fatalf("%v: set counter: %v", tr, st)
			}
			if v, st := r.client.Incr(p, "hits", 11); st != protocol.StatusOK || v != 111 {
				t.Errorf("%v: incr -> (%d,%v)", tr, v, st)
			}
			if v, st := r.client.Decr(p, "hits", 11); st != protocol.StatusOK || v != 100 {
				t.Errorf("%v: decr -> (%d,%v)", tr, v, st)
			}
			if _, st := r.client.Incr(p, "nope", 1); st != protocol.StatusNotFound {
				t.Errorf("%v: incr missing: %v", tr, st)
			}
		})
		r.env.Run()
	}
}

func TestClientAppendPrependTouch(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	r.env.Spawn("app", func(p *sim.Proc) {
		r.client.Set(p, "log", 100, "entry1", 0, 0)
		if st := r.client.Append(p, "log", 50, "entry2"); st != protocol.StatusStored {
			t.Errorf("append: %v", st)
		}
		if st := r.client.Prepend(p, "log", 25, "hdr"); st != protocol.StatusStored {
			t.Errorf("prepend: %v", st)
		}
		_, size, st := r.client.Get(p, "log")
		if st != protocol.StatusOK || size != 175 {
			t.Errorf("after concat: (%d,%v)", size, st)
		}
		if st := r.client.Touch(p, "log", 300); st != protocol.StatusOK {
			t.Errorf("touch: %v", st)
		}
		if st := r.client.Touch(p, "missing", 300); st != protocol.StatusNotFound {
			t.Errorf("touch missing: %v", st)
		}
	})
	r.env.Run()
}

func TestMGetParallelism(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 4})
	const n = 64
	var keys []string
	var mgetTime, seqTime sim.Time
	r.env.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%03d", i)
			keys = append(keys, k)
			r.client.Set(p, k, 8192, i, 0, 0)
		}
		t0 := p.Now()
		reqs := r.client.MGet(p, keys)
		mgetTime = p.Now() - t0
		for i, req := range reqs {
			if req.Status != protocol.StatusOK || req.Value != i {
				t.Errorf("mget[%d] = (%v,%v)", i, req.Value, req.Status)
			}
		}
		t0 = p.Now()
		for _, k := range keys {
			r.client.Get(p, k)
		}
		seqTime = p.Now() - t0
	})
	r.env.Run()
	if float64(seqTime)/float64(mgetTime) < 2 {
		t.Errorf("mget (%v) not ≥2x faster than %d sequential gets (%v)", mgetTime, n, seqTime)
	}
}

func TestMGetOnIPoIBDegradesGracefully(t *testing.T) {
	r := newTestRig(rigOpts{transport: IPoIB})
	r.env.Spawn("app", func(p *sim.Proc) {
		r.client.Set(p, "a", 10, "va", 0, 0)
		reqs := r.client.MGet(p, []string{"a", "missing"})
		if reqs[0].Status != protocol.StatusOK || reqs[0].Value != "va" {
			t.Errorf("mget[0] %+v", reqs[0])
		}
		if reqs[1].Status != protocol.StatusNotFound {
			t.Errorf("mget[1] %v", reqs[1].Status)
		}
	})
	r.env.Run()
}

func TestClientFlushAll(t *testing.T) {
	for _, tr := range []Transport{RDMA, IPoIB} {
		r := newTestRig(rigOpts{transport: tr, servers: 3})
		r.env.Spawn("app", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				r.client.Set(p, fmt.Sprintf("k%02d", i), 1024, i, 0, 0)
			}
			if st := r.client.FlushAll(p); st != protocol.StatusOK {
				t.Errorf("%v: flush_all: %v", tr, st)
			}
			for i := 0; i < 30; i++ {
				if _, _, st := r.client.Get(p, fmt.Sprintf("k%02d", i)); st != protocol.StatusNotFound {
					t.Errorf("%v: key %d survived flush_all", tr, i)
					break
				}
			}
		})
		r.env.Run()
		for i, srv := range r.servers {
			if srv.Store().Len() != 0 {
				t.Errorf("%v: server %d still holds %d keys", tr, i, srv.Store().Len())
			}
		}
	}
}

func TestBufferedModeDefersSets(t *testing.T) {
	r := newTestRig(rigOpts{transport: IPoIB})
	if err := r.client.SetBuffering(true); err != nil {
		t.Fatal(err)
	}
	var setLat, getLat, plainGet sim.Time
	r.env.Spawn("app", func(p *sim.Proc) {
		// Buffered sets return almost immediately.
		t0 := p.Now()
		for i := 0; i < 8; i++ {
			if st := r.client.Set(p, fmt.Sprintf("k%d", i), 32*1024, i, 0, 0); st != protocol.StatusStored {
				t.Errorf("buffered set: %v", st)
			}
		}
		setLat = (p.Now() - t0) / 8
		if got := r.client.BufferedSets(); got != 8 {
			t.Errorf("queued %d sets, want 8", got)
		}
		// The first Get must flush the queue and absorb its cost.
		t0 = p.Now()
		v, _, st := r.client.Get(p, "k0")
		getLat = p.Now() - t0
		if st != protocol.StatusOK || v != 0 {
			t.Errorf("get after flush: (%v,%v)", v, st)
		}
		if r.client.BufferedSets() != 0 {
			t.Errorf("queue not drained by Get")
		}
		// A Get with an empty queue is normal-priced.
		t0 = p.Now()
		r.client.Get(p, "k1")
		plainGet = p.Now() - t0
	})
	r.env.Run()
	if setLat > 10*sim.Microsecond {
		t.Errorf("buffered set latency %v, want local-only (<10µs)", setLat)
	}
	if getLat < 3*plainGet {
		t.Errorf("flushing get (%v) not ≫ plain get (%v): queue cost not absorbed", getLat, plainGet)
	}
}

func TestBufferedModeExplicitFlushAndThreshold(t *testing.T) {
	r := newTestRig(rigOpts{transport: IPoIB})
	r.client.SetBuffering(true)
	r.env.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 70; i++ { // beyond the 64-entry threshold
			r.client.Set(p, fmt.Sprintf("k%03d", i), 1024, i, 0, 0)
		}
		if got := r.client.BufferedSets(); got >= 64 {
			t.Errorf("threshold flush did not trigger: %d queued", got)
		}
		r.client.FlushBuffers(p)
		if r.client.BufferedSets() != 0 {
			t.Errorf("explicit flush left %d queued", r.client.BufferedSets())
		}
		// Everything is durable server-side.
		for i := 0; i < 70; i += 13 {
			if v, _, st := r.client.Get(p, fmt.Sprintf("k%03d", i)); st != protocol.StatusOK || v != i {
				t.Errorf("k%03d after flush: (%v,%v)", i, v, st)
			}
		}
	})
	r.env.Run()
}

func TestBufferingRejectedOnRDMA(t *testing.T) {
	r := newTestRig(rigOpts{transport: RDMA})
	if err := r.client.SetBuffering(true); err != ErrTransport {
		t.Errorf("SetBuffering on RDMA err=%v, want ErrTransport", err)
	}
}
