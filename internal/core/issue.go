package core

import (
	"fmt"
	"math/rand"

	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/verbs"
)

// This file is the unified issue path: one descriptor-based entry point
// (Client.Issue) with functional options for buffer-ack, deadline, and
// retry behaviour, plus the recovery machinery behind it — per-attempt
// bookkeeping, deadline expiry, cancelation, and idempotency-aware
// retransmission with connection failover.

// Op describes one operation for Issue. Code and Key are required; the
// remaining fields apply per-opcode (ValueSize/Value for stores, CAS for
// compare-and-set, Delta for Incr/Decr).
type Op struct {
	Code      protocol.Opcode
	Key       string
	ValueSize int
	Value     any
	Flags     uint32
	Expire    uint32
	CAS       uint64
	Delta     uint64
}

// RetryPolicy governs retransmission of an unanswered request.
//
// Retries are idempotency-aware: Gets retransmit freely, but a store is
// retransmitted only while the client has no evidence the server holds it —
// once a BufferAck arrives, the attempt is left to its deadline. Each
// retransmitted attempt gets a fresh request id; late responses to the old
// id are absorbed as stale.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, including the first (default 3).
	MaxAttempts int
	// AttemptTimeout is the per-attempt response budget (default 50 µs).
	AttemptTimeout sim.Time
	// Backoff is the delay before the first retransmit; it doubles per
	// attempt (default 5 µs).
	Backoff sim.Time
	// MaxBackoff caps the doubling (default 1 ms).
	MaxBackoff sim.Time
	// Jitter is the random fraction of backoff added per retry to spread
	// retransmit storms (0 → default 0.2; negative disables).
	Jitter float64
	// Seed drives the jitter RNG (mixed with the request id, so every
	// request jitters differently but deterministically).
	Seed int64
	// Failover moves each retransmit to the next connection in the pool —
	// for replicated or cache-semantics deployments where a miss on the
	// fallback server beats blocking on a dead one.
	Failover bool
}

func (rp *RetryPolicy) fill() {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 3
	}
	if rp.AttemptTimeout <= 0 {
		rp.AttemptTimeout = 50 * sim.Microsecond
	}
	if rp.Backoff <= 0 {
		rp.Backoff = 5 * sim.Microsecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = sim.Millisecond
	}
	if rp.Jitter == 0 {
		rp.Jitter = 0.2
	}
}

// IssueOption customizes one Issue call.
type IssueOption func(*issueOpts)

type issueOpts struct {
	ack      bool
	deadline sim.Time // budget from issue time; 0 = none
	retry    *RetryPolicy
	hedge    sim.Time // GET hedging threshold; 0 = none
	readPath ReadPath // GET resolution path; see WithReadPath
}

// WithBufferAck requests a server BufferAck and blocks Issue until the
// key/value buffers are reusable (bset/bget semantics).
func WithBufferAck() IssueOption {
	return func(o *issueOpts) { o.ack = true }
}

// WithDeadline gives the request a completion budget of d virtual time from
// issue. If no response arrives in time the request completes locally with
// ErrDeadlineExceeded and its flow-control credit is reclaimed.
func WithDeadline(d sim.Time) IssueOption {
	return func(o *issueOpts) { o.deadline = d }
}

// WithRetry attaches a retransmission policy (see RetryPolicy). Combine
// with WithDeadline to bound the total time across all attempts.
func WithRetry(rp RetryPolicy) IssueOption {
	return func(o *issueOpts) { o.retry = &rp }
}

// WithHedge mirrors a GET to the next server on the failover ring if no
// response arrived within d: first answer wins, the loser is absorbed as a
// stale response. Tames tail latency when one replica is saturated, at the
// cost of duplicate load. GET-only (hedging a store would double-apply it)
// and a no-op on single-connection clients.
func WithHedge(d sim.Time) IssueOption {
	return func(o *issueOpts) { o.hedge = d }
}

// Issue starts one operation described by op, applying the given options,
// and returns its handle. It is the single entry point behind
// ISet/IGet/BSet/BGet; RDMA transport only (IPoIB keeps the blocking
// socket API).
func (c *Client) Issue(p *sim.Proc, op Op, opts ...IssueOption) (*Req, error) {
	if c.cfg.Transport != RDMA {
		return nil, ErrTransport
	}
	var o issueOpts
	for _, fn := range opts {
		fn(&o)
	}
	var cn *conn
	if op.Code == protocol.OpGet {
		// GETs for server-detected hot keys fan out across the replica set
		// (see hotread.go); cold keys route exactly as pick does.
		cn = c.pickGet(op.Key)
		c.maybeRefreshHot(cn)
	} else {
		cn = c.pick(op.Key)
	}
	p.Sleep(c.cfg.PrepCost)
	req := c.newReq(op.Code, op.Key, cn)
	req.txValueSize = op.ValueSize
	req.txValue = op.Value
	req.txFlags, req.txExpire = op.Flags, op.Expire
	req.txCAS, req.txDelta = op.CAS, op.Delta
	req.ackWanted = o.ack || c.cfg.AckWanted
	req.retryable = o.retry != nil
	if c.bypassEligible(op, &o) {
		// Server-bypass resolution: no wire request yet — the resolver
		// process posts one-sided READs, completing the request itself or
		// handing it to enqueueWire as an ordinary RPC fallback. The
		// guard/hedge machinery below attaches identically either way.
		req.cur = &attempt{id: req.ID, req: req, cn: cn, bypass: true}
		req.Attempts = 1
		c.spawnBypass(req, o)
	} else {
		c.enqueueWire(req, cn, c.wireFor(req, cn, req.ID))
	}
	c.Issued++
	if o.deadline > 0 || o.retry != nil {
		c.spawnGuard(req, o)
	}
	if o.hedge > 0 && op.Code == protocol.OpGet && len(c.conns) > 1 {
		// With health tracking live the threshold adapts to the measured
		// healthy baseline (see hedgeAfter); otherwise it is taken as given.
		c.spawnHedge(req, c.hedgeAfter(o.hedge))
	}
	// Inside an explicit batch window nothing is on the wire yet, so
	// WithBufferAck cannot block here; the buffers become reusable after
	// Flush (see BeginBatch).
	if o.ack && c.batching == 0 {
		p.Wait(req.reusable)
	}
	return req, nil
}

// wireFor builds the wire request for one attempt of req on cn.
func (c *Client) wireFor(req *Req, cn *conn, id uint64) *protocol.Request {
	return &protocol.Request{
		Op: req.Op, ReqID: id, Key: req.Key,
		Flags: req.txFlags, Expire: req.txExpire,
		ValueSize: req.txValueSize, Value: req.txValue,
		CAS: req.txCAS, Delta: req.txDelta,
		RespMR:    cn.respMR.LKey(),
		AckWanted: req.ackWanted,
	}
}

// enqueueWire registers one attempt and hands its wire to cn's TX engine —
// or parks it in the connection's batch window when one is open (first
// attempts only: retransmits always go straight out, a stalled window must
// not delay recovery). It does not touch c.Issued: retransmits are
// attempts, not operations.
func (c *Client) enqueueWire(req *Req, cn *conn, wire *protocol.Request) *attempt {
	att := &attempt{id: wire.ReqID, req: req, cn: cn, start: c.env.Now()}
	req.cur = att
	req.conn = cn
	first := req.Attempts == 0
	req.Attempts++
	cn.pending[att.id] = att
	it := &txItem{wire: wire, att: att}
	if first && c.batching > 0 {
		cn.window = append(cn.window, it)
	} else {
		cn.txq.TryPut(it)
	}
	return att
}

// abandon detaches an attempt from its request: any credit it consumed is
// reclaimed, and a response that still arrives for it is absorbed as stale
// (the pending entry stays as a tombstone until then).
func (c *Client) abandon(att *attempt) {
	if att == nil || att.abandoned {
		return
	}
	att.abandoned = true
	if att.batch != nil {
		// Tombstone one slot inside a coalesced frame: siblings keep
		// flying; the frame's single credit comes back when the last
		// member resolves (or earlier, via the batch ack / first response).
		att.resolve()
		return
	}
	if att.sent && !att.creditReturned {
		att.creditReturned = true
		att.cn.credits.Release()
	}
}

// mayRetry reports whether retransmitting req is safe: Gets always; a
// mutating opcode while the server has not acknowledged holding it; and
// self-guarded mutations (CAS, Add) even after the ack. A retransmitted
// CAS cannot re-apply — the original's apply consumed the token — and a
// retransmitted Add cannot either, because the key now exists; the worst
// outcome is a definite Exists rejection. That definite outcome is the
// point: without it, a BufferAck whose final response the network dropped
// would strand the client at its deadline even though the write is safely
// applied, which reads exactly like buffered work being lost.
func mayRetry(req *Req) bool {
	switch req.Op {
	case protocol.OpGet, protocol.OpCAS, protocol.OpAdd:
		return true
	}
	return !req.acked
}

// expire completes req locally with a timeout outcome. Idempotent; a
// response that races in first wins.
func (c *Client) expire(req *Req) {
	if req.done.Fired() {
		return
	}
	req.timedOut = true
	req.Status = protocol.StatusError
	if req.rejected == nil && req.cur != nil && !req.cur.abandoned {
		// The final attempt got no answer at all — a timeout the breaker
		// counts alongside busy rejections.
		req.cur.cn.noteFailure()
	}
	c.abandon(req.cur)
	req.CompletedAt = c.env.Now()
	c.Faults.Inc(metrics.CTimeouts)
	req.done.Fire()
	req.reusable.Fire()
}

// Cancel abandons an in-flight request: it completes immediately with
// ErrCanceled, and any flow-control credit its current attempt holds is
// returned. Canceling a completed request is a no-op.
func (c *Client) Cancel(req *Req) {
	if req.done.Fired() {
		return
	}
	req.canceled = true
	req.Status = protocol.StatusError
	c.abandon(req.cur)
	req.CompletedAt = c.env.Now()
	c.Faults.Inc(metrics.CCancels)
	req.done.Fire()
	req.reusable.Fire()
}

// retransmit abandons the current attempt and enqueues a fresh one, on the
// next connection when failing over.
func (c *Client) retransmit(p *sim.Proc, req *Req, failover bool) {
	old := req.cur
	if !req.nudge.Fired() {
		// No rejection arrived: the attempt timed out outright.
		old.cn.noteFailure()
	}
	c.abandon(old)
	cn := old.cn
	if failover && len(c.conns) > 1 {
		cn = c.failoverNext(old.cn, req.Key)
		c.Faults.Inc(metrics.CFailovers)
	}
	if req.acked {
		// A self-guarded write chasing its lost final response.
		c.Faults.Inc(metrics.CAckedRetries)
	}
	c.Faults.Inc(metrics.CRetries)
	p.Sleep(c.cfg.PrepCost)
	// Fresh nudge per attempt: a recovering/busy rejection of the old
	// attempt must not short-circuit the new one's response wait, and its
	// sentinel and backoff hint belong to the old attempt alone.
	req.nudge = c.env.NewEvent()
	req.rejected = nil
	req.retryAfter = 0
	c.nextID++
	c.enqueueWire(req, cn, c.wireFor(req, cn, c.nextID))
}

// awaitOutcome blocks up to d for the request to complete, returning true if
// it did. A recovering nudge for the current attempt ends the wait early and
// returns false: the server rejected the attempt, so there is no response to
// keep waiting for — the guard proceeds straight to backoff and retransmit.
func (c *Client) awaitOutcome(p *sim.Proc, req *Req, d sim.Time) bool {
	nudge := req.nudge
	if !nudge.Fired() {
		// The timeout wakeup is canceled on delivery, so a guard that never
		// needs it leaves nothing scheduled behind — the instrumentation is
		// invisible to the run's virtual end time.
		p.WaitTimeout(c.env.AnyOf(req.done, nudge), d)
	}
	return req.done.Fired()
}

// spawnGuard starts the watchdog process for a request issued with a
// deadline and/or retry policy.
func (c *Client) spawnGuard(req *Req, o issueOpts) {
	var deadline sim.Time
	if o.deadline > 0 {
		deadline = req.IssuedAt + o.deadline
	}
	name := fmt.Sprintf("client/guard%d", req.ID)
	c.env.Spawn(name, func(p *sim.Proc) {
		if o.retry == nil {
			if !p.WaitTimeout(req.done, deadline-p.Now()) {
				c.expire(req)
			}
			return
		}
		pol := *o.retry
		pol.fill()
		rng := rand.New(rand.NewSource(pol.Seed ^ int64(req.ID)*0x9e3779b9))
		backoff := pol.Backoff
		for {
			wait := pol.AttemptTimeout
			if deadline > 0 {
				rem := deadline - p.Now()
				if rem <= 0 {
					c.expire(req)
					return
				}
				if rem < wait {
					wait = rem
				}
			}
			if c.awaitOutcome(p, req, wait) {
				return
			}
			if deadline > 0 && p.Now() >= deadline {
				c.expire(req)
				return
			}
			if req.Attempts >= pol.MaxAttempts || !mayRetry(req) {
				c.expire(req)
				return
			}
			d := backoff
			if pol.Jitter > 0 {
				d += sim.Time(float64(backoff) * pol.Jitter * rng.Float64())
			}
			if req.retryAfter > d {
				// The server's busy hint floors the backoff: it knows its
				// own storage backlog better than our doubling schedule.
				d = req.retryAfter
			}
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			// Back off as a wait-on-done: a response landing during the
			// backoff window ends the guard without a spurious retransmit.
			if p.WaitTimeout(req.done, d) {
				return
			}
			if deadline > 0 && p.Now() >= deadline {
				c.expire(req)
				return
			}
			c.retransmit(p, req, pol.Failover)
		}
	})
}

// failoverNext picks the retransmit (or hedge) target after cur for key:
// the following connections on the failover ring — the key's replica set
// when the client is replica-aware, the whole pool otherwise — skipping
// connections whose breaker is open instead of blindly taking the next
// slot. Every skipped open breaker is surfaced as a "failover-skips" fault
// counter; when every alternative is saturated the immediate next candidate
// stands (failing through beats failing everything locally).
func (c *Client) failoverNext(cur *conn, key string) *conn {
	var cand []*conn
	if c.cfg.Replicas > 1 {
		set := c.replicas(key)
		if len(set) < 2 {
			return cur
		}
		pos := 0
		for i, id := range set {
			if id == cur.serverID {
				pos = i
				break
			}
		}
		for i := 1; i < len(set); i++ {
			cand = append(cand, c.conns[set[(pos+i)%len(set)]])
		}
	} else {
		for i := 1; i < len(c.conns); i++ {
			cand = append(cand, c.conns[(cur.serverID+i)%len(c.conns)])
		}
	}
	for _, cn := range cand {
		if cn.allows() {
			return cn
		}
		c.Faults.Inc(metrics.CFailoverSkip)
	}
	if len(cand) == 0 {
		// Single-connection client: there is nowhere else to go.
		return cur
	}
	return cand[0]
}

// spawnHedge starts the hedging process for a GET issued with WithHedge:
// if the request is still unanswered after the threshold, the GET is
// mirrored to the next live connection on the failover ring as an extra
// attempt — without abandoning the primary, so the first response (either
// server) completes the request and the other is absorbed as stale with its
// own credit return. Like retransmit failover, the hedge target skips open
// breakers and stays inside the key's replica set on replicated clusters.
func (c *Client) spawnHedge(req *Req, after sim.Time) {
	name := fmt.Sprintf("client/hedge%d", req.ID)
	c.env.Spawn(name, func(p *sim.Proc) {
		if p.WaitTimeout(req.done, after) || req.done.Fired() {
			if req.bypassed {
				// The GET already resolved on the bypass path; the hedge
				// would have mirrored an answered read to another server.
				c.Faults.Inc(metrics.CHedgesSuppressed)
			}
			return
		}
		cn := c.failoverNext(req.conn, req.Key)
		if cn == req.conn {
			return // no distinct replica to hedge onto
		}
		c.Faults.Inc(metrics.CHedges)
		p.Sleep(c.cfg.PrepCost)
		c.nextID++
		c.enqueueWire(req, cn, c.wireFor(req, cn, c.nextID))
	})
}

// txItem is one attempt's wire message queued for the TX engine — or, when
// frame is set, a pre-built explicit batch window handed over by Flush.
type txItem struct {
	wire  *protocol.Request
	att   *attempt
	frame []*txItem
}

// attempt is one transmission of a request. Retries create fresh attempts
// with fresh ids; the per-attempt credit/abandon flags keep flow-control
// accounting exact across races between responses, timeouts, and cancels.
type attempt struct {
	id             uint64
	req            *Req
	cn             *conn
	start          sim.Time // enqueue time, for per-attempt service-time samples
	sent           bool     // credit consumed and wire handed to the NIC
	creditReturned bool
	abandoned      bool
	// batch is non-nil once this attempt was coalesced into a doorbell
	// batch; credit accounting then runs through the shared record (the
	// whole frame consumed one credit). resolved guards the one slot this
	// attempt settles in it.
	batch    *txBatch
	resolved bool
	// bypass marks a one-sided READ resolution attempt: nothing on the
	// request/response wire, no credit, no pending entry — abandoning it is
	// free, and retransmitting it enqueues a normal RPC attempt.
	bypass bool
}

// creditBack returns the flow-control credit this attempt consumed, exactly
// once. A batched attempt shares one credit with its whole frame, so the
// first member to hear from the server returns it for everyone.
func (att *attempt) creditBack() {
	if b := att.batch; b != nil {
		b.returnCredit()
		return
	}
	if att.sent && !att.creditReturned {
		att.creditReturned = true
		att.cn.credits.Release()
	}
}

// txEngine drains the issue queue: waits for a flow-control credit, posts
// the WR, and fires the request's buffer-reusable event when the data has
// left the NIC (red path of Figure 3). Abandoned attempts are skipped, and
// their credit — if consumed — was already reclaimed by abandon.
//
// When a credit is free the engine sends one op per doorbell, exactly as
// before batching existed. Only when credits are exhausted — the moment the
// per-op cost actually hurts — does it block for one credit and then sweep
// everything that queued up behind it into a single coalesced BatchFrame.
// Explicit Flush frames arrive pre-built and take the same send path.
func (cn *conn) txEngine(p *sim.Proc) {
	for {
		item, ok := cn.txq.Get(p)
		if !ok {
			return
		}
		if item.frame != nil {
			cn.sendFrame(p, item.frame)
			continue
		}
		att := item.att
		if att.abandoned {
			delete(cn.pending, att.id) // never sent: no stale response can come
			continue
		}
		if cn.credits.TryAcquire() {
			cn.sendOne(p, item)
			continue
		}
		cn.credits.Acquire(p)
		if att.abandoned {
			// Abandoned while waiting for a credit.
			cn.credits.Release()
			delete(cn.pending, att.id)
			continue
		}
		batch, alone := cn.drainBatch(item)
		if len(batch) == 1 {
			cn.sendOne(p, batch[0])
		} else {
			cn.postBatch(p, batch)
		}
		cn.sendAlone(p, alone)
	}
}

// sendOne posts a single-op doorbell. The caller already holds its credit.
func (cn *conn) sendOne(p *sim.Proc, item *txItem) {
	att := item.att
	att.sent = true
	cn.c.Sends++
	sent := cn.qp.PostSendReusable(p, verbs.SendWR{
		WRID:    att.id,
		Op:      verbs.OpSend,
		Size:    item.wire.WireSize(),
		Payload: item.wire,
	})
	// The NIC serializes messages in order; waiting for DMA-sent here
	// pipelines exactly like the hardware send queue.
	p.Wait(sent)
	att.req.reusable.Fire()
}

// sendFrame posts an explicit batch window handed over by Flush: one credit
// for the whole frame, or the plain path for a frame that shrank to one op.
func (cn *conn) sendFrame(p *sim.Proc, items []*txItem) {
	items = cn.liveItems(items)
	if len(items) == 0 {
		return
	}
	if !cn.credits.TryAcquire() {
		cn.credits.Acquire(p)
		if items = cn.liveItems(items); len(items) == 0 {
			cn.credits.Release()
			return
		}
	}
	if len(items) == 1 {
		cn.sendOne(p, items[0])
		return
	}
	cn.postBatch(p, items)
}

// sendAlone posts oversized-value ops excluded from a frame, one credit each.
func (cn *conn) sendAlone(p *sim.Proc, items []*txItem) {
	for _, item := range items {
		if item.att.abandoned {
			delete(cn.pending, item.att.id)
			continue
		}
		if !cn.credits.TryAcquire() {
			cn.credits.Acquire(p)
			if item.att.abandoned {
				cn.credits.Release()
				delete(cn.pending, item.att.id)
				continue
			}
		}
		cn.sendOne(p, item)
	}
}

// progressEngine polls the receive CQ: returns credits, lands values in the
// user buffer, and fires completion flags (dark-green path of Figure 3).
// Responses for unknown or abandoned attempts — duplicates, or answers that
// lost a race with a deadline/cancel/retransmit — are absorbed as stale.
func (cn *conn) progressEngine(p *sim.Proc) {
	for {
		comp := cn.recvCQ.WaitPoll(p)
		cn.qp.PostRecv(verbs.RecvWR{}) // replenish the local pool
		resp, ok := comp.Payload.(*protocol.Response)
		if !ok {
			panic("core: non-response payload on client receive CQ")
		}
		if resp.Op == protocol.OpBufferAck {
			if b := cn.pendingBatch[resp.ReqID]; b != nil {
				// One ack covers the whole coalesced frame.
				cn.batchAcked(b)
				continue
			}
		}
		att := cn.pending[resp.ReqID]
		if att == nil {
			cn.c.Faults.Inc(metrics.CStaleResponses)
			continue
		}
		req := att.req
		switch resp.Op {
		case protocol.OpBufferAck:
			// Request is buffered server-side: buffers reusable, credit back.
			att.creditBack()
			if !att.abandoned {
				req.acked = true
				req.reusable.Fire()
			}
		case protocol.OpResponse:
			att.creditBack()
			att.resolve()
			delete(cn.pending, resp.ReqID)
			if att.abandoned || req.done.Fired() {
				cn.c.Faults.Inc(metrics.CStaleResponses)
				continue
			}
			if resp.Status == protocol.StatusBusy {
				// Shed at admission: breaker food, unlike recovering — a
				// recovering server is rebuilding, not saturated.
				cn.noteFailure()
				cn.c.Faults.Inc(metrics.CBusy)
			} else {
				cn.noteSuccess()
			}
			if RetryableStatus(resp.Status) && req.retryable {
				// Fail-fast rejection — cold-restart recovery or admission
				// shedding: don't complete the request. Record the attempt's
				// sentinel and any retry-after hint, then nudge its guard,
				// which backs off and retransmits (failing over when
				// configured).
				req.rejected = statusErr(resp.Status)
				switch resp.Status {
				case protocol.StatusBusy:
					req.retryAfter = sim.Time(resp.RetryAfterUS) * sim.Microsecond
				case protocol.StatusNoReplica:
					// The coordinator itself is healthy (it answered); the
					// chain behind it is not. No breaker food, just a counter.
					cn.c.Faults.Inc(metrics.CNoReplica)
				default:
					cn.c.Faults.Inc(metrics.CRecovering)
				}
				req.nudge.Fire()
				continue
			}
			if resp.Status != protocol.StatusBusy {
				// Feed the health tracker the attempt's service time. Busy
				// sheds are excluded: a fast rejection is not fast service.
				if class, ok := classOfOp(req.Op); ok {
					cn.c.noteServiceTime(cn, class, p.Now()-att.start)
				}
			}
			// Zero-copy: the value was RDMA-WRITten directly into the
			// request's registered response buffer; no client copy.
			req.Status = resp.Status
			req.Value = resp.Value
			req.ValueSize = resp.ValueSize
			req.Flags = resp.Flags
			req.CAS = resp.CAS
			req.CompletedAt = p.Now()
			req.done.Fire()
			req.reusable.Fire()
			cn.c.Completed++
		default:
			panic("core: unexpected opcode " + resp.Op.String())
		}
	}
}
