package core

import (
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// TestHalfOpenSlowProbeRecloses: the half-open probe decision is about
// liveness, not latency — a probe that is served slowly (the server limps
// through a worker-stall window) but successfully must re-close the
// breaker, not re-open it. Latency verdicts belong to the health tracker's
// brown-out state, which deprioritizes without ever blocking.
func TestHalfOpenSlowProbeRecloses(t *testing.T) {
	const (
		cooldown = sim.Millisecond
		stall    = 500 * sim.Microsecond
	)
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		clientCfg: func(cc *Config) {
			cc.Breaker = BreakerConfig{Threshold: 2, Cooldown: cooldown}
		},
	})
	c, srv := r.client, r.servers[0]
	var probe *Req
	var probeLat sim.Time
	r.env.Spawn("bench", func(p *sim.Proc) {
		if st := c.Set(p, "k", 1024, "v", 0, 0); st != protocol.StatusStored {
			t.Errorf("seed set: %v", st)
		}
		srv.Crash()
		for i := 0; i < 2; i++ {
			req, _ := c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
				WithDeadline(100*sim.Microsecond))
			c.Wait(p, req)
		}
		if n := c.Faults.Get("breaker-open"); n != 1 {
			t.Errorf("breaker-open = %d after two timeouts, want 1", n)
		}
		srv.Restart()
		// The restarted server limps: every storage dequeue stalls, so the
		// half-open probe is slow — but it answers.
		srv.AddWorkerStall(p.Now(), p.Now()+10*sim.Millisecond, stall)
		p.Sleep(cooldown + 10*sim.Microsecond)
		t0 := p.Now()
		var err error
		probe, err = c.Issue(p, Op{Code: protocol.OpGet, Key: "k"},
			WithDeadline(5*sim.Millisecond))
		if err != nil {
			t.Errorf("probe issue: %v", err)
			return
		}
		c.Wait(p, probe)
		probeLat = p.Now() - t0
	})
	r.env.Run()

	if probe == nil || probe.Err() != nil {
		t.Fatalf("slow probe failed: %v", probe.Err())
	}
	if probeLat < stall {
		t.Fatalf("probe latency %v — the stall window did not bite; the test proves nothing", probeLat)
	}
	if n := c.Faults.Get("breaker-close"); n != 1 {
		t.Errorf("breaker-close = %d, want 1 (slow-but-successful probe must re-close)", n)
	}
	if !c.conns[0].allows() {
		t.Error("connection still blocked after a successful probe")
	}
}

// TestBrownoutNeverBlocksLastLiveReplica: brown-out is strictly weaker
// than the breaker — when every member of a replica set is browned (or the
// client is unreplicated), pickRead must return pick's choice untouched
// rather than leaving the key unroutable.
func TestBrownoutNeverBlocksLastLiveReplica(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Replicas = 2
			cc.Health = HealthConfig{Enabled: true}
		},
	})
	c := r.client
	for _, cn := range c.conns {
		cn.health.browned[hcGet] = true
	}
	want := c.pick("k")
	if got := c.pickRead("k"); got != want {
		t.Errorf("fully-browned set: pickRead = server%d, want pick's server%d", got.serverID, want.serverID)
	}

	// Unreplicated client: the single home replica is always last-live.
	r1 := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async,
		clientCfg: func(cc *Config) {
			cc.Health = HealthConfig{Enabled: true}
		},
	})
	c1 := r1.client
	c1.conns[0].health.browned[hcGet] = true
	if got := c1.pickRead("k"); got != c1.conns[0] {
		t.Error("unreplicated browned conn not returned as last-live")
	}
}

// TestBrownoutProbeTrickle: every ProbeEvery'th GET that would be routed
// around a browned connection is sent to it anyway, so its sample stream —
// and therefore its recovery — stays observable.
func TestBrownoutProbeTrickle(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Replicas = 2
			cc.Health = HealthConfig{Enabled: true, ProbeEvery: 4}
		},
	})
	c := r.client
	home := c.pick("k")
	home.health.browned[hcGet] = true

	probes, rerouted := 0, 0
	for i := 0; i < 8; i++ {
		if c.pickRead("k") == home {
			probes++
		} else {
			rerouted++
		}
	}
	if probes != 2 || rerouted != 6 {
		t.Errorf("probes=%d rerouted=%d over 8 picks with ProbeEvery=4, want 2/6", probes, rerouted)
	}
	if n := c.Faults.Get("slow-routed-gets"); n != 6 {
		t.Errorf("slow-routed-gets = %d, want 6", n)
	}
}

// TestWriteClassBrownoutDoesNotRerouteGets: brown-out is per op class. A
// coordinator whose chain writes crawl (because its replication partner is
// the slow node) keeps a fast GET path; marking the whole connection
// degraded would worst-case brown both members of a set and pin reads onto
// the genuinely slow one.
func TestWriteClassBrownoutDoesNotRerouteGets(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Replicas = 2
			cc.Health = HealthConfig{Enabled: true}
		},
	})
	c := r.client
	home := c.pick("k")
	home.health.browned[hcWrite] = true
	if !home.readHealthy() {
		t.Error("write-class brown-out must not mark the read path unhealthy")
	}
	if got := c.pickRead("k"); got != home {
		t.Errorf("GET rerouted to server%d on a write-class brown-out", got.serverID)
	}
	if n := c.Faults.Get("slow-routed-gets"); n != 0 {
		t.Errorf("slow-routed-gets = %d, want 0", n)
	}
}

// TestBrownoutEnterExitHysteresis: a connection browns when its windowed
// tail exceeds DegradedFactor times the best peer baseline and recovers
// only after dropping under RecoverFactor — and both transitions are
// counted.
func TestBrownoutEnterExitHysteresis(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Replicas = 2
			cc.Health = HealthConfig{Enabled: true, Window: 8, MinSamples: 4}
		},
	})
	c := r.client
	fast, slow := c.conns[0], c.conns[1]
	for i := 0; i < 8; i++ {
		c.noteServiceTime(fast, hcGet, 10*sim.Microsecond)
	}
	// Slow conn: a fast history, then a degraded tail.
	for i := 0; i < 4; i++ {
		c.noteServiceTime(slow, hcGet, 10*sim.Microsecond)
	}
	for i := 0; i < 8 && !slow.health.browned[hcGet]; i++ {
		c.noteServiceTime(slow, hcGet, 200*sim.Microsecond)
	}
	if !slow.health.browned[hcGet] {
		t.Fatal("degraded tail never tripped the brown-out")
	}
	if n := c.Faults.Get("brownouts-entered"); n != 1 {
		t.Errorf("brownouts-entered = %d, want 1", n)
	}

	// Recovery: fast samples flush the window under RecoverFactor.
	for i := 0; i < 16 && slow.health.browned[hcGet]; i++ {
		c.noteServiceTime(slow, hcGet, 10*sim.Microsecond)
	}
	if slow.health.browned[hcGet] {
		t.Fatal("brown-out never recovered after the tail subsided")
	}
	if n := c.Faults.Get("brownouts-exited"); n != 1 {
		t.Errorf("brownouts-exited = %d, want 1", n)
	}
}

// TestHedgeAfterAdaptsToBaseline: with health tracking live the hedge
// threshold tracks DegradedFactor times the best GET baseline, clamped to
// [d/8, d]; disabled or unsampled trackers leave the caller's threshold
// untouched.
func TestHedgeAfterAdaptsToBaseline(t *testing.T) {
	r := newTestRig(rigOpts{
		transport: RDMA, pipeline: server.Async, servers: 2,
		clientCfg: func(cc *Config) {
			cc.Replicas = 2
			cc.Health = HealthConfig{Enabled: true}
		},
	})
	c := r.client
	if got := c.hedgeAfter(2 * sim.Millisecond); got != 2*sim.Millisecond {
		t.Errorf("unsampled tracker: hedgeAfter = %v, want the caller's 2ms", got)
	}
	for i := 0; i < 16; i++ {
		c.noteServiceTime(c.conns[0], hcGet, 10*sim.Microsecond)
	}
	// Baseline 10µs × DegradedFactor 3 = 30µs, inside [d/8, d] for d=160µs.
	if got := c.hedgeAfter(160 * sim.Microsecond); got != 30*sim.Microsecond {
		t.Errorf("adaptive hedge = %v, want 30µs", got)
	}
	// Clamp low: d=2ms keeps the hedge at d/8 so a cold baseline cannot
	// hedge-storm.
	if got := c.hedgeAfter(2 * sim.Millisecond); got != 250*sim.Microsecond {
		t.Errorf("clamped hedge = %v, want 250µs (d/8)", got)
	}
	// Clamp high: a threshold already tighter than the baseline stands.
	if got := c.hedgeAfter(8 * sim.Microsecond); got != 8*sim.Microsecond {
		t.Errorf("tight hedge = %v, want the caller's 8µs", got)
	}

	// Health disabled: hedgeAfter is the identity.
	off := newTestRig(rigOpts{transport: RDMA, pipeline: server.Async, servers: 2}).client
	if got := off.hedgeAfter(999 * sim.Microsecond); got != 999*sim.Microsecond {
		t.Errorf("disabled tracker: hedgeAfter = %v, want identity", got)
	}
}
