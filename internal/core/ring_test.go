package core

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj:%010d", i)
	}
	return keys
}

// TestRingBalance: with ketama vnodes, key load across servers stays near
// uniform — every server within ±35% of the fair share for 8 servers.
func TestRingBalance(t *testing.T) {
	const servers = 8
	r := newRing()
	for s := 0; s < servers; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	counts := make([]int, servers)
	for _, k := range keys {
		counts[r.Pick(k)]++
	}
	fair := float64(len(keys)) / servers
	for s, n := range counts {
		if ratio := float64(n) / fair; ratio < 0.65 || ratio > 1.35 {
			t.Errorf("server %d owns %d keys (%.2fx fair share), want within [0.65,1.35]", s, n, ratio)
		}
	}
}

// TestRingStability: pick is deterministic and unaffected by re-sorting.
func TestRingStability(t *testing.T) {
	r := newRing()
	for s := 0; s < 4; s++ {
		r.Add(s)
	}
	keys := ringKeys(1000)
	first := make([]int, len(keys))
	for i, k := range keys {
		first[i] = r.Pick(k)
	}
	for i, k := range keys {
		if got := r.Pick(k); got != first[i] {
			t.Fatalf("pick(%q) changed between calls: %d then %d", k, first[i], got)
		}
	}
}

// TestRingKeyMovementOnAdd locks the consistent-hashing contract: growing
// the pool from N to N+1 servers moves roughly 1/(N+1) of the keys — and
// every key that moves, moves TO the new server, never between old ones.
func TestRingKeyMovementOnAdd(t *testing.T) {
	const before = 4
	r := newRing()
	for s := 0; s < before; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	old := make([]int, len(keys))
	for i, k := range keys {
		old[i] = r.Pick(k)
	}
	r.Add(before)
	moved := 0
	for i, k := range keys {
		now := r.Pick(k)
		if now == old[i] {
			continue
		}
		moved++
		if now != before {
			t.Fatalf("key %q moved from server %d to old server %d, not the new one", k, old[i], now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / (before + 1)
	if frac < ideal*0.6 || frac > ideal*1.6 {
		t.Errorf("add moved %.1f%% of keys, want ≈%.1f%% (±60%%)", 100*frac, 100*ideal)
	}
}

// TestRingKeyMovementOnRemove: removing a server reassigns only that
// server's keys; everything else stays put.
func TestRingKeyMovementOnRemove(t *testing.T) {
	const servers = 5
	r := newRing()
	for s := 0; s < servers; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	old := make([]int, len(keys))
	for i, k := range keys {
		old[i] = r.Pick(k)
	}
	const victim = 2
	r.Remove(victim)
	for i, k := range keys {
		now := r.Pick(k)
		if now == victim {
			t.Fatalf("key %q still maps to removed server", k)
		}
		if old[i] != victim && now != old[i] {
			t.Fatalf("key %q on surviving server %d was reassigned to %d", k, old[i], now)
		}
	}
}

// TestRingEmptyPanics: picking from an empty ring is a programming error.
func TestRingEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pick on empty ring did not panic")
		}
	}()
	newRing().Pick("k")
}
