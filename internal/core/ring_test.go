package core

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj:%010d", i)
	}
	return keys
}

// TestRingBalance: with ketama vnodes, key load across servers stays near
// uniform — every server within ±35% of the fair share for 8 servers.
func TestRingBalance(t *testing.T) {
	const servers = 8
	r := newRing()
	for s := 0; s < servers; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	counts := make([]int, servers)
	for _, k := range keys {
		counts[r.Pick(k)]++
	}
	fair := float64(len(keys)) / servers
	for s, n := range counts {
		if ratio := float64(n) / fair; ratio < 0.65 || ratio > 1.35 {
			t.Errorf("server %d owns %d keys (%.2fx fair share), want within [0.65,1.35]", s, n, ratio)
		}
	}
}

// TestRingStability: pick is deterministic and unaffected by re-sorting.
func TestRingStability(t *testing.T) {
	r := newRing()
	for s := 0; s < 4; s++ {
		r.Add(s)
	}
	keys := ringKeys(1000)
	first := make([]int, len(keys))
	for i, k := range keys {
		first[i] = r.Pick(k)
	}
	for i, k := range keys {
		if got := r.Pick(k); got != first[i] {
			t.Fatalf("pick(%q) changed between calls: %d then %d", k, first[i], got)
		}
	}
}

// TestRingKeyMovementOnAdd locks the consistent-hashing contract: growing
// the pool from N to N+1 servers moves roughly 1/(N+1) of the keys — and
// every key that moves, moves TO the new server, never between old ones.
func TestRingKeyMovementOnAdd(t *testing.T) {
	const before = 4
	r := newRing()
	for s := 0; s < before; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	old := make([]int, len(keys))
	for i, k := range keys {
		old[i] = r.Pick(k)
	}
	r.Add(before)
	moved := 0
	for i, k := range keys {
		now := r.Pick(k)
		if now == old[i] {
			continue
		}
		moved++
		if now != before {
			t.Fatalf("key %q moved from server %d to old server %d, not the new one", k, old[i], now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / (before + 1)
	if frac < ideal*0.6 || frac > ideal*1.6 {
		t.Errorf("add moved %.1f%% of keys, want ≈%.1f%% (±60%%)", 100*frac, 100*ideal)
	}
}

// TestRingMovementBoundAcrossJoins: growing the pool from 3 to 9 servers
// one join at a time, every join moves at most 1.5 × K/N keys (N the
// post-join size — the consistent-hashing bound with vnode slack), always
// a nonzero number of them, and every moved key lands on the joiner. This
// is the contract dynamic membership's migration cost rides on: each join
// re-streams ~1/N of the key space, never a reshuffle among old members.
func TestRingMovementBoundAcrossJoins(t *testing.T) {
	keys := ringKeys(20000)
	r := newRing()
	for s := 0; s < 3; s++ {
		r.Add(s)
	}
	owner := make([]int, len(keys))
	for i, k := range keys {
		owner[i] = r.Pick(k)
	}
	for n := 3; n < 9; n++ {
		r.Add(n)
		moved := 0
		for i, k := range keys {
			now := r.Pick(k)
			if now != owner[i] {
				moved++
				if now != n {
					t.Fatalf("join of %d moved %q from server %d to old server %d", n, k, owner[i], now)
				}
			}
			owner[i] = now
		}
		bound := int(1.5 * float64(len(keys)) / float64(n+1))
		if moved > bound {
			t.Errorf("join of %d moved %d keys, above the 1.5·K/N bound of %d", n, moved, bound)
		}
		if moved == 0 {
			t.Errorf("join of %d moved no keys at all", n)
		}
	}
}

// TestRingReplicaSetMovementOnJoin: the movement bound extends to whole
// replica sets — a join only ever inserts the joiner into a key's set
// (displacing at most the set's last member), never swaps two old servers,
// and the fraction of keys whose set changes at all stays within
// 1.5 × R/N.
func TestRingReplicaSetMovementOnJoin(t *testing.T) {
	const before, rf = 5, 2
	r := newRing()
	for s := 0; s < before; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	old := make(map[string][]int, len(keys))
	for _, k := range keys {
		old[k] = r.Replicas(k, rf)
	}
	r.Add(before)
	changed := 0
	for _, k := range keys {
		now := r.Replicas(k, rf)
		same := len(now) == len(old[k])
		for i := range now {
			if same && now[i] != old[k][i] {
				same = false
			}
		}
		if same {
			continue
		}
		changed++
		gained := false
		for _, id := range now {
			if id == before {
				gained = true
				continue
			}
			was := false
			for _, o := range old[k] {
				if o == id {
					was = true
				}
			}
			if !was {
				t.Fatalf("key %q gained old server %d on a join (set %v -> %v)", k, id, old[k], now)
			}
		}
		if !gained {
			t.Fatalf("key %q changed its set without gaining the joiner (%v -> %v)", k, old[k], now)
		}
	}
	frac := float64(changed) / float64(len(keys))
	if bound := 1.5 * float64(rf) / float64(before+1); frac > bound {
		t.Errorf("join changed %.1f%% of replica sets, above the 1.5·R/N bound of %.1f%%",
			100*frac, 100*bound)
	}
	if changed == 0 {
		t.Error("join changed no replica set at all")
	}
}

// TestRingKeyMovementOnRemove: removing a server reassigns only that
// server's keys; everything else stays put.
func TestRingKeyMovementOnRemove(t *testing.T) {
	const servers = 5
	r := newRing()
	for s := 0; s < servers; s++ {
		r.Add(s)
	}
	keys := ringKeys(20000)
	old := make([]int, len(keys))
	for i, k := range keys {
		old[i] = r.Pick(k)
	}
	const victim = 2
	r.Remove(victim)
	for i, k := range keys {
		now := r.Pick(k)
		if now == victim {
			t.Fatalf("key %q still maps to removed server", k)
		}
		if old[i] != victim && now != old[i] {
			t.Fatalf("key %q on surviving server %d was reassigned to %d", k, old[i], now)
		}
	}
}

// TestRingEmptyPanics: picking from an empty ring is a programming error.
func TestRingEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pick on empty ring did not panic")
		}
	}()
	newRing().Pick("k")
}
