package protocol

import (
	"fmt"
	"testing"
)

func sampleBatch(n int) *BatchFrame {
	f := &BatchFrame{BatchID: 4242, AckWanted: true}
	for i := 0; i < n; i++ {
		r := &Request{
			Op: OpSet, ReqID: uint64(100 + i), Key: fmt.Sprintf("obj:%010d", i),
			Flags: uint32(i), ValueSize: 128 * (i + 1), RespMR: i, AckWanted: true,
		}
		if i%3 == 0 {
			r.Op, r.ValueSize = OpGet, 0
		}
		f.Reqs = append(f.Reqs, r)
	}
	return f
}

func TestBatchFrameRoundTrip(t *testing.T) {
	f := sampleBatch(7)
	b := f.Marshal(nil)
	got, err := UnmarshalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchID != f.BatchID || got.AckWanted != f.AckWanted || len(got.Reqs) != len(f.Reqs) {
		t.Fatalf("frame mismatch: %+v vs %+v", got, f)
	}
	for i, r := range f.Reqs {
		g := got.Reqs[i]
		if g.Op != r.Op || g.ReqID != r.ReqID || g.Key != r.Key ||
			g.Flags != r.Flags || g.ValueSize != r.ValueSize || g.RespMR != r.RespMR {
			t.Errorf("op %d mismatch: %+v vs %+v", i, g, r)
		}
	}
}

func TestBatchWireSize(t *testing.T) {
	f := sampleBatch(4)
	want := batchFixedBytes + 4*4
	for _, r := range f.Reqs {
		want += r.WireSize()
	}
	if f.WireSize() != want {
		t.Errorf("WireSize = %d, want %d", f.WireSize(), want)
	}
	// The marshaled bytes cover everything except the opaque value region.
	vals := 0
	for _, r := range f.Reqs {
		vals += r.ValueSize
	}
	if got := len(f.Marshal(nil)); got != want-vals {
		t.Errorf("marshaled %d bytes, want %d (WireSize minus values)", got, want-vals)
	}
	// A batch of one costs the frame overhead over the bare request —
	// amortized away as the batch grows.
	one := &BatchFrame{BatchID: 1, Reqs: []*Request{{Op: OpGet, Key: "k"}}}
	if one.WireSize() != batchFixedBytes+4+one.Reqs[0].WireSize() {
		t.Errorf("singleton batch wire size %d", one.WireSize())
	}
}

func TestBatchMarshalReuse(t *testing.T) {
	f := sampleBatch(5)
	buf := make([]byte, 0, 4096)
	a := f.Marshal(buf)
	b := f.Marshal(a[:0])
	if &a[0] != &b[0] {
		t.Error("Marshal did not reuse the provided buffer")
	}
	if _, err := UnmarshalBatch(b); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalBatchCorrupt(t *testing.T) {
	f := sampleBatch(3)
	b := f.Marshal(nil)
	cases := map[string][]byte{
		"short fixed":   b[:8],
		"short table":   b[:batchFixedBytes+4],
		"wrong opcode":  append([]byte{byte(OpSet)}, b[1:]...),
		"truncated ops": b[:len(b)-10],
	}
	for name, buf := range cases {
		if _, err := UnmarshalBatch(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Offset pointing before the table.
	bad := f.Marshal(nil)
	bad[batchFixedBytes] = 0
	bad[batchFixedBytes+1] = 0
	bad[batchFixedBytes+2] = 0
	bad[batchFixedBytes+3] = 0
	if _, err := UnmarshalBatch(bad); err != ErrBadBatch {
		t.Errorf("bad offset err = %v", err)
	}
}

// Microbenchmarks for the hot encode/decode paths the batching pipeline
// leans on. Run with: go test ./internal/protocol -bench . -benchmem
func BenchmarkRequestAppendHeader(b *testing.B) {
	r := &Request{Op: OpSet, ReqID: 7, Key: "obj:0000000001", ValueSize: 32 << 10}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendHeader(buf[:0])
	}
}

func BenchmarkBatchMarshal16(b *testing.B) {
	f := sampleBatch(16)
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = f.Marshal(buf[:0])
	}
}

func BenchmarkBatchUnmarshal16(b *testing.B) {
	buf := sampleBatch(16).Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}
