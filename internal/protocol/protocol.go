// Package protocol defines the binary wire protocol between the
// libmemcached-style client runtime and the hybrid Memcached server: request
// and response headers, opcodes and status codes, plus marshaling used to
// pin down exact wire sizes. In the simulation, messages travel as structs
// for speed while Size fields always come from the marshaled header length,
// so the timing model matches the real encoding.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Opcode identifies a message type.
type Opcode uint8

const (
	OpSet Opcode = iota + 1
	OpGet
	OpDelete
	OpResponse
	// OpBufferAck tells the client its request (header and value) is
	// buffered server-side and its buffers are reusable; it also returns
	// one flow-control credit (the server re-posted a receive).
	OpBufferAck
	// Storage commands of the full memcached command set.
	OpAdd     // store only if the key does not exist
	OpReplace // store only if the key exists
	OpAppend  // concatenate after the existing value
	OpPrepend // concatenate before the existing value
	OpCAS     // store only if the caller's CAS token is current
	OpIncr    // arithmetic increment of a counter value
	OpDecr    // arithmetic decrement (floored at zero)
	OpTouch   // update the expiration time only
	// OpFlushAll invalidates every item on the server.
	OpFlushAll
	// OpDirQuery bootstraps the server-bypass read path: the response
	// carries a DirectoryInfo naming the server's published directory and
	// value MRs, after which the client resolves GET hits with one-sided
	// READs and never involves the server CPU again.
	OpDirQuery
)

func (o Opcode) String() string {
	switch o {
	case OpSet:
		return "SET"
	case OpGet:
		return "GET"
	case OpDelete:
		return "DELETE"
	case OpResponse:
		return "RESPONSE"
	case OpBufferAck:
		return "BUFFER_ACK"
	case OpAdd:
		return "ADD"
	case OpReplace:
		return "REPLACE"
	case OpAppend:
		return "APPEND"
	case OpPrepend:
		return "PREPEND"
	case OpCAS:
		return "CAS"
	case OpIncr:
		return "INCR"
	case OpDecr:
		return "DECR"
	case OpTouch:
		return "TOUCH"
	case OpFlushAll:
		return "FLUSH_ALL"
	case OpDirQuery:
		return "DIR_QUERY"
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Status is a response status code.
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusStored
	StatusDeleted
	StatusTooLarge
	StatusError
	// StatusNotStored rejects Add on an existing key or Replace/Append/
	// Prepend on a missing one.
	StatusNotStored
	// StatusExists rejects a CAS store whose token is stale.
	StatusExists
	// StatusBadValue rejects Incr/Decr on a non-counter value.
	StatusBadValue
	// StatusRecovering fails a request fast while the server rebuilds its
	// store from the SSD after a cold restart; clients treat it as
	// retryable backpressure.
	StatusRecovering
	// StatusBusy sheds a request at admission when the server's buffer
	// memory or storage queue is over its watermark. The response carries
	// a retry-after hint (Response.RetryAfterUS) in the flags slot;
	// clients treat it as retryable backpressure.
	StatusBusy
	// StatusNoReplica fails a replicated write whose coordinator could not
	// complete the replication chain (peers dead, partitioned, or holding
	// conflicting epochs beyond the retry budget). The write may have
	// landed on a subset of replicas; clients treat it as retryable and
	// anti-entropy reconverges the subset.
	StatusNoReplica
	// StatusCorrupt fails a read whose local copy failed integrity
	// verification: the item is quarantined, not served as garbage. A
	// replicated server converts it into a repair-pull from its peers
	// before answering; an unreplicated server degrades it to a miss.
	// Clients never observe this status on the wire.
	StatusCorrupt
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusStored:
		return "STORED"
	case StatusDeleted:
		return "DELETED"
	case StatusTooLarge:
		return "TOO_LARGE"
	case StatusError:
		return "ERROR"
	case StatusNotStored:
		return "NOT_STORED"
	case StatusExists:
		return "EXISTS"
	case StatusBadValue:
		return "BAD_VALUE"
	case StatusRecovering:
		return "RECOVERING"
	case StatusBusy:
		return "BUSY"
	case StatusNoReplica:
		return "NO_REPLICA"
	case StatusCorrupt:
		return "CORRUPT"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Request is a client→server message.
type Request struct {
	Op        Opcode
	ReqID     uint64
	Key       string
	Flags     uint32
	Expire    uint32 // seconds; 0 = never
	ValueSize int    // bytes of value carried (Set only)
	Value     any    // opaque payload token (Set only)
	// RespMR is the client's registered response region; the server
	// RDMA-WRITEs the response there (RDMA transport only).
	RespMR int
	// AckWanted asks the server to send OpBufferAck as soon as the
	// request is buffered (bset/bget semantics on an async server).
	AckWanted bool
	// CAS carries the caller's token for OpCAS.
	CAS uint64
	// Delta carries the Incr/Decr amount.
	Delta uint64
}

// Response is a server→client message.
type Response struct {
	Op        Opcode // OpResponse or OpBufferAck
	ReqID     uint64
	Status    Status
	Flags     uint32
	CAS       uint64
	ValueSize int
	Value     any
	// RetryAfterUS is the server's backoff hint in microseconds on a
	// StatusBusy rejection. A rejected request carries no item metadata,
	// so the hint reuses the flags slot on the wire: header size and
	// therefore all transfer timings are unchanged.
	RetryAfterUS uint32
}

// Header sizes, fixed by the marshaled layout below.
const (
	// op + ackWanted + pad(2) + flags + expire + valueSize + respMR +
	// reqID + keyLen + cas + delta
	reqFixedBytes  = 52
	RespHeaderSize = 32
)

// WireSize returns the bytes this request occupies on the wire:
// fixed header + key + value.
func (r *Request) WireSize() int {
	return reqFixedBytes + len(r.Key) + r.ValueSize
}

// HeaderSize returns the bytes of the request header alone (no value).
func (r *Request) HeaderSize() int {
	return reqFixedBytes + len(r.Key)
}

// WireSize returns the bytes this response occupies on the wire.
func (r *Response) WireSize() int {
	if r.Op == OpBufferAck {
		return RespHeaderSize
	}
	return RespHeaderSize + r.ValueSize
}

// MarshalHeader encodes the request header (everything but the value bytes).
func (r *Request) MarshalHeader() []byte {
	return r.AppendHeader(make([]byte, 0, r.HeaderSize()))
}

// AppendHeader encodes the request header onto dst and returns the extended
// slice, letting hot paths (batch frames, microbenchmarks) reuse one buffer
// across many requests instead of allocating per op.
func (r *Request) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(r.Op))
	if r.AckWanted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = append(dst, 0, 0) // pad
	dst = binary.LittleEndian.AppendUint32(dst, r.Flags)
	dst = binary.LittleEndian.AppendUint32(dst, r.Expire)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ValueSize))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.RespMR))
	dst = binary.LittleEndian.AppendUint64(dst, r.ReqID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(r.Key)))
	dst = binary.LittleEndian.AppendUint64(dst, r.CAS)
	dst = binary.LittleEndian.AppendUint64(dst, r.Delta)
	dst = append(dst, r.Key...)
	return dst
}

// Server-bypass directory wire layout. The directory is a bucket array of
// fixed-size slots inside one registered MR; clients probe it with one-sided
// READs, so the slot geometry is part of the protocol, not the server.
const (
	// DirSlotBytes is one directory slot on the wire: key digest (8) +
	// version (8) + value offset (8) + value length (8) + flags (4) +
	// pad (4) + CAS (8).
	DirSlotBytes = 48
	// DirSegHeaderBytes is the validation header an offset-addressed value
	// READ carries alongside the value bytes: digest (8) + version (8) +
	// size (4) + flags (4) + CAS (8) + expiry (8).
	DirSegHeaderBytes = 40
	// DirInfoBytes is the fixed OpDirQuery response body: directory MR key
	// (8) + value MR key (8) + bucket count (8) + hot-set version (8) +
	// hot-set count (8) + membership epoch (8). The hot-key digests follow
	// at 8 bytes each; use DirectoryInfo.WireSize for the full payload.
	DirInfoBytes = 48
)

// DirSlotSSD in DirSlot.Flags marks a value whose authoritative copy lives
// in an SSD extent: it is not READ-addressable and the client must fall
// back to RPC.
const DirSlotSSD uint32 = 1

// DirectoryInfo is the OpDirQuery response payload: where the directory
// lives, how it is shaped, and — piggybacked on the same bootstrap — the
// server's currently published hot-key set, so clients learn which keys
// merit replicated-read fan-out without a dedicated control channel.
type DirectoryInfo struct {
	DirMR   int // rkey of the slot-array MR
	ValMR   int // rkey of the offset-addressed value MR
	Buckets int // slot count; bucket(key) = KeyDigest(key) % Buckets

	// Hot is the server's published hot-key digest set (sorted), and
	// HotVersion its monotone publication version: a client replaces its
	// cached set whenever the version moves.
	Hot        []uint64
	HotVersion uint64

	// MemberEpoch is the server's membership epoch (0 on static fleets).
	// A client seeing it advance drops its location cache for the
	// connection: placement learned under an older epoch is unusable for
	// one-sided READs.
	MemberEpoch uint64
}

// WireSize returns the OpDirQuery response payload size: the fixed header
// plus one digest per published hot key.
func (i *DirectoryInfo) WireSize() int { return DirInfoBytes + 8*len(i.Hot) }

// DirSlot is the client-side decode of one directory slot READ.
type DirSlot struct {
	Digest  uint64 // KeyDigest of the occupying key; 0 = empty slot
	Version uint64 // seqlock: odd = mutation in progress
	Off     int64  // value segment offset inside ValMR
	Len     int    // value bytes
	SSD     bool   // decoded from Flags&DirSlotSSD
	Flags   uint32 // item flags
	CAS     uint64 // item CAS token
}

// DirSegment is the client-side decode of one value segment READ: the value
// bytes prefixed by a validation header that lets the client detect a slot
// that was republished for a different key or bumped mid-flight.
type DirSegment struct {
	Digest    uint64
	Version   uint64
	ValueSize int
	Flags     uint32
	CAS       uint64
	ExpireAt  int64 // absolute sim time; 0 = never
	Value     any
}

// WireSize returns the bytes a segment READ of this value moves.
func (s *DirSegment) WireSize() int { return DirSegHeaderBytes + s.ValueSize }

// KeyDigest hashes a key for directory slot matching (FNV-1a). Digest 0 is
// reserved to mean "empty slot", so real digests are folded away from it.
func KeyDigest(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	d := uint64(offset64)
	for i := 0; i < len(key); i++ {
		d ^= uint64(key[i])
		d *= prime64
	}
	if d == 0 {
		d = 1
	}
	return d
}

// ErrShortHeader reports a truncated or corrupt header.
var ErrShortHeader = errors.New("protocol: short or corrupt header")

// UnmarshalHeader decodes a request header produced by MarshalHeader.
func UnmarshalHeader(b []byte) (*Request, error) {
	if len(b) < reqFixedBytes {
		return nil, ErrShortHeader
	}
	r := &Request{
		Op:        Opcode(b[0]),
		AckWanted: b[1] == 1,
		Flags:     binary.LittleEndian.Uint32(b[4:]),
		Expire:    binary.LittleEndian.Uint32(b[8:]),
		ValueSize: int(binary.LittleEndian.Uint32(b[12:])),
		RespMR:    int(binary.LittleEndian.Uint32(b[16:])),
		ReqID:     binary.LittleEndian.Uint64(b[20:]),
	}
	keyLen := binary.LittleEndian.Uint64(b[28:])
	r.CAS = binary.LittleEndian.Uint64(b[36:])
	r.Delta = binary.LittleEndian.Uint64(b[44:])
	if uint64(len(b)) < uint64(reqFixedBytes)+keyLen {
		return nil, ErrShortHeader
	}
	r.Key = string(b[reqFixedBytes : uint64(reqFixedBytes)+keyLen])
	return r, nil
}

// Marshal encodes the response header.
func (r *Response) Marshal() []byte {
	buf := make([]byte, 0, RespHeaderSize)
	buf = append(buf, byte(r.Op), byte(r.Status), 0, 0)
	if r.Status == StatusBusy {
		buf = binary.LittleEndian.AppendUint32(buf, r.RetryAfterUS)
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, r.Flags)
	}
	buf = binary.LittleEndian.AppendUint64(buf, r.CAS)
	buf = binary.LittleEndian.AppendUint64(buf, r.ReqID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ValueSize))
	return buf
}

// UnmarshalResponse decodes a response header.
func UnmarshalResponse(b []byte) (*Response, error) {
	if len(b) < RespHeaderSize {
		return nil, ErrShortHeader
	}
	r := &Response{
		Op:        Opcode(b[0]),
		Status:    Status(b[1]),
		Flags:     binary.LittleEndian.Uint32(b[4:]),
		CAS:       binary.LittleEndian.Uint64(b[8:]),
		ReqID:     binary.LittleEndian.Uint64(b[16:]),
		ValueSize: int(binary.LittleEndian.Uint64(b[24:])),
	}
	if r.Status == StatusBusy {
		r.RetryAfterUS, r.Flags = r.Flags, 0
	}
	return r, nil
}
