package protocol

import (
	"testing"
	"testing/quick"
)

func TestRequestHeaderRoundTrip(t *testing.T) {
	r := &Request{
		Op: OpSet, ReqID: 12345, Key: "user:99:profile",
		Flags: 7, Expire: 3600, ValueSize: 32 * 1024,
		RespMR: 42, AckWanted: true,
	}
	b := r.MarshalHeader()
	if len(b) != r.HeaderSize() {
		t.Fatalf("marshaled %d bytes, HeaderSize says %d", len(b), r.HeaderSize())
	}
	got, err := UnmarshalHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != r.Op || got.ReqID != r.ReqID || got.Key != r.Key ||
		got.Flags != r.Flags || got.Expire != r.Expire ||
		got.ValueSize != r.ValueSize || got.RespMR != r.RespMR ||
		got.AckWanted != r.AckWanted {
		t.Errorf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{
		Op: OpResponse, ReqID: 777, Status: StatusOK,
		Flags: 3, CAS: 987654321, ValueSize: 8192,
	}
	b := r.Marshal()
	if len(b) != RespHeaderSize {
		t.Fatalf("marshaled %d bytes, want %d", len(b), RespHeaderSize)
	}
	got, err := UnmarshalResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != r.Op || got.ReqID != r.ReqID || got.Status != r.Status ||
		got.Flags != r.Flags || got.CAS != r.CAS || got.ValueSize != r.ValueSize {
		t.Errorf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestWireSizes(t *testing.T) {
	set := &Request{Op: OpSet, Key: "abc", ValueSize: 1000}
	if set.WireSize() != set.HeaderSize()+1000 {
		t.Errorf("set wire size %d", set.WireSize())
	}
	get := &Request{Op: OpGet, Key: "abc"}
	if get.WireSize() != get.HeaderSize() {
		t.Errorf("get wire size %d includes phantom value", get.WireSize())
	}
	ack := &Response{Op: OpBufferAck, ValueSize: 999999}
	if ack.WireSize() != RespHeaderSize {
		t.Errorf("ack wire size %d, want header only", ack.WireSize())
	}
	resp := &Response{Op: OpResponse, ValueSize: 100}
	if resp.WireSize() != RespHeaderSize+100 {
		t.Errorf("resp wire size %d", resp.WireSize())
	}
}

func TestUnmarshalShortBuffers(t *testing.T) {
	if _, err := UnmarshalHeader(make([]byte, 10)); err != ErrShortHeader {
		t.Errorf("short header err = %v", err)
	}
	if _, err := UnmarshalResponse(make([]byte, 5)); err != ErrShortHeader {
		t.Errorf("short response err = %v", err)
	}
	// Header whose key length field exceeds the buffer.
	r := &Request{Op: OpGet, Key: "0123456789"}
	b := r.MarshalHeader()
	if _, err := UnmarshalHeader(b[:len(b)-4]); err != ErrShortHeader {
		t.Errorf("truncated key err = %v", err)
	}
}

func TestOpcodeAndStatusStrings(t *testing.T) {
	cases := map[string]string{
		OpSet.String():          "SET",
		OpGet.String():          "GET",
		OpDelete.String():       "DELETE",
		OpResponse.String():     "RESPONSE",
		OpBufferAck.String():    "BUFFER_ACK",
		StatusOK.String():       "OK",
		StatusNotFound.String(): "NOT_FOUND",
		StatusStored.String():   "STORED",
		StatusDeleted.String():  "DELETED",
		StatusTooLarge.String(): "TOO_LARGE",
		StatusError.String():    "ERROR",
		Opcode(99).String():     "Opcode(99)",
		Status(99).String():     "Status(99)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("%q != %q", got, want)
		}
	}
}

// Property: header round trip is lossless for arbitrary fields.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(reqID uint64, key string, flags, expire uint32, vs uint16, mr uint8, ack bool) bool {
		r := &Request{
			Op: OpSet, ReqID: reqID, Key: key, Flags: flags, Expire: expire,
			ValueSize: int(vs), RespMR: int(mr), AckWanted: ack,
		}
		got, err := UnmarshalHeader(r.MarshalHeader())
		if err != nil {
			return false
		}
		return got.ReqID == r.ReqID && got.Key == r.Key && got.Flags == r.Flags &&
			got.Expire == r.Expire && got.ValueSize == r.ValueSize &&
			got.RespMR == r.RespMR && got.AckWanted == r.AckWanted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UnmarshalHeader and UnmarshalResponse never panic on arbitrary
// bytes — they either decode or return ErrShortHeader.
func TestUnmarshalRobustnessProperty(t *testing.T) {
	f := func(b []byte) bool {
		if _, err := UnmarshalHeader(b); err != nil && err != ErrShortHeader {
			return false
		}
		if _, err := UnmarshalResponse(b); err != nil && err != ErrShortHeader {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a marshaled header always round-trips regardless of opcode.
func TestAllOpcodesRoundTrip(t *testing.T) {
	for op := OpSet; op <= OpFlushAll; op++ {
		r := &Request{Op: op, ReqID: 9, Key: "key", CAS: 3, Delta: 4}
		got, err := UnmarshalHeader(r.MarshalHeader())
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got.Op != op || got.CAS != 3 || got.Delta != 4 {
			t.Errorf("%v round trip: %+v", op, got)
		}
	}
}
