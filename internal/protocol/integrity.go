package protocol

import (
	"fmt"
	"hash/fnv"
)

// Garbled wraps a value whose bits were corrupted somewhere between the
// writer and the reader — on rotting media served without verification, or
// in a frame corrupted in flight. The simulation moves ownership tokens
// rather than bytes, so "flipped bits" are modeled by this wrapper: any
// consumer that type-asserts the original value fails, and ValueSum over a
// Garbled value differs from the sum over the original, which is exactly
// what the corruption oracle and the content-aware scrub key on.
type Garbled struct {
	Inner any
}

// ValueSum is the content checksum of a stored value: a deterministic hash
// of the value's bytes at this fidelity. Two replicas holding the same key
// at the same epoch but different bytes produce different sums — the
// divergence signal the scrub digest folds in. Garbled values deliberately
// sum differently from their originals.
func ValueSum(v any) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		// garbleMark separates a corrupted value's sum from its
		// original's without simulating actual bit flips.
		garbleMark = 0x9e3779b97f4a7c15
	)
	switch x := v.(type) {
	case nil:
		return 0
	case Garbled:
		return ValueSum(x.Inner)*prime64 ^ garbleMark
	case uint64:
		h := uint64(offset64)
		for i := 0; i < 8; i++ {
			h = (h ^ (x >> (8 * i) & 0xff)) * prime64
		}
		return h
	case string:
		h := fnv.New64a()
		h.Write([]byte(x))
		return h.Sum64()
	case []byte:
		h := fnv.New64a()
		h.Write(x)
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%T:%v", v, v)
		return h.Sum64()
	}
}
