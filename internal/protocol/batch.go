package protocol

import (
	"encoding/binary"
	"errors"
)

// OpBatch identifies a BatchFrame on the wire. It lives outside the
// contiguous command block so adding future commands keeps their numbering.
const OpBatch Opcode = 64

// ErrBadBatch reports a truncated or internally inconsistent batch frame.
var ErrBadBatch = errors.New("protocol: short or corrupt batch frame")

// Batch frame fixed layout: op + ackWanted + pad(2) + count(u32) +
// batchID(u64), followed by a u32 offset table (one entry per op, each the
// byte offset of that op's header inside the frame), the per-op request
// headers packed back to back, and finally one trailing region holding the
// inline SET values in op order.
const batchFixedBytes = 16

// BatchFrame is a doorbell-coalesced client→server message: N request
// headers (plus inline SET payloads) carried in one wire frame, costing one
// send, one flow-control credit, and one receive-repost instead of N.
//
// Each member request keeps its own ReqID and RespMR, so server responses
// still scatter one-per-op into the issuing client's registered response
// slots; only the request direction is coalesced. AckWanted asks the server
// for a single early OpBufferAck covering the whole batch (ReqID = BatchID).
type BatchFrame struct {
	BatchID   uint64
	AckWanted bool
	Reqs      []*Request
}

// WireSize returns the bytes this frame occupies on the wire: the fixed
// batch header, the per-op offset table, every member header, and the
// trailing inline-value region.
func (f *BatchFrame) WireSize() int {
	n := batchFixedBytes + 4*len(f.Reqs)
	for _, r := range f.Reqs {
		n += r.WireSize()
	}
	return n
}

// Marshal encodes the frame header, offset table, and member headers into
// dst (appending; pass nil or a reused slice). Inline values occupy the
// trailing region in WireSize terms but, as everywhere in the simulation,
// the value bytes themselves travel as opaque tokens — Marshal reserves no
// space for them.
func (f *BatchFrame) Marshal(dst []byte) []byte {
	dst = append(dst, byte(OpBatch))
	if f.AckWanted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = append(dst, 0, 0) // pad
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Reqs)))
	dst = binary.LittleEndian.AppendUint64(dst, f.BatchID)
	off := batchFixedBytes + 4*len(f.Reqs)
	for _, r := range f.Reqs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(off))
		off += r.HeaderSize()
	}
	for _, r := range f.Reqs {
		dst = r.AppendHeader(dst)
	}
	return dst
}

// UnmarshalBatch decodes a frame produced by Marshal. Member value bytes are
// not materialized (values are opaque tokens in the simulation), so decoded
// requests carry ValueSize but a nil Value.
func UnmarshalBatch(b []byte) (*BatchFrame, error) {
	if len(b) < batchFixedBytes || Opcode(b[0]) != OpBatch {
		return nil, ErrBadBatch
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	f := &BatchFrame{
		BatchID:   binary.LittleEndian.Uint64(b[8:]),
		AckWanted: b[1] == 1,
		Reqs:      make([]*Request, 0, count),
	}
	tbl := batchFixedBytes
	if len(b) < tbl+4*count {
		return nil, ErrBadBatch
	}
	prev := 0
	for i := 0; i < count; i++ {
		off := int(binary.LittleEndian.Uint32(b[tbl+4*i:]))
		if off < tbl+4*count || off < prev || off > len(b) {
			return nil, ErrBadBatch
		}
		r, err := UnmarshalHeader(b[off:])
		if err != nil {
			return nil, err
		}
		prev = off + r.HeaderSize()
		f.Reqs = append(f.Reqs, r)
	}
	return f, nil
}
