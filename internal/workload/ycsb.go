package workload

import "fmt"

// YCSB core-workload presets (Cooper et al., SoCC 2010 — reference [6] of
// the paper). The paper's micro-benchmarks mimic these cloud-serving
// mixes; the presets make the mapping explicit:
//
//	A  update-heavy   50/50 read/update, zipfian
//	B  read-mostly    95/5 read/update, zipfian
//	C  read-only      100% read, zipfian
//	D  read-latest    95/5 read/insert, latest distribution
//	E  short-scans    95/5 scan/insert, zipfian start keys
//	F  read-mod-write 50/50 read/RMW, zipfian
//
// Workload E's scans map onto consecutive multi-GETs of the canonical key
// space (drivers draw them with Generator.NextScan); ScanMax carries
// YCSB's maxscanlength (100).
type YCSB byte

const (
	YCSBA YCSB = 'A'
	YCSBB YCSB = 'B'
	YCSBC YCSB = 'C'
	YCSBD YCSB = 'D'
	YCSBE YCSB = 'E'
	YCSBF YCSB = 'F'
)

// YCSBConfig returns the workload Config for one preset. For D the
// generator grows the keyspace on writes and draws reads from a "latest"
// distribution. ReadModifyWrite reports whether writes should execute as
// Get + CAS (workload F); the op stream itself is a 50/50 mix.
func YCSBConfig(w YCSB, keys, valueSize int, seed int64) (cfg Config, readModifyWrite bool, err error) {
	base := Config{Keys: keys, ValueSize: valueSize, Seed: seed, ZipfS: 0.99}
	switch w {
	case YCSBA:
		base.ReadFraction, base.Pattern = 0.5, Zipf
	case YCSBB:
		base.ReadFraction, base.Pattern = 0.95, Zipf
	case YCSBC:
		base.ReadFraction, base.Pattern = 1.0, Zipf
	case YCSBD:
		base.ReadFraction, base.Pattern = 0.95, Latest
		base.GrowOnWrite = true
	case YCSBE:
		base.ReadFraction, base.Pattern = 0.95, Zipf
		base.GrowOnWrite = true
		base.ScanMax = 100
	case YCSBF:
		base.ReadFraction, base.Pattern = 0.5, Zipf
		return base, true, nil
	default:
		return Config{}, false, fmt.Errorf("workload: unknown YCSB preset %q (have A,B,C,D,E,F)", string(w))
	}
	return base, false, nil
}

// YCSBName renders "YCSB-A" style labels.
func YCSBName(w YCSB) string { return "YCSB-" + string(w) }
