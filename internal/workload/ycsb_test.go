package workload

import (
	"fmt"
	"math"
	"testing"
)

func TestYCSBPresets(t *testing.T) {
	cases := []struct {
		w       YCSB
		read    float64
		pat     Pattern
		grow    bool
		rmw     bool
		scanMax int
	}{
		{YCSBA, 0.5, Zipf, false, false, 0},
		{YCSBB, 0.95, Zipf, false, false, 0},
		{YCSBC, 1.0, Zipf, false, false, 0},
		{YCSBD, 0.95, Latest, true, false, 0},
		{YCSBE, 0.95, Zipf, true, false, 100},
		{YCSBF, 0.5, Zipf, false, true, 0},
	}
	for _, c := range cases {
		cfg, rmw, err := YCSBConfig(c.w, 1000, 4096, 1)
		if err != nil {
			t.Fatalf("%s: %v", YCSBName(c.w), err)
		}
		if cfg.ReadFraction != c.read || cfg.Pattern != c.pat ||
			cfg.GrowOnWrite != c.grow || rmw != c.rmw || cfg.ScanMax != c.scanMax {
			t.Errorf("%s: cfg=%+v rmw=%v", YCSBName(c.w), cfg, rmw)
		}
		if cfg.Keys != 1000 || cfg.ValueSize != 4096 {
			t.Errorf("%s: size knobs not threaded", YCSBName(c.w))
		}
	}
	if _, _, err := YCSBConfig('Z', 10, 10, 1); err == nil {
		t.Errorf("unknown preset accepted")
	}
}

// TestYCSBOpMixes pins each preset's realized operation mix over a long
// draw: the read (or scan) share must land on the preset's nominal mix.
func TestYCSBOpMixes(t *testing.T) {
	const n = 20000
	cases := []struct {
		w    YCSB
		read float64
	}{
		{YCSBA, 0.5}, {YCSBB, 0.95}, {YCSBC, 1.0},
		{YCSBD, 0.95}, {YCSBE, 0.95}, {YCSBF, 0.5},
	}
	for _, c := range cases {
		cfg, _, err := YCSBConfig(c.w, 1000, 128, 42)
		if err != nil {
			t.Fatalf("%s: %v", YCSBName(c.w), err)
		}
		g := New(cfg)
		reads, writes, scans := 0, 0, 0
		for i := 0; i < n; i++ {
			var kind OpKind
			if c.w == YCSBE {
				var ln int
				kind, _, ln = g.NextScan()
				if kind == OpScan && (ln < 1 || ln > cfg.ScanMax) {
					t.Fatalf("%s: scan length %d outside [1,%d]", YCSBName(c.w), ln, cfg.ScanMax)
				}
			} else {
				kind, _ = g.Next()
			}
			switch kind {
			case OpGet:
				reads++
			case OpScan:
				scans++
			case OpSet:
				writes++
			}
		}
		got := float64(reads+scans) / n
		if math.Abs(got-c.read) > 0.02 {
			t.Errorf("%s: read/scan share %.3f, want %.2f±0.02", YCSBName(c.w), got, c.read)
		}
		if c.w == YCSBE && scans == 0 {
			t.Errorf("YCSB-E drew no scans")
		}
		if c.read < 1 && writes == 0 {
			t.Errorf("%s: mixed preset drew no writes", YCSBName(c.w))
		}
	}
}

func TestLatestDistributionFavorsNewKeys(t *testing.T) {
	g := New(Config{Keys: 10000, Pattern: Latest, ReadFraction: 1, Seed: 6})
	newest := 0
	const n = 50000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		// The newest 1% of the keyspace are keys 9900..9999.
		var idx int
		if _, err := sscanKey(key, &idx); err != nil {
			t.Fatalf("bad key %q", key)
		}
		if idx >= 9900 {
			newest++
		}
	}
	frac := float64(newest) / n
	if frac < 0.25 {
		t.Errorf("newest 1%% of keys drew %.1f%% of reads, want ≥25%% under latest", frac*100)
	}
}

func TestGrowOnWriteInserts(t *testing.T) {
	g := New(Config{Keys: 100, Pattern: Latest, ReadFraction: 0, Seed: 7, GrowOnWrite: true})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		op, key := g.Next()
		if op != OpSet {
			t.Fatalf("write-only mix produced a get")
		}
		if seen[key] {
			t.Fatalf("insert reused key %s", key)
		}
		seen[key] = true
	}
	if g.High() != 150 {
		t.Errorf("keyspace high %d after 50 inserts over 100, want 150", g.High())
	}
}

func TestLatestTracksInsertFrontier(t *testing.T) {
	g := New(Config{Keys: 1000, Pattern: Latest, ReadFraction: 0.5, Seed: 8, GrowOnWrite: true})
	const n = 20000
	beyond := 0
	for i := 0; i < n; i++ {
		op, key := g.Next()
		var idx int
		if _, err := sscanKey(key, &idx); err != nil {
			t.Fatalf("bad key %q", key)
		}
		if op == OpGet && idx >= 1000 {
			beyond++ // read of an inserted (post-preload) key
		}
	}
	if beyond == 0 {
		t.Errorf("latest reads never reached inserted keys")
	}
	if g.High() <= 1000 {
		t.Errorf("no growth recorded")
	}
	if math.Abs(float64(g.High()-1000)/float64(n)-0.5) > 0.05 {
		t.Errorf("inserts %d of %d ops, want ≈50%%", g.High()-1000, n)
	}
}

// sscanKey parses the canonical "obj:%010d" key format.
func sscanKey(key string, idx *int) (int, error) {
	return fmt.Sscanf(key, "obj:%d", idx)
}
