package workload

import (
	"math"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	g := New(Config{Keys: 10000, Pattern: Zipf, ReadFraction: 1, Seed: 1})
	counts := make(map[string]int)
	const n = 200000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		counts[key]++
	}
	// The hottest key of a zipf(0.99) over 10k keys draws ≈10% of requests.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	frac := float64(max) / n
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("hottest key draws %.2f%%, want ≈10%%", frac*100)
	}
	// Far fewer distinct keys touched than uniform would touch.
	if len(counts) > 9000 {
		t.Errorf("zipf touched %d of 10000 keys; not skewed", len(counts))
	}
}

func TestUniformCoverage(t *testing.T) {
	g := New(Config{Keys: 1000, Pattern: Uniform, ReadFraction: 1, Seed: 2})
	counts := make(map[string]int)
	const n = 100000
	for i := 0; i < n; i++ {
		_, key := g.Next()
		counts[key]++
	}
	if len(counts) < 990 {
		t.Errorf("uniform touched only %d of 1000 keys", len(counts))
	}
	for key, c := range counts {
		if math.Abs(float64(c)-100) > 60 {
			t.Errorf("key %s drawn %d times, want ≈100", key, c)
			break
		}
	}
}

func TestSequentialSweeps(t *testing.T) {
	g := New(Config{Keys: 5, Pattern: Sequential, ReadFraction: 1, Seed: 3})
	var keys []string
	for i := 0; i < 7; i++ {
		_, k := g.Next()
		keys = append(keys, k)
	}
	if keys[0] != g.Key(0) || keys[4] != g.Key(4) || keys[5] != g.Key(0) {
		t.Errorf("sequential order wrong: %v", keys)
	}
}

func TestReadFractionMix(t *testing.T) {
	g := New(Config{Keys: 100, Pattern: Uniform, ReadFraction: 0.5, Seed: 4})
	gets := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op, _ := g.Next()
		if op == OpGet {
			gets++
		}
	}
	frac := float64(gets) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("read fraction %.3f, want ≈0.5", frac)
	}
	readOnly := New(Config{Keys: 100, Pattern: Uniform, ReadFraction: 1, Seed: 5})
	for i := 0; i < 1000; i++ {
		if op, _ := readOnly.Next(); op != OpGet {
			t.Fatalf("read-only mix produced a set")
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []string {
		g := New(Config{Keys: 1000, Pattern: Zipf, ReadFraction: 0.5, Seed: 42})
		var out []string
		for i := 0; i < 500; i++ {
			op, k := g.Next()
			out = append(out, k+string(rune('0'+int(op))))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestScrambleStaysInRange(t *testing.T) {
	for rank := 0; rank < 100000; rank++ {
		idx := scramble(rank, 777)
		if idx < 0 || idx >= 777 {
			t.Fatalf("scramble(%d,777) = %d out of range", rank, idx)
		}
	}
}

func TestBlockConfig(t *testing.T) {
	b := BlockConfig{BlockSize: 2 << 20, ChunkSize: 256 * 1024, TotalBytes: 64 << 20}
	if b.Blocks() != 32 {
		t.Errorf("blocks %d, want 32", b.Blocks())
	}
	if b.ChunksPerBlock() != 8 {
		t.Errorf("chunks/block %d, want 8", b.ChunksPerBlock())
	}
	if b.ChunkKey(1, 2) == b.ChunkKey(1, 3) || b.ChunkKey(1, 2) == b.ChunkKey(2, 2) {
		t.Errorf("chunk keys collide")
	}
}

func TestZipfCDFMonotone(t *testing.T) {
	cdf := zipfCDF(1000, 0.99)
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Errorf("CDF does not end at 1: %v", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}
