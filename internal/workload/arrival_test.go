package workload

import (
	"testing"

	"hybridkv/internal/sim"
)

func TestSteadyThinkIsConstant(t *testing.T) {
	a := Arrival{Schedule: Steady, Base: 30 * sim.Microsecond}
	for _, now := range []sim.Time{0, sim.Millisecond, sim.Second} {
		if got := a.Think(now); got != 30*sim.Microsecond {
			t.Errorf("Think(%v) = %v, want 30µs", now, got)
		}
	}
}

func TestFlashCrowdSpikesInsideWindow(t *testing.T) {
	a := Arrival{
		Schedule: FlashCrowd, Base: 80 * sim.Microsecond,
		Spike: 8, BurstStart: 10 * sim.Millisecond, BurstLen: 5 * sim.Millisecond,
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.Think(sim.Millisecond); got != 80*sim.Microsecond {
		t.Errorf("pre-burst think %v, want base", got)
	}
	if got := a.Think(12 * sim.Millisecond); got != 10*sim.Microsecond {
		t.Errorf("in-burst think %v, want base/8 = 10µs", got)
	}
	if got := a.Think(20 * sim.Millisecond); got != 80*sim.Microsecond {
		t.Errorf("post-burst think %v, want base", got)
	}
	if a.InBurst(sim.Millisecond) || !a.InBurst(12*sim.Millisecond) {
		t.Errorf("InBurst window wrong")
	}
	// The window is half-open: the end instant is back to base rate.
	if a.InBurst(15 * sim.Millisecond) {
		t.Errorf("InBurst true at the window end")
	}
}

func TestDiurnalSwingsBetweenPeakAndTrough(t *testing.T) {
	a := Arrival{
		Schedule: Diurnal, Base: 100 * sim.Microsecond,
		Period: 40 * sim.Millisecond, Trough: 0.25,
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Peak rate at Period/4 (sin = +1): think = base.
	peak := a.Think(10 * sim.Millisecond)
	// Trough at 3*Period/4 (sin = -1): think = base/0.25 = 4×base.
	trough := a.Think(30 * sim.Millisecond)
	if peak != 100*sim.Microsecond {
		t.Errorf("peak think %v, want base", peak)
	}
	if trough < 390*sim.Microsecond || trough > 410*sim.Microsecond {
		t.Errorf("trough think %v, want ≈4×base", trough)
	}
	// One full period later the shape repeats.
	if again := a.Think(50 * sim.Millisecond); again != peak {
		t.Errorf("periodicity broken: %v vs %v", again, peak)
	}
}

func TestArrivalValidate(t *testing.T) {
	if err := (Arrival{Schedule: FlashCrowd, Base: sim.Microsecond}).Validate(); err == nil {
		t.Errorf("flash crowd without BurstLen accepted")
	}
	if err := (Arrival{Schedule: Diurnal, Base: sim.Microsecond}).Validate(); err == nil {
		t.Errorf("diurnal without Period accepted")
	}
	if err := (Arrival{Schedule: Steady}).Validate(); err != nil {
		t.Errorf("steady rejected: %v", err)
	}
}
