// Package workload generates the OHB-style micro-benchmark workloads the
// paper evaluates with (Section VI-A): uniform and Zipf-like skewed key
// access patterns, configurable key-value sizes, read:write operation
// mixes, and the block-based bursty I/O pattern that mimics burst-buffer
// workloads (Listing 2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Pattern selects the key access distribution.
type Pattern int

const (
	// Zipf is a YCSB-style zipfian distribution: repeated requests hit a
	// small popular subset.
	Zipf Pattern = iota
	// Uniform picks keys uniformly at random.
	Uniform
	// Sequential sweeps the keyspace in order (preloads, scans).
	Sequential
	// Latest skews reads toward recently inserted keys (YCSB workload D):
	// the drawn rank counts back from the newest key.
	Latest
)

func (pt Pattern) String() string {
	switch pt {
	case Zipf:
		return "zipf"
	case Uniform:
		return "uniform"
	case Sequential:
		return "sequential"
	case Latest:
		return "latest"
	}
	return fmt.Sprintf("Pattern(%d)", int(pt))
}

// OpKind is the operation type drawn from the mix.
type OpKind int

const (
	OpGet OpKind = iota
	OpSet
	// OpScan is a short range read of consecutive keys (YCSB workload E);
	// drawn only by NextScan.
	OpScan
)

// Config describes one workload.
type Config struct {
	// Keys is the keyspace size.
	Keys int
	// ValueSize is the value size in bytes (the paper's "key-value pair
	// size" knob).
	ValueSize int
	// ReadFraction is the share of Gets (1.0 = read-only; 0.5 = the
	// paper's write-heavy 50:50 mix).
	ReadFraction float64
	// Pattern selects the distribution.
	Pattern Pattern
	// ZipfS is the zipfian exponent (default 0.99, YCSB's theta).
	ZipfS float64
	// Seed makes the stream reproducible.
	Seed int64
	// GrowOnWrite makes every write target a brand-new key appended to
	// the keyspace (YCSB D inserts). Keys then counts the preloaded
	// prefix; the generator tracks growth.
	GrowOnWrite bool
	// ScanMax bounds the scan length drawn by NextScan (uniform in
	// [1, ScanMax]; default 100, YCSB E's maxscanlength).
	ScanMax int
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	cdf  []float64 // zipf cumulative distribution over ranks
	seq  int
	high int // current keyspace size (grows with GrowOnWrite inserts)
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.Keys <= 0 {
		panic("workload: Keys must be positive")
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 0.99
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), high: cfg.Keys}
	if cfg.Pattern == Zipf || cfg.Pattern == Latest {
		g.cdf = zipfCDF(cfg.Keys, cfg.ZipfS)
	}
	return g
}

// zipfCDF precomputes the cumulative rank distribution P(rank ≤ k) for a
// zipfian with exponent s over n ranks.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Key renders the canonical key for index i.
func (g *Generator) Key(i int) string {
	return fmt.Sprintf("obj:%010d", i)
}

// nextIndex draws a key index per the configured pattern.
func (g *Generator) nextIndex() int {
	switch g.cfg.Pattern {
	case Uniform:
		return g.rng.Intn(g.cfg.Keys)
	case Sequential:
		i := g.seq % g.cfg.Keys
		g.seq++
		return i
	case Latest:
		// Rank 0 = the newest key; draw the rank zipfian and count back.
		rank := g.zipfRank()
		if rank >= g.high {
			rank = g.high - 1
		}
		return g.high - 1 - rank
	default: // Zipf
		// Scramble rank → key index so popular keys are spread across the
		// keyspace (and across servers), as YCSB does.
		return scramble(g.zipfRank(), g.cfg.Keys)
	}
}

// zipfRank draws a popularity rank from the precomputed CDF.
func (g *Generator) zipfRank() int {
	u := g.rng.Float64()
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// scramble maps a popularity rank to a stable pseudo-random key index.
func scramble(rank, n int) int {
	x := uint64(rank)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Next draws one operation: its kind and key.
func (g *Generator) Next() (OpKind, string) {
	if g.rng.Float64() < g.cfg.ReadFraction {
		return OpGet, g.Key(g.nextIndex())
	}
	return OpSet, g.Key(g.nextWrite())
}

// NextScan draws one operation from a scan mix (YCSB workload E): the read
// share becomes OpScan with a start key and a length uniform in
// [1, ScanMax]; the write share is the same insert/update draw as Next.
// For OpGet/OpSet results the length is 1.
func (g *Generator) NextScan() (kind OpKind, key string, scanLen int) {
	if g.rng.Float64() < g.cfg.ReadFraction {
		max := g.cfg.ScanMax
		if max <= 0 {
			max = 100
		}
		return OpScan, g.Key(g.nextIndex()), 1 + g.rng.Intn(max)
	}
	return OpSet, g.Key(g.nextWrite()), 1
}

// nextWrite draws the target index of one write: a fresh appended key
// under GrowOnWrite (inserts), otherwise a distribution draw (updates).
func (g *Generator) nextWrite() int {
	if g.cfg.GrowOnWrite {
		idx := g.high
		g.high++
		return idx
	}
	return g.nextIndex()
}

// High returns the current keyspace size (> Keys once GrowOnWrite inserts
// have run).
func (g *Generator) High() int { return g.high }

// ValueSize returns the configured value size.
func (g *Generator) ValueSize() int { return g.cfg.ValueSize }

// Keys returns the keyspace size.
func (g *Generator) Keys() int { return g.cfg.Keys }

// BlockConfig describes the bursty block I/O pattern: data is read and
// written in blocks, each split into chunks that fit key-value pairs and
// may scatter across servers (Section IV-B).
type BlockConfig struct {
	// BlockSize is the block size in bytes (the paper uses 2 MB and 16 MB).
	BlockSize int
	// ChunkSize is the key-value pair size (the paper uses 256 KB).
	ChunkSize int
	// TotalBytes is the overall workload size (the paper uses 4 GB).
	TotalBytes int64
}

// Blocks returns the number of whole blocks in the workload.
func (b BlockConfig) Blocks() int {
	if b.BlockSize <= 0 {
		return 0
	}
	return int(b.TotalBytes / int64(b.BlockSize))
}

// ChunksPerBlock returns the chunks in one block.
func (b BlockConfig) ChunksPerBlock() int {
	if b.ChunkSize <= 0 {
		return 0
	}
	return (b.BlockSize + b.ChunkSize - 1) / b.ChunkSize
}

// ChunkKey names chunk c of block blk.
func (b BlockConfig) ChunkKey(blk, c int) string {
	return fmt.Sprintf("blk:%08d:chunk:%04d", blk, c)
}
