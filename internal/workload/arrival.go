package workload

import (
	"fmt"
	"math"

	"hybridkv/internal/sim"
)

// Arrival schedules shape request arrival over virtual time: drivers call
// Think(now) between operations instead of sleeping a constant, so the
// same op stream can arrive steadily, spike as a flash crowd, or swell and
// ebb diurnally. The schedule modulates the *rate* (think time is the
// reciprocal), keeping the op mix and key distribution untouched.

// Schedule selects the arrival shape.
type Schedule int

const (
	// Steady arrives at the base rate throughout.
	Steady Schedule = iota
	// FlashCrowd multiplies the rate by Spike inside the burst window —
	// the celebrity-key scenario: normal traffic, then everyone at once.
	FlashCrowd
	// Diurnal modulates the rate sinusoidally over Period between the
	// base rate (peak) and Trough times it (quietest point).
	Diurnal
)

func (s Schedule) String() string {
	switch s {
	case FlashCrowd:
		return "flashcrowd"
	case Diurnal:
		return "diurnal"
	}
	return "steady"
}

// Arrival is one arrival schedule instance.
type Arrival struct {
	// Schedule selects the shape.
	Schedule Schedule
	// Base is the steady-state think time between a worker's operations.
	Base sim.Time

	// Spike is the rate multiplier inside the flash-crowd window (≥ 1);
	// BurstStart/BurstLen place the window on the virtual clock, relative
	// to the same origin as the now passed to Think.
	Spike                float64
	BurstStart, BurstLen sim.Time

	// Period is the diurnal cycle length; Trough is the rate fraction at
	// the quietest point, in (0, 1]. The cycle peaks at now = Period/4
	// (sin phase), so a run shorter than one Period still sees both flanks.
	Period sim.Time
	Trough float64
}

// Think returns the inter-operation think time at virtual time now.
func (a Arrival) Think(now sim.Time) sim.Time {
	base := a.Base
	if base <= 0 {
		return 0
	}
	switch a.Schedule {
	case FlashCrowd:
		spike := a.Spike
		if spike < 1 {
			spike = 1
		}
		if now >= a.BurstStart && now < a.BurstStart+a.BurstLen {
			return sim.Time(float64(base) / spike)
		}
		return base
	case Diurnal:
		if a.Period <= 0 {
			return base
		}
		trough := a.Trough
		if trough <= 0 || trough > 1 {
			trough = 0.25
		}
		phase := 2 * math.Pi * float64(now) / float64(a.Period)
		// Rate swings between trough (sin = -1) and 1 (sin = +1).
		rate := trough + (1-trough)*(0.5+0.5*math.Sin(phase))
		return sim.Time(float64(base) / rate)
	default:
		return base
	}
}

// InBurst reports whether now falls inside a flash-crowd window. Drivers
// use it to couple burst arrival with burst *targeting* (the flash crowd
// asks for the celebrity key, not uniformly more of everything). Always
// false for other schedules.
func (a Arrival) InBurst(now sim.Time) bool {
	return a.Schedule == FlashCrowd && now >= a.BurstStart && now < a.BurstStart+a.BurstLen
}

// Validate checks the schedule's parameters are usable.
func (a Arrival) Validate() error {
	if a.Schedule == FlashCrowd && a.BurstLen <= 0 {
		return fmt.Errorf("workload: flash-crowd schedule needs BurstLen > 0")
	}
	if a.Schedule == Diurnal && a.Period <= 0 {
		return fmt.Errorf("workload: diurnal schedule needs Period > 0")
	}
	return nil
}
