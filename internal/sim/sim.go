// Package sim implements a deterministic discrete-event simulation kernel.
//
// Every actor in the simulated cluster (client, server worker, NIC engine,
// SSD channel, writeback daemon, ...) runs as a Proc: a goroutine that
// executes under a virtual clock owned by an Env. The kernel enforces a
// strict scheduler/process handoff, so exactly one process runs at any
// instant. Shared simulation state therefore needs no locking, results are
// bit-for-bit reproducible, and virtual time advances with nanosecond
// precision regardless of host timer resolution.
//
// The blocking primitives (Sleep, Event.Wait, Queue.Get/Put,
// Resource.Acquire) must only be called from inside the owning process's
// goroutine. Non-blocking variants (TryGet, TryPut, Fire, ...) may be called
// from any process, or from outside the simulation before Run starts.
package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"time"
)

// Time is virtual time elapsed since the start of the simulation.
type Time = time.Duration

// Common virtual-time units, re-exported so model code does not need to
// import time alongside sim.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// wakeup is a pending reason for a process to resume. A process may have
// several outstanding wakeups (e.g. an event wait plus a timeout); whichever
// is delivered first cancels the rest.
type wakeup struct {
	at       Time
	seq      int64
	p        *Proc
	tag      int // cause identifier, returned to the parked process
	canceled bool
	index    int // position in the heap, -1 if not scheduled
}

type wakeupHeap []*wakeup

func (h wakeupHeap) Len() int { return len(h) }
func (h wakeupHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h wakeupHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *wakeupHeap) Push(x any) {
	w := x.(*wakeup)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *wakeupHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// Env owns the virtual clock and the event queue of one simulation.
type Env struct {
	now     Time
	seq     int64
	heap    wakeupHeap
	yield   chan struct{}
	cur     *Proc
	parked  int // processes alive but blocked with no scheduled wakeup
	alive   int
	stopped bool
	fault   any // first panic value raised by a process
}

// NewEnv returns a fresh simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Alive returns the number of processes that have been spawned and have not
// yet finished.
func (e *Env) Alive() int { return e.alive }

// Proc is one simulated process. All blocking kernel primitives take place
// on behalf of a Proc and must be invoked from its own goroutine.
type Proc struct {
	env      *Env
	name     string
	resume   chan struct{}
	pending  []*wakeup
	wokenTag int
	xfer     any // value slot for queue handoff
	done     bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. It may be called before Run, or from any running
// process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is like Spawn but delays the process start until virtual time t.
func (e *Env) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		t = e.now
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.alive++
	go func() {
		<-p.resume
		func() {
			// Capture process panics so the scheduler can re-raise them
			// from Run, in the simulation driver's goroutine.
			defer func() {
				if r := recover(); r != nil && e.fault == nil {
					e.fault = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}()
			fn(p)
		}()
		p.done = true
		e.alive--
		e.yield <- struct{}{}
	}()
	e.scheduleWakeup(t, p, 0)
	return p
}

// scheduleWakeup enqueues a wakeup for p at time t and returns it.
func (e *Env) scheduleWakeup(t Time, p *Proc, tag int) *wakeup {
	e.seq++
	w := &wakeup{at: t, seq: e.seq, p: p, tag: tag, index: -1}
	p.pending = append(p.pending, w)
	heap.Push(&e.heap, w)
	return w
}

// pendingWakeup registers a wakeup that is not yet scheduled on the clock
// (used by Event waiters and queue waiters; they are pushed onto the heap
// when fired/served).
func (e *Env) pendingWakeup(p *Proc, tag int) *wakeup {
	e.seq++
	w := &wakeup{seq: e.seq, p: p, tag: tag, index: -1}
	p.pending = append(p.pending, w)
	return w
}

// fireWakeup schedules a previously pending wakeup to deliver now.
func (e *Env) fireWakeup(w *wakeup) {
	if w.canceled || w.index >= 0 {
		return
	}
	w.at = e.now
	e.seq++
	w.seq = e.seq
	heap.Push(&e.heap, w)
}

// park blocks the calling process until one of its pending wakeups is
// delivered, and returns that wakeup's tag. All other pending wakeups are
// canceled.
func (p *Proc) park() int {
	e := p.env
	e.yield <- struct{}{}
	<-p.resume
	return p.wokenTag
}

// Run executes the simulation until no scheduled wakeups remain, and returns
// the final virtual time. Processes still blocked on events/queues at that
// point remain parked; use Parked or Alive to detect them in tests.
func (e *Env) Run() Time { return e.RunUntil(-1) }

// RunUntil executes scheduled wakeups with time ≤ limit (limit < 0 means no
// limit) and returns the virtual time reached.
func (e *Env) RunUntil(limit Time) Time {
	for e.heap.Len() > 0 {
		w := e.heap[0]
		if w.canceled {
			heap.Pop(&e.heap)
			continue
		}
		if limit >= 0 && w.at > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.heap)
		if w.at > e.now {
			e.now = w.at
		}
		p := w.p
		// Deliver: cancel the process's other pending wakeups.
		for _, o := range p.pending {
			if o != w {
				o.canceled = true
			}
		}
		p.pending = p.pending[:0]
		p.wokenTag = w.tag
		e.cur = p
		p.resume <- struct{}{}
		<-e.yield
		e.cur = nil
		if e.fault != nil {
			f := e.fault
			e.fault = nil
			panic(f)
		}
	}
	if limit >= 0 && limit > e.now {
		e.now = limit
	}
	return e.now
}

// Parked reports how many live processes are currently blocked with no
// scheduled wakeup (i.e. waiting on an Event, Queue or Resource). Only
// meaningful when Run has returned.
func (e *Env) Parked() int {
	return e.alive
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events already scheduled).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleWakeup(p.env.now+d, p, 0)
	p.park()
}

// WaitUntil suspends the process until virtual time t (no-op if t has
// passed).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.env.now {
		p.Yield()
		return
	}
	p.env.scheduleWakeup(t, p, 0)
	p.park()
}

// Yield reschedules the process at the current time behind already-scheduled
// same-time wakeups.
func (p *Proc) Yield() {
	p.env.scheduleWakeup(p.env.now, p, 0)
	p.park()
}

// Event is a one-shot condition processes can wait on. The zero value is not
// usable; create with Env.NewEvent.
type Event struct {
	env     *Env
	fired   bool
	waiters []*wakeup
}

// NewEvent returns a fresh unfired event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event complete and wakes all waiters at the current virtual
// time. Firing an already-fired event is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		ev.env.fireWakeup(w)
	}
	ev.waiters = nil
}

// Wait blocks the process until the event fires. Returns immediately if it
// already has.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	w := p.env.pendingWakeup(p, 0)
	ev.waiters = append(ev.waiters, w)
	p.park()
}

// tags distinguishing wakeup causes for multi-cause parks.
const (
	tagDefault = 0
	tagEvent   = 1
	tagTimeout = 2
)

// WaitTimeout blocks until the event fires or d elapses, whichever is first.
// It reports whether the event fired (true) or the timeout won (false).
func (p *Proc) WaitTimeout(ev *Event, d Time) bool {
	if ev.fired {
		return true
	}
	if d <= 0 {
		return false
	}
	w := p.env.pendingWakeup(p, tagEvent)
	ev.waiters = append(ev.waiters, w)
	p.env.scheduleWakeup(p.env.now+d, p, tagTimeout)
	return p.park() == tagEvent
}

// WaitAny blocks until any of the given events fires, returning the index of
// the first fired event. If one is already fired, returns immediately.
func (p *Proc) WaitAny(evs ...*Event) int {
	for i, ev := range evs {
		if ev.fired {
			return i
		}
	}
	if len(evs) == 0 {
		panic("sim: WaitAny with no events")
	}
	for i, ev := range evs {
		w := p.env.pendingWakeup(p, i)
		ev.waiters = append(ev.waiters, w)
	}
	return p.park()
}

// AnyOf returns an event that fires as soon as any input event fires.
func (e *Env) AnyOf(evs ...*Event) *Event {
	out := e.NewEvent()
	for _, ev := range evs {
		if ev.fired {
			out.Fire()
			return out
		}
	}
	for _, ev := range evs {
		ev.onFire(func() { out.Fire() })
	}
	return out
}

// AllOf returns an event that fires once all input events have fired.
func (e *Env) AllOf(evs ...*Event) *Event {
	out := e.NewEvent()
	remaining := 0
	for _, ev := range evs {
		if !ev.fired {
			remaining++
		}
	}
	if remaining == 0 {
		out.Fire()
		return out
	}
	for _, ev := range evs {
		if ev.fired {
			continue
		}
		ev.onFire(func() {
			remaining--
			if remaining == 0 {
				out.Fire()
			}
		})
	}
	return out
}

// callbacks: internal-only observer used by AnyOf/AllOf. Implemented by
// spawning a tiny waiter process so delivery ordering stays within the
// kernel's single-runner discipline.
func (ev *Event) onFire(fn func()) {
	ev.env.Spawn("event-observer", func(p *Proc) {
		p.Wait(ev)
		fn()
	})
}

// At schedules fn to run in a fresh process at virtual time t.
func (e *Env) At(t Time, name string, fn func(p *Proc)) {
	e.SpawnAt(t, name, fn)
}

// String renders the env state, for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v scheduled=%d alive=%d}", e.now, e.heap.Len(), e.alive)
}
