package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("fresh env clock = %v, want 0", e.Now())
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("empty Run ended at %v, want 0", got)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(250 * Microsecond)
		at = p.Now()
	})
	end := e.Run()
	if at != 250*Microsecond {
		t.Errorf("woke at %v, want 250µs", at)
	}
	if end != 250*Microsecond {
		t.Errorf("run ended at %v, want 250µs", end)
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		ran = true
	})
	if e.Run() != 0 {
		t.Errorf("negative sleep advanced the clock")
	}
	if !ran {
		t.Errorf("process did not complete")
	}
}

func TestSequentialOrderingSameTimestamp(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(10 * Microsecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp wakeups out of spawn order: %v", order)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEnv()
	var at Time
	e.SpawnAt(40*Microsecond, "late", func(p *Proc) { at = p.Now() })
	e.Run()
	if at != 40*Microsecond {
		t.Errorf("SpawnAt started at %v, want 40µs", at)
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	e := NewEnv()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(7 * Microsecond)
			childAt = c.Now()
		})
	})
	e.Run()
	if childAt != 12*Microsecond {
		t.Errorf("child finished at %v, want 12µs", childAt)
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var woken []Time
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) {
			p.Wait(ev)
			woken = append(woken, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		ev.Fire()
	})
	e.Run()
	if len(woken) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woken))
	}
	for _, w := range woken {
		if w != 100*Microsecond {
			t.Errorf("waiter woke at %v, want 100µs", w)
		}
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Fire()
	var at Time = -1
	e.Spawn("p", func(p *Proc) {
		p.Wait(ev)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Errorf("wait on fired event blocked until %v", at)
	}
}

func TestDoubleFireIsNoop(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	n := 0
	e.Spawn("w", func(p *Proc) { p.Wait(ev); n++ })
	e.Spawn("f", func(p *Proc) { ev.Fire(); ev.Fire() })
	e.Run()
	if n != 1 {
		t.Errorf("waiter ran %d times, want 1", n)
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var ok bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		ok = p.WaitTimeout(ev, 50*Microsecond)
		at = p.Now()
	})
	e.Spawn("f", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		ev.Fire()
	})
	e.Run()
	if !ok || at != 20*Microsecond {
		t.Errorf("WaitTimeout=(%v,%v), want (true,20µs)", ok, at)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var ok bool
	var at Time
	e.Spawn("w", func(p *Proc) {
		ok = p.WaitTimeout(ev, 50*Microsecond)
		at = p.Now()
	})
	e.Spawn("f", func(p *Proc) {
		p.Sleep(200 * Microsecond)
		ev.Fire()
	})
	e.Run()
	if ok || at != 50*Microsecond {
		t.Errorf("WaitTimeout=(%v,%v), want (false,50µs)", ok, at)
	}
}

func TestWaitAny(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	var idx int
	var at Time
	e.Spawn("w", func(p *Proc) {
		idx = p.WaitAny(a, b)
		at = p.Now()
	})
	e.Spawn("f", func(p *Proc) {
		p.Sleep(30 * Microsecond)
		b.Fire()
		p.Sleep(30 * Microsecond)
		a.Fire()
	})
	e.Run()
	if idx != 1 || at != 30*Microsecond {
		t.Errorf("WaitAny=(%d,%v), want (1,30µs)", idx, at)
	}
}

func TestAnyOfAllOf(t *testing.T) {
	e := NewEnv()
	a, b, c := e.NewEvent(), e.NewEvent(), e.NewEvent()
	anyEv := e.AnyOf(a, b, c)
	allEv := e.AllOf(a, b, c)
	var anyAt, allAt Time = -1, -1
	e.Spawn("watchAny", func(p *Proc) { p.Wait(anyEv); anyAt = p.Now() })
	e.Spawn("watchAll", func(p *Proc) { p.Wait(allEv); allAt = p.Now() })
	e.Spawn("f", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		b.Fire()
		p.Sleep(10 * Microsecond)
		a.Fire()
		p.Sleep(10 * Microsecond)
		c.Fire()
	})
	e.Run()
	if anyAt != 10*Microsecond {
		t.Errorf("AnyOf fired at %v, want 10µs", anyAt)
	}
	if allAt != 30*Microsecond {
		t.Errorf("AllOf fired at %v, want 30µs", allAt)
	}
}

func TestAllOfEmptyAndPreFired(t *testing.T) {
	e := NewEnv()
	if !e.AllOf().Fired() {
		t.Errorf("AllOf() should be immediately fired")
	}
	a := e.NewEvent()
	a.Fire()
	if !e.AllOf(a).Fired() {
		t.Errorf("AllOf(fired) should be immediately fired")
	}
	if !e.AnyOf(a).Fired() {
		t.Errorf("AnyOf(fired) should be immediately fired")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(Microsecond)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Errorf("queue closed early")
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueCapacityBlocksPutter(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 2)
	var putDone Time
	e.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until the consumer frees a slot
		putDone = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(70 * Microsecond)
		if _, ok := q.Get(p); !ok {
			t.Errorf("get failed")
		}
	})
	e.Run()
	if putDone != 70*Microsecond {
		t.Errorf("third Put completed at %v, want 70µs (after consumer)", putDone)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, 0)
	var v string
	var at Time
	e.Spawn("consumer", func(p *Proc) {
		v, _ = q.Get(p)
		at = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(15 * Microsecond)
		q.Put(p, "hello")
	})
	e.Run()
	if v != "hello" || at != 15*Microsecond {
		t.Errorf("Get=(%q,%v), want (hello,15µs)", v, at)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	q.TryPut(1)
	q.TryPut(2)
	var got []int
	var closedOK bool
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				closedOK = true
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		q.Close()
	})
	e.Run()
	if len(got) != 2 || !closedOK {
		t.Errorf("drained %v closed=%v, want [1 2] true", got, closedOK)
	}
}

func TestQueueCloseWakesBlockedGetter(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 0)
	var ok = true
	e.Spawn("consumer", func(p *Proc) { _, ok = q.Get(p) })
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		q.Close()
	})
	e.Run()
	if ok {
		t.Errorf("Get on closed empty queue returned ok=true")
	}
}

func TestQueueTryVariants(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Errorf("TryGet on empty queue succeeded")
	}
	if !q.TryPut(7) {
		t.Errorf("TryPut on empty queue failed")
	}
	if q.TryPut(8) {
		t.Errorf("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Errorf("TryGet=(%d,%v), want (7,true)", v, ok)
	}
}

func TestQueueDirectHandoffToBlockedGetter(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, 1)
	var v int
	e.Spawn("consumer", func(p *Proc) { v, _ = q.Get(p) })
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(Microsecond)
		q.TryPut(42)
		if q.Len() != 0 {
			t.Errorf("value buffered instead of handed off")
		}
	})
	e.Run()
	if v != 42 {
		t.Errorf("handoff delivered %d, want 42", v)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(10 * Microsecond)
			active--
			r.Release()
		})
	}
	end := e.Run()
	if maxActive != 2 {
		t.Errorf("max concurrency %d, want 2", maxActive)
	}
	if end != 30*Microsecond {
		t.Errorf("6 jobs × 10µs at depth 2 ended at %v, want 30µs", end)
	}
}

func TestResourceFIFOAndN(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 3)
	var order []string
	e.Spawn("hold", func(p *Proc) {
		r.AcquireN(p, 3)
		p.Sleep(10 * Microsecond)
		r.ReleaseN(3)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(Microsecond)
		r.AcquireN(p, 2)
		order = append(order, "big")
		p.Sleep(10 * Microsecond)
		r.ReleaseN(2)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		r.Acquire(p)
		order = append(order, "small")
		r.Release()
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" {
		// strict FIFO: the 2-unit waiter is at the head, the 1-unit waiter
		// must not jump the line even though a unit might fit it earlier.
		t.Errorf("acquisition order %v, want [big small]", order)
	}
}

func TestResourceAccounting(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 4)
	if !r.TryAcquireN(3) {
		t.Fatalf("TryAcquireN(3) failed on fresh resource")
	}
	if r.InUse() != 3 || r.Available() != 1 {
		t.Errorf("InUse=%d Available=%d, want 3/1", r.InUse(), r.Available())
	}
	if r.TryAcquireN(2) {
		t.Errorf("TryAcquireN(2) succeeded with 1 free")
	}
	r.ReleaseN(3)
	if r.InUse() != 0 {
		t.Errorf("InUse=%d after full release", r.InUse())
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEnv()
	hits := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * Microsecond)
			hits++
		}
	})
	at := e.RunUntil(45 * Microsecond)
	if at != 45*Microsecond {
		t.Errorf("RunUntil returned %v, want 45µs", at)
	}
	if hits != 4 {
		t.Errorf("ticker ran %d times by 45µs, want 4", hits)
	}
	// Resume to completion.
	end := e.Run()
	if end != 1000*Microsecond || hits != 100 {
		t.Errorf("resume ended at %v with %d ticks, want 1ms/100", end, hits)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEnv()
	if got := e.RunUntil(time5ms()); got != time5ms() {
		t.Errorf("RunUntil on idle env = %v, want 5ms", got)
	}
}

func time5ms() Time { return 5 * Millisecond }

func TestAliveTracksProcesses(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	e.Spawn("blocked-forever", func(p *Proc) { p.Wait(ev) })
	e.Spawn("finishes", func(p *Proc) { p.Sleep(Microsecond) })
	e.Run()
	if e.Alive() != 1 {
		t.Errorf("Alive=%d after run, want 1 (the event waiter)", e.Alive())
	}
}

// TestDeterminism is a property test: an arbitrary random program of sleeps,
// events, queues and resources must produce an identical trace on every run
// with the same seed.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		q := NewQueue[int](e, 4)
		r := NewResource(e, 3)
		ev := e.NewEvent()
		var out []Time
		n := 20
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(100)) * Microsecond
			switch rng.Intn(4) {
			case 0:
				e.Spawn("s", func(p *Proc) {
					p.Sleep(d)
					out = append(out, p.Now())
				})
			case 1:
				e.Spawn("q", func(p *Proc) {
					p.Sleep(d)
					q.Put(p, i)
					v, _ := q.Get(p)
					_ = v
					out = append(out, p.Now())
				})
			case 2:
				e.Spawn("r", func(p *Proc) {
					r.Acquire(p)
					p.Sleep(d)
					r.Release()
					out = append(out, p.Now())
				})
			case 3:
				e.Spawn("e", func(p *Proc) {
					if d > 50*Microsecond {
						ev.Fire()
					} else {
						p.WaitTimeout(ev, d)
					}
					out = append(out, p.Now())
				})
			}
		}
		e.Run()
		return out
	}
	for seed := int64(1); seed <= 10; seed++ {
		a := trace(seed)
		b := trace(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: trace diverges at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestClockMonotonic is a property test: observed wake times never decrease.
func TestClockMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEnv()
	var stamps []Time
	for i := 0; i < 50; i++ {
		d := Time(rng.Intn(1000)) * Microsecond
		e.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			stamps = append(stamps, p.Now())
			p.Sleep(Time(rng.Intn(10)) * Microsecond)
			stamps = append(stamps, p.Now())
		})
	}
	e.Run()
	if !sort.SliceIsSorted(stamps, func(i, j int) bool { return stamps[i] < stamps[j] }) {
		// Equal stamps are fine; strict decreases are not.
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				t.Fatalf("clock went backwards: %v after %v", stamps[i], stamps[i-1])
			}
		}
	}
}
