package sim

import "testing"

func TestWaitTimeoutEventWins(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	env.At(50, "firer", func(p *Proc) { ev.Fire() })
	var fired bool
	var at Time
	env.Spawn("waiter", func(p *Proc) {
		fired = p.WaitTimeout(ev, 200)
		at = p.Now()
	})
	env.Run()
	if !fired || at != 50 {
		t.Errorf("fired=%v at=%v, want event win at t=50", fired, at)
	}
	// The canceled timeout arm must not advance the clock past the event.
	if env.Now() != 50 {
		t.Errorf("env ends at %v, want 50: canceled timeout advanced the clock", env.Now())
	}
}

func TestWaitTimeoutTimeoutWins(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	var fired bool
	var at Time
	env.Spawn("waiter", func(p *Proc) {
		fired = p.WaitTimeout(ev, 80)
		at = p.Now()
	})
	env.Run()
	if fired || at != 80 {
		t.Errorf("fired=%v at=%v, want timeout at t=80", fired, at)
	}
}

func TestWaitTimeoutNonPositiveBudget(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	env.Spawn("waiter", func(p *Proc) {
		if p.WaitTimeout(ev, 0) {
			t.Error("WaitTimeout(0) on unfired event returned true")
		}
		if p.Now() != 0 {
			t.Errorf("zero-budget wait advanced the clock to %v", p.Now())
		}
		ev.Fire()
		if !p.WaitTimeout(ev, 0) {
			t.Error("WaitTimeout(0) on fired event returned false")
		}
	})
	env.Run()
}

func TestGetTimeoutTable(t *testing.T) {
	cases := []struct {
		name string
		// putAt < 0 means never put; closeAt < 0 means never close.
		putAt, closeAt Time
		budget         Time
		wantOK         bool
		wantTimedOut   bool
		wantAt         Time
	}{
		{"value before deadline", 30, -1, 100, true, false, 30},
		{"deadline before value", 500, -1, 100, false, true, 100},
		{"nothing ever arrives", -1, -1, 70, false, true, 70},
		{"zero budget empty queue", -1, -1, 0, false, true, 0},
		{"closed while waiting", -1, 40, 100, false, false, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := NewEnv()
			q := NewQueue[int](env, 0)
			if tc.putAt >= 0 {
				env.At(tc.putAt, "producer", func(p *Proc) { q.TryPut(7) })
			}
			if tc.closeAt >= 0 {
				env.At(tc.closeAt, "closer", func(p *Proc) { q.Close() })
			}
			var v int
			var ok, timedOut bool
			var at Time
			env.Spawn("consumer", func(p *Proc) {
				v, ok, timedOut = q.GetTimeout(p, tc.budget)
				at = p.Now()
			})
			env.Run()
			if ok != tc.wantOK || timedOut != tc.wantTimedOut || at != tc.wantAt {
				t.Errorf("ok=%v timedOut=%v at=%v, want ok=%v timedOut=%v at=%v",
					ok, timedOut, at, tc.wantOK, tc.wantTimedOut, tc.wantAt)
			}
			if tc.wantOK && v != 7 {
				t.Errorf("value = %d, want 7", v)
			}
		})
	}
}

func TestGetTimeoutImmediateValue(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	q.TryPut(1)
	env.Spawn("consumer", func(p *Proc) {
		v, ok, timedOut := q.GetTimeout(p, 100)
		if !ok || timedOut || v != 1 || p.Now() != 0 {
			t.Errorf("immediate get: v=%d ok=%v timedOut=%v at=%v", v, ok, timedOut, p.Now())
		}
	})
	env.Run()
}

func TestGetTimeoutThenNormalGetStillWorks(t *testing.T) {
	// A timed-out getter must not wedge the queue for later consumers.
	env := NewEnv()
	q := NewQueue[int](env, 0)
	var got int
	env.Spawn("consumer", func(p *Proc) {
		if _, ok, timedOut := q.GetTimeout(p, 10); ok || !timedOut {
			t.Errorf("first get: ok=%v timedOut=%v", ok, timedOut)
		}
		v, ok := q.Get(p)
		if !ok {
			t.Error("second get failed")
		}
		got = v
	})
	env.At(60, "producer", func(p *Proc) { q.TryPut(9) })
	env.Run()
	if got != 9 {
		t.Errorf("second get = %d, want 9", got)
	}
}

func TestWaitAnyReturnsFirstIndex(t *testing.T) {
	env := NewEnv()
	evs := []*Event{env.NewEvent(), env.NewEvent(), env.NewEvent()}
	env.At(30, "fire1", func(p *Proc) { evs[1].Fire() })
	env.At(90, "fire2", func(p *Proc) { evs[2].Fire() })
	var idx int
	var at Time
	env.Spawn("waiter", func(p *Proc) {
		idx = p.WaitAny(evs...)
		at = p.Now()
	})
	env.Run()
	if idx != 1 || at != 30 {
		t.Errorf("WaitAny = %d at %v, want 1 at 30", idx, at)
	}
}
