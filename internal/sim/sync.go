package sim

// Higher-level synchronization built on the kernel primitives: a cyclic
// Barrier for phase-synchronized workloads (all clients start measuring
// together), and a Gate — a reusable open/close condition, unlike the
// one-shot Event.

// Barrier releases waiting processes in batches of n (cyclic: it can be
// reused round after round).
type Barrier struct {
	env     *Env
	n       int
	arrived int
	round   int
	ev      *Event
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(env *Env, n int) *Barrier {
	if n <= 0 {
		panic("sim: Barrier needs at least one party")
	}
	return &Barrier{env: env, n: n, ev: env.NewEvent()}
}

// Await blocks until n parties (including this one) have arrived, then all
// are released together. Returns the completed round number.
func (b *Barrier) Await(p *Proc) int {
	b.arrived++
	round := b.round
	if b.arrived == b.n {
		b.arrived = 0
		b.round++
		ev := b.ev
		b.ev = b.env.NewEvent()
		ev.Fire()
		return round
	}
	ev := b.ev
	p.Wait(ev)
	return round
}

// Waiting reports parties currently blocked at the barrier.
func (b *Barrier) Waiting() int { return b.arrived }

// Round reports how many rounds have completed.
func (b *Barrier) Round() int { return b.round }

// Gate is a reusable open/close condition: processes pass through an open
// gate immediately and queue on a closed one until it opens.
type Gate struct {
	env  *Env
	open bool
	ev   *Event
}

// NewGate creates a gate in the given initial state.
func NewGate(env *Env, open bool) *Gate {
	return &Gate{env: env, open: open, ev: env.NewEvent()}
}

// IsOpen reports the gate state.
func (g *Gate) IsOpen() bool { return g.open }

// Open releases every waiting process and lets future arrivals through.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	ev := g.ev
	g.ev = g.env.NewEvent()
	ev.Fire()
}

// Close makes future arrivals wait. Processes already released stay
// released.
func (g *Gate) Close() { g.open = false }

// Pass blocks until the gate is open. A gate observed open lets the process
// through without suspension.
func (g *Gate) Pass(p *Proc) {
	for !g.open {
		ev := g.ev
		p.Wait(ev)
	}
}
