package sim

import "testing"

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, 3)
	var released []Time
	for i := 0; i < 3; i++ {
		d := Time(i+1) * 10 * Microsecond
		e.Spawn("party", func(p *Proc) {
			p.Sleep(d)
			b.Await(p)
			released = append(released, p.Now())
		})
	}
	e.Run()
	if len(released) != 3 {
		t.Fatalf("released %d parties", len(released))
	}
	for _, at := range released {
		if at != 30*Microsecond { // the slowest arrival
			t.Errorf("party released at %v, want 30µs", at)
		}
	}
}

func TestBarrierCyclic(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, 2)
	var rounds []int
	for i := 0; i < 2; i++ {
		e.Spawn("party", func(p *Proc) {
			for r := 0; r < 3; r++ {
				got := b.Await(p)
				rounds = append(rounds, got)
				p.Sleep(Microsecond)
			}
		})
	}
	e.Run()
	if b.Round() != 3 {
		t.Errorf("rounds completed %d, want 3", b.Round())
	}
	// Each round number appears exactly twice (once per party).
	count := map[int]int{}
	for _, r := range rounds {
		count[r]++
	}
	for r := 0; r < 3; r++ {
		if count[r] != 2 {
			t.Errorf("round %d observed %d times, want 2 (%v)", r, count[r], rounds)
		}
	}
}

func TestBarrierWaitingCount(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, 3)
	e.Spawn("p1", func(p *Proc) { b.Await(p) })
	e.Spawn("p2", func(p *Proc) { b.Await(p) })
	e.Run() // two parked at the barrier
	if b.Waiting() != 2 {
		t.Errorf("waiting %d, want 2", b.Waiting())
	}
	e.Spawn("p3", func(p *Proc) { b.Await(p) })
	e.Run()
	if b.Waiting() != 0 || e.Alive() != 0 {
		t.Errorf("waiting=%d alive=%d after release", b.Waiting(), e.Alive())
	}
}

func TestBarrierZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(NewEnv(), 0)
}

func TestGateBlocksWhenClosed(t *testing.T) {
	e := NewEnv()
	g := NewGate(e, false)
	var passedAt Time = -1
	e.Spawn("walker", func(p *Proc) {
		g.Pass(p)
		passedAt = p.Now()
	})
	e.Spawn("opener", func(p *Proc) {
		p.Sleep(25 * Microsecond)
		g.Open()
	})
	e.Run()
	if passedAt != 25*Microsecond {
		t.Errorf("passed at %v, want 25µs", passedAt)
	}
}

func TestGateOpenIsTransparent(t *testing.T) {
	e := NewEnv()
	g := NewGate(e, true)
	var at Time = -1
	e.Spawn("walker", func(p *Proc) {
		g.Pass(p)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Errorf("open gate delayed to %v", at)
	}
}

func TestGateCloseReblocks(t *testing.T) {
	e := NewEnv()
	g := NewGate(e, true)
	var times []Time
	e.Spawn("ctrl", func(p *Proc) {
		g.Close()
		p.Sleep(50 * Microsecond)
		g.Open()
	})
	e.Spawn("w1", func(p *Proc) {
		p.Sleep(Microsecond) // arrives after the close
		g.Pass(p)
		times = append(times, p.Now())
	})
	e.Run()
	if len(times) != 1 || times[0] != 50*Microsecond {
		t.Errorf("times %v, want [50µs]", times)
	}
	if !g.IsOpen() {
		t.Errorf("gate not open at end")
	}
}

func TestGateDoubleOpenHarmless(t *testing.T) {
	e := NewEnv()
	g := NewGate(e, false)
	g.Open()
	g.Open()
	if !g.IsOpen() {
		t.Errorf("gate closed after double open")
	}
}
