package sim

// Resource is a counting semaphore over virtual time. Use it to model
// bounded concurrency: device queue depth, server worker slots, bounded
// buffer pools.
type Resource struct {
	env     *Env
	total   int
	inUse   int
	waiters []*rwaiter
}

type rwaiter struct {
	w *wakeup
	n int
}

// NewResource returns a semaphore with n units.
func NewResource(env *Env, n int) *Resource {
	if n <= 0 {
		panic("sim: Resource needs at least one unit")
	}
	return &Resource{env: env, total: n}
}

// Total returns the configured number of units.
func (r *Resource) Total() int { return r.total }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.total - r.inUse }

// Waiting returns the number of processes blocked in Acquire.
func (r *Resource) Waiting() int {
	n := 0
	for _, rw := range r.waiters {
		if !rw.w.canceled {
			n++
		}
	}
	return n
}

// TryAcquire takes one unit without blocking; reports success.
func (r *Resource) TryAcquire() bool { return r.TryAcquireN(1) }

// TryAcquireN takes n units without blocking; reports success.
func (r *Resource) TryAcquireN(n int) bool {
	if n > r.total {
		panic("sim: acquiring more units than the Resource holds")
	}
	if r.inUse+n > r.total || len(r.waiters) > 0 {
		return false
	}
	r.inUse += n
	return true
}

// Acquire blocks the process until one unit is available, then takes it.
// Requests are served FIFO.
func (r *Resource) Acquire(p *Proc) { r.AcquireN(p, 1) }

// AcquireN blocks the process until n units are available, then takes them.
func (r *Resource) AcquireN(p *Proc, n int) {
	if r.TryAcquireN(n) {
		return
	}
	w := r.env.pendingWakeup(p, 0)
	r.waiters = append(r.waiters, &rwaiter{w: w, n: n})
	p.park()
}

// Release returns one unit, waking the next eligible waiter.
func (r *Resource) Release() { r.ReleaseN(1) }

// ReleaseN returns n units, waking eligible waiters FIFO.
func (r *Resource) ReleaseN(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource released more than acquired")
	}
	for len(r.waiters) > 0 {
		rw := r.waiters[0]
		if rw.w.canceled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+rw.n > r.total {
			return // strict FIFO: head blocks the line
		}
		r.waiters = r.waiters[1:]
		r.inUse += rw.n
		r.env.fireWakeup(rw.w)
	}
}
