package sim

// Queue is a FIFO channel-like conduit between simulated processes with an
// optional capacity bound. A capacity of 0 means unbounded. Handoff is
// instantaneous in virtual time; use it to model request queues, NIC work
// queues, device submission queues and similar structures.
type Queue[T any] struct {
	env     *Env
	cap     int
	items   []T
	getters []*qwaiter[T]
	putters []*pwaiter[T]
	closed  bool
}

type qwaiter[T any] struct {
	w *wakeup
	p *Proc
}

type pwaiter[T any] struct {
	w *wakeup
	p *Proc
	v T
}

// NewQueue returns a queue bound to env. capacity ≤ 0 means unbounded.
func NewQueue[T any](env *Env, capacity int) *Queue[T] {
	return &Queue[T]{env: env, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the capacity bound (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue closed: subsequent Put panics, pending and future
// Gets drain remaining items and then return ok=false.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	// Wake blocked getters; they will observe the close.
	for _, g := range q.getters {
		if !g.w.canceled {
			g.p.xfer = closedSentinel
			q.env.fireWakeup(g.w)
		}
	}
	q.getters = nil
}

// TryPut appends v without blocking. It reports false if the queue is full.
// Panics if the queue is closed.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	if g := q.popGetter(); g != nil {
		g.p.xfer = v
		q.env.fireWakeup(g.w)
		return true
	}
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	return true
}

// Put appends v, blocking the process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	if q.TryPut(v) {
		return
	}
	w := q.env.pendingWakeup(p, 0)
	q.putters = append(q.putters, &pwaiter[T]{w: w, p: p, v: v})
	p.park()
}

// TryGet removes and returns the head item without blocking. ok is false if
// the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items[0] = *new(T)
	q.items = q.items[1:]
	q.admitPutter()
	return v, true
}

// Get removes and returns the head item, blocking the process while the
// queue is empty. ok is false only if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	if v, ok = q.TryGet(); ok {
		return v, true
	}
	if q.closed {
		return v, false
	}
	w := q.env.pendingWakeup(p, 0)
	q.getters = append(q.getters, &qwaiter[T]{w: w, p: p})
	p.park()
	if p.xfer == closedSentinel {
		// Woken by Close: drain any buffered remainder first.
		p.xfer = nil
		if v, ok = q.TryGet(); ok {
			return v, true
		}
		return v, false
	}
	v = p.xfer.(T)
	p.xfer = nil
	return v, true
}

// GetTimeout is Get bounded by d of virtual time: it returns the head item
// (ok=true), queue closure (ok=false, timedOut=false), or expiry of the
// timeout with nothing received (timedOut=true). d ≤ 0 with an empty queue
// times out immediately.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (v T, ok bool, timedOut bool) {
	if v, ok = q.TryGet(); ok {
		return v, true, false
	}
	if q.closed {
		return v, false, false
	}
	if d <= 0 {
		return v, false, true
	}
	w := q.env.pendingWakeup(p, tagEvent)
	q.getters = append(q.getters, &qwaiter[T]{w: w, p: p})
	q.env.scheduleWakeup(q.env.now+d, p, tagTimeout)
	if p.park() == tagTimeout {
		// The getter wakeup was canceled by delivery of the timeout;
		// popGetter skips canceled waiters, so no item can be handed to us.
		return v, false, true
	}
	if p.xfer == closedSentinel {
		p.xfer = nil
		if v, ok = q.TryGet(); ok {
			return v, true, false
		}
		return v, false, false
	}
	v = p.xfer.(T)
	p.xfer = nil
	return v, true, false
}

// closedSentinel marks a getter wakeup caused by Close rather than a value
// handoff.
var closedSentinel = new(int)

// popGetter removes and returns the first live blocked getter, or nil.
func (q *Queue[T]) popGetter() *qwaiter[T] {
	for len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		if !g.w.canceled {
			return g
		}
	}
	return nil
}

// admitPutter moves one blocked putter's value into freed buffer space.
func (q *Queue[T]) admitPutter() {
	for len(q.putters) > 0 {
		if q.cap > 0 && len(q.items) >= q.cap {
			return
		}
		pw := q.putters[0]
		q.putters = q.putters[1:]
		if pw.w.canceled {
			continue
		}
		q.items = append(q.items, pw.v)
		q.env.fireWakeup(pw.w)
		return
	}
}
