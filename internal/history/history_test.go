package history

import (
	"testing"

	"hybridkv/internal/sim"
)

func us(n int) sim.Time { return sim.Time(n) * sim.Microsecond }

func rules(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Rule]++
	}
	return m
}

// TestCheckCleanHistory: a well-behaved CAS chain with reads, an excused
// miss, and a monotone counter produces zero violations.
func TestCheckCleanHistory(t *testing.T) {
	l := &Log{Expected: 5}
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, Acked: true, IssuedAt: us(1), CompletedAt: us(2)})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Hit: true, OK: true, IssuedAt: us(3), CompletedAt: us(4)})
	l.Record(Entry{Kind: Read, Key: "k", Hit: false, OK: false, IssuedAt: us(5), CompletedAt: us(6)}) // miss: always legal
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 1, OK: true, IssuedAt: us(7), CompletedAt: us(8)})
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 3, OK: true, IssuedAt: us(9), CompletedAt: us(10)}) // dup-applied incr: still monotone
	if vs := l.Check(); len(vs) != 0 {
		t.Fatalf("clean history produced violations: %v", vs)
	}
}

// TestCheckDetectsEachRule: one synthetic breach per invariant.
func TestCheckDetectsEachRule(t *testing.T) {
	l := &Log{Expected: 7}
	// acked-write-lost: acked, failed, no crash anywhere near.
	l.Record(Entry{Kind: Write, Key: "a", Seq: 1, OK: false, Acked: true, IssuedAt: us(1), CompletedAt: us(2)})
	// stale-read: seq 2 completed before the read was issued, read saw 1.
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, IssuedAt: us(3), CompletedAt: us(4)})
	l.Record(Entry{Kind: Write, Key: "k", Seq: 2, OK: true, IssuedAt: us(5), CompletedAt: us(6)})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Hit: true, OK: true, IssuedAt: us(7), CompletedAt: us(8)})
	// future-read: nobody ever wrote seq 9 to "f".
	l.Record(Entry{Kind: Read, Key: "f", Seq: 9, Hit: true, OK: true, IssuedAt: us(9), CompletedAt: us(10)})
	// counter-regression.
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 5, OK: true, IssuedAt: us(11), CompletedAt: us(12)})
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 4, OK: true, IssuedAt: us(13), CompletedAt: us(14)})
	// time-regression + liveness (Expected 7+2=9, only recorded 8).
	l.Record(Entry{Kind: Read, Key: "t", IssuedAt: us(20), CompletedAt: us(15)})
	l.Expected = 9

	got := rules(l.Check())
	for _, rule := range []string{"acked-write-lost", "stale-read", "future-read", "counter-regression", "time-regression", "liveness"} {
		if got[rule] == 0 {
			t.Errorf("rule %q not detected (got %v)", rule, got)
		}
	}
}

// TestCrashWindowExcusesLoss: the same anomalies inside a crash window are
// legal cache behavior — warm crashes lose buffered work, cold restarts
// resurrect older SSD epochs.
func TestCrashWindowExcusesLoss(t *testing.T) {
	l := &Log{}
	l.CrashWindow(us(10), us(20))
	// Acked write whose in-flight interval spans the crash.
	l.Record(Entry{Kind: Write, Key: "a", Seq: 1, OK: false, Acked: true, IssuedAt: us(8), CompletedAt: us(30)})
	// Pre-crash write, post-crash stale read: cold restart resurrected seq 1.
	l.Record(Entry{Kind: Write, Key: "k", Seq: 2, OK: true, IssuedAt: us(5), CompletedAt: us(6)})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Hit: true, OK: true, IssuedAt: us(25), CompletedAt: us(26)})
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, IssuedAt: us(1), CompletedAt: us(2)})
	// Counter regression across the crash.
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 7, OK: true, IssuedAt: us(3), CompletedAt: us(4)})
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 2, OK: true, IssuedAt: us(25), CompletedAt: us(26)})
	if vs := l.Check(); len(vs) != 0 {
		t.Fatalf("crash-window anomalies flagged as violations: %v", vs)
	}
}

// TestReplicatedModeDropsStaleReadCrashExcuse: with R ≥ 2 a crash cannot
// resurrect an older epoch (cold-restarted replicas confirm suspect keys
// against peers before serving them), so the same pre-crash-write /
// post-crash-stale-read pattern that TestCrashWindowExcusesLoss accepts is
// flagged when Replicated is set — while the acked-write-lost and
// counter-regression excuses remain.
func TestReplicatedModeDropsStaleReadCrashExcuse(t *testing.T) {
	l := &Log{Replicated: true}
	l.CrashWindow(us(10), us(20))
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, IssuedAt: us(1), CompletedAt: us(2)})
	l.Record(Entry{Kind: Write, Key: "k", Seq: 2, OK: true, IssuedAt: us(5), CompletedAt: us(6)})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Hit: true, OK: true, IssuedAt: us(25), CompletedAt: us(26)})
	// These two stay excused by the crash window even in replicated mode.
	l.Record(Entry{Kind: Write, Key: "a", Seq: 1, OK: false, Acked: true, IssuedAt: us(8), CompletedAt: us(30)})
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 7, OK: true, IssuedAt: us(3), CompletedAt: us(4)})
	l.Record(Entry{Kind: IncrOp, Key: "c", Seq: 2, OK: true, IssuedAt: us(25), CompletedAt: us(26)})
	got := rules(l.Check())
	if got["stale-read"] != 1 {
		t.Errorf("replicated-mode stale read across a crash not detected: %v", got)
	}
	if got["acked-write-lost"] != 0 || got["counter-regression"] != 0 {
		t.Errorf("replicated mode wrongly dropped other crash excuses: %v", got)
	}
	// A miss after the crash stays legal: eviction is still a cache's right.
	l2 := &Log{Replicated: true}
	l2.CrashWindow(us(10), us(20))
	l2.Record(Entry{Kind: Write, Key: "k", Seq: 2, OK: true, IssuedAt: us(5), CompletedAt: us(6)})
	l2.Record(Entry{Kind: Read, Key: "k", Hit: false, OK: false, IssuedAt: us(25), CompletedAt: us(26)})
	if vs := l2.Check(); len(vs) != 0 {
		t.Errorf("replicated-mode miss flagged: %v", vs)
	}
}

// TestRebalanceWindows: a finalized rebalance is clean; an unfinished one
// is rebalance-stuck; and a rebalance window never excuses a stale read —
// the same anomaly a crash window forgives stays a violation inside a
// rebalance, which is exactly the zero-loss claim the checker proves.
func TestRebalanceWindows(t *testing.T) {
	l := &Log{}
	l.RebalanceWindow(us(10), us(20))
	if vs := l.Check(); len(vs) != 0 {
		t.Fatalf("finalized rebalance flagged: %v", vs)
	}

	l.RebalanceWindow(us(30), 0)
	got := rules(l.Check())
	if got["rebalance-stuck"] != 1 {
		t.Errorf("unfinished rebalance not detected: %v", got)
	}

	// Stale read entirely inside a rebalance window: still a violation.
	l2 := &Log{Replicated: true}
	l2.RebalanceWindow(us(10), us(40))
	l2.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, IssuedAt: us(11), CompletedAt: us(12)})
	l2.Record(Entry{Kind: Write, Key: "k", Seq: 2, OK: true, IssuedAt: us(15), CompletedAt: us(16)})
	l2.Record(Entry{Kind: Read, Key: "k", Seq: 1, Hit: true, OK: true, IssuedAt: us(20), CompletedAt: us(21)})
	// Acked write lost mid-rebalance with no crash: also still a violation.
	l2.Record(Entry{Kind: Write, Key: "a", Seq: 1, OK: false, Acked: true, IssuedAt: us(25), CompletedAt: us(26)})
	got = rules(l2.Check())
	if got["stale-read"] != 1 {
		t.Errorf("rebalance window excused a stale read: %v", got)
	}
	if got["acked-write-lost"] != 1 {
		t.Errorf("rebalance window excused a lost acked write: %v", got)
	}
}

// TestFutureReadNotExcusedByCrash: corruption is never excused — a crash
// cannot invent a value nobody wrote.
func TestFutureReadNotExcusedByCrash(t *testing.T) {
	l := &Log{}
	l.CrashWindow(us(10), us(20))
	l.Record(Entry{Kind: Write, Key: "k", Seq: 3, OK: true, IssuedAt: us(1), CompletedAt: us(2)})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 8, Hit: true, OK: true, IssuedAt: us(25), CompletedAt: us(26)})
	got := rules(l.Check())
	if got["future-read"] != 1 {
		t.Fatalf("future-read across a crash not detected: %v", got)
	}
}
