// Package history records client-observed operation histories and checks
// them against the cache's safety and liveness invariants. It is the
// chaos-soak oracle: the bench harness runs faults + crashes + overload
// together, logs every guarded operation a checker worker performed, and
// Check replays the log offline.
//
// The invariants are scoped to what a crash-consistent *cache* actually
// promises — not a strict-serializable store:
//
//   - acked-write-lost: a write the server acknowledged (BufferAck) must
//     eventually complete unless a crash intervened. Admission shedding
//     happens strictly before the ack, so an acked write failing without a
//     crash means buffered work was dropped — the bug the shed path must
//     never introduce.
//   - stale-read: within a crash-free window, a read hit must observe at
//     least the newest CAS-chained value whose write completed before the
//     read was issued. Misses are always legal (eviction is a cache's
//     right); values from before a crash are excused because a warm crash
//     loses buffered work and a cold restart legally resurrects older
//     SSD-resident epochs.
//   - future-read: a read must never observe a sequence number that no
//     writer ever sent — that is corruption, crash or no crash.
//   - counter-regression: a monotonically incremented counter must never
//     appear to decrease within a crash-free window.
//   - liveness: every operation the driver issued must complete (the
//     guards bound every op, so a missing entry means a wedged process —
//     virtual time stopped advancing for it).
//   - rebalance-stuck: every membership rebalance the driver started must
//     have finalized by the end of the run. Crucially, rebalance windows
//     are NOT excuse windows: stale-read, acked-write-lost, and the other
//     safety rules are checked right through them, which is how the
//     checker proves a live reshard loses no acked write and serves no
//     stale read. Only real crash windows excuse anything.
//
// Sequence numbers are the checker's logical clock: chaos writers embed a
// per-key monotonically increasing Seq in each value and chain writes
// through CAS tokens, so duplicated or retransmitted frames cannot apply
// stale overwrites behind the log's back.
package history

import (
	"fmt"

	"hybridkv/internal/sim"
)

// Kind classifies one logged operation.
type Kind uint8

const (
	Read Kind = iota
	Write
	IncrOp
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "incr"
	}
}

// Entry is one completed client operation.
type Entry struct {
	Worker int
	Kind   Kind
	Key    string
	// Seq is the logical clock: the sequence number written (Write), the
	// sequence number observed (Read, 0 on miss), or the counter value
	// returned (IncrOp).
	Seq uint64
	// Hit reports a read that returned a value.
	Hit bool
	// Sum is the content checksum of the value written (Write) or observed
	// (Read hit); the corruption oracle (Log.CheckValues) demands every read
	// hit's Sum byte-match some write's. Zero when the driver doesn't record
	// sums — the oracle is then vacuous for that entry.
	Sum uint64
	// OK reports a successful completion (Err() == nil).
	OK bool
	// Acked reports that a BufferAck arrived: the server holds the write.
	Acked bool
	// IssuedAt / CompletedAt are the op's virtual timestamps.
	IssuedAt    sim.Time
	CompletedAt sim.Time
}

// Window is one crash-to-recovered interval of some server. Invariant
// floors do not carry across a window: a warm crash legally loses buffered
// acked work and a cold restart legally resurrects older SSD epochs.
type Window struct {
	From, To sim.Time
}

// Violation is one invariant breach found by Check.
type Violation struct {
	Rule   string
	Entry  Entry
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %s key=%q seq=%d [%v..%v]: %s",
		v.Rule, v.Entry.Kind, map[bool]string{true: "ok", false: "failed"}[v.Entry.OK],
		v.Entry.Key, v.Entry.Seq, v.Entry.IssuedAt, v.Entry.CompletedAt, v.Detail)
}

// Log accumulates entries and crash windows for one run.
type Log struct {
	Entries []Entry
	Crashes []Window
	// Rebalances are the membership transitions (join/leave/decommission)
	// the driver ran, recorded as [begin, finalize] intervals. They are
	// deliberately not consulted by any excuse path: the safety rules hold
	// through a rebalance exactly as they do in steady state. A window whose
	// To is zero means the transition never finalized — flagged by Check as
	// rebalance-stuck.
	Rebalances []Window
	// Expected is the number of operations the driver issued; fewer
	// recorded entries fail the liveness check.
	Expected int
	// Replicated tightens the stale-read rule for runs where every key is
	// held by R ≥ 2 replicas. A replicated store acks a write only after
	// every replica applied it, and a cold-restarted replica confirms each
	// recovered key against its peers before serving it — so "a crash
	// legally resurrects older epochs" no longer holds, and the stale-read
	// rule drops its crash-window excuse entirely.
	//
	// The other crash excuses stay even under replication:
	//
	//   - acked-write-lost checks *client-observable completion*: a crash
	//     can still eat the final response after the BufferAck even though
	//     the value is safe on the backups, so the op legitimately fails at
	//     the client. Durability of acked writes is verified separately by
	//     the bench's end-of-run replica sweep (lost_acked oracle).
	//   - counter-regression: an Incr rejected with StatusRecovering during
	//     a confirm window retries, but the worker's *observation* stream
	//     around a crash may still interleave with a failed-then-retried
	//     increment, which is a client artifact, not a store regression.
	Replicated bool
	// CheckValues arms the corruption oracle: every read hit's content
	// checksum (Entry.Sum) must equal the checksum of SOME acked write on
	// that key — any value, any age, but never bytes no writer ever sent.
	// Unlike stale-read, this rule has no crash-window excuse and no
	// replication qualifier: a cache may serve an old value or a miss, but
	// serving garbage is corruption under every configuration. Off by
	// default so pre-integrity drivers (whose entries carry zero Sums and
	// whose writes were never summed) keep their exact verdicts.
	CheckValues bool
}

// Record appends one completed operation.
func (l *Log) Record(e Entry) { l.Entries = append(l.Entries, e) }

// CrashWindow marks [from, to] as a crash-to-recovered interval.
func (l *Log) CrashWindow(from, to sim.Time) {
	l.Crashes = append(l.Crashes, Window{From: from, To: to})
}

// RebalanceWindow marks [from, to] as a membership rebalance interval.
// Record to == 0 for a rebalance that never finalized; Check flags it.
func (l *Log) RebalanceWindow(from, to sim.Time) {
	l.Rebalances = append(l.Rebalances, Window{From: from, To: to})
}

// crashed reports whether any crash window intersects [from, to].
func (l *Log) crashed(from, to sim.Time) bool {
	for _, w := range l.Crashes {
		if w.From <= to && w.To >= from {
			return true
		}
	}
	return false
}

// Check replays the log and returns every invariant violation.
func (l *Log) Check() []Violation {
	var out []Violation
	if l.Expected > 0 && len(l.Entries) < l.Expected {
		out = append(out, Violation{
			Rule: "liveness",
			Detail: fmt.Sprintf("%d of %d expected operations never completed — wedged process, virtual time stopped advancing for it",
				l.Expected-len(l.Entries), l.Expected),
		})
	}

	for i, w := range l.Rebalances {
		if w.To == 0 || w.To < w.From {
			out = append(out, Violation{
				Rule: "rebalance-stuck",
				Detail: fmt.Sprintf("rebalance %d began at %v and never finalized — migration wedged with the double-read window open",
					i, w.From),
			})
		}
	}

	writes := map[string][]*Entry{}
	maxSeq := map[string]uint64{}
	for i := range l.Entries {
		e := &l.Entries[i]
		if e.CompletedAt < e.IssuedAt {
			out = append(out, Violation{Rule: "time-regression", Entry: *e,
				Detail: "completed before it was issued"})
		}
		if e.Kind != Write {
			continue
		}
		writes[e.Key] = append(writes[e.Key], e)
		if e.Seq > maxSeq[e.Key] {
			maxSeq[e.Key] = e.Seq
		}
		if e.Acked && !e.OK && !l.crashed(e.IssuedAt, e.CompletedAt) {
			out = append(out, Violation{Rule: "acked-write-lost", Entry: *e,
				Detail: "server acked buffering the write, no crash intervened, yet it never completed"})
		}
	}

	// Corruption oracle: the set of value checksums writers actually sent,
	// per key. A read hit returning any other bytes is corruption — no
	// crash window, replication state, or staleness softens it.
	var wroteSum map[string]map[uint64]bool
	if l.CheckValues {
		wroteSum = map[string]map[uint64]bool{}
		for i := range l.Entries {
			e := &l.Entries[i]
			if e.Kind != Write {
				continue
			}
			if wroteSum[e.Key] == nil {
				wroteSum[e.Key] = map[uint64]bool{}
			}
			wroteSum[e.Key][e.Sum] = true
		}
	}

	for i := range l.Entries {
		e := &l.Entries[i]
		if e.Kind != Read || !e.OK || !e.Hit {
			continue
		}
		if l.CheckValues && !wroteSum[e.Key][e.Sum] {
			out = append(out, Violation{Rule: "corrupt-read", Entry: *e,
				Detail: fmt.Sprintf("observed value checksum %#x matches no write ever issued on this key", e.Sum)})
		}
		if e.Seq > maxSeq[e.Key] {
			out = append(out, Violation{Rule: "future-read", Entry: *e,
				Detail: fmt.Sprintf("observed seq %d but no writer ever sent past %d", e.Seq, maxSeq[e.Key])})
			continue
		}
		for _, w := range writes[e.Key] {
			if w.OK && w.Seq > e.Seq && w.CompletedAt <= e.IssuedAt &&
				(l.Replicated || !l.crashed(w.CompletedAt, e.IssuedAt)) {
				out = append(out, Violation{Rule: "stale-read", Entry: *e,
					Detail: fmt.Sprintf("observed seq %d after seq %d completed at %v with no crash between",
						e.Seq, w.Seq, w.CompletedAt)})
				break
			}
		}
	}

	// Counters: per key, consecutive successful observations must be
	// non-decreasing across crash-free intervals. Counter keys are
	// single-worker, so entry order in the log is issue order.
	last := map[string]*Entry{}
	for i := range l.Entries {
		e := &l.Entries[i]
		if e.Kind != IncrOp || !e.OK {
			continue
		}
		if prev := last[e.Key]; prev != nil &&
			e.Seq < prev.Seq && !l.crashed(prev.IssuedAt, e.CompletedAt) {
			out = append(out, Violation{Rule: "counter-regression", Entry: *e,
				Detail: fmt.Sprintf("counter fell from %d to %d with no crash between", prev.Seq, e.Seq)})
		}
		last[e.Key] = e
	}
	return out
}
