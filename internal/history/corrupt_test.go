package history

import "testing"

// The corruption oracle: with CheckValues armed, a read hit whose content
// checksum matches no write ever issued on the key is flagged — even inside
// a crash window, even under replication. Serving old bytes is a cache's
// right; serving bytes nobody wrote never is.
func TestCorruptReadOracle(t *testing.T) {
	l := &Log{CheckValues: true}
	l.CrashWindow(100, 200) // crash windows excuse nothing here
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, Sum: 0xaaa, OK: true, Acked: true, IssuedAt: 10, CompletedAt: 20})
	l.Record(Entry{Kind: Write, Key: "k", Seq: 2, Sum: 0xbbb, OK: false, Acked: false, IssuedAt: 30, CompletedAt: 40})
	// Legal: the bytes of write 1.
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Sum: 0xaaa, OK: true, Hit: true, IssuedAt: 50, CompletedAt: 60})
	// Legal: the bytes of the FAILED write 2 — it may still have landed.
	l.Record(Entry{Kind: Read, Key: "k", Seq: 2, Sum: 0xbbb, OK: true, Hit: true, IssuedAt: 70, CompletedAt: 80})
	// Misses are always legal, whatever their Sum field holds.
	l.Record(Entry{Kind: Read, Key: "k", Seq: 0, Sum: 0, OK: true, Hit: false, IssuedAt: 90, CompletedAt: 95})
	// Corrupt: bytes nobody ever wrote, completed inside the crash window.
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Sum: 0xeee, OK: true, Hit: true, IssuedAt: 110, CompletedAt: 120})

	var corrupt int
	for _, v := range l.Check() {
		if v.Rule == "corrupt-read" {
			corrupt++
			if v.Entry.Sum != 0xeee {
				t.Errorf("flagged the wrong entry: %v", v)
			}
		}
	}
	if corrupt != 1 {
		t.Errorf("corrupt-read violations = %d, want exactly 1", corrupt)
	}
}

// Unarmed, the oracle is inert: pre-integrity drivers record zero Sums on
// every entry and must keep their exact verdicts.
func TestCorruptReadOracleOffByDefault(t *testing.T) {
	l := &Log{}
	l.Record(Entry{Kind: Write, Key: "k", Seq: 1, OK: true, IssuedAt: 10, CompletedAt: 20})
	l.Record(Entry{Kind: Read, Key: "k", Seq: 1, Sum: 0x123, OK: true, Hit: true, IssuedAt: 50, CompletedAt: 60})
	for _, v := range l.Check() {
		if v.Rule == "corrupt-read" {
			t.Fatalf("corrupt-read fired with CheckValues off: %v", v)
		}
	}
}
