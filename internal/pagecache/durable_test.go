package pagecache

import (
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/sim"
)

// TestWriteExtentsDurableAndRecover: an untorn extent write is fully durable
// and survives RecoverExtents (the cold-restart logical rebuild); Discard
// removes an extent from both views so recovery cannot resurrect it.
func TestWriteExtentsDurableAndRecover(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 1<<30)
	f := New(env, dev, DefaultParams()).OpenFile(0, 16<<20)
	exts := []Extent{
		{Off: 0, Size: 512, Payload: "hdr"},
		{Off: 512, Size: 4096, Payload: "slot0"},
		{Off: 4608, Size: 4096, Payload: "slot1"},
	}
	var ok bool
	env.Spawn("w", func(p *sim.Proc) { ok = f.WriteExtents(p, 0, 8704, exts, Direct) })
	env.Run()
	if !ok {
		t.Fatal("WriteExtents failed with no faults armed")
	}
	for _, e := range exts {
		d, found := f.PeekDurable(e.Off)
		if !found || d.Torn() || d.Payload != e.Payload {
			t.Errorf("extent at %d not fully durable: %+v found=%v", e.Off, d, found)
		}
	}
	if end := f.DurableEnd(); end != 8704 {
		t.Errorf("DurableEnd = %d, want 8704", end)
	}

	f.Discard(512)
	f.RecoverExtents()
	if _, found := f.extents[512]; found {
		t.Error("discarded extent resurrected by RecoverExtents")
	}
	for _, off := range []int64{0, 4608} {
		if e, found := f.extents[off]; !found || e.payload == nil {
			t.Errorf("durable extent at %d missing from recovered logical view", off)
		}
	}
}

// TestTornWriteExtentsPersistPrefixOnly: with every command tearing, only
// sub-extents wholly inside the persisted sector prefix survive intact; the
// straddler is recorded torn, later ones stay absent — and the running
// logical view still holds everything (tearing is invisible until a crash).
// RecoverExtents must then drop every non-intact extent.
func TestTornWriteExtentsPersistPrefixOnly(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 1<<30)
	dev.SetTornWrites(3, 1.0)
	f := New(env, dev, DefaultParams()).OpenFile(0, 16<<20)
	const n, sz = 16, 4096
	var exts []Extent
	for i := 0; i < n; i++ {
		exts = append(exts, Extent{Off: int64(i * sz), Size: sz, Payload: i})
	}
	env.Spawn("w", func(p *sim.Proc) { f.WriteExtents(p, 0, n*sz, exts, Direct) })
	env.Run()
	if dev.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", dev.TornWrites)
	}
	intact, torn, absent := 0, 0, 0
	for _, e := range exts {
		d, found := f.PeekDurable(e.Off)
		switch {
		case !found:
			absent++
		case d.Torn():
			torn++
		default:
			intact++
		}
		if le, ok := f.extents[e.Off]; !ok || le.payload != e.Payload {
			t.Errorf("logical view lost extent %d despite the write completing", e.Off)
		}
	}
	if intact == n || absent+torn == 0 {
		t.Fatalf("prob-1 tear persisted everything (intact=%d torn=%d absent=%d)",
			intact, torn, absent)
	}
	if torn > 1 {
		t.Errorf("%d torn extents; at most the straddler may be partial", torn)
	}
	f.RecoverExtents()
	if got := len(f.extents); got != intact {
		t.Errorf("recovered logical view has %d extents, want the %d intact ones", got, intact)
	}
}

// TestTornMergedCommitDropsSuffix: a merged commit write (several records in
// one command) that tears persists only a prefix of the records in slice
// order — the suffix regions stay uncommitted. Single-record commits are
// sector-sized and can never tear.
func TestTornMergedCommitDropsSuffix(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 1<<30)
	f := New(env, dev, DefaultParams()).OpenFile(0, 16<<20)
	recs := []Extent{
		{Off: 4096, Size: 512, Payload: "commitA"},
		{Off: 8192, Size: 512, Payload: "commitB"},
	}
	dev.SetTornWrites(3, 1.0)
	var ok bool
	env.Spawn("w", func(p *sim.Proc) { ok = f.WriteCommit(p, recs) })
	env.Run()
	if !ok {
		t.Fatal("WriteCommit failed with no write errors armed")
	}
	if dev.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", dev.TornWrites)
	}
	if d, found := f.PeekDurable(8192); found && !d.Torn() {
		t.Errorf("suffix record durable despite the torn merged commit: %+v", d)
	}
	if a, af := f.PeekDurable(4096); af && a.Torn() {
		t.Errorf("prefix record torn: %+v", a)
	}

	// A single sector-sized record is atomic even at tear probability 1.
	var ok2 bool
	env.Spawn("w2", func(p *sim.Proc) {
		ok2 = f.WriteCommit(p, []Extent{{Off: 12288, Size: 512, Payload: "commitC"}})
	})
	env.Run()
	if !ok2 {
		t.Fatal("single-record WriteCommit failed")
	}
	if d, found := f.PeekDurable(12288); !found || d.Torn() {
		t.Errorf("single-record commit not atomic: %+v found=%v", d, found)
	}
}
