package pagecache

import (
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/sim"
)

func durableFixture(t *testing.T) (*sim.Env, *File) {
	t.Helper()
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 1<<30)
	f := New(env, dev, DefaultParams()).OpenFile(0, 16<<20)
	exts := []Extent{
		{Off: 0, Size: 512, Payload: "hdr"},
		{Off: 512, Size: 4096, Payload: "slot0"},
		{Off: 4608, Size: 4096, Payload: "slot1"}, // adjacent to slot0
		{Off: 16384, Size: 512, Payload: "commit"},
	}
	var ok bool
	env.Spawn("w", func(p *sim.Proc) { ok = f.WriteExtents(p, 0, 16896, exts, Direct) })
	env.Run()
	if !ok {
		t.Fatal("WriteExtents failed with no faults armed")
	}
	return env, f
}

// Discard is keyed on exact extent offsets: discarding an offset that lies
// INSIDE an extent (partially overlapping, not aligned to its start) must
// remove nothing — extent bookkeeping is not byte-range arithmetic, and a
// sloppy caller must not silently shred a neighbor's durable record.
func TestDiscardPartialOverlapIsNoop(t *testing.T) {
	_, f := durableFixture(t)
	f.Discard(100)  // inside the header extent
	f.Discard(2048) // inside slot0
	f.Discard(4607) // one byte before slot1's start
	for _, off := range []int64{0, 512, 4608, 16384} {
		if _, ok := f.Peek(off); !ok {
			t.Errorf("logical extent at %d vanished after an interior-offset Discard", off)
		}
		if _, ok := f.PeekDurable(off); !ok {
			t.Errorf("durable extent at %d vanished after an interior-offset Discard", off)
		}
	}
	// An exact-offset discard still removes exactly its extent.
	f.Discard(512)
	if _, ok := f.PeekDurable(512); ok {
		t.Error("exact-offset Discard left the extent durable")
	}
	if _, ok := f.PeekDurable(4608); !ok {
		t.Error("Discard of slot0 took the adjacent slot1 with it")
	}
}

// DurableEnd is the bump-allocator resume point: with adjacent extents it is
// the end of the highest one, and it retreats as the tail extents are
// discarded — through an adjacent pair down to zero.
func TestDurableEndAcrossAdjacentExtents(t *testing.T) {
	_, f := durableFixture(t)
	if end := f.DurableEnd(); end != 16896 {
		t.Fatalf("DurableEnd = %d, want 16896 (end of the commit record)", end)
	}
	f.Discard(16384)
	if end := f.DurableEnd(); end != 8704 {
		t.Errorf("DurableEnd = %d after dropping the tail, want 8704 (end of slot1)", end)
	}
	f.Discard(4608)
	if end := f.DurableEnd(); end != 4608 {
		t.Errorf("DurableEnd = %d, want 4608: slot0 ends exactly where its adjacent twin began", end)
	}
	f.Discard(512)
	f.Discard(0)
	if end := f.DurableEnd(); end != 0 {
		t.Errorf("DurableEnd = %d on an empty durable view, want 0", end)
	}
}

// RecoverExtents after a full wipe rebuilds an EMPTY logical view: nothing
// resurrects, and logical-only placements (SetExtent, never persisted) do
// not survive the restart either — they were RAM state, and a cold restart
// has no RAM.
func TestRecoverExtentsAfterWipe(t *testing.T) {
	_, f := durableFixture(t)
	f.SetExtent(20480, 512, "ram-only") // logical view only, never durable
	for _, off := range []int64{0, 512, 4608, 16384} {
		f.Discard(off)
	}
	f.RecoverExtents()
	if n := len(f.extents); n != 0 {
		t.Errorf("recovered logical view holds %d extents after a full wipe, want 0", n)
	}
	if _, ok := f.Peek(20480); ok {
		t.Error("logical-only extent survived a cold restart")
	}
	// And the view is rebuildable again after fresh writes.
	var ok bool
	f.c.env.Spawn("w2", func(p *sim.Proc) {
		ok = f.WriteExtents(p, 0, 512, []Extent{{Off: 0, Size: 512, Payload: "fresh"}}, Direct)
	})
	f.c.env.Run()
	if !ok {
		t.Fatal("post-wipe write failed")
	}
	f.RecoverExtents()
	if v, found := f.Peek(0); !found || v != "fresh" {
		t.Errorf("post-wipe write not recovered: (%v, %v)", v, found)
	}
}
