package pagecache

import (
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/sim"
)

func newCache(prof blockdev.Profile) (*sim.Env, *Cache) {
	env := sim.NewEnv()
	dev := blockdev.New(env, prof, 8<<30)
	return env, New(env, dev, DefaultParams())
}

// timeOp measures the virtual time one operation takes inside a process.
func timeOp(env *sim.Env, fn func(p *sim.Proc)) sim.Time {
	var d sim.Time
	env.Spawn("op", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		d = p.Now() - t0
	})
	env.Run()
	return d
}

func TestDirectWritePaysDeviceLatency(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	d := timeOp(env, func(p *sim.Proc) {
		f.Write(p, 0, 1<<20, "slab", Direct)
	})
	min := blockdev.SATA().WriteTime(1 << 20)
	if d < min {
		t.Errorf("direct 1MB write %v, below device time %v", d, min)
	}
}

func TestCachedWriteMuchFasterThanDirect(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var direct, cached sim.Time
	env.Spawn("op", func(p *sim.Proc) {
		t0 := p.Now()
		f.Write(p, 0, 1<<20, "a", Direct)
		direct = p.Now() - t0
		t0 = p.Now()
		f.Write(p, 1<<20, 1<<20, "b", Cached)
		cached = p.Now() - t0
	})
	env.Run()
	if float64(direct)/float64(cached) < 5 {
		t.Errorf("direct %v vs cached %v: want ≥5x gap for 1MB", direct, cached)
	}
}

func TestMmapWarmWriteBeatsCachedSmall(t *testing.T) {
	// After first touch, a small mmap write is pure memcpy (no syscall),
	// so it must beat cached I/O — the paper's reason to mmap small slabs.
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var mm, ca sim.Time
	env.Spawn("op", func(p *sim.Proc) {
		f.Write(p, 0, 4096, "warmup", Mmap) // fault in the page
		t0 := p.Now()
		f.Write(p, 0, 4096, "x", Mmap)
		mm = p.Now() - t0
		t0 = p.Now()
		f.Write(p, 1<<20, 4096, "y", Cached)
		ca = p.Now() - t0
	})
	env.Run()
	if mm >= ca {
		t.Errorf("warm 4KB mmap write %v not faster than cached %v", mm, ca)
	}
}

func TestCachedBeatsMmapLargeCold(t *testing.T) {
	// A cold 1MB mmap write faults 256 pages; cached I/O pays one syscall.
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var mm, ca sim.Time
	env.Spawn("op", func(p *sim.Proc) {
		t0 := p.Now()
		f.Write(p, 0, 1<<20, "m", Mmap)
		mm = p.Now() - t0
		t0 = p.Now()
		f.Write(p, 16<<20, 1<<20, "c", Cached)
		ca = p.Now() - t0
	})
	env.Run()
	if ca >= mm {
		t.Errorf("cold 1MB: cached %v not faster than mmap %v", ca, mm)
	}
}

func TestSchemeOrderingMatchesFigure4(t *testing.T) {
	// Paper Fig. 4 shape: for small evictions mmap wins; for large ones
	// cached wins; direct is worst everywhere. Small slab classes keep a
	// compact mmap arena whose pages stay resident (warm); large-class
	// evictions sweep a footprint far beyond the page cache (cold).
	measure := func(size int, s Scheme, warm bool) sim.Time {
		env, c := newCache(blockdev.SATA())
		f := c.OpenFile(0, 1<<30)
		var d sim.Time
		env.Spawn("op", func(p *sim.Proc) {
			if warm && s == Mmap {
				f.Write(p, 0, size, "warm", s)
			}
			t0 := p.Now()
			f.Write(p, 0, size, "v", s)
			d = p.Now() - t0
		})
		env.Run()
		return d
	}
	small := 2048
	large := 1 << 20
	if !(measure(small, Mmap, true) < measure(small, Cached, true) &&
		measure(small, Cached, true) < measure(small, Direct, true)) {
		t.Errorf("small writes: want mmap < cached < direct; got mmap=%v cached=%v direct=%v",
			measure(small, Mmap, true), measure(small, Cached, true), measure(small, Direct, true))
	}
	if !(measure(large, Cached, false) < measure(large, Mmap, false) &&
		measure(large, Mmap, false) < measure(large, Direct, false)) {
		t.Errorf("large writes: want cached < mmap < direct; got cached=%v mmap=%v direct=%v",
			measure(large, Cached, false), measure(large, Mmap, false), measure(large, Direct, false))
	}
}

func TestCachedReadHitVsMiss(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var missT, hitT sim.Time
	var v1, v2 any
	env.Spawn("op", func(p *sim.Proc) {
		f.Write(p, 0, 32*1024, "item", Direct) // on device, not resident
		t0 := p.Now()
		v1, _ = f.Read(p, 0, 32*1024, Cached)
		missT = p.Now() - t0
		t0 = p.Now()
		v2, _ = f.Read(p, 0, 32*1024, Cached)
		hitT = p.Now() - t0
	})
	env.Run()
	if v1 != "item" || v2 != "item" {
		t.Errorf("read payloads %v/%v", v1, v2)
	}
	if missT < blockdev.SATA().ReadTime(32*1024) {
		t.Errorf("miss read %v below device read time", missT)
	}
	if float64(missT)/float64(hitT) < 10 {
		t.Errorf("miss %v vs hit %v: want ≥10x gap", missT, hitT)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestReadOfUnwrittenExtent(t *testing.T) {
	env, c := newCache(blockdev.NVMe())
	f := c.OpenFile(0, 1<<20)
	var ok bool
	env.Spawn("op", func(p *sim.Proc) { _, ok = f.Read(p, 0, 4096, Cached) })
	env.Run()
	if ok {
		t.Errorf("read of never-written extent reported ok")
	}
}

func TestDirtyThrottlingStallsWriters(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	par := DefaultParams()
	par.DirtyHighPages = 64
	par.ThrottlePages = 128
	c := New(env, dev, par)
	f := c.OpenFile(0, 4<<30)
	env.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 4096; i++ {
			f.Write(p, int64(i)*4096, 4096, i, Cached)
		}
	})
	env.Run()
	if c.ThrottleStalls == 0 {
		t.Errorf("sustained cached writes never hit dirty throttling")
	}
	if c.WritebackPages == 0 {
		t.Errorf("flusher never wrote back")
	}
}

func TestWritebackDrainsDirtyPages(t *testing.T) {
	env, c := newCache(blockdev.NVMe())
	f := c.OpenFile(0, 1<<30)
	env.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < int(int64(c.Params().DirtyHighPages)+100); i++ {
			f.Write(p, int64(i)*4096, 4096, i, Cached)
		}
	})
	env.Run()
	if c.Dirty() > c.Params().DirtyHighPages {
		t.Errorf("dirty pages %d still above high watermark %d after idle",
			c.Dirty(), c.Params().DirtyHighPages)
	}
}

func TestMsyncCleansFile(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var syncT sim.Time
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			f.Write(p, int64(i)*4096, 4096, i, Mmap)
		}
		t0 := p.Now()
		f.Msync(p)
		syncT = p.Now() - t0
	})
	env.Run()
	if c.Dirty() != 0 {
		t.Errorf("dirty=%d after msync, want 0", c.Dirty())
	}
	if syncT < blockdev.SATA().WriteTime(16*4096) {
		t.Errorf("msync of 16 dirty pages took %v, below one device write", syncT)
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.NVMe(), 8<<30)
	par := DefaultParams()
	par.MaxPages = 100
	par.DirtyHighPages = 20
	par.ThrottlePages = 50
	c := New(env, dev, par)
	f := c.OpenFile(0, 4<<30)
	env.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			f.Write(p, int64(i)*4096, 4096, i, Cached)
		}
	})
	env.Run()
	if c.Resident() > 100 {
		t.Errorf("resident pages %d exceed MaxPages 100", c.Resident())
	}
}

func TestMmapColdReadFaults(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 1<<30)
	var v any
	env.Spawn("op", func(p *sim.Proc) {
		f.Write(p, 0, 64*1024, "blob", Direct) // on device only
		v, _ = f.Read(p, 0, 64*1024, Mmap)
	})
	env.Run()
	if v != "blob" {
		t.Errorf("mmap read returned %v", v)
	}
	if c.Faults < 16 {
		t.Errorf("cold 64KB mmap read faulted %d pages, want ≥16", c.Faults)
	}
}

func TestOutOfFilePanics(t *testing.T) {
	env, c := newCache(blockdev.SATA())
	f := c.OpenFile(0, 8192)
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-file access did not panic")
		}
	}()
	env.Spawn("op", func(p *sim.Proc) { f.Write(p, 4096, 8192, nil, Cached) })
	env.Run()
}

func TestDiscardDropsExtent(t *testing.T) {
	env, c := newCache(blockdev.NVMe())
	f := c.OpenFile(0, 1<<20)
	var ok bool
	env.Spawn("op", func(p *sim.Proc) {
		f.Write(p, 0, 4096, "x", Cached)
		f.Discard(0)
		_, ok = f.Read(p, 0, 4096, Cached)
	})
	env.Run()
	if ok {
		t.Errorf("read after Discard reported ok")
	}
}
