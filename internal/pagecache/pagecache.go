// Package pagecache models the OS page cache and the three file I/O schemes
// the paper contrasts for hybrid-slab eviction (Section V-B2, Figure 4):
//
//	Direct I/O : syscall + synchronous device command for the full extent.
//	Cached I/O : syscall + memcpy into resident pages; dirty pages are
//	             written back asynchronously by a flusher daemon, with
//	             dirty-ratio throttling stalling writers under pressure.
//	Mmap I/O   : no syscall; minor fault per non-resident page, then pure
//	             memcpy; msync or the flusher eventually cleans pages.
//
// These first-order costs are why the adaptive slab manager picks mmap for
// small slab classes (syscall cost dominates) and cached I/O for large ones
// (per-page fault cost dominates), with direct I/O always paying full device
// latency synchronously.
//
// Contents are tracked as opaque payload extents per file; the page cache
// tracks residency and dirtiness for timing only.
package pagecache

import (
	"container/list"
	"fmt"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/sim"
)

// Scheme selects the I/O path for one file operation.
type Scheme int

const (
	Direct Scheme = iota
	Cached
	Mmap
)

func (s Scheme) String() string {
	switch s {
	case Direct:
		return "direct"
	case Cached:
		return "cached"
	case Mmap:
		return "mmap"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Params is the host-side cost model and cache geometry.
type Params struct {
	PageSize       int      // bytes per page
	MaxPages       int      // resident-page limit (cache memory budget)
	DirtyHighPages int      // flusher daemon kicks in above this
	ThrottlePages  int      // writers stall above this
	WritebackBatch int      // pages per flusher device command
	MemcpyBps      int64    // host copy bandwidth
	SyscallCost    sim.Time // read/write syscall entry+exit
	FaultCost      sim.Time // minor page fault (mmap first touch)
	ReadAheadPages int      // extra pages fetched on a cached read miss
}

// DefaultParams models a contemporary Linux host: 4 KB pages, ~8 GB/s
// single-threaded copy bandwidth, ~1.8 µs syscall, ~1.5 µs minor fault, and
// a 128 MB cache budget (the experiments cap server RAM, so the cache is
// deliberately modest).
func DefaultParams() Params {
	return Params{
		PageSize:       4096,
		MaxPages:       32768, // 128 MB
		DirtyHighPages: 8192,  // 32 MB
		ThrottlePages:  16384, // 64 MB
		WritebackBatch: 256,   // 1 MB per flusher command
		MemcpyBps:      8_000_000_000,
		SyscallCost:    1800 * sim.Nanosecond,
		FaultCost:      1500 * sim.Nanosecond,
		// Read-ahead is disabled by default: the key-value load pattern is
		// random, and the kernel's readahead heuristic backs off to zero
		// on random access. Sequential-scan callers can raise it.
		ReadAheadPages: 0,
	}
}

type pageKey struct {
	file int
	idx  int64
}

type page struct {
	key   pageKey
	dirty bool
	lru   *list.Element
}

// Cache is one host's page cache in front of one device.
type Cache struct {
	env   *sim.Env
	dev   *blockdev.Device
	par   Params
	pages map[pageKey]*page
	lru   *list.List // front = most recent
	dirty int
	files int

	wbKick   *sim.Event
	wbYield  *sim.Event // fired after each flusher batch; throttled writers wait on it
	stopping bool

	// Stats
	Hits, Misses   int64
	Faults         int64
	WritebackPages int64
	ThrottleStalls int64
}

// New creates a page cache over dev and starts its flusher daemon.
func New(env *sim.Env, dev *blockdev.Device, par Params) *Cache {
	if par.PageSize <= 0 {
		panic("pagecache: PageSize must be positive")
	}
	c := &Cache{
		env:     env,
		dev:     dev,
		par:     par,
		pages:   make(map[pageKey]*page),
		lru:     list.New(),
		wbKick:  env.NewEvent(),
		wbYield: env.NewEvent(),
	}
	env.Spawn("pagecache-flusher", c.flusher)
	return c
}

// Params returns the cache's cost model.
func (c *Cache) Params() Params { return c.par }

// Device returns the backing device.
func (c *Cache) Device() *blockdev.Device { return c.dev }

// Resident reports the number of resident pages.
func (c *Cache) Resident() int { return len(c.pages) }

// Dirty reports the number of dirty pages.
func (c *Cache) Dirty() int { return c.dirty }

func (c *Cache) memcpyTime(size int) sim.Time {
	if size <= 0 || c.par.MemcpyBps <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(c.par.MemcpyBps) * float64(sim.Second))
}

// File is a region of the device accessed through the cache. Offsets are
// file-relative; the file owns [base, base+size) on the device.
type File struct {
	c       *Cache
	id      int
	base    int64
	size    int64
	extents map[int64]extent
}

type extent struct {
	size    int
	payload any
}

// OpenFile carves a file over [base, base+size) of the device.
func (c *Cache) OpenFile(base, size int64) *File {
	c.files++
	return &File{c: c, id: c.files, base: base, size: size, extents: make(map[int64]extent)}
}

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

func (f *File) pageRange(off int64, size int) (first, last int64) {
	ps := int64(f.c.par.PageSize)
	return off / ps, (off + int64(size) - 1) / ps
}

func (f *File) check(off int64, size int) {
	if off < 0 || size <= 0 || off+int64(size) > f.size {
		panic(fmt.Sprintf("pagecache: access [%d,%d) outside file size %d", off, off+int64(size), f.size))
	}
}

// Write stores payload at off using the given scheme, charging the process
// the scheme's cost.
func (f *File) Write(p *sim.Proc, off int64, size int, payload any, scheme Scheme) {
	f.check(off, size)
	c := f.c
	switch scheme {
	case Direct:
		// Synchronous direct I/O: full device write plus the flush
		// barrier, all on the caller's critical path.
		p.Sleep(c.par.SyscallCost)
		c.dev.ServeRaw(p, true, size)
		c.dev.Barrier(p)
		if c.dev.InjectWriteError() {
			// Failed program: the extent keeps its old contents (or stays
			// absent), which a later Read surfaces as ok=false.
			return
		}
	case Cached:
		p.Sleep(c.par.SyscallCost)
		p.Sleep(c.memcpyTime(size))
		f.dirtyRange(p, off, size)
		c.throttle(p)
	case Mmap:
		first, last := f.pageRange(off, size)
		var faults int
		for i := first; i <= last; i++ {
			if _, ok := c.pages[pageKey{f.id, i}]; !ok {
				faults++
			}
		}
		if faults > 0 {
			p.Sleep(sim.Time(faults) * c.par.FaultCost)
			c.Faults += int64(faults)
		}
		p.Sleep(c.memcpyTime(size))
		f.dirtyRange(p, off, size)
		c.throttle(p)
	}
	f.extents[off] = extent{size: size, payload: payload}
}

// Read fetches the payload stored at off using the given scheme. ok reports
// whether an extent was ever written there (timing is charged regardless).
func (f *File) Read(p *sim.Proc, off int64, size int, scheme Scheme) (payload any, ok bool) {
	f.check(off, size)
	c := f.c
	touchedDev := false
	switch scheme {
	case Direct:
		p.Sleep(c.par.SyscallCost)
		c.dev.ServeRaw(p, false, size)
		touchedDev = true
	case Cached:
		p.Sleep(c.par.SyscallCost)
		missBytes := f.missBytes(off, size)
		if missBytes > 0 {
			c.Misses++
			ra := c.par.ReadAheadPages * c.par.PageSize
			c.dev.ServeRaw(p, false, missBytes+ra)
			touchedDev = true
			f.residentRange(p, off, size, false)
			// Read-ahead pages become resident beyond the request.
			f.residentRange(p, min64(off+int64(size), f.size-1), int(min64(int64(ra), f.size-(off+int64(size)))), false)
		} else {
			c.Hits++
		}
		p.Sleep(c.memcpyTime(size))
		f.touchRange(off, size)
	case Mmap:
		first, last := f.pageRange(off, size)
		ps := int64(c.par.PageSize)
		// Fault in non-resident runs with one device command per run
		// (page-granular random reads: this is what makes mmap reads of
		// cold large extents expensive).
		runStart := int64(-1)
		var faulted int64
		for i := first; i <= last+1; i++ {
			missing := false
			if i <= last {
				_, resident := c.pages[pageKey{f.id, i}]
				missing = !resident
			}
			if missing && runStart < 0 {
				runStart = i
			}
			if !missing && runStart >= 0 {
				run := i - runStart
				p.Sleep(sim.Time(run) * c.par.FaultCost)
				c.dev.ServeRaw(p, false, int(run*ps))
				faulted += run
				runStart = -1
			}
		}
		if faulted > 0 {
			c.Faults += faulted
			c.Misses++
			touchedDev = true
			f.residentRange(p, off, size, false)
		} else {
			c.Hits++
		}
		p.Sleep(c.memcpyTime(size))
		f.touchRange(off, size)
	}
	if touchedDev && c.dev.InjectReadError() {
		// Uncorrectable media read on the device command that backed this
		// request: surface it as missing contents.
		return nil, false
	}
	e, ok := f.extents[off]
	if !ok {
		return nil, false
	}
	// Bit-rot bites only reads that actually touched the media — a cache
	// hit re-serves the DRAM copy — and only after the full normal service
	// time is charged, so a rotted read is virtual-time-identical to a
	// clean one.
	if touchedDev && c.dev.RotRead(f.base+off, p.Now()) {
		return blockdev.Rotted{Payload: e.payload}, true
	}
	return e.payload, true
}

// Peek returns the logical contents at off without any time charge (for
// integrity re-checks against data a read already paid for, and for
// assertions).
func (f *File) Peek(off int64) (payload any, ok bool) {
	e, ok := f.extents[off]
	return e.payload, ok
}

// Extent names one sub-extent of a larger write: the unit at which contents
// are later read back (a slab item slot, a page header, a commit record).
type Extent struct {
	Off     int64 // file-relative
	Size    int
	Payload any
}

// WriteExtents writes [off, off+size) as one device command under the given
// scheme — charged exactly like Write — and places each sub-extent both in
// the file's logical view and in the device's durable view. It returns false
// when the device injects a write error (direct I/O only, where the failure
// is synchronous): nothing is placed, logical or durable, so a failed flush
// cannot leave items half-placed.
//
// The durable placement draws one torn-write decision for the command: only
// sub-extents wholly inside the persisted sector prefix survive a crash
// intact; the one straddling the tear point persists torn, and later ones
// keep whatever the media held before (typically stale data from a prior
// region incarnation, which recovery rejects by epoch/commit mismatch).
// Cached and mmap writes persist here too — a deliberate simplification that
// models writeback as completing in write order.
func (f *File) WriteExtents(p *sim.Proc, off int64, size int, exts []Extent, scheme Scheme) bool {
	f.check(off, size)
	c := f.c
	switch scheme {
	case Direct:
		p.Sleep(c.par.SyscallCost)
		c.dev.ServeRaw(p, true, size)
		c.dev.Barrier(p)
		if c.dev.InjectWriteError() {
			return false
		}
	case Cached:
		p.Sleep(c.par.SyscallCost)
		p.Sleep(c.memcpyTime(size))
		f.dirtyRange(p, off, size)
		c.throttle(p)
	case Mmap:
		first, last := f.pageRange(off, size)
		var faults int
		for i := first; i <= last; i++ {
			if _, ok := c.pages[pageKey{f.id, i}]; !ok {
				faults++
			}
		}
		if faults > 0 {
			p.Sleep(sim.Time(faults) * c.par.FaultCost)
			c.Faults += int64(faults)
		}
		p.Sleep(c.memcpyTime(size))
		f.dirtyRange(p, off, size)
		c.throttle(p)
	}
	persisted, _ := c.dev.InjectTorn(size)
	tearAt := off + int64(persisted)
	for _, e := range exts {
		f.extents[e.Off] = extent{size: e.Size, payload: e.Payload}
		end := e.Off + int64(e.Size)
		switch {
		case end <= tearAt:
			c.dev.Persist(f.base+e.Off, e.Size, e.Size, e.Payload)
		case e.Off < tearAt:
			c.dev.Persist(f.base+e.Off, e.Size, int(tearAt-e.Off), e.Payload)
		}
	}
	return true
}

// WriteCommit journals the given extents as one small ordered write (no
// cache barrier: commit records are sector-sized and the device program of
// the preceding data write already completed, so ordering holds). Returns
// false when the device injects a write error; a torn commit write persists
// only a prefix of the records, in slice order.
func (f *File) WriteCommit(p *sim.Proc, exts []Extent) bool {
	total := 0
	for _, e := range exts {
		f.check(e.Off, e.Size)
		total += e.Size
	}
	c := f.c
	p.Sleep(c.par.SyscallCost)
	c.dev.ServeRaw(p, true, total)
	if c.dev.InjectWriteError() {
		return false
	}
	persisted, _ := c.dev.InjectTorn(total)
	written := 0
	for _, e := range exts {
		f.extents[e.Off] = extent{size: e.Size, payload: e.Payload}
		switch {
		case written+e.Size <= persisted:
			c.dev.Persist(f.base+e.Off, e.Size, e.Size, e.Payload)
		case written < persisted:
			c.dev.Persist(f.base+e.Off, e.Size, persisted-written, e.Payload)
		}
		written += e.Size
	}
	return true
}

// ReadRaw charges a synchronous direct read of [off, off+size) without
// touching the extent maps — the recovery scan's I/O cost.
func (f *File) ReadRaw(p *sim.Proc, off int64, size int) {
	f.check(off, size)
	p.Sleep(f.c.par.SyscallCost)
	f.c.dev.ServeRaw(p, false, size)
}

// DurableOffsets lists the file-relative offsets of every durable extent in
// the file, sorted — the recovery scan order.
func (f *File) DurableOffsets() []int64 {
	offs := f.c.dev.DurableOffsets(f.base, f.base+f.size)
	for i := range offs {
		offs[i] -= f.base
	}
	return offs
}

// PeekDurable returns the durable extent at the file-relative offset.
func (f *File) PeekDurable(off int64) (blockdev.DurExtent, bool) {
	return f.c.dev.PeekDurable(f.base + off)
}

// DurableEnd returns the file-relative end of the highest durable extent —
// where a rebuilt bump allocator resumes.
func (f *File) DurableEnd() int64 {
	return f.c.dev.DurableEnd(f.base, f.base+f.size) - f.base
}

// RecoverExtents models a cold host restart for this file: the page cache
// is dropped and the logical extent map is rebuilt from the device's
// durable view. Torn extents are left out of the logical view — recovery
// code inspects them through PeekDurable.
func (f *File) RecoverExtents() {
	f.c.Reset()
	f.extents = make(map[int64]extent)
	for _, off := range f.DurableOffsets() {
		if e, ok := f.PeekDurable(off); ok && !e.Torn() {
			f.extents[off] = extent{size: e.Size, payload: e.Payload}
		}
	}
}

// Reset drops every resident page (clean and dirty) — the page cache of a
// power-cycled host.
func (c *Cache) Reset() {
	c.pages = make(map[pageKey]*page)
	c.lru = list.New()
	c.dirty = 0
}

// Msync synchronously writes back all dirty pages of the file.
func (f *File) Msync(p *sim.Proc) {
	c := f.c
	var batch int
	for k, pg := range c.pages {
		if k.file == f.id && pg.dirty {
			pg.dirty = false
			c.dirty--
			batch++
		}
	}
	if batch > 0 {
		c.dev.ServeRaw(p, true, batch*c.par.PageSize)
		c.WritebackPages += int64(batch)
	}
}

// Discard drops the extent bookkeeping at off (slab reuse), both in the
// logical view and in the durable view — an invalidated slot must not be
// resurrected by a later recovery scan.
func (f *File) Discard(off int64) {
	delete(f.extents, off)
	f.c.dev.DiscardDurable(f.base + off)
}

// SetExtent records contents at off without any time charge. Callers use it
// to place sub-extents inside a region whose I/O cost was already charged by
// a single batched Write (e.g. a 1 MB slab flush containing many items).
func (f *File) SetExtent(off int64, size int, payload any) {
	f.check(off, size)
	f.extents[off] = extent{size: size, payload: payload}
}

// missBytes returns the byte count of non-resident pages in the range.
func (f *File) missBytes(off int64, size int) int {
	first, last := f.pageRange(off, size)
	n := 0
	for i := first; i <= last; i++ {
		if _, ok := f.c.pages[pageKey{f.id, i}]; !ok {
			n++
		}
	}
	return n * f.c.par.PageSize
}

// residentRange marks pages resident (dirty if dirty=true), evicting as
// needed to stay under MaxPages.
func (f *File) residentRange(p *sim.Proc, off int64, size int, dirty bool) {
	if size <= 0 {
		return
	}
	c := f.c
	first, last := f.pageRange(off, size)
	for i := first; i <= last; i++ {
		k := pageKey{f.id, i}
		pg, ok := c.pages[k]
		if !ok {
			c.evictFor(p, 1)
			pg = &page{key: k}
			pg.lru = c.lru.PushFront(pg)
			c.pages[k] = pg
		} else {
			c.lru.MoveToFront(pg.lru)
		}
		if dirty && !pg.dirty {
			pg.dirty = true
			c.dirty++
		}
	}
}

func (f *File) dirtyRange(p *sim.Proc, off int64, size int) {
	f.residentRange(p, off, size, true)
	c := f.c
	if c.dirty > c.par.DirtyHighPages {
		c.kickFlusher()
	}
}

func (f *File) touchRange(off int64, size int) {
	c := f.c
	first, last := f.pageRange(off, size)
	for i := first; i <= last; i++ {
		if pg, ok := c.pages[pageKey{f.id, i}]; ok {
			c.lru.MoveToFront(pg.lru)
		}
	}
}

// evictFor makes room for n new pages by dropping clean LRU pages; dirty
// LRU pages are flushed synchronously in the caller's context if no clean
// page is available (direct-reclaim behaviour).
func (c *Cache) evictFor(p *sim.Proc, n int) {
	if c.par.MaxPages <= 0 {
		return
	}
	for len(c.pages)+n > c.par.MaxPages {
		// Scan from the back for a clean victim.
		var victim *page
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			pg := e.Value.(*page)
			if !pg.dirty {
				victim = pg
				break
			}
		}
		if victim == nil {
			// Direct reclaim: flush the oldest dirty page synchronously.
			e := c.lru.Back()
			if e == nil {
				return
			}
			pg := e.Value.(*page)
			c.dev.ServeRaw(p, true, c.par.PageSize)
			c.WritebackPages++
			pg.dirty = false
			c.dirty--
			victim = pg
		}
		c.lru.Remove(victim.lru)
		delete(c.pages, victim.key)
	}
}

// throttle stalls the writer while the dirty set exceeds ThrottlePages.
func (c *Cache) throttle(p *sim.Proc) {
	for c.dirty > c.par.ThrottlePages {
		c.ThrottleStalls++
		c.kickFlusher()
		ev := c.wbYield
		p.Wait(ev)
	}
}

func (c *Cache) kickFlusher() {
	if !c.wbKick.Fired() {
		c.wbKick.Fire()
	}
}

// Kick wakes the writeback daemon regardless of watermarks (sync(1)-style:
// used to drain dirty state before a measurement phase).
func (c *Cache) Kick() { c.kickFlusher() }

// flusher is the background writeback daemon.
func (c *Cache) flusher(p *sim.Proc) {
	for {
		if c.dirty <= c.par.DirtyHighPages/2 {
			ev := c.wbKick
			p.Wait(ev)
			c.wbKick = c.env.NewEvent()
		}
		// Collect a batch of dirty pages, oldest first.
		batch := 0
		for e := c.lru.Back(); e != nil && batch < c.par.WritebackBatch; e = e.Prev() {
			pg := e.Value.(*page)
			if pg.dirty {
				pg.dirty = false
				c.dirty--
				batch++
			}
		}
		if batch == 0 {
			// Nothing flushable despite the kick; rearm and wait.
			ev := c.wbKick
			p.Wait(ev)
			c.wbKick = c.env.NewEvent()
			continue
		}
		c.dev.ServeRaw(p, true, batch*c.par.PageSize)
		c.WritebackPages += int64(batch)
		// Release throttled writers.
		y := c.wbYield
		c.wbYield = c.env.NewEvent()
		y.Fire()
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
