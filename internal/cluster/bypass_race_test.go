package cluster

import (
	"errors"
	"fmt"
	"testing"

	"hybridkv/internal/core"
	"hybridkv/internal/history"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// Functional coverage of the server-bypass GET path: correct values on hits,
// fast-path engagement on re-reads, RPC forcing, fallbacks for misses, and
// hedge suppression for bypass-resolved GETs.
func TestBypassServesReads(t *testing.T) {
	cl := New(Config{
		Design: HRDMAOptNonBI, Profile: ClusterA(),
		Servers: 2, ServerMem: 64 << 20,
		Bypass: true,
	})
	const n = 100
	keyOf := func(i int) string { return fmt.Sprintf("obj:%010d", i) }
	cl.Preload(n, 8<<10, keyOf)

	c := cl.Clients[0]
	bad := 0
	cl.Env.Spawn("reader", func(p *sim.Proc) {
		// Two passes: the first resolves via directory probes, the second
		// re-reads through the per-key location cache (single-READ fast
		// path).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n; i++ {
				v, _, st := c.Get(p, keyOf(i))
				if st != protocol.StatusOK || v != fmt.Sprintf("v%d", i) {
					bad++
				}
			}
		}
		// Forced RPC must still work and must not touch the bypass path.
		before := c.Stats().BypassHits
		req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: keyOf(0)},
			core.WithReadPath(core.ReadRPC))
		if err != nil {
			t.Errorf("rpc-forced issue: %v", err)
			return
		}
		c.Wait(p, req)
		if req.Bypassed() || req.Status != protocol.StatusOK {
			t.Errorf("rpc-forced GET bypassed=%v status=%v", req.Bypassed(), req.Status)
		}
		if c.Stats().BypassHits != before {
			t.Errorf("rpc-forced GET incremented bypass hits")
		}
		// A miss probes an empty slot and falls back to an RPC miss.
		if _, _, st := c.Get(p, "no-such-key"); st != protocol.StatusNotFound {
			t.Errorf("miss status = %v", st)
		}
		// A hedged GET that resolves via bypass suppresses its hedge.
		hreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: keyOf(1)},
			core.WithHedge(sim.Millisecond))
		if err != nil {
			t.Errorf("hedged issue: %v", err)
			return
		}
		c.Wait(p, hreq)
		p.Sleep(2 * sim.Millisecond) // let the hedge timer observe completion
		if !hreq.Bypassed() {
			t.Errorf("hedged GET did not resolve via bypass")
		}
	})
	cl.Env.Run()

	if bad != 0 {
		t.Fatalf("%d of %d bypass reads returned wrong value/status", bad, 2*n)
	}
	st := c.Stats()
	if st.BypassHits == 0 || st.BypassBootstraps == 0 {
		t.Fatalf("bypass never engaged: %+v", st)
	}
	if st.BypassFastPath == 0 {
		t.Fatalf("location-cache fast path never engaged: %+v", st)
	}
	if st.BypassFallbacks == 0 {
		t.Fatalf("the miss should have fallen back: %+v", st)
	}
	if st.HedgesSuppressed == 0 || st.Hedges != 0 {
		t.Fatalf("hedge not suppressed for bypass-resolved GET: hedges=%d suppressed=%d",
			st.Hedges, st.HedgesSuppressed)
	}
}

// A bypass-disabled cluster must never resolve via bypass.
func TestBypassDisabledByDefault(t *testing.T) {
	cl := New(Config{Design: HRDMAOptNonBI, Profile: ClusterA(), ServerMem: 64 << 20})
	c := cl.Clients[0]
	cl.Env.Spawn("reader", func(p *sim.Proc) {
		c.Set(p, "k", 1024, "v", 0, 0)
		req, _ := c.Issue(p, core.Op{Code: protocol.OpGet, Key: "k"},
			core.WithReadPath(core.ReadBypass))
		c.Wait(p, req)
		if req.Bypassed() || req.Status != protocol.StatusOK {
			t.Errorf("bypassed=%v status=%v on a bypass-disabled client", req.Bypassed(), req.Status)
		}
	})
	cl.Env.Run()
	if st := c.Stats(); st.BypassHits != 0 || st.BypassBootstraps != 0 {
		t.Fatalf("bypass machinery ran while disabled: %+v", st)
	}
}

// The bypass safety soak: forced-bypass readers race CAS-chained writers,
// slab eviction (RAM overcommitted 3x), a warm crash, and a cold restart.
// The seqlock/digest validation must turn every race into a fallback, never
// a torn or stale read — checked offline by the history oracle.
func TestBypassRaceChaos(t *testing.T) {
	const (
		writers   = 6
		keysPerW  = 4
		rounds    = 60
		readers   = 6
		readRound = 120
		valueSize = 32 << 10
	)
	cl := New(Config{
		Design: HRDMAOptNonBI, Profile: ClusterA(),
		ServerMem:    4 << 20, // ~8 MB of filler + working set: constant eviction
		SlabPageSize: 256 << 10,
		Bypass:       true,
	})
	keyOf := func(i int) string { return fmt.Sprintf("fill:%06d", i) }
	cl.Preload(256, valueSize, keyOf) // 8 MB against a 4 MB budget

	c := cl.Clients[0]
	rp := core.RetryPolicy{
		MaxAttempts:    8,
		AttemptTimeout: 200 * sim.Microsecond,
		Backoff:        20 * sim.Microsecond,
		MaxBackoff:     sim.Millisecond,
		Jitter:         -1,
		Seed:           42,
	}
	guard := []core.IssueOption{core.WithDeadline(50 * sim.Millisecond), core.WithRetry(rp)}
	forced := append([]core.IssueOption{core.WithReadPath(core.ReadBypass)}, guard...)

	log := &history.Log{}
	expected := 0

	// Writers: per-key CAS chains with the sequence number as the value, so
	// a bypass read that returns a torn or resurrected snapshot is caught as
	// future-read / stale-read.
	for w := 0; w < writers; w++ {
		w := w
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("bypass-writer%d", w), func(p *sim.Proc) {
			next := make([]uint64, keysPerW)
			for r := 0; r < rounds; r++ {
				ki := r % keysPerW
				key := fmt.Sprintf("race:w%d:k%d", w, ki)
				t0 := p.Now()
				rreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, forced...)
				if err != nil {
					panic("bypass chaos read: " + err.Error())
				}
				c.Wait(p, rreq)
				rerr := rreq.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = rreq.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: w, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})

				next[ki]++
				seqW := next[ki]
				op := core.Op{Code: protocol.OpAdd, Key: key, ValueSize: valueSize, Value: seqW}
				if hit {
					// The CAS token came from the bypass snapshot: a stale
					// one is rejected server-side, re-syncing next round.
					op = core.Op{Code: protocol.OpCAS, Key: key, ValueSize: valueSize, Value: seqW, CAS: rreq.CAS}
				}
				t1 := p.Now()
				wreq, err := c.Issue(p, op, guard...)
				if err != nil {
					panic("bypass chaos write: " + err.Error())
				}
				c.Wait(p, wreq)
				werr := wreq.Err()
				log.Record(history.Entry{
					Worker: w, Kind: history.Write, Key: key, Seq: seqW,
					OK:       werr == nil,
					Acked:    wreq.Acked() && (werr == nil || errors.Is(werr, core.ErrDeadlineExceeded)),
					IssuedAt: t1, CompletedAt: p.Now(),
				})
				p.Sleep(60 * sim.Microsecond)
			}
		})
	}

	// Readers: forced-bypass GETs over both the contended CAS keys and the
	// eviction-churned filler, so probes race SET windows, evictions, SSD
	// residence, and the crash quiesce.
	for rd := 0; rd < readers; rd++ {
		rd := rd
		expected += readRound
		cl.Env.Spawn(fmt.Sprintf("bypass-reader%d", rd), func(p *sim.Proc) {
			for r := 0; r < readRound; r++ {
				var key string
				if r%2 == 0 {
					key = fmt.Sprintf("race:w%d:k%d", (rd+r)%writers, r%keysPerW)
				} else {
					key = keyOf((rd*readRound + r) % 256)
				}
				t0 := p.Now()
				req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, forced...)
				if err != nil {
					panic("bypass chaos reader: " + err.Error())
				}
				c.Wait(p, req)
				rerr := req.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = req.Value.(uint64)
				}
				e := history.Entry{
					Worker: writers + rd, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				}
				if key[0] == 'f' {
					// Filler values are ints, not CAS-chain seqs; exclude
					// them from the seq oracle by recording seq 0.
					e.Seq = 0
				}
				log.Record(e)
				p.Sleep(25 * sim.Microsecond)
			}
		})
	}

	// Crash schedule: a warm crash mid-run (quiesced directory, READs must
	// observe emptiness), then a cold restart (recovery gate + republish).
	srv := cl.Servers[0]
	cl.Env.Spawn("bypass-crasher", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		from := p.Now()
		srv.Crash()
		p.Sleep(300 * sim.Microsecond)
		srv.Restart()
		log.CrashWindow(from, p.Now())

		p.Sleep(3 * sim.Millisecond)
		from = p.Now()
		srv.Crash()
		p.Sleep(300 * sim.Microsecond)
		srv.RestartCold()
		for srv.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		log.CrashWindow(from, p.Now())
	})

	cl.Env.Run()

	log.Expected = expected
	for _, v := range log.Check() {
		t.Errorf("violation: %v", v)
	}
	st := c.Stats()
	if st.BypassHits == 0 {
		t.Fatalf("soak never resolved a GET via bypass: %+v", st)
	}
	if st.BypassFallbacks == 0 {
		t.Fatalf("soak never exercised the fallback path: %+v", st)
	}
	t.Logf("bypass soak: hits=%d fastpath=%d fallbacks=%d bootstraps=%d retries=%d",
		st.BypassHits, st.BypassFastPath, st.BypassFallbacks, st.BypassBootstraps, st.Retries)
}
