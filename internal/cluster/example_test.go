package cluster_test

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/sim"
)

// The smallest complete program: one hybrid server, one client, blocking
// API.
func Example() {
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterA(),
		ServerMem: 8 << 20,
	})
	c := cl.Clients[0]
	cl.Env.Spawn("app", func(p *sim.Proc) {
		st := c.Set(p, "answer", 2, "42", 0, 0)
		fmt.Println("set:", st)
		v, _, st := c.Get(p, "answer")
		fmt.Println("get:", v, st)
	})
	cl.Env.Run()
	// Output:
	// set: STORED
	// get: 42 OK
}

// Non-blocking extensions: issue a batch of isets, test, then wait — the
// paper's Listing 2 pattern.
func Example_nonBlocking() {
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterA(),
		ServerMem: 8 << 20,
	})
	c := cl.Clients[0]
	cl.Env.Spawn("app", func(p *sim.Proc) {
		var reqs []*core.Req
		for i := 0; i < 4; i++ {
			req, err := c.ISet(p, fmt.Sprintf("chunk:%d", i), 4096, i, 0, 0)
			if err != nil {
				panic(err)
			}
			reqs = append(reqs, req)
		}
		fmt.Println("first already done before waiting:", c.Test(reqs[0]))
		c.WaitAll(p, reqs) // block-by-block completion guarantee
		done := 0
		for _, r := range reqs {
			if c.Test(r) {
				done++
			}
		}
		fmt.Println("completed:", done)
	})
	cl.Env.Run()
	// Output:
	// first already done before waiting: false
	// completed: 4
}

// The hybrid store retains more data than RAM holds: overflow goes to the
// simulated SSD and every key stays readable.
func Example_hybridRetention() {
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMADef,
		Profile:   cluster.ClusterA(),
		ServerMem: 4 << 20, // 4 MB of slab RAM
	})
	c := cl.Clients[0]
	cl.Env.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 48; i++ { // 12 MB of values
			c.Set(p, fmt.Sprintf("blob:%02d", i), 256<<10, i, 0, 0)
		}
		misses := 0
		for i := 0; i < 48; i++ {
			if v, _, _ := c.Get(p, fmt.Sprintf("blob:%02d", i)); v != i {
				misses++
			}
		}
		fmt.Println("misses:", misses)
	})
	cl.Env.Run()
	st := cl.Servers[0].Store().Stats()
	fmt.Println("ssd items > 0:", st.SSDItems > 0)
	// Output:
	// misses: 0
	// ssd items > 0: true
}
