package cluster

import (
	"fmt"
	"testing"

	"hybridkv/internal/core"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
)

// End-to-end dynamic membership: these drive real client traffic through a
// replicated cluster while servers join, leave, and die, and then check the
// durability promise directly — every acked write is still readable at its
// acked value, no matter how the ring moved underneath it.

const (
	memKeys  = 48
	memValue = 512
)

func memKey(i int) string { return fmt.Sprintf("mem:%04d", i) }

func memCluster(servers int) *Cluster {
	return New(Config{
		Design:            HRDMAOptNonBB,
		Profile:           ClusterA(),
		Servers:           servers,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 2,
	})
}

func memHas(set []int, id int) bool {
	for _, have := range set {
		if have == id {
			return true
		}
	}
	return false
}

// memPreload writes every key through the client so each one carries the
// full R=2 ack; returns false (with errors logged) if any write failed.
func memPreload(t *testing.T, c *core.Client, p *sim.Proc) bool {
	ok := true
	for i := 0; i < memKeys; i++ {
		if st := c.Set(p, memKey(i), memValue, uint64(i+1), 0, 0); st != protocol.StatusStored {
			t.Errorf("preload %q: %v", memKey(i), st)
			ok = false
		}
	}
	return ok
}

// memVerify reads every key back through the client and checks the acked
// value survived.
func memVerify(t *testing.T, c *core.Client, p *sim.Proc, when string) {
	for i := 0; i < memKeys; i++ {
		v, _, st := c.Get(p, memKey(i))
		if st != protocol.StatusOK {
			t.Errorf("%s: get %q: %v", when, memKey(i), st)
			continue
		}
		if seq, _ := v.(uint64); seq != uint64(i+1) {
			t.Errorf("%s: %q observed seq %d, want %d", when, memKey(i), seq, i+1)
		}
	}
}

// A join must migrate the newcomer's key range over while the data stays
// readable, seal every (member, segment) pair exactly once, and leave the
// newcomer physically holding every key it now replicates — with the old
// owners garbage-collected down to their shrunken ranges.
func TestJoinMigratesAndServes(t *testing.T) {
	cl := memCluster(3)
	c := cl.Clients[0]

	cl.Env.Spawn("mem-join", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		srv, done := cl.Join()
		if got := cl.Membership.Epoch(); got != 2 {
			t.Errorf("epoch after join begin: %d, want 2", got)
		}
		if cl.Membership.State(3) != replication.NodeJoining {
			t.Errorf("joiner state %d, want NodeJoining", cl.Membership.State(3))
		}
		cl.AwaitRebalance(p)
		if !done.Fired() {
			t.Error("join finalize event never fired")
		}
		if cl.Membership.Migrating() {
			t.Error("still migrating after AwaitRebalance")
		}
		if cl.Membership.State(3) != replication.NodeActive {
			t.Errorf("joiner state %d after finalize, want NodeActive", cl.Membership.State(3))
		}
		// Let the per-node GC passes (woken by the same finalize) run.
		p.Sleep(5 * sim.Millisecond)

		memVerify(t, c, p, "after join")

		ring := cl.Membership.Ring()
		owned, held := 0, 0
		for i := 0; i < memKeys; i++ {
			key := memKey(i)
			member := memHas(ring.Replicas(key, 2), 3)
			_, _, _, _, ok := srv.Store().ReadItem(p, key)
			if member {
				owned++
				if !ok {
					t.Errorf("joiner owns %q but does not hold it", key)
				}
			} else if ok {
				t.Errorf("joiner holds %q outside its range (GC missed it)", key)
			}
			if ok {
				held++
			}
		}
		if owned == 0 {
			t.Error("join moved zero keys onto the new server — ring did not rebalance")
		}
		// The old owners must have dropped what moved away entirely.
		for sid, s := range cl.Servers[:3] {
			for i := 0; i < memKeys; i++ {
				key := memKey(i)
				if memHas(ring.Replicas(key, 2), sid) {
					continue
				}
				if _, _, _, _, ok := s.Store().ReadItem(p, key); ok {
					t.Errorf("server %d still holds %q after losing it to the joiner", sid, key)
				}
			}
		}
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if want := int64(4 * replication.Segments); total.Get("migrate-seals") != want {
		t.Errorf("migrate-seals = %d, want %d (members × segments)", total.Get("migrate-seals"), want)
	}
	if total.Get("migrate-keys-moved") == 0 {
		t.Error("join migrated zero keys")
	}
	if total.Get("migrate-gc-keys") == 0 {
		t.Error("no key was garbage-collected off an old owner")
	}
}

// A graceful decommission drains the leaver's range to the survivors before
// the node is crashed; every acked write must remain readable afterwards and
// the client's per-server state for the dead node must be released.
func TestDecommissionDrainsWithoutLoss(t *testing.T) {
	cl := memCluster(4)
	c := cl.Clients[0]
	victim := 2

	cl.Env.Spawn("mem-decom", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		cl.Decommission(victim)
		if cl.Membership.State(victim) != replication.NodeLeaving {
			t.Errorf("victim state %d during drain, want NodeLeaving", cl.Membership.State(victim))
		}
		cl.AwaitRebalance(p)
		// The decommission watcher crashes the server and retires the client
		// conns after the same finalize; give it (and the GC passes) room.
		p.Sleep(5 * sim.Millisecond)
		if cl.Membership.State(victim) != replication.NodeDead {
			t.Errorf("victim state %d after finalize, want NodeDead", cl.Membership.State(victim))
		}
		if memHas(cl.Membership.Members(), victim) {
			t.Error("victim still on the current ring after decommission")
		}
		memVerify(t, c, p, "after decommission")
	})
	cl.Env.Run()

	if n := c.Faults.Get("retired-conns"); n == 0 {
		t.Error("decommission never retired the client's conn state")
	}
	total := cl.ReplicationCounters()
	if total.Get("migrate-keys-moved") == 0 {
		t.Error("decommission migrated zero keys")
	}
}

// Killing a migration source mid-join must not wedge the transition or lose
// data: the joiner keeps re-pulling until the node cold-restarts, the other
// replicas cover the overlap, and the rebalance still finalizes with every
// acked write intact.
func TestKillDuringJoinConverges(t *testing.T) {
	cl := memCluster(3)
	c := cl.Clients[0]
	victim := 1

	cl.Env.Spawn("mem-kill", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		_, done := cl.Join()
		s := cl.Servers[victim]
		s.Kill(false) // RAM gone, SSD intact — mid-migration
		p.Sleep(500 * sim.Microsecond)
		s.RestartCold()
		for s.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		cl.AwaitRebalance(p)
		if !done.Fired() {
			t.Error("join finalize event never fired despite the restart")
		}
		p.Sleep(5 * sim.Millisecond)
		memVerify(t, c, p, "after kill-during-join")
	})
	cl.Env.Run()

	total := cl.ReplicationCounters()
	if total.Get("migrate-seals") == 0 {
		t.Error("no segment was ever sealed")
	}
}

// An abrupt leave (node already gone for good) excludes the dead node from
// the pull sources: the survivors re-replicate its range from each other,
// and every acked write stays readable at R=2.
func TestAbruptLeaveReReplicates(t *testing.T) {
	cl := memCluster(4)
	c := cl.Clients[0]
	victim := 1

	cl.Env.Spawn("mem-leave", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		cl.Servers[victim].Kill(true) // gone, SSD wiped — not coming back
		done := cl.Leave(victim)
		cl.AwaitRebalance(p)
		if !done.Fired() {
			t.Error("leave finalize event never fired")
		}
		p.Sleep(5 * sim.Millisecond)
		memVerify(t, c, p, "after abrupt leave")

		// Full durability: every key is on all members of its new replica set.
		ring := cl.Membership.Ring()
		for i := 0; i < memKeys; i++ {
			key := memKey(i)
			for _, sid := range ring.Replicas(key, 2) {
				if _, _, _, _, ok := cl.Servers[sid].Store().ReadItem(p, key); !ok {
					t.Errorf("server %d missing re-replicated copy of %q", sid, key)
				}
			}
		}
	})
	cl.Env.Run()

	if n := c.Faults.Get("retired-conns"); n == 0 {
		t.Error("abrupt leave never retired the client's conn state")
	}
}

// Back-to-back transitions: a join followed by a decommission of an original
// member — the serialized state machine must run both to completion and the
// data survives the double reshuffle.
func TestBackToBackTransitions(t *testing.T) {
	cl := memCluster(3)
	c := cl.Clients[0]

	cl.Env.Spawn("mem-b2b", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		cl.Join()
		cl.AwaitRebalance(p)
		p.Sleep(2 * sim.Millisecond)
		cl.Decommission(0)
		cl.AwaitRebalance(p)
		p.Sleep(5 * sim.Millisecond)
		if got := cl.Membership.Epoch(); got != 3 {
			t.Errorf("epoch after two transitions: %d, want 3", got)
		}
		memVerify(t, c, p, "after join+decommission")
	})
	cl.Env.Run()

	if got := cl.Membership.Transitions; got != 2 {
		t.Errorf("Transitions = %d, want 2", got)
	}
}
