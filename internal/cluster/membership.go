package cluster

import (
	"fmt"

	"hybridkv/internal/replication"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// Dynamic membership operations. All three require a replicated deployment
// (ReplicationFactor > 1): a fleet that cannot re-replicate data has no
// safe way to reshard. Transitions are serialized — begin the next only
// after the previous one's done event fired (AwaitRebalance). The actual
// key movement runs in the background on the replicators' migration
// engines while the cluster keeps serving; see internal/replication.

// Join builds, starts, and wires a new server into the running deployment
// — fabric node, store, replicator joined to the QP mesh, bypass directory
// if configured, and one client connection per client — then begins the
// membership transition that migrates its key range over. Returns the new
// server and the transition's finalize event.
func (cl *Cluster) Join() (*server.Server, *sim.Event) {
	if cl.Membership == nil {
		panic("cluster: Join requires ReplicationFactor > 1")
	}
	id := len(cl.Servers)
	srv := cl.buildServer(id)
	srv.Start()
	cl.Servers = append(cl.Servers, srv)
	repl := replication.New(cl.Env, replication.Config{ID: id, Factor: cl.repFactor, Pacer: cl.cfg.Pacer},
		cl.Membership.Ring(), srv.Store(), srv.Device())
	repl.SetMembership(cl.Membership)
	srv.Attach(server.Extensions{Replicator: repl})
	replication.Join(cl.Replicators, repl)
	cl.Replicators = append(cl.Replicators, repl)
	if cl.cfg.Bypass {
		cl.attachDirectory(srv)
	}
	// Clients connect before the ring changes so the first request routed
	// to the newcomer finds a live connection (conn index == server id).
	for _, c := range cl.Clients {
		c.ConnectRDMA(srv)
	}
	done := cl.Membership.BeginJoin(id)
	return srv, done
}

// Decommission begins a graceful leave: the server drops off the current
// ring but keeps serving as a migration source until every segment of its
// range is re-owned, then is crashed and its client-side state (breakers,
// location caches, hot-set entries) released. Returns the transition's
// finalize event.
func (cl *Cluster) Decommission(id int) *sim.Event {
	if cl.Membership == nil {
		panic("cluster: Decommission requires ReplicationFactor > 1")
	}
	done := cl.Membership.BeginLeave(id, true)
	cl.Env.Spawn(fmt.Sprintf("decommission%d", id), func(p *sim.Proc) {
		p.Wait(done)
		cl.Servers[id].Crash()
		for _, c := range cl.Clients {
			c.Retire(id)
		}
	})
	return done
}

// Leave begins an abrupt leave for a server that is already gone (killed
// and not coming back): it is excluded from the migration's pull sources,
// so the survivors re-replicate its range from the remaining replicas.
// Client state for the node is released immediately. Returns the
// transition's finalize event.
func (cl *Cluster) Leave(id int) *sim.Event {
	if cl.Membership == nil {
		panic("cluster: Leave requires ReplicationFactor > 1")
	}
	done := cl.Membership.BeginLeave(id, false)
	for _, c := range cl.Clients {
		c.Retire(id)
	}
	return done
}

// AwaitRebalance blocks until the in-flight membership transition (if any)
// finalizes.
func (cl *Cluster) AwaitRebalance(p *sim.Proc) {
	if cl.Membership == nil || !cl.Membership.Migrating() {
		return
	}
	p.Wait(cl.Membership.DoneOf(cl.Membership.Epoch()))
}
