package cluster

import (
	"fmt"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
)

// TestKillDuringJoinConvergesWithPacing re-runs the nastiest membership
// lifecycle — a migration source killed and cold-restarted mid-join — with
// the background-traffic pacer throttling the anti-entropy and migration
// pulls, while a foreground writer keeps publishing. The pacer must only
// ever defer background work, never wedge it: the rebalance still
// finalizes, every acked write (preloaded and foreground) stays readable,
// and the foreground writer keeps its goodput floor.
func TestKillDuringJoinConvergesWithPacing(t *testing.T) {
	cl := New(Config{
		Design:            HRDMAOptNonBB,
		Profile:           ClusterA(),
		Servers:           3,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 2,
		Pacer:             replication.PacerConfig{Enabled: true},
	})
	c := cl.Clients[0]
	victim := 1
	const fgWrites = 64

	fgAcked := 0
	cl.Env.Spawn("mem-kill-paced", func(p *sim.Proc) {
		if !memPreload(t, c, p) {
			return
		}
		_, done := cl.Join()

		// Foreground load concurrent with the paced migration: this is the
		// traffic the pacer exists to protect.
		writer := cl.Env.NewEvent()
		cl.Env.Spawn("fg-writer", func(wp *sim.Proc) {
			defer writer.Fire()
			for i := 0; i < fgWrites; i++ {
				if st := c.Set(wp, fmt.Sprintf("fg:%03d", i), memValue, uint64(i), 0, 0); st == protocol.StatusStored {
					fgAcked++
				}
				wp.Sleep(50 * sim.Microsecond)
			}
		})

		s := cl.Servers[victim]
		s.Kill(false)
		p.Sleep(500 * sim.Microsecond)
		s.RestartCold()
		for s.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		cl.AwaitRebalance(p)
		if !done.Fired() {
			t.Error("paced join finalize event never fired despite the restart")
		}
		p.Wait(writer)
		p.Sleep(5 * sim.Millisecond)
		memVerify(t, c, p, "after paced kill-during-join")
		for i := 0; i < fgWrites; i++ {
			key := fmt.Sprintf("fg:%03d", i)
			if _, _, st := c.Get(p, key); st != protocol.StatusOK {
				t.Errorf("foreground key %q unreadable after rebalance: %v", key, st)
			}
		}
	})
	cl.Env.Run()

	// Goodput floor: pacing slows the background, not the foreground.
	if fgAcked != fgWrites {
		t.Errorf("foreground writer acked %d/%d writes under paced migration", fgAcked, fgWrites)
	}
	total := cl.ReplicationCounters()
	if total.Get("migrate-seals") == 0 {
		t.Error("no segment was ever sealed with the pacer enabled")
	}
	if total.Get("migrate-keys-moved") == 0 {
		t.Error("paced join migrated zero keys")
	}
}
