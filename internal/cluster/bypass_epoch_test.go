package cluster

import (
	"testing"

	"hybridkv/internal/core"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// A bypass client's per-server location cache and hot set are placement
// state: both are derived from a ring epoch, and a membership transition
// makes them wrong — the cached value-segment location may now belong to a
// server that no longer owns the key. On an epoch bump the client must drop
// every cached location and hot digest (metrics: epoch-invalidations) and a
// later forced-bypass GET must re-resolve and still produce the genuine
// value, never a stale fast-path hit routed by the dead ring.
func TestBypassEpochChangeInvalidatesPlacement(t *testing.T) {
	cl := New(Config{
		Design:            HRDMAOptNonBB,
		Profile:           ClusterA(),
		Servers:           3,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 2,
		Bypass:            true,
		HotFanout:         true,
	})
	c := cl.Clients[0]
	const victim = "epoch:victim"

	// Phase 1: store the victim and resolve it twice via forced bypass; the
	// second GET must ride the per-key location cache.
	cl.Env.Spawn("phase1", func(p *sim.Proc) {
		if st := c.Set(p, victim, 4096, "genuine", 0, 0); st != protocol.StatusStored {
			t.Errorf("victim set: %v", st)
		}
		for pass := 0; pass < 2; pass++ {
			req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: victim},
				core.WithReadPath(core.ReadBypass))
			if err != nil {
				t.Errorf("pass %d issue: %v", pass, err)
				return
			}
			c.Wait(p, req)
			if !req.Bypassed() || req.Status != protocol.StatusOK || req.Value != "genuine" {
				t.Errorf("pass %d: bypassed=%v status=%v value=%v",
					pass, req.Bypassed(), req.Status, req.Value)
			}
		}
	})
	cl.Env.Run()
	if st := c.Stats(); st.BypassFastPath == 0 {
		t.Fatalf("location cache never engaged: %+v", st)
	}
	if n := c.Faults.Get("epoch-invalidations"); n != 0 {
		t.Fatalf("placement invalidated before any transition: %d", n)
	}

	// Phase 2: a join bumps the membership epoch. The subscription fires
	// synchronously: every conn's location cache and hot set are dropped.
	cl.Env.Spawn("phase2", func(p *sim.Proc) {
		_, done := cl.Join()
		p.Wait(done)
		p.Sleep(5 * sim.Millisecond)
	})
	cl.Env.Run()
	if n := c.Faults.Get("epoch-invalidations"); n == 0 {
		t.Fatal("epoch bump never invalidated client placement state")
	}

	// Phase 3: the victim is still served with the genuine value under the
	// new ring — either a fresh bypass resolve or an RPC fallback, but never
	// a stale cached location.
	cl.Env.Spawn("phase3", func(p *sim.Proc) {
		req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: victim},
			core.WithReadPath(core.ReadBypass))
		if err != nil {
			t.Errorf("post-join issue: %v", err)
			return
		}
		c.Wait(p, req)
		if req.Status != protocol.StatusOK || req.Value != "genuine" {
			t.Errorf("post-join GET status=%v value=%v", req.Status, req.Value)
		}
	})
	cl.Env.Run()
}

// Decommissioning a server must release every piece of per-server client
// state — breaker, location cache, directory, hot set — and the retired
// conn must refuse routing (allows() false) so no future op is pinned to a
// dead node. Observable from outside: the retired-conns counter fires, and
// every key the dead node used to serve still round-trips.
func TestDecommissionReleasesClientState(t *testing.T) {
	cl := New(Config{
		Design:            HRDMAOptNonBB,
		Profile:           ClusterA(),
		Servers:           3,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 2,
		Bypass:            true,
	})
	c := cl.Clients[0]
	const keys = 24

	cl.Env.Spawn("retire", func(p *sim.Proc) {
		for i := 0; i < keys; i++ {
			key := memKey(i)
			if st := c.Set(p, key, 2048, uint64(i+1), 0, 0); st != protocol.StatusStored {
				t.Errorf("set %q: %v", key, st)
			}
			// Resolve each key once through bypass so the conn-level caches
			// hold state for every server, including the future victim.
			req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key},
				core.WithReadPath(core.ReadAuto))
			if err != nil {
				t.Errorf("get %q issue: %v", key, err)
				return
			}
			c.Wait(p, req)
		}
		done := cl.Decommission(1)
		p.Wait(done)
		p.Sleep(5 * sim.Millisecond)
		for i := 0; i < keys; i++ {
			v, _, st := c.Get(p, memKey(i))
			if st != protocol.StatusOK {
				t.Errorf("get %q after decommission: %v", memKey(i), st)
				continue
			}
			if seq, _ := v.(uint64); seq != uint64(i+1) {
				t.Errorf("get %q observed seq %d, want %d", memKey(i), seq, i+1)
			}
		}
	})
	cl.Env.Run()

	if n := c.Faults.Get("retired-conns"); n == 0 {
		t.Fatal("decommission never retired the victim's conn state")
	}
	if n := c.Faults.Get("epoch-invalidations"); n == 0 {
		t.Fatal("decommission's epoch bump never invalidated placement state")
	}
}
