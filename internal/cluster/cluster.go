// Package cluster assembles complete simulated deployments: a fabric, N
// Memcached servers, M clients, and a backend database, configured as one
// of the six designs the paper evaluates (Table I / Section VI-B) on one of
// the two testbeds (SDSC Comet with SATA SSDs, OSU NowLab with NVMe SSDs).
package cluster

import (
	"fmt"

	"hybridkv/internal/backend"
	"hybridkv/internal/blockdev"
	"hybridkv/internal/core"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/replication"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/slab"
	"hybridkv/internal/store"
)

// Design identifies one end-to-end configuration from the paper.
type Design int

const (
	// IPoIBMem is default Memcached + libmemcached over IP-over-IB.
	IPoIBMem Design = iota
	// RDMAMem is in-memory RDMA-based Memcached (Jose et al. [10]).
	RDMAMem
	// HRDMADef is the existing SSD-assisted hybrid design with direct I/O
	// and a synchronous server (Ouyang et al. [17]).
	HRDMADef
	// HRDMAOptBlock adds this paper's adaptive slab I/O, blocking APIs.
	HRDMAOptBlock
	// HRDMAOptNonBB adds the async server and bset/bget
	// (buffer-reuse-guaranteed non-blocking extensions).
	HRDMAOptNonBB
	// HRDMAOptNonBI uses iset/iget (purely non-blocking extensions).
	HRDMAOptNonBI
)

// Designs lists every design in presentation order.
var Designs = []Design{IPoIBMem, RDMAMem, HRDMADef, HRDMAOptBlock, HRDMAOptNonBB, HRDMAOptNonBI}

func (d Design) String() string {
	switch d {
	case IPoIBMem:
		return "IPoIB-Mem"
	case RDMAMem:
		return "RDMA-Mem"
	case HRDMADef:
		return "H-RDMA-Def"
	case HRDMAOptBlock:
		return "H-RDMA-Opt-Block"
	case HRDMAOptNonBB:
		return "H-RDMA-Opt-NonB-b"
	case HRDMAOptNonBI:
		return "H-RDMA-Opt-NonB-i"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Transport returns the design's network stack.
func (d Design) Transport() core.Transport {
	if d == IPoIBMem {
		return core.IPoIB
	}
	return core.RDMA
}

// Hybrid reports whether the design attaches SSDs.
func (d Design) Hybrid() bool {
	return d == HRDMADef || d == HRDMAOptBlock || d == HRDMAOptNonBB || d == HRDMAOptNonBI
}

// Policy returns the design's slab I/O policy.
func (d Design) Policy() hybridslab.IOPolicy {
	if d == HRDMADef {
		return hybridslab.PolicyDirect
	}
	return hybridslab.PolicyAdaptive
}

// Pipeline returns the design's server pipeline.
func (d Design) Pipeline() server.Pipeline {
	if d == HRDMAOptNonBB || d == HRDMAOptNonBI {
		return server.Async
	}
	return server.Sync
}

// NonBlocking reports whether the design's client uses the non-blocking
// API extensions.
func (d Design) NonBlocking() bool {
	return d == HRDMAOptNonBB || d == HRDMAOptNonBI
}

// BufferGuarantee reports whether the design's non-blocking variant
// guarantees buffer reuse on return (bset/bget vs iset/iget).
func (d Design) BufferGuarantee() bool { return d == HRDMAOptNonBB }

// Profile describes one testbed's hardware.
type Profile struct {
	Name      string
	SSD       blockdev.Profile
	PageCache pagecache.Params
}

// ClusterA models SDSC Comet: FDR InfiniBand + local SATA SSDs.
func ClusterA() Profile {
	return Profile{Name: "Cluster-A(SDSC-Comet,SATA)", SSD: blockdev.SATA(), PageCache: pagecache.DefaultParams()}
}

// ClusterB models OSU NowLab: FDR InfiniBand + Intel P3700 NVMe SSDs.
func ClusterB() Profile {
	return Profile{Name: "Cluster-B(OSU-NowLab,NVMe)", SSD: blockdev.NVMe(), PageCache: pagecache.DefaultParams()}
}

// Config sizes one deployment.
type Config struct {
	Design  Design
	Profile Profile
	// Servers and Clients are node counts (default 1 and 1).
	Servers int
	Clients int
	// ServerMem is the slab memory budget per server (the -m flag).
	ServerMem int64
	// SSDCapacity bounds hybrid overflow per server (0 = 16 GB arena).
	SSDCapacity int64
	// BackendPenalty overrides the miss penalty (0 = paper default).
	BackendPenalty sim.Time
	// StorageWorkers / BufferBytes tune the async server (0 = defaults).
	StorageWorkers int
	BufferBytes    int
	// AdaptiveCutoff overrides the mmap/cached class boundary.
	AdaptiveCutoff int
	// SlabPageSize overrides the slab page size (0 = 1 MB). Smaller pages
	// give finer eviction granularity — more, smaller SSD flushes.
	SlabPageSize int
	// AsyncFlush enables write-behind eviction (paper future work).
	AsyncFlush bool
	// Overload configures bounded admission with load shedding on async
	// servers (zero value: blocking reservation, exactly as before).
	Overload server.OverloadConfig
	// Client seeds every client's core.Config (timeout/retry knobs for
	// degraded-mode runs); its Transport is forced to the design's.
	Client core.Config
	// ReplicationFactor R maps each key to a primary plus R-1 backups on
	// the shared ketama ring: servers forward admitted writes along the
	// chain before acking, clients route gets to any live replica, and a
	// background anti-entropy scrubber reconciles divergence. 0 or 1
	// leaves the deployment entirely unreplicated (no replicators are
	// even attached, so runs are virtual-time-identical to pre-replication
	// builds). Requires an RDMA design; clamped to the server count.
	ReplicationFactor int
	// Bypass attaches a published read directory to every server and
	// enables the clients' server-bypass GET path (one-sided RDMA READs;
	// see core.WithReadPath). Requires an RDMA design. False leaves every
	// deployment virtual-time-identical to pre-bypass builds.
	Bypass bool
	// BypassBuckets overrides the directory bucket count (0 = 32768).
	BypassBuckets int
	// HotFanout enables hot-key replicated-read fan-out on every client:
	// GETs for server-detected hot keys round-robin across the key's
	// replica set instead of pinning to the primary. Needs Bypass (the hot
	// set rides the directory bootstrap) and ReplicationFactor > 1 to have
	// any effect.
	HotFanout bool
	// Pacer throttles background replication traffic (anti-entropy scrub
	// and migration pulls) behind a token bucket that yields to each
	// server's foreground load. Zero value: background rounds run exactly
	// as before. Only meaningful with ReplicationFactor > 1.
	Pacer replication.PacerConfig
	// NoVerify disables on-SSD integrity verification on every server
	// (hybridslab.Config.NoVerify) — the "nodefense" baseline of the bitrot
	// experiment. Production configs leave it false: verification is on.
	NoVerify bool
	// ScrubInterval overrides the replication scrubber cadence; negative
	// disables the scrubber entirely (the "verify-only" bitrot cell), zero
	// keeps the replication default.
	ScrubInterval sim.Time
}

// Cluster is one assembled deployment.
type Cluster struct {
	Env     *sim.Env
	Fabric  *simnet.Fabric
	Servers []*server.Server
	Clients []*core.Client
	Backend *backend.DB
	Design  Design
	Profile Profile
	Devices []*blockdev.Device
	Caches  []*pagecache.Cache
	// Replicators holds one replication engine per server when
	// ReplicationFactor > 1 (nil otherwise).
	Replicators []*replication.Replicator
	// Directories holds one published read directory per server when
	// Config.Bypass is set (nil otherwise).
	Directories []*store.Directory
	// Membership is the shared epoch-versioned membership state machine
	// behind Join/Leave/Decommission (nil when ReplicationFactor <= 1: a
	// fleet that cannot re-replicate data has no safe way to reshard).
	Membership *replication.Membership

	// Construction parameters retained so Join can build late servers
	// identically to the originals.
	cfg       Config
	repFactor int
	pcPar     pagecache.Params
}

// New builds and starts a deployment.
func New(cfg Config) *Cluster {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ServerMem <= 0 {
		cfg.ServerMem = 1 << 30
	}
	env := sim.NewEnv()
	spec := simnet.FDRInfiniBand()
	if cfg.Design.Transport() == core.IPoIB {
		spec = simnet.IPoIB()
	}
	fab := simnet.New(env, spec)
	cl := &Cluster{
		Env:     env,
		Fabric:  fab,
		Design:  cfg.Design,
		Profile: cfg.Profile,
		Backend: backend.New(env, backend.Config{Penalty: cfg.BackendPenalty}),
	}
	// The page-cache budget scales with the server's slab memory (the
	// testbed nodes had 64-128 GB of RAM, so the cache was never the
	// scarce resource): half the slab budget, watermarks proportional.
	// At the default scaled geometry this equals DefaultParams exactly.
	pcPar := cfg.Profile.PageCache
	if pages := int(cfg.ServerMem / 2 / int64(pcPar.PageSize)); pages > pcPar.MaxPages {
		pcPar.MaxPages = pages
		pcPar.DirtyHighPages = pages / 4
		pcPar.ThrottlePages = pages / 2
	}
	cl.cfg = cfg
	cl.pcPar = pcPar
	for i := 0; i < cfg.Servers; i++ {
		srv := cl.buildServer(i)
		srv.Start()
		cl.Servers = append(cl.Servers, srv)
	}
	repFactor := cfg.ReplicationFactor
	if repFactor > cfg.Servers {
		repFactor = cfg.Servers
	}
	cl.repFactor = repFactor
	if repFactor > 1 {
		if cfg.Design.Transport() != core.RDMA {
			panic("cluster: ReplicationFactor > 1 requires an RDMA design")
		}
		ids := make([]int, len(cl.Servers))
		for i := range ids {
			ids[i] = i
		}
		cl.Membership = replication.NewMembership(env, repFactor, ids)
		for i, srv := range cl.Servers {
			repl := replication.New(env, replication.Config{
				ID: i, Factor: repFactor, Pacer: cfg.Pacer,
				ScrubInterval: cfg.ScrubInterval,
			}, cl.Membership.Ring(), srv.Store(), srv.Device())
			repl.SetMembership(cl.Membership)
			srv.Attach(server.Extensions{Replicator: repl})
			cl.Replicators = append(cl.Replicators, repl)
		}
		replication.Interconnect(cl.Replicators)
	}
	if cfg.Bypass {
		if cfg.Design.Transport() != core.RDMA {
			panic("cluster: Bypass requires an RDMA design")
		}
		for _, srv := range cl.Servers {
			cl.attachDirectory(srv)
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		node := fab.AddNode(fmt.Sprintf("client%d", i))
		ccfg := cfg.Client
		ccfg.Transport = cfg.Design.Transport()
		if repFactor > 1 {
			ccfg.Replicas = repFactor
			ccfg.Membership = cl.Membership
		}
		ccfg.Bypass = cfg.Bypass
		ccfg.HotFanout = cfg.HotFanout
		c := core.New(env, node, ccfg)
		for _, srv := range cl.Servers {
			if cfg.Design.Transport() == core.RDMA {
				c.ConnectRDMA(srv)
			} else {
				c.ConnectIPoIB(srv)
			}
		}
		// Integrity counters live server-side; every client's Stats sums
		// the fleet's at snapshot time (servers may join after the client).
		c.SetIntegrityStats(cl.IntegrityStats)
		cl.Clients = append(cl.Clients, c)
	}
	return cl
}

// IntegrityStats sums the fleet's data-integrity counters: scrub-detected
// content divergences, repairs applied, and SSD pages quarantined by failed
// read verification. Wired into every client's Stats snapshot.
func (cl *Cluster) IntegrityStats() (found, repaired, quarantined int64) {
	for _, r := range cl.Replicators {
		found += r.Counters.Get(string(metrics.CScrubCorruptionsFound))
		repaired += r.Counters.Get(string(metrics.CScrubCorruptionsRepaired))
	}
	for _, s := range cl.Servers {
		quarantined += s.Store().Manager().QuarantinedPages
	}
	return found, repaired, quarantined
}

// buildServer assembles one server node (SSD, page cache, hybrid slab,
// store, server) exactly as New does for the initial fleet; Join reuses it
// for late arrivals. The caller starts the server and appends it to
// cl.Servers.
func (cl *Cluster) buildServer(i int) *server.Server {
	cfg, env := cl.cfg, cl.Env
	node := cl.Fabric.AddNode(fmt.Sprintf("server%d", i))
	var file *pagecache.File
	if cfg.Design.Hybrid() {
		arena := cfg.SSDCapacity
		if arena <= 0 {
			arena = 16 << 30
		}
		dev := blockdev.New(env, cfg.Profile.SSD, 2*arena)
		cache := pagecache.New(env, dev, cl.pcPar)
		file = cache.OpenFile(0, 2*arena)
		cl.Devices = append(cl.Devices, dev)
		cl.Caches = append(cl.Caches, cache)
	}
	mgr := hybridslab.New(env, hybridslab.Config{
		Slab:           slab.Config{MemLimit: cfg.ServerMem, PageSize: cfg.SlabPageSize},
		Policy:         cfg.Design.Policy(),
		AdaptiveCutoff: cfg.AdaptiveCutoff,
		SSDCapacity:    cfg.SSDCapacity,
		AsyncFlush:     cfg.AsyncFlush,
		NoVerify:       cfg.NoVerify,
	}, file)
	st := store.New(env, mgr)
	scfg := server.Config{
		Pipeline:       cfg.Design.Pipeline(),
		StorageWorkers: cfg.StorageWorkers,
		BufferBytes:    cfg.BufferBytes,
		Overload:       cfg.Overload,
	}
	if cfg.Design.Transport() == core.RDMA {
		return server.NewRDMA(env, node, st, scfg)
	}
	return server.NewIPoIB(env, node, st, scfg)
}

// attachDirectory publishes a bypass read directory on srv.
func (cl *Cluster) attachDirectory(srv *server.Server) {
	d := store.NewDirectory(srv.Device().AllocPD(), cl.cfg.BypassBuckets)
	srv.Attach(server.Extensions{BypassDirectory: d})
	cl.Directories = append(cl.Directories, d)
}

// Preload stores n keys of valueSize bytes through client 0 using blocking
// sets (Sequential order), lets background writeback settle, and returns
// the virtual time consumed. The caller's measurement starts after this.
func (cl *Cluster) Preload(n, valueSize int, keyOf func(int) string) sim.Time {
	start := cl.Env.Now()
	cl.Env.Spawn("preload", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			cl.Clients[0].Set(p, keyOf(i), valueSize, fmt.Sprintf("v%d", i), 0, 0)
		}
	})
	cl.Env.Run()
	cl.SettleIO()
	return cl.Env.Now() - start
}

// SettleIO runs the simulation until the page caches have written back the
// bulk of their dirty pages, so measurements start from a steady state
// rather than competing with the preload's writeback backlog.
func (cl *Cluster) SettleIO() {
	if len(cl.Caches) == 0 {
		return
	}
	cl.Env.Spawn("settle", func(p *sim.Proc) {
		for {
			settled := true
			for _, c := range cl.Caches {
				// The flusher daemon drains to half the high watermark
				// and then idles; that is the steady state. Kick it in
				// case dirty sits below the kick watermark but above it.
				if c.Dirty() > c.Params().DirtyHighPages/2 {
					c.Kick()
					settled = false
				}
			}
			if settled {
				return
			}
			p.Sleep(5 * sim.Millisecond)
		}
	})
	cl.Env.Run()
}

// ReplicationCounters merges every replicator's counters (repair-pushes,
// repair-pulls, epoch-conflicts, stale-reads-prevented, ...) into one set;
// nil-safe when the deployment is unreplicated.
func (cl *Cluster) ReplicationCounters() *metrics.Counters {
	c := metrics.NewCounters()
	for _, r := range cl.Replicators {
		c.Merge(r.Counters)
	}
	return c
}

// TotalSetOps sums Set operations across servers.
func (cl *Cluster) TotalSetOps() int64 {
	var n int64
	for _, s := range cl.Servers {
		n += s.Store().SetOps
	}
	return n
}

// TotalGetOps sums Get operations across servers.
func (cl *Cluster) TotalGetOps() int64 {
	var n int64
	for _, s := range cl.Servers {
		n += s.Store().GetOps
	}
	return n
}
