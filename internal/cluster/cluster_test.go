package cluster

import (
	"fmt"
	"testing"

	"hybridkv/internal/core"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

func TestDesignMatrix(t *testing.T) {
	cases := []struct {
		d         Design
		transport core.Transport
		hybrid    bool
		policy    hybridslab.IOPolicy
		pipeline  server.Pipeline
		nonblock  bool
	}{
		{IPoIBMem, core.IPoIB, false, hybridslab.PolicyAdaptive, server.Sync, false},
		{RDMAMem, core.RDMA, false, hybridslab.PolicyAdaptive, server.Sync, false},
		{HRDMADef, core.RDMA, true, hybridslab.PolicyDirect, server.Sync, false},
		{HRDMAOptBlock, core.RDMA, true, hybridslab.PolicyAdaptive, server.Sync, false},
		{HRDMAOptNonBB, core.RDMA, true, hybridslab.PolicyAdaptive, server.Async, true},
		{HRDMAOptNonBI, core.RDMA, true, hybridslab.PolicyAdaptive, server.Async, true},
	}
	for _, c := range cases {
		if c.d.Transport() != c.transport || c.d.Hybrid() != c.hybrid ||
			c.d.Pipeline() != c.pipeline || c.d.NonBlocking() != c.nonblock {
			t.Errorf("%v: matrix mismatch", c.d)
		}
		if c.hybrid && c.d.Policy() != c.policy {
			t.Errorf("%v: policy %v, want %v", c.d, c.d.Policy(), c.policy)
		}
	}
	if !HRDMAOptNonBB.BufferGuarantee() || HRDMAOptNonBI.BufferGuarantee() {
		t.Errorf("buffer guarantee flags wrong")
	}
	if len(Designs) != 6 {
		t.Errorf("Designs has %d entries", len(Designs))
	}
}

func TestEachDesignServesTraffic(t *testing.T) {
	for _, d := range Designs {
		cl := New(Config{Design: d, Profile: ClusterA(), ServerMem: 64 << 20})
		var setSt, getSt protocol.Status
		var v any
		cl.Env.Spawn("smoke", func(p *sim.Proc) {
			setSt = cl.Clients[0].Set(p, "hello", 32*1024, "world", 0, 0)
			v, _, getSt = cl.Clients[0].Get(p, "hello")
		})
		cl.Env.Run()
		if setSt != protocol.StatusStored || getSt != protocol.StatusOK || v != "world" {
			t.Errorf("%v: set=%v get=%v v=%v", d, setSt, getSt, v)
		}
	}
}

func TestPreloadPlacesData(t *testing.T) {
	cl := New(Config{
		Design: HRDMADef, Profile: ClusterA(),
		ServerMem: 16 << 20, // 16 MB RAM
	})
	elapsed := cl.Preload(1500, 32*1024, func(i int) string { return fmt.Sprintf("obj:%010d", i) }) // ~47 MB
	if elapsed <= 0 {
		t.Errorf("preload consumed no time")
	}
	if got := cl.TotalSetOps(); got != 1500 {
		t.Errorf("server saw %d sets", got)
	}
	mgr := cl.Servers[0].Store().Manager()
	if mgr.SSDItems() == 0 {
		t.Errorf("no items overflowed to SSD after 3x overcommit")
	}
	if mgr.RAMItems()+mgr.SSDItems() != 1500 {
		t.Errorf("RAM %d + SSD %d != 1500", mgr.RAMItems(), mgr.SSDItems())
	}
}

func TestMultiNodeDeployment(t *testing.T) {
	cl := New(Config{
		Design: HRDMAOptNonBI, Profile: ClusterB(),
		Servers: 4, Clients: 8, ServerMem: 32 << 20,
	})
	if len(cl.Servers) != 4 || len(cl.Clients) != 8 {
		t.Fatalf("built %d servers / %d clients", len(cl.Servers), len(cl.Clients))
	}
	done := 0
	for i, c := range cl.Clients {
		cl.Env.Spawn(fmt.Sprintf("load%d", i), func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				key := fmt.Sprintf("c%d-k%d", i, j)
				c.Set(p, key, 8192, j, 0, 0)
				if v, _, st := c.Get(p, key); st == protocol.StatusOK && v == j {
					done++
				}
			}
		})
	}
	cl.Env.Run()
	if done != 8*50 {
		t.Errorf("%d of 400 round trips verified", done)
	}
	if cl.TotalSetOps() != 400 {
		t.Errorf("servers saw %d sets", cl.TotalSetOps())
	}
}

func TestProfilesDiffer(t *testing.T) {
	a, b := ClusterA(), ClusterB()
	if a.SSD.Name == b.SSD.Name {
		t.Errorf("profiles share SSD model")
	}
	if a.SSD.ReadBase <= b.SSD.ReadBase {
		t.Errorf("SATA read base not slower than NVMe")
	}
}

func TestBackendDefaultPenalty(t *testing.T) {
	cl := New(Config{Design: RDMAMem, Profile: ClusterA()})
	var d sim.Time
	cl.Env.Spawn("miss", func(p *sim.Proc) {
		t0 := p.Now()
		cl.Backend.Fetch(p, "missing")
		d = p.Now() - t0
	})
	cl.Env.Run()
	if d < 1500*sim.Microsecond || d > 2*sim.Millisecond {
		t.Errorf("backend penalty %v, want <2ms and ≈1.8ms", d)
	}
}

func TestDesignStrings(t *testing.T) {
	want := map[Design]string{
		IPoIBMem:      "IPoIB-Mem",
		RDMAMem:       "RDMA-Mem",
		HRDMADef:      "H-RDMA-Def",
		HRDMAOptBlock: "H-RDMA-Opt-Block",
		HRDMAOptNonBB: "H-RDMA-Opt-NonB-b",
		HRDMAOptNonBI: "H-RDMA-Opt-NonB-i",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d stringifies to %q, want %q", int(d), d.String(), s)
		}
	}
}
