package cluster

import (
	"fmt"
	"testing"

	"hybridkv/internal/core"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// A bypass client caches a key's value-segment location after resolving it
// once (the single-READ fast path). When slab pressure then evicts that key
// to SSD — EvictStaged republishes the slot mid-flush, EvictLanded lands it
// SSD-resident — the cached RAM location is dead: a later forced-bypass GET
// must detect that via digest/version validation and fall back to RPC with
// the genuine value, never serve a stale RAM hit. The test observes the
// eviction lifecycle directly by wrapping the slab manager's notify hook
// around the directory's own observer.
func TestBypassEvictionInvalidatesLocationCache(t *testing.T) {
	cl := New(Config{
		Design: HRDMAOptNonBI, Profile: ClusterA(),
		ServerMem:    2 << 20,
		SlabPageSize: 256 << 10,
		Bypass:       true,
	})
	c := cl.Clients[0]
	srv := cl.Servers[0]
	const (
		valSize = 128 << 10
		victim  = "celeb:0"
	)

	// Record the victim's eviction lifecycle while forwarding every event to
	// the directory (the store's installed observer), so publication behaves
	// exactly as in production.
	dir := srv.BypassDirectory()
	staged, landed := 0, 0
	srv.Store().Manager().SetNotify(func(it *hybridslab.Item, ev hybridslab.NotifyEvent) {
		if it.Key == victim {
			switch ev {
			case hybridslab.EvictStaged:
				staged++
			case hybridslab.EvictLanded:
				landed++
			}
		}
		dir.EvictionUpdate(it, ev)
	})

	// Phase 1: the victim lands in RAM; two forced-bypass GETs resolve it
	// and populate the per-key location cache (the second is the fast path).
	cl.Env.Spawn("phase1", func(p *sim.Proc) {
		if st := c.Set(p, victim, valSize, "genuine", 0, 0); st != protocol.StatusStored {
			t.Errorf("victim set: %v", st)
		}
		for pass := 0; pass < 2; pass++ {
			req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: victim},
				core.WithReadPath(core.ReadBypass))
			if err != nil {
				t.Errorf("pass %d issue: %v", pass, err)
				return
			}
			c.Wait(p, req)
			if !req.Bypassed() || req.Status != protocol.StatusOK || req.Value != "genuine" {
				t.Errorf("pass %d: bypassed=%v status=%v value=%v",
					pass, req.Bypassed(), req.Status, req.Value)
			}
		}
	})
	cl.Env.Run()
	if st := c.Stats(); st.BypassFastPath == 0 {
		t.Fatalf("location cache never engaged: %+v", st)
	}

	// Phase 2: filler writes overrun the 2 MB RAM budget; the victim is the
	// coldest item and evicts first (EvictStaged, then EvictLanded once the
	// flush completes), republishing its slot SSD-resident.
	cl.Env.Spawn("filler", func(p *sim.Proc) {
		for i := 0; i < 48; i++ {
			c.Set(p, fmt.Sprintf("fill:%04d", i), valSize, i, 0, 0)
		}
	})
	cl.Env.Run()
	cl.SettleIO()
	if staged == 0 || landed == 0 {
		t.Fatalf("victim eviction lifecycle not observed: staged=%d landed=%d", staged, landed)
	}

	// Phase 3: the cached location now points at dead (or reused) RAM. The
	// forced-bypass GET must refuse the one-sided result and come back via
	// RPC with the genuine value.
	fallbacks := c.Stats().BypassFallbacks
	cl.Env.Spawn("phase3", func(p *sim.Proc) {
		req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: victim},
			core.WithReadPath(core.ReadBypass))
		if err != nil {
			t.Errorf("post-eviction issue: %v", err)
			return
		}
		c.Wait(p, req)
		if req.Bypassed() {
			t.Errorf("post-eviction GET served via bypass: stale RAM hit")
		}
		if req.Status != protocol.StatusOK || req.Value != "genuine" {
			t.Errorf("post-eviction GET status=%v value=%v", req.Status, req.Value)
		}
	})
	cl.Env.Run()
	if got := c.Stats().BypassFallbacks; got <= fallbacks {
		t.Fatalf("eviction did not force an RPC fallback: %d -> %d", fallbacks, got)
	}
}
