package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/sim"
)

func TestCrawlerReclaimsExpiredItems(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			s.Set(p, fmt.Sprintf("ttl%02d", i), 1024, i, 0, 1) // 1s TTL
		}
		for i := 0; i < 50; i++ {
			s.Set(p, fmt.Sprintf("forever%02d", i), 1024, i, 0, 0)
		}
	})
	s.StartCrawler(500*sim.Millisecond, 1000)
	env.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(3 * sim.Second)
		s.StopCrawler()
	})
	env.Run()
	if s.CrawlerReclaimed != 50 {
		t.Errorf("crawler reclaimed %d items, want 50", s.CrawlerReclaimed)
	}
	if s.Len() != 50 {
		t.Errorf("%d keys remain, want the 50 unexpiring ones", s.Len())
	}
	// Memory actually returned, not just table entries.
	if got := s.Manager().RAMItems(); got != 50 {
		t.Errorf("%d RAM items remain, want 50", got)
	}
}

func TestCrawlerLeavesFreshItemsAlone(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			s.Set(p, fmt.Sprintf("k%02d", i), 1024, i, 0, 3600)
		}
	})
	s.StartCrawler(100*sim.Millisecond, 1000)
	env.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		s.StopCrawler()
	})
	env.Run()
	if s.CrawlerReclaimed != 0 {
		t.Errorf("crawler reclaimed %d fresh items", s.CrawlerReclaimed)
	}
	if s.Len() != 30 {
		t.Errorf("keys %d, want 30", s.Len())
	}
}

func TestCrawlerStopTerminatesRun(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	s.StartCrawler(sim.Second, 10)
	env.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(2500 * sim.Millisecond)
		s.StopCrawler()
	})
	end := env.Run() // must terminate: no periodic wakeups after stop
	if end < 2500*sim.Millisecond || end > 4*sim.Second {
		t.Errorf("run ended at %v, want shortly after the stop", end)
	}
	// Restarting after stop is allowed.
	s.StartCrawler(sim.Second, 10)
	s.StopCrawler()
	env.Run()
}

func TestDoubleStartCrawlerErrors(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	if err := s.StartCrawler(sim.Second, 10); err != nil {
		t.Fatalf("first StartCrawler: %v", err)
	}
	if err := s.StartCrawler(sim.Second, 10); err != ErrCrawlerRunning {
		t.Errorf("double StartCrawler returned %v, want ErrCrawlerRunning", err)
	}
	s.StopCrawler()
	// Stopping clears the condition: a restart succeeds again.
	if err := s.StartCrawler(sim.Second, 10); err != nil {
		t.Errorf("restart after stop: %v", err)
	}
	s.StopCrawler()
	env.Run()
}

func TestStatsSnapshot(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 4<<20, true)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			s.Set(p, fmt.Sprintf("k%03d", i), 32*1024, i, 0, 0)
		}
		s.Get(p, "k000")
		s.Get(p, "nope")
		s.Delete(p, "k199")
	})
	env.Run()
	st := s.Stats()
	if st.Items != 199 || st.SetOps != 200 || st.GetOps != 2 ||
		st.GetHits != 1 || st.GetMisses != 1 || st.DeleteOps != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.RAMItems+st.SSDItems != st.Items {
		t.Errorf("placement mismatch: %d + %d != %d", st.RAMItems, st.SSDItems, st.Items)
	}
	if st.FlushPages == 0 || st.SSDUsed == 0 || st.SlabMemUsed == 0 {
		t.Errorf("hybrid stats empty: %+v", st)
	}
}
