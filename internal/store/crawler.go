package store

import (
	"errors"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/sim"
)

// This file implements memcached's LRU crawler: a background process that
// walks the recency lists reclaiming expired items, so memory is returned
// even for keys that are never touched again (lazy expiration alone only
// reclaims on access).

// crawlItemCost is the CPU cost to examine one item during a crawl pass.
const crawlItemCost = 100 * sim.Nanosecond

// ErrCrawlerRunning is returned by StartCrawler when a crawler is already
// active on this store.
var ErrCrawlerRunning = errors.New("store: crawler already running")

// StartCrawler launches the LRU crawler: every interval it examines up to
// batch items per recency list and reclaims the expired ones, then distills
// the hot-key sketch into the published hot set. Call StopCrawler to
// terminate it (the simulation's Run drains only after all periodic
// processes stop). A second start while one is running returns
// ErrCrawlerRunning.
func (s *Store) StartCrawler(interval sim.Time, batch int) error {
	if s.crawlerStop != nil {
		return ErrCrawlerRunning
	}
	if interval <= 0 {
		interval = sim.Second
	}
	if batch <= 0 {
		batch = 100
	}
	s.crawlerStop = s.env.NewEvent()
	stop := s.crawlerStop
	s.env.Spawn("lru-crawler", func(p *sim.Proc) {
		for {
			if p.WaitTimeout(stop, interval) {
				return // stopped
			}
			s.crawlOnce(p, batch)
		}
	})
	return nil
}

// StopCrawler terminates the crawler after its current pass.
func (s *Store) StopCrawler() {
	if s.crawlerStop == nil {
		return
	}
	s.crawlerStop.Fire()
	s.crawlerStop = nil
}

// crawlOnce performs one crawl pass.
func (s *Store) crawlOnce(p *sim.Proc, batch int) {
	now := s.env.Now()
	var expired []*hybridslab.Item
	scanned := 0
	s.mgr.VisitLRU(batch, func(it *hybridslab.Item) bool {
		scanned++
		if it.ExpireAt != 0 && now >= it.ExpireAt {
			expired = append(expired, it)
		}
		return true
	})
	if scanned > 0 {
		p.Sleep(sim.Time(scanned) * crawlItemCost)
	}
	for _, it := range expired {
		if it.Dropped() {
			continue
		}
		s.mgr.Release(it)
		delete(s.table, it.Key)
		s.unpublish(it.Key)
		s.Expired++
		s.CrawlerReclaimed++
	}
	// The crawler doubles as the hot-set publisher: each pass distills the
	// access sketch into the digests clients receive on their next
	// directory query, then ages the sketch so the set tracks recent load.
	s.refreshHotSet()
}
