package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

func TestAddSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Add(p, "k", 100, "first", 0, 0); st != protocol.StatusStored {
			t.Errorf("add on fresh key: %v", st)
		}
		if st := s.Add(p, "k", 100, "second", 0, 0); st != protocol.StatusNotStored {
			t.Errorf("add on existing key: %v", st)
		}
		v, _, _, _, _ := s.Get(p, "k")
		if v != "first" {
			t.Errorf("add overwrote: %v", v)
		}
	})
	env.Run()
}

func TestAddSucceedsAfterExpiry(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		s.Set(p, "k", 100, "old", 0, 1)
		p.Sleep(2 * sim.Second)
		if st := s.Add(p, "k", 100, "new", 0, 0); st != protocol.StatusStored {
			t.Errorf("add on expired key: %v", st)
		}
	})
	env.Run()
}

func TestReplaceSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Replace(p, "k", 100, "x", 0, 0); st != protocol.StatusNotStored {
			t.Errorf("replace on missing key: %v", st)
		}
		s.Set(p, "k", 100, "old", 0, 0)
		if st := s.Replace(p, "k", 200, "new", 0, 0); st != protocol.StatusStored {
			t.Errorf("replace on existing key: %v", st)
		}
		v, size, _, _, _ := s.Get(p, "k")
		if v != "new" || size != 200 {
			t.Errorf("replace result (%v,%d)", v, size)
		}
	})
	env.Run()
}

func TestCompareAndSetSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.CompareAndSet(p, "k", 10, "x", 0, 0, 1); st != protocol.StatusNotFound {
			t.Errorf("cas on missing key: %v", st)
		}
		s.Set(p, "k", 10, "v1", 0, 0)
		_, _, _, cas, _ := s.Get(p, "k")
		if st := s.CompareAndSet(p, "k", 10, "v2", 0, 0, cas); st != protocol.StatusStored {
			t.Errorf("cas with current token: %v", st)
		}
		// The old token is now stale.
		if st := s.CompareAndSet(p, "k", 10, "v3", 0, 0, cas); st != protocol.StatusExists {
			t.Errorf("cas with stale token: %v", st)
		}
		v, _, _, _, _ := s.Get(p, "k")
		if v != "v2" {
			t.Errorf("cas left value %v", v)
		}
	})
	env.Run()
}

func TestAppendPrependSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Append(p, "k", 10, "x"); st != protocol.StatusNotStored {
			t.Errorf("append on missing key: %v", st)
		}
		s.Set(p, "k", 100, "base", 0, 0)
		if st := s.Append(p, "k", 50, "tail"); st != protocol.StatusStored {
			t.Errorf("append: %v", st)
		}
		v, size, _, _, _ := s.Get(p, "k")
		cc, ok := v.(Concatenated)
		if !ok || cc.First != "base" || cc.Second != "tail" || size != 150 {
			t.Errorf("append result (%+v,%d)", v, size)
		}
		if st := s.Prepend(p, "k", 25, "head"); st != protocol.StatusStored {
			t.Errorf("prepend: %v", st)
		}
		v, size, _, _, _ = s.Get(p, "k")
		cc, ok = v.(Concatenated)
		if !ok || cc.First != "head" || size != 175 {
			t.Errorf("prepend result (%+v,%d)", v, size)
		}
	})
	env.Run()
}

func TestIncrDecrSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if _, st := s.Incr(p, "c", 1); st != protocol.StatusNotFound {
			t.Errorf("incr on missing key: %v", st)
		}
		s.Set(p, "c", counterSize, uint64(10), 0, 0)
		if v, st := s.Incr(p, "c", 5); st != protocol.StatusOK || v != 15 {
			t.Errorf("incr -> (%d,%v)", v, st)
		}
		if v, st := s.Decr(p, "c", 3); st != protocol.StatusOK || v != 12 {
			t.Errorf("decr -> (%d,%v)", v, st)
		}
		// Decr floors at zero, as memcached specifies.
		if v, st := s.Decr(p, "c", 100); st != protocol.StatusOK || v != 0 {
			t.Errorf("decr floor -> (%d,%v)", v, st)
		}
		// Non-counter values are rejected.
		s.Set(p, "s", 10, "text", 0, 0)
		if _, st := s.Incr(p, "s", 1); st != protocol.StatusBadValue {
			t.Errorf("incr on text: %v", st)
		}
	})
	env.Run()
}

func TestIncrAdvancesCAS(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		s.Set(p, "c", counterSize, uint64(0), 0, 0)
		_, _, _, cas1, _ := s.Get(p, "c")
		s.Incr(p, "c", 1)
		_, _, _, cas2, _ := s.Get(p, "c")
		if cas2 <= cas1 {
			t.Errorf("incr did not advance CAS: %d -> %d", cas1, cas2)
		}
	})
	env.Run()
}

func TestIncrOnSSDResidentCounter(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 4<<20, true)
	env.Spawn("op", func(p *sim.Proc) {
		s.Set(p, "c", counterSize, uint64(41), 0, 0)
		// Push the counter to the SSD with filler.
		for i := 0; i < 200; i++ {
			s.Set(p, fmt.Sprintf("fill%04d", i), 32*1024, i, 0, 0)
		}
		if v, st := s.Incr(p, "c", 1); st != protocol.StatusOK || v != 42 {
			t.Fatalf("incr on cold counter -> (%d,%v)", v, st)
		}
		// The stored value must be durable across further reads.
		v, _, _, _, st := s.Get(p, "c")
		if st != protocol.StatusOK || v != uint64(42) {
			t.Errorf("counter after SSD incr: (%v,%v)", v, st)
		}
	})
	env.Run()
}

func TestTouchSemantics(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Touch(p, "k", 10); st != protocol.StatusNotFound {
			t.Errorf("touch on missing key: %v", st)
		}
		s.Set(p, "k", 100, "v", 0, 1) // expires in 1s
		if st := s.Touch(p, "k", 60); st != protocol.StatusOK {
			t.Errorf("touch: %v", st)
		}
		p.Sleep(5 * sim.Second) // would have expired without the touch
		if _, _, _, _, st := s.Get(p, "k"); st != protocol.StatusOK {
			t.Errorf("touched key expired anyway: %v", st)
		}
		// Touch with 0 clears the expiry.
		if st := s.Touch(p, "k", 0); st != protocol.StatusOK {
			t.Errorf("touch clear: %v", st)
		}
		p.Sleep(120 * sim.Second)
		if _, _, _, _, st := s.Get(p, "k"); st != protocol.StatusOK {
			t.Errorf("unexpiring key expired: %v", st)
		}
	})
	env.Run()
}

func TestHandleExtendedOps(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if r := s.Handle(p, &protocol.Request{Op: protocol.OpAdd, Key: "k", ValueSize: 10, Value: "v"}); r.Status != protocol.StatusStored {
			t.Errorf("handle add: %v", r.Status)
		}
		if r := s.Handle(p, &protocol.Request{Op: protocol.OpReplace, Key: "k", ValueSize: 10, Value: "w"}); r.Status != protocol.StatusStored {
			t.Errorf("handle replace: %v", r.Status)
		}
		if r := s.Handle(p, &protocol.Request{Op: protocol.OpAppend, Key: "k", ValueSize: 5, Value: "+"}); r.Status != protocol.StatusStored {
			t.Errorf("handle append: %v", r.Status)
		}
		if r := s.Handle(p, &protocol.Request{Op: protocol.OpTouch, Key: "k", Expire: 60}); r.Status != protocol.StatusOK {
			t.Errorf("handle touch: %v", r.Status)
		}
		s.Handle(p, &protocol.Request{Op: protocol.OpSet, Key: "c", ValueSize: counterSize, Value: uint64(1)})
		r := s.Handle(p, &protocol.Request{Op: protocol.OpIncr, Key: "c", Delta: 9})
		if r.Status != protocol.StatusOK || r.Value != uint64(10) || r.ValueSize != counterSize {
			t.Errorf("handle incr: %+v", r)
		}
		r = s.Handle(p, &protocol.Request{Op: protocol.OpDecr, Key: "c", Delta: 4})
		if r.Status != protocol.StatusOK || r.Value != uint64(6) {
			t.Errorf("handle decr: %+v", r)
		}
		// CAS via Handle.
		g := s.Handle(p, &protocol.Request{Op: protocol.OpGet, Key: "c"})
		r = s.Handle(p, &protocol.Request{Op: protocol.OpCAS, Key: "c", ValueSize: counterSize, Value: uint64(0), CAS: g.CAS})
		if r.Status != protocol.StatusStored {
			t.Errorf("handle cas: %v", r.Status)
		}
	})
	env.Run()
}

func TestFlushAll(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 4<<20, true)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			s.Set(p, fmt.Sprintf("k%03d", i), 32*1024, i, 0, 0)
		}
		if st := s.FlushAll(p); st != protocol.StatusOK {
			t.Errorf("flush_all: %v", st)
		}
		if _, _, _, _, st := s.Get(p, "k000"); st != protocol.StatusNotFound {
			t.Errorf("key survived flush_all: %v", st)
		}
		// The store is fully usable afterwards.
		if st := s.Set(p, "fresh", 1024, "v", 0, 0); st != protocol.StatusStored {
			t.Errorf("set after flush_all: %v", st)
		}
	})
	env.Run()
	if s.Len() != 1 || s.Flushes != 1 {
		t.Errorf("len=%d flushes=%d", s.Len(), s.Flushes)
	}
	mgr := s.Manager()
	if mgr.RAMItems() != 1 || mgr.SSDItems() != 0 || mgr.SSDUsed() != 0 {
		t.Errorf("storage not reclaimed: ram=%d ssd=%d used=%d",
			mgr.RAMItems(), mgr.SSDItems(), mgr.SSDUsed())
	}
}
