package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// The storage-phase microbenchmarks measure simulator host cost (wall time
// per simulated op), not simulated latency: batching executes these paths
// back-to-back per frame, so their allocation behaviour bounds experiment
// wall time.

func benchStore(b *testing.B, fn func(p *sim.Proc, s *Store, i int)) {
	env := sim.NewEnv()
	mgr := hybridslab.New(env, hybridslab.Config{
		Slab: slab.Config{MemLimit: 1 << 30},
	}, nil)
	s := New(env, mgr)
	env.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn(p, s, i)
		}
	})
	env.Run()
}

func BenchmarkStoreSet(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj:%010d", i)
	}
	benchStore(b, func(p *sim.Proc, s *Store, i int) {
		s.Set(p, keys[i%len(keys)], 4096, i, 0, 0)
	})
}

func BenchmarkStoreGet(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj:%010d", i)
	}
	benchStore(b, func(p *sim.Proc, s *Store, i int) {
		if i < len(keys) {
			s.Set(p, keys[i], 4096, i, 0, 0)
			return
		}
		s.Get(p, keys[i%len(keys)])
	})
}

// batchOf builds a frame-sized request slice alternating Set and Get.
func batchOf(n int) []*protocol.Request {
	reqs := make([]*protocol.Request, n)
	for i := range reqs {
		key := fmt.Sprintf("obj:%010d", i)
		if i%2 == 0 {
			reqs[i] = &protocol.Request{Op: protocol.OpSet, ReqID: uint64(i), Key: key, ValueSize: 4096, Value: i}
		} else {
			reqs[i] = &protocol.Request{Op: protocol.OpGet, ReqID: uint64(i), Key: key}
		}
	}
	return reqs
}

func BenchmarkStoreHandleBatch16(b *testing.B) {
	env := sim.NewEnv()
	mgr := hybridslab.New(env, hybridslab.Config{
		Slab: slab.Config{MemLimit: 1 << 30},
	}, nil)
	s := New(env, mgr)
	reqs := batchOf(16)
	env.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.HandleBatch(p, reqs)
		}
	})
	env.Run()
}
