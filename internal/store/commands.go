package store

import (
	"sort"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// This file implements the rest of the memcached command set on top of the
// hybrid slab manager: conditional stores (add/replace/cas), value
// concatenation (append/prepend), counter arithmetic (incr/decr) and
// expiry updates (touch). The paper's non-blocking extensions target
// Set/Get; these commands complete the server so real libmemcached
// applications map onto it.

// lookup returns the live item for key, lazily expiring it.
func (s *Store) lookup(p *sim.Proc, key string) *hybridslab.Item {
	it := s.table[key]
	if it == nil {
		return nil
	}
	if it.ExpireAt != 0 && s.env.Now() >= it.ExpireAt {
		s.mgr.Release(it)
		delete(s.table, key)
		s.unpublish(key)
		s.Expired++
		return nil
	}
	return it
}

// Add stores the value only if the key does not already exist.
func (s *Store) Add(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	p.Sleep(hashCost)
	if s.lookup(p, key) != nil {
		return protocol.StatusNotStored
	}
	return s.Set(p, key, valueSize, value, flags, expire)
}

// Replace stores the value only if the key already exists.
func (s *Store) Replace(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32) protocol.Status {
	p.Sleep(hashCost)
	if s.lookup(p, key) == nil {
		return protocol.StatusNotStored
	}
	return s.Set(p, key, valueSize, value, flags, expire)
}

// CompareAndSet stores the value only if the caller's CAS token matches the
// item's current token (memcached cas command).
func (s *Store) CompareAndSet(p *sim.Proc, key string, valueSize int, value any, flags, expire uint32, cas uint64) protocol.Status {
	p.Sleep(hashCost)
	it := s.lookup(p, key)
	if it == nil {
		return protocol.StatusNotFound
	}
	if it.CAS != cas {
		return protocol.StatusExists
	}
	return s.Set(p, key, valueSize, value, flags, expire)
}

// Concatenated represents an append/prepend result: the surviving value is
// the ordered pair of payload tokens (the simulation moves tokens, not
// bytes; sizes are accounted exactly).
type Concatenated struct {
	First, Second any
}

// concat builds the combined payload and size for append/prepend.
func concat(prepend bool, old any, oldSize int, extra any, extraSize int) (any, int) {
	if prepend {
		return Concatenated{First: extra, Second: old}, oldSize + extraSize
	}
	return Concatenated{First: old, Second: extra}, oldSize + extraSize
}

// Append concatenates extra bytes after the existing value.
func (s *Store) Append(p *sim.Proc, key string, extraSize int, extra any) protocol.Status {
	return s.concatCmd(p, key, extraSize, extra, false)
}

// Prepend concatenates extra bytes before the existing value.
func (s *Store) Prepend(p *sim.Proc, key string, extraSize int, extra any) protocol.Status {
	return s.concatCmd(p, key, extraSize, extra, true)
}

func (s *Store) concatCmd(p *sim.Proc, key string, extraSize int, extra any, prepend bool) protocol.Status {
	p.Sleep(hashCost)
	it := s.lookup(p, key)
	if it == nil {
		return protocol.StatusNotStored
	}
	// Load the current value (may reside on SSD), then store the
	// combined item through the regular slab path so it is re-classed by
	// its new size.
	old, err := s.mgr.Load(p, it)
	if err != nil {
		delete(s.table, key)
		s.unpublish(key)
		return protocol.StatusNotStored
	}
	newValue, newSize := concat(prepend, old, it.ValueSize, extra, extraSize)
	flags := it.Flags
	var expire uint32
	if it.ExpireAt != 0 {
		remaining := it.ExpireAt - s.env.Now()
		if remaining > 0 {
			expire = uint32(remaining / sim.Second)
			if expire == 0 {
				expire = 1
			}
		}
	}
	return s.Set(p, key, newSize, newValue, flags, expire)
}

// counterSize is the stored size of a numeric counter (decimal ASCII in
// real memcached; fixed 20 bytes covers uint64).
const counterSize = 20

// Incr adds delta to a counter value; the value must have been stored as a
// uint64 (Counter helper). Returns the new value.
func (s *Store) Incr(p *sim.Proc, key string, delta uint64) (uint64, protocol.Status) {
	return s.arith(p, key, delta, false)
}

// Decr subtracts delta from a counter, flooring at zero as memcached does.
func (s *Store) Decr(p *sim.Proc, key string, delta uint64) (uint64, protocol.Status) {
	return s.arith(p, key, delta, true)
}

func (s *Store) arith(p *sim.Proc, key string, delta uint64, dec bool) (uint64, protocol.Status) {
	p.Sleep(hashCost)
	it := s.lookup(p, key)
	if it == nil {
		return 0, protocol.StatusNotFound
	}
	v, err := s.mgr.Load(p, it)
	if err != nil {
		delete(s.table, key)
		s.unpublish(key)
		return 0, protocol.StatusNotFound
	}
	cur, ok := v.(uint64)
	if !ok {
		return 0, protocol.StatusBadValue
	}
	var next uint64
	if dec {
		if delta > cur {
			next = 0
		} else {
			next = cur - delta
		}
	} else {
		next = cur + delta
	}
	if it.OnSSD() {
		// The authoritative copy lives in the SSD extent; rewrite through
		// the regular store path so the new value lands somewhere live.
		if st := s.Set(p, key, counterSize, next, it.Flags, 0); st != protocol.StatusStored {
			return 0, st
		}
		return next, protocol.StatusOK
	}
	// RAM-resident counters mutate in place: same class, no reallocation.
	s.publishBegin(key)
	p.Sleep(updateCost)
	it.Value = next
	s.cas++
	it.CAS = s.cas
	s.mgr.Touch(it)
	s.publish(it)
	return next, protocol.StatusOK
}

// FlushAll invalidates every item (the memcached flush_all command),
// releasing all slab and SSD space. The sweep cost is proportional to the
// item count.
func (s *Store) FlushAll(p *sim.Proc) protocol.Status {
	n := len(s.table)
	if n > 0 {
		p.Sleep(sim.Time(n) * crawlItemCost)
	}
	// Release in sorted key order: map iteration order is random per run
	// and the SSD free-pool state is order-sensitive, which would break
	// the simulation's determinism guarantee.
	keys := make([]string, 0, n)
	for key := range s.table {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		s.mgr.Release(s.table[key])
		delete(s.table, key)
		s.unpublish(key)
	}
	s.Flushes++
	return protocol.StatusOK
}

// Touch updates the expiration time without fetching the value.
func (s *Store) Touch(p *sim.Proc, key string, expire uint32) protocol.Status {
	p.Sleep(hashCost)
	it := s.lookup(p, key)
	if it == nil {
		return protocol.StatusNotFound
	}
	s.publishBegin(key)
	p.Sleep(updateCost)
	if expire > 0 {
		it.ExpireAt = s.env.Now() + sim.Time(expire)*sim.Second
	} else {
		it.ExpireAt = 0
	}
	s.mgr.Touch(it)
	s.publish(it)
	return protocol.StatusOK
}
