// Package store implements the Memcached item store: the hash table and
// item lifecycle (CAS, flags, lazy expiration) on top of the hybrid slab
// manager, instrumented with the paper's per-stage profiler (Section III-A):
// slab allocation, cache check and load, and cache update are measured here;
// server response, client wait and miss penalty are measured by the server
// engine and client runtime.
package store

import (
	"errors"
	"sort"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// Host-side costs of the request-handling core.
const (
	hashCost   = 120 * sim.Nanosecond // key hash + bucket probe
	updateCost = 150 * sim.Nanosecond // LRU relink + freshness bookkeeping
)

// ReadView is the store's versioned read-side publication interface: an
// implementation (the server-bypass Directory) mirrors the live item index
// so remote clients can resolve reads without the server CPU. The store
// calls PublishBegin before a mutation window opens for a published key,
// Publish when a key's current item (re)lands, and Unpublish when a key
// dies; eviction transitions arrive via EvictionUpdate.
type ReadView interface {
	PublishBegin(key string)
	Publish(it *hybridslab.Item)
	Unpublish(key string)
	EvictionUpdate(it *hybridslab.Item, ev hybridslab.NotifyEvent)
}

// Store is one server's key-value state.
type Store struct {
	env   *sim.Env
	mgr   *hybridslab.Manager
	table map[string]*hybridslab.Item
	cas   uint64
	view  ReadView

	// Hot-key detection: the access path feeds the space-saving sketch
	// (zero simulated cost — the real counterpart is a few arithmetic ops
	// folded into the hash probe), and the crawler distills it into the
	// published hot set served to clients on OpDirQuery.
	hot        *hotSketch
	hotSet     []uint64
	hotVersion uint64

	// Prof accumulates the server-side stage breakdown.
	Prof *metrics.Breakdown

	crawlerStop *sim.Event

	// corruptNotify, when set, fires on every foreground read that failed
	// integrity verification (the key is already gone locally). The server
	// wires it to the replicator so a corrupt read opens a repair-pull
	// even when the client never retries the key.
	corruptNotify func(p *sim.Proc, key string)

	// Stats
	SetOps, GetOps, DeleteOps int64
	GetHits, GetMisses        int64
	Expired                   int64
	CrawlerReclaimed          int64
	Flushes                   int64
	// CorruptReads counts foreground reads answered StatusCorrupt: the
	// on-SSD copy failed verification and was quarantined.
	CorruptReads int64
}

// SetCorruptNotify installs the corrupt-read callback (replication repair
// hook). Call before the simulation runs.
func (s *Store) SetCorruptNotify(fn func(p *sim.Proc, key string)) { s.corruptNotify = fn }

// New creates a store over the given slab manager.
func New(env *sim.Env, mgr *hybridslab.Manager) *Store {
	return &Store{
		env:   env,
		mgr:   mgr,
		table: make(map[string]*hybridslab.Item),
		hot:   newHotSketch(hotSketchCap),
		Prof:  metrics.NewBreakdown(),
	}
}

// Manager returns the underlying hybrid slab manager.
func (s *Store) Manager() *hybridslab.Manager { return s.mgr }

// EvacuateQuarantined drains quarantined SSD regions: verified-clean slots
// move to fresh media, slots that fail re-verification are retired here —
// table entry dropped, read view unpublished, and the corrupt-read callback
// fired so replication opens a repair-pull — exactly the foreground
// corrupt-read teardown, driven by the scrub pass instead of a client.
func (s *Store) EvacuateQuarantined(p *sim.Proc) (moved, dropped int) {
	moved, corrupt := s.mgr.EvacuateQuarantined(p)
	for _, it := range corrupt {
		// The read may have suspended; only tear down a table entry the
		// retired item still owns (a concurrent Set installs a new one).
		if s.table[it.Key] != it {
			continue
		}
		delete(s.table, it.Key)
		s.unpublish(it.Key)
		dropped++
		if s.corruptNotify != nil {
			s.corruptNotify(p, it.Key)
		}
	}
	return moved, dropped
}

// SetReadView installs the read-side publication view and subscribes it to
// the slab manager's eviction lifecycle.
func (s *Store) SetReadView(v ReadView) {
	s.view = v
	s.mgr.SetNotify(v.EvictionUpdate)
}

func (s *Store) publishBegin(key string) {
	if s.view != nil {
		s.view.PublishBegin(key)
	}
}

func (s *Store) publish(it *hybridslab.Item) {
	if s.view != nil {
		s.view.Publish(it)
	}
}

func (s *Store) unpublish(key string) {
	if s.view != nil {
		s.view.Unpublish(key)
	}
}

// PublishAll (re)publishes every live key into the read view, in sorted
// order for determinism. The server calls it after a restart repopulates or
// revalidates the table, undoing the crash-time Quiesce.
func (s *Store) PublishAll() {
	if s.view == nil {
		return
	}
	for _, key := range s.Keys() {
		s.publish(s.table[key])
	}
}

// Stats is a point-in-time server statistics snapshot (the memcached
// "stats" command).
type Stats struct {
	Items            int
	RAMItems         int
	SSDItems         int
	SetOps           int64
	GetOps           int64
	DeleteOps        int64
	GetHits          int64
	GetMisses        int64
	Expired          int64
	CrawlerReclaimed int64
	SlabMemUsed      int64
	SSDUsed          int64
	FlushPages       int64
	DropEvictions    int64
	CorruptReads     int64
	QuarantinedPages int64
}

// Stats snapshots the server state.
func (s *Store) Stats() Stats {
	return Stats{
		Items:            len(s.table),
		RAMItems:         s.mgr.RAMItems(),
		SSDItems:         s.mgr.SSDItems(),
		SetOps:           s.SetOps,
		GetOps:           s.GetOps,
		DeleteOps:        s.DeleteOps,
		GetHits:          s.GetHits,
		GetMisses:        s.GetMisses,
		Expired:          s.Expired,
		CrawlerReclaimed: s.CrawlerReclaimed,
		SlabMemUsed:      s.mgr.Allocator().MemUsed(),
		SSDUsed:          s.mgr.SSDUsed(),
		FlushPages:       s.mgr.FlushPages,
		DropEvictions:    s.mgr.DropEvictions,
		CorruptReads:     s.CorruptReads,
		QuarantinedPages: s.mgr.QuarantinedPages,
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.table) }

// Keys returns the live key set in sorted order. Replication uses it to
// mark recovered keys suspect after a cold restart; sorting keeps the
// simulation deterministic (map iteration order is random per run).
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.table))
	for key := range s.table {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// ReadItem fetches key's current value and metadata without touching
// statistics, expiry, or LRU state. The replication repair path uses it to
// build push frames for values that may reside on SSD, and the bench
// verification oracle uses it to audit post-run state; neither should
// perturb cache behavior. Returns ok=false on a miss or when the value is
// unreadable (dropped by eviction, or the store is recovering).
func (s *Store) ReadItem(p *sim.Proc, key string) (value any, size int, flags uint32, expireAt sim.Time, ok bool) {
	it := s.table[key]
	if it == nil {
		return nil, 0, 0, 0, false
	}
	if it.ExpireAt != 0 && s.env.Now() >= it.ExpireAt {
		return nil, 0, 0, 0, false
	}
	v, err := s.mgr.Load(p, it)
	if err != nil {
		return nil, 0, 0, 0, false
	}
	return v, it.ValueSize, it.Flags, it.ExpireAt, true
}

// RecoverCold rebuilds the store from the SSD after a cold restart: the hash
// table is rebuilt from scratch out of the manager's recovery scan, and the
// CAS counter resumes above the highest recovered token so post-recovery
// stores never reuse a pre-crash CAS value.
func (s *Store) RecoverCold(p *sim.Proc) hybridslab.RecoveryReport {
	s.table = make(map[string]*hybridslab.Item)
	items, rep := s.mgr.Recover(p)
	for _, it := range items {
		s.table[it.Key] = it
	}
	if rep.MaxCAS > s.cas {
		s.cas = rep.MaxCAS
	}
	return rep
}

// Set stores a value, charging p the slab-allocation and cache-update
// stages. Returns StatusStored, or StatusTooLarge.
func (s *Store) Set(p *sim.Proc, key string, valueSize int, value any, flags uint32, expire uint32) protocol.Status {
	s.SetOps++

	// Stage 1: slab allocation (may trigger hybrid eviction I/O).
	t0 := p.Now()
	p.Sleep(hashCost)
	it := &hybridslab.Item{
		Key:       key,
		Value:     value,
		ValueSize: valueSize,
		Flags:     flags,
	}
	if expire > 0 {
		it.ExpireAt = s.env.Now() + sim.Time(expire)*sim.Second
	}
	if err := s.mgr.Store(p, it); err != nil {
		s.Prof.Add(metrics.StageSlabAlloc, p.Now()-t0)
		if errors.Is(err, hybridslab.ErrRecovering) {
			return protocol.StatusRecovering
		}
		return protocol.StatusTooLarge
	}
	s.Prof.Add(metrics.StageSlabAlloc, p.Now()-t0)

	// Stage 3: cache update — freshness of the table and recency list.
	// Re-read the table entry: the allocation above can suspend, and a
	// concurrent worker may have replaced the key meanwhile.
	t0 = p.Now()
	s.publishBegin(key)
	p.Sleep(updateCost)
	if old := s.table[key]; old != nil {
		s.mgr.Release(old)
	}
	s.cas++
	it.CAS = s.cas
	s.table[key] = it
	s.publish(it)
	s.Prof.Add(metrics.StageCacheUpdate, p.Now()-t0)
	return protocol.StatusStored
}

// Get fetches a value, charging p the cache-check-and-load and cache-update
// stages. A miss (never stored, evicted-and-dropped, or expired) returns
// StatusNotFound.
func (s *Store) Get(p *sim.Proc, key string) (value any, size int, flags uint32, cas uint64, status protocol.Status) {
	s.GetOps++
	s.hot.Touch(key)

	// Stage 2: cache check and load (may read from SSD).
	t0 := p.Now()
	p.Sleep(hashCost)
	it := s.table[key]
	if it == nil {
		s.Prof.Add(metrics.StageCacheLoad, p.Now()-t0)
		s.GetMisses++
		return nil, 0, 0, 0, protocol.StatusNotFound
	}
	if it.ExpireAt != 0 && s.env.Now() >= it.ExpireAt {
		s.mgr.Release(it)
		delete(s.table, key)
		s.unpublish(key)
		s.Expired++
		s.Prof.Add(metrics.StageCacheLoad, p.Now()-t0)
		s.GetMisses++
		return nil, 0, 0, 0, protocol.StatusNotFound
	}
	v, err := s.mgr.Load(p, it)
	s.Prof.Add(metrics.StageCacheLoad, p.Now()-t0)
	if err != nil {
		if errors.Is(err, hybridslab.ErrRecovering) {
			// Transient rejection, not a dead key: the item may well be
			// recovered — keep the table entry and fail the request fast.
			return nil, 0, 0, 0, protocol.StatusRecovering
		}
		if errors.Is(err, hybridslab.ErrCorrupt) {
			// The on-SSD copy failed integrity verification: the item is
			// quarantined, not legally evicted. Drop the dead table entry
			// but answer StatusCorrupt — distinct from a miss — so the
			// replication layer can repair-pull the key from its peers
			// instead of letting the client see a false miss.
			delete(s.table, key)
			s.unpublish(key)
			s.CorruptReads++
			if s.corruptNotify != nil {
				s.corruptNotify(p, key)
			}
			return nil, 0, 0, 0, protocol.StatusCorrupt
		}
		// Value dropped by eviction: the key is dead.
		delete(s.table, key)
		s.unpublish(key)
		s.GetMisses++
		return nil, 0, 0, 0, protocol.StatusNotFound
	}

	// Stage 3: cache update — promote in the LRU.
	t0 = p.Now()
	p.Sleep(updateCost)
	s.mgr.Touch(it)
	s.Prof.Add(metrics.StageCacheUpdate, p.Now()-t0)
	s.GetHits++
	return v, it.ValueSize, it.Flags, it.CAS, protocol.StatusOK
}

// Delete removes a key.
func (s *Store) Delete(p *sim.Proc, key string) protocol.Status {
	s.DeleteOps++
	p.Sleep(hashCost)
	it := s.table[key]
	if it == nil {
		return protocol.StatusNotFound
	}
	s.mgr.Release(it)
	delete(s.table, key)
	s.unpublish(key)
	return protocol.StatusDeleted
}

// HandleBatch executes a coalesced batch's storage phases back-to-back
// inside one eviction-coalescing window: slab evictions triggered by the
// batch are merged into fewer, larger sequential SSD flushes instead of one
// small write per allocating Set. Responses are returned in request order.
func (s *Store) HandleBatch(p *sim.Proc, reqs []*protocol.Request) []*protocol.Response {
	s.mgr.BeginEvictionBatch(p)
	resps := make([]*protocol.Response, len(reqs))
	for i, req := range reqs {
		resps[i] = s.Handle(p, req)
	}
	s.mgr.EndEvictionBatch(p)
	return resps
}

// Handle executes one parsed request against the store and builds the
// response. This is the storage phase shared by the sync and async server
// designs.
func (s *Store) Handle(p *sim.Proc, req *protocol.Request) *protocol.Response {
	resp := &protocol.Response{Op: protocol.OpResponse, ReqID: req.ReqID}
	switch req.Op {
	case protocol.OpSet:
		resp.Status = s.Set(p, req.Key, req.ValueSize, req.Value, req.Flags, req.Expire)
	case protocol.OpGet:
		v, size, flags, cas, st := s.Get(p, req.Key)
		resp.Status = st
		resp.Value = v
		resp.ValueSize = size
		resp.Flags = flags
		resp.CAS = cas
	case protocol.OpDelete:
		resp.Status = s.Delete(p, req.Key)
	case protocol.OpAdd:
		resp.Status = s.Add(p, req.Key, req.ValueSize, req.Value, req.Flags, req.Expire)
	case protocol.OpReplace:
		resp.Status = s.Replace(p, req.Key, req.ValueSize, req.Value, req.Flags, req.Expire)
	case protocol.OpCAS:
		resp.Status = s.CompareAndSet(p, req.Key, req.ValueSize, req.Value, req.Flags, req.Expire, req.CAS)
	case protocol.OpAppend:
		resp.Status = s.Append(p, req.Key, req.ValueSize, req.Value)
	case protocol.OpPrepend:
		resp.Status = s.Prepend(p, req.Key, req.ValueSize, req.Value)
	case protocol.OpIncr:
		v, st := s.Incr(p, req.Key, req.Delta)
		resp.Status = st
		if st == protocol.StatusOK {
			resp.Value = v
			resp.ValueSize = counterSize
		}
	case protocol.OpDecr:
		v, st := s.Decr(p, req.Key, req.Delta)
		resp.Status = st
		if st == protocol.StatusOK {
			resp.Value = v
			resp.ValueSize = counterSize
		}
	case protocol.OpTouch:
		resp.Status = s.Touch(p, req.Key, req.Expire)
	case protocol.OpFlushAll:
		resp.Status = s.FlushAll(p)
	default:
		resp.Status = protocol.StatusError
	}
	return resp
}
