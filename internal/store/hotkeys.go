package store

import (
	"sort"

	"hybridkv/internal/protocol"
)

// This file implements hot-key detection: a space-saving top-K sketch
// (Metwally et al.) fed inline by the store's access path. The sketch keeps
// a fixed roster of candidate keys with approximate counts; when a new key
// arrives and the roster is full, the minimum-count entry is replaced and
// the newcomer inherits min+1 — the classic over-estimate that guarantees
// any key with true frequency above min is in the roster. The crawler
// periodically distills the roster into a published hot set (key digests
// above a share threshold) and then ages the counts so yesterday's
// celebrity cools off.

const (
	// hotSketchCap bounds the candidate roster. 64 entries comfortably
	// covers any plausible number of simultaneously hot keys while keeping
	// the per-access update O(1) amortized (the min scan only runs on
	// roster replacement).
	hotSketchCap = 64
	// hotPublishMax bounds the published hot set: the wire payload rides
	// the OpDirQuery bootstrap and fan-out only helps for keys hot enough
	// to saturate a server, so a short head is all that matters.
	hotPublishMax = 16
	// hotMinShare is the minimum share of sketch-window accesses a key
	// needs to be published hot. 2% of traffic on one key out of a zipf
	// keyspace is already an order of magnitude above the typical rank.
	hotMinShare = 0.02
	// hotMinCount keeps tiny windows (a handful of touches between crawl
	// passes) from promoting noise.
	hotMinCount = 16
	// hotAgeWindow is the touch volume after which a crawl pass halves the
	// sketch. Aging by observed traffic rather than by wall time keeps
	// detection independent of the crawl cadence: a fast crawler over a slow
	// sample stream must not decay counts faster than they accumulate.
	hotAgeWindow = 2048
)

// hotEntry is one space-saving roster slot. count is the usual
// over-estimate; err is the count inherited when the entry displaced its
// predecessor, so count-err is a guaranteed lower bound on the key's true
// frequency — that bound is what publication thresholds compare against,
// keeping roster-churn keys (count ≈ err+1) out of the hot set.
type hotEntry struct {
	key        string
	count, err int64
}

// hotSketch is the store's space-saving top-K structure. It is not
// goroutine-safe; the store serializes access (sim processes interleave
// only at sleep points and Touch never sleeps).
type hotSketch struct {
	cap     int
	idx     map[string]int // key -> entries index
	entries []hotEntry
	total   int64 // touches since the last Age
}

func newHotSketch(capacity int) *hotSketch {
	return &hotSketch{
		cap: capacity,
		idx: make(map[string]int, capacity),
	}
}

// Touch records one access. O(1) when the key is already a candidate or
// the roster has room; O(cap) linear min-scan on replacement.
func (h *hotSketch) Touch(key string) {
	h.total++
	if i, ok := h.idx[key]; ok {
		h.entries[i].count++
		return
	}
	if len(h.entries) < h.cap {
		h.idx[key] = len(h.entries)
		h.entries = append(h.entries, hotEntry{key: key, count: 1})
		return
	}
	// Replace the deterministic minimum: lowest count, lowest index on
	// ties (stable under the deterministic insertion order, never map
	// iteration order — the simulation must replay identically).
	min := 0
	for i := 1; i < len(h.entries); i++ {
		if h.entries[i].count < h.entries[min].count {
			min = i
		}
	}
	delete(h.idx, h.entries[min].key)
	h.idx[key] = min
	h.entries[min] = hotEntry{
		key:   key,
		count: h.entries[min].count + 1,
		err:   h.entries[min].count,
	}
}

// Age halves every count and drops zeroed entries, so the sketch tracks
// recent traffic rather than all-time totals. Called after each hot-set
// distillation.
func (h *hotSketch) Age() {
	kept := h.entries[:0]
	for _, e := range h.entries {
		e.count /= 2
		e.err /= 2
		if e.count > 0 {
			kept = append(kept, e)
		}
	}
	h.entries = kept
	h.idx = make(map[string]int, len(h.entries))
	for i, e := range h.entries {
		h.idx[e.key] = i
	}
	h.total /= 2
}

// Hot distills the roster into the published hot set: digests of keys whose
// count clears both the share and absolute floors, hottest first, capped at
// hotPublishMax, then digest-sorted for a canonical wire representation.
func (h *hotSketch) Hot() []uint64 {
	floor := int64(hotMinShare * float64(h.total))
	if floor < hotMinCount {
		floor = hotMinCount
	}
	cand := make([]hotEntry, 0, len(h.entries))
	for _, e := range h.entries {
		if e.count-e.err >= floor {
			cand = append(cand, e)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].count != cand[j].count {
			return cand[i].count > cand[j].count
		}
		return cand[i].key < cand[j].key
	})
	if len(cand) > hotPublishMax {
		cand = cand[:hotPublishMax]
	}
	hot := make([]uint64, len(cand))
	for i, e := range cand {
		hot[i] = protocol.KeyDigest(e.key)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	return hot
}

// refreshHotSet distills the sketch into the store's published hot set and
// bumps the version only when membership changed, then ages the sketch once
// it has absorbed a full window of touches. The crawler calls this once per
// pass; clients learn the new set on their next directory query.
func (s *Store) refreshHotSet() {
	hot := s.hot.Hot()
	if !digestsEqual(hot, s.hotSet) {
		s.hotSet = hot
		s.hotVersion++
	}
	if s.hot.total >= hotAgeWindow {
		s.hot.Age()
	}
}

// HotSnapshot returns the currently published hot-key digests and the set's
// version. The slice is shared, not copied: callers must treat it as
// immutable (the store replaces, never mutates, the published set).
func (s *Store) HotSnapshot() ([]uint64, uint64) {
	return s.hotSet, s.hotVersion
}

func digestsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
