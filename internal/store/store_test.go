package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

func newStore(env *sim.Env, memLimit int64, hybrid bool) *Store {
	return newStoreWithPolicy(env, memLimit, hybrid, hybridslab.PolicyAdaptive)
}

func newStoreWithPolicy(env *sim.Env, memLimit int64, hybrid bool, policy hybridslab.IOPolicy) *Store {
	cfg := hybridslab.Config{
		Slab:   slab.Config{MemLimit: memLimit},
		Policy: policy,
	}
	var file *pagecache.File
	if hybrid {
		dev := blockdev.New(env, blockdev.SATA(), 8<<30)
		file = pagecache.New(env, dev, pagecache.DefaultParams()).OpenFile(0, 4<<30)
	}
	return New(env, hybridslab.New(env, cfg, file))
}

func TestSetGetDelete(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Set(p, "k1", 1024, "v1", 5, 0); st != protocol.StatusStored {
			t.Errorf("set status %v", st)
		}
		v, size, flags, cas, st := s.Get(p, "k1")
		if st != protocol.StatusOK || v != "v1" || size != 1024 || flags != 5 || cas == 0 {
			t.Errorf("get (%v,%d,%d,%d,%v)", v, size, flags, cas, st)
		}
		if st := s.Delete(p, "k1"); st != protocol.StatusDeleted {
			t.Errorf("delete status %v", st)
		}
		if _, _, _, _, st := s.Get(p, "k1"); st != protocol.StatusNotFound {
			t.Errorf("get after delete %v", st)
		}
		if st := s.Delete(p, "k1"); st != protocol.StatusNotFound {
			t.Errorf("double delete %v", st)
		}
	})
	env.Run()
	if s.SetOps != 1 || s.GetOps != 2 || s.DeleteOps != 2 || s.GetHits != 1 || s.GetMisses != 1 {
		t.Errorf("counters set=%d get=%d del=%d hit=%d miss=%d",
			s.SetOps, s.GetOps, s.DeleteOps, s.GetHits, s.GetMisses)
	}
}

func TestReplaceUpdatesValueAndCAS(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		s.Set(p, "k", 100, "old", 0, 0)
		_, _, _, cas1, _ := s.Get(p, "k")
		s.Set(p, "k", 200, "new", 0, 0)
		v, size, _, cas2, _ := s.Get(p, "k")
		if v != "new" || size != 200 {
			t.Errorf("replace not visible: %v/%d", v, size)
		}
		if cas2 <= cas1 {
			t.Errorf("CAS did not advance: %d -> %d", cas1, cas2)
		}
	})
	env.Run()
	if s.Len() != 1 {
		t.Errorf("table length %d after replace", s.Len())
	}
	if got := s.Manager().RAMItems(); got != 1 {
		t.Errorf("old item leaked in slab: %d RAM items", got)
	}
}

func TestLazyExpiration(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		s.Set(p, "k", 100, "v", 0, 1) // 1-second TTL
		if _, _, _, _, st := s.Get(p, "k"); st != protocol.StatusOK {
			t.Errorf("fresh item miss: %v", st)
		}
		p.Sleep(2 * sim.Second)
		if _, _, _, _, st := s.Get(p, "k"); st != protocol.StatusNotFound {
			t.Errorf("expired item still served: %v", st)
		}
	})
	env.Run()
	if s.Expired != 1 {
		t.Errorf("expired count %d", s.Expired)
	}
	if s.Len() != 0 {
		t.Errorf("expired key not removed from table")
	}
}

func TestTooLarge(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		if st := s.Set(p, "big", 2<<20, nil, 0, 0); st != protocol.StatusTooLarge {
			t.Errorf("oversized set status %v", st)
		}
	})
	env.Run()
}

func TestEvictedKeyIsMissRAMOnly(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 4<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			s.Set(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
		}
		if _, _, _, _, st := s.Get(p, "k0000"); st != protocol.StatusNotFound {
			t.Errorf("evicted key served: %v", st)
		}
		if _, _, _, _, st := s.Get(p, "k0299"); st != protocol.StatusOK {
			t.Errorf("hot key missing: %v", st)
		}
	})
	env.Run()
}

func TestHybridRetainsEverything(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 4<<20, true)
	miss := 0
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			s.Set(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
		}
		for i := 0; i < 300; i++ {
			if _, _, _, _, st := s.Get(p, fmt.Sprintf("k%04d", i)); st != protocol.StatusOK {
				miss++
			}
		}
	})
	env.Run()
	if miss != 0 {
		t.Errorf("%d misses in hybrid store", miss)
	}
}

func TestStageProfileAccumulates(t *testing.T) {
	env := sim.NewEnv()
	s := newStoreWithPolicy(env, 4<<20, true, hybridslab.PolicyDirect)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			s.Set(p, fmt.Sprintf("k%04d", i), 32*1024, i, 0, 0)
		}
		s.Get(p, "k0000") // SSD load (direct I/O bypasses the page cache)
	})
	env.Run()
	if s.Prof.Total(metrics.StageSlabAlloc) == 0 {
		t.Errorf("slab-allocation stage empty")
	}
	if s.Prof.Total(metrics.StageCacheUpdate) == 0 {
		t.Errorf("cache-update stage empty")
	}
	if s.Prof.Total(metrics.StageCacheLoad) < blockdev.SATA().ReadTime(32*1024) {
		t.Errorf("cache-check-and-load %v does not reflect the SSD read",
			s.Prof.Total(metrics.StageCacheLoad))
	}
	// With heavy eviction, slab allocation must dominate cache update.
	if s.Prof.Total(metrics.StageSlabAlloc) < 10*s.Prof.Total(metrics.StageCacheUpdate) {
		t.Errorf("slab-alloc %v not dominating under eviction (update %v)",
			s.Prof.Total(metrics.StageSlabAlloc), s.Prof.Total(metrics.StageCacheUpdate))
	}
}

func TestHandleDispatch(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("op", func(p *sim.Proc) {
		set := s.Handle(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "a", ValueSize: 128, Value: "v"})
		if set.Status != protocol.StatusStored || set.ReqID != 1 {
			t.Errorf("set resp %+v", set)
		}
		get := s.Handle(p, &protocol.Request{Op: protocol.OpGet, ReqID: 2, Key: "a"})
		if get.Status != protocol.StatusOK || get.Value != "v" || get.ValueSize != 128 {
			t.Errorf("get resp %+v", get)
		}
		del := s.Handle(p, &protocol.Request{Op: protocol.OpDelete, ReqID: 3, Key: "a"})
		if del.Status != protocol.StatusDeleted {
			t.Errorf("del resp %+v", del)
		}
		bad := s.Handle(p, &protocol.Request{Op: protocol.Opcode(77), ReqID: 4})
		if bad.Status != protocol.StatusError {
			t.Errorf("bad-op resp %+v", bad)
		}
	})
	env.Run()
}
