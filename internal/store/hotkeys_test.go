package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

func TestHotSketchFindsHeavyHitter(t *testing.T) {
	h := newHotSketch(8)
	// 200 distinct cold keys churn the roster while one celebrity key
	// receives 30% of the traffic.
	for i := 0; i < 1000; i++ {
		if i%3 == 0 {
			h.Touch("celebrity")
		}
		h.Touch(fmt.Sprintf("cold%03d", i%200))
	}
	hot := h.Hot()
	want := protocol.KeyDigest("celebrity")
	found := false
	for _, d := range hot {
		if d == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("celebrity digest missing from hot set %v", hot)
	}
	if len(hot) > hotPublishMax {
		t.Errorf("hot set size %d exceeds cap %d", len(hot), hotPublishMax)
	}
}

func TestHotSketchUniformTrafficStaysCold(t *testing.T) {
	h := newHotSketch(8)
	for i := 0; i < 2000; i++ {
		h.Touch(fmt.Sprintf("k%04d", i%500))
	}
	if hot := h.Hot(); len(hot) != 0 {
		t.Errorf("uniform traffic published %d hot keys, want none", len(hot))
	}
}

func TestHotSketchAgingCoolsOff(t *testing.T) {
	h := newHotSketch(8)
	for i := 0; i < 500; i++ {
		h.Touch("fading-star")
	}
	if len(h.Hot()) == 0 {
		t.Fatal("heavy hitter not detected before aging")
	}
	// A handful of Age rounds with no reinforcing traffic must drop the
	// key below both publication floors.
	for r := 0; r < 10; r++ {
		h.Age()
	}
	if hot := h.Hot(); len(hot) != 0 {
		t.Errorf("hot set %v survived 10 aging rounds without traffic", hot)
	}
}

func TestCrawlerPublishesHotSet(t *testing.T) {
	env := sim.NewEnv()
	s := newStore(env, 16<<20, false)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			s.Set(p, fmt.Sprintf("k%02d", i), 1024, i, 0, 0)
		}
		// Celebrity read pattern: half the GETs hit one key.
		for i := 0; i < 400; i++ {
			s.Get(p, "k00")
			s.Get(p, fmt.Sprintf("k%02d", i%64))
		}
	})
	if err := s.StartCrawler(100*sim.Millisecond, 1000); err != nil {
		t.Fatalf("StartCrawler: %v", err)
	}
	env.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		s.StopCrawler()
	})
	env.Run()
	hot, version := s.HotSnapshot()
	if version == 0 {
		t.Fatal("hot-set version never advanced")
	}
	want := protocol.KeyDigest("k00")
	found := false
	for _, d := range hot {
		if d == want {
			found = true
		}
	}
	if !found {
		t.Errorf("hot snapshot %v missing the celebrity digest %d", hot, want)
	}
}
