package store

import (
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/verbs"
)

// This file implements the server-bypass read-side index: the store's live
// items published into registered MRs so clients resolve GET hits with
// one-sided RDMA READs and zero server CPU (RFP's remote-fetching paradigm,
// with HiStore's published-and-versioned index making it safe).
//
// Layout. The directory MR is a bucket array of fixed-size slots
// (protocol.DirSlotBytes each); bucket(key) = KeyDigest(key) mod Buckets.
// Each RAM-resident value is published as an immutable snapshot segment
// (protocol.DirSegment) at a fresh offset in the value MR; offsets grow
// monotonically and are never reused, so a segment that still exists at an
// offset IS the value that was published there — a client holding a cached
// offset either reads that exact snapshot or reads emptiness and falls
// back to RPC. Slots carry a seqlock-style version: odd while a mutation
// window is open, bumped to a fresh even value at every commit, so probing
// clients detect in-progress or changed state without locks.
//
// Coherence. The store calls PublishBegin/Publish/Unpublish around every
// command-path mutation; the slab manager's eviction notifications arrive
// through EvictionUpdate (identity-checked, since eviction may be acting on
// a superseded incarnation of a key). Crash quiesces the directory — all
// segments cleared, versions retained — so clients READing a dead server's
// still-registered MRs observe emptiness, never stale values.

// valArenaBytes sizes the value MR's virtual offset space. Offsets are
// monotonically allocated and never reused, so this only bounds total bytes
// ever published, not live bytes.
const valArenaBytes = 1 << 40

// dirEntry records where one key's snapshot lives (off = -1 when the key is
// published SSD-resident and has no READ-addressable segment).
type dirEntry struct {
	it  *hybridslab.Item
	off int64
	n   int
}

// Directory is the MR-backed published index. It implements ReadView.
type Directory struct {
	dirMR   *verbs.MR
	valMR   *verbs.MR
	buckets int
	// versions is the per-bucket seqlock; it survives Quiesce so slots
	// republished after a restart always carry advanced versions.
	versions []uint64
	owner    []string
	entries  map[string]*dirEntry
	nextOff  int64

	// Stats
	Publishes     int64
	Unpublishes   int64
	Displacements int64
}

// NewDirectory registers the directory and value MRs on pd (setup-time, no
// simulated cost — directory bring-up is not on the measured path).
// buckets ≤ 0 selects the default geometry.
func NewDirectory(pd *verbs.PD, buckets int) *Directory {
	if buckets <= 0 {
		buckets = 1 << 15
	}
	d := &Directory{
		dirMR:    pd.RegisterMRSetup(buckets * protocol.DirSlotBytes),
		valMR:    pd.RegisterMRSetup(valArenaBytes),
		buckets:  buckets,
		versions: make([]uint64, buckets),
		owner:    make([]string, buckets),
		entries:  make(map[string]*dirEntry),
	}
	// Segment-addressed from birth: a READ of an unpublished slot or
	// offset returns emptiness, not a whole-region payload.
	d.dirMR.ClearSegments()
	d.valMR.ClearSegments()
	return d
}

// Info describes the directory for the OpDirQuery bootstrap response.
func (d *Directory) Info() protocol.DirectoryInfo {
	return protocol.DirectoryInfo{DirMR: d.dirMR.LKey(), ValMR: d.valMR.LKey(), Buckets: d.buckets}
}

// Buckets returns the slot count.
func (d *Directory) Buckets() int { return d.buckets }

func (d *Directory) bucket(key string) int {
	return int(protocol.KeyDigest(key) % uint64(d.buckets))
}

func (d *Directory) slotOff(b int) int64 { return int64(b) * protocol.DirSlotBytes }

// alloc hands out a fresh, never-reused value offset.
func (d *Directory) alloc(n int) int64 {
	off := d.nextOff
	d.nextOff += int64(n)
	return off
}

// writeSlot publishes bucket b's slot for key at the bucket's current
// version.
func (d *Directory) writeSlot(b int, key string) {
	e := d.entries[key]
	if e == nil {
		return
	}
	it := e.it
	flags := it.Flags
	ssd := it.OnSSD()
	if ssd {
		flags |= protocol.DirSlotSSD
	}
	slot := protocol.DirSlot{
		Digest:  protocol.KeyDigest(key),
		Version: d.versions[b],
		Off:     e.off,
		Len:     e.n,
		SSD:     ssd,
		Flags:   flags,
		CAS:     it.CAS,
	}
	d.dirMR.SetSegment(d.slotOff(b), slot, protocol.DirSlotBytes)
}

// PublishBegin opens key's mutation window: the slot version goes odd so
// probing clients fall back to RPC until the commit. A no-op when key does
// not own its bucket (fresh insert, or displaced by a colliding key).
func (d *Directory) PublishBegin(key string) {
	b := d.bucket(key)
	if d.owner[b] != key {
		return
	}
	if d.versions[b]%2 == 0 {
		d.versions[b]++
	}
	d.writeSlot(b, key)
}

// Publish commits key's current item: the previous snapshot (and any
// colliding bucket occupant's) is cleared, a fresh immutable snapshot is
// published at a new offset, and the slot lands with a fresh even version.
// SSD-resident items publish slot metadata only, flagged so clients fall
// back to RPC for the value.
func (d *Directory) Publish(it *hybridslab.Item) {
	key := it.Key
	b := d.bucket(key)
	if own := d.owner[b]; own != "" && own != key {
		// Bucket collision: the displaced key leaves the directory
		// entirely — its segment must be cleared, or clients holding its
		// cached offset would keep reading a snapshot that no directory
		// state invalidates.
		if e := d.entries[own]; e != nil {
			if e.off >= 0 {
				d.valMR.ClearSegment(e.off)
			}
			delete(d.entries, own)
		}
		d.Displacements++
	}
	if e := d.entries[key]; e != nil && e.off >= 0 {
		d.valMR.ClearSegment(e.off)
	}
	v := d.versions[b]
	if v%2 == 1 {
		v++
	} else {
		v += 2
	}
	d.versions[b] = v
	d.owner[b] = key

	e := &dirEntry{it: it, off: -1}
	if !it.OnSSD() && !it.Dropped() {
		seg := protocol.DirSegment{
			Digest:    protocol.KeyDigest(key),
			Version:   v,
			ValueSize: it.ValueSize,
			Flags:     it.Flags,
			CAS:       it.CAS,
			ExpireAt:  int64(it.ExpireAt),
			Value:     it.Value,
		}
		e.n = seg.WireSize()
		e.off = d.alloc(e.n)
		d.valMR.SetSegment(e.off, seg, e.n)
	}
	d.entries[key] = e
	d.writeSlot(b, key)
	d.Publishes++
}

// Unpublish removes key from the directory: snapshot cleared, slot cleared,
// version advanced so in-flight probes that saw the old slot fail their
// validation.
func (d *Directory) Unpublish(key string) {
	b := d.bucket(key)
	if e := d.entries[key]; e != nil {
		if e.off >= 0 {
			d.valMR.ClearSegment(e.off)
		}
		delete(d.entries, key)
	}
	if d.owner[b] == key {
		v := d.versions[b]
		if v%2 == 1 {
			v++
		} else {
			v += 2
		}
		d.versions[b] = v
		d.owner[b] = ""
		d.dirMR.ClearSegment(d.slotOff(b))
	}
	d.Unpublishes++
}

// EvictionUpdate applies a slab-manager eviction transition. Eviction can
// act on a superseded incarnation of a key (an old item still in a flush
// window after a replace), so the event is identity-checked against the
// published entry and ignored unless it concerns the current one.
func (d *Directory) EvictionUpdate(it *hybridslab.Item, ev hybridslab.NotifyEvent) {
	e := d.entries[it.Key]
	if e == nil || e.it != it {
		return
	}
	switch ev {
	case hybridslab.EvictStaged:
		d.PublishBegin(it.Key)
	case hybridslab.EvictDropped:
		d.Unpublish(it.Key)
	case hybridslab.EvictLanded, hybridslab.EvictRestored:
		d.Publish(it)
	}
}

// Quiesce empties the published state (crash, or the prelude to a cold
// restart): every slot and snapshot reads as emptiness, so clients READing
// the dead server's still-registered MRs fall back to RPC rather than
// observe values that may not survive recovery. Versions are retained, so
// republished slots never reuse a version an old probe might hold.
func (d *Directory) Quiesce() {
	d.dirMR.ClearSegments()
	d.valMR.ClearSegments()
	d.entries = make(map[string]*dirEntry)
	for i := range d.owner {
		d.owner[i] = ""
	}
}
