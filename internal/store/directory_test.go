package store

import (
	"fmt"
	"testing"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/verbs"
)

func newTestDirectory(buckets int) *Directory {
	env := sim.NewEnv()
	fab := simnet.New(env, simnet.FDRInfiniBand())
	pd := verbs.OpenDevice(fab.AddNode("srv")).AllocPD()
	return NewDirectory(pd, buckets)
}

func (d *Directory) slotFor(t *testing.T, key string) (protocol.DirSlot, bool) {
	t.Helper()
	v, n := d.dirMR.Segment(d.slotOff(d.bucket(key)))
	if n == 0 {
		return protocol.DirSlot{}, false
	}
	slot, ok := v.(protocol.DirSlot)
	if !ok {
		t.Fatalf("slot segment holds %T", v)
	}
	return slot, true
}

func (d *Directory) segmentFor(t *testing.T, key string) (protocol.DirSegment, bool) {
	t.Helper()
	e := d.entries[key]
	if e == nil || e.off < 0 {
		return protocol.DirSegment{}, false
	}
	v, n := d.valMR.Segment(e.off)
	if n == 0 {
		return protocol.DirSegment{}, false
	}
	seg, ok := v.(protocol.DirSegment)
	if !ok {
		t.Fatalf("value segment holds %T", v)
	}
	return seg, true
}

func TestDirectoryPublishLifecycle(t *testing.T) {
	d := newTestDirectory(64)
	it := &hybridslab.Item{Key: "k", Value: "v1", ValueSize: 100, Flags: 7, CAS: 1}

	d.Publish(it)
	slot, ok := d.slotFor(t, "k")
	if !ok {
		t.Fatal("no slot after Publish")
	}
	if slot.Digest != protocol.KeyDigest("k") || slot.Version%2 != 0 || slot.SSD {
		t.Fatalf("bad slot: %+v", slot)
	}
	seg, ok := d.segmentFor(t, "k")
	if !ok {
		t.Fatal("no value segment after Publish")
	}
	if seg.Value != "v1" || seg.Version != slot.Version || seg.CAS != 1 {
		t.Fatalf("bad segment: %+v", seg)
	}

	// Mutation window: version goes odd, probing clients must fall back.
	d.PublishBegin("k")
	if s, _ := d.slotFor(t, "k"); s.Version%2 != 1 {
		t.Fatalf("PublishBegin left even version %d", s.Version)
	}

	// Commit of the replacement: old snapshot cleared, fresh even version,
	// fresh never-reused offset.
	oldOff := d.entries["k"].off
	it2 := &hybridslab.Item{Key: "k", Value: "v2", ValueSize: 100, CAS: 2}
	d.Publish(it2)
	if v, n := d.valMR.Segment(oldOff); n != 0 {
		t.Fatalf("superseded segment still readable: %v", v)
	}
	if d.entries["k"].off == oldOff {
		t.Fatal("value offset reused")
	}
	slot2, _ := d.slotFor(t, "k")
	if slot2.Version%2 != 0 || slot2.Version <= slot.Version {
		t.Fatalf("commit version %d not a fresh even after %d", slot2.Version, slot.Version)
	}
	if seg2, _ := d.segmentFor(t, "k"); seg2.Value != "v2" || seg2.Version != slot2.Version {
		t.Fatalf("bad replacement segment: %+v", seg2)
	}

	// Unpublish: slot and snapshot both read as emptiness, version advances.
	off := d.entries["k"].off
	d.Unpublish("k")
	if _, ok := d.slotFor(t, "k"); ok {
		t.Fatal("slot readable after Unpublish")
	}
	if _, n := d.valMR.Segment(off); n != 0 {
		t.Fatal("segment readable after Unpublish")
	}
	if d.versions[d.bucket("k")] <= slot2.Version {
		t.Fatal("Unpublish did not advance the version")
	}
}

func TestDirectoryCollisionDisplacement(t *testing.T) {
	d := newTestDirectory(1) // every key collides
	a := &hybridslab.Item{Key: "a", Value: "va", ValueSize: 10}
	b := &hybridslab.Item{Key: "b", Value: "vb", ValueSize: 10}
	d.Publish(a)
	offA := d.entries["a"].off
	d.Publish(b)
	if d.Displacements != 1 {
		t.Fatalf("Displacements = %d", d.Displacements)
	}
	// The displaced key's snapshot must be cleared: clients holding its
	// cached offset would otherwise read a forever-stale value, because no
	// directory state invalidates it.
	if _, n := d.valMR.Segment(offA); n != 0 {
		t.Fatal("displaced key's segment still readable")
	}
	if d.entries["a"] != nil {
		t.Fatal("displaced key still has an entry")
	}
	if slot, _ := d.slotFor(t, "b"); slot.Digest != protocol.KeyDigest("b") {
		t.Fatalf("slot not owned by displacing key: %+v", slot)
	}
}

func TestDirectoryQuiesceKeepsVersions(t *testing.T) {
	d := newTestDirectory(64)
	it := &hybridslab.Item{Key: "k", Value: "v", ValueSize: 10}
	d.Publish(it)
	ver := d.versions[d.bucket("k")]
	off := d.entries["k"].off

	d.Quiesce()
	if _, ok := d.slotFor(t, "k"); ok {
		t.Fatal("slot readable after Quiesce")
	}
	if _, n := d.valMR.Segment(off); n != 0 {
		t.Fatal("segment readable after Quiesce")
	}
	if d.versions[d.bucket("k")] != ver {
		t.Fatal("Quiesce reset versions — republished slots could reuse one an old probe holds")
	}

	// Republish after recovery: version strictly advances past the pre-crash
	// one.
	d.Publish(it)
	if got := d.versions[d.bucket("k")]; got <= ver || got%2 != 0 {
		t.Fatalf("post-recovery version %d not a fresh even after %d", got, ver)
	}
}

func TestDirectoryEvictionIdentityCheck(t *testing.T) {
	d := newTestDirectory(64)
	cur := &hybridslab.Item{Key: "k", Value: "new", ValueSize: 10}
	stale := &hybridslab.Item{Key: "k", Value: "old", ValueSize: 10}
	d.Publish(cur)
	ver := d.versions[d.bucket("k")]

	// Eviction of a superseded incarnation must not disturb the published
	// current one.
	d.EvictionUpdate(stale, hybridslab.EvictDropped)
	if d.entries["k"] == nil || d.versions[d.bucket("k")] != ver {
		t.Fatal("stale item's eviction disturbed the current entry")
	}

	d.EvictionUpdate(cur, hybridslab.EvictDropped)
	if d.entries["k"] != nil {
		t.Fatal("current item's eviction did not unpublish")
	}
}

func TestDirectorySSDResidentPublishesMetadataOnly(t *testing.T) {
	d := newTestDirectory(64)
	// An on-SSD item has no exported setter, so drive one through a real
	// hybrid store: overcommit RAM until "k" is flushed out.
	env := sim.NewEnv()
	s := newStore(env, 2<<20, true)
	env.Spawn("seed", func(p *sim.Proc) {
		s.Set(p, "k", 32<<10, "v", 0, 0)
		for i := 0; i < 128 && !s.table["k"].OnSSD(); i++ {
			s.Set(p, fmt.Sprintf("fill%d", i), 32<<10, i, 0, 0)
		}
	})
	env.Run()
	it := s.table["k"]
	if it == nil || !it.OnSSD() {
		t.Skip("could not flush the item to SSD with this geometry")
	}
	d.Publish(it)
	slot, ok := d.slotFor(t, "k")
	if !ok {
		t.Fatal("no slot for SSD-resident item")
	}
	if !slot.SSD || slot.Flags&protocol.DirSlotSSD == 0 {
		t.Fatalf("SSD flags not set: %+v", slot)
	}
	if e := d.entries["k"]; e.off != -1 {
		t.Fatalf("SSD-resident item published a value segment at %d", e.off)
	}
}
