// Package metrics provides the measurement plumbing for the experiment
// harness: latency histograms over virtual time, the paper's six-stage
// time-wise breakdown accumulators (Figures 2 and 6), and throughput /
// overlap helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hybridkv/internal/sim"
)

// Hist is a latency histogram with logarithmic buckets (~4% resolution),
// good from 1 ns to ~100 s of virtual time.
type Hist struct {
	buckets []int64
	count   int64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
}

const histBucketsPerOctave = 16

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{min: math.MaxInt64}
}

func bucketOf(d sim.Time) int {
	if d < 1 {
		d = 1
	}
	return int(math.Log2(float64(d)) * histBucketsPerOctave)
}

func bucketValue(idx int) sim.Time {
	return sim.Time(math.Exp2(float64(idx) / histBucketsPerOctave))
}

// Add records one sample.
func (h *Hist) Add(d sim.Time) {
	idx := bucketOf(d)
	if idx >= len(h.buckets) {
		nb := make([]int64, idx+1)
		copy(nb, h.buckets)
		h.buckets = nb
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the total of all samples.
func (h *Hist) Sum() sim.Time { return h.sum }

// Mean returns the average sample, or 0 when empty.
func (h *Hist) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Hist) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Hist) Max() sim.Time { return h.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with ~4% bucket resolution.
func (h *Hist) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	want := int64(q * float64(h.count-1))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > want {
			return bucketValue(i)
		}
	}
	return h.max
}

// String renders a one-line summary.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
}

// Stage labels for the six critical stages of a Memcached Set/Get
// (Section III-A of the paper).
const (
	StageSlabAlloc   = "slab-allocation"
	StageCacheLoad   = "cache-check-and-load"
	StageCacheUpdate = "cache-update"
	StageResponse    = "server-response"
	StageClientWait  = "client-wait"
	StageMissPenalty = "miss-penalty"
)

// Stages lists the breakdown stages in presentation order (as in Fig. 2).
var Stages = []string{
	StageSlabAlloc, StageCacheLoad, StageCacheUpdate,
	StageResponse, StageClientWait, StageMissPenalty,
}

// Breakdown accumulates per-stage virtual time.
type Breakdown struct {
	total map[string]sim.Time
	ops   map[string]int64
}

// NewBreakdown returns an empty accumulator.
func NewBreakdown() *Breakdown {
	return &Breakdown{total: make(map[string]sim.Time), ops: make(map[string]int64)}
}

// Add records d of time in the given stage.
func (b *Breakdown) Add(stage string, d sim.Time) {
	b.total[stage] += d
	b.ops[stage]++
}

// Snapshot returns an independent copy (freeze the state before a
// measurement phase, then Sub it away afterwards).
func (b *Breakdown) Snapshot() *Breakdown {
	c := NewBreakdown()
	for k, v := range b.total {
		c.total[k] = v
	}
	for k, v := range b.ops {
		c.ops[k] = v
	}
	return c
}

// Sub returns b minus an earlier snapshot: the activity of just the
// measurement phase.
func (b *Breakdown) Sub(snap *Breakdown) *Breakdown {
	c := NewBreakdown()
	for k, v := range b.total {
		if d := v - snap.total[k]; d != 0 {
			c.total[k] = d
		}
	}
	for k, v := range b.ops {
		if d := v - snap.ops[k]; d != 0 {
			c.ops[k] = d
		}
	}
	return c
}

// Merge folds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for k, v := range other.total {
		b.total[k] += v
	}
	for k, v := range other.ops {
		b.ops[k] += v
	}
}

// Total returns the accumulated time in a stage.
func (b *Breakdown) Total(stage string) sim.Time { return b.total[stage] }

// Ops returns the number of samples recorded for a stage.
func (b *Breakdown) Ops(stage string) int64 { return b.ops[stage] }

// PerOp returns stage time divided across n operations.
func (b *Breakdown) PerOp(stage string, n int64) sim.Time {
	if n == 0 {
		return 0
	}
	return b.total[stage] / sim.Time(n)
}

// GrandTotal sums every stage.
func (b *Breakdown) GrandTotal() sim.Time {
	var t sim.Time
	for _, v := range b.total {
		t += v
	}
	return t
}

// Render formats the breakdown as per-op rows over n operations.
func (b *Breakdown) Render(n int64) string {
	var sb strings.Builder
	for _, s := range Stages {
		if b.total[s] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-22s %12v/op\n", s, b.PerOp(s, n))
	}
	return sb.String()
}

// Counter names the fault, retry, and availability counters the client
// runtime maintains. Typed constants replace the stringly-typed keys that
// used to be scattered through internal/core: call sites increment with
// Counters.Inc and read with Counters.Val, so a typo is a compile error
// instead of a silently-zero counter.
type Counter string

const (
	// Retry/guard counters.
	CRetries      Counter = "retries"        // guard retransmissions
	CTimeouts     Counter = "timeouts"       // attempts abandoned at the deadline
	CCancels      Counter = "cancels"        // caller-initiated cancellations
	CFailovers    Counter = "failovers"      // retransmissions redirected to a replica
	CFailoverSkip Counter = "failover-skips" // failover candidates skipped (down/open)
	CAckedRetries Counter = "acked-retries"  // retransmits of already-buffer-acked reqs
	CHedges       Counter = "hedges"         // hedge attempts actually spawned
	// CHedgesSuppressed counts hedges skipped because the request had
	// already been resolved by the bypass fast path; see WithHedge.
	CHedgesSuppressed Counter = "hedges-suppressed"

	// Server-pushback counters.
	CStaleResponses Counter = "stale-responses" // responses for superseded attempts
	CBusy           Counter = "busy"            // StatusBusy shed rejections
	CRecovering     Counter = "recovering"      // StatusRecovering rejections
	CNoReplica      Counter = "no-replica"      // StatusNoReplica chain failures

	// Circuit-breaker counters.
	CBreakerOpen     Counter = "breaker-open"
	CBreakerHalfOpen Counter = "breaker-halfopen"
	CBreakerClose    Counter = "breaker-close"
	CBreakerReroutes Counter = "breaker-reroutes"

	// Server-bypass read-path counters.
	CBypassHits       Counter = "bypass-hits"       // GETs resolved by one-sided READs
	CBypassFastPath   Counter = "bypass-fastpath"   // hits resolved by a single cached-location READ
	CBypassFallbacks  Counter = "bypass-fallbacks"  // bypass attempts that fell back to RPC
	CBypassBootstraps Counter = "bypass-bootstraps" // OpDirQuery directory fetches

	// Hot-key serving counters.
	CBypassReprobes      Counter = "bypass-reprobes"       // transient seqlock doubts re-probed instead of RPC fallback
	CBypassReads         Counter = "bypass-reads"          // one-sided READs posted by the bypass path
	CBypassReadDoorbells Counter = "bypass-read-doorbells" // doorbells those READs cost after coalescing
	CHotFanouts          Counter = "hot-fanouts"           // hot-key GETs routed across the replica set
	CHotRefreshes        Counter = "hot-refreshes"         // piggybacked hot-set refresh queries
	CHotSamples          Counter = "hot-samples"           // GETs routed via RPC to feed the server's heat sketch

	// Dynamic membership counters.
	CEpochInvalidations Counter = "epoch-invalidations" // placement caches dropped on a membership epoch change
	CRetiredConns       Counter = "retired-conns"       // decommissioned servers whose client state was released

	// Gray-failure counters. Brown-out is the deprioritized-but-routable
	// breaker state driven by the latency health tracker: the connection
	// still answers, so it is never opened, but GET routing prefers a
	// healthy replica while one exists.
	CBrownoutsEntered Counter = "brownouts-entered" // connections demoted to brown-out by the health tracker
	CBrownoutsExited  Counter = "brownouts-exited"  // connections restored to healthy
	CSlowRoutedGets   Counter = "slow-routed-gets"  // GETs steered away from a browned-out replica
	CPacerDeferrals   Counter = "pacer-deferrals"   // background replication rounds deferred to foreground load
	CHealthSamples    Counter = "health-samples"    // per-op service-time samples fed to the health tracker

	// Data-integrity counters (server-side; surfaced through Client.Stats
	// via the cluster's integrity hook rather than the client's own bag).
	CScrubCorruptionsFound    Counter = "scrub-corruptions-found"    // same-epoch content divergences detected by scrub
	CScrubCorruptionsRepaired Counter = "scrub-corruptions-repaired" // divergences overwritten with the coordinator's copy
	CQuarantinedPages         Counter = "quarantined-pages"          // SSD pages pulled from reuse after failed verification
)

// Counters is a named-counter bag for fault, retry, and availability
// accounting. The zero value is not usable; call NewCounters.
type Counters struct {
	vals map[string]int64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) { c.vals[name] += n }

// Get returns the named counter (0 if never touched).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// Inc increments a typed counter by one (every runtime site counts single
// events).
func (c *Counters) Inc(ctr Counter) { c.vals[string(ctr)]++ }

// Val returns a typed counter's value.
func (c *Counters) Val(ctr Counter) int64 { return c.vals[string(ctr)] }

// Names returns the touched counter names in sorted order.
func (c *Counters) Names() []string {
	out := make([]string, 0, len(c.vals))
	for k := range c.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge folds other's counters into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.vals {
		c.vals[k] += v
	}
}

// Snapshot returns an independent copy.
func (c *Counters) Snapshot() *Counters {
	s := NewCounters()
	s.Merge(c)
	return s
}

// Render formats the non-zero counters one per line, sorted by name.
func (c *Counters) Render() string {
	var sb strings.Builder
	for _, k := range c.Names() {
		if c.vals[k] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-22s %12d\n", k, c.vals[k])
	}
	return sb.String()
}

// Throughput returns operations per (virtual) second.
func Throughput(ops int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// Series is a labeled sequence of (x, y) points — one figure line.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Append adds one point.
func (s *Series) Append(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Table renders aligned rows for a set of series sharing labels.
func Table(title string, series ...*Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %-24s", "")
	for _, s := range series {
		fmt.Fprintf(&sb, " %16s", s.Name)
	}
	sb.WriteByte('\n')
	for i, label := range series[0].Labels {
		fmt.Fprintf(&sb, "  %-24s", label)
		for _, s := range series {
			if i < len(s.Values) {
				fmt.Fprintf(&sb, " %16.2f", s.Values[i])
			} else {
				fmt.Fprintf(&sb, " %16s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortedStages returns the stages present in b, presentation order first,
// then extras alphabetically (for tests).
func (b *Breakdown) SortedStages() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range Stages {
		if b.total[s] != 0 {
			out = append(out, s)
			seen[s] = true
		}
	}
	var extra []string
	for s := range b.total {
		if !seen[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
