package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hybridkv/internal/sim"
)

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty hist not all-zero: %s", h)
	}
}

func TestHistBasicStats(t *testing.T) {
	h := NewHist()
	for _, d := range []sim.Time{10, 20, 30, 40} {
		h.Add(d * sim.Microsecond)
	}
	if h.Count() != 4 {
		t.Errorf("count %d", h.Count())
	}
	if h.Mean() != 25*sim.Microsecond {
		t.Errorf("mean %v", h.Mean())
	}
	if h.Min() != 10*sim.Microsecond || h.Max() != 40*sim.Microsecond {
		t.Errorf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	h := NewHist()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		h.Add(sim.Time(rng.Intn(1000)+1) * sim.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// True median ≈ 500µs; log buckets give ~4.4% resolution.
	if p50 < 450*sim.Microsecond || p50 > 560*sim.Microsecond {
		t.Errorf("p50 %v, want ≈500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*sim.Microsecond || p99 > 1100*sim.Microsecond {
		t.Errorf("p99 %v, want ≈990µs", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Errorf("quantiles not monotone")
	}
}

// Property: mean is always within [min, max] and quantiles are monotone.
func TestHistInvariantsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHist()
		for _, v := range raw {
			h.Add(sim.Time(v%1_000_000) + 1)
		}
		if h.Mean() < h.Min() || h.Mean() > h.Max() {
			return false
		}
		prev := sim.Time(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add(StageSlabAlloc, 10*sim.Microsecond)
	b.Add(StageSlabAlloc, 30*sim.Microsecond)
	b.Add(StageClientWait, 100*sim.Microsecond)
	if b.Total(StageSlabAlloc) != 40*sim.Microsecond {
		t.Errorf("total %v", b.Total(StageSlabAlloc))
	}
	if b.Ops(StageSlabAlloc) != 2 {
		t.Errorf("ops %d", b.Ops(StageSlabAlloc))
	}
	if b.PerOp(StageSlabAlloc, 4) != 10*sim.Microsecond {
		t.Errorf("per-op %v", b.PerOp(StageSlabAlloc, 4))
	}
	if b.PerOp(StageSlabAlloc, 0) != 0 {
		t.Errorf("per-op with zero ops should be 0")
	}
	if b.GrandTotal() != 140*sim.Microsecond {
		t.Errorf("grand total %v", b.GrandTotal())
	}
}

func TestBreakdownMerge(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add(StageCacheLoad, 5*sim.Microsecond)
	b.Add(StageCacheLoad, 7*sim.Microsecond)
	b.Add(StageResponse, 2*sim.Microsecond)
	a.Merge(b)
	if a.Total(StageCacheLoad) != 12*sim.Microsecond || a.Ops(StageCacheLoad) != 2 {
		t.Errorf("merged load %v/%d", a.Total(StageCacheLoad), a.Ops(StageCacheLoad))
	}
	if a.Total(StageResponse) != 2*sim.Microsecond {
		t.Errorf("merged response %v", a.Total(StageResponse))
	}
}

func TestBreakdownRenderAndSortedStages(t *testing.T) {
	b := NewBreakdown()
	b.Add(StageClientWait, 8*sim.Microsecond)
	b.Add(StageSlabAlloc, 2*sim.Microsecond)
	b.Add("custom-stage", 1*sim.Microsecond)
	out := b.Render(1)
	if !strings.Contains(out, StageClientWait) || !strings.Contains(out, StageSlabAlloc) {
		t.Errorf("render missing stages:\n%s", out)
	}
	got := b.SortedStages()
	want := []string{StageSlabAlloc, StageClientWait, "custom-stage"}
	if len(got) != len(want) {
		t.Fatalf("stages %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage order %v, want %v", got, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, sim.Second); got != 1000 {
		t.Errorf("throughput %v", got)
	}
	if got := Throughput(500, 500*sim.Millisecond); got != 1000 {
		t.Errorf("throughput %v", got)
	}
	if Throughput(5, 0) != 0 {
		t.Errorf("zero-time throughput should be 0")
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "RDMA-Mem"}
	a.Append("32K", 14.2)
	a.Append("64K", 20.1)
	b := &Series{Name: "IPoIB-Mem"}
	b.Append("32K", 55.0)
	b.Append("64K", 90.3)
	out := Table("Fig 1(a)", a, b)
	for _, want := range []string{"Fig 1(a)", "RDMA-Mem", "IPoIB-Mem", "32K", "64K", "14.20", "90.30"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
