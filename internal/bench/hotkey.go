package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/history"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The hotkey experiment: a celebrity-key flash crowd — steady zipf traffic,
// then a burst window in which nearly every client asks for the same key —
// driven against three read paths: plain RPC, server-bypass READs, and
// bypass with hot-key replicated-read fan-out. Without fan-out every
// celebrity GET lands on the key's primary, so the burst saturates one
// server's egress while its replicas idle; with fan-out the servers' sketches
// detect the key (fed by the 1-in-N RPC heat sample), the crawler publishes
// it, clients learn it on their next piggybacked directory refresh, and the
// burst spreads across the whole replica set. The headline is the R=3
// goodput ratio of fan-out over plain bypass. A separate chaos cell re-runs
// the CAS-chain history checker under fan-out plus whole-node kills: spread
// reads must never surface a value older than the last acked write.

const (
	hotServers   = 3
	hotClients   = 3
	hotWorkers   = 8 // per client
	hotKeys      = 384
	hotValueSize = 8 << 10

	// Arrival: steady zipf at hotThink per worker, then a hotSpike× flash
	// crowd for most of the run. During the burst 7 of 8 ops target the
	// celebrity key.
	hotThink      = 8 * sim.Microsecond
	hotSpike      = 16.0
	hotBurstStart = 500 * sim.Microsecond
	hotBurstLen   = 40 * sim.Millisecond

	// hotCrawl is the per-server LRU-crawler cadence; each pass also
	// distills the access sketch into the published hot set.
	hotCrawl = 200 * sim.Microsecond
)

// hotRun is one measured cell.
type hotRun struct {
	GetLat  *metrics.Hist
	Ops     int64
	OK      int64
	Elapsed sim.Time
	Stats   core.ClientStats // summed over clients
}

func (r *hotRun) kops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / (float64(r.Elapsed) / float64(sim.Second)) / 1e3
}

func (r *hotRun) fallbackPct() float64 {
	total := r.Stats.BypassHits + r.Stats.BypassFallbacks
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Stats.BypassFallbacks) / float64(total)
}

// runHotkey executes one cell: preload, start the crawlers, drive the flash
// crowd, and stop the crawlers once every driver has finished (a supervisor
// waits on a done queue — the periodic crawlers would otherwise keep the
// simulation from draining).
func runHotkey(bypass, fanout bool, replicas, ops int) *hotRun {
	cl := cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBI,
		Profile:           cluster.ClusterA(),
		Servers:           hotServers,
		Clients:           hotClients,
		ServerMem:         16 << 20, // dataset fits: no eviction noise
		ReplicationFactor: replicas,
		Bypass:            bypass,
		HotFanout:         fanout,
	})
	cl.Preload(hotKeys, hotValueSize, keyOf)
	celeb := keyOf(0)

	for _, s := range cl.Servers {
		if err := s.Store().StartCrawler(hotCrawl, 4096); err != nil {
			panic("bench: hotkey crawler: " + err.Error())
		}
	}

	arr := workload.Arrival{
		Schedule: workload.FlashCrowd, Base: hotThink,
		Spike: hotSpike, BurstStart: hotBurstStart, BurstLen: hotBurstLen,
	}
	run := &hotRun{GetLat: metrics.NewHist()}
	drivers := hotClients * hotWorkers
	perWorker := ops / drivers
	run.Ops = int64(perWorker * drivers)
	done := sim.NewQueue[int](cl.Env, 0)
	start := cl.Env.Now()

	for ci := 0; ci < hotClients; ci++ {
		c := cl.Clients[ci]
		for w := 0; w < hotWorkers; w++ {
			gen := workload.New(workload.Config{
				Keys: hotKeys, ValueSize: hotValueSize, ReadFraction: 0.95,
				Pattern: workload.Zipf, ZipfS: zipfFits,
				Seed: int64(1000 + ci*hotWorkers + w),
			})
			cl.Env.Spawn(fmt.Sprintf("hot-drv-c%d-w%d", ci, w), func(p *sim.Proc) {
				defer done.TryPut(1)
				for i := 0; i < perWorker; i++ {
					rel := p.Now() - start
					kind, key := workload.OpGet, celeb
					if !arr.InBurst(rel) || i%8 == 0 {
						kind, key = gen.Next()
					}
					if kind == workload.OpSet {
						req, err := c.Issue(p, core.Op{
							Code: protocol.OpSet, Key: key,
							ValueSize: hotValueSize, Value: key,
						})
						if err != nil {
							panic("bench: hotkey set issue: " + err.Error())
						}
						c.Wait(p, req)
						if req.Status == protocol.StatusStored {
							run.OK++
						}
					} else {
						t0 := p.Now()
						req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key})
						if err != nil {
							panic("bench: hotkey get issue: " + err.Error())
						}
						c.Wait(p, req)
						run.GetLat.Add(p.Now() - t0)
						if req.Status == protocol.StatusOK {
							run.OK++
						}
					}
					p.Sleep(arr.Think(p.Now() - start))
				}
			})
		}
	}
	cl.Env.Spawn("hot-supervisor", func(p *sim.Proc) {
		for i := 0; i < drivers; i++ {
			done.Get(p)
		}
		run.Elapsed = p.Now() - start
		for _, s := range cl.Servers {
			s.Store().StopCrawler()
		}
	})
	cl.Env.Run()
	for _, c := range cl.Clients {
		st := c.Stats()
		run.Stats.BypassHits += st.BypassHits
		run.Stats.BypassFallbacks += st.BypassFallbacks
		run.Stats.BypassReprobes += st.BypassReprobes
		run.Stats.BypassReads += st.BypassReads
		run.Stats.BypassReadDoorbells += st.BypassReadDoorbells
		run.Stats.HotFanouts += st.HotFanouts
		run.Stats.HotRefreshes += st.HotRefreshes
		run.Stats.HotSamples += st.HotSamples
	}
	return run
}

// runHotChaos is the safety cell: R=3 with bypass + fan-out, CAS-chain
// writers and auto-path readers hammering a handful of keys hot, whole-node
// kills (RAM-only, then RAM+SSD) mid-run, and the replicated history checker
// over every logged operation. Fan-out must never surface a stale read:
// every replica applies an acked write before the client sees the ack, and a
// cold-recovered node withholds suspect keys from both read paths.
func runHotChaos(rounds int) (log *history.Log, fanouts int64) {
	const (
		writers  = 3
		keysPerW = 2
		readers  = 3
		valSize  = 4 << 10
	)
	cl := cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBI,
		Profile:           cluster.ClusterA(),
		Servers:           hotServers,
		Clients:           1,
		ServerMem:         8 << 20,
		ReplicationFactor: 3,
		Bypass:            true,
		HotFanout:         true,
	})
	for _, s := range cl.Servers {
		if err := s.Store().StartCrawler(hotCrawl, 4096); err != nil {
			panic("bench: hotkey chaos crawler: " + err.Error())
		}
	}
	c := cl.Clients[0]
	rp := core.RetryPolicy{
		MaxAttempts:    8,
		AttemptTimeout: 8 * sim.Millisecond,
		Backoff:        100 * sim.Microsecond,
		MaxBackoff:     2 * sim.Millisecond,
		Jitter:         -1,
		Seed:           17,
		Failover:       true,
	}
	guard := []core.IssueOption{core.WithDeadline(60 * sim.Millisecond), core.WithRetry(rp)}

	log = &history.Log{Replicated: true}
	expected := 0
	drivers := writers + readers
	done := sim.NewQueue[int](cl.Env, 0)

	// Warm-up: the chaos cell tests safety under fan-out, not detection
	// latency (the perf cells own that), so push the six contended keys over
	// the sketch threshold with forced-RPC reads, give the crawler a pass to
	// publish, and drive enough GET issues past the refresh pacing that the
	// client has learned the set before any driver starts. Nothing here is
	// logged.
	warm := cl.Env.NewEvent()
	cl.Env.Spawn("hot-chaos-warm", func(p *sim.Proc) {
		seed := func(n int) {
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("hot:w%d:k%d", i%writers, (i/writers)%keysPerW)
				req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key},
					core.WithReadPath(core.ReadRPC))
				if err != nil {
					panic("bench: hotkey chaos warm: " + err.Error())
				}
				c.Wait(p, req)
			}
		}
		seed(256)                     // heat the sketch (and trip one refresh)
		p.Sleep(2 * hotCrawl)         // let a crawl pass publish the set
		seed(256)                     // the refresh this trips learns it
		p.Sleep(50 * sim.Microsecond) // let the refresh response land
		warm.Fire()
	})

	// Writers: per-key CAS chains, sequence number as value. A fanned-out
	// read may return a backup's CAS token, which the primary rejects — the
	// chain just re-syncs next round; what it must never do is return a seq
	// older than the last acked write.
	for w := 0; w < writers; w++ {
		w := w
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("hot-chaos-writer%d", w), func(p *sim.Proc) {
			defer done.TryPut(1)
			p.Wait(warm)
			next := make([]uint64, keysPerW)
			for r := 0; r < rounds; r++ {
				ki := r % keysPerW
				key := fmt.Sprintf("hot:w%d:k%d", w, ki)
				t0 := p.Now()
				rreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, guard...)
				if err != nil {
					panic("bench: hotkey chaos read: " + err.Error())
				}
				c.Wait(p, rreq)
				rerr := rreq.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = rreq.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: w, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})

				next[ki]++
				seqW := next[ki]
				op := core.Op{Code: protocol.OpAdd, Key: key, ValueSize: valSize, Value: seqW}
				if hit {
					op = core.Op{Code: protocol.OpCAS, Key: key, ValueSize: valSize, Value: seqW, CAS: rreq.CAS}
				}
				t1 := p.Now()
				wreq, err := c.Issue(p, op, guard...)
				if err != nil {
					panic("bench: hotkey chaos write: " + err.Error())
				}
				c.Wait(p, wreq)
				werr := wreq.Err()
				log.Record(history.Entry{
					Worker: w, Kind: history.Write, Key: key, Seq: seqW,
					OK:       werr == nil,
					Acked:    wreq.Acked() && (werr == nil || errors.Is(werr, core.ErrDeadlineExceeded)),
					IssuedAt: t1, CompletedAt: p.Now(),
				})
				p.Sleep(120 * sim.Microsecond)
			}
		})
	}

	// Readers: auto-path GETs over the same six keys — hammering them hot so
	// the sampled sketch publishes them and reads fan out mid-kill-schedule.
	for rd := 0; rd < readers; rd++ {
		rd := rd
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("hot-chaos-reader%d", rd), func(p *sim.Proc) {
			defer done.TryPut(1)
			p.Wait(warm)
			for r := 0; r < rounds*2; r++ {
				key := fmt.Sprintf("hot:w%d:k%d", (rd+r)%writers, r%keysPerW)
				t0 := p.Now()
				req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, guard...)
				if err != nil {
					panic("bench: hotkey chaos reader: " + err.Error())
				}
				c.Wait(p, req)
				rerr := req.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = req.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: writers + rd, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})
				p.Sleep(40 * sim.Microsecond)
			}
		})
	}

	// Kill schedule: server 0 loses RAM (SSD intact — recovered keys are
	// suspect until confirmed), later server 1 loses everything.
	cl.Env.Spawn("hot-chaos-kills", func(p *sim.Proc) {
		p.Wait(warm)
		s0, s1 := cl.Servers[0], cl.Servers[1]
		p.Sleep(3 * sim.Millisecond)
		from := p.Now()
		s0.Kill(false)
		p.Sleep(300 * sim.Microsecond)
		s0.RestartCold()
		for s0.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		log.CrashWindow(from, p.Now())

		p.Sleep(4 * sim.Millisecond)
		from = p.Now()
		s1.Kill(true)
		p.Sleep(300 * sim.Microsecond)
		s1.RestartCold()
		for s1.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		log.CrashWindow(from, p.Now())
	})

	cl.Env.Spawn("hot-chaos-supervisor", func(p *sim.Proc) {
		for i := 0; i < drivers; i++ {
			done.Get(p)
		}
		for _, s := range cl.Servers {
			s.Store().StopCrawler()
		}
	})
	cl.Env.Run()
	log.Expected = expected
	return log, c.Stats().HotFanouts
}

// hotkeyExp is the registry entry: {rpc, bypass, fanout} × R ∈ {1,2,3}, plus
// the fan-out chaos cell. Headlines: fanout_speedup_r3 (goodput of fan-out
// over plain bypass at R=3) and chaos.violations (must be zero).
func hotkeyExp(o Options) *Result {
	res := newResult("hotkey",
		"Hot-key serving: celebrity flash crowd vs replicated-read fan-out")
	ops := o.ops(14400)

	thr := &metrics.Series{Name: "goodput kops"}
	p99 := &metrics.Series{Name: "p99 µs"}
	fan := &metrics.Series{Name: "fanouts"}
	fb := &metrics.Series{Name: "fallback%"}

	paths := []struct {
		name   string
		bypass bool
		fanout bool
	}{
		{"rpc", false, false},
		{"bypass", true, false},
		{"fanout", true, true},
	}
	for _, r := range []int{1, 2, 3} {
		for _, path := range paths {
			name := fmt.Sprintf("%s.R%d", path.name, r)
			run := runHotkey(path.bypass, path.fanout, r, ops)

			thr.Append(name, run.kops())
			p99.Append(name, us(run.GetLat.Quantile(0.99)))
			fan.Append(name, float64(run.Stats.HotFanouts))
			fb.Append(name, run.fallbackPct())

			res.metric(name+".goodput_kops", run.kops())
			res.metric(name+".get_us", us(run.GetLat.Mean()))
			res.metric(name+".get_p99_us", us(run.GetLat.Quantile(0.99)))
			res.metric(name+".ok", float64(run.OK))
			if path.bypass {
				res.metric(name+".fallback_pct", run.fallbackPct())
				res.metric(name+".reprobes", float64(run.Stats.BypassReprobes))
				res.metric(name+".reads", float64(run.Stats.BypassReads))
				res.metric(name+".read_doorbells", float64(run.Stats.BypassReadDoorbells))
				res.metric(name+".hot_samples", float64(run.Stats.HotSamples))
				res.metric(name+".hot_refreshes", float64(run.Stats.HotRefreshes))
			}
			if path.fanout {
				res.metric(name+".fanouts", float64(run.Stats.HotFanouts))
			}
		}
	}
	res.metric("fanout_speedup_r3",
		res.Metrics["fanout.R3.goodput_kops"]/res.Metrics["bypass.R3.goodput_kops"])

	// Safety cell: the replicated history checker under fan-out + kills.
	rounds := o.ops(420) / (writersPlusReaders())
	if rounds < 8 {
		rounds = 8
	}
	log, fanouts := runHotChaos(rounds)
	viol := log.Check()
	res.metric("chaos.violations", float64(len(viol)))
	res.metric("chaos.entries", float64(len(log.Entries)))
	res.metric("chaos.fanouts", float64(fanouts))
	detail := ""
	for _, v := range viol {
		detail += fmt.Sprintf("VIOLATION fanout-chaos: %v\n", v)
	}

	res.Output = res.addTable(res.Title, thr, p99, fan, fb) + detail + res.renderMetrics()
	return res
}

// writersPlusReaders is the chaos cell's logged entries per round (3 writers
// × 2 + 3 readers × 2).
func writersPlusReaders() int { return 3*2 + 3*2 }
