package bench

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/metrics"
	"hybridkv/internal/workload"
)

// --- Figure 7(a): communication/computation overlap ---

func fig7a(o Options) *Result {
	res := newResult("fig7a", "Figure 7(a): Overlap% with different workload patterns (hybrid server, data > memory)")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	modes := []struct {
		label  string
		design cluster.Design
		mode   string
	}{
		{"RDMA-Block", cluster.HRDMAOptBlock, "block"},
		{"RDMA-NonB-b", cluster.HRDMAOptNonBB, "nonb-b"},
		{"RDMA-NonB-i", cluster.HRDMAOptNonBI, "nonb-i"},
	}
	readOnly := &metrics.Series{Name: "read-only %"}
	writeHeavy := &metrics.Series{Name: "write-heavy %"}
	for _, m := range modes {
		for _, mix := range []struct {
			name string
			read float64
			out  *metrics.Series
		}{{"read-only", 1.0, readOnly}, {"write-heavy", 0.5, writeHeavy}} {
			cl, keys := buildAndPreload(m.design, cluster.ClusterA(), mem, dataBytes, kv, 1, 1)
			gen := workload.New(workload.Config{
				Keys: keys, ValueSize: kv, ReadFraction: mix.read,
				Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 11,
			})
			r := RunOverlap(cl, gen, 0, ops, m.mode)
			mix.out.Append(m.label, r.OverlapPct)
			res.metric(fmt.Sprintf("%s.%s.overlap_pct", m.label, mix.name), r.OverlapPct)
		}
	}
	res.Output = res.addTable(res.Title, readOnly, writeHeavy) + res.renderMetrics()
	return res
}

// --- Figure 7(b): performance with varying key-value pair sizes ---

func fig7b(o Options) *Result {
	res := newResult("fig7b", "Figure 7(b): Average latency with varying key-value pair sizes (hybrid, data > memory)")
	mem, _, opsDef := o.geometry()
	mem /= 2 // keep preload volume manageable across the size sweep
	ops := o.ops(opsDef) / 2
	sizes := []int{1024, 4096, 16 * 1024, 64 * 1024, 128 * 1024}
	designs := []cluster.Design{cluster.HRDMADef, cluster.HRDMAOptBlock, cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI}
	series := map[cluster.Design]*metrics.Series{}
	for _, d := range designs {
		series[d] = &metrics.Series{Name: d.String()}
	}
	for _, kv := range sizes {
		dataBytes := mem * 3 / 2
		for _, d := range designs {
			cl, keys := buildAndPreload(d, cluster.ClusterA(), mem, dataBytes, kv, 1, 1)
			gen := workload.New(workload.Config{
				Keys: keys, ValueSize: kv, ReadFraction: 0.5,
				Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 13,
			})
			var avgUs float64
			if d.NonBlocking() {
				r := RunNonBlocking(cl, gen, 0, ops, d.BufferGuarantee())
				avgUs = us(r.PerOp)
			} else {
				r := RunBlocking(cl, gen, 0, ops)
				avgUs = us(r.AllLat.Mean())
			}
			label := fmt.Sprintf("%dKB", kv/1024)
			series[d].Append(label, avgUs)
			res.metric(fmt.Sprintf("%s.%s_us", d, label), avgUs)
		}
	}
	// Paper: NonB improves 65-89% over both blocking designs across sizes.
	for _, kv := range sizes {
		label := fmt.Sprintf("%dKB", kv/1024)
		def := res.Metrics[fmt.Sprintf("%s.%s_us", cluster.HRDMADef, label)]
		nbi := res.Metrics[fmt.Sprintf("%s.%s_us", cluster.HRDMAOptNonBI, label)]
		if def > 0 {
			res.metric(fmt.Sprintf("improvement_pct.nonb_i_vs_def.%s", label), 100*(1-nbi/def))
		}
	}
	res.Output = res.addTable(res.Title,
		series[cluster.HRDMADef], series[cluster.HRDMAOptBlock],
		series[cluster.HRDMAOptNonBB], series[cluster.HRDMAOptNonBI]) + res.renderMetrics()
	return res
}

// --- Figure 7(c): aggregated server throughput scalability ---

func fig7c(o Options) *Result {
	res := newResult("fig7c", "Figure 7(c): Aggregated throughput, 100 clients, 4 servers (8 KB kv, 2:1 overcommit)")
	// Paper geometry: 4 servers with 1 GB aggregate RAM, 4 GB SSD cap,
	// preload 2 GB of 8 KB pairs, 100 clients on 32 nodes. Scaled: the
	// 2:1 dataset:RAM ratio and client:server ratio are preserved.
	servers := 4
	clients := 100
	aggMem := int64(1 << 30)
	kv := 8 * 1024
	if !o.Full {
		aggMem = 256 << 20
		clients = 50
	}
	opsPer := o.ops(48000) / clients * 2
	dataBytes := 2 * aggMem
	designs := []struct {
		label       string
		design      cluster.Design
		nonblocking bool
		buffered    bool
	}{
		{"H-RDMA-Def-Block", cluster.HRDMADef, false, false},
		{"H-RDMA-Opt-Block", cluster.HRDMAOptBlock, false, false},
		{"H-RDMA-Opt-NonB-b", cluster.HRDMAOptNonBB, true, true},
		{"H-RDMA-Opt-NonB-i", cluster.HRDMAOptNonBI, true, false},
	}
	tput := &metrics.Series{Name: "ops/sec"}
	for _, d := range designs {
		cl := cluster.New(cluster.Config{
			Design:      d.design,
			Profile:     cluster.ClusterA(),
			Servers:     servers,
			Clients:     clients,
			ServerMem:   aggMem / int64(servers),
			SSDCapacity: 4 * aggMem / int64(servers),
		})
		keys := int(dataBytes / int64(kv))
		cl.Preload(keys, kv, keyOf)
		r := RunThroughput(cl, func(ci int) *workload.Generator {
			return workload.New(workload.Config{
				Keys: keys, ValueSize: kv, ReadFraction: 0.5,
				Pattern: workload.Zipf, ZipfS: zipfOver, Seed: int64(100 + ci),
			})
		}, opsPer, d.nonblocking, d.buffered, 32)
		tput.Append(d.label, r.OpsPerS)
		res.metric(d.label+".ops_per_sec", r.OpsPerS)
	}
	def := res.Metrics["H-RDMA-Def-Block.ops_per_sec"]
	opt := res.Metrics["H-RDMA-Opt-Block.ops_per_sec"]
	if def > 0 {
		res.metric("speedup.optblock_vs_def", opt/def)
	}
	if opt > 0 {
		res.metric("speedup.nonb_i_vs_block", res.Metrics["H-RDMA-Opt-NonB-i.ops_per_sec"]/opt)
		res.metric("speedup.nonb_b_vs_block", res.Metrics["H-RDMA-Opt-NonB-b.ops_per_sec"]/opt)
	}
	res.Output = res.addTable(res.Title, tput) + res.renderMetrics()
	return res
}

// --- Figure 8(a): SATA vs NVMe with read-only and write-heavy mixes ---

func fig8a(o Options) *Result {
	res := newResult("fig8a", "Figure 8(a): Latency with SATA (Cluster A) vs NVMe (Cluster B), data > memory")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	designs := []struct {
		label       string
		design      cluster.Design
		nonblocking bool
		buffered    bool
	}{
		{"H-RDMA-Def-Block", cluster.HRDMADef, false, false},
		{"H-RDMA-Opt-Block", cluster.HRDMAOptBlock, false, false},
		{"H-RDMA-Opt-NonB-b", cluster.HRDMAOptNonBB, true, true},
		{"H-RDMA-Opt-NonB-i", cluster.HRDMAOptNonBI, true, false},
	}
	var cols []*metrics.Series
	for _, prof := range []cluster.Profile{cluster.ClusterA(), cluster.ClusterB()} {
		ssd := "SATA"
		if prof.SSD.Name == "NVMe-SSD" {
			ssd = "NVMe"
		}
		for _, mix := range []struct {
			name string
			read float64
		}{{"read-only", 1.0}, {"write-heavy", 0.5}} {
			col := &metrics.Series{Name: ssd + " " + mix.name}
			for _, d := range designs {
				cl, keys := buildAndPreload(d.design, prof, mem, dataBytes, kv, 1, 1)
				gen := workload.New(workload.Config{
					Keys: keys, ValueSize: kv, ReadFraction: mix.read,
					Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 17,
				})
				var avgUs float64
				if d.nonblocking {
					r := RunNonBlocking(cl, gen, 0, ops, d.buffered)
					avgUs = us(r.PerOp)
				} else {
					r := RunBlocking(cl, gen, 0, ops)
					avgUs = us(r.AllLat.Mean())
				}
				col.Append(d.label, avgUs)
				res.metric(fmt.Sprintf("%s.%s.%s_us", ssd, mix.name, d.label), avgUs)
			}
			cols = append(cols, col)
		}
	}
	for _, ssd := range []string{"SATA", "NVMe"} {
		for _, mix := range []string{"read-only", "write-heavy"} {
			def := res.Metrics[fmt.Sprintf("%s.%s.H-RDMA-Def-Block_us", ssd, mix)]
			opt := res.Metrics[fmt.Sprintf("%s.%s.H-RDMA-Opt-Block_us", ssd, mix)]
			nbi := res.Metrics[fmt.Sprintf("%s.%s.H-RDMA-Opt-NonB-i_us", ssd, mix)]
			if def > 0 {
				res.metric(fmt.Sprintf("improvement_pct.opt_vs_def.%s.%s", ssd, mix), 100*(1-opt/def))
				res.metric(fmt.Sprintf("improvement_pct.nonb_i_vs_def.%s.%s", ssd, mix), 100*(1-nbi/def))
			}
		}
	}
	res.Output = res.addTable(res.Title, cols...) + res.renderMetrics()
	return res
}

// --- Figure 8(b): bursty block I/O workload ---

func fig8b(o Options) *Result {
	res := newResult("fig8b", "Figure 8(b): Bursty block I/O latency (4 servers, 256 KB chunks)")
	aggMem := int64(256 << 20)
	total := int64(1 << 30)
	if o.Full {
		aggMem = 1 << 30
		total = 4 << 30
	}
	servers := 4
	var cols []*metrics.Series
	for _, prof := range []cluster.Profile{cluster.ClusterB(), cluster.ClusterA()} {
		ssd := "SATA"
		if prof.SSD.Name == "NVMe-SSD" {
			ssd = "NVMe"
		}
		for _, blockSize := range []int{2 << 20, 16 << 20} {
			colW := &metrics.Series{Name: fmt.Sprintf("%s %dMB wr ms", ssd, blockSize>>20)}
			colR := &metrics.Series{Name: fmt.Sprintf("%s %dMB rd ms", ssd, blockSize>>20)}
			for _, mode := range []struct {
				label  string
				design cluster.Design
				nonb   bool
			}{
				{"H-RDMA-Opt-Block", cluster.HRDMAOptBlock, false},
				{"H-RDMA-Opt-NonB-i", cluster.HRDMAOptNonBI, true},
			} {
				cl := cluster.New(cluster.Config{
					Design:    mode.design,
					Profile:   prof,
					Servers:   servers,
					ServerMem: aggMem / int64(servers),
				})
				bc := workload.BlockConfig{
					BlockSize: blockSize, ChunkSize: 256 * 1024, TotalBytes: total,
				}
				r := RunBlockIO(cl, bc, 0, mode.nonb)
				wms := us(r.WriteBlockLat.Mean()) / 1000
				rms := us(r.ReadBlockLat.Mean()) / 1000
				colW.Append(mode.label, wms)
				colR.Append(mode.label, rms)
				res.metric(fmt.Sprintf("%s.%dMB.%s.write_ms", ssd, blockSize>>20, mode.label), wms)
				res.metric(fmt.Sprintf("%s.%dMB.%s.read_ms", ssd, blockSize>>20, mode.label), rms)
			}
			cols = append(cols, colW, colR)
		}
	}
	for _, ssd := range []string{"SATA", "NVMe"} {
		for _, mb := range []int{2, 16} {
			blkW := res.Metrics[fmt.Sprintf("%s.%dMB.H-RDMA-Opt-Block.write_ms", ssd, mb)]
			nbiW := res.Metrics[fmt.Sprintf("%s.%dMB.H-RDMA-Opt-NonB-i.write_ms", ssd, mb)]
			blkR := res.Metrics[fmt.Sprintf("%s.%dMB.H-RDMA-Opt-Block.read_ms", ssd, mb)]
			nbiR := res.Metrics[fmt.Sprintf("%s.%dMB.H-RDMA-Opt-NonB-i.read_ms", ssd, mb)]
			if blkW > 0 {
				res.metric(fmt.Sprintf("improvement_pct.write.%s.%dMB", ssd, mb), 100*(1-nbiW/blkW))
			}
			if blkR > 0 {
				res.metric(fmt.Sprintf("improvement_pct.read.%s.%dMB", ssd, mb), 100*(1-nbiR/blkR))
			}
			// The paper's headline is block *access* latency — the
			// write+read round trip of a block through the cluster.
			if blkW+blkR > 0 {
				res.metric(fmt.Sprintf("improvement_pct.access.%s.%dMB", ssd, mb),
					100*(1-(nbiW+nbiR)/(blkW+blkR)))
			}
		}
	}
	res.Output = res.addTable(res.Title, cols...) + res.renderMetrics()
	return res
}
