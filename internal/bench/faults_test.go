package bench

import (
	"testing"

	"hybridkv/internal/cluster"
)

const (
	faultTestMem = 32 << 20
	faultTestKV  = 32 << 10
)

func faultTestCluster(d cluster.Design) (*cluster.Cluster, int) {
	return buildFaultCluster(d, faultTestMem, faultTestMem*3/2, faultTestKV)
}

// A clean (empty-schedule) run must never engage the recovery machinery:
// no retries, no timeouts, no failures, nothing dropped.
func TestFaultedCleanRun(t *testing.T) {
	for _, d := range []cluster.Design{cluster.HRDMAOptBlock, cluster.HRDMAOptNonBI, cluster.IPoIBMem} {
		cl, keys := faultTestCluster(d)
		gen := workloadForTest(keys, faultTestKV)
		r := RunFaulted(cl, gen, 0, 300, FaultSchedule{})
		if r.Failed != 0 {
			t.Errorf("%s: clean run failed %d ops", d, r.Failed)
		}
		if r.OK+r.Misses != r.Ops {
			t.Errorf("%s: OK %d + Misses %d != Ops %d", d, r.OK, r.Misses, r.Ops)
		}
		for _, name := range []string{"retries", "timeouts", "failovers", "cancels"} {
			if n := r.Counters.Get(name); n != 0 {
				t.Errorf("%s: clean run has %s=%d", d, name, n)
			}
		}
		if r.NetDropped != 0 {
			t.Errorf("%s: clean run dropped %d messages", d, r.NetDropped)
		}
		if r.Goodput <= 0 {
			t.Errorf("%s: goodput %f", d, r.Goodput)
		}
	}
}

// With an empty schedule the deadline/retry instrumentation must be
// invisible: the run takes exactly the same virtual time as the plain
// blocking driver on an identical cluster and workload.
func TestFaultedEmptyScheduleParity(t *testing.T) {
	d := cluster.HRDMAOptBlock
	ops := 300

	cl1, keys := faultTestCluster(d)
	r := RunFaulted(cl1, workloadForTest(keys, faultTestKV), 0, ops, FaultSchedule{})

	cl2, keys2 := faultTestCluster(d)
	if keys2 != keys {
		t.Fatalf("cluster geometry mismatch: %d vs %d keys", keys2, keys)
	}
	b := RunBlocking(cl2, workloadForTest(keys, faultTestKV), 0, ops)

	if r.Elapsed != b.Elapsed {
		t.Errorf("empty-schedule elapsed %v != blocking driver elapsed %v", r.Elapsed, b.Elapsed)
	}
	if r.Misses != b.Misses {
		t.Errorf("empty-schedule misses %d != blocking driver misses %d", r.Misses, b.Misses)
	}
}

// Every design must survive the default fault schedule: all ops accounted
// for, recovery engaged on the lossy fabric, and the run fully deterministic.
func TestFaultedAllDesigns(t *testing.T) {
	sched := DefaultFaultSchedule()
	for _, d := range cluster.Designs {
		run := func() *FaultedResult {
			cl, keys := faultTestCluster(d)
			return RunFaulted(cl, workloadForTest(keys, faultTestKV), 0, 300, sched)
		}
		r1 := run()
		if r1.OK+r1.Misses+r1.Failed != r1.Ops {
			t.Errorf("%s: OK %d + Misses %d + Failed %d != Ops %d",
				d, r1.OK, r1.Misses, r1.Failed, r1.Ops)
		}
		if r1.NetDropped == 0 {
			t.Errorf("%s: fault schedule dropped nothing", d)
		}
		if d.Transport() != cluster.IPoIBMem.Transport() {
			if r1.Counters.Get("retries") == 0 && r1.Failed == 0 {
				t.Errorf("%s: drops injected but no retries and no failures", d)
			}
		}
		r2 := run()
		if r1.Elapsed != r2.Elapsed || r1.OK != r2.OK || r1.Failed != r2.Failed {
			t.Errorf("%s: faulted run not deterministic: (%v,%d,%d) vs (%v,%d,%d)",
				d, r1.Elapsed, r1.OK, r1.Failed, r2.Elapsed, r2.OK, r2.Failed)
		}
	}
}

// The registry experiment itself at smoke scale.
func TestFaultsExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("faults experiment is slow")
	}
	r := faultsExp(quick())
	for _, d := range cluster.Designs {
		name := d.String()
		if r.Metrics[name+".clean_failed"] != 0 {
			t.Errorf("%s: clean phase failed %v ops", name, r.Metrics[name+".clean_failed"])
		}
		if r.Metrics[name+".clean_retries"] != 0 {
			t.Errorf("%s: clean phase retried %v times", name, r.Metrics[name+".clean_retries"])
		}
		if r.Metrics[name+".net_dropped"] == 0 {
			t.Errorf("%s: faulted phase dropped nothing", name)
		}
		if r.Metrics[name+".fault_goodput"] <= 0 {
			t.Errorf("%s: faulted goodput %v", name, r.Metrics[name+".fault_goodput"])
		}
	}
	if r.Output == "" {
		t.Error("no output table")
	}
}
