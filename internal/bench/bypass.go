package bench

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The bypass experiment: the same concurrent GET-heavy workloads driven
// against two otherwise-identical deployments — one resolving every GET by
// request/response RPC, one with the server-bypass read path enabled
// (one-sided RDMA READs against the published directory, RPC fallback on
// any validation failure). The headline is the read-heavy zipf pair: bypass
// GETs skip the server's serial dispatch entirely, so hit latency and
// aggregate throughput both beat the RPC path while the fallback machinery
// keeps misses, SSD-resident values, and write races exactly correct. The
// "ssd" cells overcommit RAM so roughly half the dataset is SSD-resident:
// bypass probes then fall back constantly, and the cell demonstrates the
// fallback tax is modest rather than pathological.

// Small values keep the server's egress link out of saturation, so the
// cells measure what the bypass path actually removes — the server's serial
// dispatch CPU — rather than a wire bottleneck both paths share equally.
const (
	bypassValueSize = 512
	bypassDataBytes = 4 << 20
	bypassWorkers   = 8 // per client; 2 clients
	bypassClients   = 2
)

// bypassRun is one measured cell.
type bypassRun struct {
	GetLat  *metrics.Hist
	Ops     int64
	Misses  int64
	Elapsed sim.Time
	Stats   core.ClientStats // summed over clients
}

// kops is throughput in thousand operations per virtual second.
func (r *bypassRun) kops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Elapsed) / float64(sim.Second)) / 1e3
}

// fastpathPct is the share of bypass hits resolved by the single-READ
// location-cache fast path.
func (r *bypassRun) fastpathPct() float64 {
	if r.Stats.BypassHits == 0 {
		return 0
	}
	return 100 * float64(r.Stats.BypassFastPath) / float64(r.Stats.BypassHits)
}

// fallbackPct is the share of bypass attempts that fell back to RPC.
func (r *bypassRun) fallbackPct() float64 {
	total := r.Stats.BypassHits + r.Stats.BypassFallbacks
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Stats.BypassFallbacks) / float64(total)
}

// runBypass executes one cell: preload, then bypassClients clients ×
// bypassWorkers workers of mixed non-blocking traffic; GET latency is
// recorded per completion.
func runBypass(bypass bool, readFrac float64, pat workload.Pattern, fits bool, ops int) *bypassRun {
	mem := int64(16 << 20)
	if !fits {
		mem = 2 << 20 // half the dataset lives on SSD: fallback territory
	}
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterA(),
		Servers:   1,
		Clients:   bypassClients,
		ServerMem: mem,
		Bypass:    bypass,
	})
	keys := int(bypassDataBytes / bypassValueSize)
	cl.Preload(keys, bypassValueSize, keyOf)

	run := &bypassRun{GetLat: metrics.NewHist()}
	perWorker := ops / (bypassClients * bypassWorkers)
	run.Ops = int64(perWorker * bypassClients * bypassWorkers)
	start := cl.Env.Now()
	for ci := 0; ci < bypassClients; ci++ {
		c := cl.Clients[ci]
		for w := 0; w < bypassWorkers; w++ {
			gen := workload.New(workload.Config{
				Keys: keys, ValueSize: bypassValueSize, ReadFraction: readFrac,
				Pattern: pat, ZipfS: zipfFits, Seed: int64(100 + ci*bypassWorkers + w),
			})
			cl.Env.Spawn(fmt.Sprintf("bypass-drv-c%d-w%d", ci, w), func(p *sim.Proc) {
				for i := 0; i < perWorker; i++ {
					kind, key := gen.Next()
					if kind == workload.OpSet {
						req, err := c.Issue(p, core.Op{
							Code: protocol.OpSet, Key: key,
							ValueSize: bypassValueSize, Value: key,
						})
						if err != nil {
							panic("bench: bypass set issue: " + err.Error())
						}
						c.Wait(p, req)
						continue
					}
					t0 := p.Now()
					req, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key})
					if err != nil {
						panic("bench: bypass get issue: " + err.Error())
					}
					c.Wait(p, req)
					run.GetLat.Add(p.Now() - t0)
					if req.Status == protocol.StatusNotFound {
						run.Misses++
					}
				}
			})
		}
	}
	cl.Env.Run()
	run.Elapsed = cl.Env.Now() - start
	for _, c := range cl.Clients {
		st := c.Stats()
		run.Stats.BypassHits += st.BypassHits
		run.Stats.BypassFastPath += st.BypassFastPath
		run.Stats.BypassFallbacks += st.BypassFallbacks
		run.Stats.BypassBootstraps += st.BypassBootstraps
	}
	return run
}

// bypassExp is the registry entry: {rpc, bypass} × {read-only, 95:5, 50:50
// zipf; read-only uniform; read-only zipf with SSD overcommit}.
func bypassExp(o Options) *Result {
	res := newResult("bypass",
		"Server-bypass GETs: one-sided READ vs RPC read path")
	ops := o.ops(4800)

	mean := &metrics.Series{Name: "Get µs"}
	p99 := &metrics.Series{Name: "p99 µs"}
	thr := &metrics.Series{Name: "kops"}
	fb := &metrics.Series{Name: "fallback%"}

	cells := []struct {
		name     string
		readFrac float64
		pat      workload.Pattern
		fits     bool
	}{
		{"read.zipf", 1.0, workload.Zipf, true},
		{"r95.zipf", 0.95, workload.Zipf, true},
		{"rw50.zipf", 0.5, workload.Zipf, true},
		{"read.unif", 1.0, workload.Uniform, true},
		{"read.ssd", 1.0, workload.Zipf, false},
	}
	for _, cell := range cells {
		for _, bypass := range []bool{false, true} {
			path := "rpc"
			if bypass {
				path = "bypass"
			}
			name := path + "." + cell.name
			run := runBypass(bypass, cell.readFrac, cell.pat, cell.fits, ops)

			mean.Append(name, us(run.GetLat.Mean()))
			p99.Append(name, us(run.GetLat.Quantile(0.99)))
			thr.Append(name, run.kops())
			fb.Append(name, run.fallbackPct())

			res.metric(name+".get_us", us(run.GetLat.Mean()))
			res.metric(name+".get_p99_us", us(run.GetLat.Quantile(0.99)))
			res.metric(name+".kops", run.kops())
			res.metric(name+".misses", float64(run.Misses))
			if bypass {
				res.metric(name+".hits", float64(run.Stats.BypassHits))
				res.metric(name+".fastpath_pct", run.fastpathPct())
				res.metric(name+".fallback_pct", run.fallbackPct())
			}
		}
	}
	// Headline: the read-heavy zipf speedup of the bypass path.
	res.metric("speedup.read.zipf.get_us",
		res.Metrics["rpc.read.zipf.get_us"]/res.Metrics["bypass.read.zipf.get_us"])
	res.metric("speedup.read.zipf.kops",
		res.Metrics["bypass.read.zipf.kops"]/res.Metrics["rpc.read.zipf.kops"])
	res.Output = res.addTable(res.Title, mean, p99, thr, fb) + res.renderMetrics()
	return res
}
