package bench

import (
	"testing"

	"hybridkv/internal/cluster"
	"hybridkv/internal/history"
)

var chaosHybrids = []cluster.Design{
	cluster.HRDMADef, cluster.HRDMAOptBlock, cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI,
}

// The chaos-soak CI gate: faults + crashes + overload on every hybrid
// design must produce a history with zero invariant violations — no acked
// write lost, no stale read after a completed CAS write, no invented
// values, no counter regression, and every issued operation completed
// (virtual time kept advancing; nothing deadlocked).
func TestChaosSoakZeroViolations(t *testing.T) {
	for _, d := range chaosHybrids {
		rep := runChaos(d, 24, 42)
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", d, v)
		}
		if len(rep.Log.Entries) != rep.Log.Expected {
			t.Errorf("%s: %d of %d expected entries recorded",
				d, len(rep.Log.Entries), rep.Log.Expected)
		}
		if rep.Recoveries == 0 {
			t.Errorf("%s: cold restart never recovered", d)
		}
		if rep.InjDrops == 0 {
			t.Errorf("%s: fault injector dropped nothing — the soak ran clean", d)
		}
	}
}

// The soak genuinely exercises the acked-write path on the
// buffer-guaranteed design, and is deterministic replay for replay.
func TestChaosSoakAckedWritesAndDeterminism(t *testing.T) {
	r1 := runChaos(cluster.HRDMAOptNonBB, 24, 42)
	if r1.AckedWrites == 0 {
		t.Error("no acked writes logged: the acked-write-lost invariant was vacuous")
	}
	r2 := runChaos(cluster.HRDMAOptNonBB, 24, 42)
	if r1.Elapsed != r2.Elapsed || len(r1.Log.Entries) != len(r2.Log.Entries) ||
		r1.Busy != r2.Busy || r1.Retries != r2.Retries {
		t.Errorf("chaos soak not deterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			r1.Elapsed, len(r1.Log.Entries), r1.Busy, r1.Retries,
			r2.Elapsed, len(r2.Log.Entries), r2.Busy, r2.Retries)
	}
}

// The replicated soak: whole-node kills (RAM gone, then RAM + wiped SSD)
// at R=2 under the tightened Replicated checker — stale reads keep no
// crash excuse — must still produce zero violations, and repair traffic
// must actually flow (the kills force the suspect-confirm and anti-entropy
// machinery to do real work).
func TestChaosReplicatedNodeKillsZeroViolations(t *testing.T) {
	rep := runChaosR(cluster.HRDMAOptNonBB, 24, 42, 2, true)
	for _, v := range rep.Violations {
		t.Errorf("R=2 kills: %s", v)
	}
	if len(rep.Log.Entries) != rep.Log.Expected {
		t.Errorf("R=2 kills: %d of %d expected entries recorded",
			len(rep.Log.Entries), rep.Log.Expected)
	}
	if rep.AckedWrites == 0 {
		t.Error("R=2 kills: no acked writes logged — the invariant was vacuous")
	}
}

// The checker is not asleep: hand the soak's own machinery a log with a
// fabricated lost acked write and it must object.
func TestChaosCheckerStillArmed(t *testing.T) {
	l := &history.Log{}
	l.Record(history.Entry{Kind: history.Write, Key: "k", Seq: 1, Acked: true, OK: false})
	if len(l.Check()) == 0 {
		t.Fatal("checker accepted a lost acked write")
	}
}
