package bench

import (
	"strings"
	"testing"
)

// The experiment tests lock the paper's result *shapes*: orderings,
// crossovers, and improvement-factor bands. They run the scaled geometry
// with a reduced op count to stay fast; the bands are deliberately wider
// than the headline numbers to keep the assertions about shape, not noise.

// quick returns reduced-op options for shape tests.
func quick() Options { return Options{Ops: 1200} }

func TestFig1aShape(t *testing.T) {
	r := fig1(quick(), true)
	ipoib := r.Metrics["IPoIB-Mem.avg_us"]
	rdma := r.Metrics["RDMA-Mem.avg_us"]
	hyb := r.Metrics["H-RDMA-Def.avg_us"]
	if ratio := ipoib / rdma; ratio < 2.5 || ratio > 6 {
		t.Errorf("IPoIB/RDMA ratio %.2f, want ≈3.6 (band [2.5,6])", ratio)
	}
	// When data fits, the hybrid design matches the in-memory design.
	if diff := hyb/rdma - 1; diff > 0.1 || diff < -0.1 {
		t.Errorf("H-RDMA-Def (%.1fµs) not ≈ RDMA-Mem (%.1fµs) when data fits", hyb, rdma)
	}
}

func TestFig1bShape(t *testing.T) {
	r := fig1(quick(), false)
	ipoib := r.Metrics["IPoIB-Mem.avg_us"]
	rdma := r.Metrics["RDMA-Mem.avg_us"]
	hyb := r.Metrics["H-RDMA-Def.avg_us"]
	// Hybrid memory dwarfs the in-memory designs once misses cost ~1.8 ms.
	if rdma/hyb < 2 {
		t.Errorf("hybrid (%.1fµs) not ≥2x better than RDMA-Mem (%.1fµs) under overcommit", hyb, rdma)
	}
	if ipoib < rdma {
		t.Errorf("IPoIB (%.1fµs) beat RDMA (%.1fµs)", ipoib, rdma)
	}
	// And the hybrid itself degrades vs. its fits-in-memory latency.
	fits := fig1(quick(), true).Metrics["H-RDMA-Def.avg_us"]
	if hyb/fits < 1.5 {
		t.Errorf("H-RDMA-Def degradation %.2fx, want ≥1.5x (paper: 15-17x; see EXPERIMENTS.md)", hyb/fits)
	}
}

func TestFig2Breakdown(t *testing.T) {
	a := fig2(quick(), true)
	// Data fits: client wait dominates the RDMA designs (network-bound).
	if a.Metrics["RDMA-Mem.client_wait_us"] < a.Metrics["RDMA-Mem.slab_alloc_us"] {
		t.Errorf("fits-in-memory: client wait does not dominate slab alloc")
	}
	b := fig2(quick(), false)
	// Data does not fit: the miss penalty dominates in-memory designs...
	if b.Metrics["RDMA-Mem.miss_penalty_us"] < b.Metrics["RDMA-Mem.client_wait_us"] {
		t.Errorf("overcommit: miss penalty does not dominate RDMA-Mem")
	}
	// ...while H-RDMA-Def pays in SSD I/O, not misses.
	if b.Metrics["H-RDMA-Def.miss_penalty_us"] != 0 {
		t.Errorf("hybrid design paid a miss penalty")
	}
	if b.Metrics["H-RDMA-Def.cache_load_us"] <= a.Metrics["H-RDMA-Def.cache_load_us"] {
		t.Errorf("hybrid SSD load stage did not grow under overcommit")
	}
}

func TestFig4Crossover(t *testing.T) {
	r := fig4(quick())
	if r.Metrics["crossover.small_mmap_wins"] != 1 {
		t.Errorf("mmap does not win small writes")
	}
	if r.Metrics["crossover.large_cached_wins"] != 1 {
		t.Errorf("cached I/O does not win large writes")
	}
	for _, size := range []string{"2KB", "32KB", "1024KB"} {
		if r.Metrics["direct."+size+"_us"] <= r.Metrics["cached."+size+"_us"] {
			t.Errorf("direct I/O not worst at %s", size)
		}
	}
}

func TestFig6bImprovementBands(t *testing.T) {
	r := fig6(quick(), false)
	check := func(key string, lo, hi float64) {
		v := r.Metrics[key]
		if v < lo || v > hi {
			t.Errorf("%s = %.2f, want within [%.1f,%.1f]", key, v, lo, hi)
		}
	}
	// Paper: NonB 10-16x over Def; 3.3-8x over Opt-Block; Opt-Block ≈2x
	// over Def. Bands widened ~40% for the reduced-op run.
	check("improvement.nonb_i_vs_def", 7, 25)
	check("improvement.nonb_i_vs_optblock", 2.5, 11)
	check("improvement.optblock_vs_def", 1.4, 4)
	// Ordering is strict.
	if !(r.Metrics["H-RDMA-Opt-NonB-i.avg_us"] < r.Metrics["H-RDMA-Opt-Block.avg_us"] &&
		r.Metrics["H-RDMA-Opt-Block.avg_us"] < r.Metrics["H-RDMA-Def.avg_us"]) {
		t.Errorf("design ordering violated: NonB=%.1f Opt=%.1f Def=%.1f",
			r.Metrics["H-RDMA-Opt-NonB-i.avg_us"],
			r.Metrics["H-RDMA-Opt-Block.avg_us"],
			r.Metrics["H-RDMA-Def.avg_us"])
	}
}

func TestFig7aOverlapShape(t *testing.T) {
	r := fig7a(quick())
	if v := r.Metrics["RDMA-Block.read-only.overlap_pct"]; v > 5 {
		t.Errorf("blocking API overlap %.1f%%, want ≈0", v)
	}
	if v := r.Metrics["RDMA-NonB-i.read-only.overlap_pct"]; v < 70 {
		t.Errorf("iget read-only overlap %.1f%%, want ≥70 (paper ≈92)", v)
	}
	if v := r.Metrics["RDMA-NonB-i.write-heavy.overlap_pct"]; v < 70 {
		t.Errorf("iset write-heavy overlap %.1f%%, want ≥70 (paper ≈92)", v)
	}
	// The paper's asymmetry: bset write-heavy collapses; bget read-only
	// stays high.
	if v := r.Metrics["RDMA-NonB-b.write-heavy.overlap_pct"]; v > 25 {
		t.Errorf("bset write-heavy overlap %.1f%%, want <25 (paper <12)", v)
	}
	ro := r.Metrics["RDMA-NonB-b.read-only.overlap_pct"]
	wh := r.Metrics["RDMA-NonB-b.write-heavy.overlap_pct"]
	if ro < 3*wh {
		t.Errorf("bget read-only (%.1f%%) not ≫ bset write-heavy (%.1f%%)", ro, wh)
	}
}

func TestFig8aSATABenefitsExceedNVMe(t *testing.T) {
	r := fig8a(quick())
	sata := r.Metrics["improvement_pct.opt_vs_def.SATA.write-heavy"]
	nvme := r.Metrics["improvement_pct.opt_vs_def.NVMe.write-heavy"]
	if sata <= nvme {
		t.Errorf("adaptive I/O gain on SATA (%.1f%%) not above NVMe (%.1f%%)", sata, nvme)
	}
	if sata < 40 {
		t.Errorf("SATA write-heavy Opt-vs-Def gain %.1f%%, want ≥40 (paper 54-83)", sata)
	}
	for _, mix := range []string{"read-only", "write-heavy"} {
		if v := r.Metrics["improvement_pct.nonb_i_vs_def.SATA."+mix]; v < 48 {
			t.Errorf("NonB SATA %s gain %.1f%%, want ≥48", mix, v)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"tbl1", "fig1a", "fig1b", "fig2a", "fig2b", "fig4", "fig6a", "fig6b", "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "faults", "batching", "recovery", "overload", "chaos", "replication", "bypass", "hotkey", "membership", "grayfail", "bitrot"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Errorf("ByID(nope) found something")
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() returned %d ids", len(ids))
	}
}

func TestAblationRegistry(t *testing.T) {
	for _, e := range Ablations {
		if AblationByID(e.ID) == nil {
			t.Errorf("AblationByID(%s) = nil", e.ID)
		}
		if !strings.HasPrefix(e.ID, "abl-") {
			t.Errorf("ablation id %q not namespaced", e.ID)
		}
	}
	if AblationByID("abl-nope") != nil {
		t.Errorf("AblationByID(abl-nope) found something")
	}
}

func TestResultRendering(t *testing.T) {
	r := newResult("x", "t")
	r.metric("b.key", 2)
	r.metric("a.key", 1)
	out := r.renderMetrics()
	ai, bi := strings.Index(out, "a.key"), strings.Index(out, "b.key")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("metrics not rendered sorted:\n%s", out)
	}
}

func TestDriversProduceConsistentCounts(t *testing.T) {
	// A tiny end-to-end sanity pass over each driver.
	o := Options{Ops: 200}
	mem, kv, _ := o.geometry()
	mem = 32 << 20
	cl, keys := buildAndPreload(clusterDesignForTest(), clusterProfileForTest(), mem, mem/2, kv, 1, 1)
	gen := workloadForTest(keys, kv)
	r := RunBlocking(cl, gen, 0, 200)
	if r.Ops != 200 || r.AllLat.Count() != 200 {
		t.Errorf("blocking driver ops=%d samples=%d", r.Ops, r.AllLat.Count())
	}
	if r.SetLat.Count()+r.GetLat.Count() != 200 {
		t.Errorf("set+get samples %d+%d != 200", r.SetLat.Count(), r.GetLat.Count())
	}
}

func TestNonBlockingDriverCounts(t *testing.T) {
	mem := int64(32 << 20)
	kv := 32 * 1024
	cl, keys := buildAndPreload(nonbDesignForTest(), clusterProfileForTest(), mem, mem/2, kv, 1, 1)
	gen := workloadForTest(keys, kv)
	r := RunNonBlocking(cl, gen, 0, 200, false)
	if r.Ops != 200 || r.Misses != 0 {
		t.Errorf("nonblocking driver ops=%d misses=%d", r.Ops, r.Misses)
	}
	if r.PerOp <= 0 || r.Elapsed <= 0 {
		t.Errorf("per-op %v elapsed %v", r.PerOp, r.Elapsed)
	}
	if r.IssueTime <= 0 || r.IssueTime > r.Elapsed {
		t.Errorf("issue time %v outside (0,%v]", r.IssueTime, r.Elapsed)
	}
}

// TestEndToEndDeterminism locks the simulation's headline guarantee: an
// entire experiment — fabric, servers, SSDs, page caches, eviction, client
// pipelines — produces bit-identical metrics on every run.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() map[string]float64 {
		return fig1(Options{Ops: 600}, false).Metrics
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("metric sets differ in size: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			t.Errorf("metric %s differs across runs: %v vs %v", k, va, vb)
		}
	}
}

func TestNonBlockingDeterminism(t *testing.T) {
	run := func() float64 {
		return fig6(Options{Ops: 400}, false).Metrics["H-RDMA-Opt-NonB-i.avg_us"]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("async-pipeline experiment diverged: %v vs %v", a, b)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := table1(Options{})
	// Table I's rows, straight from the paper.
	checks := map[string]float64{
		"IPoIB-Mem.rdma":                0,
		"IPoIB-Mem.hybrid":              0,
		"RDMA-Mem.rdma":                 1,
		"RDMA-Mem.hybrid":               0,
		"H-RDMA-Def.rdma":               1,
		"H-RDMA-Def.hybrid":             1,
		"H-RDMA-Def.adaptive":           0,
		"H-RDMA-Def.nonblocking":        0,
		"H-RDMA-Opt-NonB-i.adaptive":    1,
		"H-RDMA-Opt-NonB-i.nonblocking": 1,
	}
	for k, want := range checks {
		if got := r.Metrics[k]; got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
	if !strings.Contains(r.Output, "IPoIB-Mem") {
		t.Errorf("table output missing rows:\n%s", r.Output)
	}
}

func TestResultCSVExport(t *testing.T) {
	r := fig4(Options{})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"label,direct µs,cached µs,mmap µs", "2KB,", "1024KB,"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	if len(r.Tables) == 0 {
		t.Errorf("result retained no tables")
	}
}
