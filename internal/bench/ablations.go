package bench

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: each isolates one lever (workload skew, storage worker pool,
// request-buffer bound, issue window, adaptive cutoff) while holding the
// rest of the system at the paper's configuration.

// AblationZipf sweeps the zipfian exponent and reports the fig6b-style
// improvement factors, making the calibration sensitivity explicit: the
// orderings hold across the whole range even though absolute factors move.
func AblationZipf(o Options) *Result {
	res := newResult("abl-zipf", "Ablation: workload skew vs design improvements (1.5:1 overcommit, SATA)")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	defS := &metrics.Series{Name: "Def µs"}
	optS := &metrics.Series{Name: "Opt µs"}
	nonbS := &metrics.Series{Name: "NonB-i µs"}
	ratio := &metrics.Series{Name: "NonB/Def"}
	for _, s := range []float64{0.2, 0.5, 0.8, 0.99, 1.2} {
		label := fmt.Sprintf("s=%.2f", s)
		var def, opt, nonb float64
		for _, d := range []cluster.Design{cluster.HRDMADef, cluster.HRDMAOptBlock, cluster.HRDMAOptNonBI} {
			cl, keys := buildAndPreload(d, cluster.ClusterA(), mem, dataBytes, kv, 1, 1)
			gen := workload.New(workload.Config{
				Keys: keys, ValueSize: kv, ReadFraction: 0.5,
				Pattern: workload.Zipf, ZipfS: s, Seed: 23,
			})
			var avg float64
			if d.NonBlocking() {
				avg = us(RunNonBlocking(cl, gen, 0, ops, false).PerOp)
			} else {
				avg = us(RunBlocking(cl, gen, 0, ops).AllLat.Mean())
			}
			switch d {
			case cluster.HRDMADef:
				def = avg
			case cluster.HRDMAOptBlock:
				opt = avg
			default:
				nonb = avg
			}
		}
		defS.Append(label, def)
		optS.Append(label, opt)
		nonbS.Append(label, nonb)
		ratio.Append(label, def/nonb)
		res.metric(label+".def_us", def)
		res.metric(label+".opt_us", opt)
		res.metric(label+".nonb_us", nonb)
		res.metric(label+".nonb_vs_def", def/nonb)
		res.metric(label+".ordering_holds", boolMetric(nonb < opt && opt < def))
	}
	res.Output = res.addTable(res.Title, defS, optS, nonbS, ratio) + res.renderMetrics()
	return res
}

// AblationWorkers sweeps the async server's storage worker pool.
func AblationWorkers(o Options) *Result {
	res := newResult("abl-workers", "Ablation: async storage workers vs NonB-i latency")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	lat := &metrics.Series{Name: "NonB-i µs"}
	for _, w := range []int{1, 2, 4, 8} {
		cl := cluster.New(cluster.Config{
			Design: cluster.HRDMAOptNonBI, Profile: cluster.ClusterA(),
			ServerMem: mem, StorageWorkers: w,
		})
		keys := int(dataBytes / int64(kv))
		cl.Preload(keys, kv, keyOf)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 29,
		})
		r := RunNonBlocking(cl, gen, 0, ops, false)
		label := fmt.Sprintf("workers=%d", w)
		lat.Append(label, us(r.PerOp))
		res.metric(label+".per_op_us", us(r.PerOp))
	}
	res.Output = res.addTable(res.Title, lat) + res.renderMetrics()
	return res
}

// AblationBuffer sweeps the key-value size against bset's write-heavy
// overlap, exposing the mechanism behind Figure 7(a)'s collapse: bset must
// wait until the value leaves the NIC, so overlap falls as the value grows
// toward the link's serialization budget.
func AblationBuffer(o Options) *Result {
	res := newResult("abl-buffer", "Ablation: value size vs bset write-heavy overlap%")
	mem, _, opsDef := o.geometry()
	mem /= 2
	ops := o.ops(opsDef) / 4
	ov := &metrics.Series{Name: "overlap %"}
	for _, kv := range []int{2048, 8192, 32 * 1024, 128 * 1024} {
		cl := cluster.New(cluster.Config{
			Design: cluster.HRDMAOptNonBB, Profile: cluster.ClusterA(),
			ServerMem: mem,
		})
		keys := int(mem * 3 / 2 / int64(kv))
		cl.Preload(keys, kv, keyOf)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 31,
		})
		r := RunOverlap(cl, gen, 0, ops, "nonb-b")
		label := fmt.Sprintf("%dKB", kv/1024)
		ov.Append(label, r.OverlapPct)
		res.metric(label+".overlap_pct", r.OverlapPct)
	}
	res.Output = res.addTable(res.Title, ov) + res.renderMetrics()
	return res
}

// AblationCutoff sweeps the adaptive mmap/cached class boundary.
func AblationCutoff(o Options) *Result {
	res := newResult("abl-cutoff", "Ablation: adaptive cutoff vs Opt-Block set latency (write-heavy)")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	lat := &metrics.Series{Name: "set µs"}
	for _, cutoff := range []int{0, 4 * 1024, 16 * 1024, 64 * 1024, 1 << 20} {
		cl := cluster.New(cluster.Config{
			Design: cluster.HRDMAOptBlock, Profile: cluster.ClusterA(),
			ServerMem: mem, AdaptiveCutoff: cutoff,
		})
		keys := int(dataBytes / int64(kv))
		cl.Preload(keys, kv, keyOf)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.3,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 37,
		})
		r := RunBlocking(cl, gen, 0, ops)
		label := fmt.Sprintf("cutoff=%dK", cutoff/1024)
		lat.Append(label, us(r.SetLat.Mean()))
		res.metric(label+".set_us", us(r.SetLat.Mean()))
	}
	res.Output = res.addTable(res.Title, lat) + res.renderMetrics()
	return res
}

// AblationWindow sweeps the non-blocking issue window against throughput,
// showing how deep the pipeline must be to hide the hybrid storage path.
func AblationWindow(o Options) *Result {
	res := newResult("abl-window", "Ablation: issue window vs NonB-i throughput (4 clients)")
	mem, kv, _ := o.geometry()
	dataBytes := mem * 3 / 2
	tput := &metrics.Series{Name: "ops/sec"}
	for _, w := range []int{1, 4, 16, 64, 256} {
		cl := cluster.New(cluster.Config{
			Design: cluster.HRDMAOptNonBI, Profile: cluster.ClusterA(),
			ServerMem: mem, Clients: 4,
		})
		keys := int(dataBytes / int64(kv))
		cl.Preload(keys, kv, keyOf)
		r := RunThroughput(cl, func(ci int) *workload.Generator {
			return workload.New(workload.Config{
				Keys: keys, ValueSize: kv, ReadFraction: 0.5,
				Pattern: workload.Zipf, ZipfS: zipfOver, Seed: int64(41 + ci),
			})
		}, o.ops(3000)/4, true, false, w)
		label := fmt.Sprintf("window=%d", w)
		tput.Append(label, r.OpsPerS)
		res.metric(label+".ops_per_sec", r.OpsPerS)
	}
	res.Output = res.addTable(res.Title, tput) + res.renderMetrics()
	return res
}

// AblationAsyncFlush contrasts synchronous eviction with write-behind
// flushing (the paper's future work) on the H-RDMA-Def design, whose
// direct-I/O flushes sit on the request path — the case async SSD I/O is
// meant to rescue.
func AblationAsyncFlush(o Options) *Result {
	res := newResult("abl-asyncflush", "Ablation: synchronous vs write-behind eviction (H-RDMA-Def, write-heavy)")
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(opsDef) / 2
	lat := &metrics.Series{Name: "set µs"}
	for _, async := range []bool{false, true} {
		cl := cluster.New(cluster.Config{
			Design: cluster.HRDMADef, Profile: cluster.ClusterA(),
			ServerMem: mem, AsyncFlush: async,
		})
		keys := int(dataBytes / int64(kv))
		cl.Preload(keys, kv, keyOf)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.3,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 43,
		})
		r := RunBlocking(cl, gen, 0, ops)
		label := "sync-flush"
		if async {
			label = "write-behind"
		}
		lat.Append(label, us(r.SetLat.Mean()))
		res.metric(label+".set_us", us(r.SetLat.Mean()))
	}
	if res.Metrics["sync-flush.set_us"] > 0 {
		res.metric("speedup.write_behind", res.Metrics["sync-flush.set_us"]/res.Metrics["write-behind.set_us"])
	}
	res.Output = res.addTable(res.Title, lat) + res.renderMetrics()
	return res
}

// AblationLibmemcachedBuffering reproduces the paper's Section IV-A
// comparison: default libmemcached's connection-wide buffering mode defers
// Sets cheaply but makes every data-returning Get pay to flush the queue,
// whereas the non-blocking extensions keep both cheap and add per-op
// completion guarantees. Workload: bursts of 16 Sets followed by one Get.
func AblationLibmemcachedBuffering(o Options) *Result {
	res := newResult("abl-libbuf", "Ablation: libmemcached buffering mode vs non-blocking extensions (16 Sets then 1 Get, 32 KB)")
	ops := o.ops(1600)
	bursts := ops / 17
	kv := 32 * 1024
	setLat := &metrics.Series{Name: "set µs"}
	getLat := &metrics.Series{Name: "get µs"}
	run := func(label string, design cluster.Design, buffered bool) {
		cl := cluster.New(cluster.Config{
			Design: design, Profile: cluster.ClusterA(), ServerMem: 256 << 20,
		})
		c := cl.Clients[0]
		if buffered {
			if err := c.SetBuffering(true); err != nil {
				panic(err)
			}
		}
		sets, gets := metrics.NewHist(), metrics.NewHist()
		cl.Env.Spawn("drv", func(p *sim.Proc) {
			for b := 0; b < bursts; b++ {
				if design.NonBlocking() {
					var reqs []*core.Req
					for i := 0; i < 16; i++ {
						t0 := p.Now()
						req, _ := c.ISet(p, burstKey(b, i), kv, b, 0, 0)
						sets.Add(p.Now() - t0)
						reqs = append(reqs, req)
					}
					t0 := p.Now()
					rq, _ := c.IGet(p, burstKey(b, 0))
					c.Wait(p, rq)
					c.WaitAll(p, reqs)
					gets.Add(p.Now() - t0)
					continue
				}
				for i := 0; i < 16; i++ {
					t0 := p.Now()
					c.Set(p, burstKey(b, i), kv, b, 0, 0)
					sets.Add(p.Now() - t0)
				}
				t0 := p.Now()
				c.Get(p, burstKey(b, 0))
				gets.Add(p.Now() - t0)
			}
		})
		cl.Env.Run()
		setLat.Append(label, us(sets.Mean()))
		getLat.Append(label, us(gets.Mean()))
		res.metric(label+".set_us", us(sets.Mean()))
		res.metric(label+".get_us", us(gets.Mean()))
	}
	run("IPoIB-plain", cluster.IPoIBMem, false)
	run("IPoIB-buffered", cluster.IPoIBMem, true)
	run("RDMA-NonB-i", cluster.HRDMAOptNonBI, false)
	res.metric("buffered_get_penalty",
		res.Metrics["IPoIB-buffered.get_us"]/res.Metrics["IPoIB-plain.get_us"])
	res.Output = res.addTable(res.Title, setLat, getLat) + res.renderMetrics()
	return res
}

func burstKey(b, i int) string { return fmt.Sprintf("burst:%05d:%02d", b, i) }

// Ablations lists the ablation studies.
var Ablations = []Experiment{
	{"abl-zipf", "Workload-skew sensitivity of the improvement factors", AblationZipf},
	{"abl-workers", "Async storage-worker pool size", AblationWorkers},
	{"abl-buffer", "Value size vs bset write-heavy overlap", AblationBuffer},
	{"abl-cutoff", "Adaptive mmap/cached cutoff", AblationCutoff},
	{"abl-window", "Non-blocking issue window depth", AblationWindow},
	{"abl-asyncflush", "Synchronous vs write-behind eviction (paper future work)", AblationAsyncFlush},
	{"abl-libbuf", "libmemcached buffering mode vs non-blocking extensions", AblationLibmemcachedBuffering},
}

// AblationByID finds an ablation, or nil.
func AblationByID(id string) *Experiment {
	for i := range Ablations {
		if Ablations[i].ID == id {
			return &Ablations[i]
		}
	}
	return nil
}
