package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// This file is the cold-restart recovery experiment: a mid-run power cycle
// of the (single) server with torn-write injection armed on its SSD, across
// the four hybrid designs. Measured per cell: the recovery scan's virtual
// time, what the scan found (pages recovered / discarded as torn or
// uncommitted), the post-recovery hit ratio against a clean twin run, and a
// zero-corruption assertion — every Get that hits after recovery must return
// exactly the value last written for its key, torn writes notwithstanding.

// Recovery experiment knobs. The geometry is deliberately small (24 MB RAM,
// 1.5x overcommit) so the SSD scan finishes well inside the op deadline and
// guarded requests issued during the outage can ride it out via retries.
const (
	recoveryMem      = 24 << 20
	recoveryKV       = 32 * 1024
	recoveryDeadline = 64 * sim.Millisecond
	recoveryAttempt  = 8 * sim.Millisecond
	// recoveryColdGap is how long the machine stays dark between the crash
	// and the cold restart that kicks off the recovery scan.
	recoveryColdGap = 2 * sim.Millisecond
	// recoveryTornProb tears this fraction of SSD write commands: only a
	// sector-aligned prefix of the command persists across the power cycle.
	recoveryTornProb = 0.2
)

// RecoveryRun summarizes one (clean or crashed) recovery-experiment run.
type RecoveryRun struct {
	// Main-phase op outcomes (Ops = OK + Misses + Failed).
	Ops, OK, Misses, Failed int64
	// CorruptReads counts hits whose value differs from the value written
	// for that key — the crash-consistency assertion; must stay zero.
	CorruptReads int64
	// VerifyHits / VerifyOps are the post-recovery sweep over every key.
	VerifyHits, VerifyOps int64
	// Elapsed covers the main phase only (the verify sweep is excluded so
	// clean and crashed elapsed are comparable).
	Elapsed sim.Time
	// Rejected counts server-side StatusRecovering answers; Nudges the
	// client-side retries they triggered.
	Rejected, Nudges int64
	// Report / RecoveryTime are the server's cold-restart scan results.
	Report       hybridslab.RecoveryReport
	RecoveryTime sim.Time
}

// HitRatio is the post-recovery verify-sweep hit ratio.
func (r *RecoveryRun) HitRatio() float64 {
	if r.VerifyOps == 0 {
		return 0
	}
	return float64(r.VerifyHits) / float64(r.VerifyOps)
}

// runRecovery executes one recovery-experiment run: preload (value == key,
// so every later hit is checkable), a main phase of ops mixed operations,
// and a verify sweep over every key. crashAt > 0 power-cycles the server
// that far into the main phase, with torn writes armed from preload on.
func runRecovery(d cluster.Design, pat workload.Pattern, ops int, crashAt sim.Time) *RecoveryRun {
	cl := cluster.New(cluster.Config{
		Design:    d,
		Profile:   cluster.ClusterA(),
		Servers:   1,
		Clients:   1,
		ServerMem: recoveryMem,
	})
	keys := int(int64(recoveryMem) * 3 / 2 / int64(recoveryKV))
	if crashAt > 0 {
		for i, dev := range cl.Devices {
			dev.SetTornWrites(int64(1000+i), recoveryTornProb)
		}
	}
	// Idempotent preload: the value for keyOf(i) is always keyOf(i), so a
	// recovered value is correct iff it equals its key — stale or torn data
	// surfacing after recovery is directly observable.
	cl.Env.Spawn("preload", func(p *sim.Proc) {
		for i := 0; i < keys; i++ {
			k := keyOf(i)
			cl.Clients[0].Set(p, k, recoveryKV, k, 0, 0)
		}
	})
	cl.Env.Run()
	cl.SettleIO()

	gen := workload.New(workload.Config{
		Keys: keys, ValueSize: recoveryKV, ReadFraction: 0.5,
		Pattern: pat, ZipfS: zipfOver, Seed: 7,
	})
	srv := cl.Servers[0]
	c := cl.Clients[0]
	rp := core.RetryPolicy{
		MaxAttempts:    12,
		AttemptTimeout: recoveryAttempt,
		Backoff:        500 * sim.Microsecond,
		MaxBackoff:     6 * sim.Millisecond,
		Seed:           99,
	}
	opts := []core.IssueOption{core.WithDeadline(recoveryDeadline), core.WithRetry(rp)}
	if d.BufferGuarantee() {
		opts = append(opts, core.WithBufferAck())
	}

	run := &RecoveryRun{Ops: int64(ops)}
	nudges0 := c.Stats().Recovering
	start := cl.Env.Now()
	if crashAt > 0 {
		cl.Env.At(start+crashAt, "cold-crash", func(p *sim.Proc) {
			srv.Crash()
			cl.Env.At(p.Now()+recoveryColdGap, "cold-restart", func(*sim.Proc) {
				srv.RestartCold()
			})
		})
	}
	one := func(p *sim.Proc, op core.Op) *core.Req {
		req, err := c.Issue(p, op, opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: recovery issue failed: %v", err))
		}
		c.Wait(p, req)
		return req
	}
	cl.Env.Spawn("drv-recovery", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			op := core.Op{Code: protocol.OpGet, Key: key}
			if kind == workload.OpSet {
				op = core.Op{Code: protocol.OpSet, Key: key, ValueSize: recoveryKV, Value: key}
			}
			req := one(p, op)
			switch e := req.Err(); {
			case e == nil:
				run.OK++
				if req.Op == protocol.OpGet && req.Value != any(key) {
					run.CorruptReads++
				}
			case errors.Is(e, core.ErrNotFound):
				run.Misses++
			default:
				run.Failed++
			}
		}
		run.Elapsed = p.Now() - start
		// Let any in-flight outage drain, then sweep every key: the hit
		// ratio measures what the crash cost, the value check that nothing
		// torn or uncommitted is served.
		for srv.Down() || srv.Recovering() {
			p.Sleep(sim.Millisecond)
		}
		for i := 0; i < keys; i++ {
			k := keyOf(i)
			req := one(p, core.Op{Code: protocol.OpGet, Key: k})
			run.VerifyOps++
			if req.Err() == nil {
				run.VerifyHits++
				if req.Value != any(k) {
					run.CorruptReads++
				}
			}
		}
	})
	cl.Env.Run()
	run.Rejected = srv.Rejected
	run.Nudges = c.Stats().Recovering - nudges0
	run.Report = srv.LastRecovery
	run.RecoveryTime = srv.RecoveryTime
	return run
}

// recoveryExp is the registry entry: for each hybrid design × access
// pattern, a clean run and a twin with a mid-run power cycle under torn
// writes, contrasting recovery time, scan outcome, and hit-ratio cost.
func recoveryExp(o Options) *Result {
	res := newResult("recovery", "Cold-restart recovery: crash consistency under torn writes")
	_, _, opsDef := o.geometry()
	ops := o.ops(opsDef / 2)

	recMS := &metrics.Series{Name: "recovery ms"}
	scanned := &metrics.Series{Name: "pages scan"}
	recovered := &metrics.Series{Name: "pages ok"}
	discarded := &metrics.Series{Name: "pages drop"}
	cleanHit := &metrics.Series{Name: "clean hit%"}
	postHit := &metrics.Series{Name: "post hit%"}
	failed := &metrics.Series{Name: "failed"}
	corrupt := &metrics.Series{Name: "corrupt"}

	designs := []cluster.Design{
		cluster.HRDMADef, cluster.HRDMAOptBlock,
		cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI,
	}
	patterns := []struct {
		name string
		pat  workload.Pattern
	}{
		{"uniform", workload.Uniform},
		{"zipf", workload.Zipf},
	}
	for _, d := range designs {
		for _, pc := range patterns {
			clean := runRecovery(d, pc.pat, ops, 0)
			crash := runRecovery(d, pc.pat, ops, clean.Elapsed/2)
			name := d.String() + "." + pc.name
			recMS.Append(name, float64(crash.RecoveryTime)/float64(sim.Millisecond))
			scanned.Append(name, float64(crash.Report.PagesScanned))
			recovered.Append(name, float64(crash.Report.PagesRecovered))
			discarded.Append(name, float64(crash.Report.PagesDiscarded))
			cleanHit.Append(name, 100*clean.HitRatio())
			postHit.Append(name, 100*crash.HitRatio())
			failed.Append(name, float64(crash.Failed))
			corrupt.Append(name, float64(crash.CorruptReads+clean.CorruptReads))
			res.metric(name+".recovery_ms", float64(crash.RecoveryTime)/float64(sim.Millisecond))
			res.metric(name+".pages_scanned", float64(crash.Report.PagesScanned))
			res.metric(name+".pages_recovered", float64(crash.Report.PagesRecovered))
			res.metric(name+".pages_discarded", float64(crash.Report.PagesDiscarded))
			res.metric(name+".pages_torn", float64(crash.Report.PagesTorn))
			res.metric(name+".pages_uncommitted", float64(crash.Report.PagesUncommitted))
			res.metric(name+".items_recovered", float64(crash.Report.ItemsRecovered))
			res.metric(name+".clean_hit_ratio", clean.HitRatio())
			res.metric(name+".post_hit_ratio", crash.HitRatio())
			res.metric(name+".rejected", float64(crash.Rejected))
			res.metric(name+".recovering_retries", float64(crash.Nudges))
			res.metric(name+".failed", float64(crash.Failed))
			res.metric(name+".corrupt_reads", float64(crash.CorruptReads+clean.CorruptReads))
		}
	}
	res.Output = res.addTable(res.Title,
		recMS, scanned, recovered, discarded, cleanHit, postHit, failed, corrupt) +
		res.renderMetrics()
	return res
}
