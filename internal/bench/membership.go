package bench

import (
	"errors"
	"fmt"
	"sort"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/fault"
	"hybridkv/internal/history"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The membership experiment: dynamic membership under chaos, plus a scaling
// sweep.
//
// Part one reruns the chaos soak's checker workers — CAS-chain writers and
// a guarded counter, every operation logged into a history.Log — on a
// three-server R=2 cluster whose membership changes under them: two joins
// (the second with a whole-node kill of a migration source mid-flight) and
// one graceful decommission of an original member. Every transition is
// recorded as a rebalance window, and rebalance windows are NOT excuse
// windows: the checker enforces no-stale-read and no-lost-acked-write right
// through the resharding, which is the experiment's headline claim. After
// the churn settles, a server-side durability sweep (the replication
// experiment's oracle) counts lost acked keys — zero is the acceptance bar.
//
// Part two is the scaling sweep: static clusters of N ∈ {3,5,7,9} servers
// at R ∈ {1,2,3} drive a 90:10 read-heavy workload through windowed
// non-blocking clients (2 per server) and report aggregate goodput. The
// point of dynamic membership is that adding servers adds capacity; the
// sweep pins that goodput grows monotonically from 3 to 9 servers at every
// replication factor.

const (
	memChaosWriters = 3
	memChaosKeysPer = 2
	memChaosValue   = 4 * 1024
	memChaosThink   = 120 * sim.Microsecond
	// memChaosLimit bounds the churn phase: an unfinished rebalance or a
	// wedged worker past this limit becomes a liveness/rebalance-stuck
	// violation instead of a hung benchmark.
	memChaosLimit = 500 * sim.Millisecond
	memSettle     = 10 * sim.Millisecond

	memScaleValue = 4 * 1024
	memScaleKeys  = 96 // per server
)

// membershipChaosRun is the churn phase's outcome.
type membershipChaosRun struct {
	Log        *history.Log
	Violations []history.Violation
	// AckedKeys / LostAcked: the end-of-run durability sweep over every key
	// with at least one client-confirmed OK write.
	AckedKeys, LostAcked int64
	// Rebalances is the number of membership transitions driven (3).
	Rebalances int
	Repl       *metrics.Counters
	Faults     *metrics.Counters
}

// runMembershipChaos drives the churn phase: checker workers on a 3-server
// R=2 cluster through join ×2, a kill-during-migration, and a decommission,
// under link faults, then sweeps for lost acked writes.
func runMembershipChaos(rounds int, seed int64) *membershipChaosRun {
	cl := cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           cluster.ClusterA(),
		Servers:           3,
		Clients:           1,
		ServerMem:         8 << 20, // dataset fits: eviction never drops keys, the sweep oracle is exact
		ReplicationFactor: 2,
	})
	inj := fault.New(fault.Config{Seed: seed, Drop: 0.005, Dup: 0.005, Spike: 0.01})
	cl.Fabric.SetFaults(inj)
	c := cl.Clients[0]

	log := &history.Log{Replicated: true}
	rp := core.RetryPolicy{
		MaxAttempts:    chaosMaxAttempts,
		AttemptTimeout: chaosAttemptTimeout,
		Backoff:        chaosBackoff,
		MaxBackoff:     chaosMaxBackoff,
		Jitter:         -1,
		Seed:           seed,
		Failover:       true, // R=2: every replica holds each acked write
	}
	guardGet := []core.IssueOption{core.WithDeadline(chaosDeadline), core.WithRetry(rp)}
	guardSet := append(append([]core.IssueOption{}, guardGet...), core.WithBufferAck())

	// lastOK tracks, per key, the newest sequence a writer saw complete OK —
	// the durability sweep's floor. Single-threaded simulation: no locking.
	lastOK := map[string]uint64{}
	expected := 0

	// Writers: the chaos soak's per-key CAS chains, unchanged — the point is
	// that the same workload that proves the invariants in steady state
	// proves them across reshards.
	for w := 0; w < memChaosWriters; w++ {
		w := w
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("mem-writer%d", w), func(p *sim.Proc) {
			next := make([]uint64, memChaosKeysPer)
			for r := 0; r < rounds; r++ {
				ki := r % memChaosKeysPer
				key := fmt.Sprintf("mem:w%d:k%d", w, ki)

				t0 := p.Now()
				rreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, guardGet...)
				if err != nil {
					panic("bench: membership read issue failed: " + err.Error())
				}
				c.Wait(p, rreq)
				rerr := rreq.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = rreq.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: w, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})

				next[ki]++
				seqW := next[ki]
				op := core.Op{Code: protocol.OpAdd, Key: key, ValueSize: memChaosValue, Value: seqW}
				if hit {
					op = core.Op{Code: protocol.OpCAS, Key: key, ValueSize: memChaosValue, Value: seqW, CAS: rreq.CAS}
				}
				t1 := p.Now()
				wreq, err := c.Issue(p, op, guardSet...)
				if err != nil {
					panic("bench: membership write issue failed: " + err.Error())
				}
				c.Wait(p, wreq)
				werr := wreq.Err()
				acked := wreq.Acked() &&
					(werr == nil || errors.Is(werr, core.ErrDeadlineExceeded))
				log.Record(history.Entry{
					Worker: w, Kind: history.Write, Key: key, Seq: seqW,
					OK: werr == nil, Acked: acked,
					IssuedAt: t1, CompletedAt: p.Now(),
				})
				if werr == nil && seqW > lastOK[key] {
					lastOK[key] = seqW
				}
				p.Sleep(memChaosThink)
			}
		})
	}

	// Counter worker, as in the chaos soak.
	expected += rounds
	cl.Env.Spawn("mem-counter", func(p *sim.Proc) {
		const key = "mem:ctr"
		seedCtr := func() {
			req, err := c.Issue(p, core.Op{
				Code: protocol.OpSet, Key: key,
				ValueSize: core.CounterSize, Value: uint64(0),
			}, guardSet...)
			if err != nil {
				panic("bench: membership counter issue failed: " + err.Error())
			}
			c.Wait(p, req)
		}
		seedCtr()
		for r := 0; r < rounds; r++ {
			t0 := p.Now()
			req, err := c.Issue(p, core.Op{Code: protocol.OpIncr, Key: key, Delta: 1}, guardGet...)
			if err != nil {
				panic("bench: membership incr issue failed: " + err.Error())
			}
			c.Wait(p, req)
			e := req.Err()
			v, _ := req.Value.(uint64)
			log.Record(history.Entry{
				Worker: memChaosWriters, Kind: history.IncrOp, Key: key, Seq: v,
				OK: e == nil, IssuedAt: t0, CompletedAt: p.Now(),
			})
			if errors.Is(e, core.ErrNotFound) {
				seedCtr()
			}
			p.Sleep(memChaosThink)
		}
	})

	// The churn schedule: join, join-with-a-kill, decommission — serialized,
	// each recorded as a rebalance window. A window left open at the end of
	// the run (To == 0) is a rebalance-stuck violation.
	run := &membershipChaosRun{Log: log}
	cl.Env.Spawn("mem-churn", func(p *sim.Proc) {
		await := func(from sim.Time, done *sim.Event) {
			p.Wait(done)
			log.RebalanceWindow(from, p.Now())
			run.Rebalances++
		}

		// Join #1: capacity up 3 → 4 under live traffic.
		p.Sleep(2 * sim.Millisecond)
		from := p.Now()
		_, done := cl.Join()
		await(from, done)

		// Join #2, with a whole-node kill of a migration source mid-flight:
		// the joiner keeps re-pulling until the victim cold-restarts and its
		// suspect keys reconfirm; the other replicas cover the overlap.
		p.Sleep(sim.Millisecond)
		from = p.Now()
		_, done = cl.Join()
		p.Sleep(200 * sim.Microsecond)
		victim := cl.Servers[1]
		cfrom := p.Now()
		victim.Kill(false) // RAM and buffers gone; SSD intact
		p.Sleep(300 * sim.Microsecond)
		victim.RestartCold()
		for victim.Recovering() {
			p.Sleep(100 * sim.Microsecond)
		}
		log.CrashWindow(cfrom, p.Now())
		await(from, done)

		// Decommission an original member: drain its range to the survivors,
		// then the watcher crashes it and retires its client-side state. No
		// crash window — the node's death must be invisible to the checker.
		p.Sleep(sim.Millisecond)
		from = p.Now()
		await(from, cl.Decommission(0))
	})

	start := cl.Env.Now()
	cl.Env.RunUntil(start + memChaosLimit)
	log.Expected = expected

	// Durability sweep: wait out recovery on every surviving server, let the
	// anti-entropy scrubber settle, then ask each survivor directly whether
	// it still holds every acked key at or past its newest OK sequence.
	cl.Env.Spawn("mem-sweep", func(p *sim.Proc) {
		for sid, s := range cl.Servers {
			if cl.Membership.State(sid) == replication.NodeDead {
				continue
			}
			for s.Down() || s.Recovering() {
				p.Sleep(sim.Millisecond)
			}
		}
		p.Sleep(memSettle)
		keys := make([]string, 0, len(lastOK))
		for k := range lastOK {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			run.AckedKeys++
			held := false
			for sid, s := range cl.Servers {
				if cl.Membership.State(sid) == replication.NodeDead {
					continue
				}
				if v, _, _, _, ok := s.Store().ReadItem(p, k); ok {
					if seq, _ := v.(uint64); seq >= lastOK[k] {
						held = true
						break
					}
				}
			}
			if !held {
				run.LostAcked++
			}
		}
	})
	cl.Env.Run()

	run.Violations = log.Check()
	run.Repl = cl.ReplicationCounters()
	run.Faults = c.Faults
	return run
}

// runMembershipScale is one scaling cell: a static cluster of servers
// nodes at replication factor, 2 clients per server pipelining a 90:10
// read-heavy mix in windows of 32. Returns aggregate goodput in kops.
// Elapsed is the last client's completion, not the Env drain — at R ≥ 2 the
// anti-entropy scrubber keeps ticking after the load stops, and counting
// that tail would charge replication for idle time.
func runMembershipScale(servers, factor, totalOps int) float64 {
	clients := 2 * servers
	keys := memScaleKeys * servers
	cl := cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           cluster.ClusterA(),
		Servers:           servers,
		Clients:           clients,
		ServerMem:         8 << 20,
		ReplicationFactor: factor,
	})
	cl.Preload(keys, memScaleValue, keyOf)
	opsPer := totalOps / clients
	if opsPer < 32 {
		opsPer = 32
	}
	var last sim.Time
	start := cl.Env.Now()
	for ci := range cl.Clients {
		c := cl.Clients[ci]
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: memScaleValue, ReadFraction: 0.9,
			Pattern: workload.Uniform, Seed: int64(300 + ci),
		})
		cl.Env.Spawn(fmt.Sprintf("mem-scale-%d", ci), func(p *sim.Proc) {
			nb := &NonBlockingResult{}
			left := opsPer
			for left > 0 {
				n := 32
				if n > left {
					n = left
				}
				reqs := issueAll(p, c, gen, n, true, nb)
				c.WaitAll(p, reqs)
				left -= n
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	cl.Env.Run()
	return metrics.Throughput(int64(opsPer*clients), last-start) / 1000
}

// membershipExp is the registry entry.
func membershipExp(o Options) *Result {
	res := newResult("membership",
		"Dynamic membership: join/decommission under chaos, zero acked-write loss, and the scaling sweep")
	rounds := o.ops(420) / (memChaosWriters*2 + 1)
	if rounds < 8 {
		rounds = 8
	}

	rep := runMembershipChaos(rounds, 42)
	moved := rep.Repl.Get("migrate-keys-moved")

	churn := &metrics.Series{Name: "churn"}
	churn.Append("violations", float64(len(rep.Violations)))
	churn.Append("lost acked", float64(rep.LostAcked))
	churn.Append("moved keys", float64(moved))
	churn.Append("rebalances", float64(rep.Rebalances))

	res.metric("chaos.violations", float64(len(rep.Violations)))
	res.metric("chaos.entries", float64(len(rep.Log.Entries)))
	res.metric("chaos.acked_keys", float64(rep.AckedKeys))
	res.metric("chaos.lost_acked", float64(rep.LostAcked))
	res.metric("chaos.rebalances", float64(rep.Rebalances))
	res.metric("chaos.moved_keys", float64(moved))
	res.metric("chaos.migrate_seals", float64(rep.Repl.Get("migrate-seals")))
	res.metric("chaos.migrate_manifests", float64(rep.Repl.Get("migrate-manifests")))
	res.metric("chaos.double_reads", float64(rep.Repl.Get("migrate-double-reads")))
	res.metric("chaos.read_redirects", float64(rep.Repl.Get("migrate-read-redirects")))
	res.metric("chaos.gc_keys", float64(rep.Repl.Get("migrate-gc-keys")))
	res.metric("chaos.forwards", float64(rep.Repl.Get("forwards")))
	res.metric("chaos.epoch_invalidations", float64(rep.Faults.Val(metrics.CEpochInvalidations)))
	res.metric("chaos.retired_conns", float64(rep.Faults.Val(metrics.CRetiredConns)))

	detail := ""
	for _, v := range rep.Violations {
		detail += fmt.Sprintf("VIOLATION %s\n", v)
	}

	// Scaling sweep: op/s vs node count at every factor; goodput must grow
	// monotonically 3 → 9 servers.
	nodes := []int{3, 5, 7, 9}
	scaleOps := o.ops(4800)
	scale := &metrics.Series{Name: "goodput kops"}
	for _, factor := range []int{1, 2, 3} {
		prev := 0.0
		monotone := 1.0
		for _, n := range nodes {
			kops := runMembershipScale(n, factor, scaleOps)
			name := fmt.Sprintf("R%d.N%d", factor, n)
			scale.Append(name, kops)
			res.metric("scale."+name+".kops", kops)
			if kops <= prev {
				monotone = 0
			}
			prev = kops
		}
		res.metric(fmt.Sprintf("scale.R%d.monotonic", factor), monotone)
	}

	res.Output = res.addTable(res.Title, churn) + res.addTable("scaling", scale) +
		detail + res.renderMetrics()
	return res
}
