// Package bench implements the paper's evaluation harness: one driver per
// workload shape and one experiment per table/figure (Section VI). Every
// experiment builds a cluster, preloads it, runs the measurement phase, and
// reports the same rows/series the paper plots, plus named scalar metrics
// (improvement factors, overlap percentages) that EXPERIMENTS.md and the
// regression tests check.
package bench

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// BlockingResult summarizes a blocking-API measurement phase.
type BlockingResult struct {
	SetLat  *metrics.Hist
	GetLat  *metrics.Hist
	AllLat  *metrics.Hist
	Misses  int64
	Ops     int64
	Elapsed sim.Time
	// Server is the server-side stage breakdown for the phase; Client the
	// client-side one.
	Server *metrics.Breakdown
	Client *metrics.Breakdown
}

// snapshotServers freezes the per-server profiles.
func snapshotServers(cl *cluster.Cluster) []*metrics.Breakdown {
	var snaps []*metrics.Breakdown
	for _, s := range cl.Servers {
		snaps = append(snaps, s.Store().Prof.Snapshot())
	}
	return snaps
}

func diffServers(cl *cluster.Cluster, snaps []*metrics.Breakdown) *metrics.Breakdown {
	out := metrics.NewBreakdown()
	for i, s := range cl.Servers {
		out.Merge(s.Store().Prof.Sub(snaps[i]))
	}
	return out
}

// RunBlocking executes ops blocking operations from gen on client ci,
// emulating the web-caching contract: a Get miss fetches the value from the
// backend (the miss penalty) and re-populates the cache. It must be called
// outside any sim process; it runs the simulation to completion.
func RunBlocking(cl *cluster.Cluster, gen *workload.Generator, ci, ops int) *BlockingResult {
	res := &BlockingResult{
		SetLat: metrics.NewHist(), GetLat: metrics.NewHist(), AllLat: metrics.NewHist(),
	}
	srvSnaps := snapshotServers(cl)
	clSnap := cl.Clients[ci].Prof.Snapshot()
	c := cl.Clients[ci]
	start := cl.Env.Now()
	cl.Env.Spawn(fmt.Sprintf("drv-block-%d", ci), func(p *sim.Proc) {
		runBlockingOps(p, cl, c, gen, ops, res)
	})
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(ops)
	res.Server = diffServers(cl, srvSnaps)
	res.Client = c.Prof.Sub(clSnap)
	return res
}

// runBlockingOps is the per-process body, reusable for multi-client runs.
func runBlockingOps(p *sim.Proc, cl *cluster.Cluster, c *core.Client, gen *workload.Generator, ops int, res *BlockingResult) {
	vs := gen.ValueSize()
	for i := 0; i < ops; i++ {
		kind, key := gen.Next()
		t0 := p.Now()
		if kind == workload.OpSet {
			c.Set(p, key, vs, key, 0, 0)
			d := p.Now() - t0
			res.SetLat.Add(d)
			res.AllLat.Add(d)
			continue
		}
		_, _, st := c.Get(p, key)
		if st == protocol.StatusNotFound {
			// Miss: fetch from the backend and re-populate the cache.
			res.Misses++
			mt := p.Now()
			v := cl.Backend.Fetch(p, key)
			c.Prof.Add(metrics.StageMissPenalty, p.Now()-mt)
			c.Set(p, key, vs, v, 0, 0)
		}
		d := p.Now() - t0
		res.GetLat.Add(d)
		res.AllLat.Add(d)
	}
}

// NonBlockingResult summarizes a non-blocking measurement phase.
type NonBlockingResult struct {
	Ops       int64
	Misses    int64
	Elapsed   sim.Time
	PerOp     sim.Time
	IssueTime sim.Time // time the app was stuck inside issue calls
	Server    *metrics.Breakdown
	Client    *metrics.Breakdown
}

// RunNonBlocking issues ops operations with iset/iget (buffered=false) or
// bset/bget (buffered=true) and waits for all completions at the end, the
// paper's "large iteration of non-blocking Set/Get requests" methodology.
func RunNonBlocking(cl *cluster.Cluster, gen *workload.Generator, ci, ops int, buffered bool) *NonBlockingResult {
	res := &NonBlockingResult{}
	srvSnaps := snapshotServers(cl)
	c := cl.Clients[ci]
	clSnap := c.Prof.Snapshot()
	start := cl.Env.Now()
	cl.Env.Spawn(fmt.Sprintf("drv-nonb-%d", ci), func(p *sim.Proc) {
		reqs := issueAll(p, c, gen, ops, buffered, res)
		c.WaitAll(p, reqs)
		for _, r := range reqs {
			if r.Status == protocol.StatusNotFound {
				res.Misses++
			}
		}
	})
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(ops)
	if ops > 0 {
		res.PerOp = res.Elapsed / sim.Time(ops)
	}
	res.Server = diffServers(cl, srvSnaps)
	res.Client = c.Prof.Sub(clSnap)
	return res
}

func issueAll(p *sim.Proc, c *core.Client, gen *workload.Generator, ops int, buffered bool, res *NonBlockingResult) []*core.Req {
	vs := gen.ValueSize()
	reqs := make([]*core.Req, 0, ops)
	for i := 0; i < ops; i++ {
		kind, key := gen.Next()
		t0 := p.Now()
		var req *core.Req
		var err error
		switch {
		case kind == workload.OpSet && buffered:
			req, err = c.BSet(p, key, vs, key, 0, 0)
		case kind == workload.OpSet:
			req, err = c.ISet(p, key, vs, key, 0, 0)
		case buffered:
			req, err = c.BGet(p, key)
		default:
			req, err = c.IGet(p, key)
		}
		if err != nil {
			panic("bench: non-blocking issue failed: " + err.Error())
		}
		res.IssueTime += p.Now() - t0
		reqs = append(reqs, req)
	}
	return reqs
}

// OverlapResult reports the communication/computation overlap experiment.
type OverlapResult struct {
	Ops         int64
	Elapsed     sim.Time
	ComputeTime sim.Time
	OverlapPct  float64
}

// computeGrain is the unit of application computation interleaved with
// in-flight operations when measuring available overlap.
const computeGrain = 5 * sim.Microsecond

// RunOverlap measures the fraction of job runtime available for application
// computation (Figure 7(a)): issue every op non-blockingly, then compute in
// grains, testing completion between grains; overlap% = compute/total.
// Blocking mode (mode="block") runs ops back-to-back — no overlap by
// construction — and reports the measured (≈0) figure.
func RunOverlap(cl *cluster.Cluster, gen *workload.Generator, ci, ops int, mode string) *OverlapResult {
	res := &OverlapResult{Ops: int64(ops)}
	c := cl.Clients[ci]
	start := cl.Env.Now()
	cl.Env.Spawn("drv-overlap", func(p *sim.Proc) {
		switch mode {
		case "block":
			vs := gen.ValueSize()
			for i := 0; i < ops; i++ {
				kind, key := gen.Next()
				if kind == workload.OpSet {
					c.Set(p, key, vs, key, 0, 0)
				} else {
					c.Get(p, key)
				}
			}
		case "nonb-i", "nonb-b":
			nb := &NonBlockingResult{}
			reqs := issueAll(p, c, gen, ops, mode == "nonb-b", nb)
			// Application computation fills the time until completion.
			for {
				done := true
				for _, r := range reqs {
					if !c.Test(r) {
						done = false
						break
					}
				}
				if done {
					break
				}
				p.Sleep(computeGrain)
				res.ComputeTime += computeGrain
			}
		default:
			panic("bench: unknown overlap mode " + mode)
		}
	})
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	if res.Elapsed > 0 {
		res.OverlapPct = 100 * float64(res.ComputeTime) / float64(res.Elapsed)
	}
	return res
}

// BlockIOResult reports the bursty block I/O experiment.
type BlockIOResult struct {
	Blocks        int
	WriteBlockLat *metrics.Hist
	ReadBlockLat  *metrics.Hist
}

// RunBlockIO writes then reads every block of the workload. Non-blocking
// mode issues all chunks of a block and waits block-by-block (Listing 2);
// blocking mode round-trips each chunk.
func RunBlockIO(cl *cluster.Cluster, bc workload.BlockConfig, ci int, nonblocking bool) *BlockIOResult {
	res := &BlockIOResult{
		Blocks:        bc.Blocks(),
		WriteBlockLat: metrics.NewHist(),
		ReadBlockLat:  metrics.NewHist(),
	}
	c := cl.Clients[ci]
	chunks := bc.ChunksPerBlock()
	cl.Env.Spawn("drv-blockio", func(p *sim.Proc) {
		// Write phase.
		for blk := 0; blk < res.Blocks; blk++ {
			t0 := p.Now()
			if nonblocking {
				reqs := make([]*core.Req, 0, chunks)
				for ch := 0; ch < chunks; ch++ {
					req, err := c.ISet(p, bc.ChunkKey(blk, ch), bc.ChunkSize, blk*chunks+ch, 0, 0)
					if err != nil {
						panic(err)
					}
					reqs = append(reqs, req)
				}
				c.WaitAll(p, reqs)
			} else {
				for ch := 0; ch < chunks; ch++ {
					c.Set(p, bc.ChunkKey(blk, ch), bc.ChunkSize, blk*chunks+ch, 0, 0)
				}
			}
			res.WriteBlockLat.Add(p.Now() - t0)
		}
		// Read phase.
		for blk := 0; blk < res.Blocks; blk++ {
			t0 := p.Now()
			if nonblocking {
				reqs := make([]*core.Req, 0, chunks)
				for ch := 0; ch < chunks; ch++ {
					req, err := c.IGet(p, bc.ChunkKey(blk, ch))
					if err != nil {
						panic(err)
					}
					reqs = append(reqs, req)
				}
				c.WaitAll(p, reqs)
			} else {
				for ch := 0; ch < chunks; ch++ {
					c.Get(p, bc.ChunkKey(blk, ch))
				}
			}
			res.ReadBlockLat.Add(p.Now() - t0)
		}
	})
	cl.Env.Run()
	return res
}

// ThroughputResult reports a multi-client aggregate throughput phase.
type ThroughputResult struct {
	Ops     int64
	Elapsed sim.Time
	OpsPerS float64
}

// RunThroughput drives every client concurrently with opsPerClient ops
// each and reports aggregate operations/second. Non-blocking clients
// pipeline in windows of window ops.
func RunThroughput(cl *cluster.Cluster, mk func(ci int) *workload.Generator, opsPerClient int, nonblocking, buffered bool, window int) *ThroughputResult {
	if window <= 0 {
		window = 32
	}
	res := &ThroughputResult{}
	start := cl.Env.Now()
	for ci := range cl.Clients {
		c := cl.Clients[ci]
		gen := mk(ci)
		cl.Env.Spawn(fmt.Sprintf("drv-tput-%d", ci), func(p *sim.Proc) {
			if !nonblocking {
				r := &BlockingResult{SetLat: metrics.NewHist(), GetLat: metrics.NewHist(), AllLat: metrics.NewHist()}
				runBlockingOps(p, cl, c, gen, opsPerClient, r)
				return
			}
			nb := &NonBlockingResult{}
			left := opsPerClient
			for left > 0 {
				n := window
				if n > left {
					n = left
				}
				reqs := issueAll(p, c, gen, n, buffered, nb)
				c.WaitAll(p, reqs)
				left -= n
			}
		})
	}
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(opsPerClient * len(cl.Clients))
	res.OpsPerS = metrics.Throughput(res.Ops, res.Elapsed)
	return res
}
