package bench

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"hybridkv/internal/cluster"
)

// MetricRecord is one machine-readable result row: experiment id, the design
// the metric belongs to (empty for cross-design metrics), the metric key
// with the design prefix stripped, and its value. BENCH_*.json files hold a
// sorted array of these so perf trajectories diff cleanly across commits.
type MetricRecord struct {
	Experiment string  `json:"experiment"`
	Design     string  `json:"design,omitempty"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
}

// Records flattens results into sorted metric records, splitting the leading
// design name off each metric key when one matches.
func Records(results []*Result) []MetricRecord {
	var out []MetricRecord
	for _, r := range results {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec := MetricRecord{Experiment: r.ID, Metric: k, Value: r.Metrics[k]}
			for _, d := range cluster.Designs {
				if pre := d.String() + "."; strings.HasPrefix(k, pre) {
					rec.Design = d.String()
					rec.Metric = strings.TrimPrefix(k, pre)
					break
				}
			}
			out = append(out, rec)
		}
	}
	return out
}

// WriteJSON emits the results' metric records as an indented JSON array.
func WriteJSON(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(Records(results))
}
