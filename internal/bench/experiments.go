package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// Options scales an experiment. The default (Full=false) shrinks the
// paper's 1 GB server / 1.5 GB dataset geometry by 4x — every ratio that
// determines the result shape (dataset:RAM 1.5:1, kv size, zipf skew, op
// mix) is preserved — so the suite runs in seconds. Full restores the
// paper's absolute sizes.
type Options struct {
	Full bool
	// Ops overrides the measured operation count (0 = default).
	Ops int
	// Verbose includes extra diagnostic rows.
	Verbose bool
}

// geometry returns (serverMem, kvSize, opsDefault) under o.
func (o Options) geometry() (int64, int, int) {
	if o.Full {
		return 1 << 30, 32 * 1024, 12000
	}
	return 256 << 20, 32 * 1024, 3000
}

func (o Options) ops(def int) int {
	if o.Ops > 0 {
		return o.Ops
	}
	return def
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Output string
	// Metrics holds named scalar results (latencies in µs, throughput in
	// ops/s, overlap in %), for EXPERIMENTS.md and regression tests.
	Metrics map[string]float64
	// Tables retains the structured series behind Output, for CSV export.
	Tables []ResultTable
}

// ResultTable is one figure table: labeled rows × named series columns.
type ResultTable struct {
	Title string
	Cols  []*metrics.Series
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: make(map[string]float64)}
}

func (r *Result) metric(key string, v float64) { r.Metrics[key] = v }

// addTable registers a table and returns its rendering.
func (r *Result) addTable(title string, cols ...*metrics.Series) string {
	r.Tables = append(r.Tables, ResultTable{Title: title, Cols: cols})
	return metrics.Table(title, cols...)
}

// WriteCSV emits every table as CSV: one header row per table, the first
// column being the row label.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, t := range r.Tables {
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
		header := []string{"label"}
		for _, c := range t.Cols {
			header = append(header, c.Name)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		if len(t.Cols) == 0 {
			continue
		}
		for i, label := range t.Cols[0].Labels {
			row := []string{label}
			for _, c := range t.Cols {
				if i < len(c.Values) {
					row = append(row, strconv.FormatFloat(c.Values[i], 'f', 4, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func (r *Result) renderMetrics() string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-52s %14.2f\n", k, r.Metrics[k])
	}
	return sb.String()
}

func us(d sim.Time) float64 { return float64(d) / float64(sim.Microsecond) }

// zipfOver is the zipfian exponent used for the "data does not fit"
// experiments. The paper says only "Zipf-like ... repeated requests to a
// subset"; the exponent controls how much traffic reaches the SSD-resident
// tail and hence the absolute degradation factor of H-RDMA-Def. 0.4 places
// that factor in the paper's observed band (Section VI-C); orderings and
// who-wins conclusions are insensitive to this choice (see the zipf
// sensitivity ablation in bench_test.go / cmd/mc-sweep).
const zipfOver = 0.99

// zipfFits is the YCSB default used when everything fits in memory.
const zipfFits = 0.99

// zipfFor picks the exponent by geometry.
func zipfFor(fits bool) float64 {
	if fits {
		return zipfFits
	}
	return zipfOver
}

// keyOf is the canonical key naming shared with workload.Generator.Key.
func keyOf(i int) string { return fmt.Sprintf("obj:%010d", i) }

// buildAndPreload assembles a cluster of the design and preloads dataBytes
// of kvSize values.
func buildAndPreload(d cluster.Design, prof cluster.Profile, mem int64, dataBytes int64, kvSize int, servers, clients int) (*cluster.Cluster, int) {
	cl := cluster.New(cluster.Config{
		Design:  d,
		Profile: prof,
		Servers: servers,
		Clients: clients,
		ServerMem: func() int64 {
			if servers > 0 {
				return mem / int64(servers)
			}
			return mem
		}(),
	})
	keys := int(dataBytes / int64(kvSize))
	cl.Preload(keys, kvSize, keyOf)
	return cl, keys
}

// --- Table I: design comparison with existing work ---

// table1 verifies the feature matrix against the actual design wiring: the
// rows are asserted from cluster.Design's accessors, not hand-maintained.
func table1(o Options) *Result {
	res := newResult("tbl1", "Table I: Design comparison with existing work")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", res.Title)
	fmt.Fprintf(&sb, "  %-20s %6s %8s %10s %6s %12s\n",
		"design", "RDMA", "hybrid", "adaptive", "NVMe", "non-blocking")
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	for _, d := range cluster.Designs {
		rdma := d.Transport() == core.RDMA
		adaptive := d.Hybrid() && d.Policy() == hybridslab.PolicyAdaptive
		// NVMe support = hybrid designs run on Cluster B's profile.
		nvme := d.Hybrid()
		fmt.Fprintf(&sb, "  %-20s %6s %8s %10s %6s %12s\n",
			d.String(), yn(rdma), yn(d.Hybrid()), yn(adaptive), yn(nvme), yn(d.NonBlocking()))
		res.metric(d.String()+".rdma", boolMetric(rdma))
		res.metric(d.String()+".hybrid", boolMetric(d.Hybrid()))
		res.metric(d.String()+".adaptive", boolMetric(adaptive))
		res.metric(d.String()+".nonblocking", boolMetric(d.NonBlocking()))
	}
	res.Output = sb.String()
	return res
}

// --- Figure 1: overall Set/Get latency of the existing designs ---

func fig1(o Options, fits bool) *Result {
	id, title := "fig1a", "Figure 1(a): Overall latency, data fits in memory"
	if !fits {
		id, title = "fig1b", "Figure 1(b): Overall latency, data does not fit in memory (miss penalty < 2 ms)"
	}
	res := newResult(id, title)
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 4
	if !fits {
		dataBytes = mem * 3 / 2
	}
	ops := o.ops(opsDef)
	set := &metrics.Series{Name: "Set µs"}
	get := &metrics.Series{Name: "Get µs"}
	miss := &metrics.Series{Name: "miss%"}
	for _, d := range []cluster.Design{cluster.IPoIBMem, cluster.RDMAMem, cluster.HRDMADef} {
		cl, keys := buildAndPreload(d, cluster.ClusterA(), mem, dataBytes, kv, 1, 1)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfFor(fits), Seed: 7,
		})
		r := RunBlocking(cl, gen, 0, ops)
		set.Append(d.String(), us(r.SetLat.Mean()))
		get.Append(d.String(), us(r.GetLat.Mean()))
		miss.Append(d.String(), 100*float64(r.Misses)/float64(ops))
		res.metric(d.String()+".set_us", us(r.SetLat.Mean()))
		res.metric(d.String()+".get_us", us(r.GetLat.Mean()))
		res.metric(d.String()+".avg_us", us(r.AllLat.Mean()))
	}
	res.metric("ratio.ipoib_vs_rdma", res.Metrics["IPoIB-Mem.avg_us"]/res.Metrics["RDMA-Mem.avg_us"])
	res.Output = res.addTable(title, set, get, miss) + res.renderMetrics()
	return res
}

// --- Figure 2: six-stage time-wise breakdown of the existing designs ---

func fig2(o Options, fits bool) *Result {
	id, title := "fig2a", "Figure 2(a): Time-wise breakdown, data fits in memory"
	if !fits {
		id, title = "fig2b", "Figure 2(b): Time-wise breakdown, data does not fit in memory"
	}
	return breakdownExperiment(id, title, o, fits,
		[]cluster.Design{cluster.IPoIBMem, cluster.RDMAMem, cluster.HRDMADef})
}

// --- Figure 6: breakdown including the proposed designs ---

func fig6(o Options, fits bool) *Result {
	id, title := "fig6a", "Figure 6(a): Breakdown with blocking and non-blocking APIs, data fits"
	if !fits {
		id, title = "fig6b", "Figure 6(b): Breakdown with blocking and non-blocking APIs, data does not fit"
	}
	r := breakdownExperiment(id, title, o, fits, cluster.Designs)
	// Headline improvement factors (paper: Opt-Block ≈2x over Def;
	// NonB ≈10-16x over Def; NonB ≈3.3-8x over Opt-Block; ≈3.6x over
	// IPoIB when data fits).
	def := r.Metrics["H-RDMA-Def.avg_us"]
	opt := r.Metrics["H-RDMA-Opt-Block.avg_us"]
	nbI := r.Metrics["H-RDMA-Opt-NonB-i.avg_us"]
	nbB := r.Metrics["H-RDMA-Opt-NonB-b.avg_us"]
	ipoib := r.Metrics["IPoIB-Mem.avg_us"]
	if opt > 0 {
		r.metric("improvement.optblock_vs_def", def/opt)
	}
	if nbI > 0 {
		r.metric("improvement.nonb_i_vs_def", def/nbI)
		r.metric("improvement.nonb_i_vs_optblock", opt/nbI)
		r.metric("improvement.nonb_i_vs_ipoib", ipoib/nbI)
	}
	if nbB > 0 {
		r.metric("improvement.nonb_b_vs_def", def/nbB)
	}
	r.Output += r.renderMetrics()
	return r
}

// breakdownExperiment renders per-design stage breakdowns (Figures 2 and 6).
func breakdownExperiment(id, title string, o Options, fits bool, designs []cluster.Design) *Result {
	res := newResult(id, title)
	mem, kv, opsDef := o.geometry()
	dataBytes := mem * 3 / 4
	if !fits {
		dataBytes = mem * 3 / 2
	}
	ops := o.ops(opsDef)
	stageSeries := make(map[string]*metrics.Series)
	for _, st := range metrics.Stages {
		stageSeries[st] = &metrics.Series{Name: shortStage(st)}
	}
	totalSeries := &metrics.Series{Name: "total µs"}
	for _, d := range designs {
		cl, keys := buildAndPreload(d, cluster.ClusterA(), mem, dataBytes, kv, 1, 1)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfFor(fits), Seed: 7,
		})
		var perOp sim.Time
		var server, client *metrics.Breakdown
		n := int64(ops)
		if d.NonBlocking() {
			r := RunNonBlocking(cl, gen, 0, ops, d.BufferGuarantee())
			perOp = r.PerOp
			server, client = r.Server, r.Client
			// For non-blocking runs the client-visible wait is the issue
			// stall plus the final wait, amortized.
			client = client.Snapshot()
		} else {
			r := RunBlocking(cl, gen, 0, ops)
			perOp = r.AllLat.Mean()
			server, client = r.Server, r.Client
		}
		// Stack the six stages so they sum to the per-op latency: the
		// client-wait stage is the residual not attributable to server
		// stages or the miss penalty (pure network + blocking time).
		row := map[string]sim.Time{}
		var accounted sim.Time
		for _, st := range []string{metrics.StageSlabAlloc, metrics.StageCacheLoad, metrics.StageCacheUpdate, metrics.StageResponse} {
			row[st] = server.PerOp(st, n)
			accounted += row[st]
		}
		row[metrics.StageMissPenalty] = client.PerOp(metrics.StageMissPenalty, n)
		accounted += row[metrics.StageMissPenalty]
		if perOp > accounted {
			row[metrics.StageClientWait] = perOp - accounted
		}
		for _, st := range metrics.Stages {
			stageSeries[st].Append(d.String(), us(row[st]))
		}
		totalSeries.Append(d.String(), us(perOp))
		res.metric(d.String()+".avg_us", us(perOp))
		res.metric(d.String()+".client_wait_us", us(row[metrics.StageClientWait]))
		res.metric(d.String()+".slab_alloc_us", us(row[metrics.StageSlabAlloc]))
		res.metric(d.String()+".cache_load_us", us(row[metrics.StageCacheLoad]))
		res.metric(d.String()+".miss_penalty_us", us(row[metrics.StageMissPenalty]))
	}
	cols := []*metrics.Series{}
	for _, st := range metrics.Stages {
		cols = append(cols, stageSeries[st])
	}
	cols = append(cols, totalSeries)
	res.Output = res.addTable(title+" (per-op µs by stage)", cols...)
	return res
}

func shortStage(st string) string {
	switch st {
	case metrics.StageSlabAlloc:
		return "slab"
	case metrics.StageCacheLoad:
		return "load"
	case metrics.StageCacheUpdate:
		return "update"
	case metrics.StageResponse:
		return "resp"
	case metrics.StageClientWait:
		return "cli-wait"
	case metrics.StageMissPenalty:
		return "miss"
	}
	return st
}

// --- Figure 4: synchronous eviction I/O schemes across data sizes ---

func fig4(o Options) *Result {
	res := newResult("fig4", "Figure 4: Synchronous eviction time by I/O scheme and data size (SATA)")
	sizes := []int{2048, 8192, 32 * 1024, 128 * 1024, 512 * 1024, 1 << 20}
	schemes := []pagecache.Scheme{pagecache.Direct, pagecache.Cached, pagecache.Mmap}
	series := map[pagecache.Scheme]*metrics.Series{}
	for _, s := range schemes {
		series[s] = &metrics.Series{Name: s.String() + " µs"}
	}
	const rounds = 64
	arena := int64(64 << 20)
	for _, size := range sizes {
		for _, s := range schemes {
			env := sim.NewEnv()
			dev := blockdev.New(env, blockdev.SATA(), 4*arena)
			par := pagecache.DefaultParams()
			// 8 MB cache so the 64 MB arena cannot stay resident, with
			// writeback watermarks scaled to match.
			par.MaxPages = 2048
			par.DirtyHighPages = 512
			par.ThrottlePages = 1024
			cache := pagecache.New(env, dev, par)
			f := cache.OpenFile(0, arena)
			var total sim.Time
			env.Spawn("fig4", func(p *sim.Proc) {
				slots := int(arena) / size
				for i := 0; i < rounds; i++ {
					off := int64((i % slots)) * int64(size)
					t0 := p.Now()
					f.Write(p, off, size, i, s)
					total += p.Now() - t0
				}
			})
			env.Run()
			mean := total / rounds
			series[s].Append(fmt.Sprintf("%dKB", size/1024), us(mean))
			res.metric(fmt.Sprintf("%s.%dKB_us", s, size/1024), us(mean))
		}
	}
	res.metric("crossover.small_mmap_wins", boolMetric(
		res.Metrics["mmap.2KB_us"] < res.Metrics["cached.2KB_us"]))
	res.metric("crossover.large_cached_wins", boolMetric(
		res.Metrics["cached.1024KB_us"] < res.Metrics["mmap.1024KB_us"]))
	res.Output = res.addTable(res.Title, series[pagecache.Direct], series[pagecache.Cached], series[pagecache.Mmap]) + res.renderMetrics()
	return res
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
