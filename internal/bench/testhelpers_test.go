package bench

import (
	"hybridkv/internal/cluster"
	"hybridkv/internal/workload"
)

// Small helpers keeping the driver sanity tests readable.

func clusterDesignForTest() cluster.Design   { return cluster.RDMAMem }
func nonbDesignForTest() cluster.Design      { return cluster.HRDMAOptNonBI }
func clusterProfileForTest() cluster.Profile { return cluster.ClusterA() }

func workloadForTest(keys, kv int) *workload.Generator {
	return workload.New(workload.Config{
		Keys: keys, ValueSize: kv, ReadFraction: 0.5,
		Pattern: workload.Zipf, ZipfS: 0.99, Seed: 5,
	})
}
