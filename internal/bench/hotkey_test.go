package bench

import "testing"

// TestHotkeyExperimentShape runs the hotkey experiment and checks the claims
// its cells exist to make: with replicas to fan out over, the flash crowd's
// goodput beats the same deployment without fan-out (the celebrity's primary
// stops being the lone bottleneck); detection is live (samples fed the
// sketch, refreshes carried the set, fan-outs actually routed); and the
// replicated history checker finds zero violations under fan-out plus
// whole-node kills.
func TestHotkeyExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hotkey experiment is slow")
	}
	r := hotkeyExp(Options{Ops: 14400})

	if v := r.Metrics["fanout_speedup_r3"]; v < 1.5 {
		t.Errorf("R=3 fan-out goodput speedup %.2f, want ≥1.5", v)
	}
	if v := r.Metrics["fanout.R3.fanouts"]; v == 0 {
		t.Error("R=3 fan-out cell never fanned a GET out")
	}
	if v := r.Metrics["fanout.R1.fanouts"]; v != 0 {
		t.Errorf("R=1 cell fanned out %v GETs with nothing to fan to", v)
	}
	if v := r.Metrics["fanout.R3.hot_samples"]; v == 0 {
		t.Error("no RPC heat samples reached the server sketch")
	}
	if v := r.Metrics["fanout.R3.hot_refreshes"]; v == 0 {
		t.Error("clients never refreshed the hot set")
	}
	// The doorbell-batched read engine must coalesce: strictly fewer
	// doorbells than READs posted.
	if d, n := r.Metrics["bypass.R3.read_doorbells"], r.Metrics["bypass.R3.reads"]; d >= n {
		t.Errorf("read engine never coalesced: %v doorbells for %v READs", d, n)
	}
	if v := r.Metrics["chaos.violations"]; v != 0 {
		t.Errorf("fan-out chaos cell recorded %v history violations, want 0", v)
	}
	if v := r.Metrics["chaos.fanouts"]; v == 0 {
		t.Error("chaos cell never fanned out: safety claim untested")
	}
}
