package bench

import "testing"

// TestBypassExperimentShape runs the bypass experiment and checks the
// claims the cells exist to make: on read-heavy zipf the bypass path beats
// the RPC path on both mean hit latency and aggregate throughput, every
// in-RAM cell serves without misses, and the SSD-overcommit cell actually
// exercises the fallback path (and still serves correctly).
func TestBypassExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("bypass experiment is slow")
	}
	r := bypassExp(Options{Ops: 4800})

	if v := r.Metrics["speedup.read.zipf.get_us"]; v <= 1 {
		t.Errorf("bypass hit latency not better than RPC: speedup %.2f", v)
	}
	if v := r.Metrics["speedup.read.zipf.kops"]; v <= 1 {
		t.Errorf("bypass throughput not better than RPC: speedup %.2f", v)
	}
	for _, cell := range []string{
		"rpc.read.zipf", "bypass.read.zipf", "rpc.r95.zipf", "bypass.r95.zipf",
		"rpc.rw50.zipf", "bypass.rw50.zipf", "rpc.read.unif", "bypass.read.unif",
		"rpc.read.ssd", "bypass.read.ssd",
	} {
		if v := r.Metrics[cell+".misses"]; v != 0 {
			t.Errorf("%s: %v misses on a fully-preloaded keyspace", cell, v)
		}
	}
	if v := r.Metrics["bypass.read.zipf.hits"]; v == 0 {
		t.Error("zipf cell resolved nothing via bypass")
	}
	if v := r.Metrics["bypass.read.zipf.fastpath_pct"]; v <= 0 {
		t.Error("zipf cell never used the location-cache fast path")
	}
	// Half the SSD cell's dataset is flash-resident: probes must see the
	// SSD flag and fall back far more often than the in-RAM cells do.
	ssd, ram := r.Metrics["bypass.read.ssd.fallback_pct"], r.Metrics["bypass.read.zipf.fallback_pct"]
	if ssd <= ram {
		t.Errorf("SSD-overcommit fallback%% (%.1f) not above in-RAM (%.1f)", ssd, ram)
	}
}
