package bench

import (
	"testing"

	"hybridkv/internal/cluster"
)

// TestRecoveryExperimentShape runs the recovery experiment at quick scale
// and checks its crash-consistency invariants for every cell: zero corrupt
// reads under torn writes, no failed guarded ops, a consistent scan report,
// and a post-recovery hit ratio that reflects (only) the lost RAM contents.
func TestRecoveryExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery experiment is slow")
	}
	r := recoveryExp(quick())
	designs := []cluster.Design{
		cluster.HRDMADef, cluster.HRDMAOptBlock,
		cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI,
	}
	for _, d := range designs {
		for _, pat := range []string{"uniform", "zipf"} {
			name := d.String() + "." + pat
			if v := r.Metrics[name+".corrupt_reads"]; v != 0 {
				t.Errorf("%s: %v corrupt reads", name, v)
			}
			if v := r.Metrics[name+".failed"]; v != 0 {
				t.Errorf("%s: %v guarded ops failed across the outage", name, v)
			}
			if r.Metrics[name+".recovery_ms"] <= 0 {
				t.Errorf("%s: no recovery time recorded", name)
			}
			scanned := r.Metrics[name+".pages_scanned"]
			if scanned == 0 {
				t.Errorf("%s: recovery scanned nothing", name)
			}
			if got := r.Metrics[name+".pages_recovered"] + r.Metrics[name+".pages_discarded"]; got != scanned {
				t.Errorf("%s: recovered+discarded = %v, scanned = %v", name, got, scanned)
			}
			if r.Metrics[name+".items_recovered"] == 0 {
				t.Errorf("%s: nothing recovered from the SSD", name)
			}
			if r.Metrics[name+".rejected"] == 0 {
				t.Errorf("%s: no request was rejected during the outage", name)
			}
			clean, post := r.Metrics[name+".clean_hit_ratio"], r.Metrics[name+".post_hit_ratio"]
			if post <= 0 || post >= clean {
				t.Errorf("%s: post-crash hit ratio %v vs clean %v, want 0 < post < clean",
					name, post, clean)
			}
		}
	}
	if r.Output == "" {
		t.Error("no output table")
	}
}
