package bench

import (
	"testing"
)

// The acceptance gate for attaching replication at all: a run at R=1 (no
// replicators built, no client replica routing) must be virtual-time
// IDENTICAL to the plain pre-replication driver (ReplicationFactor 0) —
// same final clock, same outcome counts. Every replication hook in the
// server and client is gated on attachment, so an unreplicated deployment
// pays nothing, not even a branch that changes event ordering.
func TestReplicationR1VirtualTimeIdentity(t *testing.T) {
	a := runReplication(0, 0.5, 200, false)
	b := runReplication(1, 0.5, 200, false)
	if a.Now != b.Now {
		t.Errorf("final virtual clock differs: R=0 %v vs R=1 %v", a.Now, b.Now)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("driver elapsed differs: R=0 %v vs R=1 %v", a.Elapsed, b.Elapsed)
	}
	if a.OK != b.OK || a.Misses != b.Misses || a.Failed != b.Failed {
		t.Errorf("outcomes differ: R=0 (%d,%d,%d) vs R=1 (%d,%d,%d)",
			a.OK, a.Misses, a.Failed, b.OK, b.Misses, b.Failed)
	}
	if got := b.Repl.Names(); len(got) != 0 {
		t.Errorf("R=1 run produced replication counters: %v", got)
	}
}

// The durability headline. R=1 through the kill schedule must lose acked
// writes (the second kill wipes a node's SSD — whatever it exclusively
// held is unrecoverable), and R=2 through the same schedule must lose
// none: every acked write was on both replicas before the ack, and the
// killed nodes re-fetch from the survivors.
func TestReplicationKillsDurability(t *testing.T) {
	solo := runReplication(1, 0.5, 400, true)
	if solo.LostAcked == 0 {
		t.Error("R=1 lost nothing through a wiped-SSD node kill — the oracle is not observing the kills")
	}
	dup := runReplication(2, 0.5, 400, true)
	if dup.LostAcked != 0 {
		t.Errorf("R=2 lost %d of %d acked keys — replication failed its guarantee",
			dup.LostAcked, dup.AckedKeys)
	}
	if dup.AckedKeys == 0 {
		t.Error("R=2 oracle had no subjects")
	}
	if dup.Repl.Get("forwards") == 0 {
		t.Error("R=2 run never forwarded a write")
	}
	if dup.Repl.Get("repair-pushes")+dup.Repl.Get("repair-pulls") == 0 {
		t.Error("R=2 kills produced no repair traffic — suspect confirm and anti-entropy never ran")
	}
}

// Replication runs are deterministic: same cell, same virtual outcome.
func TestReplicationDeterminism(t *testing.T) {
	a := runReplication(2, 0.5, 200, true)
	b := runReplication(2, 0.5, 200, true)
	if a.Now != b.Now || a.OK != b.OK || a.Failed != b.Failed ||
		a.LostAcked != b.LostAcked {
		t.Errorf("replication run not deterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			a.Now, a.OK, a.Failed, a.LostAcked, b.Now, b.OK, b.Failed, b.LostAcked)
	}
}
