package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/fault"
	"hybridkv/internal/history"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// The chaos soak: every robustness mechanism at once — message drops,
// duplicates and latency spikes from the fault injector, a warm crash and a
// cold restart of one server, and a flooder client keeping the bounded
// admission layer shedding — while checker workers log every operation they
// perform into a history.Log. After the run the log is checked offline
// against the cache's invariants: no acked write lost outside a crash
// window, no stale read after a completed CAS write, no read of a value
// nobody wrote, no counter regression, and no wedged process (liveness:
// every issued operation completes, so virtual time kept advancing).
//
// Checker soundness depends on two deliberate asymmetries between the two
// clients. In the unreplicated soak the checker client has no circuit
// breaker and retries without failover: its keys live on exactly one ring
// server, and rerouting a write to the wrong server would manufacture
// stale-read "violations" the server never committed. (The replicated soak
// lifts exactly that restriction — with R ≥ 2 every replica holds each
// acked write, so the checker fails over freely and the stale-read rule
// tightens instead, dropping its crash excuse.) The flooder client is the
// opposite — breaker armed, short deadlines, scratch keys that are never
// logged — because its job is generating overload and exercising the
// breaker, not producing evidence.

const (
	// Checker guard: generous on purpose. The bounded queue drains in a
	// few hundred microseconds, so a healthy protected server answers well
	// inside one attempt; the budget exists to ride out link faults, the
	// warm-crash window, and the cold-restart recovery scan.
	chaosDeadline       = 60 * sim.Millisecond
	chaosAttemptTimeout = 8 * sim.Millisecond
	chaosMaxAttempts    = 8
	chaosBackoff        = 100 * sim.Microsecond
	chaosMaxBackoff     = 2 * sim.Millisecond

	chaosWriters       = 3
	chaosKeysPerWriter = 2
	chaosValueSize     = 4 * 1024
	chaosThink         = 120 * sim.Microsecond

	// Flood bursts are sized past the admission watermarks: one burst of
	// 16 × 8 KB overruns the 96 KB buffer's SET watermark by itself, so a
	// protected server sheds under every burst.
	chaosFloodValue = 8 * 1024
	chaosFloodKeys  = 512
	chaosFloodBurst = 16
	chaosFloodGap   = 100 * sim.Microsecond

	// chaosLimit bounds the whole soak: if the simulation has not drained
	// by then, something is wedged and the liveness check reports it.
	chaosLimit = 500 * sim.Millisecond
)

// chaosReport is one design's soak outcome.
type chaosReport struct {
	Log        *history.Log
	Violations []history.Violation
	Elapsed    sim.Time

	AckedWrites         int
	ShedSets, ShedGets  int64
	Rejected, Discarded int64
	Recoveries          int64
	Busy, Retries       int64
	BreakerOpen, Hedges int64
	InjDrops, InjSpikes int64
	// Repl merges every replicator's counters (forwards, repair-pushes,
	// repair-pulls, epoch-conflicts, stale-reads-prevented, ...); empty
	// when the soak ran unreplicated.
	Repl *metrics.Counters
}

// runChaos soaks one hybrid design for rounds rounds per worker and checks
// the observed history. seed drives the fault injector.
func runChaos(d cluster.Design, rounds int, seed int64) *chaosReport {
	return runChaosR(d, rounds, seed, 0, false)
}

// runChaosR is runChaos with replication: replicas > 1 attaches the
// primary–backup replication chain (every change below is gated on it, so
// replicas ≤ 1 stays bit-identical to the original soak), and kills swaps
// the warm-crash/cold-restart schedule for whole-node kills — first RAM
// only, then RAM plus a wiped SSD — the failure mode only replication can
// survive. In replicated mode the checker runs with Replicated histories:
// the stale-read rule keeps no crash excuse, and the checker client is
// allowed to fail over (rerouting is safe once every replica holds each
// acked write — the exact soundness hazard the unreplicated soak's
// no-failover rule guards against).
func runChaosR(d cluster.Design, rounds int, seed int64, replicas int, kills bool) *chaosReport {
	servers := 2
	if replicas > 1 {
		// Three nodes with R=2: replica sets are proper subsets, so the
		// soak also exercises proxy-coordinated writes and non-member gets.
		servers = 3
	}
	cl := cluster.New(cluster.Config{
		Design:            d,
		Profile:           cluster.ClusterA(),
		Servers:           servers,
		Clients:           1,
		ReplicationFactor: replicas,
		ServerMem:         2 << 20, // 2 MB/server: the flood overcommits it
		StorageWorkers:    overWorkers,
		BufferBytes:       overBufferBytes,
		Overload: server.OverloadConfig{
			Enabled:        true,
			QueueHigh:      overQueueHigh,
			RetryAfterUnit: 10 * sim.Microsecond,
		},
	})
	inj := fault.New(fault.Config{Seed: seed, Drop: 0.005, Dup: 0.005, Spike: 0.01})
	cl.Fabric.SetFaults(inj)

	// The flooder gets its own client node so its breaker and retry state
	// cannot leak into the checker's connections.
	fcfg := core.Config{
		Transport: core.RDMA,
		Breaker:   core.BreakerConfig{Threshold: 6, Cooldown: 500 * sim.Microsecond},
	}
	if replicas > 1 {
		fcfg.Replicas = replicas
	}
	fc := core.New(cl.Env, cl.Fabric.AddNode("flooder"), fcfg)
	for _, srv := range cl.Servers {
		fc.ConnectRDMA(srv)
	}

	log := &history.Log{Replicated: replicas > 1}
	rp := core.RetryPolicy{
		MaxAttempts:    chaosMaxAttempts,
		AttemptTimeout: chaosAttemptTimeout,
		Backoff:        chaosBackoff,
		MaxBackoff:     chaosMaxBackoff,
		Jitter:         -1, // deterministic backoff
		Seed:           seed,
		Failover:       replicas > 1,
	}
	guardGet := []core.IssueOption{core.WithDeadline(chaosDeadline), core.WithRetry(rp)}
	guardSet := guardGet
	if d.BufferGuarantee() {
		// bset semantics: the BufferAck marks writes the server has
		// promised to drain — the acked-write-lost invariant's subjects.
		guardSet = append(append([]core.IssueOption{}, guardGet...), core.WithBufferAck())
	}

	c := cl.Clients[0]
	expected := 0

	// Writers: per-key CAS chains. The value of every write is its
	// sequence number, and each write carries the CAS token of the read
	// that preceded it, so duplicated or retransmitted frames can never
	// apply a stale overwrite behind the log's back — a failed CAS
	// (ErrExists) just re-syncs by reading on the next round. Each round
	// records exactly one Read and one Write entry.
	for w := 0; w < chaosWriters; w++ {
		w := w
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("chaos-writer%d", w), func(p *sim.Proc) {
			next := make([]uint64, chaosKeysPerWriter)
			for r := 0; r < rounds; r++ {
				ki := r % chaosKeysPerWriter
				key := fmt.Sprintf("chaos:w%d:k%d", w, ki)

				t0 := p.Now()
				rreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, guardGet...)
				if err != nil {
					panic("bench: chaos read issue failed: " + err.Error())
				}
				c.Wait(p, rreq)
				rerr := rreq.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = rreq.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: w, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})

				// Single writer per key: the local counter is the
				// authoritative clock, bumped on every attempt so even a
				// timed-out-but-applied write stays in the recorded range.
				next[ki]++
				seqW := next[ki]
				op := core.Op{Code: protocol.OpAdd, Key: key, ValueSize: chaosValueSize, Value: seqW}
				if hit {
					op = core.Op{Code: protocol.OpCAS, Key: key, ValueSize: chaosValueSize, Value: seqW, CAS: rreq.CAS}
				}
				t1 := p.Now()
				wreq, err := c.Issue(p, op, guardSet...)
				if err != nil {
					panic("bench: chaos write issue failed: " + err.Error())
				}
				c.Wait(p, wreq)
				werr := wreq.Err()
				// Acked marks writes the invariant holds to "must
				// complete": a definite rejection (stale token, Add on an
				// existing key) is a completion, not a loss.
				acked := wreq.Acked() &&
					(werr == nil || errors.Is(werr, core.ErrDeadlineExceeded))
				log.Record(history.Entry{
					Worker: w, Kind: history.Write, Key: key, Seq: seqW,
					OK: werr == nil, Acked: acked,
					IssuedAt: t1, CompletedAt: p.Now(),
				})
				p.Sleep(chaosThink)
			}
		})
	}

	// Counter worker: one guarded Incr per round; the returned value is
	// the observation. A cold restart may resurrect an older counter epoch
	// or lose the key outright — both are excused by the crash window; a
	// regression anywhere else is a violation.
	expected += rounds
	cl.Env.Spawn("chaos-counter", func(p *sim.Proc) {
		const key = "chaos:ctr"
		seedCtr := func() {
			req, err := c.Issue(p, core.Op{
				Code: protocol.OpSet, Key: key,
				ValueSize: core.CounterSize, Value: uint64(0),
			}, guardSet...)
			if err != nil {
				panic("bench: chaos counter issue failed: " + err.Error())
			}
			c.Wait(p, req)
		}
		seedCtr()
		for r := 0; r < rounds; r++ {
			t0 := p.Now()
			req, err := c.Issue(p, core.Op{Code: protocol.OpIncr, Key: key, Delta: 1}, guardGet...)
			if err != nil {
				panic("bench: chaos incr issue failed: " + err.Error())
			}
			c.Wait(p, req)
			e := req.Err()
			v, _ := req.Value.(uint64)
			log.Record(history.Entry{
				Worker: chaosWriters, Kind: history.IncrOp, Key: key, Seq: v,
				OK: e == nil, IssuedAt: t0, CompletedAt: p.Now(),
			})
			if errors.Is(e, core.ErrNotFound) {
				seedCtr() // a cold restart lost the counter: re-seed
			}
			p.Sleep(chaosThink)
		}
	})

	// Flooder: bursts of large scratch-key sets, enough volume to
	// overcommit both servers' slab memory so every burst exercises the
	// hybrid eviction path and the admission watermarks. Failures are the
	// point; nothing here is logged.
	cl.Env.Spawn("chaos-flood", func(p *sim.Proc) {
		frp := core.RetryPolicy{
			MaxAttempts: 2, AttemptTimeout: 2 * sim.Millisecond,
			Backoff: 50 * sim.Microsecond, Jitter: -1, Seed: seed + 1,
		}
		floodOps := rounds * 16
		var win []*core.Req
		for i := 0; i < floodOps; i++ {
			key := fmt.Sprintf("flood:%04d", i%chaosFloodKeys)
			req, err := fc.Issue(p, core.Op{
				Code: protocol.OpSet, Key: key,
				ValueSize: chaosFloodValue, Value: key,
			}, core.WithDeadline(4*sim.Millisecond), core.WithRetry(frp))
			if err != nil {
				panic("bench: chaos flood issue failed: " + err.Error())
			}
			win = append(win, req)
			if len(win) == chaosFloodBurst {
				fc.WaitAll(p, win)
				win = win[:0]
				p.Sleep(chaosFloodGap)
			}
		}
		fc.WaitAll(p, win)
	})

	// Crash schedule against server 0: a warm crash (process wedge; store
	// survives) early, a cold restart (RAM gone; recovery scan rebuilds
	// from SSD) later. Each window is recorded conservatively — crash
	// start through fully recovered — since invariant floors do not carry
	// across it.
	if kills {
		// Whole-node kill schedule: first server 0 loses its RAM and every
		// pending buffer (SSD intact — recovered keys come back suspect and
		// must be confirmed against peers before being served); later
		// server 1 dies completely, SSD wiped, as if replaced — every key
		// it held comes back only through the replication chain.
		cl.Env.Spawn("chaos-kills", func(p *sim.Proc) {
			s0, s1 := cl.Servers[0], cl.Servers[1]
			p.Sleep(3 * sim.Millisecond)
			from := p.Now()
			s0.Kill(false)
			p.Sleep(300 * sim.Microsecond)
			s0.RestartCold()
			for s0.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
			log.CrashWindow(from, p.Now())

			p.Sleep(4 * sim.Millisecond)
			from = p.Now()
			s1.Kill(true)
			p.Sleep(200 * sim.Microsecond)
			s1.RestartCold()
			for s1.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
			log.CrashWindow(from, p.Now())
		})
	} else {
		srv := cl.Servers[0]
		cl.Env.Spawn("chaos-crashes", func(p *sim.Proc) {
			p.Sleep(3 * sim.Millisecond)
			from := p.Now()
			srv.Crash()
			p.Sleep(300 * sim.Microsecond)
			srv.Restart()
			log.CrashWindow(from, p.Now())

			p.Sleep(4 * sim.Millisecond)
			from = p.Now()
			srv.Crash()
			p.Sleep(200 * sim.Microsecond)
			srv.RestartCold()
			for srv.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
			log.CrashWindow(from, p.Now())
		})
	}

	start := cl.Env.Now()
	cl.Env.RunUntil(start + chaosLimit)
	log.Expected = expected

	// RunUntil fast-forwards the clock to its limit, so the soak's real
	// span is the last logged completion, not Env.Now.
	var last sim.Time
	for _, e := range log.Entries {
		if e.CompletedAt > last {
			last = e.CompletedAt
		}
	}

	cs, fs := c.Stats(), fc.Stats()
	rep := &chaosReport{
		Log:         log,
		Violations:  log.Check(),
		Elapsed:     last - start,
		Busy:        cs.Busy + fs.Busy,
		Retries:     cs.Retries + fs.Retries,
		BreakerOpen: fs.BreakerOpen,
		Hedges:      cs.Hedges,
		InjDrops:    inj.Drops,
		InjSpikes:   inj.Spikes,
		Repl:        cl.ReplicationCounters(),
	}
	for _, e := range log.Entries {
		if e.Kind == history.Write && e.Acked {
			rep.AckedWrites++
		}
	}
	for _, s := range cl.Servers {
		rep.ShedSets += s.ShedSets
		rep.ShedGets += s.ShedGets
		rep.Rejected += s.Rejected
		rep.Discarded += s.Discarded
		rep.Recoveries += s.Recovery.Get("recoveries")
	}
	return rep
}

// chaosExp is the registry entry: the soak over the four hybrid designs.
// The headline number per design is violations, which must be zero.
func chaosExp(o Options) *Result {
	res := newResult("chaos", "Chaos soak: faults + crashes + overload under the history invariant checker")
	// o.ops budgets total logged entries; each worker round logs
	// 2·writers + 1 of them.
	rounds := o.ops(420) / (chaosWriters*2 + 1)
	if rounds < 8 {
		rounds = 8
	}

	viol := &metrics.Series{Name: "violations"}
	entries := &metrics.Series{Name: "entries"}
	acked := &metrics.Series{Name: "acked-writes"}
	shed := &metrics.Series{Name: "shed s/g"}
	busy := &metrics.Series{Name: "busy"}
	rec := &metrics.Series{Name: "recoveries"}

	detail := ""
	for _, d := range cluster.Designs {
		if !d.Hybrid() {
			continue
		}
		rep := runChaos(d, rounds, 42)
		name := d.String()
		viol.Append(name, float64(len(rep.Violations)))
		entries.Append(name, float64(len(rep.Log.Entries)))
		acked.Append(name, float64(rep.AckedWrites))
		shed.Append(name, float64(rep.ShedSets+rep.ShedGets))
		busy.Append(name, float64(rep.Busy))
		rec.Append(name, float64(rep.Recoveries))

		res.metric(name+".violations", float64(len(rep.Violations)))
		res.metric(name+".entries", float64(len(rep.Log.Entries)))
		res.metric(name+".acked_writes", float64(rep.AckedWrites))
		res.metric(name+".shed_sets", float64(rep.ShedSets))
		res.metric(name+".shed_gets", float64(rep.ShedGets))
		res.metric(name+".rejected", float64(rep.Rejected))
		res.metric(name+".discarded", float64(rep.Discarded))
		res.metric(name+".busy", float64(rep.Busy))
		res.metric(name+".retries", float64(rep.Retries))
		res.metric(name+".breaker_open", float64(rep.BreakerOpen))
		res.metric(name+".recoveries", float64(rep.Recoveries))
		res.metric(name+".inj_drops", float64(rep.InjDrops))
		res.metric(name+".elapsed_us", us(rep.Elapsed))

		for _, v := range rep.Violations {
			detail += fmt.Sprintf("VIOLATION %s: %s\n", name, v)
		}
	}
	res.Output = res.addTable(res.Title, viol, entries, acked, shed, busy, rec) +
		detail + res.renderMetrics()
	return res
}
