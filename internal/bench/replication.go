package bench

import (
	"errors"
	"fmt"
	"sort"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The replication experiment: a three-server cluster at replication factor
// R ∈ {1, 2, 3} runs a read-only and a 50:50 workload through a node-kill
// schedule — one server loses its RAM mid-run, another later loses RAM and
// SSD both — and the run reports goodput, p99 latency, repair traffic, and
// the headline durability number: lost acked writes. The oracle is a
// server-side sweep after the cluster settles: a key is lost when no
// server still holds a value at least as new as the newest write the
// client saw acknowledged and completed. At R=1 the kills make that count
// strictly positive (whatever the dead node exclusively held is gone); at
// R ≥ 2 it must be exactly zero — every acked write was applied by every
// replica before the client saw the ack, and a cold-restarted node
// re-confirms or re-fetches its keys from the survivors.

const (
	replServers   = 3
	replKeys      = 96
	replValueSize = 4 * 1024
	replDeadline  = 60 * sim.Millisecond
	replAttempt   = 8 * sim.Millisecond
	replThink     = 100 * sim.Microsecond
	// replSettle is how long the cluster idles after the driver finishes
	// before the durability sweep: long enough for several anti-entropy
	// scrub rounds (2 ms cadence) to reconverge any divergence the kills
	// left behind.
	replSettle = 10 * sim.Millisecond
)

// replRun is one replication-experiment cell.
type replRun struct {
	Ops, OK, Misses, Failed int64
	// AckedKeys is the number of distinct keys with at least one
	// client-confirmed OK write (the durability oracle's subjects).
	AckedKeys int64
	// LostAcked counts keys whose newest OK-written value survives on no
	// server. Zero is the replication guarantee for R ≥ 2.
	LostAcked int64
	Lat       *metrics.Hist
	Elapsed   sim.Time
	// Now is the final virtual clock, for the R=1-identity test.
	Now sim.Time
	// Repl merges the replicators' counters; Faults the client's.
	Repl, Faults *metrics.Counters
}

// Goodput is OK operations per virtual second.
func (r *replRun) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / (float64(r.Elapsed) / float64(sim.Second))
}

// runReplication executes one cell: preload every key (seq 1), drive ops
// mixed operations under a retry guard with failover, optionally kill two
// nodes mid-run, then settle and sweep. factor ≤ 1 runs unreplicated —
// with kills=false such a run must be virtual-time-identical to the same
// driver on a cluster built with ReplicationFactor 0.
func runReplication(factor int, readFrac float64, ops int, kills bool) *replRun {
	cl := cluster.New(cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           cluster.ClusterA(),
		Servers:           replServers,
		Clients:           1,
		ServerMem:         8 << 20, // dataset fits: eviction never drops keys, so the sweep oracle is exact
		ReplicationFactor: factor,
	})
	c := cl.Clients[0]
	gen := workload.New(workload.Config{
		Keys: replKeys, ValueSize: replValueSize, ReadFraction: readFrac,
		Pattern: workload.Uniform, Seed: 11,
	})

	// Preload the whole key space with seq 1. These are acked writes too:
	// a read-only run still has a durability oracle — the preloaded values
	// themselves — and every GET has something to hit.
	lastOK := map[string]uint64{}
	cl.Env.Spawn("repl-preload", func(p *sim.Proc) {
		for i := 0; i < replKeys; i++ {
			c.Set(p, gen.Key(i), replValueSize, uint64(1), 0, 0)
			lastOK[gen.Key(i)] = 1
		}
	})
	cl.Env.Run()
	cl.SettleIO()
	rp := core.RetryPolicy{
		MaxAttempts:    8,
		AttemptTimeout: replAttempt,
		Backoff:        100 * sim.Microsecond,
		MaxBackoff:     2 * sim.Millisecond,
		Jitter:         -1,
		Seed:           13,
		Failover:       true,
	}
	guard := []core.IssueOption{
		core.WithDeadline(replDeadline), core.WithRetry(rp), core.WithBufferAck(),
	}

	run := &replRun{Ops: int64(ops), Lat: metrics.NewHist()}
	nextSeq := uint64(1)
	start := cl.Env.Now()

	if kills {
		cl.Env.Spawn("repl-kills", func(p *sim.Proc) {
			s0, s1 := cl.Servers[0], cl.Servers[1]
			p.Sleep(3 * sim.Millisecond)
			s0.Kill(false) // RAM and pending buffers gone; SSD intact
			p.Sleep(300 * sim.Microsecond)
			s0.RestartCold()
			for s0.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
			p.Sleep(4 * sim.Millisecond)
			s1.Kill(true) // total loss: RAM gone, SSD wiped
			p.Sleep(300 * sim.Microsecond)
			s1.RestartCold()
			for s1.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
		})
	}

	cl.Env.Spawn("repl-driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			op := core.Op{Code: protocol.OpGet, Key: key}
			if kind == workload.OpSet {
				nextSeq++
				op = core.Op{Code: protocol.OpSet, Key: key, ValueSize: replValueSize, Value: nextSeq}
			}
			t0 := p.Now()
			req, err := c.Issue(p, op, guard...)
			if err != nil {
				panic("bench: replication issue failed: " + err.Error())
			}
			c.Wait(p, req)
			switch e := req.Err(); {
			case e == nil:
				run.OK++
				run.Lat.Add(p.Now() - t0)
				if kind == workload.OpSet {
					if seq, _ := op.Value.(uint64); seq > lastOK[key] {
						lastOK[key] = seq
					}
				}
			case errors.Is(e, core.ErrNotFound):
				run.Misses++
			default:
				run.Failed++
			}
			p.Sleep(replThink)
		}
		run.Elapsed = p.Now() - start

		// Durability sweep: wait out any in-flight outage, let the
		// anti-entropy scrubber run a few rounds, then ask every server
		// directly (bypassing the client path) whether it still holds each
		// acked key at or past its newest OK sequence.
		for _, s := range cl.Servers {
			for s.Down() || s.Recovering() {
				p.Sleep(sim.Millisecond)
			}
		}
		p.Sleep(replSettle)
		keys := make([]string, 0, len(lastOK))
		for k := range lastOK {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			run.AckedKeys++
			held := false
			for _, s := range cl.Servers {
				if v, _, _, _, ok := s.Store().ReadItem(p, k); ok {
					if seq, _ := v.(uint64); seq >= lastOK[k] {
						held = true
						break
					}
				}
			}
			if !held {
				run.LostAcked++
			}
		}
	})
	cl.Env.Run()
	run.Now = cl.Env.Now()
	run.Repl = cl.ReplicationCounters()
	run.Faults = c.Faults
	return run
}

// replicationExp is the registry entry: R ∈ {1,2,3} × {read-only, 50:50}
// through the node-kill schedule. The headline: lost_acked is positive at
// R=1 (the kills destroy data only one node held) and exactly zero for
// every R ≥ 2 cell.
func replicationExp(o Options) *Result {
	res := newResult("replication",
		"Primary-backup replication: acked-write durability under whole-node kills")
	ops := o.ops(600)

	goodput := &metrics.Series{Name: "goodput op/s"}
	p99 := &metrics.Series{Name: "p99 µs"}
	lost := &metrics.Series{Name: "lost acked"}
	repair := &metrics.Series{Name: "repair tx"}

	mixes := []struct {
		name     string
		readFrac float64
	}{
		{"read", 1.0},
		{"rw50", 0.5},
	}
	for _, r := range []int{1, 2, 3} {
		for _, mix := range mixes {
			run := runReplication(r, mix.readFrac, ops, true)
			name := fmt.Sprintf("R%d.%s", r, mix.name)
			repairTx := run.Repl.Get("repair-pushes") + run.Repl.Get("repair-pulls")

			goodput.Append(name, run.Goodput())
			p99.Append(name, us(run.Lat.Quantile(0.99)))
			lost.Append(name, float64(run.LostAcked))
			repair.Append(name, float64(repairTx))

			res.metric(name+".goodput_ops", run.Goodput())
			res.metric(name+".p99_us", us(run.Lat.Quantile(0.99)))
			res.metric(name+".ok", float64(run.OK))
			res.metric(name+".misses", float64(run.Misses))
			res.metric(name+".failed", float64(run.Failed))
			res.metric(name+".acked_keys", float64(run.AckedKeys))
			res.metric(name+".lost_acked", float64(run.LostAcked))
			res.metric(name+".forwards", float64(run.Repl.Get("forwards")))
			res.metric(name+".repair_pushes", float64(run.Repl.Get("repair-pushes")))
			res.metric(name+".repair_pulls", float64(run.Repl.Get("repair-pulls")))
			res.metric(name+".epoch_conflicts", float64(run.Repl.Get("epoch-conflicts")))
			res.metric(name+".stale_reads_prevented", float64(run.Repl.Get("stale-reads-prevented")))
			res.metric(name+".scrub_rounds", float64(run.Repl.Get("scrub-rounds")))
			res.metric(name+".failovers", float64(run.Faults.Val(metrics.CFailovers)))
			res.metric(name+".failover_skips", float64(run.Faults.Val(metrics.CFailoverSkip)))
		}
	}
	res.Output = res.addTable(res.Title, goodput, p99, lost, repair) + res.renderMetrics()
	return res
}
