package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The overload experiment: a bursty open-loop arrival schedule slams every
// design twice — once with the server's plain blocking buffer reservation
// ("off") and once with bounded admission + shedding on the server and
// busy-aware retries + circuit breakers on the client ("on"). The contrast
// the paper's bursty block-I/O regime motivates: unprotected, the async
// buffer fills and the storage queue grows without bound, so every admitted
// GET waits behind the whole backlog; protected, over-watermark SETs are
// shed with StatusBusy and retried into the idle gaps, keeping admitted-GET
// tail latency bounded.

// BurstSchedule is an open-loop arrival process: Bursts groups of arrivals
// spaced Interarrival apart, with Idle gaps between groups.
type BurstSchedule struct {
	Bursts       int
	Interarrival sim.Time
	Idle         sim.Time
}

// DefaultBurstSchedule: three tight bursts with recovery gaps — arrivals
// far faster than the hybrid storage path drains, idle long enough for a
// protected server to catch up.
func DefaultBurstSchedule() BurstSchedule {
	return BurstSchedule{Bursts: 3, Interarrival: 2 * sim.Microsecond, Idle: 3 * sim.Millisecond}
}

// Overload-phase client policy. The deadline is generous on purpose: the
// unprotected baseline must be allowed to finish its queued work so the
// damage shows up as tail latency, not as truncated failures.
const (
	overDeadline       = 40 * sim.Millisecond
	overAttemptTimeout = 8 * sim.Millisecond
	overMaxAttempts    = 6
	overBackoff        = 100 * sim.Microsecond
	overMaxBackoff     = 2 * sim.Millisecond
	// Server admission geometry for the protected phase: a small buffer
	// and shallow queue bound so smoke-scale bursts saturate.
	overBufferBytes = 96 << 10
	overQueueHigh   = 24
	overWorkers     = 2
)

// OverloadRun summarizes one phase.
type OverloadRun struct {
	// Lat is completion latency for every op; GetLat only for GETs that
	// were admitted and answered OK — the latency shedding protects.
	Lat, GetLat             *metrics.Hist
	Ops, OK, Misses, Failed int64
	Elapsed                 sim.Time
	Goodput                 float64
	// InflightPeak is the driver-side open-loop backlog high-water mark.
	InflightPeak int
	// Counters is the phase delta of client fault counters (busy,
	// retries, breaker-open, breaker-reroutes, ...).
	Counters *metrics.Counters
	// Server aggregates: sheds summed, peaks maxed across servers.
	ShedSets, ShedGets    int64
	BufferPeak, QueuePeak int
}

func (res *OverloadRun) classify(err error) {
	switch {
	case err == nil:
		res.OK++
	case errors.Is(err, core.ErrNotFound):
		res.Misses++
	default:
		res.Failed++
	}
}

// RunOverload drives ops operations through the bursty schedule on client
// ci. RDMA designs run true open loop — each arrival is an independent
// guarded request in its own process, so the driver never self-throttles;
// the socket design runs the same schedule closed-loop (one stream admits
// no concurrency), with lateness accumulating in the driver instead.
func RunOverload(cl *cluster.Cluster, gen *workload.Generator, ci, ops int, sched BurstSchedule) *OverloadRun {
	res := &OverloadRun{Lat: metrics.NewHist(), GetLat: metrics.NewHist()}
	c := cl.Clients[ci]
	start := cl.Env.Now()
	before := c.Faults.Snapshot()
	vs := gen.ValueSize()
	perBurst := (ops + sched.Bursts - 1) / sched.Bursts

	rp := core.RetryPolicy{
		MaxAttempts:    overMaxAttempts,
		AttemptTimeout: overAttemptTimeout,
		Backoff:        overBackoff,
		MaxBackoff:     overMaxBackoff,
		Seed:           11,
	}
	opts := []core.IssueOption{core.WithDeadline(overDeadline), core.WithRetry(rp)}
	if cl.Design.BufferGuarantee() {
		opts = append(opts, core.WithBufferAck())
	}

	if cl.Design.Transport() == core.RDMA {
		inflight := 0
		cl.Env.Spawn("drv-overload", func(p *sim.Proc) {
			n := 0
			for b := 0; b < sched.Bursts; b++ {
				for i := 0; i < perBurst && n < ops; i++ {
					kind, key := gen.Next()
					op := core.Op{Code: protocol.OpGet, Key: key}
					if kind == workload.OpSet {
						op = core.Op{Code: protocol.OpSet, Key: key, ValueSize: vs, Value: key}
					}
					n++
					inflight++
					if inflight > res.InflightPeak {
						res.InflightPeak = inflight
					}
					cl.Env.Spawn(fmt.Sprintf("ovl-op%d", n), func(q *sim.Proc) {
						t0 := q.Now()
						req, err := c.Issue(q, op, opts...)
						if err != nil {
							panic("bench: overload issue failed: " + err.Error())
						}
						c.Wait(q, req)
						inflight--
						e := req.Err()
						res.classify(e)
						d := q.Now() - t0
						res.Lat.Add(d)
						if op.Code == protocol.OpGet && e == nil {
							res.GetLat.Add(d)
						}
					})
					p.Sleep(sched.Interarrival)
				}
				if b < sched.Bursts-1 {
					p.Sleep(sched.Idle)
				}
			}
		})
	} else {
		cl.Env.Spawn("drv-overload", func(p *sim.Proc) {
			for n := 0; n < ops; n++ {
				at := start + sim.Time(n/perBurst)*sched.Idle +
					sim.Time(n)*sched.Interarrival
				if now := p.Now(); now < at {
					p.Sleep(at - now)
				}
				kind, key := gen.Next()
				t0 := p.Now()
				if kind == workload.OpSet {
					st := c.Set(p, key, vs, key, 0, 0)
					if st == protocol.StatusError {
						res.Failed++
					} else {
						res.OK++
					}
				} else {
					_, _, st := c.Get(p, key)
					switch st {
					case protocol.StatusNotFound:
						res.Misses++
					case protocol.StatusError:
						res.Failed++
					default:
						res.OK++
						res.GetLat.Add(p.Now() - t0)
					}
				}
				res.Lat.Add(p.Now() - t0)
			}
		})
	}
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(ops)
	res.Goodput = metrics.Throughput(res.OK+res.Misses, res.Elapsed)
	res.Counters = metrics.NewCounters()
	after := c.Faults.Snapshot()
	for _, name := range after.Names() {
		if d := after.Get(name) - before.Get(name); d != 0 {
			res.Counters.Add(name, d)
		}
	}
	for _, srv := range cl.Servers {
		res.ShedSets += srv.ShedSets
		res.ShedGets += srv.ShedGets
		if srv.BufferPeak > res.BufferPeak {
			res.BufferPeak = srv.BufferPeak
		}
		if srv.QueuePeak > res.QueuePeak {
			res.QueuePeak = srv.QueuePeak
		}
	}
	return res
}

// buildOverloadCluster assembles a two-server deployment sized so bursts
// saturate at smoke scale: a deliberately small async buffer, two storage
// workers, and the overcommitted dataset that makes every SET pay the
// hybrid eviction path. protected arms the server's bounded admission and
// the client's per-server circuit breakers.
func buildOverloadCluster(d cluster.Design, mem int64, kv int, protected bool) (*cluster.Cluster, int) {
	ccfg := core.Config{}
	if d.Transport() == core.IPoIB {
		ccfg.RecvTimeout = ipoibRecvTimeout
		ccfg.RecvRetries = ipoibRecvRetries
	}
	cfg := cluster.Config{
		Design:         d,
		Profile:        cluster.ClusterA(),
		Servers:        2,
		Clients:        1,
		ServerMem:      mem / 2,
		StorageWorkers: overWorkers,
		BufferBytes:    overBufferBytes,
		// Small slab pages: eviction flushes every few SETs instead of
		// every 128, so bursts genuinely contend for the storage workers.
		SlabPageSize: 4 * kv,
	}
	if protected {
		cfg.Overload = server.OverloadConfig{
			Enabled:        true,
			QueueHigh:      overQueueHigh,
			RetryAfterUnit: 10 * sim.Microsecond,
		}
		ccfg.Breaker = core.BreakerConfig{Threshold: 8, Cooldown: 500 * sim.Microsecond}
	}
	cfg.Client = ccfg
	cl := cluster.New(cfg)
	dataBytes := mem * 3 / 2
	keys := int(dataBytes / int64(kv))
	cl.Preload(keys, kv, keyOf)
	return cl, keys
}

// overloadPhase runs one (protected or unprotected) measurement.
func overloadPhase(d cluster.Design, mem int64, kv, ops int, protected bool) *OverloadRun {
	cl, keys := buildOverloadCluster(d, mem, kv, protected)
	// Uniform over the overcommitted dataset: a third of the GETs hit the
	// SSD-resident tail, so the storage workers are the contended resource
	// (a Zipf-hot workload would serve almost everything from RAM and the
	// bursts would never queue).
	gen := workload.New(workload.Config{
		Keys: keys, ValueSize: kv, ReadFraction: 0.5,
		Pattern: workload.Uniform, Seed: 7,
	})
	return RunOverload(cl, gen, 0, ops, DefaultBurstSchedule())
}

// overloadExp is the registry entry: six designs × {unprotected,
// protected}, reporting admitted-GET p99, overall p99, goodput, shed and
// breaker counters, and the buffer/queue high-water marks.
func overloadExp(o Options) *Result {
	res := newResult("overload", "Graceful degradation: bounded admission and shedding under bursty arrivals")
	mem, _, opsDef := o.geometry()
	mem /= 8 // small memory: bursts must saturate at smoke scale
	kv := 8 * 1024
	ops := o.ops(opsDef / 2)

	offGetP99 := &metrics.Series{Name: "off get-p99µs"}
	onGetP99 := &metrics.Series{Name: "on get-p99µs"}
	offP99 := &metrics.Series{Name: "off p99µs"}
	onP99 := &metrics.Series{Name: "on p99µs"}
	offQPeak := &metrics.Series{Name: "off q-peak"}
	onQPeak := &metrics.Series{Name: "on q-peak"}
	shed := &metrics.Series{Name: "shed s/g"}
	busy := &metrics.Series{Name: "busy-retries"}

	for _, d := range cluster.Designs {
		off := overloadPhase(d, mem, kv, ops, false)
		on := overloadPhase(d, mem, kv, ops, true)
		name := d.String()
		offGetP99.Append(name, us(off.GetLat.Quantile(0.99)))
		onGetP99.Append(name, us(on.GetLat.Quantile(0.99)))
		offP99.Append(name, us(off.Lat.Quantile(0.99)))
		onP99.Append(name, us(on.Lat.Quantile(0.99)))
		offQPeak.Append(name, float64(off.QueuePeak))
		onQPeak.Append(name, float64(on.QueuePeak))
		shed.Append(name, float64(on.ShedSets+on.ShedGets))
		busy.Append(name, float64(on.Counters.Get("busy")))

		res.metric(name+".off_get_p99_us", us(off.GetLat.Quantile(0.99)))
		res.metric(name+".off_p99_us", us(off.Lat.Quantile(0.99)))
		res.metric(name+".off_goodput", off.Goodput)
		res.metric(name+".off_failed", float64(off.Failed))
		res.metric(name+".off_buffer_peak", float64(off.BufferPeak))
		res.metric(name+".off_queue_peak", float64(off.QueuePeak))
		res.metric(name+".off_inflight_peak", float64(off.InflightPeak))
		res.metric(name+".on_get_p99_us", us(on.GetLat.Quantile(0.99)))
		res.metric(name+".on_p99_us", us(on.Lat.Quantile(0.99)))
		res.metric(name+".on_goodput", on.Goodput)
		res.metric(name+".on_failed", float64(on.Failed))
		res.metric(name+".on_buffer_peak", float64(on.BufferPeak))
		res.metric(name+".on_queue_peak", float64(on.QueuePeak))
		res.metric(name+".on_inflight_peak", float64(on.InflightPeak))
		res.metric(name+".on_shed_sets", float64(on.ShedSets))
		res.metric(name+".on_shed_gets", float64(on.ShedGets))
		res.metric(name+".on_busy", float64(on.Counters.Get("busy")))
		res.metric(name+".on_retries", float64(on.Counters.Get("retries")))
		res.metric(name+".on_breaker_open", float64(on.Counters.Get("breaker-open")))
		res.metric(name+".on_breaker_close", float64(on.Counters.Get("breaker-close")))
		res.metric(name+".on_breaker_reroutes", float64(on.Counters.Get("breaker-reroutes")))
	}
	res.Output = res.addTable(res.Title,
		offGetP99, onGetP99, offP99, onP99, offQPeak, onQPeak, shed, busy) +
		res.renderMetrics()
	return res
}
