package bench

import (
	"testing"
)

// The membership headline: the full churn schedule — two joins, a
// kill-during-migration, a decommission — under link faults loses zero
// acked writes and produces zero history violations, with the checker
// enforcing its rules straight through every rebalance window (rebalance
// windows excuse nothing).
func TestMembershipChurnZeroLoss(t *testing.T) {
	rep := runMembershipChaos(40, 42)
	if rep.Rebalances != 3 {
		t.Errorf("drove %d rebalances, want 3", rep.Rebalances)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.LostAcked != 0 {
		t.Errorf("lost %d of %d acked keys across the churn", rep.LostAcked, rep.AckedKeys)
	}
	if rep.AckedKeys == 0 {
		t.Error("durability oracle had no subjects")
	}
	if rep.Repl.Get("migrate-seals") == 0 {
		t.Error("no segment was ever sealed — migration never ran")
	}
	if rep.Repl.Get("migrate-manifests") == 0 {
		t.Error("no migration manifest was ever exchanged")
	}
	if rep.Faults.Get("retired-conns") == 0 {
		t.Error("decommission never retired the client's conn state")
	}
	if rep.Faults.Get("epoch-invalidations") == 0 {
		t.Error("no membership epoch bump ever invalidated client placement state")
	}
}

// Membership churn runs are deterministic: same rounds, same seed, same
// virtual outcome.
func TestMembershipChurnDeterminism(t *testing.T) {
	a := runMembershipChaos(24, 7)
	b := runMembershipChaos(24, 7)
	if len(a.Log.Entries) != len(b.Log.Entries) || a.LostAcked != b.LostAcked ||
		len(a.Violations) != len(b.Violations) ||
		a.Repl.Get("migrate-keys-moved") != b.Repl.Get("migrate-keys-moved") {
		t.Errorf("churn run not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			len(a.Log.Entries), a.LostAcked, len(a.Violations), a.Repl.Get("migrate-keys-moved"),
			len(b.Log.Entries), b.LostAcked, len(b.Violations), b.Repl.Get("migrate-keys-moved"))
	}
}

// The scaling claim at bench scale: adding servers adds goodput. One small
// cell pair keeps the tier-1 suite fast; the committed BENCH_membership.json
// snapshot pins the full 3→9 sweep.
func TestMembershipScaleGrowsWithServers(t *testing.T) {
	small := runMembershipScale(3, 2, 1200)
	large := runMembershipScale(9, 2, 1200)
	if large <= small {
		t.Errorf("9-server goodput %.1f kops not above 3-server %.1f kops", large, small)
	}
}
