package bench

import (
	"errors"
	"fmt"
	"sort"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/history"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// The bitrot experiment: one server's SSD silently rots at rest while a
// mixed workload runs against a deliberately RAM-starved cluster, so most
// reads hit the rotting media. Cells cross R ∈ {1, 2, 3} with three
// defense levels: nodefense (on-SSD verification off, scrubber off — the
// server serves whatever the media returns), verify (foreground page-header
// + key-digest verification quarantines corrupt pages and answers
// StatusCorrupt, but no background repair), and verify+scrub (verification
// plus the content-aware anti-entropy scrubber proactively finding and
// repairing divergent bytes from peers). Every logged operation carries a
// content checksum and the history checker's corruption oracle
// (Log.CheckValues) demands each read hit byte-match SOME acked write; the
// end-of-run sweep counts acked keys no replica still holds. The headline:
// nodefense serves garbage (corrupt_reads > 0), verification alone already
// serves zero garbage at every R, and at R ≥ 2 verification + repair also
// loses nothing (lost_acked exactly 0) while quarantined pages are scrubbed
// back into the free pool.

const (
	rotServers = 3
	rotVictim  = 0 // the server whose SSD rots

	// RAM-starved on purpose: ~200 keys x 4 KB per server against a 256 KB
	// slab budget forces the bulk of the working set onto the SSD, where
	// the rot lives. Small slab pages keep eviction granular.
	rotKeys      = 600
	rotValueSize = 4 * 1024
	rotServerMem = 256 << 10
	rotPageSize  = 64 << 10

	// Rot schedule: armed immediately after preload settles, so the
	// preloaded extents' cells decay under the measured workload. The rate
	// picks which extents decay; the window bounds when. A rotted extent
	// stays bad until rewritten — the window bounds onset, not exposure.
	rotSeed   = 17
	rotRate   = 0.4
	rotWindow = 40 * sim.Millisecond

	rotReadFrac = 0.7
	rotDeadline = 60 * sim.Millisecond
	rotAttempt  = 8 * sim.Millisecond
	rotThink    = 100 * sim.Microsecond
	// rotSettle idles the cluster before the durability sweep: several
	// scrub rounds (2 ms cadence) to find and repair latent divergence.
	rotSettle = 10 * sim.Millisecond
)

// rotCell is one defense level of the experiment grid.
type rotCell struct {
	name     string
	noVerify bool // disable on-SSD verification (hybridslab.Config.NoVerify)
	scrub    bool // leave the anti-entropy scrubber running
}

// rotRun is one cell's outcome.
type rotRun struct {
	OK, Misses, Failed int64
	Lat                *metrics.Hist
	Violations         []history.Violation
	// CorruptReads counts corrupt-read oracle violations: read hits whose
	// content checksum matches no write any worker ever issued.
	CorruptReads         int64
	AckedKeys, LostAcked int64
	// Ground truth and defense-side ledgers, snapshotted BEFORE the sweep
	// (the sweep's own reads would keep quarantining pages).
	RottenReads        int64 // device: reads that actually served rotted contents
	DetectedCorrupt    int64 // store: foreground reads answered StatusCorrupt
	Quarantined        int64 // manager: suspect pages held out of the free pool
	QuarantineReclaims int64 // manager: quarantined regions scrubbed + reclaimed
	ScrubFound         int64 // replication: content divergences scrub detected
	ScrubRepaired      int64 // replication: divergences repaired from a peer
	// StatsAgree proves the Client.Stats() integrity plumbing reports the
	// same triple the servers hold.
	StatsAgree bool
	// Now is the final virtual clock, for the replay-identity check.
	Now sim.Time
}

// runBitrot executes one cell: preload every key (seq 1), arm bit-rot on
// the victim's device, drive ops mixed operations under the corruption
// oracle, then settle and sweep for lost acked keys.
func runBitrot(factor int, ops int, cell rotCell) *rotRun {
	// Starve the host page cache too: with the default 128 MB cache every
	// "SSD read" is a DRAM hit and the rotting media is never touched. A
	// 256 KB cache forces the adaptive I/O schemes to the device, which is
	// where at-rest rot lives (a cache hit legitimately re-serves the
	// clean DRAM copy).
	prof := cluster.ClusterA()
	prof.PageCache.MaxPages = 64
	prof.PageCache.DirtyHighPages = 16
	prof.PageCache.ThrottlePages = 32
	cfg := cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           prof,
		Servers:           rotServers,
		Clients:           1,
		ServerMem:         rotServerMem,
		SlabPageSize:      rotPageSize,
		ReplicationFactor: factor,
		NoVerify:          cell.noVerify,
	}
	if !cell.scrub {
		cfg.ScrubInterval = -1
	}
	cl := cluster.New(cfg)
	c := cl.Clients[0]
	gen := workload.New(workload.Config{
		Keys: rotKeys, ValueSize: rotValueSize, ReadFraction: rotReadFrac,
		Pattern: workload.Uniform, Seed: 11,
	})

	// Preload the key space with seq 1 and log those writes: the oracle
	// needs every legally-observable checksum, and a read hitting a
	// preloaded value is as legal as one hitting a measured write.
	log := &history.Log{Replicated: factor > 1, CheckValues: true}
	lastOK := map[string]uint64{}
	cl.Env.Spawn("rot-preload", func(p *sim.Proc) {
		for i := 0; i < rotKeys; i++ {
			t0 := p.Now()
			c.Set(p, gen.Key(i), rotValueSize, uint64(1), 0, 0)
			lastOK[gen.Key(i)] = 1
			log.Record(history.Entry{
				Kind: history.Write, Key: gen.Key(i), Seq: 1,
				Sum: protocol.ValueSum(uint64(1)), OK: true, Acked: true,
				IssuedAt: t0, CompletedAt: p.Now(),
			})
		}
	})
	cl.Env.Run()
	cl.SettleIO()

	// The media starts decaying only now: every preloaded extent is
	// durable, so rate-selected extents on the victim all rot inside the
	// window while the workload reads them.
	cl.Devices[rotVictim].AddBitRot(rotSeed, cl.Env.Now(), cl.Env.Now()+rotWindow, rotRate)

	rp := core.RetryPolicy{
		MaxAttempts:    8,
		AttemptTimeout: rotAttempt,
		Backoff:        100 * sim.Microsecond,
		MaxBackoff:     2 * sim.Millisecond,
		Jitter:         -1,
		Seed:           13,
		Failover:       true,
	}
	guard := []core.IssueOption{
		core.WithDeadline(rotDeadline), core.WithRetry(rp), core.WithBufferAck(),
	}

	run := &rotRun{Lat: metrics.NewHist()}
	nextSeq := uint64(1)
	cl.Env.Spawn("rot-driver", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			op := core.Op{Code: protocol.OpGet, Key: key}
			if kind == workload.OpSet {
				nextSeq++
				op = core.Op{Code: protocol.OpSet, Key: key, ValueSize: rotValueSize, Value: nextSeq}
			}
			t0 := p.Now()
			req, err := c.Issue(p, op, guard...)
			if err != nil {
				panic("bench: bitrot issue failed: " + err.Error())
			}
			c.Wait(p, req)
			e := history.Entry{Key: key, IssuedAt: t0, CompletedAt: p.Now()}
			switch rerr := req.Err(); {
			case rerr == nil:
				run.OK++
				run.Lat.Add(p.Now() - t0)
				if kind == workload.OpSet {
					seq, _ := op.Value.(uint64)
					if seq > lastOK[key] {
						lastOK[key] = seq
					}
					e.Kind, e.Seq, e.Sum = history.Write, seq, protocol.ValueSum(op.Value)
					e.OK, e.Acked = true, req.Acked()
				} else {
					// The observed value may be garbage (a Garbled wrapper in
					// the nodefense cells): its Sum then matches no write's,
					// which is exactly what the oracle flags.
					seq, _ := req.Value.(uint64)
					e.Kind, e.Seq, e.Sum = history.Read, seq, protocol.ValueSum(req.Value)
					e.OK, e.Hit = true, true
				}
			case errors.Is(rerr, core.ErrNotFound):
				run.Misses++
				e.Kind, e.OK, e.Hit = history.Read, true, false
				if kind == workload.OpSet {
					e.Kind, e.OK, e.Hit = history.Write, false, false
					e.Seq, _ = op.Value.(uint64)
					e.Sum = protocol.ValueSum(op.Value)
				}
			default:
				run.Failed++
				e.OK = false
				if kind == workload.OpSet {
					e.Kind = history.Write
					e.Seq, _ = op.Value.(uint64)
					e.Sum = protocol.ValueSum(op.Value)
					e.Acked = req.Acked()
				}
			}
			log.Record(e)
			p.Sleep(rotThink)
		}

		// Settle, then snapshot the integrity ledgers BEFORE the sweep:
		// the sweep's own server-direct reads would go on detecting and
		// quarantining, polluting the measured-phase numbers.
		for _, s := range cl.Servers {
			for s.Down() || s.Recovering() {
				p.Sleep(sim.Millisecond)
			}
		}
		p.Sleep(rotSettle)
		run.RottenReads = cl.Devices[rotVictim].RottenReads
		for _, s := range cl.Servers {
			st := s.Store().Stats()
			run.DetectedCorrupt += st.CorruptReads
			run.Quarantined += st.QuarantinedPages
			run.QuarantineReclaims += s.Store().Manager().QuarantineReclaims
		}
		repl := cl.ReplicationCounters()
		run.ScrubFound = repl.Get(string(metrics.CScrubCorruptionsFound))
		run.ScrubRepaired = repl.Get(string(metrics.CScrubCorruptionsRepaired))
		cs := c.Stats()
		run.StatsAgree = cs.ScrubCorruptionsFound == run.ScrubFound &&
			cs.ScrubCorruptionsRepaired == run.ScrubRepaired &&
			cs.QuarantinedPages == run.Quarantined

		// Durability sweep: ask every server directly whether it still
		// holds each acked key at or past its newest OK sequence. A rotted
		// copy fails verification here too (or, nodefense, parses as
		// garbage) — either way that replica does not count as holding it.
		keys := make([]string, 0, len(lastOK))
		for k := range lastOK {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			run.AckedKeys++
			held := false
			for _, s := range cl.Servers {
				if v, _, _, _, ok := s.Store().ReadItem(p, k); ok {
					if seq, _ := v.(uint64); seq >= lastOK[k] {
						held = true
						break
					}
				}
			}
			if !held {
				run.LostAcked++
			}
		}
	})
	cl.Env.Run()
	run.Now = cl.Env.Now()
	run.Violations = log.Check()
	for _, v := range run.Violations {
		if v.Rule == "corrupt-read" {
			run.CorruptReads++
		}
	}
	return run
}

// bitrotExp is the registry entry: R ∈ {1,2,3} × {nodefense, verify,
// verify+scrub} over the same rot schedule, plus a replay of one defended
// cell to prove the injection draws nothing from the fault RNG stream. The
// headline metrics: nodefense_surfaces (the attack is real — garbage was
// served somewhere), defense_holds (no defended cell served a single
// corrupt read, and every defended R ≥ 2 cell lost zero acked writes), and
// replay_identical.
func bitrotExp(o Options) *Result {
	res := newResult("bitrot",
		"Bit-rot: at-rest SSD corruption vs read verification and scrub repair")
	ops := o.ops(600)

	cells := []rotCell{
		{name: "nodefense", noVerify: true},
		{name: "verify"},
		{name: "verify+scrub", scrub: true},
	}

	corrupt := &metrics.Series{Name: "corrupt reads"}
	lost := &metrics.Series{Name: "lost acked"}
	rotten := &metrics.Series{Name: "rotten reads"}
	quar := &metrics.Series{Name: "quarantined"}
	repaired := &metrics.Series{Name: "scrub repaired"}

	surfaced, held := false, true
	detail := ""
	for _, r := range []int{1, 2, 3} {
		for _, cell := range cells {
			run := runBitrot(r, ops, cell)
			name := fmt.Sprintf("R%d.%s", r, cell.name)

			corrupt.Append(name, float64(run.CorruptReads))
			lost.Append(name, float64(run.LostAcked))
			rotten.Append(name, float64(run.RottenReads))
			quar.Append(name, float64(run.Quarantined))
			repaired.Append(name, float64(run.ScrubRepaired))

			res.metric(name+".ok", float64(run.OK))
			res.metric(name+".misses", float64(run.Misses))
			res.metric(name+".failed", float64(run.Failed))
			res.metric(name+".p99_us", us(run.Lat.Quantile(0.99)))
			res.metric(name+".corrupt_reads", float64(run.CorruptReads))
			res.metric(name+".violations", float64(len(run.Violations)))
			res.metric(name+".acked_keys", float64(run.AckedKeys))
			res.metric(name+".lost_acked", float64(run.LostAcked))
			res.metric(name+".rotten_reads", float64(run.RottenReads))
			res.metric(name+".detected_corrupt", float64(run.DetectedCorrupt))
			res.metric(name+".quarantined", float64(run.Quarantined))
			res.metric(name+".quarantine_reclaims", float64(run.QuarantineReclaims))
			res.metric(name+".scrub_found", float64(run.ScrubFound))
			res.metric(name+".scrub_repaired", float64(run.ScrubRepaired))
			res.metric(name+".stats_agree", b2f(run.StatsAgree))

			if cell.noVerify && run.CorruptReads > 0 {
				surfaced = true
			}
			if !cell.noVerify {
				if run.CorruptReads != 0 {
					held = false
				}
				if r >= 2 && run.LostAcked != 0 {
					held = false
				}
			}
			// Nodefense cells violate on purpose (corrupt reads, plus the
			// stale-read collateral a garbled hit causes); their counts are
			// the .violations metric. Details print only where a violation
			// is unexpected — any defended cell.
			if !cell.noVerify {
				for _, v := range run.Violations {
					detail += fmt.Sprintf("VIOLATION %s: %s\n", name, v)
				}
			}
		}
	}
	res.metric("nodefense_surfaces", b2f(surfaced))
	res.metric("defense_holds", b2f(held))

	// Replay identity: the same defended cell twice, compared on the final
	// virtual clock and every ledger — the injection is a pure hash of
	// (seed, offset), so a faulted run replays exactly.
	a := runBitrot(2, ops, rotCell{name: "verify+scrub", scrub: true})
	b := runBitrot(2, ops, rotCell{name: "verify+scrub", scrub: true})
	identical := a.Now == b.Now && a.OK == b.OK && a.Misses == b.Misses &&
		a.Failed == b.Failed && a.RottenReads == b.RottenReads &&
		a.DetectedCorrupt == b.DetectedCorrupt && a.Quarantined == b.Quarantined &&
		a.ScrubFound == b.ScrubFound && a.ScrubRepaired == b.ScrubRepaired &&
		a.CorruptReads == b.CorruptReads && a.LostAcked == b.LostAcked
	res.metric("replay_identical", b2f(identical))

	res.Output = res.addTable(res.Title, corrupt, lost, rotten, quar, repaired) +
		detail + res.renderMetrics()
	return res
}

// b2f renders a pass/fail as a 1/0 metric value.
func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
