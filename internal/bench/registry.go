package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible table/figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Result
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"tbl1", "Design comparison with existing work (Table I)", table1},
	{"fig1a", "Overall Set/Get latency, data fits in memory", func(o Options) *Result { return fig1(o, true) }},
	{"fig1b", "Overall Set/Get latency, data exceeds memory", func(o Options) *Result { return fig1(o, false) }},
	{"fig2a", "Six-stage breakdown, data fits in memory", func(o Options) *Result { return fig2(o, true) }},
	{"fig2b", "Six-stage breakdown, data exceeds memory", func(o Options) *Result { return fig2(o, false) }},
	{"fig4", "Eviction I/O schemes across data sizes", fig4},
	{"fig6a", "Breakdown with proposed designs, data fits", func(o Options) *Result { return fig6(o, true) }},
	{"fig6b", "Breakdown with proposed designs, data exceeds memory", func(o Options) *Result { return fig6(o, false) }},
	{"fig7a", "Overlap% with different workload patterns", fig7a},
	{"fig7b", "Latency with varying key-value pair sizes", fig7b},
	{"fig7c", "Aggregated throughput scalability", fig7c},
	{"fig8a", "SATA vs NVMe, read-only and write-heavy", fig8a},
	{"fig8b", "Bursty block I/O workload", fig8b},
	{"faults", "Degraded mode: tail latency and goodput under a fault schedule", faultsExp},
	{"batching", "Doorbell batching: batch size sweep over every design", batchingExp},
	{"recovery", "Cold-restart recovery: crash consistency under torn writes", recoveryExp},
	{"overload", "Graceful degradation: bounded admission and shedding under bursty arrivals", overloadExp},
	{"chaos", "Chaos soak: faults + crashes + overload under the history invariant checker", chaosExp},
	{"replication", "Primary-backup replication: acked-write durability under whole-node kills", replicationExp},
	{"bypass", "Server-bypass GETs: one-sided READ vs RPC read path", bypassExp},
	{"hotkey", "Hot-key serving: celebrity flash crowd vs replicated-read fan-out", hotkeyExp},
	{"membership", "Dynamic membership: join/decommission under chaos and the scaling sweep", membershipExp},
	{"grayfail", "Gray failure: fail-slow node, brown-out routing, background pacing", grayfailExp},
	{"bitrot", "Bit-rot: at-rest SSD corruption vs read verification and scrub repair", bitrotExp},
}

// ByID finds an experiment, or nil.
func ByID(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment and streams results to w.
func RunAll(w io.Writer, o Options) []*Result {
	var out []*Result
	for _, e := range Registry {
		r := e.Run(o)
		out = append(out, r)
		fmt.Fprintf(w, "==> %s — %s\n%s\n", r.ID, e.Title, r.Output)
	}
	return out
}
