package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/fault"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// This file is the degraded-mode experiment family: the same six designs,
// measured twice — once clean and once under a fault schedule (message
// drops/dups/latency spikes, a server crash window, SSD read errors) — with
// the client's deadline/retry/failover machinery armed. The contrast is
// tail latency and goodput, not means: a lossy fabric moves p99, not p50.

// FaultSchedule configures one degraded-mode phase. The zero value is a
// clean run (no injection anywhere).
type FaultSchedule struct {
	// Seed drives every injector RNG in the phase.
	Seed int64
	// Drop / Dup / Spike are per-message fabric fault probabilities.
	Drop, Dup, Spike float64
	// SpikeDelay is the extra latency of a spiked message.
	SpikeDelay sim.Time
	// CrashFrom / CrashTo crash server 0 for [From, To) relative to the
	// start of the measurement phase (CrashTo ≤ CrashFrom disables).
	CrashFrom, CrashTo sim.Time
	// SSDReadErr / SSDWriteErr are per-command SSD I/O error probabilities.
	SSDReadErr, SSDWriteErr float64
}

// Empty reports a schedule that injects nothing.
func (fs FaultSchedule) Empty() bool {
	return fs.Drop == 0 && fs.Dup == 0 && fs.Spike == 0 &&
		fs.CrashTo <= fs.CrashFrom && fs.SSDReadErr == 0 && fs.SSDWriteErr == 0
}

// DefaultFaultSchedule is the standard degraded-mode mix: 1% drops, 0.5%
// dups, 1% latency spikes of 100 µs, server 0 down for 4 ms early in the
// phase, and 0.5% SSD read errors.
func DefaultFaultSchedule() FaultSchedule {
	return FaultSchedule{
		Seed:       42,
		Drop:       0.01,
		Dup:        0.005,
		Spike:      0.01,
		SpikeDelay: 100 * sim.Microsecond,
		CrashFrom:  2 * sim.Millisecond,
		CrashTo:    6 * sim.Millisecond,
		SSDReadErr: 0.005,
	}
}

// Client-side recovery policy, armed for every phase (clean and faulted).
// The attempt timeout must clear the slowest legitimate clean-run request —
// a synchronous H-RDMA-Def Set that flushes an eviction batch with direct
// I/O takes up to ~5.5 ms — or the "recovery" would retransmit against a
// healthy, merely busy server and perturb the clean baseline.
const (
	faultDeadline       = 32 * sim.Millisecond
	faultAttemptTimeout = 8 * sim.Millisecond
	faultWindow         = 32 // in-flight window for non-blocking designs
	ipoibRecvTimeout    = 8 * sim.Millisecond
	ipoibRecvRetries    = 3
)

// FaultedResult summarizes one (clean or faulted) measurement phase.
type FaultedResult struct {
	// Lat holds per-op completion latency for every op, including ones
	// that ended in a timeout — that is where the fault tail lives.
	Lat *metrics.Hist
	// Ops = OK + Misses + Failed. Misses were answered by the server
	// (NotFound) and served from the backend; Failed timed out or errored.
	Ops, OK, Misses, Failed int64
	Elapsed                 sim.Time
	// Goodput is answered operations (OK + Misses) per virtual second.
	Goodput float64
	// Counters is the phase delta of the client's fault counters
	// (retries, timeouts, failovers, stale-responses, …).
	Counters *metrics.Counters
	// NetDropped counts fabric messages lost to injection in the phase.
	NetDropped int64
}

// RunFaulted executes ops operations on client ci under sched. It arms the
// fabric injector, the server-0 crash window, and SSD error injection at
// the start of the measurement phase, and uses the deadline/retry client
// API so no fault can wedge the run. With an empty schedule the op path is
// virtual-time-identical to the no-fault drivers (guards and timeout arms
// never fire), so clean numbers match the existing experiments exactly.
func RunFaulted(cl *cluster.Cluster, gen *workload.Generator, ci, ops int, sched FaultSchedule) *FaultedResult {
	res := &FaultedResult{Lat: metrics.NewHist()}
	c := cl.Clients[ci]
	start := cl.Env.Now()
	if !sched.Empty() {
		inj := fault.New(fault.Config{
			Seed: sched.Seed, Drop: sched.Drop, Dup: sched.Dup,
			Spike: sched.Spike, SpikeDelay: sched.SpikeDelay,
		})
		cl.Fabric.SetFaults(inj)
		if sched.CrashTo > sched.CrashFrom && len(cl.Servers) > 0 {
			cl.Servers[0].ScheduleCrash(start+sched.CrashFrom, start+sched.CrashTo)
		}
		if sched.SSDReadErr > 0 || sched.SSDWriteErr > 0 {
			for i, dev := range cl.Devices {
				dev.SetFaults(sched.Seed+int64(i)+1, sched.SSDReadErr, sched.SSDWriteErr)
			}
		}
	}
	before := c.Faults.Snapshot()
	droppedBefore := cl.Fabric.Dropped
	cl.Env.Spawn(fmt.Sprintf("drv-fault-%d", ci), func(p *sim.Proc) {
		if cl.Design.Transport() == core.IPoIB {
			runFaultedIPoIB(p, cl, c, gen, ops, res)
			return
		}
		runFaultedRDMA(p, cl, c, gen, ops, sched, res)
	})
	cl.Env.Run()
	cl.Fabric.SetFaults(nil)
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(ops)
	res.Goodput = metrics.Throughput(res.OK+res.Misses, res.Elapsed)
	res.Counters = metrics.NewCounters()
	after := c.Faults.Snapshot()
	for _, name := range after.Names() {
		if d := after.Get(name) - before.Get(name); d != 0 {
			res.Counters.Add(name, d)
		}
	}
	res.NetDropped = cl.Fabric.Dropped - droppedBefore
	return res
}

// classify tallies one completed request.
func (res *FaultedResult) classify(err error) {
	switch {
	case err == nil:
		res.OK++
	case errors.Is(err, core.ErrNotFound):
		res.Misses++
	default:
		res.Failed++
	}
}

// runFaultedRDMA drives the RDMA designs with the unified Issue API armed
// with deadline + retry + failover. Blocking designs run one op at a time
// (window 1, web-caching miss contract); non-blocking designs pipeline a
// window of requests and drain it with WaitAll.
func runFaultedRDMA(p *sim.Proc, cl *cluster.Cluster, c *core.Client, gen *workload.Generator, ops int, sched FaultSchedule, res *FaultedResult) {
	vs := gen.ValueSize()
	rp := core.RetryPolicy{
		MaxAttempts:    4,
		AttemptTimeout: faultAttemptTimeout,
		Failover:       len(cl.Servers) > 1,
		Seed:           sched.Seed,
	}
	opts := []core.IssueOption{core.WithDeadline(faultDeadline), core.WithRetry(rp)}
	if cl.Design.BufferGuarantee() {
		opts = append(opts, core.WithBufferAck())
	}
	opFor := func(kind workload.OpKind, key string) core.Op {
		if kind == workload.OpSet {
			return core.Op{Code: protocol.OpSet, Key: key, ValueSize: vs, Value: key}
		}
		return core.Op{Code: protocol.OpGet, Key: key}
	}
	if !cl.Design.NonBlocking() {
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			t0 := p.Now()
			req, err := c.Issue(p, opFor(kind, key), opts...)
			if err != nil {
				panic("bench: faulted issue failed: " + err.Error())
			}
			c.Wait(p, req)
			e := req.Err()
			if errors.Is(e, core.ErrNotFound) {
				// Web-caching contract: serve the miss from the backend and
				// re-populate.
				mt := p.Now()
				v := cl.Backend.Fetch(p, key)
				c.Prof.Add(metrics.StageMissPenalty, p.Now()-mt)
				sreq, _ := c.Issue(p, core.Op{Code: protocol.OpSet, Key: key, ValueSize: vs, Value: v}, opts...)
				c.Wait(p, sreq)
			}
			res.classify(e)
			res.Lat.Add(p.Now() - t0)
		}
		return
	}
	left := ops
	for left > 0 {
		n := faultWindow
		if n > left {
			n = left
		}
		reqs := make([]*core.Req, 0, n)
		for i := 0; i < n; i++ {
			kind, key := gen.Next()
			req, err := c.Issue(p, opFor(kind, key), opts...)
			if err != nil {
				panic("bench: faulted issue failed: " + err.Error())
			}
			reqs = append(reqs, req)
		}
		c.WaitAll(p, reqs)
		for _, r := range reqs {
			res.classify(r.Err())
			res.Lat.Add(r.CompletedAt - r.IssuedAt)
		}
		left -= n
	}
}

// runFaultedIPoIB drives the socket design with the blocking API; recovery
// comes from the client's RecvTimeout/RecvRetries config.
func runFaultedIPoIB(p *sim.Proc, cl *cluster.Cluster, c *core.Client, gen *workload.Generator, ops int, res *FaultedResult) {
	vs := gen.ValueSize()
	for i := 0; i < ops; i++ {
		kind, key := gen.Next()
		t0 := p.Now()
		if kind == workload.OpSet {
			st := c.Set(p, key, vs, key, 0, 0)
			if st == protocol.StatusError {
				res.Failed++
			} else {
				res.OK++
			}
		} else {
			_, _, st := c.Get(p, key)
			switch st {
			case protocol.StatusNotFound:
				res.Misses++
				mt := p.Now()
				v := cl.Backend.Fetch(p, key)
				c.Prof.Add(metrics.StageMissPenalty, p.Now()-mt)
				c.Set(p, key, vs, v, 0, 0)
			case protocol.StatusError:
				res.Failed++
			default:
				res.OK++
			}
		}
		res.Lat.Add(p.Now() - t0)
	}
}

// buildFaultCluster assembles a two-server deployment (so failover has
// somewhere to go) with the degraded-mode client config, and preloads it.
func buildFaultCluster(d cluster.Design, mem int64, dataBytes int64, kv int) (*cluster.Cluster, int) {
	ccfg := core.Config{}
	if d.Transport() == core.IPoIB {
		ccfg.RecvTimeout = ipoibRecvTimeout
		ccfg.RecvRetries = ipoibRecvRetries
	}
	cl := cluster.New(cluster.Config{
		Design:    d,
		Profile:   cluster.ClusterA(),
		Servers:   2,
		Clients:   1,
		ServerMem: mem / 2,
		Client:    ccfg,
	})
	keys := int(dataBytes / int64(kv))
	cl.Preload(keys, kv, keyOf)
	return cl, keys
}

// faultsExp is the registry entry: every design, clean vs faulted phase on
// fresh clusters, reporting p50/p99 latency, goodput, and recovery counts.
func faultsExp(o Options) *Result {
	res := newResult("faults", "Degraded mode: tail latency and goodput under a fault schedule")
	mem, kv, opsDef := o.geometry()
	ops := o.ops(opsDef / 2)
	dataBytes := mem * 3 / 2 // overcommit: SSD paths (and their faults) in play
	sched := DefaultFaultSchedule()

	cleanP50 := &metrics.Series{Name: "clean p50µs"}
	cleanP99 := &metrics.Series{Name: "clean p99µs"}
	cleanGP := &metrics.Series{Name: "clean op/s"}
	faultP50 := &metrics.Series{Name: "fault p50µs"}
	faultP99 := &metrics.Series{Name: "fault p99µs"}
	faultGP := &metrics.Series{Name: "fault op/s"}
	retries := &metrics.Series{Name: "retries"}
	timeouts := &metrics.Series{Name: "timeouts"}
	failed := &metrics.Series{Name: "failed"}

	phase := func(d cluster.Design, s FaultSchedule) *FaultedResult {
		cl, keys := buildFaultCluster(d, mem, dataBytes, kv)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: kv, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 7,
		})
		return RunFaulted(cl, gen, 0, ops, s)
	}
	for _, d := range cluster.Designs {
		clean := phase(d, FaultSchedule{})
		faulted := phase(d, sched)
		name := d.String()
		cleanP50.Append(name, us(clean.Lat.Quantile(0.50)))
		cleanP99.Append(name, us(clean.Lat.Quantile(0.99)))
		cleanGP.Append(name, clean.Goodput)
		faultP50.Append(name, us(faulted.Lat.Quantile(0.50)))
		faultP99.Append(name, us(faulted.Lat.Quantile(0.99)))
		faultGP.Append(name, faulted.Goodput)
		retries.Append(name, float64(faulted.Counters.Get("retries")))
		timeouts.Append(name, float64(faulted.Counters.Get("timeouts")))
		failed.Append(name, float64(faulted.Failed))
		res.metric(name+".clean_p50_us", us(clean.Lat.Quantile(0.50)))
		res.metric(name+".clean_p99_us", us(clean.Lat.Quantile(0.99)))
		res.metric(name+".clean_goodput", clean.Goodput)
		res.metric(name+".clean_failed", float64(clean.Failed))
		res.metric(name+".clean_retries", float64(clean.Counters.Get("retries")))
		res.metric(name+".fault_p50_us", us(faulted.Lat.Quantile(0.50)))
		res.metric(name+".fault_p99_us", us(faulted.Lat.Quantile(0.99)))
		res.metric(name+".fault_goodput", faulted.Goodput)
		res.metric(name+".fault_failed", float64(faulted.Failed))
		res.metric(name+".fault_retries", float64(faulted.Counters.Get("retries")))
		res.metric(name+".fault_timeouts", float64(faulted.Counters.Get("timeouts")))
		res.metric(name+".fault_failovers", float64(faulted.Counters.Get("failovers")))
		res.metric(name+".net_dropped", float64(faulted.NetDropped))
	}
	res.Output = res.addTable(res.Title,
		cleanP50, cleanP99, cleanGP, faultP50, faultP99, faultGP,
		retries, timeouts, failed) + res.renderMetrics()
	return res
}
