package bench

import (
	"testing"

	"hybridkv/internal/cluster"
	"hybridkv/internal/server"
	"hybridkv/internal/workload"
)

const (
	overTestMem = 16 << 20
	overTestKV  = 8 << 10
	overTestOps = 300
)

func overTestGen(keys int) *workload.Generator {
	return workload.New(workload.Config{
		Keys: keys, ValueSize: overTestKV, ReadFraction: 0.5,
		Pattern: workload.Uniform, Seed: 7,
	})
}

// With protection disabled, the admission layer must be invisible: a plain
// non-blocking run on the default cluster and on a cluster carrying an
// explicit zero OverloadConfig take exactly the same virtual time. The
// zero-value path is the old blocking-reservation path, bit for bit.
func TestOverloadDisabledIsPlain(t *testing.T) {
	d := cluster.HRDMAOptNonBI
	build := func(withZero bool) (*cluster.Cluster, int) {
		cfg := cluster.Config{
			Design: d, Profile: cluster.ClusterA(), Servers: 2,
			ServerMem: overTestMem / 2, StorageWorkers: overWorkers,
			BufferBytes: overBufferBytes,
		}
		if withZero {
			cfg.Overload = server.OverloadConfig{} // explicit zero: disabled
		}
		cl := cluster.New(cfg)
		keys := int(overTestMem * 3 / 2 / overTestKV)
		cl.Preload(keys, overTestKV, keyOf)
		return cl, keys
	}

	cl1, keys := build(false)
	r1 := RunNonBlocking(cl1, overTestGen(keys), 0, overTestOps, false)
	cl2, _ := build(true)
	r2 := RunNonBlocking(cl2, overTestGen(keys), 0, overTestOps, false)

	if r1.Elapsed != r2.Elapsed {
		t.Errorf("zero OverloadConfig changed timing: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	if r1.Misses != r2.Misses {
		t.Errorf("zero OverloadConfig changed misses: %d vs %d", r1.Misses, r2.Misses)
	}
	for _, s := range cl2.Servers {
		if s.ShedSets != 0 || s.ShedGets != 0 {
			t.Errorf("disabled admission shed %d/%d requests", s.ShedSets, s.ShedGets)
		}
	}
}

// Enabled admission under light load must also be timing-identical to the
// blocking path: a sequential (closed-loop, depth-1) run never crosses a
// watermark, and an uncontended TryAcquireN costs exactly what an
// uncontended AcquireN does.
func TestOverloadEnabledLightLoadParity(t *testing.T) {
	d := cluster.HRDMAOptNonBB
	build := func(enabled bool) (*cluster.Cluster, int) {
		cfg := cluster.Config{
			Design: d, Profile: cluster.ClusterA(), Servers: 2,
			ServerMem: overTestMem / 2, StorageWorkers: overWorkers,
			BufferBytes: overBufferBytes,
		}
		if enabled {
			cfg.Overload = server.OverloadConfig{Enabled: true, QueueHigh: overQueueHigh}
		}
		cl := cluster.New(cfg)
		keys := int(overTestMem / 2 / overTestKV) // fits in memory: no storage queue
		cl.Preload(keys, overTestKV, keyOf)
		return cl, keys
	}

	cl1, keys := build(false)
	r1 := RunBlocking(cl1, overTestGen(keys), 0, overTestOps)
	cl2, _ := build(true)
	r2 := RunBlocking(cl2, overTestGen(keys), 0, overTestOps)

	if r1.Elapsed != r2.Elapsed {
		t.Errorf("light-load admission changed timing: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	var sheds int64
	for _, s := range cl2.Servers {
		sheds += s.ShedSets + s.ShedGets
	}
	if sheds != 0 {
		t.Errorf("light sequential load shed %d requests", sheds)
	}
}

// The tentpole acceptance check at test scale: under the bursty schedule on
// an async hybrid design, protection sheds SETs (never silently), keeps the
// storage-queue peak at or under the unprotected one, and bounds admitted-GET
// p99 below the unprotected run's.
func TestOverloadProtectionBoundsGetTail(t *testing.T) {
	d := cluster.HRDMAOptNonBB
	ops := 240

	off := overloadPhase(d, overTestMem, overTestKV, ops, false)
	on := overloadPhase(d, overTestMem, overTestKV, ops, true)

	if off.ShedSets+off.ShedGets != 0 {
		t.Errorf("unprotected run shed %d/%d", off.ShedSets, off.ShedGets)
	}
	if on.ShedSets == 0 {
		t.Error("protected run shed nothing: burst never crossed the SET watermark")
	}
	if on.Counters.Get("busy") == 0 {
		t.Error("no busy responses observed by the client")
	}
	if on.QueuePeak > off.QueuePeak {
		t.Errorf("protected queue peak %d exceeds unprotected %d", on.QueuePeak, off.QueuePeak)
	}
	offP99 := off.GetLat.Quantile(0.99)
	onP99 := on.GetLat.Quantile(0.99)
	if onP99 >= offP99 {
		t.Errorf("admitted-GET p99 not improved: on %v >= off %v", onP99, offP99)
	}
	if on.Failed != 0 {
		t.Errorf("protected run failed %d ops: retries did not absorb shedding", on.Failed)
	}
}

// Priority shedding: when both classes are past their watermarks the server
// rejects SETs strictly before GETs — at test scale GET sheds stay zero
// while SET sheds engage.
func TestOverloadShedsSetsBeforeGets(t *testing.T) {
	on := overloadPhase(cluster.HRDMAOptNonBI, overTestMem, overTestKV, 240, true)
	if on.ShedSets == 0 {
		t.Fatal("no SETs shed")
	}
	if on.ShedGets > on.ShedSets {
		t.Errorf("GET sheds %d exceed SET sheds %d: priority inverted", on.ShedGets, on.ShedSets)
	}
}

// The overload run is deterministic: identical seeds and schedules replay to
// identical virtual time and counters.
func TestOverloadDeterministic(t *testing.T) {
	run := func() *OverloadRun {
		return overloadPhase(cluster.HRDMAOptNonBB, overTestMem, overTestKV, 240, true)
	}
	r1, r2 := run(), run()
	if r1.Elapsed != r2.Elapsed || r1.OK != r2.OK || r1.ShedSets != r2.ShedSets ||
		r1.Counters.Get("busy") != r2.Counters.Get("busy") {
		t.Errorf("overload run not deterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			r1.Elapsed, r1.OK, r1.ShedSets, r1.Counters.Get("busy"),
			r2.Elapsed, r2.OK, r2.ShedSets, r2.Counters.Get("busy"))
	}
}

// A busy response must carry a non-zero retry-after hint and the client must
// floor its backoff with it (the hint is in wire microseconds).
func TestOverloadRetryAfterHintFlows(t *testing.T) {
	on := overloadPhase(cluster.HRDMAOptNonBB, overTestMem, overTestKV, 240, true)
	if on.ShedSets == 0 {
		t.Skip("burst did not shed at this scale")
	}
	// The hint unit is 10µs in buildOverloadCluster; any shed op's guard
	// must have slept at least that long before its successful retry, so
	// the run's elapsed must exceed the no-backoff floor. Cheap proxy:
	// retries happened and nothing failed.
	if on.Counters.Get("retries") == 0 {
		t.Error("sheds without retries: busy nudge path dead")
	}
	if on.Failed != 0 {
		t.Errorf("%d ops failed despite retry-after guidance", on.Failed)
	}
}

// Registry shape check (mirrors TestFaultsExperimentShape).
func TestOverloadExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overload experiment is slow")
	}
	r := overloadExp(quick())
	for _, d := range []cluster.Design{cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI} {
		name := d.String()
		if r.Metrics[name+".on_shed_sets"] == 0 {
			t.Errorf("%s: protected phase shed nothing", name)
		}
		if r.Metrics[name+".off_get_p99_us"] <= r.Metrics[name+".on_get_p99_us"] {
			t.Errorf("%s: protection did not bound GET p99 (off %v vs on %v)",
				name, r.Metrics[name+".off_get_p99_us"], r.Metrics[name+".on_get_p99_us"])
		}
	}
	if r.Output == "" {
		t.Error("no output table")
	}
}
