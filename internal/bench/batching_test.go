package bench

import (
	"testing"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// batchCell runs one sweep cell: design d, 50:50 zipf, window size b.
func batchCell(t *testing.T, d cluster.Design, read float64, b, ops int) *BatchedResult {
	t.Helper()
	mem := int64(24 << 20)
	cl, keys := buildBatching(d, mem, mem*3/2, 32*1024)
	gen := workload.New(workload.Config{
		Keys: keys, ValueSize: 32 * 1024, ReadFraction: read,
		Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 7,
	})
	return RunBatched(cl, gen, 0, ops, b)
}

// TestBatchingImprovesNonBDesigns locks the tentpole's headline claim: on
// the 50:50 workload, a 16-op coalescing window gives the non-blocking
// designs strictly higher throughput, strictly fewer SSD eviction writes,
// and strictly fewer wire sends (credits) than unbatched issue.
func TestBatchingImprovesNonBDesigns(t *testing.T) {
	for _, d := range []cluster.Design{cluster.HRDMAOptNonBB, cluster.HRDMAOptNonBI} {
		b1 := batchCell(t, d, 0.5, 1, 1200)
		b16 := batchCell(t, d, 0.5, 16, 1200)
		if b16.OpsPerS <= b1.OpsPerS {
			t.Errorf("%s: batch=16 ops/s %.0f not above batch=1 %.0f", d, b16.OpsPerS, b1.OpsPerS)
		}
		if b16.SSDWrites >= b1.SSDWrites {
			t.Errorf("%s: batch=16 SSD writes %d not below batch=1 %d", d, b16.SSDWrites, b1.SSDWrites)
		}
		if b16.Sends >= b1.Sends {
			t.Errorf("%s: batch=16 sends %d not below batch=1 %d", d, b16.Sends, b1.Sends)
		}
		if b16.Frames == 0 || b1.Frames != 0 {
			t.Errorf("%s: frames b16=%d b1=%d, want coalescing only at batch=16", d, b16.Frames, b1.Frames)
		}
	}
}

// TestBatchOneMatchesPlainDriver locks the no-regression criterion: batch=1
// never opens a window, so RunBatched must consume exactly the virtual time
// of a driver written against the pre-batching API (serial issue + wait).
func TestBatchOneMatchesPlainDriver(t *testing.T) {
	const ops = 400
	mem := int64(24 << 20)
	batched := func() sim.Time {
		cl, keys := buildBatching(cluster.HRDMAOptNonBI, mem, mem*3/2, 32*1024)
		gen := workload.New(workload.Config{
			Keys: keys, ValueSize: 32 * 1024, ReadFraction: 0.5,
			Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 7,
		})
		return RunBatched(cl, gen, 0, ops, 1).Elapsed
	}()
	cl, keys := buildBatching(cluster.HRDMAOptNonBI, mem, mem*3/2, 32*1024)
	gen := workload.New(workload.Config{
		Keys: keys, ValueSize: 32 * 1024, ReadFraction: 0.5,
		Pattern: workload.Zipf, ZipfS: zipfOver, Seed: 7,
	})
	c := cl.Clients[0]
	start := cl.Env.Now()
	cl.Env.Spawn("plain", func(p *sim.Proc) {
		vs := gen.ValueSize()
		for i := 0; i < ops; i++ {
			kind, key := gen.Next()
			var req *core.Req
			var err error
			if kind == workload.OpSet {
				req, err = c.ISet(p, key, vs, key, 0, 0)
			} else {
				req, err = c.IGet(p, key)
			}
			if err != nil {
				t.Fatalf("issue: %v", err)
			}
			c.Wait(p, req)
		}
	})
	cl.Env.Run()
	plain := cl.Env.Now() - start
	if batched != plain {
		t.Errorf("batch=1 elapsed %v differs from pre-batching driver %v", batched, plain)
	}
}

// TestBatchedIPoIBCoalesces checks the socket leg: buffered windows send
// vectored frames, cutting wire sends well below one per op.
func TestBatchedIPoIBCoalesces(t *testing.T) {
	b1 := batchCell(t, cluster.IPoIBMem, 0.0, 1, 600)
	b16 := batchCell(t, cluster.IPoIBMem, 0.0, 16, 600)
	if b16.Sends >= b1.Sends {
		t.Errorf("IPoIB: batch=16 sends %d not below batch=1 %d", b16.Sends, b1.Sends)
	}
	if b16.Frames == 0 {
		t.Errorf("IPoIB: no vectored frames sent at batch=16")
	}
	if b16.OpsPerS <= b1.OpsPerS {
		t.Errorf("IPoIB: batch=16 ops/s %.0f not above batch=1 %.0f", b16.OpsPerS, b1.OpsPerS)
	}
}
