package bench

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

// This file is the doorbell-batching experiment: the same six designs driven
// in coalescing windows of 1, 4, 16 and 64 operations. Batch size 1 never
// opens a window — it exercises exactly the pre-batching issue path — so the
// sweep isolates what coalescing buys: fewer wire sends (credits), a single
// receive-repost per frame, and merged eviction flushes on the server.

// BatchedResult summarizes one batched measurement phase.
type BatchedResult struct {
	Ops     int64
	Elapsed sim.Time
	OpsPerS float64
	// Lat holds per-op completion latency (issue to completion for the
	// non-blocking designs, call duration for the socket path).
	Lat *metrics.Hist
	// Sends counts wire sends during the phase — on RDMA each send consumed
	// one flow-control credit, so this is also the credits spent. Frames of
	// N ops count once.
	Sends  int64
	Frames int64
	// SSDWrites counts eviction flush writes issued by the servers during
	// the phase (merged flushes count once).
	SSDWrites int64
	Misses    int64
}

// sumFlushWrites totals eviction flush write calls across servers.
func sumFlushWrites(cl *cluster.Cluster) int64 {
	var n int64
	for _, s := range cl.Servers {
		n += s.Store().Manager().FlushWrites
	}
	return n
}

// RunBatched drives ops operations in coalescing windows of batch ops on
// client ci and reports throughput, tail latency, wire sends, and eviction
// flush writes. batch == 1 issues one op at a time with no window open — the
// pre-batching behaviour. On RDMA designs a window is BeginBatch / issue /
// Flush / WaitAll; on IPoIB it is libmemcached-style request buffering
// flushed every batch ops.
func RunBatched(cl *cluster.Cluster, gen *workload.Generator, ci, ops, batch int) *BatchedResult {
	if batch < 1 {
		batch = 1
	}
	res := &BatchedResult{Lat: metrics.NewHist()}
	c := cl.Clients[ci]
	ssd0 := sumFlushWrites(cl)
	sends0, frames0 := c.Sends, c.Frames
	start := cl.Env.Now()
	cl.Env.Spawn(fmt.Sprintf("drv-batch-%d", ci), func(p *sim.Proc) {
		if cl.Design.Transport() == core.IPoIB {
			runBatchedIPoIB(p, c, gen, ops, batch, res)
		} else {
			runBatchedRDMA(p, c, gen, ops, batch, cl.Design.BufferGuarantee(), res)
		}
	})
	cl.Env.Run()
	res.Elapsed = cl.Env.Now() - start
	res.Ops = int64(ops)
	res.OpsPerS = metrics.Throughput(res.Ops, res.Elapsed)
	res.Sends = c.Sends - sends0
	res.Frames = c.Frames - frames0
	res.SSDWrites = sumFlushWrites(cl) - ssd0
	return res
}

func runBatchedRDMA(p *sim.Proc, c *core.Client, gen *workload.Generator, ops, batch int, bufAck bool, res *BatchedResult) {
	vs := gen.ValueSize()
	issue := func() *core.Req {
		kind, key := gen.Next()
		var req *core.Req
		var err error
		switch {
		case kind == workload.OpSet && bufAck:
			req, err = c.BSet(p, key, vs, key, 0, 0)
		case kind == workload.OpSet:
			req, err = c.ISet(p, key, vs, key, 0, 0)
		case bufAck:
			req, err = c.BGet(p, key)
		default:
			req, err = c.IGet(p, key)
		}
		if err != nil {
			panic("bench: batched issue failed: " + err.Error())
		}
		return req
	}
	for left := ops; left > 0; {
		n := batch
		if n > left {
			n = left
		}
		if n > 1 {
			if err := c.BeginBatch(); err != nil {
				panic("bench: " + err.Error())
			}
		}
		reqs := make([]*core.Req, 0, n)
		for i := 0; i < n; i++ {
			reqs = append(reqs, issue())
		}
		if n > 1 {
			if err := c.Flush(p); err != nil {
				panic("bench: " + err.Error())
			}
		}
		c.WaitAll(p, reqs)
		for _, r := range reqs {
			res.Lat.Add(r.CompletedAt - r.IssuedAt)
			if r.Status == protocol.StatusNotFound {
				res.Misses++
			}
		}
		left -= n
	}
}

func runBatchedIPoIB(p *sim.Proc, c *core.Client, gen *workload.Generator, ops, batch int, res *BatchedResult) {
	vs := gen.ValueSize()
	if batch > 1 {
		if err := c.SetBuffering(true); err != nil {
			panic("bench: " + err.Error())
		}
	}
	for i := 1; i <= ops; i++ {
		kind, key := gen.Next()
		t0 := p.Now()
		if kind == workload.OpSet {
			c.Set(p, key, vs, key, 0, 0)
		} else if _, _, st := c.Get(p, key); st == protocol.StatusNotFound {
			res.Misses++
		}
		if batch > 1 && i%batch == 0 {
			c.FlushBuffers(p)
		}
		res.Lat.Add(p.Now() - t0)
	}
	if batch > 1 {
		c.FlushBuffers(p)
		c.SetBuffering(false)
	}
}

// --- the `batching` experiment: batch size sweep over every design ---

// batchSizes is the swept coalescing-window size.
var batchSizes = []int{1, 4, 16, 64}

type batchMix struct {
	name string
	read float64
}

type batchPattern struct {
	name string
	pat  workload.Pattern
}

// batchPageSize is the slab page size for the batching sweep: 128 KB pages
// make eviction granularity a few 32 KB Sets, so a 16-op window really does
// contain several evictions for the merged flush to amortize. (At the 1 MB
// memcached default an eviction happens only every ~25 Sets and a window
// rarely sees two.)
const batchPageSize = 128 << 10

// buildBatching assembles one cell's cluster with the fine-eviction slab
// geometry and preloads dataBytes of kvSize values.
func buildBatching(d cluster.Design, mem, dataBytes int64, kvSize int) (*cluster.Cluster, int) {
	cl := cluster.New(cluster.Config{
		Design:       d,
		Profile:      cluster.ClusterA(),
		Servers:      1,
		Clients:      1,
		ServerMem:    mem,
		SlabPageSize: batchPageSize,
	})
	keys := int(dataBytes / int64(kvSize))
	cl.Preload(keys, kvSize, keyOf)
	return cl, keys
}

// batchingExp sweeps batch {1,4,16,64} × {uniform, zipf} × {read-only,
// 50:50} over all six designs under the overcommitted geometry (dataset =
// 1.5x RAM, so Sets evict to SSD) and reports ops/s, p50/p99, wire sends
// (credits), and eviction flush writes.
func batchingExp(o Options) *Result {
	res := newResult("batching", "Doorbell batching: throughput, tail latency, credits, and SSD writes vs. batch size")
	mem := int64(24 << 20)
	if o.Full {
		mem = 96 << 20
	}
	_, kv, _ := o.geometry()
	dataBytes := mem * 3 / 2
	ops := o.ops(1200)
	mixes := []batchMix{{"read-only", 1.0}, {"50:50", 0.5}}
	patterns := []batchPattern{{"uniform", workload.Uniform}, {"zipf", workload.Zipf}}
	var out string
	for _, pat := range patterns {
		for _, mix := range mixes {
			tput := make([]*metrics.Series, len(batchSizes))
			ssd := make([]*metrics.Series, len(batchSizes))
			for bi, b := range batchSizes {
				tput[bi] = &metrics.Series{Name: fmt.Sprintf("b%d kop/s", b)}
				ssd[bi] = &metrics.Series{Name: fmt.Sprintf("b%d flushes", b)}
			}
			for _, d := range cluster.Designs {
				for bi, b := range batchSizes {
					cl, keys := buildBatching(d, mem, dataBytes, kv)
					gen := workload.New(workload.Config{
						Keys: keys, ValueSize: kv, ReadFraction: mix.read,
						Pattern: pat.pat, ZipfS: zipfOver, Seed: 7,
					})
					r := RunBatched(cl, gen, 0, ops, b)
					tput[bi].Append(d.String(), r.OpsPerS/1000)
					ssd[bi].Append(d.String(), float64(r.SSDWrites))
					pre := fmt.Sprintf("%s.%s.%s.b%d", d, pat.name, mix.name, b)
					res.metric(pre+".ops_s", r.OpsPerS)
					res.metric(pre+".p50_us", us(r.Lat.Quantile(0.50)))
					res.metric(pre+".p99_us", us(r.Lat.Quantile(0.99)))
					res.metric(pre+".sends", float64(r.Sends))
					res.metric(pre+".frames", float64(r.Frames))
					res.metric(pre+".ssd_writes", float64(r.SSDWrites))
				}
			}
			out += res.addTable(fmt.Sprintf("Throughput, %s / %s", pat.name, mix.name), tput...)
			if mix.read < 1 {
				out += res.addTable(fmt.Sprintf("Eviction flush writes, %s / %s", pat.name, mix.name), ssd...)
			}
		}
	}
	res.Output = out
	return res
}
