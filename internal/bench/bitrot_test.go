package bench

import "testing"

// TestBitrotExperimentShape runs the bitrot matrix and checks the claims
// its cells exist to make: the undefended baseline really serves rotted
// bytes (the threat is live, not hypothetical); every defended cell serves
// zero corrupt reads and, wherever a replica exists, loses zero acked
// writes; detection actually fires and quarantines; only the scrub cells
// drain their quarantine back to the free pool; and the whole faulted run
// replays bit-for-bit under the same seed.
func TestBitrotExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("bitrot experiment is slow")
	}
	r := bitrotExp(Options{Ops: 300})

	if v := r.Metrics["nodefense_surfaces"]; v != 1 {
		t.Error("no nodefense cell ever served a corrupt read: the injection is dead")
	}
	if v := r.Metrics["defense_holds"]; v != 1 {
		t.Error("a defended cell served a corrupt read or lost an acked write at R≥2")
	}
	if v := r.Metrics["replay_identical"]; v != 1 {
		t.Error("the same seed did not replay the faulted run identically")
	}
	if v := r.Metrics["R2.verify.detected_corrupt"]; v == 0 {
		t.Error("R2 verify cell never detected a rotted read: verification is dead")
	}
	if v := r.Metrics["R2.verify+scrub.quarantined"]; v == 0 {
		t.Error("R2 verify+scrub cell never quarantined a region")
	}
	// Only the scrub drains quarantine; verify-only must hold its regions.
	if q, rec := r.Metrics["R2.verify+scrub.quarantined"], r.Metrics["R2.verify+scrub.quarantine_reclaims"]; rec != q {
		t.Errorf("scrub cell reclaimed %v of %v quarantined regions, want all", rec, q)
	}
	if v := r.Metrics["R2.verify.quarantine_reclaims"]; v != 0 {
		t.Errorf("verify-only cell reclaimed %v regions with no scrub to drain them", v)
	}
	// R=1 honesty: rot-destroyed keys surface as misses, never as garbage.
	if v := r.Metrics["R1.verify.corrupt_reads"]; v != 0 {
		t.Errorf("R1 verify cell served %v corrupt reads", v)
	}
	if v := r.Metrics["R1.verify.misses"]; v == 0 {
		t.Error("R1 verify cell shows no misses: rot-destroyed keys went somewhere")
	}
	// The per-run stats triple (client-visible counters vs server ledgers)
	// must agree in every cell the experiment snapshots.
	for _, cell := range []string{"R1.nodefense", "R2.verify", "R2.verify+scrub", "R3.verify+scrub"} {
		if v := r.Metrics[cell+".stats_agree"]; v != 1 {
			t.Errorf("%s: Client.Stats() disagrees with the server ledgers", cell)
		}
	}
}
