package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The committed BENCH_*.json snapshots at the repo root are the perf
// trajectory other sessions diff against; a malformed or gutted snapshot
// silently breaks that. This test pins the contract: every snapshot parses
// as a non-empty []MetricRecord, each record names its experiment and
// metric, and per experiment the headline metric keys that acceptance
// checks read are present.

// snapshotExpectations maps each experiment id to metric keys its snapshot
// must carry. Keys are matched against Metric with the Design prefix
// re-attached when Records split one off.
var snapshotExpectations = map[string][]string{
	"batching":    {"H-RDMA-Def.uniform.50:50.b1.ops_s"},
	"overload":    {"H-RDMA-Def.off_p99_us", "H-RDMA-Def.on_get_p99_us"},
	"chaos":       {"H-RDMA-Def.violations"},
	"recovery":    {"H-RDMA-Def.uniform.items_recovered", "H-RDMA-Def.uniform.pages_torn"},
	"replication": {"R3.rw50.lost_acked", "R1.rw50.lost_acked", "R3.rw50.goodput_ops"},
	"bypass": {
		"bypass.rw50.zipf.fallback_pct", "bypass.read.zipf.kops",
		"speedup.read.zipf.kops",
	},
	"hotkey": {
		"fanout_speedup_r3", "fanout.R3.goodput_kops", "bypass.R3.goodput_kops",
		"chaos.violations", "fanout.R3.fanouts",
	},
	"membership": {
		"chaos.lost_acked", "chaos.moved_keys", "chaos.violations",
		"chaos.rebalances", "scale.R2.N3.kops", "scale.R2.N9.kops",
		"scale.R2.monotonic",
	},
	"grayfail": {
		"healthy.get_p99_us", "nodefense.get_p99_us",
		"brownout+pacing.get_p99_us", "brownout+pacing.violations",
		"crash.violations", "crash.failovers", "p99_bound_ok",
	},
	"bitrot": {
		"R1.nodefense.corrupt_reads", "R2.verify+scrub.corrupt_reads",
		"R2.verify+scrub.lost_acked", "R2.verify+scrub.quarantined",
		"R2.verify+scrub.quarantine_reclaims", "nodefense_surfaces",
		"defense_holds", "replay_identical",
	},
}

func TestCommittedSnapshotsParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed BENCH_*.json snapshots")
	}
	for _, path := range paths {
		base := filepath.Base(path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var recs []MetricRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			t.Errorf("%s: not a MetricRecord array: %v", base, err)
			continue
		}
		if len(recs) == 0 {
			t.Errorf("%s: empty snapshot", base)
			continue
		}
		// Collect this file's experiments and fully-qualified metric keys.
		exps := map[string]bool{}
		keys := map[string]bool{}
		for i, r := range recs {
			if r.Experiment == "" || r.Metric == "" {
				t.Errorf("%s[%d]: record missing experiment or metric: %+v", base, i, r)
				continue
			}
			exps[r.Experiment] = true
			full := r.Metric
			if r.Design != "" {
				full = r.Design + "." + r.Metric
			}
			keys[r.Experiment+"/"+full] = true
		}
		// Expectations apply only to experiments this snapshot holds.
		for exp, want := range snapshotExpectations {
			if !exps[exp] {
				continue
			}
			for _, k := range want {
				if !keys[exp+"/"+k] {
					t.Errorf("%s: experiment %s missing expected metric %q", base, exp, k)
				}
			}
		}
	}
}
