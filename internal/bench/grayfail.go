package bench

import (
	"errors"
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/fault"
	"hybridkv/internal/history"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

// The gray-failure experiment: one limping server out of five at R=2. The
// node does not crash — its SSD service times are multiplied and floored,
// its storage workers stall on every dequeue, and its links pay a
// size-proportional degradation — so error-count breakers see nothing
// while every request routed through it eats the slow path. Cells layer
// the defenses: no defense, latency-aware brown-out routing
// (core.HealthConfig), brown-out plus background-traffic pacing
// (replication.PacerConfig), and a crash cell where the browned node also
// cold-dies mid-run to prove deprioritization never masks a real failure
// from the breaker/failover path. Throughout, CAS-chain writers run under
// the history invariant checker and an open-loop driver measures
// admitted-GET latency; the headline claim is that with defenses up the
// measured p99 stays within 3x the all-healthy baseline while violations
// and lost acked writes stay zero.

const (
	grayServers  = 5
	graySlowID   = 1 // the limping server
	grayReplicas = 2

	grayKeys      = 256
	grayValueSize = 4 * 1024

	// Client guard: chaos-grade budgets, plus a hedge so the adaptive
	// threshold (hedgeAfter) is exercised once health tracking is live.
	grayDeadline       = 40 * sim.Millisecond
	grayAttemptTimeout = 8 * sim.Millisecond
	grayMaxAttempts    = 6
	grayBackoff        = 100 * sim.Microsecond
	grayMaxBackoff     = 2 * sim.Millisecond
	grayHedge          = 2 * sim.Millisecond

	grayWriters       = 2
	grayKeysPerWriter = 4
	grayThink         = 80 * sim.Microsecond

	// Open-loop GET arrivals: steady, no bursts — the tail under test is
	// the slow node's, not the admission layer's.
	grayGetGap = 30 * sim.Microsecond

	// Worker pool per server: deep enough that a healthy coordinator's
	// GETs do not queue behind chain writes blocked on the slow replica's
	// ack — that head-of-line coupling is real but is the deployment's
	// sizing problem; the routing defense under test cannot reorder a
	// correctness-mandated forward.
	grayWorkers = 6

	// Fail-slow magnitudes on the limping node. Each alone is survivable;
	// together a request through the node costs ~10x a healthy one —
	// classic gray failure, far below any timeout.
	graySSDMult  = 8.0
	graySSDFloor = 400 * sim.Microsecond
	grayStall    = 250 * sim.Microsecond
	grayNetFloor = 30 * sim.Microsecond
	grayNetPerKB = 3 * sim.Microsecond

	// Schedule, relative to measurement start (after preload): fail-slow
	// onset, the start of the measured-GET window (the gap is detector
	// warmup — MinSamples must accumulate before brown-out can trip), the
	// crash instant for the crash cell, the first foreground write burst
	// (after the GET window so the pacer contrast does not pollute the
	// measured tail), and the run bound.
	graySlowOnset   = 2 * sim.Millisecond
	grayMeasureFrom = 8 * sim.Millisecond
	grayCrashAt     = 12 * sim.Millisecond
	grayBurstAt     = 22 * sim.Millisecond
	grayLimit       = 200 * sim.Millisecond

	// Foreground write bursts: enough in-flight bytes to cross the
	// OverloadConfig buffer watermark on several coordinators, so armed
	// anti-entropy scrub rounds observe foregroundBusy and — with the
	// pacer on — defer instead of competing.
	grayBursts     = 3
	grayBurstOps   = 64
	grayBurstValue = 8 * 1024
	grayBurstGap   = 2 * sim.Millisecond
)

// grayCell is one experiment cell: which faults are injected and which
// defenses are armed.
type grayCell struct {
	name   string
	slow   bool // inject the fail-slow schedule on server graySlowID
	health bool // latency-aware health scoring + brown-out routing
	pacing bool // token-bucket pacer on scrub/migration pulls
	crash  bool // cold-kill the slow node mid-run (failover proof)
}

// grayReport is one cell's outcome.
type grayReport struct {
	GetLat               *metrics.Hist // admitted GETs issued in the measured window
	GetsOK, GetsFailed   int64
	Violations           []history.Violation
	AckedWrites          int
	Stats                core.ClientStats
	PacerDeferrals       int64
	NetSlowed, DevSlowed int64 // injection ground truth: faults actually fired
	WorkerStalls         int64
}

// runGrayfail runs one cell: a 5-server R=2 NonB-b cluster, CAS-chain
// writers under the history checker, and an open-loop admitted-GET driver.
func runGrayfail(rounds, gets int, seed int64, cell grayCell) *grayReport {
	ccfg := core.Config{
		Breaker: core.BreakerConfig{Threshold: 8, Cooldown: 500 * sim.Microsecond},
	}
	if cell.health {
		// Faster detection than the defaults so smoke-scale runs trip the
		// brown-out inside the warmup window; ProbeEvery is raised so the
		// probe trickle stays under the measured window's p99 mass.
		ccfg.Health = core.HealthConfig{Enabled: true, Window: 32, MinSamples: 8, ProbeEvery: 64}
	}
	cfg := cluster.Config{
		Design:            cluster.HRDMAOptNonBB,
		Profile:           cluster.ClusterA(),
		Servers:           grayServers,
		Clients:           1,
		ReplicationFactor: grayReplicas,
		ServerMem:         4 << 20, // dataset fits: the tail under test is the slow node's, not eviction's
		StorageWorkers:    grayWorkers,
		BufferBytes:       overBufferBytes,
		Overload: server.OverloadConfig{
			Enabled:        true,
			QueueHigh:      overQueueHigh,
			RetryAfterUnit: 10 * sim.Microsecond,
		},
		Client: ccfg,
	}
	if cell.pacing {
		cfg.Pacer = replication.PacerConfig{Enabled: true}
	}
	cl := cluster.New(cfg)
	cl.Preload(grayKeys, grayValueSize, keyOf)
	start := cl.Env.Now()

	var inj *fault.Injector
	if cell.slow {
		from, to := start+graySlowOnset, start+grayLimit
		cl.Devices[graySlowID].AddSlow(from, to, graySSDMult, graySSDFloor)
		cl.Servers[graySlowID].AddWorkerStall(from, to, grayStall)
		inj = fault.New(fault.Config{Seed: seed})
		inj.AddSlow(fmt.Sprintf("server%d", graySlowID), from, to, grayNetFloor, grayNetPerKB)
		cl.Fabric.SetFaults(inj)
	}

	log := &history.Log{Replicated: true}
	rp := core.RetryPolicy{
		MaxAttempts:    grayMaxAttempts,
		AttemptTimeout: grayAttemptTimeout,
		Backoff:        grayBackoff,
		MaxBackoff:     grayMaxBackoff,
		Jitter:         -1, // deterministic backoff
		Seed:           seed,
		Failover:       true,
	}
	guardGet := []core.IssueOption{core.WithDeadline(grayDeadline), core.WithRetry(rp)}
	// NonB-b: BufferAck marks the writes the acked-write-lost invariant holds.
	guardSet := append(append([]core.IssueOption{}, guardGet...), core.WithBufferAck())
	c := cl.Clients[0]

	// Writers: per-key CAS chains, exactly the chaos soak's evidence
	// discipline (one Read + one Write entry per round, Acked per the
	// buffer guarantee).
	expected := 0
	for w := 0; w < grayWriters; w++ {
		w := w
		expected += rounds * 2
		cl.Env.Spawn(fmt.Sprintf("gray-writer%d", w), func(p *sim.Proc) {
			next := make([]uint64, grayKeysPerWriter)
			for r := 0; r < rounds; r++ {
				ki := r % grayKeysPerWriter
				key := fmt.Sprintf("gray:w%d:k%d", w, ki)

				t0 := p.Now()
				rreq, err := c.Issue(p, core.Op{Code: protocol.OpGet, Key: key}, guardGet...)
				if err != nil {
					panic("bench: grayfail read issue failed: " + err.Error())
				}
				c.Wait(p, rreq)
				rerr := rreq.Err()
				hit := rerr == nil
				var seq uint64
				if hit {
					seq, _ = rreq.Value.(uint64)
				}
				log.Record(history.Entry{
					Worker: w, Kind: history.Read, Key: key, Seq: seq,
					Hit: hit, OK: hit || errors.Is(rerr, core.ErrNotFound),
					IssuedAt: t0, CompletedAt: p.Now(),
				})

				next[ki]++
				seqW := next[ki]
				op := core.Op{Code: protocol.OpAdd, Key: key, ValueSize: grayValueSize, Value: seqW}
				if hit {
					op = core.Op{Code: protocol.OpCAS, Key: key, ValueSize: grayValueSize, Value: seqW, CAS: rreq.CAS}
				}
				t1 := p.Now()
				wreq, err := c.Issue(p, op, guardSet...)
				if err != nil {
					panic("bench: grayfail write issue failed: " + err.Error())
				}
				c.Wait(p, wreq)
				werr := wreq.Err()
				acked := wreq.Acked() &&
					(werr == nil || errors.Is(werr, core.ErrDeadlineExceeded))
				log.Record(history.Entry{
					Worker: w, Kind: history.Write, Key: key, Seq: seqW,
					OK: werr == nil, Acked: acked,
					IssuedAt: t1, CompletedAt: p.Now(),
				})
				p.Sleep(grayThink)
			}
		})
	}

	// Open-loop GET driver: each arrival is an independent guarded request
	// in its own process. Only GETs issued after grayMeasureFrom count —
	// the warmup gap is the detector's sample budget, identical across
	// cells so the comparison stays fair.
	rep := &grayReport{GetLat: metrics.NewHist()}
	getOpts := []core.IssueOption{
		core.WithDeadline(grayDeadline), core.WithRetry(rp), core.WithHedge(grayHedge),
	}
	cl.Env.Spawn("gray-gets", func(p *sim.Proc) {
		for i := 0; i < gets; i++ {
			key := keyOf(i % grayKeys)
			t0 := p.Now()
			cl.Env.Spawn(fmt.Sprintf("gray-get%d", i), func(gp *sim.Proc) {
				req, err := c.Issue(gp, core.Op{Code: protocol.OpGet, Key: key}, getOpts...)
				if err != nil {
					panic("bench: grayfail get issue failed: " + err.Error())
				}
				c.Wait(gp, req)
				if t0 < start+grayMeasureFrom {
					return
				}
				if req.Err() == nil {
					rep.GetLat.Add(gp.Now() - t0)
					rep.GetsOK++
				} else {
					rep.GetsFailed++
				}
			})
			p.Sleep(grayGetGap)
		}
	})

	// Foreground bursts: open-loop scratch SETs that spike buffer
	// occupancy past the watermark while the writers keep scrubs armed.
	// Failures are the point of the pressure; nothing here is logged.
	cl.Env.Spawn("gray-burst", func(p *sim.Proc) {
		p.Sleep(grayBurstAt)
		for b := 0; b < grayBursts; b++ {
			var win []*core.Req
			for i := 0; i < grayBurstOps; i++ {
				key := fmt.Sprintf("burst:%03d", b*grayBurstOps+i)
				req, err := c.Issue(p, core.Op{
					Code: protocol.OpSet, Key: key,
					ValueSize: grayBurstValue, Value: key,
				}, core.WithDeadline(4*sim.Millisecond))
				if err != nil {
					panic("bench: grayfail burst issue failed: " + err.Error())
				}
				win = append(win, req)
			}
			c.WaitAll(p, win)
			p.Sleep(grayBurstGap)
		}
	})

	// Crash cell: the browned node cold-dies mid-measurement. Brown-out
	// must not mask it — the breaker trips, GETs fail over, and recovery
	// rejoins the node (still limping) behind the usual crash excuse.
	if cell.crash {
		cl.Env.Spawn("gray-crash", func(p *sim.Proc) {
			srv := cl.Servers[graySlowID]
			p.Sleep(grayCrashAt)
			from := p.Now()
			srv.Kill(false)
			// Dead long enough that writes chained through the node (and
			// probe GETs) run into their attempt timeouts and must fail
			// over — the proof brown-out did not mask the crash.
			p.Sleep(3 * sim.Millisecond)
			srv.RestartCold()
			for srv.Recovering() {
				p.Sleep(100 * sim.Microsecond)
			}
			log.CrashWindow(from, p.Now())
		})
	}

	cl.Env.RunUntil(start + grayLimit)
	log.Expected = expected

	rep.Violations = log.Check()
	for _, e := range log.Entries {
		if e.Kind == history.Write && e.Acked {
			rep.AckedWrites++
		}
	}
	rep.Stats = c.Stats()
	rep.PacerDeferrals = cl.ReplicationCounters().Get(string(metrics.CPacerDeferrals))
	if inj != nil {
		rep.NetSlowed = inj.Slowed
	}
	rep.DevSlowed = cl.Devices[graySlowID].SlowedIOs
	rep.WorkerStalls = cl.Servers[graySlowID].Stalled
	return rep
}

// grayfailExp is the registry entry. The headline metrics: with brown-out
// routing and pacing up, admitted-GET p99 stays within 3x the all-healthy
// baseline (p99_bound_ok), violations stay zero in every cell, and the
// crash cell still fails over (failovers > 0) despite the node being
// browned when it died.
func grayfailExp(o Options) *Result {
	res := newResult("grayfail", "Gray failure: fail-slow node, brown-out routing, background pacing")
	ops := o.ops(300)
	gets := ops * 2
	// Writers must still be running when the crash cell kills the slow
	// node (grayCrashAt) — rounds are sized so the CAS chains span the
	// whole measured window, not just its head.
	rounds := ops / 3
	if rounds < 16 {
		rounds = 16
	}

	cells := []grayCell{
		{name: "healthy"},
		{name: "nodefense", slow: true},
		{name: "brownout", slow: true, health: true},
		{name: "brownout+pacing", slow: true, health: true, pacing: true},
		{name: "crash", slow: true, health: true, pacing: true, crash: true},
	}

	p99s := &metrics.Series{Name: "get p99 µs"}
	p50s := &metrics.Series{Name: "get p50 µs"}
	viol := &metrics.Series{Name: "violations"}
	brown := &metrics.Series{Name: "brownouts"}
	slowR := &metrics.Series{Name: "slow-routed"}
	pacer := &metrics.Series{Name: "pacer-defer"}

	byName := map[string]float64{}
	detail := ""
	for _, cell := range cells {
		rep := runGrayfail(rounds, gets, 42, cell)
		p99 := us(rep.GetLat.Quantile(0.99))
		byName[cell.name] = p99

		p99s.Append(cell.name, p99)
		p50s.Append(cell.name, us(rep.GetLat.Quantile(0.5)))
		viol.Append(cell.name, float64(len(rep.Violations)))
		brown.Append(cell.name, float64(rep.Stats.BrownoutsEntered))
		slowR.Append(cell.name, float64(rep.Stats.SlowRoutedGets))
		pacer.Append(cell.name, float64(rep.PacerDeferrals))

		res.metric(cell.name+".get_p99_us", p99)
		res.metric(cell.name+".get_p50_us", us(rep.GetLat.Quantile(0.5)))
		res.metric(cell.name+".gets_measured", float64(rep.GetsOK))
		res.metric(cell.name+".gets_failed", float64(rep.GetsFailed))
		res.metric(cell.name+".violations", float64(len(rep.Violations)))
		res.metric(cell.name+".acked_writes", float64(rep.AckedWrites))
		res.metric(cell.name+".brownouts_entered", float64(rep.Stats.BrownoutsEntered))
		res.metric(cell.name+".brownouts_exited", float64(rep.Stats.BrownoutsExited))
		res.metric(cell.name+".slow_routed_gets", float64(rep.Stats.SlowRoutedGets))
		res.metric(cell.name+".health_samples", float64(rep.Stats.HealthSamples))
		res.metric(cell.name+".hedges", float64(rep.Stats.Hedges))
		res.metric(cell.name+".failovers", float64(rep.Stats.Failovers))
		res.metric(cell.name+".breaker_open", float64(rep.Stats.BreakerOpen))
		res.metric(cell.name+".pacer_deferrals", float64(rep.PacerDeferrals))
		res.metric(cell.name+".net_slowed", float64(rep.NetSlowed))
		res.metric(cell.name+".dev_slowed_ios", float64(rep.DevSlowed))
		res.metric(cell.name+".worker_stalls", float64(rep.WorkerStalls))

		for _, v := range rep.Violations {
			detail += fmt.Sprintf("VIOLATION %s: %s\n", cell.name, v)
		}
	}

	// Headline ratios against the all-healthy baseline.
	if h := byName["healthy"]; h > 0 {
		res.metric("nodefense_over_healthy", byName["nodefense"]/h)
		res.metric("defended_over_healthy", byName["brownout+pacing"]/h)
		bound := 0.0
		if byName["brownout+pacing"] <= 3*h {
			bound = 1
		}
		res.metric("p99_bound_ok", bound)
	}

	res.Output = res.addTable(res.Title, p99s, p50s, viol, brown, slowR, pacer) +
		detail + res.renderMetrics()
	return res
}
