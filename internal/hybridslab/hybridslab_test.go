package hybridslab

import (
	"fmt"
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// newManager builds a manager with memLimit RAM and an optional SSD.
func newManager(env *sim.Env, memLimit int64, policy IOPolicy, ssd bool, prof blockdev.Profile) *Manager {
	cfg := Config{
		Slab:   slab.Config{MemLimit: memLimit},
		Policy: policy,
	}
	var file *pagecache.File
	if ssd {
		dev := blockdev.New(env, prof, 8<<30)
		cache := pagecache.New(env, dev, pagecache.DefaultParams())
		file = cache.OpenFile(0, 4<<30)
	}
	return New(env, cfg, file)
}

func item(i, size int) *Item {
	return &Item{Key: fmt.Sprintf("key-%06d", i), Value: i, ValueSize: size}
}

func TestStoreAndLoadRAM(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 16<<20, PolicyDirect, false, blockdev.SATA())
	it := item(1, 32*1024)
	var got any
	env.Spawn("op", func(p *sim.Proc) {
		if err := m.Store(p, it); err != nil {
			t.Errorf("store: %v", err)
		}
		got, _ = m.Load(p, it)
	})
	env.Run()
	if got != 1 {
		t.Errorf("loaded %v, want 1", got)
	}
	if it.OnSSD() {
		t.Errorf("item on SSD with plenty of RAM")
	}
	if m.RAMItems() != 1 {
		t.Errorf("RAMItems=%d", m.RAMItems())
	}
}

func TestOversizeItemRejected(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 16<<20, PolicyDirect, false, blockdev.SATA())
	var err error
	env.Spawn("op", func(p *sim.Proc) {
		err = m.Store(p, item(1, 2<<20))
	})
	env.Run()
	if err != ErrTooLarge {
		t.Errorf("err=%v, want ErrTooLarge", err)
	}
}

func TestRAMOnlyEvictionDropsLRU(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, false, blockdev.SATA())
	const n = 300 // 300 × 32KB ≈ 9.4 MB in 4 MB of RAM
	items := make([]*Item, n)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			if err := m.Store(p, items[i]); err != nil {
				t.Errorf("store %d: %v", i, err)
			}
		}
	})
	env.Run()
	if m.DropEvictions == 0 {
		t.Fatalf("no drop evictions with 2.3x overcommit")
	}
	if !items[0].Dropped() {
		t.Errorf("oldest item survived LRU drop")
	}
	if items[n-1].Dropped() {
		t.Errorf("newest item dropped")
	}
	var err error
	env.Spawn("get", func(p *sim.Proc) { _, err = m.Load(p, items[0]) })
	env.Run()
	if err != ErrDropped {
		t.Errorf("Load of dropped item err=%v, want ErrDropped", err)
	}
}

func TestHybridEvictionFlushesToSSD(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	if m.FlushPages == 0 {
		t.Fatalf("no slab flushes despite overcommit")
	}
	if m.DropEvictions != 0 {
		t.Errorf("%d drops with a large SSD", m.DropEvictions)
	}
	if !items[0].OnSSD() {
		t.Errorf("oldest item not on SSD")
	}
	if m.RAMItems()+m.SSDItems() != n {
		t.Errorf("RAM %d + SSD %d != %d", m.RAMItems(), m.SSDItems(), n)
	}
	// High data retention: everything still loadable.
	var miss int
	env.Spawn("get", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			v, err := m.Load(p, items[i])
			if err != nil || v != i {
				miss++
			}
		}
	})
	env.Run()
	if miss != 0 {
		t.Errorf("%d of %d items unreadable from hybrid memory", miss, n)
	}
}

func TestSSDLoadSlowerThanRAMLoad(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	var ramT, ssdT sim.Time
	var wasOnSSD bool
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
		// items[n-1] is in RAM; items[0] is on SSD.
		wasOnSSD = items[0].OnSSD()
		t0 := p.Now()
		m.Load(p, items[n-1])
		ramT = p.Now() - t0
		t0 = p.Now()
		m.Load(p, items[0])
		ssdT = p.Now() - t0
	})
	env.Run()
	if !wasOnSSD || items[n-1].OnSSD() {
		t.Fatalf("placement unexpected: old wasOnSSD=%v new onSSD=%v", wasOnSSD, items[n-1].OnSSD())
	}
	if float64(ssdT)/float64(ramT) < 10 {
		t.Errorf("SSD load %v vs RAM load %v: want ≥10x gap", ssdT, ramT)
	}
	// Fatcache semantics: the item stays on the SSD after the load (no
	// write-amplifying promotion churn).
	if !items[0].OnSSD() {
		t.Errorf("loaded item left the SSD")
	}
	if m.SSDLoads == 0 {
		t.Errorf("SSD load counter not incremented")
	}
}

func TestAdaptiveFlushFasterThanDirect(t *testing.T) {
	// The headline server-side claim: adaptive I/O cuts eviction cost.
	run := func(policy IOPolicy) sim.Time {
		env := sim.NewEnv()
		m := newManager(env, 4<<20, policy, true, blockdev.SATA())
		env.Spawn("op", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				m.Store(p, item(i, 32*1024))
			}
		})
		end := env.Run()
		if m.FlushPages == 0 {
			t.Fatalf("policy %v: no flushes", policy)
		}
		return end
	}
	direct, adaptive := run(PolicyDirect), run(PolicyAdaptive)
	if float64(direct)/float64(adaptive) < 2 {
		t.Errorf("direct %v vs adaptive %v: want ≥2x improvement", direct, adaptive)
	}
}

func TestAdaptiveSchemeSelection(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 64<<20, PolicyAdaptive, true, blockdev.SATA())
	smallClass, _ := m.alloc.ClassFor(2048)
	largeClass, _ := m.alloc.ClassFor(256 * 1024)
	if s := m.flushScheme(smallClass); s != pagecache.Mmap {
		t.Errorf("small class flush scheme %v, want mmap", s)
	}
	if s := m.flushScheme(largeClass); s != pagecache.Cached {
		t.Errorf("large class flush scheme %v, want cached", s)
	}
	// Direct policy always direct.
	m2 := newManager(env, 64<<20, PolicyDirect, true, blockdev.SATA())
	if s := m2.flushScheme(smallClass); s != pagecache.Direct {
		t.Errorf("direct policy scheme %v", s)
	}
}

func TestTouchProtectsFromEviction(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	items := make([]*Item, 130)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 80; i++ { // ≈2.6 MB: fits in 4 MB, no eviction yet
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
		m.Touch(items[0])           // promote the oldest
		for i := 80; i < 130; i++ { // small overflow: ~2 pages evicted
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	if items[0].OnSSD() {
		t.Errorf("touched item was evicted while colder items remained")
	}
	if !items[1].OnSSD() {
		t.Errorf("untouched cold item not evicted")
	}
}

func TestReleaseFreesRAMChunk(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 16<<20, PolicyDirect, false, blockdev.SATA())
	it := item(1, 32*1024)
	env.Spawn("op", func(p *sim.Proc) {
		m.Store(p, it)
		cls := it.Class()
		used := m.Allocator().Class(cls).UsedChunks
		m.Release(it)
		if got := m.Allocator().Class(cls).UsedChunks; got != used-1 {
			t.Errorf("used chunks %d after release, want %d", got, used-1)
		}
	})
	env.Run()
	if m.RAMItems() != 0 {
		t.Errorf("RAMItems=%d after release", m.RAMItems())
	}
}

func TestReleaseSSDItemReclaimsPages(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	before := m.SSDUsed()
	if before == 0 {
		t.Fatalf("nothing on SSD")
	}
	for _, it := range items {
		if it.OnSSD() {
			m.Release(it)
		}
	}
	if m.SSDUsed() != 0 {
		t.Errorf("SSDUsed=%d after releasing every SSD item, want 0", m.SSDUsed())
	}
	if m.SSDItems() != 0 {
		t.Errorf("SSDItems=%d after release", m.SSDItems())
	}
}

func TestSSDCapacityOverflowDrops(t *testing.T) {
	env := sim.NewEnv()
	cfg := Config{
		Slab:        slab.Config{MemLimit: 2 << 20},
		Policy:      PolicyDirect,
		SSDCapacity: 4 << 20,
	}
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, cfg, cache.OpenFile(0, 8<<30))
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 600; i++ { // ~19 MB into 2 MB RAM + 4 MB SSD
			m.Store(p, item(i, 32*1024))
		}
	})
	env.Run()
	if m.DropEvictions == 0 {
		t.Errorf("no drops despite SSD capacity overflow")
	}
	if m.SSDUsed() > 4<<20 {
		t.Errorf("SSDUsed %d exceeds capacity", m.SSDUsed())
	}
}

func TestNVMeFlushFasterThanSATA(t *testing.T) {
	run := func(prof blockdev.Profile) sim.Time {
		env := sim.NewEnv()
		m := newManager(env, 4<<20, PolicyDirect, true, prof)
		env.Spawn("op", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				m.Store(p, item(i, 32*1024))
			}
		})
		return env.Run()
	}
	if sata, nvme := run(blockdev.SATA()), run(blockdev.NVMe()); nvme >= sata {
		t.Errorf("NVMe run %v not faster than SATA %v", nvme, sata)
	}
}

// Property-style consistency check after a mixed workload.
func TestAccountingConsistencyAfterChurn(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyAdaptive, true, blockdev.SATA())
	live := make(map[int]*Item)
	env.Spawn("op", func(p *sim.Proc) {
		seq := 0
		for round := 0; round < 6; round++ {
			for i := 0; i < 60; i++ {
				it := item(seq, 8*1024+(seq%5)*7000)
				m.Store(p, it)
				live[seq] = it
				seq++
			}
			// Delete every 3rd item of the previous round.
			for k, it := range live {
				if k%3 == 0 && !it.Dropped() {
					m.Release(it)
					delete(live, k)
				}
			}
		}
	})
	env.Run()
	ram, ssd, dropped := 0, 0, 0
	for _, it := range live {
		switch {
		case it.Dropped():
			dropped++
		case it.OnSSD():
			ssd++
		default:
			ram++
		}
	}
	if ram != m.RAMItems() {
		t.Errorf("live RAM items %d, manager says %d", ram, m.RAMItems())
	}
	if ssd != m.SSDItems() {
		t.Errorf("live SSD items %d, manager says %d", ssd, m.SSDItems())
	}
	if int64(dropped) != m.DropEvictions {
		t.Errorf("dropped %d, manager says %d", dropped, m.DropEvictions)
	}
}

func TestAsyncFlushOffloadsEviction(t *testing.T) {
	// Write-behind eviction: the allocating request should not pay the
	// SSD write; the background flusher does, and all items stay live.
	mk := func(async bool) (*Manager, *sim.Env) {
		env := sim.NewEnv()
		dev := blockdev.New(env, blockdev.SATA(), 8<<30)
		cache := pagecache.New(env, dev, pagecache.DefaultParams())
		m := New(env, Config{
			Slab:       slab.Config{MemLimit: 4 << 20},
			Policy:     PolicyDirect, // sync flushes pay the direct-I/O barrier
			AsyncFlush: async,
		}, cache.OpenFile(0, 4<<30))
		return m, env
	}
	run := func(async bool) (sim.Time, *Manager) {
		m, env := mk(async)
		var elapsed sim.Time
		env.Spawn("op", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < 300; i++ {
				m.Store(p, item(i, 32*1024))
			}
			elapsed = p.Now() - t0
		})
		env.Run()
		return elapsed, m
	}
	syncT, _ := run(false)
	asyncT, m := run(true)
	if float64(syncT)/float64(asyncT) < 3 {
		t.Errorf("write-behind stores %v not ≥3x faster than sync-flush %v", asyncT, syncT)
	}
	if m.FlushPages == 0 {
		t.Errorf("background flusher never ran")
	}
	if m.RAMItems()+m.SSDItems() != 300 {
		t.Errorf("items lost in write-behind: ram=%d ssd=%d", m.RAMItems(), m.SSDItems())
	}
}

func TestAsyncFlushItemsReadableDuringTransit(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:       slab.Config{MemLimit: 4 << 20},
		Policy:     PolicyAdaptive,
		AsyncFlush: true,
	}, cache.OpenFile(0, 4<<30))
	items := make([]*Item, 300)
	bad := 0
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
			// Immediately read an older key that may be staged or placed.
			if i > 50 {
				v, err := m.Load(p, items[i-50])
				if err != nil || v != i-50 {
					bad++
				}
			}
		}
	})
	env.Run()
	if bad != 0 {
		t.Errorf("%d reads of staged/placed items returned wrong data", bad)
	}
}

func TestAsyncFlushBoundedStaging(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:            slab.Config{MemLimit: 4 << 20},
		Policy:          PolicyDirect,
		AsyncFlush:      true,
		AsyncFlushDepth: 1, // single staging slot: producers must stall
	}, cache.OpenFile(0, 4<<30))
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			m.Store(p, item(i, 32*1024))
		}
	})
	end := env.Run()
	// With one slot and direct-I/O flushes (~5.5ms each), sustained
	// overcommit must have stalled on the staging bound: the run cannot
	// be faster than (flushes-1) sequential device writes.
	minTime := sim.Time(m.FlushPages-1) * blockdev.SATA().WriteTime(1<<20)
	if end < minTime {
		t.Errorf("run finished in %v, below the bounded-staging floor %v", end, minTime)
	}
}

func TestCorruptSSDExtentReadsAsMiss(t *testing.T) {
	// Failure injection: dropping an SSD extent under a live item models an
	// uncorrectable read; the Load must retire the item, not panic, and
	// the arena slot must be reclaimable.
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	victim := items[0]
	if !victim.OnSSD() {
		t.Fatalf("victim not on SSD")
	}
	m.file.Discard(victim.ssdOff) // inject corruption
	var err error
	env.Spawn("get", func(p *sim.Proc) { _, err = m.Load(p, victim) })
	env.Run()
	if err != ErrDropped {
		t.Fatalf("corrupt load err=%v, want ErrDropped", err)
	}
	if !victim.Dropped() || m.CorruptLoads != 1 {
		t.Errorf("dropped=%v corruptLoads=%d", victim.Dropped(), m.CorruptLoads)
	}
	// Other SSD items are unaffected.
	var v any
	env.Spawn("get2", func(p *sim.Proc) { v, err = m.Load(p, items[1]) })
	env.Run()
	if err != nil || v != 1 {
		t.Errorf("healthy item load (%v,%v)", v, err)
	}
}

func TestFragStats(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyDirect, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	fresh := m.FragStats()
	if fresh.ArenaBytes == 0 || fresh.LiveBytes == 0 {
		t.Fatalf("empty frag report after flushes: %+v", fresh)
	}
	if fresh.Fragmentation() > 0.05 {
		t.Errorf("fresh arena already fragmented: %+v", fresh)
	}
	// Delete every other SSD item: holes form inside live pages.
	deleted := 0
	for _, it := range items {
		if it.OnSSD() && deleted%2 == 0 {
			m.Release(it)
		}
		if it.OnSSD() || it.Dropped() {
			deleted++
		}
	}
	holey := m.FragStats()
	if holey.DeadBytes == 0 {
		t.Errorf("no dead space after deleting alternate items: %+v", holey)
	}
	if holey.Fragmentation() <= fresh.Fragmentation() {
		t.Errorf("fragmentation did not grow: %.3f -> %.3f",
			fresh.Fragmentation(), holey.Fragmentation())
	}
	if holey.LiveBytes >= fresh.LiveBytes {
		t.Errorf("live bytes did not shrink")
	}
}

func TestCompactReclaimsDeadSpace(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyAdaptive, true, blockdev.SATA())
	const n = 300
	items := make([]*Item, n)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	// Kill two thirds of each flushed region.
	killed := 0
	for i, it := range items {
		if it.OnSSD() && i%3 != 0 {
			m.Release(it)
			killed++
		}
	}
	before := m.FragStats()
	if before.DeadBytes == 0 {
		t.Fatalf("no fragmentation to compact (killed=%d)", killed)
	}
	var reclaimed int64
	env.Spawn("compact", func(p *sim.Proc) { reclaimed = m.Compact(p, 0.5) })
	env.Run()
	if reclaimed == 0 || m.Compactions == 0 {
		t.Fatalf("compaction reclaimed nothing (dead was %d)", before.DeadBytes)
	}
	after := m.FragStats()
	if after.DeadBytes >= before.DeadBytes {
		t.Errorf("dead bytes %d -> %d, want a reduction", before.DeadBytes, after.DeadBytes)
	}
	// Every surviving item is still readable with its original value.
	bad := 0
	env.Spawn("verify", func(p *sim.Proc) {
		for i, it := range items {
			if it.Dropped() {
				continue
			}
			v, err := m.Load(p, it)
			if err != nil || v != i {
				bad++
			}
		}
	})
	env.Run()
	if bad != 0 {
		t.Errorf("%d items unreadable after compaction", bad)
	}
}

func TestCompactorLifecycle(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyAdaptive, true, blockdev.SATA())
	items := make([]*Item, 300)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	for i, it := range items {
		if it.OnSSD() && i%2 == 0 {
			m.Release(it)
		}
	}
	m.StartCompactor(10*sim.Millisecond, 0.6)
	env.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(100 * sim.Millisecond)
		m.StopCompactor()
	})
	env.Run()
	if m.Compactions == 0 {
		t.Errorf("background compactor never compacted")
	}
	// Restart allowed after stop.
	m.StartCompactor(sim.Second, 0.5)
	m.StopCompactor()
	env.Run()
}

func TestCompactSkipsDenseRegions(t *testing.T) {
	env := sim.NewEnv()
	m := newManager(env, 4<<20, PolicyAdaptive, true, blockdev.SATA())
	items := make([]*Item, 300)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	var reclaimed int64
	env.Spawn("compact", func(p *sim.Proc) { reclaimed = m.Compact(p, 0.5) })
	env.Run()
	if reclaimed != 0 || m.Compactions != 0 {
		t.Errorf("compaction touched dense regions: reclaimed=%d n=%d", reclaimed, m.Compactions)
	}
}
