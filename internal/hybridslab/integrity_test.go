package hybridslab

import (
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// rotFixture builds a hybrid manager over an exposed device and overcommits
// it so a prefix of the items live on the SSD.
func rotFixture(t *testing.T, noVerify bool) (*sim.Env, *Manager, *blockdev.Device, []*Item) {
	t.Helper()
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:     slab.Config{MemLimit: 4 << 20},
		Policy:   PolicyDirect,
		NoVerify: noVerify,
	}, cache.OpenFile(0, 4<<30))
	const n = 300
	items := make([]*Item, n)
	env.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			items[i] = item(i, 32*1024)
			m.Store(p, items[i])
		}
	})
	env.Run()
	if !items[0].OnSSD() {
		t.Fatal("fixture: oldest item not on SSD")
	}
	return env, m, dev, items
}

// A rotted SSD read with verification on returns typed ErrCorrupt, retires
// the item, and quarantines the region; the quarantined region never
// returns to the free pool until ReclaimQuarantined — and that only
// releases it once its last live slot is freed.
func TestRottedLoadQuarantinesRegion(t *testing.T) {
	env, m, dev, items := rotFixture(t, false)
	// Rot everything durable from now on; reads 2ms later all bite.
	dev.AddBitRot(17, env.Now(), env.Now()+sim.Millisecond, 1.0)
	victim := items[0]
	var err error
	env.Spawn("get", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		_, err = m.Load(p, victim)
	})
	env.Run()
	if err != ErrCorrupt {
		t.Fatalf("rotted load err = %v, want ErrCorrupt", err)
	}
	if !victim.Dropped() {
		t.Error("corrupt item not retired")
	}
	if m.QuarantinedPages != 1 || m.QuarantineHeld() != 1 {
		t.Fatalf("QuarantinedPages=%d held=%d, want 1/1", m.QuarantinedPages, m.QuarantineHeld())
	}
	if m.CorruptLoads != 1 {
		t.Errorf("CorruptLoads = %d, want 1", m.CorruptLoads)
	}
	// The region still holds live slots: reclaim must keep it out of the
	// pool (fresh data must never land on unscrubbed suspect media).
	if n := m.ReclaimQuarantined(); n != 0 {
		t.Fatalf("ReclaimQuarantined released %d regions while slots were live", n)
	}
	if m.QuarantineHeld() != 1 {
		t.Error("live-slot region left quarantine early")
	}
	// Free every remaining SSD slot, then reclaim: the region returns to
	// the pool and the arena accounting closes to zero.
	for _, it := range items {
		if it.OnSSD() {
			m.Release(it)
		}
	}
	if m.SSDUsed() == 0 {
		t.Error("quarantined region's bytes reclaimed before the scrub pass")
	}
	if n := m.ReclaimQuarantined(); n != 1 {
		t.Fatalf("ReclaimQuarantined = %d after the last slot freed, want 1", n)
	}
	if m.QuarantineHeld() != 0 || m.QuarantineReclaims != 1 {
		t.Errorf("held=%d reclaims=%d after reclaim", m.QuarantineHeld(), m.QuarantineReclaims)
	}
	if m.SSDUsed() != 0 {
		t.Errorf("SSDUsed = %d after releasing and reclaiming everything", m.SSDUsed())
	}
}

// With NoVerify (the nodefense baseline) the same rotted read surfaces a
// Garbled value with no error — the silent-corruption failure mode the
// bitrot experiment's nodefense cells exist to measure.
func TestNoVerifyServesGarbledValue(t *testing.T) {
	env, m, dev, items := rotFixture(t, true)
	dev.AddBitRot(17, env.Now(), env.Now()+sim.Millisecond, 1.0)
	var v any
	var err error
	env.Spawn("get", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		v, err = m.Load(p, items[0])
	})
	env.Run()
	if err != nil {
		t.Fatalf("nodefense load err = %v, want nil (garbage, not failure)", err)
	}
	if v != (protocol.Garbled{Inner: 0}) {
		t.Errorf("nodefense load returned %v, want the garbled original", v)
	}
	if m.QuarantinedPages != 0 || items[0].Dropped() {
		t.Error("nodefense path quarantined or retired the item")
	}
}

// verifySlot is the catch-all behind the Rotted fast path: a slot whose
// record no longer matches the page header's key digest (a misdirected or
// partially-applied write rather than clean rot) fails verification too.
func TestVerifySlotCatchesRecordMismatch(t *testing.T) {
	env, m, _, items := rotFixture(t, false)
	victim := items[0]
	chunk := m.alloc.ChunkSize(victim.class)
	// Swap in a record for a different key at the victim's slot: the header
	// digest for this slot no longer matches.
	m.file.SetExtent(victim.ssdOff, chunk, &itemRecord{
		Key: "not-the-key", Value: 999, ValueSize: victim.ValueSize,
	})
	var err error
	env.Spawn("get", func(p *sim.Proc) { _, err = m.Load(p, victim) })
	env.Run()
	if err != ErrCorrupt {
		t.Fatalf("mismatched-record load err = %v, want ErrCorrupt", err)
	}
	if m.QuarantinedPages != 1 {
		t.Errorf("QuarantinedPages = %d, want 1", m.QuarantinedPages)
	}
	// A healthy sibling on another region still loads clean.
	var v any
	env.Spawn("get2", func(p *sim.Proc) { v, err = m.Load(p, items[40]) })
	env.Run()
	if err != nil || v != 40 {
		t.Errorf("healthy item load = (%v, %v)", v, err)
	}
}

// The scrub pass over quarantined media: partial rot quarantines a region
// whose other slots are still live. EvacuateQuarantined must re-read each
// live slot, move the clean ones onto a fresh region, retire the rotted
// ones for replica repair, and leave the drained region fully dead — so
// ReclaimQuarantined can finally return it to the pool.
func TestEvacuateQuarantinedMovesCleanRetiresRotten(t *testing.T) {
	env, m, dev, items := rotFixture(t, false)
	// Half the extents rot (deterministically by offset); the window closes
	// before the evacuation runs, so regions the evacuation writes are
	// post-rot and read clean.
	dev.AddBitRot(17, env.Now(), env.Now()+sim.Millisecond, 0.5)

	var pg *ssdPage
	var moved int
	var corrupt []*Item
	var reclaimed int
	env.Spawn("scrub", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		// Find a rotted slot the foreground path quarantines.
		for _, it := range items {
			if !it.OnSSD() {
				continue
			}
			if _, err := m.Load(p, it); err == ErrCorrupt {
				break
			}
		}
		if len(m.quarantine) == 0 {
			t.Error("no load ever hit rot at rate 0.5; fixture is broken")
			return
		}
		pg = m.quarantine[0]
		var siblings []*Item
		for _, it := range items {
			if it.ssdPage == pg && !it.dropped {
				siblings = append(siblings, it)
			}
		}
		if len(siblings) == 0 {
			t.Error("quarantined region holds no live siblings; nothing to evacuate")
			return
		}
		moved, corrupt = m.EvacuateQuarantined(p)
		if moved+len(corrupt) < len(siblings) {
			t.Errorf("evacuation covered %d+%d slots, want at least the %d live siblings",
				moved, len(corrupt), len(siblings))
		}
		reclaimed = m.ReclaimQuarantined()
		// Every surviving sibling sits on fresh, post-rot media and loads
		// clean; every retired one is dropped and reported for repair.
		retired := map[*Item]bool{}
		for _, it := range corrupt {
			retired[it] = true
			if !it.Dropped() {
				t.Error("retired item not dropped")
			}
		}
		for _, it := range siblings {
			if retired[it] {
				continue
			}
			if !it.OnSSD() || it.ssdPage == pg {
				t.Error("moved item still points at the quarantined region")
				continue
			}
			if v, err := m.Load(p, it); err != nil {
				t.Errorf("moved item fails to load after evacuation: %v", err)
			} else if g, bad := v.(protocol.Garbled); bad {
				t.Errorf("moved item reads garbled (%v) off supposedly fresh media", g)
			}
		}
	})
	env.Run()

	if moved == 0 || len(corrupt) == 0 {
		t.Fatalf("moved=%d corrupt=%d: rate 0.5 should split the region's slots both ways", moved, len(corrupt))
	}
	if m.QuarantineEvacuated != int64(moved) {
		t.Errorf("QuarantineEvacuated = %d, want %d", m.QuarantineEvacuated, moved)
	}
	if reclaimed == 0 {
		t.Error("drained region never reclaimed: evacuation left live slots behind")
	}
	if pg.quarantined {
		t.Error("drained region still flagged quarantined after reclaim")
	}
}
