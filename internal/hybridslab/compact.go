package hybridslab

import (
	"sort"

	"hybridkv/internal/sim"
)

// SSD arena compaction. Page-granular reclaim (fatcache-style) leaves dead
// slots inside flush regions whose other items are still live; under
// delete/replace churn the arena fills with holes. Compact rewrites the
// live remainder of fragmented regions into fresh, dense regions and
// returns the old regions to the free pool — the flash-friendly sequential
// rewrite a real SSD cache performs during maintenance windows.

// Compact rewrites every flush region whose live share is at or below
// liveThreshold (e.g. 0.5 = half dead), charging p the region reads and the
// batched rewrite. It returns the number of arena bytes reclaimed.
func (m *Manager) Compact(p *sim.Proc, liveThreshold float64) int64 {
	if m.file == nil {
		return 0
	}
	// Group live SSD items by their flush region.
	groups := make(map[*ssdPage][]*Item)
	for e := m.ssdLRU.Back(); e != nil; e = e.Prev() {
		it := e.Value
		if it.ssdPage != nil {
			groups[it.ssdPage] = append(groups[it.ssdPage], it)
		}
	}
	// Deterministic processing order.
	pages := make([]*ssdPage, 0, len(groups))
	for pg := range groups {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].base < pages[j].base })

	var reclaimed int64
	for _, pg := range pages {
		items := groups[pg]
		liveBytes := 0
		for _, it := range items {
			liveBytes += m.alloc.ChunkSize(it.class)
		}
		if float64(liveBytes) > liveThreshold*float64(pg.size) {
			continue // dense enough
		}
		reclaimed += m.compactPage(p, pg, items)
	}
	return reclaimed
}

// compactPage moves a region's live items into a fresh dense region.
func (m *Manager) compactPage(p *sim.Proc, pg *ssdPage, items []*Item) int64 {
	if len(items) == 0 {
		return 0
	}
	pg.compacting = true
	chunk := m.alloc.ChunkSize(items[0].class)
	newSize := int64(len(items) * chunk)
	newBase, ok := m.ssdAlloc(newSize)
	if !ok {
		pg.compacting = false
		return 0 // arena exhausted; leave the region as is
	}
	// Read the live chunks (one scattered read per item — compaction runs
	// in the background, so latency is off the request path), then write
	// the dense region in one sweep.
	scheme := m.flushScheme(items[0].class)
	for _, it := range items {
		if _, okR := m.file.Read(p, it.ssdOff, chunk, scheme); !okR {
			// Raced with corruption; the item will be retired on its next
			// Load. Skip it here.
			continue
		}
	}
	m.file.Write(p, newBase, int(newSize), nil, scheme)
	newPg := &ssdPage{base: newBase, size: newSize}
	for i, it := range items {
		if it.dropped || !it.onSSD {
			continue
		}
		m.file.Discard(it.ssdOff)
		off := newBase + int64(i*chunk)
		m.file.SetExtent(off, chunk, it.Value)
		it.ssdOff = off
		it.ssdPage = newPg
		newPg.live++
	}
	// Retire the old region entirely.
	m.ssdFree[pg.size] = append(m.ssdFree[pg.size], pg.base)
	m.ssdUsed -= pg.size
	m.ssdUsed += newSize
	m.Compactions++
	return pg.size - newSize
}

// StartCompactor runs Compact every interval until StopCompactor is called.
func (m *Manager) StartCompactor(interval sim.Time, liveThreshold float64) {
	if m.compactStop != nil {
		panic("hybridslab: compactor already running")
	}
	if interval <= 0 {
		interval = sim.Second
	}
	m.compactStop = m.env.NewEvent()
	stop := m.compactStop
	m.env.Spawn("ssd-compactor", func(p *sim.Proc) {
		for {
			if p.WaitTimeout(stop, interval) {
				return
			}
			m.Compact(p, liveThreshold)
		}
	})
}

// StopCompactor terminates the background compactor.
func (m *Manager) StopCompactor() {
	if m.compactStop == nil {
		return
	}
	m.compactStop.Fire()
	m.compactStop = nil
}
