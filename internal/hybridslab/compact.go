package hybridslab

import (
	"sort"

	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
)

// SSD arena compaction. Page-granular reclaim (fatcache-style) leaves dead
// slots inside flush regions whose other items are still live; under
// delete/replace churn the arena fills with holes. Compact rewrites the
// live remainder of fragmented regions into fresh, dense regions and
// returns the old regions to the free pool — the flash-friendly sequential
// rewrite a real SSD cache performs during maintenance windows.

// Compact rewrites every flush region whose live share is at or below
// liveThreshold (e.g. 0.5 = half dead), charging p the region reads and the
// batched rewrite. It returns the number of arena bytes reclaimed.
func (m *Manager) Compact(p *sim.Proc, liveThreshold float64) int64 {
	if m.file == nil {
		return 0
	}
	// Group live SSD items by their flush region.
	groups := make(map[*ssdPage][]*Item)
	for e := m.ssdLRU.Back(); e != nil; e = e.Prev() {
		it := e.Value
		// Quarantined regions are the scrub pass's to drain and reclaim
		// (EvacuateQuarantined); the compactor must not pool suspect media.
		if it.ssdPage != nil && !it.ssdPage.quarantined {
			groups[it.ssdPage] = append(groups[it.ssdPage], it)
		}
	}
	// Deterministic processing order.
	pages := make([]*ssdPage, 0, len(groups))
	for pg := range groups {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].base < pages[j].base })

	var reclaimed int64
	for _, pg := range pages {
		items := groups[pg]
		liveBytes := 0
		for _, it := range items {
			liveBytes += m.alloc.ChunkSize(it.class)
		}
		if float64(liveBytes) > liveThreshold*float64(pg.size) {
			continue // dense enough
		}
		reclaimed += m.compactPage(p, pg, items)
	}
	return reclaimed
}

// compactPage moves a region's live items into a fresh dense region. The
// rewrite uses the same crash-consistent format as eviction flushes: a
// checksummed header plus per-slot item records, committed by a journaled
// commit record — a crash mid-compaction leaves the old region authoritative
// and the half-written new region uncommitted.
func (m *Manager) compactPage(p *sim.Proc, pg *ssdPage, items []*Item) int64 {
	if len(items) == 0 {
		return 0
	}
	pg.compacting = true
	gen0 := m.gen
	class := items[0].class
	chunk := m.alloc.ChunkSize(class)
	newSize := regionSize(len(items), chunk)
	newBase, ok := m.ssdAlloc(newSize)
	if !ok {
		pg.compacting = false
		return 0 // arena exhausted; leave the region as is
	}
	// Read the live chunks (one scattered read per item — compaction runs
	// in the background, so latency is off the request path), then write
	// the dense region in one sweep.
	scheme := m.flushScheme(class)
	for _, it := range items {
		if _, okR := m.file.Read(p, it.ssdOff, chunk, scheme); !okR {
			// Raced with corruption; the item will be retired on its next
			// Load. Skip it here.
			continue
		}
		if m.gen != gen0 {
			return 0 // cold restart mid-compaction: abandon
		}
	}
	job := flushJob{victims: items, class: class, chunk: chunk, gen: gen0}
	data, commit := m.buildRegion(job, newBase, m.nextEpoch())
	ok = m.file.WriteExtents(p, newBase, int(newSize)-PageCommitSize, data, scheme)
	if m.gen != gen0 {
		return 0
	}
	if ok {
		ok = m.file.WriteCommit(p, []pagecache.Extent{commit})
		if m.gen != gen0 {
			return 0
		}
	}
	if !ok {
		// Device write error: the old region stays authoritative.
		m.FlushErrors++
		m.discardRegionExtents(newBase, job)
		m.ssdFree[newSize] = append(m.ssdFree[newSize], newBase)
		pg.compacting = false
		return 0
	}
	newPg := &ssdPage{base: newBase, size: newSize}
	for i, it := range items {
		off := slotOff(newBase, i, chunk)
		if it.dropped || !it.onSSD {
			m.file.Discard(off)
			continue
		}
		m.file.Discard(it.ssdOff)
		it.ssdOff = off
		it.ssdPage = newPg
		newPg.live++
	}
	// Retire the old region entirely.
	m.file.Discard(pg.base)
	m.file.Discard(commitOff(pg.base, pg.size))
	m.ssdFree[pg.size] = append(m.ssdFree[pg.size], pg.base)
	m.ssdUsed -= pg.size
	m.ssdUsed += newSize
	m.Compactions++
	return pg.size - newSize
}

// StartCompactor runs Compact every interval until StopCompactor is called.
func (m *Manager) StartCompactor(interval sim.Time, liveThreshold float64) {
	if m.compactStop != nil {
		panic("hybridslab: compactor already running")
	}
	if interval <= 0 {
		interval = sim.Second
	}
	m.compactStop = m.env.NewEvent()
	stop := m.compactStop
	m.env.Spawn("ssd-compactor", func(p *sim.Proc) {
		for {
			if p.WaitTimeout(stop, interval) {
				return
			}
			m.Compact(p, liveThreshold)
		}
	})
}

// StopCompactor terminates the background compactor.
func (m *Manager) StopCompactor() {
	if m.compactStop == nil {
		return
	}
	m.compactStop.Fire()
	m.compactStop = nil
}
