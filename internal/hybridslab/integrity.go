// Foreground read integrity: every SSD load re-checks the page-header
// checksum and the header's per-slot key digest against the record just
// read — the same validation recovery applies, moved onto the hot read
// path so latent media corruption (bit-rot) is caught when it is read, not
// only after the next crash. A failed check retires the item, quarantines
// the whole region (the allocator must not place fresh data on suspect
// media), and surfaces a typed ErrCorrupt so the server can repair from
// replicas instead of answering with garbage or a silent miss.
package hybridslab

import (
	"errors"
	"sort"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
)

// ErrCorrupt marks an SSD read whose contents failed integrity
// verification: the value is gone locally and its region is quarantined.
// Distinct from ErrDropped (a legal eviction) so the store layer can turn
// it into a replica repair-pull instead of a plain miss.
var ErrCorrupt = errors.New("hybridslab: on-SSD contents failed integrity verification")

// verifySlot re-checks a just-read slot against its region header: the
// header checksum must hold, and the header's digest and length for this
// slot must match the record. In an unfaulted run these always pass (the
// flush path wrote them consistently); under at-rest corruption that
// slipped past the Rotted fast-path they are the catch-all. The check
// charges no simulated time: it rides the chunk read the caller already
// paid for.
func (m *Manager) verifySlot(it *Item, rec *itemRecord) bool {
	pg := it.ssdPage
	if pg == nil {
		return true
	}
	hv, ok := m.file.Peek(pg.base)
	if !ok {
		return false
	}
	hdr, ok := hv.(*pageHeader)
	if !ok || hdr.Magic != pageMagic || hdr.Sum != headerSum(hdr) {
		return false
	}
	chunk := m.alloc.ChunkSize(it.class)
	if chunk <= 0 || hdr.Chunk != chunk {
		return false
	}
	slot := int((it.ssdOff - pg.base - PageHeaderSize) / int64(chunk))
	if slot < 0 || slot >= len(hdr.Items) {
		return false
	}
	im := hdr.Items[slot]
	return im.Digest == keyDigest(rec.Key) && im.Len == rec.ValueSize && rec.Key == it.Key
}

// quarantineCorrupt retires an item whose SSD read failed verification and
// quarantines its region: the slot is freed, but the region never returns
// to the free pool until ReclaimQuarantined releases it.
func (m *Manager) quarantineCorrupt(it *Item) error {
	if pg := it.ssdPage; pg != nil && !pg.quarantined {
		pg.quarantined = true
		m.quarantine = append(m.quarantine, pg)
		m.QuarantinedPages++
	}
	m.ssdLRU.Remove(&it.lru)
	m.freeSSD(it)
	it.Value = nil
	it.dropped = true
	m.CorruptLoads++
	m.event(it, EvictDropped)
	return ErrCorrupt
}

// ReclaimQuarantined releases fully-dead quarantined regions back to the
// free pool — the scrub pass calls this after its repair round, which is
// what "the allocator never reuses a corrupt page until scrubbed" means
// operationally. Regions still holding live slots stay quarantined until
// their last slot is freed. Returns the number of regions reclaimed.
func (m *Manager) ReclaimQuarantined() int {
	if len(m.quarantine) == 0 {
		return 0
	}
	kept := m.quarantine[:0]
	n := 0
	for _, pg := range m.quarantine {
		if pg.live > 0 {
			kept = append(kept, pg)
			continue
		}
		m.file.Discard(pg.base)
		m.file.Discard(commitOff(pg.base, pg.size))
		pg.quarantined = false
		m.ssdFree[pg.size] = append(m.ssdFree[pg.size], pg.base)
		m.ssdUsed -= pg.size
		m.QuarantineReclaims++
		n++
	}
	m.quarantine = kept
	return n
}

// QuarantineHeld reports regions currently held in quarantine.
func (m *Manager) QuarantineHeld() int { return len(m.quarantine) }

// EvacuateQuarantined is the scrub pass over quarantined media: every live
// slot still sitting on a quarantined region is re-read from the device and
// re-verified. Slots that verify clean are rewritten into a fresh dense
// region (the compaction rewrite, on trusted media); slots that fail are
// retired and returned so the store can drop their table entries and open
// replica repairs. After a full evacuation the regions hold no live slots,
// and ReclaimQuarantined returns them to the free pool — which together is
// what "a corrupt page is never reused until scrubbed" means operationally:
// suspect media is drained, re-verified, and only then reclaimed.
func (m *Manager) EvacuateQuarantined(p *sim.Proc) (moved int, corrupt []*Item) {
	if m.file == nil || len(m.quarantine) == 0 {
		return 0, nil
	}
	// Group the live slots of quarantined regions, deterministically.
	groups := make(map[*ssdPage][]*Item)
	for e := m.ssdLRU.Back(); e != nil; e = e.Prev() {
		it := e.Value
		if it.ssdPage != nil && it.ssdPage.quarantined {
			groups[it.ssdPage] = append(groups[it.ssdPage], it)
		}
	}
	pages := make([]*ssdPage, 0, len(groups))
	for pg := range groups {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].base < pages[j].base })

	gen0 := m.gen
	for _, pg := range pages {
		var keep []*Item
		for _, it := range groups[pg] {
			chunk := m.alloc.ChunkSize(it.class)
			v, ok := m.file.Read(p, it.ssdOff, chunk, m.flushScheme(it.class))
			if m.gen != gen0 {
				return moved, corrupt // cold restart mid-scan: abandon
			}
			if it.dropped || !it.onSSD {
				continue // raced with a replace or release during the read
			}
			bad := !ok
			if !bad {
				if _, isRot := v.(blockdev.Rotted); isRot {
					bad = true
				} else if rec, isRec := v.(*itemRecord); !isRec || !m.verifySlot(it, rec) {
					bad = true
				}
			}
			if bad {
				m.ssdLRU.Remove(&it.lru)
				m.freeSSD(it)
				it.Value = nil
				it.dropped = true
				m.CorruptLoads++
				m.event(it, EvictDropped)
				corrupt = append(corrupt, it)
				continue
			}
			keep = append(keep, it)
		}
		if len(keep) == 0 {
			continue
		}
		// Rewrite the verified survivors into a fresh dense region, the
		// same crash-consistent format the compactor uses. On any write
		// failure the old slots stay authoritative (still quarantined, so
		// nothing new lands there) and the next scrub round retries.
		class := keep[0].class
		chunk := m.alloc.ChunkSize(class)
		newSize := regionSize(len(keep), chunk)
		newBase, okA := m.ssdAlloc(newSize)
		if !okA {
			continue // arena exhausted; leave the region for a later pass
		}
		job := flushJob{victims: keep, class: class, chunk: chunk, gen: gen0}
		data, cext := m.buildRegion(job, newBase, m.nextEpoch())
		scheme := m.flushScheme(class)
		okW := m.file.WriteExtents(p, newBase, int(newSize)-PageCommitSize, data, scheme)
		if m.gen != gen0 {
			return moved, corrupt
		}
		if okW {
			okW = m.file.WriteCommit(p, []pagecache.Extent{cext})
			if m.gen != gen0 {
				return moved, corrupt
			}
		}
		if !okW {
			m.FlushErrors++
			m.discardRegionExtents(newBase, job)
			m.ssdFree[newSize] = append(m.ssdFree[newSize], newBase)
			continue
		}
		newPg := &ssdPage{base: newBase, size: newSize}
		for i, it := range keep {
			off := slotOff(newBase, i, chunk)
			if it.dropped || !it.onSSD {
				m.file.Discard(off)
				continue
			}
			// Free the old slot by hand: the old region must stay
			// quarantined (ReclaimQuarantined owns its release and its
			// arena accounting), so freeSSD's pooling path must not run.
			m.file.Discard(it.ssdOff)
			it.ssdPage.live--
			it.ssdOff = off
			it.ssdPage = newPg
			newPg.live++
			moved++
			m.QuarantineEvacuated++
		}
		m.ssdUsed += newSize
	}
	return moved, corrupt
}
