// On-SSD slab page format (crash consistency).
//
// Every flushed slab page occupies one arena region laid out as
//
//	[ header | n fixed-size item slots | commit record ]
//
// The header carries a magic, the slab class and chunk size, a commit epoch,
// a per-slot key digest and value length, and a checksum over all of it. The
// commit record is journaled as a separate small write *after* the data
// write completes, so a crash between the two leaves the page (or, for a
// merged batch flush, every page of the batch) uncommitted and therefore
// invisible to recovery. Header and commit record each model one 512-byte
// sector: a torn data or commit write can only ever persist a sector
// prefix, which recovery detects via the durable extent's Valid length and
// the checksum.
//
// Region sizes are stable across reuse (the free pool is keyed by exact
// size), so the header of a reused region always overwrites the old header
// at the region base and the new commit record always overwrites the old
// one at the region end. Stale interior slots from a previous incarnation
// are never consulted: recovery reads only the slots the (new) header
// enumerates, and a slot whose key digest or length disagrees with the
// header is discarded with the whole page.
package hybridslab

import (
	"hash/fnv"

	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
)

const (
	// PageHeaderSize / PageCommitSize are the on-media footprint of the page
	// header and commit record: one sector each.
	PageHeaderSize = 512
	PageCommitSize = 512

	pageMagic   = 0x48594252 // "HYBR"
	commitMagic = 0x434f4d54 // "COMT"
)

// itemMeta is the header's per-slot summary used to validate slots on
// recovery without trusting the slot contents.
type itemMeta struct {
	Digest uint64 // key digest (FNV-1a)
	Len    int    // value length
}

// pageHeader is the checksummed region header.
type pageHeader struct {
	Magic uint32
	Class int
	Chunk int
	Epoch uint64
	Items []itemMeta
	Sum   uint64
}

// commitRecord is the journaled commit for one region: a page is visible to
// recovery only when a commit record matching its header's epoch and extent
// is durable.
type commitRecord struct {
	Magic uint32
	Epoch uint64
	Base  int64 // file-relative region base
	Size  int64 // region size
	Sum   uint64
}

// itemRecord is a slot's on-media payload: the full key and metadata ride
// along with the value so recovery can rebuild the item index.
type itemRecord struct {
	Key       string
	Value     any
	ValueSize int
	Flags     uint32
	CAS       uint64
	ExpireAt  sim.Time
}

// keyDigest hashes a key for the header's per-slot summary.
func keyDigest(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// headerSum checksums the header fields (Sum excluded).
func headerSum(h *pageHeader) uint64 {
	s := uint64(h.Magic)
	s = s*1099511628211 + uint64(h.Class)
	s = s*1099511628211 + uint64(h.Chunk)
	s = s*1099511628211 + h.Epoch
	for _, im := range h.Items {
		s = s*1099511628211 + im.Digest
		s = s*1099511628211 + uint64(im.Len)
	}
	return s
}

// commitSum checksums the commit record fields (Sum excluded).
func commitSum(c *commitRecord) uint64 {
	s := uint64(c.Magic)
	s = s*1099511628211 + c.Epoch
	s = s*1099511628211 + uint64(c.Base)
	s = s*1099511628211 + uint64(c.Size)
	return s
}

// regionSize is the arena footprint of a page of n chunk-sized slots.
func regionSize(n, chunk int) int64 {
	return int64(PageHeaderSize + n*chunk + PageCommitSize)
}

// slotOff is the file offset of slot i in the region at base.
func slotOff(base int64, i, chunk int) int64 {
	return base + PageHeaderSize + int64(i*chunk)
}

// commitOff is the file offset of the commit record of the region at base.
func commitOff(base, size int64) int64 {
	return base + size - PageCommitSize
}

// buildRegion assembles the header and slot extents of one job's region at
// base plus its commit-record extent (written separately, afterwards).
func (m *Manager) buildRegion(job flushJob, base int64, epoch uint64) (data []pagecache.Extent, commit pagecache.Extent) {
	hdr := &pageHeader{
		Magic: pageMagic,
		Class: job.class,
		Chunk: job.chunk,
		Epoch: epoch,
		Items: make([]itemMeta, len(job.victims)),
	}
	size := regionSize(len(job.victims), job.chunk)
	data = make([]pagecache.Extent, 0, len(job.victims)+1)
	data = append(data, pagecache.Extent{Off: base, Size: PageHeaderSize, Payload: hdr})
	for i, v := range job.victims {
		hdr.Items[i] = itemMeta{Digest: keyDigest(v.Key), Len: v.ValueSize}
		rec := &itemRecord{
			Key:       v.Key,
			Value:     v.Value,
			ValueSize: v.ValueSize,
			Flags:     v.Flags,
			CAS:       v.CAS,
			ExpireAt:  v.ExpireAt,
		}
		data = append(data, pagecache.Extent{Off: slotOff(base, i, job.chunk), Size: job.chunk, Payload: rec})
	}
	hdr.Sum = headerSum(hdr)
	cr := &commitRecord{Magic: commitMagic, Epoch: epoch, Base: base, Size: size}
	cr.Sum = commitSum(cr)
	commit = pagecache.Extent{Off: commitOff(base, size), Size: PageCommitSize, Payload: cr}
	return data, commit
}
