package hybridslab

import (
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// newRecoveryRig builds a small overcommitted manager whose device can tear
// writes: 2 MB of RAM under a driver that stores ~5 MB, so most items flush.
func newRecoveryRig(seed int64, tornProb float64) (*sim.Env, *Manager, *blockdev.Device) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	if tornProb > 0 {
		dev.SetTornWrites(seed, tornProb)
	}
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:   slab.Config{MemLimit: 2 << 20},
		Policy: PolicyDirect,
	}, cache.OpenFile(0, 4<<30))
	return env, m, dev
}

// driveRecoveryRig stores n 32 KB items, wrapping every run of 20 in an
// eviction-coalescing window so crash points land inside merged flushes
// (including between a merged data write and its commit record) as well as
// plain per-job flushes. stop makes the driver quit at the next iteration
// after a simulated power cut. Store errors are ignored: after a crash the
// resumed call may observe ErrRecovering.
func driveRecoveryRig(env *sim.Env, m *Manager, n int, stop *bool) {
	env.Spawn("drv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if *stop {
				return
			}
			if i%20 == 0 {
				m.BeginEvictionBatch(p)
			}
			m.Store(p, item(i, 32*1024))
			if i%20 == 19 || i == n-1 {
				m.EndEvictionBatch(p)
			}
		}
	})
}

// TestRecoverSweepCrashAnyPoint is the acceptance sweep: a power cut
// injected at evenly spaced points of an eviction-heavy run — landing inside
// buffering, merged data writes, commit writes, and quiet stretches alike,
// with torn writes armed — followed by Recover must yield only
// fully-committed, byte-correct values, with every discarded page accounted.
func TestRecoverSweepCrashAnyPoint(t *testing.T) {
	const n, points = 300, 25
	expected := make(map[string]int, n)
	for i := 0; i < n; i++ {
		expected[item(i, 32*1024).Key] = i
	}

	// Clean twin fixes the run's duration; tearing charges no virtual time,
	// so every incarnation below follows the identical timeline up to its
	// crash point regardless of its tear-draw seed.
	env, m, _ := newRecoveryRig(1, 0.5)
	stop := false
	driveRecoveryRig(env, m, n, &stop)
	total := env.Run()
	if m.FlushPages == 0 {
		t.Fatalf("clean run flushed nothing; sweep would be vacuous")
	}

	var sumRecovered, sumDiscarded, sumTorn, sumUncommitted int64
	for k := 1; k <= points; k++ {
		crashAt := total * sim.Time(k) / sim.Time(points+1)
		env, m, _ := newRecoveryRig(int64(1000+k), 0.5)
		stop := false
		driveRecoveryRig(env, m, n, &stop)
		env.RunUntil(crashAt)
		stop = true
		env.Spawn("recover", func(p *sim.Proc) {
			items, rep := m.Recover(p)
			if rep.PagesScanned != rep.PagesRecovered+rep.PagesDiscarded {
				t.Errorf("crash@%v: scanned %d != recovered %d + discarded %d",
					crashAt, rep.PagesScanned, rep.PagesRecovered, rep.PagesDiscarded)
			}
			if rep.PagesTorn+rep.PagesUncommitted > rep.PagesDiscarded {
				t.Errorf("crash@%v: torn %d + uncommitted %d exceed discarded %d",
					crashAt, rep.PagesTorn, rep.PagesUncommitted, rep.PagesDiscarded)
			}
			if int64(len(items)) != rep.ItemsRecovered {
				t.Errorf("crash@%v: %d items returned, report says %d",
					crashAt, len(items), rep.ItemsRecovered)
			}
			sumRecovered += rep.PagesRecovered
			sumDiscarded += rep.PagesDiscarded
			sumTorn += rep.PagesTorn
			sumUncommitted += rep.PagesUncommitted
			seen := make(map[string]bool)
			for _, it := range items {
				if seen[it.Key] {
					t.Errorf("crash@%v: key %q recovered twice", crashAt, it.Key)
				}
				seen[it.Key] = true
				want, known := expected[it.Key]
				if !known {
					t.Errorf("crash@%v: recovered unknown key %q", crashAt, it.Key)
					continue
				}
				v, err := m.Load(p, it)
				if err != nil || v != want {
					t.Errorf("crash@%v: recovered %q = (%v,%v), want %d",
						crashAt, it.Key, v, err, want)
				}
			}
			// The rebuilt store must accept and serve fresh writes.
			fresh := item(100000+k, 32*1024)
			if err := m.Store(p, fresh); err != nil {
				t.Errorf("crash@%v: post-recovery store failed: %v", crashAt, err)
			} else if v, err := m.Load(p, fresh); err != nil || v != 100000+k {
				t.Errorf("crash@%v: post-recovery load = (%v,%v)", crashAt, v, err)
			}
		})
		env.Run()
	}
	// The sweep must have exercised both outcomes: pages surviving intact and
	// pages rejected (20% of write commands tear).
	if sumRecovered == 0 {
		t.Errorf("no page recovered at any of %d crash points", points)
	}
	if sumDiscarded == 0 || sumTorn == 0 {
		t.Errorf("torn-write injection never forced a discard (discarded=%d torn=%d)",
			sumDiscarded, sumTorn)
	}
	if sumUncommitted == 0 {
		t.Errorf("no crash point landed in the data-write/commit-record window")
	}
	t.Logf("sweep totals: recovered=%d discarded=%d torn=%d uncommitted=%d",
		sumRecovered, sumDiscarded, sumTorn, sumUncommitted)
}

// TestRecoverDiscardsUncommittedPage pins the commit-atomicity window: the
// durable image of a crash after a page's data write but before its commit
// record (data extents landed, commit absent) must be discarded as
// uncommitted, its keys gone, and its region returned to the free pool.
func TestRecoverDiscardsUncommittedPage(t *testing.T) {
	const n = 150
	env, m, _ := newRecoveryRig(1, 0)
	stop := false
	driveRecoveryRig(env, m, n, &stop)
	env.Run()

	// Walk the SSD recency list directly (same package) to pick a victim page.
	var onSSD []*Item
	for e := m.ssdLRU.Front(); e != nil; e = e.Next() {
		onSSD = append(onSSD, e.Value)
	}
	if len(onSSD) == 0 {
		t.Fatalf("nothing on SSD after overcommitted run")
	}
	victim := onSSD[0]
	pg := victim.ssdPage
	var pageKeys []string
	for _, it := range onSSD {
		if it.ssdPage == pg {
			pageKeys = append(pageKeys, it.Key)
		}
	}

	// Simulate the crash-in-the-window durable image: the commit record never
	// reached the media. Discard drops it from both the logical and durable
	// views, exactly what a power cut before the commit write leaves behind.
	m.file.Discard(commitOff(pg.base, pg.size))

	env.Spawn("recover", func(p *sim.Proc) {
		items, rep := m.Recover(p)
		if rep.PagesUncommitted != 1 {
			t.Errorf("PagesUncommitted = %d, want 1", rep.PagesUncommitted)
		}
		if rep.PagesDiscarded < 1 {
			t.Errorf("PagesDiscarded = %d, want >= 1", rep.PagesDiscarded)
		}
		byKey := make(map[string]*Item)
		for _, it := range items {
			byKey[it.Key] = it
		}
		for _, k := range pageKeys {
			if _, ok := byKey[k]; ok {
				t.Errorf("key %q from the uncommitted page was recovered", k)
			}
		}
		found := false
		for _, base := range m.ssdFree[pg.size] {
			if base == pg.base {
				found = true
			}
		}
		if !found {
			t.Errorf("uncommitted region %d not returned to the free pool", pg.base)
		}
	})
	env.Run()
}

// TestFailedMergedFlushKeepsVictimsConsistent is the placeMerged error-path
// regression: an injected device write error under a coalesced eviction
// flush must not leave any victim half-placed — nothing is marked SSD
// resident, FlushWrites counts only successful data writes and matches the
// device's error ledger, and eviction makes progress once the device heals.
func TestFailedMergedFlushKeepsVictimsConsistent(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:   slab.Config{MemLimit: 4 << 20},
		Policy: PolicyDirect,
	}, cache.OpenFile(0, 4<<30))

	const prefill = 200
	items := make([]*Item, 0, prefill+80)
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < prefill; i++ {
			it := item(i, 32*1024)
			items = append(items, it)
			m.Store(p, it)
		}
		flushes0, commits0, errs0 := m.FlushWrites, m.CommitWrites, m.FlushErrors
		if dev.WriteErrors != 0 {
			t.Errorf("write errors before faults armed: %d", dev.WriteErrors)
		}
		var ramBefore []*Item
		for _, it := range items {
			if !it.OnSSD() && !it.Dropped() {
				ramBefore = append(ramBefore, it)
			}
		}

		// One coalescing window big enough to stage at least two page
		// evictions (a multi-job merged run), with every device write failing.
		dev.SetFaults(5, 0, 1.0)
		m.BeginEvictionBatch(p)
		for i := prefill; i < prefill+40; i++ {
			it := item(i, 32*1024)
			items = append(items, it)
			m.Store(p, it)
		}
		m.EndEvictionBatch(p)
		dev.SetFaults(5, 0, 0)

		if m.FlushErrors == errs0 {
			t.Fatalf("merged flush did not fail under injected write errors")
		}
		if m.FlushWrites != flushes0 || m.CommitWrites != commits0 {
			t.Errorf("failed run counted as success: flushes %d->%d commits %d->%d",
				flushes0, m.FlushWrites, commits0, m.CommitWrites)
		}
		if got := dev.WriteErrors; got != m.FlushErrors-errs0 {
			t.Errorf("FlushErrors delta %d != device WriteErrors %d",
				m.FlushErrors-errs0, got)
		}
		// No victim of the failed run may claim SSD residency.
		for _, it := range ramBefore {
			if it.OnSSD() {
				t.Errorf("%q half-placed on SSD after failed merged flush", it.Key)
			}
		}

		// Every surviving item — RAM-resident victims included — still loads
		// its original value; nothing reads as corrupt.
		bad := 0
		for i, it := range items {
			if it.Dropped() {
				continue
			}
			if v, err := m.Load(p, it); err != nil || v != i {
				bad++
			}
		}
		if bad != 0 || m.CorruptLoads != 0 {
			t.Errorf("%d unreadable items, %d corrupt loads after failed flush",
				bad, m.CorruptLoads)
		}

		// The device healed: the next overcommit burst must flush normally.
		m.BeginEvictionBatch(p)
		for i := prefill + 40; i < prefill+80; i++ {
			it := item(i, 32*1024)
			items = append(items, it)
			m.Store(p, it)
		}
		m.EndEvictionBatch(p)
		if m.FlushWrites == flushes0 {
			t.Errorf("no successful flush after faults disarmed")
		}
	})
	env.Run()
}

// TestAbortEvictionBatchesTearsDownWindows is the crash-window regression: a
// crash while an eviction-coalescing window is open must tear the window
// down so a later restart never resumes the half-open batch — the orphaned
// EndEvictionBatch is a no-op and the manager stays fully usable.
func TestAbortEvictionBatchesTearsDownWindows(t *testing.T) {
	env := sim.NewEnv()
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	cache := pagecache.New(env, dev, pagecache.DefaultParams())
	m := New(env, Config{
		Slab:   slab.Config{MemLimit: 4 << 20},
		Policy: PolicyDirect,
	}, cache.OpenFile(0, 4<<30))
	env.Spawn("op", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			m.Store(p, item(i, 32*1024))
		}
		m.BeginEvictionBatch(p)
		for i := 200; i < 240; i++ {
			m.Store(p, item(i, 32*1024))
		}
		drops0, flushes0 := m.DropEvictions, m.FlushWrites

		// The crash path.
		m.AbortEvictionBatches()

		if m.AbortedWindows != 1 {
			t.Errorf("AbortedWindows = %d, want 1", m.AbortedWindows)
		}
		if m.DropEvictions == drops0 {
			t.Errorf("aborted window shed no staged victims")
		}
		// The worker eventually unwinds to its EndEvictionBatch: no window
		// exists anymore, so nothing may be flushed or double-freed.
		m.EndEvictionBatch(p)
		if m.FlushWrites != flushes0 {
			t.Errorf("EndEvictionBatch after abort performed a flush")
		}
		// Idempotent with no windows open.
		m.AbortEvictionBatches()
		if m.AbortedWindows != 1 {
			t.Errorf("AbortedWindows = %d after idempotent abort, want 1", m.AbortedWindows)
		}

		// Still fully usable, including fresh coalesced evictions.
		m.BeginEvictionBatch(p)
		for i := 240; i < 280; i++ {
			m.Store(p, item(i, 32*1024))
		}
		m.EndEvictionBatch(p)
		if m.FlushWrites == flushes0 {
			t.Errorf("no flush after a post-abort coalesced burst")
		}
		it := item(9999, 32*1024)
		if err := m.Store(p, it); err != nil {
			t.Errorf("post-abort store failed: %v", err)
		} else if v, err := m.Load(p, it); err != nil || v != 9999 {
			t.Errorf("post-abort load = (%v,%v)", v, err)
		}
	})
	env.Run()
	_ = dev
}
