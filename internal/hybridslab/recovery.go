// Cold-restart recovery: rebuilding the hybrid store from the SSD.
//
// A cold restart (machine power-cycle) loses everything in RAM — the slab
// arena, the recency lists, the item index — but the SSD keeps whatever
// flush pages were durably committed. Recover scans the arena, validates
// each page header against its journaled commit record and per-slot digests,
// discards torn or uncommitted pages, and rebuilds the item index, the SSD
// recency list, and the arena allocator's free map. The recovery state
// machine per page is:
//
//	header torn/invalid      -> discard (counted torn)
//	commit missing/mismatch  -> discard + region to free pool (uncommitted)
//	any listed slot torn or
//	digest/length mismatch   -> discard + region to free pool (torn)
//	all slots missing        -> discard + region to free pool (empty)
//	otherwise                -> page recovered; missing slots were freed
//	                            before the crash and stay missing
package hybridslab

import (
	"sort"

	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// RecoveryReport summarizes one cold-restart recovery scan.
type RecoveryReport struct {
	PagesScanned   int64
	PagesRecovered int64
	PagesDiscarded int64 // scanned - recovered
	// PagesTorn / PagesUncommitted classify the discards: a torn header or
	// slot under a committed header, versus a missing or mismatched commit
	// record (the crashed-between-data-and-commit window).
	PagesTorn        int64
	PagesUncommitted int64
	ItemsRecovered   int64
	// ItemsMissing counts header-listed slots with no durable extent: slots
	// invalidated (freed, replaced) before the crash.
	ItemsMissing int64
	// BytesRecovered is the arena space re-accounted as live.
	BytesRecovered int64
	// MaxCAS is the highest CAS token among recovered items; the store's
	// CAS counter must resume above it.
	MaxCAS uint64
	// Elapsed is the virtual time the scan took.
	Elapsed sim.Time
}

// Recovering reports whether a recovery scan is rebuilding the manager.
func (m *Manager) Recovering() bool { return m.recovering }

// AbortEvictionBatches tears down every open eviction-coalescing window:
// their staged victims' RAM chunks were freed at staging time and their SSD
// writes never happened, so the items are shed. Server.Crash calls this so
// a later Restart never resumes a half-open batch; the suspended worker's
// eventual EndEvictionBatch finds no window and is a no-op.
func (m *Manager) AbortEvictionBatches() {
	if len(m.windows) == 0 {
		return
	}
	procs := make([]*sim.Proc, 0, len(m.windows))
	for p := range m.windows {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].Name() < procs[j].Name() })
	for _, p := range procs {
		w := m.windows[p]
		delete(m.windows, p)
		for _, job := range w.jobs {
			m.dropJob(job, false)
			m.jobDone()
		}
		m.AbortedWindows++
	}
}

// WipeSSD discards every durable extent of the backing file, modeling a
// node brought back on replacement hardware: a subsequent cold-restart
// recovery scan finds an empty device. RAM-side state is untouched; pair
// with Server.Kill + RestartCold.
func (m *Manager) WipeSSD() {
	if m.file == nil {
		return
	}
	for _, off := range m.file.DurableOffsets() {
		m.file.Discard(off)
	}
}

// resetVolatile discards every RAM-side structure, modeling the cold
// restart itself. The manager's generation bumps so workers suspended in
// I/O across the crash abandon their work on resume.
func (m *Manager) resetVolatile() {
	m.gen++
	m.alloc = slab.New(m.cfg.Slab)
	m.lrus = make([]slab.LRU[*Item], m.alloc.NumClasses())
	m.ssdLRU = slab.LRU[*Item]{}
	m.flushing = 0
	m.flushFailStreak = 0
	m.windows = make(map[*sim.Proc]*evictionWindow)
	m.ssdUsed = 0
	m.ssdNext = 0
	m.ssdFree = make(map[int64][]int64)
	// Quarantine state is volatile: recovery re-validates every region by
	// checksum anyway, and still-rotten media re-fails verification (and
	// re-quarantines) on the next foreground read.
	m.quarantine = nil
	// Workers parked on the old flush event belong to the old incarnation;
	// they stay parked. New waiters get a fresh event.
	m.flushEv = m.env.NewEvent()
}

// recPage is one committed page met by the scan, pending final assembly.
type recPage struct {
	pg    *ssdPage
	items []*Item
}

// Recover rebuilds the manager from the SSD after a cold restart and
// returns the recovered items for the store to re-index. The scan charges
// one sequential read over the used arena extent plus the in-place header
// validation; while it runs, Store/Load fail fast with ErrRecovering.
func (m *Manager) Recover(p *sim.Proc) ([]*Item, RecoveryReport) {
	var rep RecoveryReport
	t0 := p.Now()
	m.resetVolatile()
	if m.file == nil {
		return nil, rep
	}
	m.recovering = true
	defer func() { m.recovering = false }()

	// The page cache is cold and the logical view is whatever the media
	// durably holds.
	m.file.RecoverExtents()

	// The bump pointer resumes past every durable extent — fresh flushes
	// must not overwrite pages we are about to recover (or regions we free
	// below, which reenter circulation through the free pool instead).
	end := m.file.DurableEnd()
	m.ssdNext = end
	if end > 0 {
		// One sequential scan of the used arena extent.
		m.file.ReadRaw(p, 0, int(end))
	}

	byKey := make(map[string]*Item)
	epochOf := make(map[string]uint64)
	var pages []*recPage
	var maxEpoch uint64

	for _, base := range m.file.DurableOffsets() {
		e, ok := m.file.PeekDurable(base)
		if !ok {
			continue
		}
		hdr, isHdr := e.Payload.(*pageHeader)
		if !isHdr {
			continue
		}
		rep.PagesScanned++
		if e.Torn() || hdr.Magic != pageMagic || hdr.Sum != headerSum(hdr) ||
			hdr.Class < 0 || hdr.Class >= m.alloc.NumClasses() ||
			hdr.Chunk != m.alloc.ChunkSize(hdr.Class) || len(hdr.Items) == 0 {
			// Unusable header: without a trustworthy size the region is
			// stranded (it stays below ssdNext, so nothing overwrites it
			// until the space recirculates through compaction-free reuse).
			rep.PagesTorn++
			rep.PagesDiscarded++
			continue
		}
		if hdr.Epoch > maxEpoch {
			maxEpoch = hdr.Epoch
		}
		size := regionSize(len(hdr.Items), hdr.Chunk)

		// Commit check: the page is visible only if its commit record is
		// durable, intact, and matches the header's epoch and extent.
		ce, cok := m.file.PeekDurable(commitOff(base, size))
		cr, isCr := ce.Payload.(*commitRecord)
		committed := cok && !ce.Torn() && isCr && cr.Magic == commitMagic &&
			cr.Sum == commitSum(cr) && cr.Epoch == hdr.Epoch &&
			cr.Base == base && cr.Size == size
		if !committed {
			rep.PagesUncommitted++
			rep.PagesDiscarded++
			m.purgeRegion(base, hdr)
			continue
		}

		// Slot validation: every durable slot must match the header's
		// digest and length; one bad slot condemns the page (the data
		// write tore under a commit that still landed).
		pg := &ssdPage{base: base, size: size}
		rp := &recPage{pg: pg}
		corrupt := false
		missing := int64(0)
		for i, im := range hdr.Items {
			off := slotOff(base, i, hdr.Chunk)
			se, sok := m.file.PeekDurable(off)
			if !sok {
				missing++ // invalidated before the crash
				continue
			}
			rec, isRec := se.Payload.(*itemRecord)
			if se.Torn() || !isRec || keyDigest(rec.Key) != im.Digest || rec.ValueSize != im.Len {
				corrupt = true
				break
			}
			it := &Item{
				Key:       rec.Key,
				Value:     rec.Value,
				ValueSize: rec.ValueSize,
				Flags:     rec.Flags,
				CAS:       rec.CAS,
				ExpireAt:  rec.ExpireAt,
				class:     hdr.Class,
				onSSD:     true,
				ssdOff:    off,
				ssdPage:   pg,
				gen:       m.gen,
			}
			if prev, dup := byKey[rec.Key]; dup {
				// Two committed copies of one key (higher epoch wins). The
				// running system invalidates stale slots eagerly, so this
				// only arises from exotic crash interleavings — resolve it
				// conservatively rather than serving the older value.
				if hdr.Epoch > epochOf[rec.Key] {
					m.demoteRecovered(prev)
					byKey[rec.Key], epochOf[rec.Key] = it, hdr.Epoch
				} else {
					m.file.Discard(off)
					continue
				}
			} else {
				byKey[rec.Key], epochOf[rec.Key] = it, hdr.Epoch
			}
			rp.items = append(rp.items, it)
			pg.live++
			if rec.CAS > rep.MaxCAS {
				rep.MaxCAS = rec.CAS
			}
		}
		if corrupt {
			rep.PagesTorn++
			rep.PagesDiscarded++
			m.purgeRegion(base, hdr)
			continue
		}
		rep.ItemsMissing += missing
		if pg.live == 0 {
			// Every slot was freed before the crash.
			rep.PagesDiscarded++
			m.purgeRegion(base, hdr)
			continue
		}
		pages = append(pages, rp)
	}

	// Final assembly in scan order (deterministic): account live regions,
	// rebuild the SSD recency list, hand the winners to the store.
	var items []*Item
	for _, rp := range pages {
		if rp.pg.live == 0 {
			// Fully demoted by duplicate resolution after being scanned.
			rep.PagesDiscarded++
			m.ssdFree[rp.pg.size] = append(m.ssdFree[rp.pg.size], rp.pg.base)
			continue
		}
		rep.PagesRecovered++
		rep.BytesRecovered += rp.pg.size
		m.ssdUsed += rp.pg.size
		for _, it := range rp.items {
			if it.dropped {
				continue
			}
			it.lru.Value = it
			m.ssdLRU.PushFront(&it.lru)
			items = append(items, it)
			rep.ItemsRecovered++
		}
	}
	if maxEpoch > m.epoch {
		m.epoch = maxEpoch
	}
	rep.Elapsed = p.Now() - t0
	return items, rep
}

// demoteRecovered drops a just-recovered item that lost duplicate-key
// resolution: its slot is invalidated and its page's live count shrinks.
func (m *Manager) demoteRecovered(it *Item) {
	m.file.Discard(it.ssdOff)
	it.ssdPage.live--
	it.Value = nil
	it.dropped = true
}

// purgeRegion invalidates a discarded page's durable extents and returns
// its region to the free pool.
func (m *Manager) purgeRegion(base int64, hdr *pageHeader) {
	size := regionSize(len(hdr.Items), hdr.Chunk)
	m.file.Discard(base)
	for i := range hdr.Items {
		m.file.Discard(slotOff(base, i, hdr.Chunk))
	}
	m.file.Discard(commitOff(base, size))
	m.ssdFree[size] = append(m.ssdFree[size], base)
}
